GO ?= go

.PHONY: build test check vet lint race bench-obs bench-compile report

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# check: the static-analysis gates (go vet for the Go code, configlint
# for the CDL corpus), the race detector over the concurrent packages
# (engine worker pool, pipeline, proxy, zeus, strip, canary, obs), and
# the obs smoke run that regenerates BENCH_obs.json.
check: vet lint race bench-obs

vet:
	$(GO) vet ./...

# lint: the CDL analyzer suite over the example corpus, at the
# strictest threshold — the examples must stay warning-free.
lint:
	$(GO) run ./cmd/configlint -C examples/configs -severity info

race:
	$(GO) test -race ./internal/obs/... ./internal/cdl/... ./internal/core/... ./internal/proxy/... ./internal/zeus/... ./internal/landingstrip/... ./internal/canary/...

# bench-obs: smoke-run the observability experiment and leave its raw
# registry dump (BENCH_obs.json) in the repo root.
bench-obs:
	$(GO) run ./cmd/benchreport -quick -only obs -o - > /dev/null

# bench-compile: the shared-.cinc fan-out benchmarks behind BENCH_compile.json.
bench-compile:
	$(GO) test -run xxx -bench 'BenchmarkCDLCompileFanout|BenchmarkCDLCompileAllWorkers|BenchmarkEngine_CompileCache' -benchmem -benchtime 20x .

report:
	$(GO) run ./cmd/benchreport
