GO ?= go

.PHONY: build test check vet race bench-compile report

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# check: the compilation-engine gate — static analysis plus the race
# detector over the concurrent packages (engine worker pool, pipeline).
check: vet race

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/cdl/... ./internal/core/...

# bench-compile: the shared-.cinc fan-out benchmarks behind BENCH_compile.json.
bench-compile:
	$(GO) test -run xxx -bench 'BenchmarkCDLCompileFanout|BenchmarkCDLCompileAllWorkers|BenchmarkEngine_CompileCache' -benchmem -benchtime 20x .

report:
	$(GO) run ./cmd/benchreport
