GO ?= go

.PHONY: build test check vet lint race staticcheck govulncheck bench-obs bench-compile bench-distribution bench-availability bench-readpath bench-dataflow bench-monitor bench-scale smoke-scale bench-vessel smoke-vessel report

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# check: the static-analysis gates (go vet for the Go code, staticcheck
# and govulncheck when installed, configlint for the CDL corpus), the
# race detector over the concurrent packages (engine worker pool +
# dataflow index, pipeline, proxy, zeus, strip, canary, obs — zeus
# and proxy run the batched, delta-encoded distribution plane; simnet,
# confclient and cluster run the fault plane and the degradation read
# path), the obs smoke run that regenerates BENCH_obs.json, the
# distribution-plane smoke that regenerates and asserts
# BENCH_distribution.json, the availability smoke that regenerates
# and asserts BENCH_availability.json, the read-hot-path smoke that
# regenerates and asserts BENCH_readpath.json (zero allocs per warm
# read, >= 5x over the lock+decode baseline at 32 readers), and the
# dataflow smoke that regenerates and asserts BENCH_dataflow.json
# (memo-warm whole-repo provenance >= 5x cold, one-edit recompute
# bounded to the provenance cone), and the fleet-monitoring smoke that
# regenerates and asserts BENCH_monitor.json (monitoring overhead <= 5%
# on the read path, 0 allocs per warm read with the health plane on,
# SLO alerts fire during the scripted outage and clear after heal), and
# the fleet-scale smoke that asserts the BENCH_scale.json gates at quick
# size (0 allocs per warm Send/SetTimer, same-seed determinism, events/sec
# floor, allocs/event ceiling, full §6.3 convergence), and the vessel
# smoke that asserts the content-addressed PackageVessel gates at quick
# size (fleet delivery under four minutes, delta publish under 25% of
# full-package bytes, crash-resume with no re-fetch of verified chunks,
# same-seed determinism).
check: vet staticcheck govulncheck lint race bench-obs bench-distribution bench-availability bench-readpath bench-dataflow bench-monitor smoke-scale smoke-vessel

vet:
	$(GO) vet ./...

# staticcheck / govulncheck: run when the binaries are on PATH, skip with
# a notice otherwise — the build container has no network, so `check`
# must not try to install them.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# lint: the CDL analyzer suite over the example corpus, at the
# strictest threshold — the examples must stay warning-free.
lint:
	$(GO) run ./cmd/configlint -C examples/configs -severity info

race:
	$(GO) test -race ./internal/obs/... ./internal/cdl/... ./internal/core/... ./internal/proxy/... ./internal/zeus/... ./internal/landingstrip/... ./internal/canary/... ./internal/simnet/... ./internal/confclient/... ./internal/cluster/... ./internal/monitor/... ./internal/packagevessel/...

# bench-obs: smoke-run the observability experiment and leave its raw
# registry dump (BENCH_obs.json) in the repo root.
bench-obs:
	$(GO) run ./cmd/benchreport -quick -only obs -o - > /dev/null

# bench-distribution: smoke-run the distribution-plane experiment (leaves
# BENCH_distribution.json in the repo root) and assert the artifact's
# schema and headline claims — group-commit speedup, delta bytes a small
# fraction of full-snapshot bytes, propagation p99 no worse.
bench-distribution:
	$(GO) run ./cmd/benchreport -quick -only distribution -o - > /dev/null
	$(GO) test -run TestDistributionArtifact ./internal/experiments/

# bench-availability: smoke-run the graceful-degradation experiment
# (leaves BENCH_availability.json in the repo root) and assert the
# artifact's headline claims — 100% read availability with stale-serve
# on vs measurably lower off, staleness quantiles populated, bounded
# convergence after heal, and every scripted fault mirrored into the
# obs counters.
bench-availability:
	$(GO) run ./cmd/benchreport -quick -only availability -o - > /dev/null
	$(GO) test -run TestAvailabilityArtifact ./internal/experiments/

# bench-readpath: smoke-run the read-hot-path experiment (leaves
# BENCH_readpath.json in the repo root) and assert the artifact's schema
# and headline claims — allocs_per_read == 0, allocs_per_get == 0,
# >= 5x reads/sec over the per-read lock+decode baseline at 32 readers,
# commit-to-read freshness measured and bounded.
bench-readpath:
	$(GO) run ./cmd/benchreport -quick -only readpath -o - > /dev/null
	$(GO) test -run TestReadpathArtifact ./internal/experiments/

# bench-dataflow: smoke-run the whole-repo dataflow experiment (leaves
# BENCH_dataflow.json in the repo root) and assert the artifact's schema
# and headline claims — warm analyze >= 5x cold, a one-sitevar edit
# recomputes only its provenance cone, radius queries with sane quantiles.
bench-dataflow:
	$(GO) run ./cmd/benchreport -quick -only dataflow -o - > /dev/null
	$(GO) test -run TestDataflowArtifact ./internal/experiments/

# bench-monitor: smoke-run the fleet-monitoring experiment (leaves
# BENCH_monitor.json in the repo root) and assert the artifact's schema
# and headline claims — read-path overhead <= 5% with the health plane
# attached, 0 allocs per warm read/Get while monitored, time-to-head
# quantiles populated, and the convergence SLO alert firing during the
# scripted observer outage and clearing after recovery.
bench-monitor:
	$(GO) run ./cmd/benchreport -quick -only monitor -o - > /dev/null
	$(GO) test -run TestMonitorArtifact ./internal/experiments/

# bench-scale: the full-size fleet-scale run — the §6.3 propagation wave at
# 100k proxies and the §5 mobile hybrid at 1M devices, each run twice with
# the same seed — leaves BENCH_scale.json in the repo root, then asserts
# the artifact gates and the 0-alloc simnet micro-benchmarks. Minutes of
# wall clock; `check` runs the quick smoke-scale variant instead.
bench-scale:
	$(GO) run ./cmd/benchreport -only scale -o - > /dev/null
	$(GO) test -run TestScaleArtifact ./internal/experiments/
	$(GO) test -run xxx -bench 'BenchmarkSimnet(Send|Timer)$$' -benchmem .

# smoke-scale: the quick-size scale gate for `check` — regenerates the
# artifact in-process at 4k proxies / 20k devices and asserts the same
# schema, determinism, and alloc/throughput claims.
smoke-scale:
	$(GO) test -run TestScaleArtifact ./internal/experiments/
	$(GO) test -run xxx -bench 'BenchmarkSimnet(Send|Timer)$$' -benchtime 100x .

# bench-vessel: the full-size content-addressed PackageVessel run — a
# 2 GB package to a 10k-agent swarm against the §5 four-minute claim, the
# v1→v2 delta publish, and the crash-resume scenario, each fingerprinted
# for same-seed determinism — leaves BENCH_vessel.json in the repo root,
# then asserts the artifact gates at quick size. Minutes of wall clock;
# `check` runs the quick smoke-vessel variant instead.
bench-vessel:
	$(GO) run ./cmd/benchreport -only vessel -o - > /dev/null
	$(GO) test -run TestVesselArtifact ./internal/experiments/

# smoke-vessel: the quick-size vessel gate for `check` — regenerates the
# artifact in-process at 800 agents and asserts the same schema, delivery,
# dedup, resume, and determinism claims.
smoke-vessel:
	$(GO) test -run TestVesselArtifact ./internal/experiments/

# bench-compile: the shared-.cinc fan-out benchmarks behind BENCH_compile.json.
bench-compile:
	$(GO) test -run xxx -bench 'BenchmarkCDLCompileFanout|BenchmarkCDLCompileAllWorkers|BenchmarkEngine_CompileCache' -benchmem -benchtime 20x .

report:
	$(GO) run ./cmd/benchreport
