GO ?= go

.PHONY: build test check vet lint race bench-obs bench-compile bench-distribution report

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# check: the static-analysis gates (go vet for the Go code, configlint
# for the CDL corpus), the race detector over the concurrent packages
# (engine worker pool, pipeline, proxy, zeus, strip, canary, obs — zeus
# and proxy run the batched, delta-encoded distribution plane), the obs
# smoke run that regenerates BENCH_obs.json, and the distribution-plane
# smoke that regenerates and asserts BENCH_distribution.json.
check: vet lint race bench-obs bench-distribution

vet:
	$(GO) vet ./...

# lint: the CDL analyzer suite over the example corpus, at the
# strictest threshold — the examples must stay warning-free.
lint:
	$(GO) run ./cmd/configlint -C examples/configs -severity info

race:
	$(GO) test -race ./internal/obs/... ./internal/cdl/... ./internal/core/... ./internal/proxy/... ./internal/zeus/... ./internal/landingstrip/... ./internal/canary/...

# bench-obs: smoke-run the observability experiment and leave its raw
# registry dump (BENCH_obs.json) in the repo root.
bench-obs:
	$(GO) run ./cmd/benchreport -quick -only obs -o - > /dev/null

# bench-distribution: smoke-run the distribution-plane experiment (leaves
# BENCH_distribution.json in the repo root) and assert the artifact's
# schema and headline claims — group-commit speedup, delta bytes a small
# fraction of full-snapshot bytes, propagation p99 no worse.
bench-distribution:
	$(GO) run ./cmd/benchreport -quick -only distribution -o - > /dev/null
	$(GO) test -run TestDistributionArtifact ./internal/experiments/

# bench-compile: the shared-.cinc fan-out benchmarks behind BENCH_compile.json.
bench-compile:
	$(GO) test -run xxx -bench 'BenchmarkCDLCompileFanout|BenchmarkCDLCompileAllWorkers|BenchmarkEngine_CompileCache' -benchmem -benchtime 20x .

report:
	$(GO) run ./cmd/benchreport
