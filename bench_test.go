package configerator

// The benchmark harness: one benchmark per table and figure in the paper's
// evaluation (Section 6) plus the design-choice ablations from DESIGN.md.
// Each benchmark regenerates its experiment through internal/experiments
// (the same code cmd/benchreport uses for EXPERIMENTS.md), reports the
// headline number via b.ReportMetric, and prints the full rows/series once
// so `go test -bench=.` reproduces the paper's output shapes.
//
// Micro-benchmarks at the bottom measure the real (wall-clock) cost of the
// hot paths: CDL compilation, Gatekeeper checks, repository commits, line
// diffs, and canonical JSON.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"configerator/internal/cdl"
	"configerator/internal/confclient"
	"configerator/internal/experiments"
	"configerator/internal/gatekeeper"
	"configerator/internal/landingstrip"
	"configerator/internal/monitor"
	"configerator/internal/obs"
	"configerator/internal/proxy"
	"configerator/internal/simnet"
	"configerator/internal/stats"
	"configerator/internal/vclock"
	"configerator/internal/vcs"
	"configerator/internal/zeus"
)

// benchOpts picks the experiment scale: -short runs the quick variants.
func benchOpts() experiments.Options {
	return experiments.Options{Seed: 42, Quick: testing.Short()}
}

var printed sync.Map

// report prints an experiment's output once per benchmark and republishes
// its headline metrics on the benchmark line.
func report(b *testing.B, r experiments.Result, headline ...string) {
	b.Helper()
	if _, dup := printed.LoadOrStore(b.Name(), true); !dup {
		fmt.Printf("\n%s\n%s\n", r.Summary(), r.Text)
	}
	for _, h := range headline {
		if v, ok := r.Metrics[h]; ok {
			b.ReportMetric(v, h)
		}
	}
}

// ---- Figures and tables ----

func BenchmarkFig07_ConfigGrowth(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig7ConfigGrowth(benchOpts())
	}
	report(b, r, "compiled_share_at_end")
}

func BenchmarkFig08_ConfigSizeCDF(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig8ConfigSizes(benchOpts())
	}
	report(b, r, "raw_p50_bytes", "compiled_p50_bytes")
}

func BenchmarkFig09_Freshness(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig9Freshness(benchOpts())
	}
	report(b, r, "touched_within_90d", "untouched_for_300d")
}

func BenchmarkFig10_AgeAtUpdate(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig10AgeAtUpdate(benchOpts())
	}
	report(b, r, "updates_on_configs_younger_60d", "updates_on_configs_older_300d")
}

func BenchmarkTable1_UpdatesPerConfig(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table1UpdatesPerConfig(benchOpts())
	}
	report(b, r, "compiled_written_once", "raw_written_once", "raw_top1pct_update_share")
}

func BenchmarkTable2_LineChanges(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table2LineChanges(benchOpts())
	}
	report(b, r, "compiled_two_line_updates")
}

func BenchmarkTable3_CoAuthors(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table3CoAuthors(benchOpts())
	}
	report(b, r, "compiled_single_author", "raw_single_author")
}

func BenchmarkFig11_DailyCommits(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig11DailyCommits(benchOpts())
	}
	report(b, r, "configerator_weekend_ratio", "www_weekend_ratio", "fbcode_weekend_ratio")
}

func BenchmarkFig12_HourlyCommits(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig12HourlyCommits(benchOpts())
	}
	report(b, r, "peak_to_trough_ratio")
}

func BenchmarkFig13_CommitThroughput(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig13CommitThroughput(benchOpts())
	}
	report(b, r, "throughput_small_repo_per_min", "throughput_1M_files_per_min")
}

func BenchmarkFig14_PropagationLatency(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig14PropagationLatency(benchOpts())
	}
	report(b, r, "baseline_latency_s", "peak_over_baseline")
}

func BenchmarkFig15_GatekeeperChecks(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig15GatekeeperChecks(benchOpts())
	}
	report(b, r, "single_core_checks_per_sec", "sitewide_peak_billion_per_sec")
}

func BenchmarkSec64_ConfigErrors(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.Sec64ConfigErrors(benchOpts())
	}
	report(b, r, "escape_share_type1", "escape_share_type2", "escape_share_type3")
}

func BenchmarkPV_LargeConfigDelivery(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.PackageVesselDelivery(benchOpts())
	}
	report(b, r, "slowest_server_seconds", "same_cluster_chunk_fraction")
}

// ---- Ablations ----

func BenchmarkAblation_PushVsPull(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.AblationPushVsPull(benchOpts())
	}
	report(b, r, "pull_over_push_messages")
}

func BenchmarkAblation_LandingStrip(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.AblationLandingStrip(benchOpts())
	}
	report(b, r, "speedup")
}

func BenchmarkAblation_MultiRepo(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.AblationMultiRepo(benchOpts())
	}
	report(b, r, "speedup")
}

func BenchmarkAblation_P2PvsCentral(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.AblationP2PvsCentral(benchOpts())
	}
	report(b, r, "speedup")
}

func BenchmarkAblation_GatekeeperOptimizer(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.AblationGatekeeperOptimizer(benchOpts())
	}
	report(b, r, "saving_factor")
}

func BenchmarkAblation_MobileDelta(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.AblationMobileDelta(benchOpts())
	}
	report(b, r, "bandwidth_saving")
}

// ---- Micro-benchmarks of the real hot paths ----

var benchFS = cdl.MapFS{
	"scheduler/job.cinc": `
		schema Job {
			1: string name;
			2: i32 priority = 1;
			3: list<string> tags = [];
			4: map<string, i64> limits = {};
		}
		validator Job(c) { assert(c.priority >= 0 && c.priority <= 10, "range"); }
		def create_job(name, prio) {
			return Job{name: name, priority: prio, tags: ["managed", name]};
		}
	`,
	"cache/job.cconf": `
		import "scheduler/job.cinc";
		export create_job("cache", 3);
	`,
}

func BenchmarkCDLCompile(b *testing.B) {
	c := cdl.NewCompiler(benchFS)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compile("cache/job.cconf"); err != nil {
			b.Fatal(err)
		}
	}
}

// fanoutBenchFS mirrors the paper's recompile fan-out: one shared .cinc
// imported by n top-level configs (§3.1 dependency tracking, §3.3 CI
// double-compiles).
func fanoutBenchFS(n int) (cdl.MapFS, []string) {
	fs := cdl.MapFS{
		"lib/shared.cinc": `
			schema Job {
				1: string name;
				2: i32 priority = 1;
				3: list<string> tags = [];
				4: map<string, i64> limits = {};
			}
			validator Job(c) { assert(c.priority >= 0 && c.priority <= 10, "range"); }
			let total = 0;
			for (i in range(400)) {
				total = total + i * i;
			}
			def mk(name, prio) {
				return Job{name: name, priority: prio, tags: ["managed", name], limits: {"budget": total}};
			}
			export mk("shared-default", 1);
		`,
	}
	paths := make([]string, 0, n)
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("svc/app%03d.cconf", i)
		fs[p] = fmt.Sprintf("import \"lib/shared.cinc\";\nexport mk(\"svc-%03d\", %d);\n", i, i%10)
		paths = append(paths, p)
	}
	return fs, paths
}

// BenchmarkCDLCompileFanout compiles 100 configs that all import one shared
// .cinc: the seed serial path re-parses and re-evaluates the .cinc per
// dependent, the cold engine parses every source exactly once, and the warm
// engine serves the whole batch from the result cache.
func BenchmarkCDLCompileFanout(b *testing.B) {
	fs, paths := fanoutBenchFS(100)
	b.Run("seed-serial", func(b *testing.B) {
		eng := &cdl.Engine{CacheDisabled: true}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range paths {
				if _, err := eng.Compile(fs, p); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("engine-cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := cdl.NewEngine()
			if _, err := eng.CompileAll(fs, paths); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("engine-warm", func(b *testing.B) {
		eng := cdl.NewEngine()
		if _, err := eng.CompileAll(fs, paths); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.CompileAll(fs, paths); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCDLCompileAllWorkers compares a cold batch compile run serially
// (Workers=1) against the parallel worker pool. Output is byte-identical
// either way; only wall-clock differs (and only on multi-core hosts).
func BenchmarkCDLCompileAllWorkers(b *testing.B) {
	fs, paths := fanoutBenchFS(100)
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng := cdl.NewEngine()
				eng.Workers = w
				if _, err := eng.CompileAll(fs, paths); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngine_CompileCache republishes the engine experiment's headline
// metrics so benchreport and EXPERIMENTS.md carry the cache numbers.
func BenchmarkEngine_CompileCache(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.CompileEngine(benchOpts())
	}
	report(b, r, "warm_speedup_vs_seed", "touched_speedup_vs_seed", "cold_parse_miss", "warm_result_hit_delta")
}

func BenchmarkCDLEvalExpr(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cdl.EvalExpr(`{rate: 0.05 * 2, hosts: ["a", "b"], on: 1 < 2}`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGatekeeperCheck(b *testing.B) {
	reg := gatekeeper.NewRegistry(nil)
	rt := gatekeeper.NewRuntime(reg)
	spec := &gatekeeper.ProjectSpec{Project: "P", Rules: []gatekeeper.RuleSpec{
		{
			Restraints: []gatekeeper.RestraintSpec{
				{Name: "country", Params: gatekeeper.Params{"in": []string{"US", "CA"}}},
				{Name: "app_version_at_least", Params: gatekeeper.Params{"version": 100.0}},
			},
			PassProbability: 0.10,
		},
		{
			Restraints:      []gatekeeper.RestraintSpec{{Name: "always"}},
			PassProbability: 0.01,
		},
	}}
	if err := rt.Load(spec.Encode()); err != nil {
		b.Fatal(err)
	}
	u := &gatekeeper.User{ID: 1, Country: "US", AppVersion: 120, Now: vclock.Epoch}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u.ID = int64(i)
		rt.Check("P", u)
	}
}

func BenchmarkVCSCommit(b *testing.B) {
	repo := vcs.NewRepository("bench")
	content := []byte(`{"a":1,"b":[1,2,3],"c":"value"}`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		repo.CommitChanges("bench", "change", vclock.Epoch,
			vcs.Change{Path: fmt.Sprintf("f%d.json", i%1000), Content: content})
	}
}

func BenchmarkDiffLines(b *testing.B) {
	oldC := make([]byte, 0, 4096)
	newC := make([]byte, 0, 4096)
	for i := 0; i < 100; i++ {
		oldC = append(oldC, []byte(fmt.Sprintf("line %d\n", i))...)
		if i == 50 {
			newC = append(newC, []byte("changed line\n")...)
		} else {
			newC = append(newC, []byte(fmt.Sprintf("line %d\n", i))...)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vcs.DiffLines(oldC, newC)
	}
}

func BenchmarkCanonicalJSON(b *testing.B) {
	v := cdl.Map{
		"name":    cdl.Str("cache"),
		"weights": cdl.List{cdl.Float(0.1), cdl.Float(0.2), cdl.Float(0.7)},
		"limits":  cdl.Map{"mem": cdl.Int(512), "cpu": cdl.Int(4)},
		"enabled": cdl.Bool(true),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cdl.MarshalJSON(v); err != nil {
			b.Fatal(err)
		}
	}
}

// readpathStack boots a one-proxy pipeline, commits one config, and warms
// it: the fixture for the read-hot-path micro-benchmarks below. With
// withMonitor the fleet-health plane is attached (proxy heartbeats plus a
// sweeping monitor) before warmup, so the benchmarks double as the gate
// that monitoring never touches the read hot path.
func readpathStack(b *testing.B, withObs, withMonitor bool) (*confclient.Client, *proxy.Proxy, string) {
	b.Helper()
	net := simnet.New(simnet.DefaultLatency(), 7)
	ens := zeus.StartEnsemble(net, 3, []simnet.Placement{
		{Region: "us", Cluster: "zk1"},
		{Region: "us", Cluster: "zk2"},
		{Region: "eu", Cluster: "zk3"},
	})
	ens.AddObserver("obs-1", simnet.Placement{Region: "us", Cluster: "web"})
	wc := zeus.NewClient("writer", ens.Members)
	net.AddNode("writer", simnet.Placement{Region: "us", Cluster: "ctrl"}, wc)
	net.RunFor(10 * time.Second)
	px := proxy.New(net, "proxy-1", simnet.Placement{Region: "us", Cluster: "web"},
		[]simnet.NodeID{"obs-1"}, nil)
	cl := confclient.New(px)
	var reg *obs.Registry
	if withObs || withMonitor {
		reg = obs.New()
	}
	if withObs {
		cl.SetObs(reg)
	}
	if withMonitor {
		m := monitor.New(monitor.Config{
			ID: "mon", Ensemble: ens, Obs: reg,
			SweepEvery: 500 * time.Millisecond, HeartbeatEvery: 200 * time.Millisecond,
			SLOs: []*monitor.SLO{monitor.ConvergenceSLO(0.99, 2*time.Second)},
		})
		m.Attach(net, simnet.Placement{Region: "us", Cluster: "web"})
		px.EnableMonitor("mon", 200*time.Millisecond)
	}
	const path = "/configs/bench/hot"
	done := false
	net.After(0, func() {
		ctx := simnet.MakeContext(net, "writer")
		wc.Write(&ctx, path, []byte(`{"enabled":true,"batch":64,"rate":0.25}`),
			func(zeus.WriteResult) { done = true })
	})
	for i := 0; i < 100 && !done; i++ {
		net.RunFor(200 * time.Millisecond)
	}
	if !done {
		b.Fatal("write never committed")
	}
	cl.Want(path)
	net.RunFor(5 * time.Second)
	if _, err := cl.Get(context.Background(), path); err != nil { // warm: first-read event + decode
		b.Fatal(err)
	}
	return cl, px, path
}

// BenchmarkProxyReadWarm: one atomic snapshot load plus map lookups. The
// final AllocsPerRun check turns the benchmark into a regression gate —
// a warm Read must stay at 0 allocs/op, with and without the fleet-health
// monitoring plane attached (heartbeats ride the sim loop, never reads).
func BenchmarkProxyReadWarm(b *testing.B) {
	for _, cfg := range []struct {
		name        string
		withMonitor bool
	}{{"bare", false}, {"monitored", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			_, px, path := readpathStack(b, true, cfg.withMonitor)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := px.Read(path); !res.OK {
					b.Fatal("warm read failed")
				}
			}
			b.StopTimer()
			if a := testing.AllocsPerRun(100, func() { px.Read(path) }); a != 0 {
				b.Fatalf("warm proxy.Read (%s) allocates %.1f per op, want 0", cfg.name, a)
			}
		})
	}
}

// BenchmarkClientGetWarm: proxy read plus memoized decode lookup, with and
// without an obs registry attached. The no-obs variant exercises the no-op
// counter sink hoisted in confclient.New — attaching real counters must not
// change the allocation count, and nil-safety costs nothing per call.
func BenchmarkClientGetWarm(b *testing.B) {
	for _, cfg := range []struct {
		name        string
		withObs     bool
		withMonitor bool
	}{{"no-obs", false, false}, {"with-obs", true, false}, {"monitored", true, true}} {
		b.Run(cfg.name, func(b *testing.B) {
			cl, _, path := readpathStack(b, cfg.withObs, cfg.withMonitor)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := cl.Get(ctx, path)
				if err != nil || !v.Bool("enabled", false) {
					b.Fatal("warm get failed")
				}
			}
			b.StopTimer()
			if a := testing.AllocsPerRun(100, func() { cl.Get(ctx, path) }); a != 0 {
				b.Fatalf("warm Get (%s) allocates %.1f per op, want 0", cfg.name, a)
			}
		})
	}
}

func BenchmarkUserSampling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		stats.HashFloat("ProjectX:123456789")
	}
}

func BenchmarkLandingStripThroughputSmallRepo(b *testing.B) {
	// Real wall-clock cost of our own store under the Fig 13 replay load
	// (the virtual cost model is benchmarked by BenchmarkFig13).
	repo := vcs.NewRepository("bench")
	strip := landingstrip.New(repo, vcs.DefaultCostModel())
	now := vclock.Epoch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wc := repo.Clone("eng")
		wc.Write(fmt.Sprintf("cfg/f%d.json", i), []byte(`{"v":1}`))
		res := strip.Submit(wc.Diff("c"), now)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		now = res.Finish
	}
}

// BenchmarkSimnetSend / BenchmarkSimnetTimer: the fleet-scale simulator's
// hot loop (timer wheel + pooled events + dense node table, DESIGN.md §14).
// The AllocsPerRun check is the hard regression gate: warm steady state —
// events from the freelist, link/node state in pre-grown maps — must be
// exactly 0 allocs/op, or a 10M-event fleet run starts thrashing the GC.
func simnetBenchNet() *simnet.Network {
	net := simnet.New(simnet.DefaultLatency(), 7)
	place := simnet.Placement{Region: "us", Cluster: "web"}
	h := simnet.HandlerFunc(func(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {})
	net.AddNode("a", place, h)
	net.AddNode("b", place, h)
	msg := &struct{}{}
	for i := 0; i < 1000; i++ { // warm: freelist populated, link maps grown
		net.SendSized("a", "b", msg, 1024)
		net.SetTimer("b", time.Millisecond, msg)
		net.Step()
		net.Step()
	}
	return net
}

func BenchmarkSimnetSend(b *testing.B) {
	net := simnetBenchNet()
	msg := &struct{}{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.SendSized("a", "b", msg, 1024)
		net.Step()
	}
	b.StopTimer()
	if a := testing.AllocsPerRun(100, func() {
		net.SendSized("a", "b", msg, 1024)
		net.Step()
	}); a != 0 {
		b.Fatalf("warm Send+Step allocates %.1f per op, want 0", a)
	}
}

func BenchmarkSimnetTimer(b *testing.B) {
	net := simnetBenchNet()
	msg := &struct{}{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.SetTimer("a", time.Millisecond, msg)
		net.Step()
	}
	b.StopTimer()
	if a := testing.AllocsPerRun(100, func() {
		net.SetTimer("a", time.Millisecond, msg)
		net.Step()
	}); a != 0 {
		b.Fatalf("warm SetTimer+Step allocates %.1f per op, want 0", a)
	}
}
