// Command configerator is the CLI front door to the config-as-code
// toolchain: compile CDL sources to canonical JSON, validate them, list
// dependency edges, and evaluate sitevar expressions.
//
// Usage:
//
//	configerator compile [-root DIR] FILE.cconf   # compile to stdout
//	configerator build   [-root DIR] FILE.cconf   # write FILE.json next to the source
//	configerator check   [-root DIR] FILE.cconf   # compile + validators, report only
//	configerator deps    [-root DIR] FILE.cconf   # print direct + transitive imports
//	configerator eval    EXPR                     # evaluate a sitevar expression
//	configerator trace   [-json] [COMMIT]         # commit-scoped span tree from a demo fleet
//	configerator status  [-json]                  # fleet convergence, stragglers, SLO alerts
//	configerator vessel  [-json] publish|promote|status   # content-addressed package registry demo
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"configerator/internal/cdl"
	"configerator/internal/core"
)

// dirFS serves CDL modules from a directory tree.
type dirFS struct{ root string }

func (d dirFS) ReadFile(path string) ([]byte, error) {
	clean := filepath.Clean("/" + path) // confine to the root
	return os.ReadFile(filepath.Join(d.root, clean))
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	root := fs.String("root", ".", "config source tree root")
	asJSON := fs.Bool("json", false, "emit deterministic JSON instead of text (trace, status)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	args := fs.Args()

	switch cmd {
	case "compile", "build", "check":
		if len(args) != 1 {
			fatal("%s requires exactly one FILE.cconf", cmd)
		}
		file := args[0]
		res, err := cdl.NewCompiler(dirFS{root: *root}).Compile(file)
		if err != nil {
			fatal("compile failed: %v", err)
		}
		switch cmd {
		case "compile":
			fmt.Println(string(res.JSON))
		case "build":
			out := filepath.Join(*root, core.ArtifactPath(file))
			if err := os.WriteFile(out, append(res.JSON, '\n'), 0o644); err != nil {
				fatal("writing artifact: %v", err)
			}
			fmt.Printf("wrote %s (%d bytes, schema %s)\n", out, len(res.JSON), orNone(res.SchemaName))
		case "check":
			fmt.Printf("OK: %s compiles (schema %s, %d deps), validators passed\n",
				file, orNone(res.SchemaName), len(res.Deps))
		}
	case "deps":
		if len(args) != 1 {
			fatal("deps requires exactly one FILE")
		}
		src, err := dirFS{root: *root}.ReadFile(args[0])
		if err != nil {
			fatal("%v", err)
		}
		direct, err := cdl.ListImports(args[0], src)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Println("direct imports:")
		for _, d := range direct {
			fmt.Println("  " + d)
		}
		if res, err := cdl.NewCompiler(dirFS{root: *root}).Compile(args[0]); err == nil {
			fmt.Println("transitive deps:")
			for _, d := range res.Deps {
				fmt.Println("  " + d)
			}
		}
	case "eval":
		if len(args) != 1 {
			fatal("eval requires exactly one EXPR")
		}
		v, err := cdl.EvalExpr(args[0])
		if err != nil {
			fatal("%v", err)
		}
		js, err := cdl.MarshalJSON(v)
		if err != nil {
			fatal("%v", err)
		}
		fmt.Println(js)
	case "trace":
		runTrace(args, *asJSON)
	case "status":
		if len(args) != 0 {
			fatal("status takes no arguments")
		}
		runStatus(*asJSON)
	case "vessel":
		runVessel(args, *asJSON)
	case "help", "-h", "--help":
		usage()
	default:
		fatal("unknown command %q", cmd)
	}
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "configerator: "+format+"\n", args...)
	os.Exit(1)
}

func usage() {
	fmt.Println(strings.TrimSpace(`
configerator — config-as-code toolchain

  configerator compile [-root DIR] FILE.cconf   compile to stdout
  configerator build   [-root DIR] FILE.cconf   write FILE.json next to the source
  configerator check   [-root DIR] FILE.cconf   compile + run validators
  configerator deps    [-root DIR] FILE         print import edges
  configerator eval    EXPR                     evaluate a sitevar expression
  configerator trace   [-json] [COMMIT]         span tree of a change through a demo fleet
  configerator status  [-json]                  fleet convergence, stragglers, and SLO alerts
  configerator vessel  [-json] publish [NAME [SIZE_MB]]   publish + swarm a package (demo fleet)
  configerator vessel  [-json] promote [NAME TAG VERSION] move a tag through the strip gate
  configerator vessel  [-json] status                     registry packages, versions, and tags
`))
}
