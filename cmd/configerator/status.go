package main

import (
	"fmt"
	"time"

	"configerator/internal/cluster"
	"configerator/internal/core"
	"configerator/internal/monitor"
	"configerator/internal/obs"
	"configerator/internal/simnet"
)

// runStatus stands up the instrumented demo fleet with the fleet-health
// plane attached, drives a short outage-and-recovery timeline through it,
// and prints the operator status view: per-path convergence, propagation
// quantiles, stragglers, and the SLO alerts the outage fired and cleared.
// With -json it emits the deterministic machine form instead.
func runStatus(asJSON bool) {
	reg := obs.New()
	cfg := cluster.SmallConfig(2, 7)
	cfg.Obs = reg
	fleet := cluster.New(cfg)
	fleet.Net.RunFor(10 * time.Second)
	mon := fleet.AttachMonitor(monitor.Config{
		SweepEvery: time.Second,
		SLOs: []*monitor.SLO{
			monitor.ConvergenceSLO(0.99, 2*time.Second),
			monitor.StalenessSLO(0.99, 15*time.Second),
		},
	})
	p := core.New(core.Options{Fleet: fleet, CanaryPhase1: 2, CanaryPhase2: 4})

	// Land a config and let the fleet converge under the monitor's eye.
	const path = "demo/status.json"
	fleet.SubscribeAll(core.ZeusPath(path))
	land := func(rev int) {
		rep := p.Submit(&core.ChangeRequest{
			Author: "demo", Reviewer: "reviewer",
			Title: fmt.Sprintf("status demo rev %d", rev),
			Raws:  map[string][]byte{path: []byte(fmt.Sprintf(`{"rev":%d}`, rev))},
		})
		if !rep.OK() {
			fatal("demo change failed at %s: %v", rep.FailedStage, rep.Err)
		}
	}
	land(1)
	fleet.Net.RunFor(5 * time.Second)

	// A short scripted outage so the status view has a story to tell:
	// one cluster loses its observers, falls behind, then recovers.
	var uw1 []simnet.NodeID = fleet.Observers("uw1")
	for _, id := range uw1 {
		fleet.Net.Fail(id)
	}
	for rev := 2; rev <= 6; rev++ {
		land(rev)
		fleet.Net.RunFor(2 * time.Second)
	}
	for _, id := range uw1 {
		fleet.Net.Recover(id)
	}
	fleet.Net.RunFor(20 * time.Second)

	st := mon.Status()
	if asJSON {
		fmt.Println(st.JSON())
		return
	}
	fmt.Print(st.Text())
}
