package main

import (
	"fmt"
	"time"

	"configerator/internal/cluster"
	"configerator/internal/core"
	"configerator/internal/obs"
)

// runTrace drives one canaried change through an instrumented demo fleet
// and prints its commit-scoped span tree: the five pipeline stages plus
// the Zeus push-tree hops (leader commit → observer apply → proxy
// materialize) stitched in by path/zxid. With a COMMIT argument it
// resolves that trace (landed-hash prefixes work) instead of the demo
// change's own. With -json the span tree is emitted in the registry's
// deterministic JSON encoding instead of the text rendering.
func runTrace(args []string, asJSON bool) {
	if len(args) > 1 {
		fatal("trace takes at most one COMMIT argument")
	}
	reg := obs.New()
	cfg := cluster.SmallConfig(2, 7)
	cfg.Obs = reg
	fleet := cluster.New(cfg)
	fleet.Net.RunFor(10 * time.Second)
	p := core.New(core.Options{Fleet: fleet, CanaryPhase1: 2, CanaryPhase2: 4})

	const path = "demo/trace.json"
	fleet.SubscribeAll(core.ZeusPath(path))
	rep := p.Submit(&core.ChangeRequest{
		Author: "demo", Reviewer: "reviewer", Title: "trace demo",
		Raws: map[string][]byte{path: []byte(`{"demo":true}`)},
	})
	if !rep.OK() {
		fatal("demo change failed at %s: %v", rep.FailedStage, rep.Err)
	}
	key := ""
	for _, h := range rep.Landed {
		key = h.String()
	}
	if len(args) == 1 {
		key = args[0]
	}
	tr := reg.TraceByKey(key)
	if tr == nil {
		fmt.Println("known trace keys:")
		for _, t := range reg.Traces() {
			fmt.Printf("  %s  (aliases %v)\n", t.Key, t.Aliases)
		}
		fatal("no trace for %q", key)
	}

	if asJSON {
		fmt.Println(tr.JSON())
		return
	}
	fmt.Print(tr.Render())
	fmt.Println("\npush-tree latency across the demo fleet:")
	for _, name := range []string{
		obs.HistHopLeaderObserver, obs.HistHopObserverProxy,
		obs.HistCommitToProxy, obs.HistCommitToRead,
	} {
		if h := reg.Histogram(name); h.Count() > 0 {
			fmt.Printf("  %-24s %s\n", name, h.Summary())
		}
	}
}
