package main

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"time"

	"configerator/internal/landingstrip"
	"configerator/internal/packagevessel"
	"configerator/internal/packagevessel/blob"
	"configerator/internal/simnet"
	"configerator/internal/vclock"
	"configerator/internal/vcs"
)

// vesselWorld is the in-process demo universe the vessel subcommands
// operate on (same pattern as `status`): a content-addressed registry, a
// tracker, a small swarm fleet, and a landing strip whose gate validates
// tag promotions. Everything is seeded, so repeated runs print the same
// numbers.
type vesselWorld struct {
	net      *simnet.Network
	registry *packagevessel.Registry
	tracker  *packagevessel.Tracker
	agents   []*packagevessel.Agent
	strip    *landingstrip.Strip
}

const vesselDemoSeed = 7

func newVesselWorld() *vesselWorld {
	net := simnet.New(simnet.DefaultLatency(), vesselDemoSeed)
	const bps = 1.25e8 // 1 Gbit/s
	w := &vesselWorld{net: net}
	w.registry = packagevessel.NewRegistry(net, "registry",
		simnet.Placement{Region: "us", Cluster: "store"}, "tracker")
	net.SetBandwidth("registry", bps, bps)
	w.tracker = packagevessel.NewTracker(net, "tracker",
		simnet.Placement{Region: "us", Cluster: "store"})
	for i := 0; i < 24; i++ {
		cl := fmt.Sprintf("c%d", i%4)
		region := "us"
		if i%4 >= 2 {
			region = "eu"
		}
		id := simnet.NodeID(fmt.Sprintf("srv-%d", i))
		a := packagevessel.NewAgent(net, id,
			simnet.Placement{Region: region, Cluster: cl}, packagevessel.Options{})
		net.SetBandwidth(id, bps, bps)
		w.agents = append(w.agents, a)
	}
	repo := vcs.NewRepository("shared")
	w.strip = landingstrip.New(repo, vcs.DefaultCostModel())
	w.strip.Gate = landingstrip.RulesFor(w.registry).Gate
	return w
}

// publish registers a synthetic package version in the registry.
func (w *vesselWorld) publish(name string, version int64, sizeMB int) blob.Manifest {
	var pkg packagevessel.Package
	if version > 1 {
		base := packagevessel.SyntheticPackage(name, 1, sizeMB<<20,
			packagevessel.DefaultChunkSize, vesselDemoSeed)
		pkg = packagevessel.NextVersion(base, version, 0.125, vesselDemoSeed)
	} else {
		pkg = packagevessel.SyntheticPackage(name, version, sizeMB<<20,
			packagevessel.DefaultChunkSize, vesselDemoSeed)
	}
	m, err := w.registry.Publish(pkg)
	if err != nil {
		fatal("publish %s@%d: %v", name, version, err)
	}
	return m
}

// deliver swarms a manifest to the demo fleet and reports the spread.
func (w *vesselWorld) deliver(m blob.Manifest) (slowest time.Duration, fetched, deduped int) {
	meta := packagevessel.MetadataFor(m, w.registry.ID(), w.tracker.ID())
	done := 0
	for _, a := range w.agents {
		a.OnComplete(func(_ blob.Manifest, took time.Duration, st packagevessel.TransferStats) {
			done++
			fetched += st.ChunksFetched
			deduped += st.ChunksDeduped
			if took > slowest {
				slowest = took
			}
		})
		a.OnAnnounce(meta)
	}
	w.net.RunFor(10 * time.Minute)
	if done != len(w.agents) {
		fatal("vessel demo fleet incomplete: %d of %d", done, len(w.agents))
	}
	return slowest, fetched, deduped
}

// promoteThroughStrip routes a Promote through the landing strip gate —
// the tag write lands like any other reviewed config change or is
// refused by the promotion rules.
func (w *vesselWorld) promoteThroughStrip(name, tag string, version int64) error {
	rec, err := w.registry.Promote(name, tag, version)
	if err != nil {
		return err
	}
	data, err := rec.Encode()
	if err != nil {
		return err
	}
	wc := w.strip.Repo().Clone("promoter")
	wc.Write(packagevessel.TagPath(name, tag), data)
	res := w.strip.Submit(wc.Diff(fmt.Sprintf("promote %s/%s -> v%d", name, tag, version)), vclock.Epoch)
	if res.Err != nil {
		return res.Err
	}
	return w.registry.ApplyTag(rec)
}

// runVessel dispatches the vessel subcommands.
func runVessel(args []string, asJSON bool) {
	if len(args) == 0 {
		fatal("vessel requires a subcommand: publish, promote, or status")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "publish":
		runVesselPublish(rest, asJSON)
	case "promote":
		runVesselPromote(rest, asJSON)
	case "status":
		runVesselStatus(rest, asJSON)
	default:
		fatal("unknown vessel subcommand %q (want publish, promote, or status)", sub)
	}
}

// runVesselPublish publishes v1 of a package into the content-addressed
// registry, swarms it to the demo fleet, then publishes a 12.5% delta as
// v2 — showing dedup at the registry and on the wire.
func runVesselPublish(args []string, asJSON bool) {
	name, sizeMB := "feed-ranker-model", 64
	if len(args) > 0 {
		name = args[0]
	}
	if len(args) > 1 {
		n, err := strconv.Atoi(args[1])
		if err != nil || n <= 0 || n > 1024 {
			fatal("SIZE_MB must be a positive integer up to 1024, got %q", args[1])
		}
		sizeMB = n
	}
	if len(args) > 2 {
		fatal("vessel publish takes at most NAME and SIZE_MB")
	}

	w := newVesselWorld()
	m1 := w.publish(name, 1, sizeMB)
	st1 := w.registry.LastPublish()
	slow1, fetched1, _ := w.deliver(m1)
	m2 := w.publish(name, 2, sizeMB)
	st2 := w.registry.LastPublish()
	slow2, fetched2, deduped2 := w.deliver(m2)

	if asJSON {
		out := struct {
			Name        string `json:"name"`
			SizeMB      int    `json:"size_mb"`
			V1Manifest  string `json:"v1_manifest"`
			V2Manifest  string `json:"v2_manifest"`
			V1New       int    `json:"v1_new_chunks"`
			V2New       int    `json:"v2_new_chunks"`
			V2Dedup     int    `json:"v2_dedup_chunks"`
			V1SlowestMs int64  `json:"v1_slowest_ms"`
			V2SlowestMs int64  `json:"v2_slowest_ms"`
			V1Fetched   int    `json:"v1_fleet_chunks_fetched"`
			V2Fetched   int    `json:"v2_fleet_chunks_fetched"`
			V2Deduped   int    `json:"v2_fleet_chunks_deduped"`
		}{name, sizeMB, m1.Digest().String(), m2.Digest().String(),
			st1.NewChunks, st2.NewChunks, st2.DedupChunks,
			slow1.Milliseconds(), slow2.Milliseconds(),
			fetched1, fetched2, deduped2}
		printJSON(out)
		return
	}
	fmt.Printf("published %s v1 (%d MB): manifest %s, %d chunks stored\n",
		name, sizeMB, m1.Digest(), st1.NewChunks)
	fmt.Printf("  swarm delivery to %d servers: slowest %v, fleet fetched %d chunks\n",
		len(w.agents), slow1.Round(time.Millisecond), fetched1)
	fmt.Printf("published %s v2 (12.5%% delta): manifest %s, %d new chunks, %d deduped against v1\n",
		name, m2.Digest(), st2.NewChunks, st2.DedupChunks)
	fmt.Printf("  swarm delivery: slowest %v, fleet fetched %d chunks, deduped %d from local stores\n",
		slow2.Round(time.Millisecond), fetched2, deduped2)
	fmt.Printf("  tags: %v\n", w.registry.Tags(name))
}

// runVesselPromote moves a tag through the landing-strip promotion gate.
func runVesselPromote(args []string, asJSON bool) {
	name, tag, version := "feed-ranker-model", "canary", int64(2)
	if len(args) > 0 {
		if len(args) != 3 {
			fatal("vessel promote takes NAME TAG VERSION (or no arguments for the demo)")
		}
		name, tag = args[0], args[1]
		v, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil || v <= 0 {
			fatal("VERSION must be a positive integer, got %q", args[2])
		}
		version = v
	}

	w := newVesselWorld()
	// The demo registry holds v1 and v2 of the default package.
	w.publish("feed-ranker-model", 1, 16)
	w.publish("feed-ranker-model", 2, 16)

	err := w.promoteThroughStrip(name, tag, version)
	if asJSON {
		out := struct {
			Name    string `json:"name"`
			Tag     string `json:"tag"`
			Version int64  `json:"version"`
			Landed  bool   `json:"landed"`
			Error   string `json:"error,omitempty"`
		}{Name: name, Tag: tag, Version: version, Landed: err == nil}
		if err != nil {
			out.Error = err.Error()
		}
		printJSON(out)
		if err != nil {
			// Machine callers still need the failure exit code.
			fmt.Println()
			fatal("promotion refused")
		}
		return
	}
	if err != nil {
		fatal("promotion %s/%s -> v%d refused: %v", name, tag, version, err)
	}
	fmt.Printf("promoted %s/%s -> v%d (tag record landed through the strip gate at %s)\n",
		name, tag, version, packagevessel.TagPath(name, tag))
	fmt.Printf("  tags now: %v\n", w.registry.Tags(name))
}

// runVesselStatus prints the registry's view after the demo rollout:
// packages, versions, tags, and chunk-store accounting.
func runVesselStatus(args []string, asJSON bool) {
	if len(args) != 0 {
		fatal("vessel status takes no arguments")
	}
	w := newVesselWorld()
	m1 := w.publish("feed-ranker-model", 1, 64)
	w.deliver(m1)
	m2 := w.publish("feed-ranker-model", 2, 64)
	st := w.registry.LastPublish()
	w.deliver(m2)
	for _, tag := range []string{"canary", "prod"} {
		if err := w.promoteThroughStrip("feed-ranker-model", tag, 2); err != nil {
			fatal("demo promotion failed: %v", err)
		}
	}

	type pkgView struct {
		Name     string           `json:"name"`
		Versions []int64          `json:"versions"`
		Tags     map[string]int64 `json:"tags"`
	}
	var pkgs []pkgView
	for _, name := range w.registry.PackageNames() {
		view := pkgView{Name: name, Tags: w.registry.Tags(name)}
		for v := int64(1); w.registry.HasVersion(name, v); v++ {
			view.Versions = append(view.Versions, v)
		}
		pkgs = append(pkgs, view)
	}
	if asJSON {
		out := struct {
			Packages   []pkgView `json:"packages"`
			LastNew    int       `json:"last_publish_new_chunks"`
			LastDedup  int       `json:"last_publish_dedup_chunks"`
			SavedBytes int64     `json:"last_publish_dedup_bytes"`
		}{pkgs, st.NewChunks, st.DedupChunks, st.DedupBytes}
		printJSON(out)
		return
	}
	fmt.Printf("registry: %d package(s)\n", len(pkgs))
	for _, p := range pkgs {
		fmt.Printf("  %-24s versions %v\n", p.Name, p.Versions)
		tags := make([]string, 0, len(p.Tags))
		for t := range p.Tags {
			tags = append(tags, t)
		}
		sort.Strings(tags)
		for _, t := range tags {
			fmt.Printf("    %-8s -> v%d  (%s)\n", t, p.Tags[t], packagevessel.TagPath(p.Name, t))
		}
	}
	fmt.Printf("last publish: %d new chunks, %d deduped (%.0f MB not re-stored)\n",
		st.NewChunks, st.DedupChunks, float64(st.DedupBytes)/(1<<20))
}

func printJSON(v interface{}) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal("encoding JSON: %v", err)
	}
	fmt.Println(string(data))
}
