// Command configlint runs the CDL static-analysis suite over a config
// tree — the same analyzers that gate pipeline stage 1, the CI sandbox,
// and the landing strip, usable from an editor or a pre-commit hook.
//
// Usage:
//
//	configlint [flags] [path ...]
//
// Paths are files or directories relative to the tree root (-C),
// defaulting to the whole tree. Directories are walked for .cconf and
// .cinc files; import paths resolve against the root, exactly like the
// compiler.
//
// Exit code contract:
//
//	0  no diagnostic at or above the -severity threshold
//	1  at least one diagnostic at or above the threshold
//	2  internal error (bad flags, unreadable tree)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"configerator/internal/cdl"
	"configerator/internal/cdl/analysis"
)

type options struct {
	root     string
	jsonOut  bool
	severity string
	// deprecated holds -deprecated name=note pairs.
	deprecated map[string]string
}

// dirFS serves repository-relative paths from the tree root.
type dirFS struct{ root string }

func (d dirFS) ReadFile(path string) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.root, filepath.FromSlash(path)))
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	opts := options{deprecated: map[string]string{}}
	fs := flag.NewFlagSet("configlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&opts.root, "C", ".", "config tree root; import paths resolve against it")
	fs.BoolVar(&opts.jsonOut, "json", false, "emit diagnostics as JSON")
	fs.StringVar(&opts.severity, "severity", "error",
		"exit non-zero when a diagnostic at or above this severity exists (error, warn, info)")
	fs.Func("deprecated", "mark a sitevar deprecated, as name=note (repeatable)", func(v string) error {
		name, note, ok := strings.Cut(v, "=")
		if !ok || name == "" {
			return fmt.Errorf("want name=note, got %q", v)
		}
		opts.deprecated[name] = note
		return nil
	})
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: configlint [flags] [path ...]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stderr, "  %-20s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	threshold, err := analysis.ParseSeverity(opts.severity)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	roots, err := collectRoots(opts.root, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "configlint:", err)
		return 2
	}
	if len(roots) == 0 {
		fmt.Fprintln(stderr, "configlint: no .cconf or .cinc files found")
		return 2
	}

	driver := analysis.NewDriver(cdl.NewEngine(), dirFS{root: opts.root})
	driver.DeprecatedSitevars = opts.deprecated
	diags, err := driver.Run(roots)
	if err != nil {
		fmt.Fprintln(stderr, "configlint:", err)
		return 2
	}

	if opts.jsonOut {
		writeJSON(stdout, diags)
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
			if d.SuggestedFix != "" {
				fmt.Fprintf(stdout, "\tfix: %s\n", d.SuggestedFix)
			}
		}
		if len(diags) > 0 {
			fmt.Fprintln(stdout, analysis.Summary(diags))
		}
	}
	if len(analysis.Filter(diags, threshold)) > 0 {
		return 1
	}
	return 0
}

// collectRoots resolves the argument list (files or directories, relative
// to root) into the sorted set of lintable source paths.
func collectRoots(root string, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"."}
	}
	seen := map[string]bool{}
	var roots []string
	add := func(rel string) {
		rel = filepath.ToSlash(rel)
		if !seen[rel] {
			seen[rel] = true
			roots = append(roots, rel)
		}
	}
	for _, arg := range args {
		full := filepath.Join(root, filepath.FromSlash(arg))
		info, err := os.Stat(full)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			add(arg)
			continue
		}
		err = filepath.Walk(full, func(path string, fi os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if fi.IsDir() {
				return nil
			}
			if strings.HasSuffix(path, ".cconf") || strings.HasSuffix(path, ".cinc") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				add(rel)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(roots)
	return roots, nil
}

// jsonDiag is the CLI's JSON shape for one diagnostic.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	EndLine  int    `json:"end_line"`
	EndCol   int    `json:"end_col"`
	Severity string `json:"severity"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Fix      string `json:"suggested_fix,omitempty"`
}

type jsonReport struct {
	Diagnostics []jsonDiag `json:"diagnostics"`
	Errors      int        `json:"errors"`
	Warnings    int        `json:"warnings"`
	Infos       int        `json:"infos"`
}

func writeJSON(w io.Writer, diags []analysis.Diagnostic) {
	rep := jsonReport{Diagnostics: []jsonDiag{}}
	for _, d := range diags {
		rep.Diagnostics = append(rep.Diagnostics, jsonDiag{
			File: d.Pos.File, Line: d.Pos.Line, Col: d.Pos.Col,
			EndLine: d.End.Line, EndCol: d.End.Col,
			Severity: d.Severity.String(), Analyzer: d.Analyzer,
			Message: d.Message, Fix: d.SuggestedFix,
		})
		switch d.Severity {
		case analysis.Error:
			rep.Errors++
		case analysis.Warn:
			rep.Warnings++
		default:
			rep.Infos++
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
}
