// Command configlint runs the CDL static-analysis suite over a config
// tree — the same analyzers that gate pipeline stage 1, the CI sandbox,
// and the landing strip, usable from an editor or a pre-commit hook.
//
// Usage:
//
//	configlint [flags] [path ...]
//	configlint blast [flags] <path|sitevar:name|gatekeeper:name|env:NAME> ...
//	configlint why [flags] <artifact> [field]
//
// Paths are files or directories relative to the tree root (-C),
// defaulting to the whole tree. Directories are walked for .cconf and
// .cinc files; import paths resolve against the root, exactly like the
// compiler. -severity filters the displayed diagnostics (text and JSON
// identically) as well as gating the exit code.
//
// The blast subcommand answers "what does this edit reach": the downstream
// artifacts, consumer bindings, canary domains, and deterministic risk
// score of changing the given paths or external-input tokens. The why
// subcommand answers the inverse: where an artifact (or one field of it)
// gets its value from — every module, sitevar, gatekeeper, and env input
// on its dataflow paths. Both accept -json.
//
// Exit code contract:
//
//	0  no diagnostic at or above the -severity threshold
//	1  at least one diagnostic at or above the threshold
//	2  internal error (bad flags, unreadable tree, unknown artifact/field)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"configerator/internal/cdl"
	"configerator/internal/cdl/analysis"
	"configerator/internal/cdl/analysis/dataflow"
)

type options struct {
	root     string
	jsonOut  bool
	severity string
	// deprecated holds -deprecated name=note pairs.
	deprecated map[string]string
}

// dirFS serves repository-relative paths from the tree root.
type dirFS struct{ root string }

func (d dirFS) ReadFile(path string) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.root, filepath.FromSlash(path)))
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		switch args[0] {
		case "blast":
			return runBlast(args[1:], stdout, stderr)
		case "why":
			return runWhy(args[1:], stdout, stderr)
		}
	}
	opts := options{deprecated: map[string]string{}}
	fs := flag.NewFlagSet("configlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&opts.root, "C", ".", "config tree root; import paths resolve against it")
	fs.BoolVar(&opts.jsonOut, "json", false, "emit diagnostics as JSON")
	fs.StringVar(&opts.severity, "severity", "error",
		"exit non-zero when a diagnostic at or above this severity exists (error, warn, info)")
	fs.Func("deprecated", "mark a sitevar deprecated, as name=note (repeatable)", func(v string) error {
		name, note, ok := strings.Cut(v, "=")
		if !ok || name == "" {
			return fmt.Errorf("want name=note, got %q", v)
		}
		opts.deprecated[name] = note
		return nil
	})
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: configlint [flags] [path ...]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stderr, "  %-20s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	threshold, err := analysis.ParseSeverity(opts.severity)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	roots, err := collectRoots(opts.root, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "configlint:", err)
		return 2
	}
	if len(roots) == 0 {
		fmt.Fprintln(stderr, "configlint: no .cconf or .cinc files found")
		return 2
	}

	driver := analysis.NewDriver(cdl.NewEngine(), dirFS{root: opts.root})
	driver.DeprecatedSitevars = opts.deprecated
	diags, err := driver.Run(roots)
	if err != nil {
		fmt.Fprintln(stderr, "configlint:", err)
		return 2
	}

	// -severity filters what is displayed — in text and JSON identically —
	// and the same filtered set decides the exit code.
	shown := analysis.Filter(diags, threshold)
	if opts.jsonOut {
		writeJSON(stdout, shown)
	} else {
		for _, d := range shown {
			fmt.Fprintln(stdout, d.String())
			if d.SuggestedFix != "" {
				fmt.Fprintf(stdout, "\tfix: %s\n", d.SuggestedFix)
			}
		}
		if len(shown) > 0 {
			fmt.Fprintln(stdout, analysis.Summary(shown))
		}
	}
	if len(shown) > 0 {
		return 1
	}
	return 0
}

// analyzeTree runs the whole-repo dataflow analysis over every .cconf
// artifact under the tree root.
func analyzeTree(root string, stderr io.Writer) (*dataflow.Repo, bool) {
	paths, err := collectRoots(root, nil)
	if err != nil {
		fmt.Fprintln(stderr, "configlint:", err)
		return nil, false
	}
	var cconfs []string
	for _, p := range paths {
		if strings.HasSuffix(p, ".cconf") {
			cconfs = append(cconfs, p)
		}
	}
	if len(cconfs) == 0 {
		fmt.Fprintln(stderr, "configlint: no .cconf artifacts found")
		return nil, false
	}
	ix := dataflow.NewIndex(cdl.NewEngine())
	rep := ix.Analyze(dirFS{root: root}, cconfs)
	for _, e := range rep.Errors {
		fmt.Fprintln(stderr, "configlint:", e)
	}
	return rep, true
}

// runBlast implements `configlint blast`: the forward query, diff → reach.
func runBlast(args []string, stdout, stderr io.Writer) int {
	var root string
	var jsonOut bool
	fs := flag.NewFlagSet("configlint blast", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&root, "C", ".", "config tree root")
	fs.BoolVar(&jsonOut, "json", false, "emit the radius as JSON")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: configlint blast [flags] <path|sitevar:name|gatekeeper:name|env:NAME> ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	rep, ok := analyzeTree(root, stderr)
	if !ok {
		return 2
	}
	rad := rep.Radius(fs.Args())
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rad)
		return 0
	}
	fmt.Fprintf(stdout, "changed: %s\n", strings.Join(rad.Changed, ", "))
	fmt.Fprintf(stdout, "artifacts (%d):\n", len(rad.Artifacts))
	for _, a := range rad.Artifacts {
		fmt.Fprintf(stdout, "  %s\n", a)
	}
	fmt.Fprintf(stdout, "consumers (%d):\n", len(rad.Consumers))
	for _, c := range rad.Consumers {
		fmt.Fprintf(stdout, "  %s\n", c)
	}
	fmt.Fprintf(stdout, "score: %.1f\n", rad.Score)
	return 0
}

// runWhy implements `configlint why`: the inverse query, artifact → origins.
func runWhy(args []string, stdout, stderr io.Writer) int {
	var root string
	var jsonOut bool
	fs := flag.NewFlagSet("configlint why", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&root, "C", ".", "config tree root")
	fs.BoolVar(&jsonOut, "json", false, "emit the provenance as JSON")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: configlint why [flags] <artifact> [field]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 1 || fs.NArg() > 2 {
		fs.Usage()
		return 2
	}
	artifact := fs.Arg(0)
	field := fs.Arg(1)
	rep, ok := analyzeTree(root, stderr)
	if !ok {
		return 2
	}
	if jsonOut {
		prov, err := rep.Provenance(artifact)
		if err != nil {
			fmt.Fprintln(stderr, "configlint:", err)
			return 2
		}
		out := struct {
			Field string `json:"field,omitempty"`
			*dataflow.Provenance
		}{Field: field, Provenance: prov}
		if field != "" {
			origins, err := rep.Why(artifact, field)
			if err != nil {
				fmt.Fprintln(stderr, "configlint:", err)
				return 2
			}
			out.Provenance = &dataflow.Provenance{Artifact: artifact, Origins: origins}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
		return 0
	}
	origins, err := rep.Why(artifact, field)
	if err != nil {
		fmt.Fprintln(stderr, "configlint:", err)
		return 2
	}
	if field != "" {
		fmt.Fprintf(stdout, "%s field %q comes from:\n", artifact, field)
	} else {
		fmt.Fprintf(stdout, "%s comes from:\n", artifact)
	}
	for _, o := range origins {
		fmt.Fprintf(stdout, "  %s\n", o)
	}
	return 0
}

// collectRoots resolves the argument list (files or directories, relative
// to root) into the sorted set of lintable source paths.
func collectRoots(root string, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"."}
	}
	seen := map[string]bool{}
	var roots []string
	add := func(rel string) {
		rel = filepath.ToSlash(rel)
		if !seen[rel] {
			seen[rel] = true
			roots = append(roots, rel)
		}
	}
	for _, arg := range args {
		full := filepath.Join(root, filepath.FromSlash(arg))
		info, err := os.Stat(full)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			add(arg)
			continue
		}
		err = filepath.Walk(full, func(path string, fi os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if fi.IsDir() {
				return nil
			}
			if strings.HasSuffix(path, ".cconf") || strings.HasSuffix(path, ".cinc") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				add(rel)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(roots)
	return roots, nil
}

// jsonDiag is the CLI's JSON shape for one diagnostic.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	EndLine  int    `json:"end_line"`
	EndCol   int    `json:"end_col"`
	Severity string `json:"severity"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Fix      string `json:"suggested_fix,omitempty"`
}

type jsonReport struct {
	Diagnostics []jsonDiag `json:"diagnostics"`
	Errors      int        `json:"errors"`
	Warnings    int        `json:"warnings"`
	Infos       int        `json:"infos"`
}

func writeJSON(w io.Writer, diags []analysis.Diagnostic) {
	rep := jsonReport{Diagnostics: []jsonDiag{}}
	for _, d := range diags {
		rep.Diagnostics = append(rep.Diagnostics, jsonDiag{
			File: d.Pos.File, Line: d.Pos.Line, Col: d.Pos.Col,
			EndLine: d.End.Line, EndCol: d.End.Col,
			Severity: d.Severity.String(), Analyzer: d.Analyzer,
			Message: d.Message, Fix: d.SuggestedFix,
		})
		switch d.Severity {
		case analysis.Error:
			rep.Errors++
		case analysis.Warn:
			rep.Warnings++
		default:
			rep.Infos++
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
}
