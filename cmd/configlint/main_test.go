package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a config tree under a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for path, content := range files {
		full := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestCLIExitCodes(t *testing.T) {
	root := writeTree(t, map[string]string{
		"clean/app.cconf": `export {a: 1};`,
		"dirty/app.cconf": "let on = false;\nif (on) {\n\tlet x = nope;\n}\nexport {on: on};\n",
		"warn/app.cconf":  "import \"warn/lib.cinc\";\nexport {a: 1};\n",
		"warn/lib.cinc":   "let UNUSED = 1;\n",
	})
	var out, errb bytes.Buffer

	// Clean subtree: exit 0, no output.
	if code := run([]string{"-C", root, "clean"}, &out, &errb); code != 0 {
		t.Fatalf("clean: exit %d, stderr %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean: unexpected output %q", out.String())
	}

	// Error diagnostic: exit 1 under the default threshold.
	out.Reset()
	if code := run([]string{"-C", root, "dirty"}, &out, &errb); code != 1 {
		t.Fatalf("dirty: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "undefined reference to \"nope\"") {
		t.Fatalf("dirty output missing diagnostic:\n%s", out.String())
	}

	// Warnings pass the default (error) threshold but fail -severity warn.
	out.Reset()
	if code := run([]string{"-C", root, "warn"}, &out, &errb); code != 0 {
		t.Fatalf("warn at error threshold: exit %d, want 0", code)
	}
	if !strings.Contains(out.String(), "unused-import") {
		t.Fatalf("warnings should still print:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-C", root, "-severity", "warn", "warn"}, &out, &errb); code != 1 {
		t.Fatalf("warn at warn threshold: exit %d, want 1", code)
	}

	// Bad flag: exit 2.
	if code := run([]string{"-severity", "loud"}, &out, &errb); code != 2 {
		t.Fatalf("bad severity: exit %d, want 2", code)
	}
	// Missing path: exit 2.
	if code := run([]string{"-C", root, "no-such-dir"}, &out, &errb); code != 2 {
		t.Fatalf("missing path: exit %d, want 2", code)
	}
}

func TestCLIJSONOutput(t *testing.T) {
	root := writeTree(t, map[string]string{
		"app.cconf": "let on = false;\nif (on) {\n\tlet x = nope;\n}\nexport {on: on};\n",
	})
	var out, errb bytes.Buffer
	code := run([]string{"-C", root, "-json"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %s)", code, errb.String())
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Errors == 0 || len(rep.Diagnostics) == 0 {
		t.Fatalf("JSON report missing findings: %+v", rep)
	}
	d := rep.Diagnostics[0]
	if d.File != "app.cconf" || d.Line == 0 || d.Col == 0 || d.Severity == "" || d.Analyzer == "" {
		t.Fatalf("incomplete diagnostic: %+v", d)
	}
}

func TestCLIDeprecatedSitevarFlag(t *testing.T) {
	root := writeTree(t, map[string]string{
		"app.cconf":              "import \"sitevars/old_flag.cinc\";\nexport {v: OLD};\n",
		"sitevars/old_flag.cinc": "let OLD = 1;\n",
	})
	var out, errb bytes.Buffer
	code := run([]string{"-C", root, "-severity", "warn", "-deprecated", "old_flag=use new_flag", "app.cconf"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (out %s, stderr %s)", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "deprecated: use new_flag") {
		t.Fatalf("missing deprecation note:\n%s", out.String())
	}
}

func TestCLIOnExamples(t *testing.T) {
	examples := filepath.Join("..", "..", "examples", "configs")
	if _, err := os.Stat(examples); err != nil {
		t.Skip("examples not present")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-C", examples, "-severity", "info"}, &out, &errb); code != 0 {
		t.Fatalf("examples lint dirty (exit %d):\n%s%s", code, out.String(), errb.String())
	}
}
