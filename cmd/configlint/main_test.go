package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a config tree under a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for path, content := range files {
		full := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestCLIExitCodes(t *testing.T) {
	root := writeTree(t, map[string]string{
		"clean/app.cconf": `export {a: 1};`,
		"dirty/app.cconf": "let on = false;\nif (on) {\n\tlet x = nope;\n}\nexport {on: on};\n",
		"warn/app.cconf":  "import \"warn/lib.cinc\";\nexport {a: 1};\n",
		"warn/lib.cinc":   "let UNUSED = 1;\n",
	})
	var out, errb bytes.Buffer

	// Clean subtree: exit 0, no output.
	if code := run([]string{"-C", root, "clean"}, &out, &errb); code != 0 {
		t.Fatalf("clean: exit %d, stderr %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean: unexpected output %q", out.String())
	}

	// Error diagnostic: exit 1 under the default threshold.
	out.Reset()
	if code := run([]string{"-C", root, "dirty"}, &out, &errb); code != 1 {
		t.Fatalf("dirty: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "undefined reference to \"nope\"") {
		t.Fatalf("dirty output missing diagnostic:\n%s", out.String())
	}

	// Warnings pass the default (error) threshold — and are filtered from
	// the display too, so output and exit code always agree.
	out.Reset()
	if code := run([]string{"-C", root, "warn"}, &out, &errb); code != 0 {
		t.Fatalf("warn at error threshold: exit %d, want 0", code)
	}
	if out.Len() != 0 {
		t.Fatalf("below-threshold warnings must not print:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-C", root, "-severity", "warn", "warn"}, &out, &errb); code != 1 {
		t.Fatalf("warn at warn threshold: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "unused-import") {
		t.Fatalf("at-threshold warnings should print:\n%s", out.String())
	}

	// Bad flag: exit 2.
	if code := run([]string{"-severity", "loud"}, &out, &errb); code != 2 {
		t.Fatalf("bad severity: exit %d, want 2", code)
	}
	// Missing path: exit 2.
	if code := run([]string{"-C", root, "no-such-dir"}, &out, &errb); code != 2 {
		t.Fatalf("missing path: exit %d, want 2", code)
	}
}

func TestCLIJSONOutput(t *testing.T) {
	root := writeTree(t, map[string]string{
		"app.cconf": "let on = false;\nif (on) {\n\tlet x = nope;\n}\nexport {on: on};\n",
	})
	var out, errb bytes.Buffer
	code := run([]string{"-C", root, "-json"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %s)", code, errb.String())
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Errors == 0 || len(rep.Diagnostics) == 0 {
		t.Fatalf("JSON report missing findings: %+v", rep)
	}
	d := rep.Diagnostics[0]
	if d.File != "app.cconf" || d.Line == 0 || d.Col == 0 || d.Severity == "" || d.Analyzer == "" {
		t.Fatalf("incomplete diagnostic: %+v", d)
	}
}

// TestCLISeverityFiltersJSON: -severity filters the JSON diagnostics
// identically to text — a warn-only tree yields an empty report (and exit
// 0) at the error threshold, and the full report at warn.
func TestCLISeverityFiltersJSON(t *testing.T) {
	root := writeTree(t, map[string]string{
		"app.cconf": "import \"lib.cinc\";\nexport {a: 1};\n",
		"lib.cinc":  "let UNUSED = 1;\n",
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-C", root, "-json"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0 (stderr %s)", code, errb.String())
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(rep.Diagnostics) != 0 || rep.Warnings != 0 {
		t.Fatalf("error-threshold JSON should filter warnings: %+v", rep)
	}

	out.Reset()
	if code := run([]string{"-C", root, "-json", "-severity", "warn"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	rep = jsonReport{}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Warnings == 0 || len(rep.Diagnostics) == 0 {
		t.Fatalf("warn-threshold JSON missing the warning: %+v", rep)
	}
	if rep.Diagnostics[0].Analyzer != "unused-import" {
		t.Fatalf("diagnostic = %+v", rep.Diagnostics[0])
	}
}

func TestCLIDeprecatedSitevarFlag(t *testing.T) {
	root := writeTree(t, map[string]string{
		"app.cconf":              "import \"sitevars/old_flag.cinc\";\nexport {v: OLD};\n",
		"sitevars/old_flag.cinc": "let OLD = 1;\n",
	})
	var out, errb bytes.Buffer
	code := run([]string{"-C", root, "-severity", "warn", "-deprecated", "old_flag=use new_flag", "app.cconf"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (out %s, stderr %s)", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "deprecated: use new_flag") {
		t.Fatalf("missing deprecation note:\n%s", out.String())
	}
}

// blastTree is the dataflow fixture: one sitevar template feeding a shared
// library feeding two artifacts.
func blastTree(t *testing.T) string {
	t.Helper()
	return writeTree(t, map[string]string{
		"sitevars/ratelimit.cinc": "let RATELIMIT = 100;\n",
		"lib/limits.cinc":         "import \"sitevars/ratelimit.cinc\";\nlet LIMIT = RATELIMIT * 2;\n",
		"svc/api.cconf":           "import \"lib/limits.cinc\";\nexport {limit: LIMIT};\n",
		"svc/web.cconf":           "import \"lib/limits.cinc\";\nexport {limit: LIMIT};\n",
	})
}

// TestCLIBlastGolden: a single-sitevar edit reports the exact downstream
// set — byte-for-byte.
func TestCLIBlastGolden(t *testing.T) {
	root := blastTree(t)
	var out, errb bytes.Buffer
	if code := run([]string{"blast", "-C", root, "sitevars/ratelimit.cinc"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errb.String())
	}
	want := `changed: sitevars/ratelimit.cinc
artifacts (2):
  svc/api.cconf
  svc/web.cconf
consumers (1):
  lib/limits.cinc:1:8: sitevar "ratelimit"
score: 4.0
`
	if out.String() != want {
		t.Fatalf("blast output:\n%s\nwant:\n%s", out.String(), want)
	}

	// The token form reaches the same set, and -json carries it all.
	out.Reset()
	if code := run([]string{"blast", "-json", "-C", root, "sitevar:ratelimit"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errb.String())
	}
	var rad struct {
		Artifacts []string `json:"artifacts"`
		Consumers []struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
		} `json:"consumers"`
		Score float64 `json:"score"`
	}
	if err := json.Unmarshal(out.Bytes(), &rad); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if strings.Join(rad.Artifacts, ",") != "svc/api.cconf,svc/web.cconf" {
		t.Fatalf("JSON artifacts = %v", rad.Artifacts)
	}
	if len(rad.Consumers) != 1 || rad.Consumers[0].Name != "ratelimit" || rad.Score != 4 {
		t.Fatalf("JSON radius = %+v", rad)
	}
}

// TestCLIWhy: the inverse query traces a field to the sitevar and every
// module on the dataflow path.
func TestCLIWhy(t *testing.T) {
	root := blastTree(t)
	var out, errb bytes.Buffer
	if code := run([]string{"why", "-C", root, "svc/api.cconf", "limit"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errb.String())
	}
	for _, want := range []string{
		`svc/api.cconf field "limit" comes from:`,
		`sitevar "ratelimit" (sitevars/ratelimit.cinc:1:1)`,
		"module lib/limits.cinc",
		"module svc/api.cconf",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("why output missing %q:\n%s", want, out.String())
		}
	}

	// Unknown field: exit 2 with the error on stderr.
	out.Reset()
	errb.Reset()
	if code := run([]string{"why", "-C", root, "svc/api.cconf", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown field: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "nope") {
		t.Fatalf("stderr should name the field: %s", errb.String())
	}

	// Missing args: exit 2.
	if code := run([]string{"why", "-C", root}, &out, &errb); code != 2 {
		t.Fatalf("missing artifact: exit %d, want 2", code)
	}
	if code := run([]string{"blast", "-C", root}, &out, &errb); code != 2 {
		t.Fatalf("blast with no changed paths: exit %d, want 2", code)
	}
}

func TestCLIOnExamples(t *testing.T) {
	examples := filepath.Join("..", "..", "examples", "configs")
	if _, err := os.Stat(examples); err != nil {
		t.Skip("examples not present")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-C", examples, "-severity", "info"}, &out, &errb); code != 0 {
		t.Fatalf("examples lint dirty (exit %d):\n%s%s", code, out.String(), errb.String())
	}
}
