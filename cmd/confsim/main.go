// Command confsim runs the full Configerator stack end to end on a
// simulated fleet and narrates each stage of Figure 3: a schema change is
// authored, compiled, reviewed with CI results, canaried on live servers,
// landed through the strip, tailed into Zeus, and pushed to every proxy —
// then a bad change is injected and stopped by the canary.
//
// Usage:
//
//	go run ./cmd/confsim [-servers N] [-seed N]
package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"configerator/internal/cluster"
	"configerator/internal/core"
)

func main() {
	servers := flag.Int("servers", 15, "servers per cluster (4 clusters)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	fmt.Println("== bootstrapping fleet ==")
	fleet := cluster.New(cluster.SmallConfig(*servers, *seed))
	fleet.Net.RunFor(10 * time.Second)
	fmt.Printf("  %d servers across %v; zeus leader: %s\n",
		len(fleet.AllServers()), fleet.ClusterNames(), fleet.Ensemble.Leader())
	p := core.New(core.Options{Fleet: fleet, CanaryPhase2: len(fleet.AllServers()) / 2})

	const path = "feed/ranker.json"
	zpath := core.ZeusPath(path)
	fleet.SubscribeAll(zpath)

	fmt.Println("\n== change 1: author a config-as-code module ==")
	rep := p.Submit(&core.ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "introduce ranker weights",
		Sources: map[string][]byte{
			"feed/weights.cinc": []byte(`
				schema Ranker { 1: double w_likes = 0.5; 2: double w_recency = 0.5; }
				validator Ranker(r) {
					assert(r.w_likes + r.w_recency > 0.99 && r.w_likes + r.w_recency < 1.01,
						"weights must sum to 1");
				}
			`),
			"feed/ranker.cconf": []byte(`
				import "feed/weights.cinc";
				export Ranker{w_likes: 0.3, w_recency: 0.7};
			`),
		},
	})
	printReport(rep)
	fleet.Net.RunFor(20 * time.Second)
	sample := fleet.AllServers()[0]
	if cfg, err := sample.Client.Get(context.Background(), core.ZeusPath("feed/ranker.json")); err == nil {
		fmt.Printf("  %s now sees w_recency=%v (version %d)\n",
			sample.ID, cfg.Float("w_recency", 0), cfg.Version)
	}

	fmt.Println("\n== change 2: validator rejects a bad edit ==")
	rep = p.Submit(&core.ChangeRequest{
		Author: "carol", Reviewer: "bob", Title: "oops, weights sum to 1.5",
		Sources: map[string][]byte{
			"feed/ranker.cconf": []byte(`
				import "feed/weights.cinc";
				export Ranker{w_likes: 0.8, w_recency: 0.7};
			`),
		},
	})
	printReport(rep)

	fmt.Println("\n== change 3: canary stops a config that spikes error rates ==")
	rep = p.Submit(&core.ChangeRequest{
		Author: "dave", Reviewer: "bob", Title: "risky knob flip",
		Raws: map[string][]byte{
			path: []byte(`{"w_likes":0.3,"_fault":{"type":"error","intensity":1.0}}`),
		},
	})
	printReport(rep)
	if rep.Canary != nil {
		for _, ph := range rep.Canary.Phases {
			fmt.Printf("  canary %s: passed=%v %s\n", ph.Name, ph.Passed, ph.FailedCheck)
		}
	}

	fmt.Println("\n== change 4: automation through the Mutator ==")
	m := core.NewMutator(p, "traffic-shifter")
	rep = m.SetRaw("traffic/weights.json", []byte(`{"us-west":0.58,"us-east":0.42}`), core.SkipCanary())
	printReport(rep)

	fmt.Printf("\nfinal state: %d commits, %d files in the repository; virtual clock %s\n",
		p.Repos.TotalCommits(), p.Repos.TotalFiles(), fleet.Net.Now().Format(time.RFC3339))
}

func printReport(rep *core.ChangeReport) {
	if rep.OK() {
		fmt.Printf("  LANDED diff %d: %d artifacts", rep.DiffID, len(rep.Compiled))
		for stage, d := range rep.Timings {
			fmt.Printf("  %s=%s", stage, d.Round(time.Millisecond))
		}
		fmt.Println()
		return
	}
	fmt.Printf("  BLOCKED at %s: %v\n", rep.FailedStage, rep.Err)
}
