// Package configerator is a from-scratch Go reproduction of "Holistic
// Configuration Management at Facebook" (Tang et al., SOSP 2015).
//
// The implementation lives under internal/: the CDL configuration-as-code
// compiler, a git-like version-control substrate, the Zeus ensemble with
// its leader→observer→proxy distribution tree, the landing strip, canary
// service, Gatekeeper, Sitevars, PackageVessel, and MobileConfig, plus the
// workload generators and experiment harness that regenerate every table
// and figure of the paper's evaluation. See README.md for the tour,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// paper-vs-measured results. The root-level benchmarks (bench_test.go)
// regenerate each experiment:
//
//	go test -bench=. -benchmem .
package configerator
