// A/B test via MobileConfig: tune the VoIP echo-canceling parameter on a
// simulated device fleet (the paper's motivating Messenger example). The
// translation layer maps VOIP_ECHO to an experiment with three arms;
// devices pull their assigned values; after the experiment picks a winner
// the field is remapped to a constant — no app release, devices converge
// on their next poll.
//
//	go run ./examples/abtest
package main

import (
	"fmt"
	"time"

	"configerator/internal/gatekeeper"
	"configerator/internal/mobileconfig"
	"configerator/internal/simnet"
	"configerator/internal/vclock"
)

func main() {
	net := simnet.New(simnet.DefaultLatency(), 11)

	// Translation layer: VOIP_ECHO is an experiment with three arms.
	translator := mobileconfig.NewTranslator(nil, nil)
	experiment := &mobileconfig.Mapping{
		Config: "MESSENGER",
		Fields: map[string]mobileconfig.FieldBinding{
			"VOIP_ECHO": {Backend: mobileconfig.BackendExperiment, Project: "EchoTuning",
				Variants: []mobileconfig.Variant{
					{Name: "low", Weight: 1, Value: 0.2},
					{Name: "mid", Weight: 1, Value: 0.5},
					{Name: "high", Weight: 1, Value: 0.8},
				}},
			"HD_CALLS": {Backend: mobileconfig.BackendConstant, Value: true},
		},
	}
	if err := translator.LoadMapping(experiment.Encode()); err != nil {
		panic(err)
	}
	schema := translator.RegisterSchema([]string{"VOIP_ECHO", "HD_CALLS"})

	server := mobileconfig.NewServer(net, "mcfg-1",
		simnet.Placement{Region: "us", Cluster: "web"}, translator,
		func(id int64) *gatekeeper.User {
			return &gatekeeper.User{ID: id, Platform: "android", Now: vclock.Epoch}
		})
	_ = server

	// A fleet of 600 devices polling every 30 minutes.
	var devices []*mobileconfig.Device
	for i := int64(0); i < 600; i++ {
		d := mobileconfig.NewDevice(net, simnet.NodeID(fmt.Sprintf("phone-%d", i)),
			simnet.Placement{Region: "mobile", Cluster: "cell"},
			"mcfg-1", "MESSENGER", i, schema)
		d.SetPollInterval(30 * time.Minute)
		devices = append(devices, d)
	}
	net.RunFor(5 * time.Minute)

	counts := map[float64]int{}
	for _, d := range devices {
		counts[d.GetFloat("VOIP_ECHO", -1)]++
	}
	fmt.Println("experiment arms after first pull:")
	for _, arm := range []float64{0.2, 0.5, 0.8} {
		fmt.Printf("  echo=%.1f: %d devices (%.0f%%)\n", arm, counts[arm],
			100*float64(counts[arm])/float64(len(devices)))
	}

	// Simulated call-quality measurements per arm pick the winner (the
	// mid arm "measures" best here).
	fmt.Println("\ncall-quality MOS by arm: low=3.1  mid=4.2  high=3.6 -> winner: mid (0.5)")

	// Freeze the winner: remap the field to a constant. Devices pick it
	// up on their next poll; the app code never changed.
	experiment.Fields["VOIP_ECHO"] = mobileconfig.FieldBinding{
		Backend: mobileconfig.BackendConstant, Value: 0.5,
	}
	if err := translator.LoadMapping(experiment.Encode()); err != nil {
		panic(err)
	}
	net.RunFor(45 * time.Minute)

	converged := 0
	for _, d := range devices {
		if d.GetFloat("VOIP_ECHO", -1) == 0.5 {
			converged++
		}
	}
	fmt.Printf("\nafter freezing the winner: %d/%d devices on echo=0.5\n",
		converged, len(devices))
}
