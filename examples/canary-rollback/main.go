// Canary rollback: the §6.4 war stories, replayed. A config that spikes
// error logs is stopped by the 20-server phase; a load-amplifying config
// sails through the small phase and is caught only by the cluster-scale
// phase (the lesson Facebook learned in production); and an engineer who
// overrides the canary ("it must be a false positive!") ships an incident.
//
//	go run ./examples/canary-rollback
package main

import (
	"fmt"
	"time"

	"configerator/internal/cluster"
	"configerator/internal/core"
)

func main() {
	fleet := cluster.New(cluster.SmallConfig(25, 9)) // 100 servers
	fleet.Net.RunFor(10 * time.Second)
	pipeline := core.New(core.Options{Fleet: fleet, CanaryPhase1: 4, CanaryPhase2: 50})

	const path = "search/knobs.json"
	fleet.SubscribeAll(core.ZeusPath(path))

	// Seed a healthy config.
	rep := pipeline.Submit(&core.ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "seed knobs",
		Raws:       map[string][]byte{path: []byte(`{"timeout_ms":200}`)},
		SkipCanary: true,
	})
	must(rep)
	fleet.Net.RunFor(20 * time.Second)

	fmt.Println("== attempt 1: schema-mismatch style bug (log spew) ==")
	rep = pipeline.Submit(&core.ChangeRequest{
		Author: "carol", Reviewer: "bob", Title: "enable new parser",
		Raws: map[string][]byte{path: []byte(
			`{"timeout_ms":200,"new_parser":true,"_fault":{"type":"log_spew","intensity":1.0}}`)},
	})
	describe(rep)

	fmt.Println("\n== attempt 2: load error invisible at small scale ==")
	rep = pipeline.Submit(&core.ChangeRequest{
		Author: "dave", Reviewer: "bob", Title: "aggressive prefetch",
		Raws: map[string][]byte{path: []byte(
			`{"timeout_ms":200,"prefetch":"aggressive","_fault":{"type":"load","intensity":1.0}}`)},
	})
	describe(rep)

	fmt.Println("\n== attempt 3: engineer overrides the canary ==")
	rep = pipeline.Submit(&core.ChangeRequest{
		Author: "erin", Reviewer: "bob", Title: "trivial and innocent change",
		Raws: map[string][]byte{path: []byte(
			`{"timeout_ms":250,"_fault":{"type":"crash","intensity":0.5}}`)},
		OverrideCanary: true,
	})
	describe(rep)
	if rep.OK() {
		fmt.Println("  ...the change landed anyway; production crash rate follows.")
		fmt.Println("  (mitigation: immediately revert the config change)")
		revert := pipeline.Submit(&core.ChangeRequest{
			Author: "erin", Reviewer: "bob", Title: "Revert \"trivial and innocent change\"",
			Raws:       map[string][]byte{path: []byte(`{"timeout_ms":200}`)},
			SkipCanary: true, // emergency revert path
		})
		must(revert)
		fmt.Println("  reverted.")
	}

	// The committed config is still sane.
	got, err := pipeline.ReadArtifact(path)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nfinal committed config: %s\n", got)
}

func describe(rep *core.ChangeReport) {
	if rep.Canary != nil {
		for _, ph := range rep.Canary.Phases {
			status := "PASS"
			if !ph.Passed {
				status = "FAIL — " + ph.FailedCheck
			}
			fmt.Printf("  canary %s (%d servers): %s\n", ph.Name, ph.TestServers, status)
		}
	}
	if rep.OK() {
		fmt.Println("  -> change LANDED")
	} else {
		fmt.Printf("  -> change BLOCKED at %s; every temporary deploy rolled back\n", rep.FailedStage)
	}
}

func must(rep *core.ChangeReport) {
	if !rep.OK() {
		panic(fmt.Sprintf("unexpected failure at %s: %v", rep.FailedStage, rep.Err))
	}
}
