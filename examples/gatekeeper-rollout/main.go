// Gatekeeper rollout: launch a product feature through the paper's staged
// sequence — employees 1%→10%→100%, a regional slice, then global
// 1%→10%→100% — with each stage being nothing but a live config update.
// The monotonicity guarantee (a user once enabled stays enabled) falls out
// of deterministic per-user sampling.
//
//	go run ./examples/gatekeeper-rollout
package main

import (
	"fmt"

	"configerator/internal/gatekeeper"
	"configerator/internal/stats"
	"configerator/internal/vclock"
)

func main() {
	registry := gatekeeper.NewRegistry(nil)
	runtime := gatekeeper.NewRuntime(registry)

	// A synthetic user population: 1% employees, a third in us-west.
	rng := stats.NewRNG(7)
	var users []*gatekeeper.User
	for id := int64(0); id < 50_000; id++ {
		region := "eu"
		if rng.Bool(0.34) {
			region = "us-west"
		}
		users = append(users, &gatekeeper.User{
			ID:       id,
			Employee: rng.Bool(0.01),
			Region:   region,
			Platform: "www",
			Now:      vclock.Epoch,
		})
	}

	fmt.Println("stage                         enabled users   share")
	fmt.Println("----------------------------  -------------  ------")
	stages := gatekeeper.RolloutStages("NewComposer", "us-west")
	names := []string{
		"employees 1%", "employees 10%", "employees 100%",
		"+ us-west 5%", "+ global 1%", "+ global 10%", "global 100%",
	}
	prevEnabled := make(map[int64]bool)
	for i, spec := range stages {
		// Each stage is one config update delivered live — the runtime
		// rebuilds its boolean tree with no code push.
		if err := runtime.Load(spec.Encode()); err != nil {
			panic(err)
		}
		enabled := 0
		for _, u := range users {
			if runtime.Check("NewComposer", u) {
				enabled++
				prevEnabled[u.ID] = true
			} else if prevEnabled[u.ID] {
				panic(fmt.Sprintf("user %d lost the feature at stage %d — launches must only widen", u.ID, i))
			}
		}
		fmt.Printf("%-28s  %13d  %5.1f%%\n", names[i], enabled, 100*float64(enabled)/float64(len(users)))
	}

	// Emergency kill: one more config update disables it instantly.
	kill := &gatekeeper.ProjectSpec{Project: "NewComposer", Rules: []gatekeeper.RuleSpec{{
		Restraints:      []gatekeeper.RestraintSpec{{Name: "always"}},
		PassProbability: 0,
	}}}
	if err := runtime.Load(kill.Encode()); err != nil {
		panic(err)
	}
	enabled := 0
	for _, u := range users {
		if runtime.Check("NewComposer", u) {
			enabled++
		}
	}
	fmt.Printf("%-28s  %13d  %5.1f%%\n", "emergency kill switch", enabled, 0.0)

}
