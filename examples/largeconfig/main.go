// Large-config distribution via the content-addressed PackageVessel: a
// 192 MB News-Feed ranking model is published into the digest-keyed
// registry, its small metadata is announced through the (simulated)
// Configerator subscription path, and a 48-server fleet swarms the bulk
// content peer-to-peer with locality-aware peer selection. Then v2 — a
// 12.5% delta — is published: only the changed chunks cross the wire, and
// the version is promoted latest -> canary -> prod through the tag
// namespace. Compare against every server fetching from central storage.
//
//	go run ./examples/largeconfig
package main

import (
	"fmt"
	"time"

	"configerator/internal/packagevessel"
	"configerator/internal/packagevessel/blob"
	"configerator/internal/simnet"
)

const gbit = 1.25e8 // 1 Gbit/s in bytes/sec

func buildFleet(seed uint64) (*simnet.Network, *packagevessel.Registry, []*packagevessel.Agent) {
	net := simnet.New(simnet.DefaultLatency(), seed)
	registry := packagevessel.NewRegistry(net, "registry", simnet.Placement{Region: "us", Cluster: "store"}, "tracker")
	net.SetBandwidth("registry", gbit, gbit)
	packagevessel.NewTracker(net, "tracker", simnet.Placement{Region: "us", Cluster: "store"})
	var agents []*packagevessel.Agent
	for i := 0; i < 48; i++ {
		cluster := fmt.Sprintf("c%d", i%4)
		region := "us"
		if i%4 >= 2 {
			region = "eu"
		}
		id := simnet.NodeID(fmt.Sprintf("srv-%d", i))
		a := packagevessel.NewAgent(net, id, simnet.Placement{Region: region, Cluster: cluster}, packagevessel.Options{})
		net.SetBandwidth(id, gbit, gbit)
		agents = append(agents, a)
	}
	return net, registry, agents
}

// deliver publishes (or re-announces) a manifest to the whole fleet and
// reports completion spread and transfer accounting.
func deliver(net *simnet.Network, registry *packagevessel.Registry, agents []*packagevessel.Agent,
	m blob.Manifest, p2p bool) {
	var first, last time.Duration
	var fetched, deduped int
	done := 0
	meta := packagevessel.MetadataFor(m, registry.ID(), registry.Tracker())
	for _, a := range agents {
		a.OnComplete(func(_ blob.Manifest, took time.Duration, st packagevessel.TransferStats) {
			done++
			fetched += st.ChunksFetched
			deduped += st.ChunksDeduped
			if first == 0 || took < first {
				first = took
			}
			if took > last {
				last = took
			}
		})
		// In production the metadata arrives via the server's Configerator
		// proxy subscription; here we hand it over directly.
		if p2p {
			a.OnAnnounce(meta)
		} else {
			a.FetchDirect(m, registry.ID())
		}
	}
	net.RunFor(time.Hour)

	mode := "P2P swarm"
	if !p2p {
		mode = "central-only"
	}
	fmt.Printf("%-12s: %d/%d servers complete; fastest %v, slowest %v; registry served %d chunks\n",
		mode, done, len(agents), first.Round(time.Millisecond), last.Round(time.Millisecond),
		registry.ChunksServed)
	if p2p {
		var same, region, cross uint64
		for _, a := range agents {
			same += a.ChunksSameCluster
			region += a.ChunksSameRegion
			cross += a.ChunksCrossRegion
		}
		total := same + region + cross
		fmt.Printf("              chunk locality: %.0f%% same-cluster, %.0f%% same-region, %.0f%% cross-region\n",
			100*float64(same)/float64(total), 100*float64(region)/float64(total),
			100*float64(cross)/float64(total))
		fmt.Printf("              fleet fetched %d chunks, deduped %d against local stores\n", fetched, deduped)
		if last < 4*time.Minute {
			fmt.Println("              ✓ under the paper's four-minute delivery bound (§3.5)")
		}
	}
}

func main() {
	fmt.Println("distributing a 192 MB model to 48 servers over 1 Gbit/s links:")

	// P2P delivery of v1.
	net, registry, agents := buildFleet(3)
	v1 := packagevessel.SyntheticPackage("feed-ranker-model", 1, 192<<20, packagevessel.DefaultChunkSize, 3)
	m1, err := registry.Publish(v1)
	if err != nil {
		panic(err)
	}
	deliver(net, registry, agents, m1, true)

	// v2 rewrites 12.5% of the chunks. Content addressing means the
	// registry stores — and the fleet transfers — only the delta.
	m2, err := registry.Publish(packagevessel.NextVersion(v1, 2, 0.125, 3))
	if err != nil {
		panic(err)
	}
	st := registry.LastPublish()
	fmt.Printf("\npublishing v2 (12.5%% delta): %d new chunks, %d deduped (%.0f MB saved at the registry)\n",
		st.NewChunks, st.DedupChunks, float64(st.DedupBytes)/(1<<20))
	deliver(net, registry, agents, m2, true)

	// Promotion: tags move through explicit, validated metadata writes.
	for _, tag := range []string{"canary", "prod"} {
		rec, err := registry.Promote("feed-ranker-model", tag, 2)
		if err != nil {
			panic(err)
		}
		if err := registry.ApplyTag(rec); err != nil {
			panic(err)
		}
	}
	fmt.Printf("tags after rollout: %v\n\n", registry.Tags("feed-ranker-model"))

	// Ablation: same fleet, no swarm.
	net, registry, agents = buildFleet(3)
	m1, err = registry.Publish(packagevessel.SyntheticPackage("feed-ranker-model", 1, 192<<20, packagevessel.DefaultChunkSize, 3))
	if err != nil {
		panic(err)
	}
	deliver(net, registry, agents, m1, false)
}
