// Large-config distribution via PackageVessel: a 192 MB News-Feed ranking
// model is uploaded to storage, its small metadata is published through
// the (simulated) Configerator subscription path, and a 48-server fleet
// swarms the bulk content peer-to-peer with locality-aware peer selection.
// Compare the completion times and storage offload against every server
// fetching from central storage.
//
//	go run ./examples/largeconfig
package main

import (
	"fmt"
	"time"

	"configerator/internal/packagevessel"
	"configerator/internal/simnet"
)

const gbit = 1.25e8 // 1 Gbit/s in bytes/sec

func buildFleet(seed uint64) (*simnet.Network, *packagevessel.Storage, *packagevessel.Tracker, []*packagevessel.Agent) {
	net := simnet.New(simnet.DefaultLatency(), seed)
	storage := packagevessel.NewStorage(net, "storage", simnet.Placement{Region: "us", Cluster: "store"})
	net.SetBandwidth("storage", gbit, gbit)
	tracker := packagevessel.NewTracker(net, "tracker", simnet.Placement{Region: "us", Cluster: "store"})
	var agents []*packagevessel.Agent
	for i := 0; i < 48; i++ {
		cluster := fmt.Sprintf("c%d", i%4)
		region := "us"
		if i%4 >= 2 {
			region = "eu"
		}
		id := simnet.NodeID(fmt.Sprintf("srv-%d", i))
		a := packagevessel.NewAgent(net, id, simnet.Placement{Region: region, Cluster: cluster})
		net.SetBandwidth(id, gbit, gbit)
		agents = append(agents, a)
	}
	return net, storage, tracker, agents
}

func run(p2p bool) {
	net, storage, tracker, agents := buildFleet(3)
	meta := storage.Upload(tracker, "feed-ranker-model", 1, 192<<20,
		packagevessel.DefaultChunkSize, "tracker")

	var first, last time.Duration
	done := 0
	for _, a := range agents {
		a.OnComplete(func(_ packagevessel.Metadata, took time.Duration) {
			done++
			if first == 0 || took < first {
				first = took
			}
			if took > last {
				last = took
			}
		})
		// In production the metadata arrives via the server's Configerator
		// proxy subscription; here we hand it over directly.
		if p2p {
			a.OnMetadata(meta.Encode())
		} else {
			a.FetchCentralOnly(meta.Encode())
		}
	}
	net.RunFor(time.Hour)

	mode := "P2P swarm"
	if !p2p {
		mode = "central-only"
	}
	fmt.Printf("%-12s: %d/%d servers complete; fastest %v, slowest %v; storage served %d chunks\n",
		mode, done, len(agents), first.Round(time.Millisecond), last.Round(time.Millisecond),
		storage.ChunksServed)
	if p2p {
		var same, region, cross uint64
		for _, a := range agents {
			same += a.ChunksSameCluster
			region += a.ChunksSameRegion
			cross += a.ChunksCrossRegion
		}
		total := same + region + cross
		fmt.Printf("              chunk locality: %.0f%% same-cluster, %.0f%% same-region, %.0f%% cross-region\n",
			100*float64(same)/float64(total), 100*float64(region)/float64(total),
			100*float64(cross)/float64(total))
		if last < 4*time.Minute {
			fmt.Println("              ✓ under the paper's four-minute delivery bound (§3.5)")
		}
	}
}

func main() {
	fmt.Println("distributing a 192 MB model to 48 servers over 1 Gbit/s links:")
	run(true)
	run(false)
}
