// Quickstart: author a config as code, push it through the full pipeline
// (compile → validate → review+CI → land → tail → Zeus → proxy), and read
// it back through the client library on a production server.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"configerator/internal/cluster"
	"configerator/internal/core"
)

func main() {
	// A small fleet: 2 regions x 2 clusters x 5 servers, with a Zeus
	// ensemble, per-cluster observers, and a proxy on every server.
	fleet := cluster.New(cluster.SmallConfig(5, 42))
	fleet.Net.RunFor(10 * time.Second) // elect the Zeus leader
	pipeline := core.New(core.Options{Fleet: fleet})

	// Applications on every server declare the config they need.
	const artifact = "memcache/frontend.json"
	zeusPath := core.ZeusPath(artifact)
	fleet.SubscribeAll(zeusPath)

	// An engineer writes config-as-code: a schema with an invariant and a
	// config built from it.
	report := pipeline.Submit(&core.ChangeRequest{
		Author:   "alice",
		Reviewer: "bob",
		Title:    "tune memcache frontend",
		Sources: map[string][]byte{
			"memcache/schema.cinc": []byte(`
				schema CacheConfig {
					1: i64 memory_mb = 1024;
					2: i32 batch_writes = 16;
					3: bool prefetch = true;
					4: list<string> pools = [];
				}
				validator CacheConfig(c) {
					assert(c.memory_mb >= 64, "too little memory");
					assert(c.batch_writes > 0, "batch must be positive");
				}
			`),
			"memcache/frontend.cconf": []byte(`
				import "memcache/schema.cinc";
				let pools = ["feed", "profile", "ads"];
				export CacheConfig{memory_mb: 4096, batch_writes: 32, pools: pools};
			`),
		},
		SkipCanary: true, // quickstart: skip the 10-minute canary soak
	})
	if !report.OK() {
		log.Fatalf("change blocked at %s: %v", report.FailedStage, report.Err)
	}
	fmt.Printf("landed diff %d; compiled artifact:\n  %s\n",
		report.DiffID, report.Compiled[artifact])

	// Give the tailer + Zeus tree a few seconds of virtual time.
	fleet.Net.RunFor(15 * time.Second)

	// Every server now reads the config through its local proxy.
	for _, server := range fleet.AllServers()[:3] {
		cfg, err := server.Client.Get(context.Background(), zeusPath)
		if err != nil {
			log.Fatalf("%s: %v", server.ID, err)
		}
		fmt.Printf("%s: memory_mb=%d batch=%d prefetch=%v pools=%v\n",
			server.ID, cfg.Int("memory_mb", 0), cfg.Int("batch_writes", 0),
			cfg.Bool("prefetch", false), cfg.Strings("pools"))
	}

	// Live update: subscriptions fire on every server within seconds.
	report = pipeline.Submit(&core.ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "more memory",
		Sources: map[string][]byte{
			"memcache/frontend.cconf": []byte(`
				import "memcache/schema.cinc";
				export CacheConfig{memory_mb: 8192, batch_writes: 32};
			`),
		},
		SkipCanary: true,
	})
	if !report.OK() {
		log.Fatalf("update blocked: %v", report.Err)
	}
	fleet.Net.RunFor(15 * time.Second)
	cfg, _ := fleet.AllServers()[0].Client.Get(context.Background(), zeusPath)
	fmt.Printf("after live update: memory_mb=%d (config version %d)\n",
		cfg.Int("memory_mb", 0), cfg.Version)
}
