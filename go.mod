module configerator

go 1.22
