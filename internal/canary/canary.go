// Package canary implements the automated Canary Service (§3.3, Figure 3).
//
// A config is associated with a canary spec describing multiple testing
// phases — e.g. phase 1 tests on 20 servers, phase 2 on a full cluster with
// thousands of servers (the cluster-scale phase was added after a
// load-related incident the small phase could not catch, §6.4). For each
// phase the spec names the target servers, the healthcheck metrics, and the
// pass/fail predicates. The service temporarily deploys the new config via
// the proxies on the test servers, waits, compares test-group metrics
// against the rest of the fleet, and either proceeds to the next phase or
// aborts and rolls back. Only after every phase passes is the change handed
// to the landing strip for the real commit.
package canary

import (
	"fmt"
	"time"

	"configerator/internal/health"
	"configerator/internal/obs"
	"configerator/internal/simnet"
)

// Check is one pass/fail predicate over a metric comparison.
type Check struct {
	Metric string
	// HigherIsWorse selects the direction: true for error rates and
	// latency, false for CTR-like goodness metrics.
	HigherIsWorse bool
	// Tolerance is the maximum allowed relative degradation, e.g. 0.05
	// for "no more than 5% worse than control".
	Tolerance float64
}

// Evaluate applies the check to a comparison.
func (c Check) Evaluate(cmp health.Comparison) bool {
	if !cmp.Valid {
		return false // no data is a failure: never ship blind
	}
	if c.HigherIsWorse {
		return cmp.RelDelta <= c.Tolerance
	}
	return -cmp.RelDelta <= c.Tolerance
}

// Phase is one staged rollout step.
type Phase struct {
	Name string
	// TestServers is how many servers receive the temporary deploy
	// (0 = all servers selected by Cluster).
	TestServers int
	// Cluster, when set, targets a specific cluster ("in phase 2, test in
	// a full cluster with thousands of servers"). Requires the deployment
	// to implement ClusterTargeter.
	Cluster string
	// Duration is how long the phase soaks before metrics are compared.
	// The paper's end-to-end canary takes about ten minutes.
	Duration time.Duration
	Checks   []Check
}

// Spec is a config's canary specification.
type Spec struct {
	ConfigPath string
	Phases     []Phase
}

// DefaultSpec mirrors the paper's two-phase scheme: 20 servers, then a
// full cluster, roughly ten minutes end to end.
func DefaultSpec(configPath string, clusterSize int) Spec {
	checks := []Check{
		{Metric: health.MetricErrorRate, HigherIsWorse: true, Tolerance: 0.10},
		{Metric: health.MetricCrashRate, HigherIsWorse: true, Tolerance: 0.05},
		{Metric: health.MetricLogSpew, HigherIsWorse: true, Tolerance: 0.50},
		{Metric: health.MetricLatencyMs, HigherIsWorse: true, Tolerance: 0.20},
		{Metric: health.MetricCTR, HigherIsWorse: false, Tolerance: 0.05},
	}
	return Spec{
		ConfigPath: configPath,
		Phases: []Phase{
			{Name: "phase1-20-servers", TestServers: 20, Duration: 4 * time.Minute, Checks: checks},
			{Name: "phase2-full-cluster", TestServers: clusterSize, Duration: 6 * time.Minute, Checks: checks},
		},
	}
}

// Deployment is the canary service's view of the fleet: it can temporarily
// deploy to proxies, roll back, and sample health metrics. Implemented by
// the cluster simulation.
type Deployment interface {
	// Servers returns the candidate fleet (the canary picks test subsets
	// from the front).
	Servers() []simnet.NodeID
	// DeployTemp pushes the config to the given servers' proxies.
	DeployTemp(servers []simnet.NodeID, path string, data []byte)
	// Rollback clears the temporary deployment.
	Rollback(servers []simnet.NodeID, path string)
	// Collector samples server health.
	health.Collector
}

// ClusterTargeter is optionally implemented by deployments that can
// enumerate the servers of one cluster, enabling cluster-targeted phases.
type ClusterTargeter interface {
	ServersIn(cluster string) []simnet.NodeID
}

// PhaseReport is one phase's outcome.
type PhaseReport struct {
	Name        string
	Passed      bool
	FailedCheck string
	Comparisons []health.Comparison
	TestServers int
}

// Report is a full canary run's outcome.
type Report struct {
	ConfigPath string
	Passed     bool
	Phases     []PhaseReport
	Started    time.Time
	Finished   time.Time
}

// Duration is the canary wall-clock time.
func (r Report) Duration() time.Duration { return r.Finished.Sub(r.Started) }

// Runner executes canary specs on a simnet's virtual clock.
type Runner struct {
	net *simnet.Network
	dep Deployment

	// Aborts counts canary runs that failed and rolled back.
	Aborts int
	// Passes counts canary runs that passed every phase.
	Passes int

	// Obs, when set, records each run's wall-clock time in the
	// "canary.run" histogram and counts passes/aborts (nil = no
	// instrumentation).
	Obs *obs.Registry
}

// finish records a completed run's outcome and delivers the report.
func (r *Runner) finish(report *Report, done func(Report)) {
	report.Finished = r.net.Now()
	if report.Passed {
		r.Passes++
		r.Obs.Add("canary.pass", 1)
	} else {
		r.Aborts++
		r.Obs.Add("canary.abort", 1)
	}
	r.Obs.Observe("canary.run", report.Duration())
	done(*report)
}

// NewRunner returns a canary runner over the deployment.
func NewRunner(net *simnet.Network, dep Deployment) *Runner {
	return &Runner{net: net, dep: dep}
}

// Run executes the spec asynchronously on the network's event loop; done
// receives the final report. The caller must drive the network.
func (r *Runner) Run(spec Spec, data []byte, done func(Report)) {
	report := &Report{ConfigPath: spec.ConfigPath, Started: r.net.Now(), Passed: true}
	r.runPhase(spec, data, 0, make(map[simnet.NodeID]bool), report, done)
}

func deployedList(deployed map[simnet.NodeID]bool) []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(deployed))
	for s := range deployed {
		out = append(out, s)
	}
	return out
}

func (r *Runner) runPhase(spec Spec, data []byte, idx int, deployed map[simnet.NodeID]bool, report *Report, done func(Report)) {
	if idx >= len(spec.Phases) {
		// All phases passed: clear the temporary deploys; the real commit
		// follows through the landing strip and reaches everyone.
		r.dep.Rollback(deployedList(deployed), spec.ConfigPath)
		r.finish(report, done)
		return
	}
	phase := spec.Phases[idx]
	fleet := r.dep.Servers()
	// Select this phase's test group: a specific cluster when targeted,
	// else the front of the fleet.
	var test []simnet.NodeID
	if phase.Cluster != "" {
		ct, ok := r.dep.(ClusterTargeter)
		if !ok {
			report.Passed = false
			report.Phases = append(report.Phases, PhaseReport{
				Name: phase.Name, Passed: false,
				FailedCheck: "spec targets cluster " + phase.Cluster + " but the deployment cannot enumerate clusters",
			})
			r.dep.Rollback(deployedList(deployed), spec.ConfigPath)
			r.finish(report, done)
			return
		}
		test = ct.ServersIn(phase.Cluster)
		if phase.TestServers > 0 && len(test) > phase.TestServers {
			test = test[:phase.TestServers]
		}
	} else {
		n := phase.TestServers
		if n > len(fleet) {
			n = len(fleet)
		}
		test = fleet[:n]
	}
	// Control = servers with no temporary deploy from any phase so far.
	var newly []simnet.NodeID
	for _, s := range test {
		if !deployed[s] {
			newly = append(newly, s)
			deployed[s] = true
		}
	}
	var control []simnet.NodeID
	for _, s := range fleet {
		if !deployed[s] {
			control = append(control, s)
		}
	}
	r.dep.DeployTemp(newly, spec.ConfigPath, data)
	r.net.After(phase.Duration, func() {
		pr := PhaseReport{Name: phase.Name, Passed: true, TestServers: len(test)}
		testSamples := make([]health.Sample, 0, len(test))
		for _, s := range test {
			testSamples = append(testSamples, r.dep.Sample(s))
		}
		controlSamples := make([]health.Sample, 0, len(control))
		for _, s := range control {
			controlSamples = append(controlSamples, r.dep.Sample(s))
		}
		for _, check := range phase.Checks {
			cmp := health.Compare(testSamples, controlSamples, check.Metric)
			pr.Comparisons = append(pr.Comparisons, cmp)
			if !check.Evaluate(cmp) {
				pr.Passed = false
				pr.FailedCheck = fmt.Sprintf("%s (rel delta %+.1f%%, tolerance %.1f%%)",
					check.Metric, 100*cmp.RelDelta, 100*check.Tolerance)
				break
			}
		}
		report.Phases = append(report.Phases, pr)
		if !pr.Passed {
			// Abort: roll back every temporary deployment.
			r.dep.Rollback(deployedList(deployed), spec.ConfigPath)
			report.Passed = false
			r.finish(report, done)
			return
		}
		r.runPhase(spec, data, idx+1, deployed, report, done)
	})
}
