package canary

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"configerator/internal/health"
	"configerator/internal/simnet"
)

// fakeFleet implements Deployment: servers whose error rate jumps when they
// run a config containing the token "BAD", and whose latency grows with the
// fraction of the fleet running a config containing "LOAD" (the paper's
// Type II load error, invisible at small scale).
type fakeFleet struct {
	servers  []simnet.NodeID
	deployed map[simnet.NodeID]string // server -> temp config content
}

func newFakeFleet(n int) *fakeFleet {
	f := &fakeFleet{deployed: make(map[simnet.NodeID]string)}
	for i := 0; i < n; i++ {
		f.servers = append(f.servers, simnet.NodeID(fmt.Sprintf("web-%d", i)))
	}
	return f
}

func (f *fakeFleet) Servers() []simnet.NodeID { return f.servers }

func (f *fakeFleet) DeployTemp(servers []simnet.NodeID, path string, data []byte) {
	for _, s := range servers {
		f.deployed[s] = string(data)
	}
}

func (f *fakeFleet) Rollback(servers []simnet.NodeID, path string) {
	for _, s := range servers {
		delete(f.deployed, s)
	}
}

func (f *fakeFleet) loadFraction() float64 {
	n := 0
	for _, cfg := range f.deployed {
		if strings.Contains(cfg, "LOAD") {
			n++
		}
	}
	return float64(n) / float64(len(f.servers))
}

func (f *fakeFleet) Sample(server simnet.NodeID) health.Sample {
	s := health.Sample{
		health.MetricErrorRate: 0.010,
		health.MetricCrashRate: 0.001,
		health.MetricLogSpew:   100,
		health.MetricLatencyMs: 50,
		health.MetricCTR:       0.050,
	}
	cfg := f.deployed[server]
	if strings.Contains(cfg, "BAD") {
		s[health.MetricErrorRate] = 0.10 // 10x errors
		s[health.MetricLogSpew] = 5000   // log spew
	}
	// A LOAD config overloads a shared backend: latency rises for the
	// whole fleet in proportion to deployment breadth, so only a
	// large-scale phase can see the relative difference... actually the
	// backend hurts everyone; what the canary sees is absolute latency
	// growth on the test group due to cache misses on the rare path.
	if strings.Contains(cfg, "LOAD") {
		s[health.MetricLatencyMs] = 50 * (1 + 4*f.loadFraction())
	}
	return s
}

func run(t *testing.T, fleet *fakeFleet, spec Spec, data string) (Report, *Runner) {
	t.Helper()
	net := simnet.New(simnet.DefaultLatency(), 1)
	r := NewRunner(net, fleet)
	var report Report
	got := false
	r.Run(spec, []byte(data), func(rep Report) { report = rep; got = true })
	net.RunFor(time.Hour)
	if !got {
		t.Fatal("canary never finished")
	}
	return report, r
}

func spec2(path string, p1, p2 int) Spec {
	checks := []Check{
		{Metric: health.MetricErrorRate, HigherIsWorse: true, Tolerance: 0.10},
		{Metric: health.MetricLatencyMs, HigherIsWorse: true, Tolerance: 0.20},
		{Metric: health.MetricCTR, HigherIsWorse: false, Tolerance: 0.05},
	}
	return Spec{ConfigPath: path, Phases: []Phase{
		{Name: "p1", TestServers: p1, Duration: 4 * time.Minute, Checks: checks},
		{Name: "p2", TestServers: p2, Duration: 6 * time.Minute, Checks: checks},
	}}
}

func TestGoodConfigPasses(t *testing.T) {
	fleet := newFakeFleet(1000)
	report, r := run(t, fleet, spec2("/c", 20, 500), `{"ok":true}`)
	if !report.Passed || len(report.Phases) != 2 {
		t.Fatalf("report = %+v", report)
	}
	if r.Passes != 1 || r.Aborts != 0 {
		t.Errorf("Passes=%d Aborts=%d", r.Passes, r.Aborts)
	}
	// Temporary deploys must be rolled back even on success; the real
	// commit arrives through the normal distribution path.
	if len(fleet.deployed) != 0 {
		t.Errorf("deploys not cleaned up: %d", len(fleet.deployed))
	}
	// ~10 minutes end to end, like the paper.
	if report.Duration() != 10*time.Minute {
		t.Errorf("Duration = %v", report.Duration())
	}
}

func TestBadConfigAbortsInPhase1(t *testing.T) {
	fleet := newFakeFleet(1000)
	report, r := run(t, fleet, spec2("/c", 20, 500), `{"BAD":true}`)
	if report.Passed {
		t.Fatal("bad config passed canary")
	}
	if len(report.Phases) != 1 || report.Phases[0].Passed {
		t.Fatalf("phases = %+v", report.Phases)
	}
	if !strings.Contains(report.Phases[0].FailedCheck, health.MetricErrorRate) {
		t.Errorf("FailedCheck = %s", report.Phases[0].FailedCheck)
	}
	if r.Aborts != 1 {
		t.Errorf("Aborts = %d", r.Aborts)
	}
	if len(fleet.deployed) != 0 {
		t.Error("rollback did not clear deploys")
	}
}

func TestLoadErrorOnlyCaughtAtClusterScale(t *testing.T) {
	// Phase 1 (20 of 1000 servers): load fraction 2%, latency +~8% —
	// within tolerance. Phase 2 (500 servers): fraction 50%, latency
	// +200% — caught. This is the §6.4 incident that motivated adding the
	// cluster-scale canary phase.
	fleet := newFakeFleet(1000)
	report, _ := run(t, fleet, spec2("/c", 20, 500), `{"LOAD":true}`)
	if report.Passed {
		t.Fatal("load error escaped the canary")
	}
	if len(report.Phases) != 2 {
		t.Fatalf("expected failure in phase 2, phases = %+v", report.Phases)
	}
	if !report.Phases[0].Passed {
		t.Error("phase 1 should have missed the load issue")
	}
	if report.Phases[1].Passed {
		t.Error("phase 2 should have caught the load issue")
	}
	if !strings.Contains(report.Phases[1].FailedCheck, health.MetricLatencyMs) {
		t.Errorf("FailedCheck = %s", report.Phases[1].FailedCheck)
	}
}

func TestCTRDirectionality(t *testing.T) {
	// A config that tanks CTR must fail the lower-is-worse check.
	fleet := newFakeFleet(100)
	spec := Spec{ConfigPath: "/c", Phases: []Phase{{
		Name: "p1", TestServers: 10, Duration: time.Minute,
		Checks: []Check{{Metric: health.MetricCTR, HigherIsWorse: false, Tolerance: 0.05}},
	}}}
	// Patch the fleet: servers with "CTRDROP" config lose clicks.
	orig := fleet.Sample
	_ = orig
	report, _ := runWithSampler(t, fleet, spec, `{"CTRDROP":true}`,
		func(server simnet.NodeID) health.Sample {
			s := fleet.Sample(server)
			if strings.Contains(fleet.deployed[server], "CTRDROP") {
				s[health.MetricCTR] = 0.040 // -20%
			}
			return s
		})
	if report.Passed {
		t.Fatal("CTR drop passed")
	}
}

type samplerFleet struct {
	*fakeFleet
	sampler func(simnet.NodeID) health.Sample
}

func (s *samplerFleet) Sample(server simnet.NodeID) health.Sample { return s.sampler(server) }

func runWithSampler(t *testing.T, fleet *fakeFleet, spec Spec, data string,
	sampler func(simnet.NodeID) health.Sample) (Report, *Runner) {
	t.Helper()
	net := simnet.New(simnet.DefaultLatency(), 1)
	r := NewRunner(net, &samplerFleet{fakeFleet: fleet, sampler: sampler})
	var report Report
	got := false
	r.Run(spec, []byte(data), func(rep Report) { report = rep; got = true })
	net.RunFor(time.Hour)
	if !got {
		t.Fatal("canary never finished")
	}
	return report, r
}

func TestCheckEvaluate(t *testing.T) {
	hi := Check{Metric: "m", HigherIsWorse: true, Tolerance: 0.1}
	if !hi.Evaluate(health.Comparison{Valid: true, RelDelta: 0.05}) {
		t.Error("within tolerance should pass")
	}
	if hi.Evaluate(health.Comparison{Valid: true, RelDelta: 0.2}) {
		t.Error("beyond tolerance should fail")
	}
	if hi.Evaluate(health.Comparison{Valid: false}) {
		t.Error("invalid comparison must fail")
	}
	lo := Check{Metric: "ctr", HigherIsWorse: false, Tolerance: 0.05}
	if !lo.Evaluate(health.Comparison{Valid: true, RelDelta: 0.5}) {
		t.Error("CTR increase should pass")
	}
	if lo.Evaluate(health.Comparison{Valid: true, RelDelta: -0.2}) {
		t.Error("CTR drop should fail")
	}
}

func TestDefaultSpecShape(t *testing.T) {
	s := DefaultSpec("/configs/x", 2000)
	if len(s.Phases) != 2 {
		t.Fatalf("phases = %d", len(s.Phases))
	}
	if s.Phases[0].TestServers != 20 || s.Phases[1].TestServers != 2000 {
		t.Errorf("test servers = %d, %d", s.Phases[0].TestServers, s.Phases[1].TestServers)
	}
	total := s.Phases[0].Duration + s.Phases[1].Duration
	if total != 10*time.Minute {
		t.Errorf("total duration = %v, want 10m (the paper's canary time)", total)
	}
}
