package canary

import (
	"strings"
	"testing"
	"time"

	"configerator/internal/health"
	"configerator/internal/simnet"
)

// clusterFleet extends fakeFleet with cluster enumeration.
type clusterFleet struct {
	*fakeFleet
	clusters map[string][]simnet.NodeID
}

func newClusterFleet(perCluster int, clusters []string) *clusterFleet {
	f := &clusterFleet{
		fakeFleet: &fakeFleet{deployed: make(map[simnet.NodeID]string)},
		clusters:  make(map[string][]simnet.NodeID),
	}
	for _, c := range clusters {
		for i := 0; i < perCluster; i++ {
			id := simnet.NodeID(c + "-" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
			f.servers = append(f.servers, id)
			f.clusters[c] = append(f.clusters[c], id)
		}
	}
	return f
}

func (f *clusterFleet) ServersIn(cluster string) []simnet.NodeID { return f.clusters[cluster] }

func TestClusterTargetedPhase(t *testing.T) {
	fleet := newClusterFleet(50, []string{"uw1", "uw2", "ue1"})
	net := simnet.New(simnet.DefaultLatency(), 1)
	r := NewRunner(net, fleet)
	spec := Spec{ConfigPath: "/c", Phases: []Phase{
		{Name: "p1", TestServers: 5, Duration: time.Minute,
			Checks: []Check{{Metric: health.MetricErrorRate, HigherIsWorse: true, Tolerance: 0.10}}},
		{Name: "p2-cluster", Cluster: "uw2", Duration: time.Minute,
			Checks: []Check{{Metric: health.MetricErrorRate, HigherIsWorse: true, Tolerance: 0.10}}},
	}}
	var deployedAtPhase2 int
	done := false
	var report Report
	r.Run(spec, []byte(`{"ok":true}`), func(rep Report) { report = rep; done = true })
	// Between the phases, observe where the config is deployed.
	net.RunFor(90 * time.Second)
	for _, id := range fleet.clusters["uw2"] {
		if fleet.deployed[id] != "" {
			deployedAtPhase2++
		}
	}
	net.RunFor(time.Hour)
	if !done {
		t.Fatal("canary never finished")
	}
	if !report.Passed || len(report.Phases) != 2 {
		t.Fatalf("report = %+v", report)
	}
	// The whole uw2 cluster was under test during phase 2.
	if deployedAtPhase2 != 50 {
		t.Errorf("uw2 deployed servers during phase 2 = %d, want 50", deployedAtPhase2)
	}
	if report.Phases[1].TestServers != 50 {
		t.Errorf("phase 2 test servers = %d", report.Phases[1].TestServers)
	}
	// Everything rolled back after the pass.
	if len(fleet.deployed) != 0 {
		t.Errorf("deploys left: %d", len(fleet.deployed))
	}
}

func TestClusterPhaseWithoutTargeterFails(t *testing.T) {
	fleet := newFakeFleet(100) // no ServersIn
	net := simnet.New(simnet.DefaultLatency(), 1)
	r := NewRunner(net, fleet)
	spec := Spec{ConfigPath: "/c", Phases: []Phase{
		{Name: "p1", Cluster: "uw1", Duration: time.Minute,
			Checks: []Check{{Metric: health.MetricErrorRate, HigherIsWorse: true, Tolerance: 0.10}}},
	}}
	done := false
	var report Report
	r.Run(spec, []byte(`{}`), func(rep Report) { report = rep; done = true })
	net.RunFor(time.Hour)
	if !done || report.Passed {
		t.Fatalf("report = %+v done=%v", report, done)
	}
	if !strings.Contains(report.Phases[0].FailedCheck, "cannot enumerate clusters") {
		t.Errorf("FailedCheck = %s", report.Phases[0].FailedCheck)
	}
}

func TestClusterPhaseControlExcludesEarlierPhases(t *testing.T) {
	// Servers deployed in phase 1 must not count as control in phase 2.
	fleet := newClusterFleet(10, []string{"a", "b"})
	net := simnet.New(simnet.DefaultLatency(), 1)
	r := NewRunner(net, fleet)
	spec := Spec{ConfigPath: "/c", Phases: []Phase{
		{Name: "p1", TestServers: 5, Duration: time.Minute,
			Checks: []Check{{Metric: health.MetricErrorRate, HigherIsWorse: true, Tolerance: 10}}},
		{Name: "p2", Cluster: "b", Duration: time.Minute,
			Checks: []Check{{Metric: health.MetricErrorRate, HigherIsWorse: true, Tolerance: 10}}},
	}}
	done := false
	r.Run(spec, []byte(`{"BAD":true}`), func(Report) { done = true })
	net.RunFor(time.Hour)
	if !done {
		t.Fatal("never finished")
	}
	// With huge tolerances both phases pass; the point is exercised
	// control-set arithmetic (no panic, full rollback).
	if len(fleet.deployed) != 0 {
		t.Errorf("deploys left: %d", len(fleet.deployed))
	}
}
