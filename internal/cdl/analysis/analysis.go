// Package analysis is a go/analysis-style static-analysis framework for
// CDL. It exists because the compiler only reports the first runtime
// error it trips over, while many config defects — unused imports, dead
// exports, missing validators, references that only fail on one branch —
// are statically visible in the AST. The paper's pipeline (§3.1–§3.3)
// gates changes on compilation and sandbox tests; configlint adds a
// cheaper, earlier gate that needs no evaluation at all.
//
// The shape mirrors golang.org/x/tools/go/analysis: an Analyzer declares a
// name, documentation, and a Run function; the driver hands each Run a
// Pass holding one parsed module plus precomputed facts about its import
// closure; analyzers report positioned Diagnostics. A registry collects
// the built-in analyzers so every consumer — the configlint CLI, pipeline
// stage 1, the CI sandbox, and the landing strip gate — runs the same
// suite.
package analysis

import (
	"fmt"
	"sort"
	"sync"

	"configerator/internal/cdl"
)

// Severity classifies a diagnostic. Only Error diagnostics gate the
// pipeline, the CI sandbox, and the landing strip; Warn and Info surface
// in reviews and the CLI without blocking.
type Severity int

// Severity levels, ordered from least to most severe.
const (
	Info Severity = iota
	Warn
	Error
)

// String renders the severity in lowercase, matching CLI output.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// ParseSeverity converts a CLI flag value to a Severity.
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "info":
		return Info, nil
	case "warn", "warning":
		return Warn, nil
	case "error":
		return Error, nil
	}
	return Info, fmt.Errorf("analysis: unknown severity %q (want error, warn, or info)", s)
}

// Diagnostic is one finding, anchored to a source range.
type Diagnostic struct {
	// Pos and End delimit the source range ([Pos, End), End exclusive).
	// Pos.File names the module-relative source path.
	Pos cdl.Pos `json:"pos"`
	End cdl.Pos `json:"end"`
	// Severity is the finding's class.
	Severity Severity `json:"-"`
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	// Message is the human-readable finding.
	Message string `json:"message"`
	// SuggestedFix, when non-empty, is a one-line remediation hint.
	SuggestedFix string `json:"suggested_fix,omitempty"`
}

// String renders "file:line:col: severity: message [analyzer]".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s [%s]", d.Pos, d.Severity, d.Message, d.Analyzer)
}

// Analyzer is one static check, named and documented so CLI output and
// docs can reference it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("unused-import").
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run inspects the Pass's module and reports diagnostics via
	// Pass.Report. It must not retain the Pass after returning.
	Run func(*Pass)
}

// Pass carries everything one analyzer invocation may inspect: the parsed
// module, facts about its import closure, and the whole-universe facts
// (importer edges) that cross-module analyzers need.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Path is the module's repository-relative source path.
	Path string
	// Module is the parsed AST.
	Module *cdl.Module
	// Facts describes the module's bindings, imports, schemas, and
	// validators (including everything visible through imports).
	Facts *ModuleFacts
	// Universe holds every module the driver loaded plus reverse import
	// edges, for analyzers that reason across modules (dead-export,
	// import-cycle).
	Universe *Universe
	// DeprecatedSitevars maps deprecated sitevar names to replacement
	// notes (driver configuration; empty when unset).
	DeprecatedSitevars map[string]string

	mu    *sync.Mutex
	diags *[]Diagnostic
}

// Report records a diagnostic, stamping the analyzer name.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.mu.Lock()
	*p.diags = append(*p.diags, d)
	p.mu.Unlock()
}

// Reportf reports a diagnostic covering [pos, end) with a formatted
// message.
func (p *Pass) Reportf(sev Severity, pos, end cdl.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, End: end, Severity: sev, Message: fmt.Sprintf(format, args...)})
}

// ---- Registry ----

var (
	regMu    sync.Mutex
	registry []*Analyzer
)

// Register adds an analyzer to the global registry. Duplicate names panic:
// analyzer names appear in golden files and suppression comments, so a
// collision is a programming error.
func Register(a *Analyzer) {
	regMu.Lock()
	defer regMu.Unlock()
	for _, r := range registry {
		if r.Name == a.Name {
			panic("analysis: duplicate analyzer " + a.Name)
		}
	}
	registry = append(registry, a)
}

// Analyzers returns the registered analyzers sorted by name.
func Analyzers() []*Analyzer {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Analyzer, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the registered analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// ---- Diagnostic set helpers ----

// SortDiagnostics orders diagnostics by file, line, column, analyzer,
// message — the deterministic order every consumer relies on.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Filter returns the diagnostics at or above the given severity.
func Filter(diags []Diagnostic, min Severity) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity >= min {
			out = append(out, d)
		}
	}
	return out
}

// HasErrors reports whether any diagnostic is Error severity — the
// blocking condition shared by pipeline stage 1, ci.Sandbox, and the
// landing strip gate.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Summary renders "N errors, M warnings, K infos".
func Summary(diags []Diagnostic) string {
	var e, w, i int
	for _, d := range diags {
		switch d.Severity {
		case Error:
			e++
		case Warn:
			w++
		default:
			i++
		}
	}
	return fmt.Sprintf("%d errors, %d warnings, %d infos", e, w, i)
}
