package analysis

import (
	"fmt"
	"sort"
	"strings"

	"configerator/internal/cdl"
)

// The built-in analyzer suite. Each analyzer is registered at package
// init, so every consumer (CLI, pipeline, CI sandbox, landing strip)
// shares the same checks.
func init() {
	Register(UnusedImport)
	Register(UndefinedReference)
	Register(ShadowedExport)
	Register(SchemaConformance)
	Register(ValidatorCoverage)
	Register(ImportCycle)
	Register(DeadExport)
	Register(ImpureConstruct)
	Register(DeprecatedSitevar)
}

// collectRefs gathers every identifier referenced anywhere in the module
// (including assignment targets) and every struct-literal type name —
// the raw material for import-usage reasoning.
func collectRefs(mod *cdl.Module) (idents, structTypes map[string]bool) {
	idents = map[string]bool{}
	structTypes = map[string]bool{}
	record := func(e cdl.Expr) {
		switch x := e.(type) {
		case *cdl.IdentExpr:
			idents[x.Name] = true
		case *cdl.StructExpr:
			structTypes[x.Type] = true
		}
	}
	walkExprs(mod.Stmts, record)
	var walkAssigns func([]cdl.Stmt)
	walkAssigns = func(stmts []cdl.Stmt) {
		for _, st := range stmts {
			switch s := st.(type) {
			case *cdl.AssignStmt:
				idents[s.Name] = true
			case *cdl.DefStmt:
				walkAssigns(s.Body)
			case *cdl.ValidatorStmt:
				walkAssigns(s.Body)
			case *cdl.IfStmt:
				walkAssigns(s.Then)
				walkAssigns(s.Else)
			case *cdl.ForStmt:
				walkAssigns(s.Body)
			}
		}
	}
	walkAssigns(mod.Stmts)
	// Schema fields of struct type reference that schema by name.
	for _, sd := range mod.Schemas {
		if sd.Extends != "" {
			structTypes[sd.Extends] = true
		}
		for _, f := range sd.Fields {
			for t := f.Type; t != nil; t = t.Elem {
				if t.Kind == cdl.KindStruct {
					structTypes[t.Name] = true
				}
			}
			if f.Default != nil {
				walkExprTree(f.Default, record)
			}
		}
	}
	return idents, structTypes
}

// UnusedImport warns about imports whose closure contributes nothing the
// module observes: no referenced name, no referenced schema, no validator
// registration, and no export the module relies on.
var UnusedImport = &Analyzer{
	Name: "unused-import",
	Doc: "report imports that contribute no referenced name, no referenced " +
		"schema, no validator, and no export the module relies on",
	Run: func(pass *Pass) {
		idents, structTypes := collectRefs(pass.Module)
		for _, imp := range pass.Module.Imports {
			used := false
			for name := range pass.Facts.Provides[imp.Path] {
				if idents[name] {
					used = true
					break
				}
			}
			if !used {
				for name := range pass.Facts.SchemasFrom[imp.Path] {
					if structTypes[name] {
						used = true
						break
					}
				}
			}
			// Importing a module whose closure registers validators is a
			// side effect: those validators run against this module's
			// export. Likewise, under last-export-wins semantics a module
			// with no export of its own may be exporting through the dep.
			if !used && pass.Facts.ValidatorFrom[imp.Path] {
				used = true
			}
			if !used && !pass.Facts.HasExport && pass.Facts.ExportFrom[imp.Path] {
				used = true
			}
			if !used {
				pass.Report(Diagnostic{
					Pos: imp.Pos, End: imp.End,
					Severity:     Warn,
					Message:      fmt.Sprintf("import %q is unused", imp.Path),
					SuggestedFix: "remove the import",
				})
			}
		}
	},
}

// UndefinedReference errors on identifiers that resolve to nothing — not a
// builtin, not an import, not a binding in any enclosing scope. The walk
// is flow-insensitive within a block (conservative), so every report is a
// guaranteed runtime failure on the path that evaluates it.
var UndefinedReference = &Analyzer{
	Name: "undefined-reference",
	Doc: "error on identifiers and assignment targets that no visible " +
		"binding, import, or builtin defines",
	Run: func(pass *Pass) {
		base := newScope(nil)
		for n := range pass.Facts.Builtins {
			base.names[n] = true
		}
		env := newScope(base)
		for n := range pass.Facts.Env {
			env.names[n] = true
		}
		scopeWalk(pass.Module, env, scopeVisitor{
			expr: func(x cdl.Expr, sc *scope) {
				id, ok := x.(*cdl.IdentExpr)
				if !ok || sc.has(id.Name) {
					return
				}
				d := Diagnostic{
					Pos: id.Pos, End: id.End,
					Severity: Error,
					Message:  fmt.Sprintf("undefined reference to %q", id.Name),
				}
				if near := nearest(id.Name, sc.all()); near != "" {
					d.SuggestedFix = fmt.Sprintf("did you mean %q?", near)
				}
				pass.Report(d)
			},
			assign: func(s *cdl.AssignStmt, sc *scope) {
				if sc.has(s.Name) {
					return
				}
				pass.Report(Diagnostic{
					Pos: s.Pos, End: s.End,
					Severity:     Error,
					Message:      fmt.Sprintf("assignment to undefined variable %q", s.Name),
					SuggestedFix: fmt.Sprintf("declare it first: let %s = ...;", s.Name),
				})
			},
		})
	},
}

// ShadowedExport warns when a module's own top-level binding silently
// shadows a name one of its imports provides, and when two imports
// provide the same name from different modules (the later import wins).
var ShadowedExport = &Analyzer{
	Name: "shadowed-export",
	Doc: "warn when a top-level binding shadows an imported name, or two " +
		"imports provide the same name from different modules",
	Run: func(pass *Pass) {
		mod := pass.Module
		// Own bindings shadowing imported names. The import set is checked
		// as a whole: any import that provides the name from another module
		// is being shadowed.
		reportShadow := func(name string, pos, end cdl.Pos) {
			for _, imp := range mod.Imports {
				origin, ok := pass.Facts.Provides[imp.Path][name]
				if ok && origin != pass.Path {
					pass.Reportf(Warn, pos, end,
						"%q shadows the binding imported from %s", name, origin)
					return
				}
			}
		}
		for _, st := range mod.Stmts {
			switch s := st.(type) {
			case *cdl.LetStmt:
				reportShadow(s.Name, s.NamePos, s.NameEnd)
			case *cdl.DefStmt:
				reportShadow(s.Name, s.NamePos, s.NameEnd)
			}
		}
		// Import-import collisions. Diamond imports are benign (same
		// declaring module through two paths); only genuinely different
		// origins collide.
		seen := map[string]string{} // name → declaring module
		for _, imp := range mod.Imports {
			var collisions []string
			for name, origin := range pass.Facts.Provides[imp.Path] {
				if prev, ok := seen[name]; ok && prev != origin {
					collisions = append(collisions, fmt.Sprintf(
						"%q (from %s, previously from %s)", name, origin, prev))
				}
			}
			sort.Strings(collisions)
			for _, c := range collisions {
				pass.Reportf(Warn, imp.PathPos, imp.PathEnd,
					"import redefines %s", c)
			}
			for name, origin := range pass.Facts.Provides[imp.Path] {
				seen[name] = origin
			}
		}
	},
}

// effectiveFields flattens a schema's extends chain into one field map
// (derived fields override base fields of the same name).
func effectiveFields(sd *cdl.SchemaDef, schemas map[string]*cdl.SchemaDef) map[string]*cdl.FieldDef {
	var chain []*cdl.SchemaDef
	seen := map[string]bool{}
	for cur := sd; cur != nil && !seen[cur.Name]; {
		seen[cur.Name] = true
		chain = append(chain, cur)
		if cur.Extends == "" {
			break
		}
		cur = schemas[cur.Extends]
	}
	fields := map[string]*cdl.FieldDef{}
	for i := len(chain) - 1; i >= 0; i-- {
		for _, f := range chain[i].Fields {
			fields[f.Name] = f
		}
	}
	return fields
}

// litMatches reports whether a literal value is acceptable for a field
// type; non-literal expressions and null are not judged statically.
func litMatches(t *cdl.TypeExpr, e cdl.Expr) (ok bool, got string) {
	switch x := e.(type) {
	case *cdl.LitExpr:
		switch x.Val.(type) {
		case cdl.Int:
			return t.Kind == cdl.KindI32 || t.Kind == cdl.KindI64 || t.Kind == cdl.KindDouble, "int"
		case cdl.Float:
			return t.Kind == cdl.KindDouble, "float"
		case cdl.Str:
			return t.Kind == cdl.KindString, "string"
		case cdl.Bool:
			return t.Kind == cdl.KindBool, "bool"
		}
		return true, "" // null and anything else: not judged
	case *cdl.ListExpr:
		return t.Kind == cdl.KindList, "list"
	case *cdl.MapExpr:
		return t.Kind == cdl.KindMap, "map"
	case *cdl.StructExpr:
		if t.Kind == cdl.KindStruct {
			return t.Name == x.Type, x.Type
		}
		return false, x.Type
	}
	return true, ""
}

// SchemaConformance checks struct literals against their schema: unknown
// schema names, unknown fields, statically-visible type mismatches
// (Error), and missing fields that have no default (Warn).
var SchemaConformance = &Analyzer{
	Name: "schema-conformance",
	Doc: "check struct literals against schema definitions: unknown " +
		"schemas and fields and literal type mismatches are errors; a " +
		"missing field with no default is a warning",
	Run: func(pass *Pass) {
		base := newScope(nil)
		for n := range pass.Facts.Builtins {
			base.names[n] = true
		}
		env := newScope(base)
		for n := range pass.Facts.Env {
			env.names[n] = true
		}
		scopeWalk(pass.Module, env, scopeVisitor{
			expr: func(x cdl.Expr, sc *scope) {
				se, ok := x.(*cdl.StructExpr)
				if !ok {
					return
				}
				sd := pass.Facts.Schemas[se.Type]
				if sd == nil {
					// Name{...} where Name is a visible variable is the
					// evaluator's struct-update fallback, not a schema
					// literal.
					if !sc.has(se.Type) {
						pass.Reportf(Error, se.Pos, se.End,
							"unknown schema %q (no schema or variable of that name is visible)", se.Type)
					}
					return
				}
				fields := effectiveFields(sd, pass.Facts.Schemas)
				given := map[string]bool{}
				for i, name := range se.Names {
					given[name] = true
					f := fields[name]
					if f == nil {
						var names []string
						for n := range fields {
							names = append(names, n)
						}
						d := Diagnostic{
							Pos: cdl.ExprPos(se.Values[i]), End: cdl.ExprEnd(se.Values[i]),
							Severity: Error,
							Message:  fmt.Sprintf("unknown field %q in schema %s", name, se.Type),
						}
						if near := nearest(name, names); near != "" {
							d.SuggestedFix = fmt.Sprintf("did you mean %q?", near)
						}
						pass.Report(d)
						continue
					}
					if ok, got := litMatches(f.Type, se.Values[i]); !ok {
						pass.Reportf(Error,
							cdl.ExprPos(se.Values[i]), cdl.ExprEnd(se.Values[i]),
							"field %s of schema %s expects %s, got %s",
							name, se.Type, f.Type, got)
					}
				}
				var missing []string
				for name, f := range fields {
					if f.Default == nil && !given[name] {
						missing = append(missing, name)
					}
				}
				sort.Strings(missing)
				for _, name := range missing {
					pass.Report(Diagnostic{
						Pos: se.Pos, End: se.End,
						Severity: Warn,
						Message: fmt.Sprintf(
							"field %s of schema %s has no default and is not set (will be zero-filled)",
							name, se.Type),
						SuggestedFix: fmt.Sprintf("set %s explicitly or give it a default", name),
					})
				}
			},
		})
	},
}

// ValidatorCoverage warns when a module exports a schema literal whose
// schema (including its extends chain) has no validator anywhere in the
// import closure — the §3.3 invariant-checking hook is simply absent.
var ValidatorCoverage = &Analyzer{
	Name: "validator-coverage",
	Doc: "warn when an exported schema literal has no validator registered " +
		"for its schema anywhere in the import closure",
	Run: func(pass *Pass) {
		var walk func([]cdl.Stmt)
		walk = func(stmts []cdl.Stmt) {
			for _, st := range stmts {
				switch s := st.(type) {
				case *cdl.ExportStmt:
					se, ok := s.Value.(*cdl.StructExpr)
					if !ok {
						continue
					}
					if pass.Facts.Schemas[se.Type] == nil {
						continue // schema-conformance reports unknown schemas
					}
					if !pass.Facts.validatedWithBases(se.Type) {
						pass.Report(Diagnostic{
							Pos: s.Pos, End: s.End,
							Severity: Warn,
							Message: fmt.Sprintf(
								"exported %s value has no validator in the import closure", se.Type),
							SuggestedFix: fmt.Sprintf("add: validator %s(c) { assert(...); }", se.Type),
						})
					}
				case *cdl.IfStmt:
					walk(s.Then)
					walk(s.Else)
				case *cdl.ForStmt:
					walk(s.Body)
				}
			}
		}
		walk(pass.Module.Stmts)
	},
}

// cyclePath reconstructs one import chain from `from` back to `target`
// for the diagnostic message.
func cyclePath(uni *Universe, from, target string) []string {
	var dfs func(cur string, trail []string, seen map[string]bool) []string
	dfs = func(cur string, trail []string, seen map[string]bool) []string {
		if cur == target {
			return append(trail, cur)
		}
		if seen[cur] {
			return nil
		}
		seen[cur] = true
		mod := uni.ASTs[cur]
		if mod == nil {
			return nil
		}
		for _, imp := range mod.Imports {
			if found := dfs(imp.Path, append(trail, cur), seen); found != nil {
				return found
			}
		}
		return nil
	}
	return dfs(from, nil, map[string]bool{})
}

// ImportCycle errors on imports that close a cycle. The compiler would
// also fail on these, but only one module at a time; the analyzer reports
// the full chain at every participating import.
var ImportCycle = &Analyzer{
	Name: "import-cycle",
	Doc:  "error on import statements that close an import cycle",
	Run: func(pass *Pass) {
		for _, imp := range pass.Module.Imports {
			if imp.Path == pass.Path {
				pass.Reportf(Error, imp.PathPos, imp.PathEnd, "module imports itself")
				continue
			}
			dep := pass.Universe.Modules[imp.Path]
			if dep == nil || !dep.InClosure(pass.Path) {
				continue
			}
			chain := cyclePath(pass.Universe, imp.Path, pass.Path)
			msg := fmt.Sprintf("import cycle: %s -> %s", pass.Path, strings.Join(chain, " -> "))
			pass.Reportf(Error, imp.PathPos, imp.PathEnd, "%s", msg)
		}
	},
}

// DeadExport warns when a .cinc library exports a value but nothing in
// the lint universe imports the library: under last-export-wins semantics
// that export can never reach an artifact. (Any module reached through an
// import has an importer by construction, so this can only fire for
// libraries given as lint roots — e.g. a changed .cinc whose full
// importer set the pipeline includes via the dependency graph.)
var DeadExport = &Analyzer{
	Name: "dead-export",
	Doc: "warn when a .cinc library has an export statement but no module " +
		"in the lint universe imports it",
	Run: func(pass *Pass) {
		if pass.Facts.IsRoot || !pass.Facts.HasExport {
			return
		}
		if len(pass.Universe.Importers[pass.Path]) > 0 {
			return
		}
		for _, st := range pass.Module.Stmts {
			if s, ok := st.(*cdl.ExportStmt); ok {
				pass.Report(Diagnostic{
					Pos: s.Pos, End: s.End,
					Severity:     Warn,
					Message:      "library is never imported; its export is unreachable",
					SuggestedFix: "delete the export or import the library from a .cconf",
				})
			}
		}
	},
}

// ImpureConstruct warns on the assignments that defeat module
// memoization: writes that escape their call scope into an environment
// shared across compiles. The engine already detects these (and declines
// to cache the module); the analyzer surfaces each site.
var ImpureConstruct = &Analyzer{
	Name: "impure-construct",
	Doc: "warn on assignments that escape their call scope and make the " +
		"module unsafe to memoize across compiles",
	Run: func(pass *Pass) {
		for _, site := range cdl.ImpureAssignments(pass.Module) {
			pass.Report(Diagnostic{
				Pos: site.Pos, End: site.End,
				Severity: Warn,
				Message: fmt.Sprintf(
					"assignment to %q escapes its call scope; the module cannot be memoized", site.Name),
				SuggestedFix: fmt.Sprintf("bind a fresh name instead: let %s = ...;", site.Name),
			})
		}
	},
}

// DeprecatedSitevar warns on references to sitevars the operator has
// marked deprecated — `sitevar("name")` calls and imports under
// "sitevars/" — carrying the configured replacement note.
var DeprecatedSitevar = &Analyzer{
	Name: "deprecated-sitevar",
	Doc: "warn on sitevar(\"name\") calls and sitevars/ imports that " +
		"reference a sitevar marked deprecated",
	Run: func(pass *Pass) {
		if len(pass.DeprecatedSitevars) == 0 {
			return
		}
		walkExprs(pass.Module.Stmts, func(e cdl.Expr) {
			call, ok := e.(*cdl.CallExpr)
			if !ok || len(call.Args) == 0 {
				return
			}
			fn, ok := call.Fn.(*cdl.IdentExpr)
			if !ok || fn.Name != "sitevar" {
				return
			}
			lit, ok := call.Args[0].(*cdl.LitExpr)
			if !ok {
				return
			}
			name, ok := lit.Val.(cdl.Str)
			if !ok {
				return
			}
			note, deprecated := pass.DeprecatedSitevars[string(name)]
			if !deprecated {
				return
			}
			pass.Reportf(Warn, cdl.ExprPos(call), cdl.ExprEnd(call),
				"sitevar %q is deprecated: %s", string(name), note)
		})
		for _, imp := range pass.Module.Imports {
			if !strings.HasPrefix(imp.Path, "sitevars/") {
				continue
			}
			base := strings.TrimPrefix(imp.Path, "sitevars/")
			if i := strings.LastIndexByte(base, '.'); i >= 0 {
				base = base[:i]
			}
			if note, deprecated := pass.DeprecatedSitevars[base]; deprecated {
				pass.Reportf(Warn, imp.PathPos, imp.PathEnd,
					"sitevar %q is deprecated: %s", base, note)
			}
		}
	},
}
