// Package dataflow is the whole-repo semantic analysis layer behind the
// configrisk gates: provenance (which origin sites can alter each artifact
// field), blast radius (which artifacts, consumer bindings, and canary
// domains a candidate diff can reach), and determinacy (no two unordered
// overlay paths may assign conflicting values to the same field).
//
// The paper's defense ladder (§4) leans on validators, review, and canary,
// but its §6.2/§8 incident data show the worst outages come from *valid*
// changes whose reach nobody computed — the 727-author sitevar, the
// dormant config suddenly edited. Rehearsal-style static verification
// closes that gap: every query here is answered without evaluating a
// single config, from per-module summaries memoized by content hash so a
// warm whole-repo pass is incremental exactly like cdl.Engine.
//
// The three passes share one substrate: an Index builds (or reuses) one
// summary per module, keyed by the Merkle hash of the module's import
// closure. Editing one .cinc invalidates only its provenance cone — the
// file plus its transitive importers — which the
// dataflow.provenance.memo / dataflow.provenance.recompute counters make
// observable and testable.
package dataflow

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"configerator/internal/cdl"
	"configerator/internal/obs"
	"configerator/internal/stats"
)

// OriginKind classifies where a config value can come from.
type OriginKind string

// Origin kinds. Sitevar, gatekeeper, and env origins are recognized
// syntactically — `sitevar("name")`-style calls and imports under the
// "sitevars/" / "gatekeeper/" conventions — matching the deprecated-sitevar
// analyzer; there are no such builtins in the evaluator.
const (
	// OriginModule: a source file whose declarations feed the value.
	OriginModule OriginKind = "module"
	// OriginSitevar: a sitevar("name") call or a sitevars/<name>.cinc import.
	OriginSitevar OriginKind = "sitevar"
	// OriginGatekeeper: a gatekeeper("project") call or gatekeeper/ import.
	OriginGatekeeper OriginKind = "gatekeeper"
	// OriginEnv: an env("NAME") call.
	OriginEnv OriginKind = "env"
)

// SiteRef is a JSON-friendly source position.
type SiteRef struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

func siteRef(p cdl.Pos) SiteRef { return SiteRef{File: p.File, Line: p.Line, Col: p.Col} }

// String renders file:line:col.
func (s SiteRef) String() string { return fmt.Sprintf("%s:%d:%d", s.File, s.Line, s.Col) }

// Origin is one site whose change can alter a value: a module file, or an
// external input (sitevar / gatekeeper gate / env var) referenced from one.
type Origin struct {
	Kind OriginKind `json:"kind"`
	// Name is the sitevar/gate/env name; for OriginModule it is the file path.
	Name string `json:"name"`
	// Site is a representative source position (the declaration or call).
	Site SiteRef `json:"site"`
}

// key dedups origins: one entry per (kind, name), first site kept.
func (o Origin) key() string { return string(o.Kind) + "\x00" + o.Name }

// String renders `module path (site)` or `sitevar "name" (site)`.
func (o Origin) String() string {
	if o.Kind == OriginModule {
		return fmt.Sprintf("module %s (%s)", o.Name, o.Site)
	}
	return fmt.Sprintf("%s %q (%s)", o.Kind, o.Name, o.Site)
}

// ConsumerSite is one static consumer binding: a sitevar/gatekeeper/env
// reference site in a module — the compile-time analogue of a runtime
// gatekeeper.Bind subscription.
type ConsumerSite struct {
	Kind OriginKind `json:"kind"`
	Name string     `json:"name"`
	Site SiteRef    `json:"site"`
}

// String renders `site: kind "name"`.
func (c ConsumerSite) String() string {
	return fmt.Sprintf("%s: %s %q", c.Site, c.Kind, c.Name)
}

// Counter names (also mirrored into the obs registry with the "dataflow."
// prefix when the Index has one).
const (
	counterMemo      = "provenance.memo"
	counterRecompute = "provenance.recompute"
	counterRadius    = "radius.query"
)

// DefaultMaxSummaries bounds the content-keyed summary memo. The cache is
// cleared wholesale when it overflows — content hashes make stale entries
// unreachable anyway, this only reclaims memory.
const DefaultMaxSummaries = 16384

// Index owns the memoized per-module summaries. It is long-lived (one per
// pipeline, like cdl.Engine): summaries are keyed by the Merkle hash of
// each module's import closure, so analyses across different overlay
// views reuse everything untouched and recompute exactly the edited cone.
type Index struct {
	// Obs, when set, receives dataflow.* counters and the
	// dataflow.radius.size histogram.
	Obs *obs.Registry
	// MaxSummaries caps the memo (DefaultMaxSummaries when 0).
	MaxSummaries int

	engine   *cdl.Engine
	counters *stats.Counters

	mu   sync.Mutex
	memo map[string]*summary
}

// NewIndex returns an index sharing the engine's parse cache. A nil engine
// is allowed (the CLI's one-shot mode): parsing is then uncached.
func NewIndex(engine *cdl.Engine) *Index {
	return &Index{
		engine:   engine,
		counters: stats.NewCounters(),
		memo:     make(map[string]*summary),
	}
}

// Counters exposes the memo/recompute/radius counters.
func (ix *Index) Counters() *stats.Counters { return ix.counters }

func (ix *Index) count(name string) {
	ix.counters.Add(name, 1)
	if ix.Obs != nil {
		ix.Obs.Add("dataflow."+name, 1)
	}
}

func (ix *Index) lookup(key string) *summary {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.memo[key]
}

func (ix *Index) store(key string, s *summary) {
	max := ix.MaxSummaries
	if max <= 0 {
		max = DefaultMaxSummaries
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.memo) >= max {
		ix.memo = make(map[string]*summary)
	}
	ix.memo[key] = s
}

// Repo is one whole-repo analysis: every loaded module's summary under a
// fixed file-system view. Query methods (Why, Provenance, Radius,
// Determinacy) are read-only and safe for concurrent use.
type Repo struct {
	ix *Index
	// Roots are the analyzed artifact sources, sorted.
	Roots []string
	// Errors records modules that failed to read or parse (analysis
	// continues with a stub for them; configlint reports the parse error).
	Errors []string

	sums map[string]*summary
}

// Analyze summarizes every root and its import closure under fs. Summaries
// for unchanged closures are reused from the index memo; only the edited
// cone — changed files plus their transitive importers — is recomputed.
func (ix *Index) Analyze(fs cdl.FileSystem, roots []string) *Repo {
	b := &builder{
		ix:      ix,
		fs:      fs,
		sums:    make(map[string]*summary),
		keys:    make(map[string]*keyInfo),
		onStack: make(map[string]bool),
	}
	rep := &Repo{ix: ix, sums: b.sums}
	seen := make(map[string]bool, len(roots))
	for _, root := range roots {
		if seen[root] {
			continue
		}
		seen[root] = true
		rep.Roots = append(rep.Roots, root)
		b.summarize(root)
	}
	sort.Strings(rep.Roots)
	for _, s := range b.sums {
		if s.err != "" {
			rep.Errors = append(rep.Errors, s.err)
		}
	}
	sort.Strings(rep.Errors)
	return rep
}

// observeRadius feeds one radius query into the counters and histogram.
func (ix *Index) observeRadius(artifacts int) {
	ix.count(counterRadius)
	if ix.Obs != nil {
		// Size histogram, following the obs idiom for non-duration
		// quantities (cf. net.msg.bytes): one observation per query, value
		// = number of artifacts reached.
		ix.Obs.Observe("dataflow.radius.size", time.Duration(artifacts))
	}
}

// extKinds maps the conventional external-input call names to origin kinds.
var extKinds = map[string]OriginKind{
	"sitevar":    OriginSitevar,
	"gatekeeper": OriginGatekeeper,
	"env":        OriginEnv,
}

// pathOrigin maps a source path under the sitevars/ or gatekeeper/
// conventions to the external input it carries ("" when neither).
func pathOrigin(path string) (OriginKind, string) {
	if rest, ok := strings.CutPrefix(path, "sitevars/"); ok {
		return OriginSitevar, trimExt(rest)
	}
	if rest, ok := strings.CutPrefix(path, "gatekeeper/"); ok {
		return OriginGatekeeper, trimExt(rest)
	}
	return "", ""
}

func trimExt(p string) string {
	if i := strings.LastIndexByte(p, '.'); i > 0 {
		return p[:i]
	}
	return p
}
