package dataflow

import (
	"strings"
	"testing"

	"configerator/internal/cdl"
)

// svRepo is the canonical test tree: one sitevar template feeding a shared
// library feeding two artifacts, plus an unrelated bystander.
func svRepo() cdl.MapFS {
	return cdl.MapFS{
		"sitevars/ratelimit.cinc": "let RATELIMIT = 100;\n",
		"lib/limits.cinc": "import \"sitevars/ratelimit.cinc\";\n" +
			"let LIMIT = RATELIMIT * 2;\nlet NAME = \"api\";\n",
		"svc/api.cconf": "import \"lib/limits.cinc\";\n" +
			"def sitevar(name) {\n\treturn name;\n}\n" +
			"export {limit: LIMIT, tag: sitevar(\"region\"), fixed: 7};\n",
		"svc/web.cconf": "import \"lib/limits.cinc\";\n" +
			"export {limit: LIMIT};\n",
		"svc/other.cconf": "export {standalone: true};\n",
	}
}

func analyzeAll(t *testing.T, fs cdl.MapFS) (*Index, *Repo) {
	t.Helper()
	ix := NewIndex(cdl.NewEngine())
	var roots []string
	for p := range fs {
		if strings.HasSuffix(p, ".cconf") {
			roots = append(roots, p)
		}
	}
	rep := ix.Analyze(fs, roots)
	if len(rep.Errors) > 0 {
		t.Fatalf("analyze errors: %v", rep.Errors)
	}
	return ix, rep
}

func originNames(origins []Origin) []string {
	out := make([]string, 0, len(origins))
	for _, o := range origins {
		out = append(out, string(o.Kind)+":"+o.Name)
	}
	return out
}

func hasOrigin(origins []Origin, kind OriginKind, name string) bool {
	for _, o := range origins {
		if o.Kind == kind && o.Name == name {
			return true
		}
	}
	return false
}

// TestWhyFieldProvenance: per-field origins follow the reference chain
// through the shared library to the sitevar template, and unrelated fields
// stay clean.
func TestWhyFieldProvenance(t *testing.T) {
	_, rep := analyzeAll(t, svRepo())

	limit, err := rep.Why("svc/api.cconf", "limit")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []struct {
		kind OriginKind
		name string
	}{
		{OriginSitevar, "ratelimit"},
		{OriginModule, "lib/limits.cinc"},
		{OriginModule, "sitevars/ratelimit.cinc"},
		{OriginModule, "svc/api.cconf"},
	} {
		if !hasOrigin(limit, want.kind, want.name) {
			t.Errorf("limit origins missing %s:%s; got %v", want.kind, want.name, originNames(limit))
		}
	}

	fixed, err := rep.Why("svc/api.cconf", "fixed")
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 1 || !hasOrigin(fixed, OriginModule, "svc/api.cconf") {
		t.Errorf("fixed should only depend on its own module, got %v", originNames(fixed))
	}

	tag, err := rep.Why("svc/api.cconf", "tag")
	if err != nil {
		t.Fatal(err)
	}
	if !hasOrigin(tag, OriginSitevar, "region") {
		t.Errorf("tag should carry the sitevar(\"region\") origin, got %v", originNames(tag))
	}
	if hasOrigin(tag, OriginSitevar, "ratelimit") {
		t.Errorf("tag must not inherit the limit field's sitevar, got %v", originNames(tag))
	}

	if _, err := rep.Why("svc/api.cconf", "nope"); err == nil {
		t.Error("unknown field should error")
	}
	if _, err := rep.Why("missing.cconf", ""); err == nil {
		t.Error("unanalyzed root should error")
	}
}

// TestProvenanceClosure: the whole-artifact view includes the closure and
// the winning export's full origin slice.
func TestProvenanceClosure(t *testing.T) {
	_, rep := analyzeAll(t, svRepo())
	p, err := rep.Provenance("svc/web.cconf")
	if err != nil {
		t.Fatal(err)
	}
	wantClosure := []string{"lib/limits.cinc", "sitevars/ratelimit.cinc", "svc/web.cconf"}
	if strings.Join(p.Closure, ",") != strings.Join(wantClosure, ",") {
		t.Errorf("closure = %v, want %v", p.Closure, wantClosure)
	}
	if !hasOrigin(p.Origins, OriginSitevar, "ratelimit") {
		t.Errorf("artifact origins missing the sitevar, got %v", originNames(p.Origins))
	}
	if len(p.Fields) != 1 || p.Fields[0].Field != "limit" {
		t.Errorf("fields = %+v, want one entry for limit", p.Fields)
	}
}

// TestRadiusSitevarEdit: editing one sitevar template reaches exactly the
// two artifacts importing it (directly or via the library) and the
// library's consumer binding — and nothing else.
func TestRadiusSitevarEdit(t *testing.T) {
	_, rep := analyzeAll(t, svRepo())

	rad := rep.Radius([]string{"sitevars/ratelimit.cinc"})
	wantArts := "svc/api.cconf,svc/web.cconf"
	if got := strings.Join(rad.Artifacts, ","); got != wantArts {
		t.Errorf("artifacts = %q, want %q", got, wantArts)
	}
	found := false
	for _, c := range rad.Consumers {
		if c.Kind == OriginSitevar && c.Name == "ratelimit" && c.Site.File == "lib/limits.cinc" {
			found = true
		}
	}
	if !found {
		t.Errorf("consumers should include the library's sitevar import site, got %v", rad.Consumers)
	}
	want := WeightArtifact*float64(len(rad.Artifacts)) + WeightConsumer*float64(len(rad.Consumers))
	if rad.Score != want {
		t.Errorf("score = %v, want %v", rad.Score, want)
	}

	// The token form reaches the same set.
	tok := rep.Radius([]string{"sitevar:ratelimit"})
	if strings.Join(tok.Artifacts, ",") != wantArts {
		t.Errorf("token artifacts = %v, want %q", tok.Artifacts, wantArts)
	}

	// An isolated artifact only reaches itself.
	solo := rep.Radius([]string{"svc/other.cconf"})
	if strings.Join(solo.Artifacts, ",") != "svc/other.cconf" {
		t.Errorf("solo artifacts = %v", solo.Artifacts)
	}
	if len(solo.Consumers) != 0 {
		t.Errorf("solo consumers = %v, want none", solo.Consumers)
	}
}

// TestRadiusCallSiteConsumer: a sitevar("name") call site is a consumer
// binding for that name even though no sitevars/ file exists.
func TestRadiusCallSiteConsumer(t *testing.T) {
	_, rep := analyzeAll(t, svRepo())
	rad := rep.Radius([]string{"sitevar:region"})
	if strings.Join(rad.Artifacts, ",") != "svc/api.cconf" {
		t.Errorf("artifacts = %v, want svc/api.cconf", rad.Artifacts)
	}
	if len(rad.Consumers) != 1 || rad.Consumers[0].Site.File != "svc/api.cconf" {
		t.Errorf("consumers = %v, want the call site in svc/api.cconf", rad.Consumers)
	}
}

// TestDeterminacyConflict: two unordered overlays assigning the same
// exported name with different values is an Error naming both sites.
func TestDeterminacyConflict(t *testing.T) {
	fs := cdl.MapFS{
		"overlays/a.cinc": "let timeout = 5;\n",
		"overlays/b.cinc": "let timeout = 30;\n",
		"svc/app.cconf": "import \"overlays/a.cinc\";\nimport \"overlays/b.cinc\";\n" +
			"export {timeout: timeout};\n",
	}
	_, rep := analyzeAll(t, fs)
	diags := rep.Determinacy()
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly one", diags)
	}
	d := diags[0]
	if d.Analyzer != DeterminacyAnalyzer {
		t.Errorf("analyzer = %q", d.Analyzer)
	}
	if !strings.Contains(d.Message, "overlays/a.cinc:1") ||
		!strings.Contains(d.Message, "overlays/b.cinc:1") {
		t.Errorf("message must name both conflicting sites: %s", d.Message)
	}
}

// TestDeterminacyClean: equal values, ordered overlays, non-exported
// names, and root-owned exports are all deterministic.
func TestDeterminacyClean(t *testing.T) {
	cases := map[string]cdl.MapFS{
		"equal values": {
			"overlays/a.cinc": "let timeout = 5;\n",
			"overlays/b.cinc": "let timeout = 5;\n",
			"svc/app.cconf": "import \"overlays/a.cinc\";\nimport \"overlays/b.cinc\";\n" +
				"export {timeout: timeout};\n",
		},
		"ordered overlays": {
			"overlays/a.cinc": "let timeout = 5;\n",
			"overlays/b.cinc": "import \"overlays/a.cinc\";\nlet timeout = 30;\n",
			"svc/app.cconf":   "import \"overlays/b.cinc\";\nexport {timeout: timeout};\n",
		},
		"conflicting name not exported": {
			"overlays/a.cinc": "let timeout = 5;\nlet keep = 1;\n",
			"overlays/b.cinc": "let timeout = 30;\n",
			"svc/app.cconf": "import \"overlays/a.cinc\";\nimport \"overlays/b.cinc\";\n" +
				"export {keep: keep};\n",
		},
		"root export overrides dep exports": {
			"overlays/a.cinc": "export {v: 1};\n",
			"overlays/b.cinc": "export {v: 2};\n",
			"svc/app.cconf": "import \"overlays/a.cinc\";\nimport \"overlays/b.cinc\";\n" +
				"export {v: 3};\n",
		},
	}
	for name, fs := range cases {
		_, rep := analyzeAll(t, fs)
		if diags := rep.Determinacy(); len(diags) != 0 {
			t.Errorf("%s: unexpected diagnostics: %v", name, diags)
		}
	}
}

// TestDeterminacyExportConflict: two unordered modules exporting into an
// artifact whose root does not export is order-dependent.
func TestDeterminacyExportConflict(t *testing.T) {
	fs := cdl.MapFS{
		"overlays/a.cinc": "export {v: 1};\n",
		"overlays/b.cinc": "export {v: 2};\n",
		"svc/app.cconf":   "import \"overlays/a.cinc\";\nimport \"overlays/b.cinc\";\n",
	}
	_, rep := analyzeAll(t, fs)
	diags := rep.Determinacy()
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %v, want exactly one", diags)
	}
	if !strings.Contains(diags[0].Message, "overlays/a.cinc:1") ||
		!strings.Contains(diags[0].Message, "overlays/b.cinc:1") {
		t.Errorf("message must name both export sites: %s", diags[0].Message)
	}
}

// TestImportCycleTolerated: a cyclic import pair degrades gracefully (no
// memoization, no hang, no panic) — the import-cycle lint analyzer owns
// the diagnostic.
func TestImportCycleTolerated(t *testing.T) {
	fs := cdl.MapFS{
		"a.cinc":     "import \"b.cinc\";\nlet A = 1;\n",
		"b.cinc":     "import \"a.cinc\";\nlet B = 2;\n",
		"top.cconf":  "import \"a.cinc\";\nexport {a: A};\n",
		"solo.cconf": "export {ok: true};\n",
	}
	ix := NewIndex(cdl.NewEngine())
	rep := ix.Analyze(fs, []string{"top.cconf", "solo.cconf"})
	if _, err := rep.Why("top.cconf", "a"); err != nil {
		t.Fatalf("why through a cycle: %v", err)
	}
	// Cyclic closures are uncacheable: a second analysis recomputes them
	// but still memo-hits the acyclic bystander.
	before := ix.Counters().Snapshot()
	ix.Analyze(fs, []string{"top.cconf", "solo.cconf"})
	after := ix.Counters().Snapshot()
	if after[counterMemo]-before[counterMemo] != 1 {
		t.Errorf("memo delta = %d, want 1 (solo.cconf only)",
			after[counterMemo]-before[counterMemo])
	}
}
