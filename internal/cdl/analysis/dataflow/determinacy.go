package dataflow

import (
	"fmt"
	"sort"

	"configerator/internal/cdl/analysis"
)

// DeterminacyAnalyzer names pass 3's diagnostics. The check is
// deliberately NOT in the analysis registry: it needs whole-repo
// summaries, not a single module pass, and it gates the landing strip
// through the dataflow API instead.
const DeterminacyAnalyzer = "determinacy"

// Determinacy is pass 3: the Rehearsal-style check that artifact output
// cannot depend on overlay or shard/land order. Two assignment sites
// conflict when they bind the same top-level name that flows into an
// artifact's export, with values not provably equal, from modules neither
// of which imports the other — then nothing in the language orders them,
// and reordering imports (or landing repo shards in a different order, the
// bug PR 3's orderShards fixed ad hoc) silently flips the artifact.
// The same rule applies to whole-module exports: two unordered modules
// exporting into the same artifact conflict unless the artifact's root
// overrides them with its own export.
//
// Diagnostics are Error severity and name both conflicting sites.
func (r *Repo) Determinacy() []analysis.Diagnostic {
	return r.DeterminacyFor(r.Roots)
}

// DeterminacyFor restricts pass 3 to the given artifact roots (unknown
// roots are skipped). The landing strip uses it to check exactly the
// artifacts a diff's blast radius reaches, so a pre-existing conflict
// elsewhere in the repo cannot block an unrelated change.
func (r *Repo) DeterminacyFor(roots []string) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	reported := make(map[string]bool)
	report := func(d analysis.Diagnostic) {
		k := d.Pos.String() + "\x00" + d.Message
		if !reported[k] {
			reported[k] = true
			out = append(out, d)
		}
	}

	for _, root := range roots {
		s := r.sums[root]
		if s == nil || len(s.exports) == 0 {
			continue
		}
		win := s.exports[len(s.exports)-1]

		// Export conflicts: the winning exporter must be ordered after
		// every other exporting module, unless the root itself exports
		// (the root always executes last, so its export wins on every
		// land order).
		if win.path != root {
			for _, e := range s.exports[:len(s.exports)-1] {
				if e.path == win.path || e.path == root {
					continue
				}
				if e.fp != "" && e.fp == win.fp {
					continue
				}
				if r.ordered(e.path, win.path) {
					continue
				}
				report(analysis.Diagnostic{
					Pos: win.pos, End: win.end, Severity: analysis.Error,
					Analyzer: DeterminacyAnalyzer,
					Message: fmt.Sprintf(
						"artifact %s takes its export from %s, but %s also exports and neither module imports the other; the output depends on import/land order",
						root, win.pos, e.pos),
					SuggestedFix: "export from the artifact's .cconf, or make one overlay import the other",
				})
			}
		}

		// Name conflicts, restricted to names that actually flow into the
		// winning export (a conflicting name nothing reads cannot alter
		// the artifact).
		for _, name := range r.exportDeps(s, win) {
			b := s.bindings[name]
			if b == nil || len(b.sites) < 2 {
				continue
			}
			winSite := b.win()
			for i := range b.sites[:len(b.sites)-1] {
				st := &b.sites[i]
				if st.path == winSite.path {
					continue // same module: statement order decides
				}
				if st.fp != "" && st.fp == winSite.fp {
					continue // provably the same value either way
				}
				if r.ordered(st.path, winSite.path) {
					continue // one imports the other: order is fixed
				}
				report(analysis.Diagnostic{
					Pos: winSite.pos, End: winSite.end, Severity: analysis.Error,
					Analyzer: DeterminacyAnalyzer,
					Message: fmt.Sprintf(
						"%q is assigned conflicting values at %s and %s, and neither module imports the other; artifact %s depends on import/land order",
						name, winSite.pos, st.pos, root),
					SuggestedFix: "give the overlays an import order, or split the name",
				})
			}
		}
	}
	analysis.SortDiagnostics(out)
	return out
}

// ordered reports whether one module's execution is ordered relative to
// the other's by the import graph (either closure contains the other).
func (r *Repo) ordered(a, b string) bool {
	if sa := r.sums[a]; sa != nil && sa.reach[b] {
		return true
	}
	if sb := r.sums[b]; sb != nil && sb.reach[a] {
		return true
	}
	return false
}

// exportDeps returns every top-level name the export transitively
// references, sorted.
func (r *Repo) exportDeps(s *summary, win exportRec) []string {
	visited := make(map[string]bool)
	queue := append([]string{}, win.refs...)
	for _, fr := range win.fields {
		queue = append(queue, fr.refs...)
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if visited[name] {
			continue
		}
		visited[name] = true
		if b := s.bindings[name]; b != nil {
			for _, site := range b.sites {
				queue = append(queue, site.refs...)
			}
		}
	}
	out := make([]string, 0, len(visited))
	for name := range visited {
		if s.bindings[name] != nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
