package dataflow

import (
	"fmt"
	"sync"
	"testing"

	"configerator/internal/cdl"
)

// diamondRepo: base feeds left and right, which both feed top — the
// classic diamond — plus a bystander chain that shares nothing with it.
func diamondRepo() cdl.MapFS {
	return cdl.MapFS{
		"lib/base.cinc":  "let BASE = 1;\n",
		"lib/left.cinc":  "import \"lib/base.cinc\";\nlet LEFT = BASE + 1;\n",
		"lib/right.cinc": "import \"lib/base.cinc\";\nlet RIGHT = BASE + 2;\n",
		"svc/top.cconf": "import \"lib/left.cinc\";\nimport \"lib/right.cinc\";\n" +
			"export {l: LEFT, r: RIGHT};\n",
		"lib/other.cinc":      "let OTHER = 9;\n",
		"svc/bystander.cconf": "import \"lib/other.cinc\";\nexport {o: OTHER};\n",
	}
}

var diamondRoots = []string{"svc/top.cconf", "svc/bystander.cconf"}

// TestIncrementalInvalidation: editing one .cinc recomputes exactly its
// provenance cone — the file plus its transitive importers — while
// everything else memo-hits. The diamond shape also proves the shared
// base is recomputed once, not once per import path.
func TestIncrementalInvalidation(t *testing.T) {
	fs := diamondRepo()
	ix := NewIndex(cdl.NewEngine())

	ix.Analyze(fs, diamondRoots)
	cold := ix.Counters().Snapshot()
	if cold[counterRecompute] != 6 || cold[counterMemo] != 0 {
		t.Fatalf("cold: recompute=%d memo=%d, want 6/0", cold[counterRecompute], cold[counterMemo])
	}

	// Warm, unchanged: both roots memo-hit at the top; collectReach
	// memo-hits the rest of each closure without rebuilding anything.
	ix.Analyze(fs, diamondRoots)
	warm := ix.Counters().Snapshot()
	if d := warm[counterRecompute] - cold[counterRecompute]; d != 0 {
		t.Errorf("warm recompute delta = %d, want 0", d)
	}
	if d := warm[counterMemo] - cold[counterMemo]; d != 6 {
		t.Errorf("warm memo delta = %d, want 6 (full closure reuse)", d)
	}

	// Edit the diamond's base: the cone {base, left, right, top}
	// recomputes; the bystander chain (2 files) memo-hits.
	edited := diamondRepo()
	edited["lib/base.cinc"] = "let BASE = 2;\n"
	rep := ix.Analyze(edited, diamondRoots)
	after := ix.Counters().Snapshot()
	if d := after[counterRecompute] - warm[counterRecompute]; d != 4 {
		t.Errorf("edit recompute delta = %d, want 4 (the provenance cone)", d)
	}
	if d := after[counterMemo] - warm[counterMemo]; d != 2 {
		t.Errorf("edit memo delta = %d, want 2 (the bystander chain)", d)
	}

	// The recomputed summaries answer for the edited tree.
	origins, err := rep.Why("svc/top.cconf", "l")
	if err != nil {
		t.Fatal(err)
	}
	if !hasOrigin(origins, OriginModule, "lib/base.cinc") {
		t.Errorf("l should trace to lib/base.cinc, got %v", originNames(origins))
	}
}

// TestMemoSharedAcrossOverlayViews: two different FileSystem views that
// agree on a closure share its summaries — the property the pipeline
// leans on, where every change analyzes through its own overlay.
func TestMemoSharedAcrossOverlayViews(t *testing.T) {
	ix := NewIndex(cdl.NewEngine())
	ix.Analyze(diamondRepo(), diamondRoots)
	base := ix.Counters().Snapshot()

	// A second view adds a new artifact but leaves the diamond untouched.
	view2 := diamondRepo()
	view2["svc/extra.cconf"] = "import \"lib/other.cinc\";\nexport {o2: OTHER};\n"
	ix.Analyze(view2, append([]string{"svc/extra.cconf"}, diamondRoots...))
	after := ix.Counters().Snapshot()
	if d := after[counterRecompute] - base[counterRecompute]; d != 1 {
		t.Errorf("recompute delta = %d, want 1 (just the new artifact)", d)
	}
}

// TestConcurrentQueries: Analyze and the three query passes are safe to
// run concurrently (the -race gate for the package).
func TestConcurrentQueries(t *testing.T) {
	fs := svRepo()
	ix := NewIndex(cdl.NewEngine())
	roots := []string{"svc/api.cconf", "svc/web.cconf", "svc/other.cconf"}
	rep := ix.Analyze(fs, roots)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				switch i % 4 {
				case 0:
					if _, err := rep.Why("svc/api.cconf", "limit"); err != nil {
						t.Error(err)
						return
					}
				case 1:
					rep.Radius([]string{"sitevars/ratelimit.cinc"})
				case 2:
					rep.Determinacy()
				case 3:
					edited := svRepo()
					edited["sitevars/ratelimit.cinc"] = fmt.Sprintf("let RATELIMIT = %d;\n", 100+i*20+j)
					ix.Analyze(edited, roots)
				}
			}
		}(i)
	}
	wg.Wait()
}
