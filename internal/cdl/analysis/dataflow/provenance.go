package dataflow

import (
	"fmt"
	"sort"
)

// Provenance is pass 1's answer for one artifact: the origin sites whose
// change can alter its compiled output, whole-artifact and per-field.
type Provenance struct {
	// Artifact is the root source path (.cconf).
	Artifact string `json:"artifact"`
	// Origins is the whole-artifact origin set: the semantic slice of the
	// winning export — its transitive references' declaration sites plus
	// every external input they read.
	Origins []Origin `json:"origins"`
	// Fields holds per-field origins when the winning export is a
	// struct/map literal (sorted by field name); empty otherwise.
	Fields []FieldProvenance `json:"fields,omitempty"`
	// Closure is every file in the artifact's import closure, sorted. Any
	// file here can alter the artifact by *adding* statements; Origins is
	// the tighter set that can alter it through existing dataflow.
	Closure []string `json:"closure"`
}

// FieldProvenance is one exported field's origin set.
type FieldProvenance struct {
	Field   string   `json:"field"`
	Origins []Origin `json:"origins"`
}

// Provenance computes the artifact's full origin map.
func (r *Repo) Provenance(root string) (*Provenance, error) {
	s := r.sums[root]
	if s == nil {
		return nil, fmt.Errorf("dataflow: %s was not analyzed", root)
	}
	p := &Provenance{Artifact: root}
	for f := range s.reach {
		p.Closure = append(p.Closure, f)
	}
	sort.Strings(p.Closure)
	if len(s.exports) == 0 {
		return p, nil
	}
	win := s.exports[len(s.exports)-1]
	p.Origins = r.origins(s, win.refs, win.exts, win.path)
	fields := make([]string, 0, len(win.fields))
	for name := range win.fields {
		fields = append(fields, name)
	}
	sort.Strings(fields)
	for _, name := range fields {
		fr := win.fields[name]
		p.Fields = append(p.Fields, FieldProvenance{
			Field:   name,
			Origins: r.origins(s, fr.refs, fr.exts, win.path),
		})
	}
	return p, nil
}

// Why answers `configlint why <artifact> <field>`: the origin sites that
// can alter one exported field ("" means the whole artifact).
func (r *Repo) Why(root, field string) ([]Origin, error) {
	p, err := r.Provenance(root)
	if err != nil {
		return nil, err
	}
	if field == "" {
		return p.Origins, nil
	}
	for _, f := range p.Fields {
		if f.Field == field {
			return f.Origins, nil
		}
	}
	have := make([]string, 0, len(p.Fields))
	for _, f := range p.Fields {
		have = append(have, f.Field)
	}
	return nil, fmt.Errorf("dataflow: %s exports no field %q (have %v)", root, field, have)
}

// origins walks the reference graph from a seed slice: every declaration
// site of every transitively referenced top-level name becomes a module
// origin, and every external input read along the way becomes a
// sitevar/gatekeeper/env origin. All sites of a name are included — the
// winning one determines the value today, but editing any site can change
// which one wins.
func (r *Repo) origins(s *summary, refs []string, exts []Origin, seedFile string) []Origin {
	out := make(map[string]Origin)
	add := func(o Origin) {
		if _, ok := out[o.key()]; !ok {
			out[o.key()] = o
		}
	}
	for _, o := range exts {
		add(o)
	}
	// The export site's own file is always an origin.
	add(Origin{Kind: OriginModule, Name: seedFile,
		Site: SiteRef{File: seedFile, Line: 1, Col: 1}})

	visited := make(map[string]bool)
	queue := append([]string{}, refs...)
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if visited[name] {
			continue
		}
		visited[name] = true
		b := s.bindings[name]
		if b == nil {
			continue // builtin or undefined; the lint suite owns the latter
		}
		for _, site := range b.sites {
			add(Origin{Kind: OriginModule, Name: site.path, Site: siteRef(site.pos)})
			for _, o := range site.exts {
				add(o)
			}
			queue = append(queue, site.refs...)
		}
	}
	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	res := make([]Origin, 0, len(keys))
	for _, k := range keys {
		res = append(res, out[k])
	}
	// External inputs first, then module files, each alphabetical.
	sort.SliceStable(res, func(i, j int) bool {
		a, b := res[i], res[j]
		am, bm := a.Kind == OriginModule, b.Kind == OriginModule
		if am != bm {
			return !am
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Name < b.Name
	})
	return res
}
