package dataflow

import (
	"sort"
	"strings"
)

// Score weights. The score is deterministic on purpose — the same diff
// against the same tree always scores identically, so the landing-strip
// threshold and the review comment can never disagree.
const (
	// WeightArtifact scores each downstream artifact the change rebuilds.
	WeightArtifact = 1.0
	// WeightConsumer scores each consumer binding (a sitevar/gatekeeper/env
	// reference site) the change re-binds — consumers feel a bad value
	// directly, so they weigh more than artifacts.
	WeightConsumer = 2.0
	// WeightDomain scores each canary domain the rollout must cross.
	WeightDomain = 3.0
	// WeightRiskFlag is added per riskadvisor history flag when the
	// pipeline folds advisory history into the final score.
	WeightRiskFlag = 5.0
)

// Radius is pass 2's answer for one candidate diff: everything it can
// reach. Changed entries are source paths, or external-input tokens of the
// form "sitevar:name" / "gatekeeper:name" / "env:NAME".
type Radius struct {
	Changed []string `json:"changed"`
	// Artifacts are the downstream artifact sources (.cconf) whose
	// compiled output the change can alter, sorted.
	Artifacts []string `json:"artifacts"`
	// Consumers are the consumer bindings the change re-binds: external
	// input reference sites matching a changed input, plus any binding
	// sites physically inside a changed file.
	Consumers []ConsumerSite `json:"consumers"`
	// Domains are the canary domains the reached artifacts map to (filled
	// by the pipeline, which owns the canary-spec registry; empty in
	// standalone CLI use).
	Domains []string `json:"canary_domains,omitempty"`
	// Score is the deterministic reach score (WeightArtifact*artifacts +
	// WeightConsumer*consumers + WeightDomain*domains).
	Score float64 `json:"score"`
}

// rescore recomputes Score from the current slices (the pipeline calls it
// after filling Domains).
func (rad *Radius) rescore() {
	rad.Score = WeightArtifact*float64(len(rad.Artifacts)) +
		WeightConsumer*float64(len(rad.Consumers)) +
		WeightDomain*float64(len(rad.Domains))
}

// Rescore is the exported hook for callers that mutate Domains.
func (rad *Radius) Rescore() { rad.rescore() }

// Radius computes the blast radius of a candidate diff: the inverse of the
// provenance map. An artifact is reached when a changed file is in its
// import closure, or a changed external input is in its origin set.
func (r *Repo) Radius(changed []string) *Radius {
	rad := &Radius{Changed: append([]string{}, changed...)}
	sort.Strings(rad.Changed)

	changedFiles := make(map[string]bool)
	changedExts := make(map[string]bool) // Origin.key()-shaped: kind \x00 name
	for _, c := range changed {
		if kind, name, ok := extToken(c); ok {
			changedExts[string(kind)+"\x00"+name] = true
			continue
		}
		changedFiles[c] = true
		// A file under sitevars/ or gatekeeper/ *is* that external input:
		// editing it also re-binds every consumer referencing the input by
		// name, wherever it lives.
		if kind, name := pathOrigin(c); kind != "" {
			changedExts[string(kind)+"\x00"+name] = true
		}
	}

	// Downstream artifacts: reach-set membership for file edits, origin-set
	// membership for external-input changes.
	for _, root := range r.Roots {
		s := r.sums[root]
		if s == nil {
			continue
		}
		hit := false
		for f := range changedFiles {
			if s.reach[f] {
				hit = true
				break
			}
		}
		if !hit && len(changedExts) > 0 {
			for f := range s.reach {
				fsum := r.sums[f]
				if fsum == nil {
					continue
				}
				for _, c := range fsum.consumers {
					if changedExts[string(c.Kind)+"\x00"+c.Name] {
						hit = true
						break
					}
				}
				if hit {
					break
				}
			}
		}
		if hit {
			rad.Artifacts = append(rad.Artifacts, root)
		}
	}
	sort.Strings(rad.Artifacts)

	// Consumer bindings: sites matching a changed external input anywhere
	// in the analyzed universe, plus sites physically in a changed file.
	seen := make(map[string]bool)
	paths := make([]string, 0, len(r.sums))
	for p := range r.sums {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		for _, c := range r.sums[p].consumers {
			match := changedExts[string(c.Kind)+"\x00"+c.Name] || changedFiles[c.Site.File]
			if !match {
				continue
			}
			k := c.Site.String() + "\x00" + string(c.Kind) + "\x00" + c.Name
			if !seen[k] {
				seen[k] = true
				rad.Consumers = append(rad.Consumers, c)
			}
		}
	}
	sort.Slice(rad.Consumers, func(i, j int) bool {
		a, b := rad.Consumers[i], rad.Consumers[j]
		if a.Site.File != b.Site.File {
			return a.Site.File < b.Site.File
		}
		if a.Site.Line != b.Site.Line {
			return a.Site.Line < b.Site.Line
		}
		if a.Site.Col != b.Site.Col {
			return a.Site.Col < b.Site.Col
		}
		return a.Name < b.Name
	})

	rad.rescore()
	r.ix.observeRadius(len(rad.Artifacts))
	return rad
}

// extToken parses "sitevar:name" / "gatekeeper:name" / "env:NAME" changed
// entries.
func extToken(s string) (OriginKind, string, bool) {
	prefix, name, ok := strings.Cut(s, ":")
	if !ok || name == "" {
		return "", "", false
	}
	if kind, ok := extKinds[prefix]; ok {
		return kind, name, true
	}
	return "", "", false
}
