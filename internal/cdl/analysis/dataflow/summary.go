package dataflow

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"

	"configerator/internal/cdl"
)

// declSite is one assignment reaching a top-level name: a let/def/assign
// statement, recorded with the value's literal fingerprint (when the value
// is a pure literal tree), the names it references, and the external
// origins (sitevar/gatekeeper/env sites) it reads.
type declSite struct {
	path     string
	pos, end cdl.Pos
	// fp is the canonical fingerprint of a pure-literal value; "" means
	// the value is opaque (computed), so two opaque sites are assumed to
	// conflict.
	fp   string
	refs []string
	exts []Origin
}

// binding collects every site assigning one top-level name across a
// module's import closure, in execution (merge) order: the last site wins,
// mirroring the evaluator's last-bind-wins import semantics.
type binding struct {
	sites []declSite
}

func (b *binding) win() *declSite { return &b.sites[len(b.sites)-1] }

// exportRec is one export statement execution in the closure, in order;
// the last one wins.
type exportRec struct {
	path     string
	pos, end cdl.Pos
	fp       string
	refs     []string
	exts     []Origin
	// fields maps exported field name -> provenance slice when the export
	// value is a struct/map literal; nil otherwise.
	fields map[string]fieldRec
}

type fieldRec struct {
	pos, end cdl.Pos
	fp       string
	refs     []string
	exts     []Origin
}

// summary is the memoized per-module digest the three passes query. It
// describes the module's *merged* view: its own statements plus everything
// imported, exactly the environment the evaluator would build. Summaries
// are immutable once published (shared across Analyze calls), so merging
// copies instead of mutating.
type summary struct {
	path string
	// bindings: top-level name -> all assignment sites in the closure.
	bindings map[string]*binding
	// exports: every export execution in the closure, execution order.
	exports []exportRec
	// consumers: external-input reference sites in THIS module only
	// (closure consumers are gathered through reach at query time).
	consumers []ConsumerSite
	// reach: every file in the import closure, including the module itself.
	reach map[string]bool
	// err records a read/parse failure (the summary is then a stub).
	err string
}

// keyInfo caches one module's Merkle closure hash for a builder session.
type keyInfo struct {
	key       string
	cacheable bool
}

// builder runs one Analyze call: it resolves closure keys, consults the
// index memo, and composes summaries bottom-up with the same
// publish-partial-before-recurse cycle tolerance as the analysis fact
// builder.
type builder struct {
	ix      *Index
	fs      cdl.FileSystem
	sums    map[string]*summary // per-session: path -> summary
	keys    map[string]*keyInfo // per-session: path -> closure key
	onStack map[string]bool
}

// key computes the Merkle hash of path's import closure: the file's own
// bytes combined with each direct import's key, in import order. Closures
// containing a cycle (or an unreadable/unscannable file) are uncacheable:
// they are rebuilt per session and never stored in the memo.
func (b *builder) key(path string) *keyInfo {
	if ki, ok := b.keys[path]; ok {
		return ki
	}
	if b.onStack[path] {
		// Import cycle: every participant is uncacheable this session.
		return &keyInfo{cacheable: false}
	}
	ki := &keyInfo{}
	b.keys[path] = ki
	src, err := b.fs.ReadFile(path)
	if err != nil {
		return ki
	}
	imports, err := cdl.ScanImports(path, src)
	if err != nil {
		return ki
	}
	h := sha256.New()
	h.Write([]byte(path))
	h.Write([]byte{0})
	h.Write(src)
	b.onStack[path] = true
	ok := true
	for _, imp := range imports {
		dep := b.key(imp)
		if !dep.cacheable {
			ok = false
			break
		}
		h.Write([]byte{0})
		h.Write([]byte(dep.key))
	}
	delete(b.onStack, path)
	if ok {
		ki.key = hex.EncodeToString(h.Sum(nil))
		ki.cacheable = true
	}
	return ki
}

// summarize returns path's summary, from the session cache, the
// content-keyed memo, or a fresh build.
func (b *builder) summarize(path string) *summary {
	if s, ok := b.sums[path]; ok {
		return s
	}
	if b.onStack[path] {
		// Cycle: hand the importer an empty stub (the import-cycle lint
		// analyzer owns reporting); do not publish it.
		return &summary{path: path, bindings: map[string]*binding{},
			reach: map[string]bool{path: true}}
	}
	ki := b.key(path)
	if ki.cacheable {
		if s := b.ix.lookup(ki.key); s != nil {
			b.ix.count(counterMemo)
			b.sums[path] = s
			b.collectReach(s)
			return s
		}
	}
	b.onStack[path] = true
	s := b.build(path)
	delete(b.onStack, path)
	if ki.cacheable && s.err == "" {
		b.ix.store(ki.key, s)
	}
	b.ix.count(counterRecompute)
	b.sums[path] = s
	return s
}

// collectReach makes sure every file under a memo-hit summary still has a
// session entry, so Repo queries (consumer gathering, determinacy
// ordering) can resolve any file in any root's closure. Files already
// summarized are kept; missing ones are summarized now (themselves memo
// hits unless edited).
func (b *builder) collectReach(s *summary) {
	for f := range s.reach {
		if _, ok := b.sums[f]; !ok && f != s.path {
			b.summarize(f)
		}
	}
}

// build composes a fresh summary: parse the module, then fold statements
// in execution order, merging each import's (recursively summarized)
// closure at its import site.
func (b *builder) build(path string) *summary {
	s := &summary{
		path:     path,
		bindings: make(map[string]*binding),
		reach:    map[string]bool{path: true},
	}
	src, err := b.fs.ReadFile(path)
	if err != nil {
		s.err = err.Error()
		return s
	}
	mod, err := b.parse(path, src)
	if err != nil {
		s.err = err.Error()
		return s
	}

	// A module under sitevars/ or gatekeeper/ *is* an external input: every
	// binding it declares carries that input's origin, so importers see
	// "sitevar ratelimit" and not just "module sitevars/ratelimit.cinc".
	var selfExt []Origin
	if kind, name := pathOrigin(path); kind != "" {
		selfExt = []Origin{{Kind: kind, Name: name,
			Site: siteRef(cdl.Pos{File: path, Line: 1, Col: 1})}}
	}

	// seenSites/seenExports dedup diamond imports: a module reached through
	// two paths executes once, so its sites merge once.
	seenSites := make(map[string]bool)
	seenExports := make(map[string]bool)

	addSite := func(name string, site declSite) {
		k := site.path + "\x00" + site.pos.String()
		if seenSites[name+"\x00"+k] {
			return
		}
		seenSites[name+"\x00"+k] = true
		bd := s.bindings[name]
		if bd == nil {
			bd = &binding{}
			s.bindings[name] = bd
		}
		bd.sites = append(bd.sites, site)
	}
	addExport := func(rec exportRec) {
		k := rec.path + "\x00" + rec.pos.String()
		if seenExports[k] {
			return
		}
		seenExports[k] = true
		s.exports = append(s.exports, rec)
	}

	// walk folds one statement block. condRefs/condExts carry the guard
	// context of enclosing if/for statements: a conditional assignment's
	// value also depends on whatever the condition reads.
	var walk func(stmts []cdl.Stmt, topLevel bool, condRefs []string, condExts []Origin)
	walk = func(stmts []cdl.Stmt, topLevel bool, condRefs []string, condExts []Origin) {
		for _, st := range stmts {
			switch t := st.(type) {
			case *cdl.ImportStmt:
				dep := b.summarize(t.Path)
				for f := range dep.reach {
					s.reach[f] = true
				}
				// Merge the import's bindings: its sites append after any
				// existing ones, so the import wins — last-bind-wins.
				names := make([]string, 0, len(dep.bindings))
				for name := range dep.bindings {
					names = append(names, name)
				}
				sort.Strings(names)
				for _, name := range names {
					for _, site := range dep.bindings[name].sites {
						addSite(name, site)
					}
				}
				for _, rec := range dep.exports {
					addExport(rec)
				}
			case *cdl.LetStmt:
				if !topLevel {
					// A nested let is block-scoped: it cannot bind a
					// top-level name.
					continue
				}
				refs, exts := exprFacts(t.Value)
				addSite(t.Name, declSite{
					path: path, pos: t.NamePos, end: t.NameEnd,
					fp:   litFingerprint(t.Value),
					refs: append(refs, condRefs...),
					exts: append(append(exts, condExts...), selfExt...),
				})
			case *cdl.AssignStmt:
				// Assignment rebinds an enclosing name; conservatively
				// treat any assignment as a site for the top-level name.
				refs, exts := exprFacts(t.Value)
				fp := litFingerprint(t.Value)
				if len(condRefs) > 0 {
					fp = "" // conditional: value depends on the guard
				}
				addSite(t.Name, declSite{
					path: path, pos: cdl.StmtPos(st), end: cdl.StmtEnd(st),
					fp:   fp,
					refs: append(refs, condRefs...),
					exts: append(append(exts, condExts...), selfExt...),
				})
			case *cdl.DefStmt:
				if !topLevel {
					continue
				}
				refs, exts := bodyFacts(t.Body)
				addSite(t.Name, declSite{
					path: path, pos: t.NamePos, end: t.NameEnd,
					refs: append(refs, condRefs...),
					exts: append(append(exts, condExts...), selfExt...),
				})
			case *cdl.ExportStmt:
				refs, exts := exprFacts(t.Value)
				fp := litFingerprint(t.Value)
				if len(condRefs) > 0 {
					fp = ""
				}
				rec := exportRec{
					path: path, pos: cdl.StmtPos(st), end: cdl.StmtEnd(st),
					fp:     fp,
					refs:   append(refs, condRefs...),
					exts:   append(append(exts, condExts...), selfExt...),
					fields: exportFields(t.Value, condRefs, condExts, selfExt),
				}
				addExport(rec)
			case *cdl.IfStmt:
				refs, exts := exprFacts(t.Cond)
				cr := append(append([]string{}, condRefs...), refs...)
				ce := append(append([]Origin{}, condExts...), exts...)
				walk(t.Then, false, cr, ce)
				walk(t.Else, false, cr, ce)
			case *cdl.ForStmt:
				refs, exts := exprFacts(t.Seq)
				cr := append(append([]string{}, condRefs...), refs...)
				ce := append(append([]Origin{}, condExts...), exts...)
				walk(t.Body, false, cr, ce)
			}
			// Validators and asserts can fail a compile but cannot alter a
			// value; defs' bodies are folded at the def site.
		}
	}
	walk(mod.Stmts, true, nil, nil)

	// Consumer sites: every external-input reference in this module.
	collectExts(mod, func(o Origin) {
		s.consumers = append(s.consumers, ConsumerSite{Kind: o.Kind, Name: o.Name, Site: o.Site})
	})
	sort.Slice(s.consumers, func(i, j int) bool {
		a, c := s.consumers[i], s.consumers[j]
		if a.Site.Line != c.Site.Line {
			return a.Site.Line < c.Site.Line
		}
		if a.Site.Col != c.Site.Col {
			return a.Site.Col < c.Site.Col
		}
		return a.Name < c.Name
	})
	return s
}

func (b *builder) parse(path string, src []byte) (*cdl.Module, error) {
	if b.ix.engine != nil {
		return b.ix.engine.ParseCached(path, src)
	}
	return cdl.Parse(path, string(src))
}

// exportFields maps an exported struct/map literal's fields to their
// provenance slices, so `configlint why <artifact> <field>` can answer at
// field granularity. Dynamic keys fold into the "<dynamic>" field.
func exportFields(v cdl.Expr, condRefs []string, condExts, selfExt []Origin) map[string]fieldRec {
	mk := func(name string, val cdl.Expr) (string, fieldRec) {
		refs, exts := exprFacts(val)
		return name, fieldRec{
			pos: cdl.ExprPos(val), end: cdl.ExprEnd(val),
			fp:   litFingerprint(val),
			refs: append(refs, condRefs...),
			exts: append(append(exts, condExts...), selfExt...),
		}
	}
	switch e := v.(type) {
	case *cdl.MapExpr:
		out := make(map[string]fieldRec, len(e.Keys))
		for i, k := range e.Keys {
			name := "<dynamic>"
			if lit, ok := k.(*cdl.LitExpr); ok {
				if s, err := cdl.MarshalJSON(lit.Val); err == nil {
					name = strings.Trim(s, `"`)
				}
			}
			n, rec := mk(name, e.Values[i])
			out[n] = rec
		}
		return out
	case *cdl.StructExpr:
		out := make(map[string]fieldRec, len(e.Names))
		for i, name := range e.Names {
			n, rec := mk(name, e.Values[i])
			out[n] = rec
		}
		return out
	}
	return nil
}

// ---- expression facts ----

// exprFacts returns every identifier referenced in the expression and
// every external-input call site in it. References are collected without
// local-scope tracking: a def parameter shadowing a top-level name
// over-approximates, which is the safe direction for provenance.
func exprFacts(x cdl.Expr) (refs []string, exts []Origin) {
	seen := make(map[string]bool)
	walkExpr(x, func(e cdl.Expr) {
		switch t := e.(type) {
		case *cdl.IdentExpr:
			if !seen[t.Name] {
				seen[t.Name] = true
				refs = append(refs, t.Name)
			}
		case *cdl.CallExpr:
			if o, ok := extCall(t); ok {
				exts = append(exts, o)
			}
		}
	})
	return refs, exts
}

// bodyFacts is exprFacts over a statement block (a def body).
func bodyFacts(stmts []cdl.Stmt) (refs []string, exts []Origin) {
	seen := make(map[string]bool)
	walkStmts(stmts, func(e cdl.Expr) {
		switch t := e.(type) {
		case *cdl.IdentExpr:
			if !seen[t.Name] {
				seen[t.Name] = true
				refs = append(refs, t.Name)
			}
		case *cdl.CallExpr:
			if o, ok := extCall(t); ok {
				exts = append(exts, o)
			}
		}
	})
	return refs, exts
}

// extCall recognizes sitevar("x") / gatekeeper("x") / env("X") calls.
func extCall(c *cdl.CallExpr) (Origin, bool) {
	fn, ok := c.Fn.(*cdl.IdentExpr)
	if !ok {
		return Origin{}, false
	}
	kind, ok := extKinds[fn.Name]
	if !ok || len(c.Args) == 0 {
		return Origin{}, false
	}
	name := "<dynamic>"
	if lit, ok := c.Args[0].(*cdl.LitExpr); ok {
		if s, err := cdl.MarshalJSON(lit.Val); err == nil && strings.HasPrefix(s, `"`) {
			name = strings.Trim(s, `"`)
		}
	}
	return Origin{Kind: kind, Name: name, Site: siteRef(cdl.ExprPos(c))}, true
}

// collectExts reports every external-input site in a module: calls
// anywhere in it, plus sitevars// gatekeeper/ imports.
func collectExts(mod *cdl.Module, fn func(Origin)) {
	for _, imp := range mod.Imports {
		if kind, name := pathOrigin(imp.Path); kind != "" {
			fn(Origin{Kind: kind, Name: name, Site: siteRef(imp.PathPos)})
		}
	}
	walkStmts(mod.Stmts, func(e cdl.Expr) {
		if c, ok := e.(*cdl.CallExpr); ok {
			if o, ok := extCall(c); ok {
				fn(o)
			}
		}
	})
}

// litFingerprint canonicalizes a pure-literal expression tree; "" means
// the value is computed (opaque). Two sites with equal non-empty
// fingerprints provably assign the same value, so they never conflict.
func litFingerprint(x cdl.Expr) string {
	switch e := x.(type) {
	case *cdl.LitExpr:
		s, err := cdl.MarshalJSON(e.Val)
		if err != nil {
			return ""
		}
		return s
	case *cdl.ListExpr:
		parts := make([]string, 0, len(e.Elems))
		for _, el := range e.Elems {
			fp := litFingerprint(el)
			if fp == "" {
				return ""
			}
			parts = append(parts, fp)
		}
		return "[" + strings.Join(parts, ",") + "]"
	case *cdl.MapExpr:
		parts := make([]string, 0, len(e.Keys))
		for i := range e.Keys {
			kf, vf := litFingerprint(e.Keys[i]), litFingerprint(e.Values[i])
			if kf == "" || vf == "" {
				return ""
			}
			parts = append(parts, kf+":"+vf)
		}
		sort.Strings(parts)
		return "{" + strings.Join(parts, ",") + "}"
	case *cdl.UnaryExpr:
		fp := litFingerprint(e.X)
		if fp == "" {
			return ""
		}
		return e.Op + fp
	}
	return ""
}

// ---- AST walkers (the analysis package's walkers are unexported) ----

func walkStmts(stmts []cdl.Stmt, fn func(cdl.Expr)) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *cdl.LetStmt:
			walkExpr(s.Value, fn)
		case *cdl.AssignStmt:
			walkExpr(s.Value, fn)
		case *cdl.DefStmt:
			walkStmts(s.Body, fn)
		case *cdl.ValidatorStmt:
			walkStmts(s.Body, fn)
		case *cdl.ExportStmt:
			walkExpr(s.Value, fn)
		case *cdl.AssertStmt:
			walkExpr(s.Cond, fn)
			walkExpr(s.Message, fn)
		case *cdl.IfStmt:
			walkExpr(s.Cond, fn)
			walkStmts(s.Then, fn)
			walkStmts(s.Else, fn)
		case *cdl.ForStmt:
			walkExpr(s.Seq, fn)
			walkStmts(s.Body, fn)
		case *cdl.ReturnStmt:
			walkExpr(s.Value, fn)
		case *cdl.ExprStmt:
			walkExpr(s.X, fn)
		}
	}
}

func walkExpr(x cdl.Expr, fn func(cdl.Expr)) {
	if x == nil {
		return
	}
	fn(x)
	switch e := x.(type) {
	case *cdl.ListExpr:
		for _, el := range e.Elems {
			walkExpr(el, fn)
		}
	case *cdl.MapExpr:
		for i := range e.Keys {
			walkExpr(e.Keys[i], fn)
			walkExpr(e.Values[i], fn)
		}
	case *cdl.StructExpr:
		for _, v := range e.Values {
			walkExpr(v, fn)
		}
	case *cdl.UpdateExpr:
		walkExpr(e.Base, fn)
		for _, v := range e.Values {
			walkExpr(v, fn)
		}
	case *cdl.FieldExpr:
		walkExpr(e.Base, fn)
	case *cdl.IndexExpr:
		walkExpr(e.Base, fn)
		walkExpr(e.Index, fn)
	case *cdl.CallExpr:
		walkExpr(e.Fn, fn)
		for _, a := range e.Args {
			walkExpr(a, fn)
		}
	case *cdl.UnaryExpr:
		walkExpr(e.X, fn)
	case *cdl.BinaryExpr:
		walkExpr(e.X, fn)
		walkExpr(e.Y, fn)
	case *cdl.CondExpr:
		walkExpr(e.Cond, fn)
		walkExpr(e.A, fn)
		walkExpr(e.B, fn)
	}
}
