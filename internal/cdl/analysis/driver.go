package analysis

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"configerator/internal/cdl"
)

// Driver loads the transitive import closure of a set of roots and runs a
// suite of analyzers over every module in it, in parallel.
//
// Each module is analyzed exactly once per Run, no matter how many roots
// reach it — linting the 50 dependents of a shared .cinc analyzes (and
// parses) the .cinc once, not 50 times. When an Engine is attached, the
// driver parses through the engine's content-hash parse cache, so a lint
// pass immediately before or after a compile of the same tree re-parses
// nothing at all.
type Driver struct {
	// Engine, when non-nil, supplies the shared content-hash parse cache.
	Engine *cdl.Engine
	// FS resolves source paths (repository-relative, like the compiler).
	FS cdl.FileSystem
	// Analyzers is the suite to run; nil means all registered analyzers.
	Analyzers []*Analyzer
	// DeprecatedSitevars maps deprecated sitevar names to replacement
	// notes for the deprecated-sitevar analyzer.
	DeprecatedSitevars map[string]string
	// Workers bounds load and analysis parallelism (default GOMAXPROCS).
	Workers int
}

// NewDriver returns a driver over fs reusing eng's parse cache (eng may be
// nil) with the full registered analyzer suite.
func NewDriver(eng *cdl.Engine, fs cdl.FileSystem) *Driver {
	return &Driver{Engine: eng, FS: fs}
}

// loadEntry is one module slot during the concurrent closure walk.
type loadEntry struct {
	mod  *cdl.Module
	err  error
	done chan struct{}
}

// Run lints the roots and every module reachable from them. The returned
// diagnostics are sorted by position; unreadable or unparsable files
// surface as Error diagnostics (analyzer "parse"), not as a Run error —
// a Run error is reserved for driver misconfiguration.
func (d *Driver) Run(roots []string) ([]Diagnostic, error) {
	if d.FS == nil {
		return nil, fmt.Errorf("analysis: driver has no filesystem")
	}
	workers := d.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	analyzers := d.Analyzers
	if analyzers == nil {
		analyzers = Analyzers()
	}

	// ---- Phase 1: load the transitive closure, concurrently. ----
	var (
		mu      sync.Mutex
		entries = make(map[string]*loadEntry)
		wg      sync.WaitGroup
		sem     = make(chan struct{}, workers)
	)
	var load func(path string)
	load = func(path string) {
		mu.Lock()
		if _, ok := entries[path]; ok {
			mu.Unlock()
			return
		}
		ent := &loadEntry{done: make(chan struct{})}
		entries[path] = ent
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(ent.done)
			sem <- struct{}{}
			src, err := d.FS.ReadFile(path)
			if err != nil {
				<-sem
				ent.err = err
				return
			}
			var mod *cdl.Module
			if d.Engine != nil {
				mod, err = d.Engine.ParseCached(path, src)
			} else {
				mod, err = cdl.Parse(path, string(src))
			}
			<-sem
			if err != nil {
				ent.err = err
				return
			}
			ent.mod = mod
			for _, imp := range mod.Imports {
				load(imp.Path)
			}
		}()
	}
	rootSet := make(map[string]bool, len(roots))
	for _, r := range roots {
		rootSet[r] = true
		load(r)
	}
	wg.Wait()

	// ---- Phase 2: convert load failures to diagnostics; build facts. ----
	var diags []Diagnostic
	mods := make(map[string]*cdl.Module)
	for path, ent := range entries {
		if ent.mod != nil {
			mods[path] = ent.mod
		}
	}
	// A file with a positioned parse error reports at that position; an
	// unreadable file reports at every site that demanded it (import
	// statements, or line 1 of the root itself).
	reported := make(map[string]bool)
	for path, ent := range entries {
		if ent.err == nil {
			continue
		}
		if cerr, ok := ent.err.(*cdl.Error); ok {
			diags = append(diags, Diagnostic{
				Pos: cerr.Pos, End: cerr.Pos,
				Severity: Error, Analyzer: "parse", Message: cerr.Msg,
			})
			reported[path] = true
			continue
		}
		if rootSet[path] {
			p := cdl.Pos{File: path, Line: 1, Col: 1}
			diags = append(diags, Diagnostic{
				Pos: p, End: p,
				Severity: Error, Analyzer: "parse",
				Message: fmt.Sprintf("cannot load %s: %v", path, ent.err),
			})
			reported[path] = true
		}
	}
	for _, mod := range mods {
		for _, imp := range mod.Imports {
			ent := entries[imp.Path]
			if ent == nil || ent.err == nil || reported[imp.Path] {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos: imp.PathPos, End: imp.PathEnd,
				Severity: Error, Analyzer: "parse",
				Message: fmt.Sprintf("cannot load import %q: %v", imp.Path, ent.err),
			})
		}
	}

	builder := newFactBuilder(mods)
	uni := &Universe{
		Modules:   make(map[string]*ModuleFacts, len(mods)),
		ASTs:      mods,
		Importers: make(map[string][]string),
	}
	for r := range rootSet {
		uni.Roots = append(uni.Roots, r)
	}
	sort.Strings(uni.Roots)
	paths := make([]string, 0, len(mods))
	for path := range mods {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		uni.Modules[path] = builder.facts(path)
		for _, imp := range mods[path].Imports {
			uni.Importers[imp.Path] = append(uni.Importers[imp.Path], path)
		}
	}
	for _, importers := range uni.Importers {
		sort.Strings(importers)
	}

	// ---- Phase 3: run every analyzer over every module, in parallel. ----
	var dmu sync.Mutex
	work := make(chan string)
	var awg sync.WaitGroup
	for i := 0; i < workers; i++ {
		awg.Add(1)
		go func() {
			defer awg.Done()
			for path := range work {
				for _, a := range analyzers {
					pass := &Pass{
						Analyzer:           a,
						Path:               path,
						Module:             mods[path],
						Facts:              uni.Modules[path],
						Universe:           uni,
						DeprecatedSitevars: d.DeprecatedSitevars,
						mu:                 &dmu,
						diags:              &diags,
					}
					a.Run(pass)
				}
			}
		}()
	}
	for _, path := range paths {
		work <- path
	}
	close(work)
	awg.Wait()

	SortDiagnostics(diags)
	return diags, nil
}
