package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"configerator/internal/cdl"
)

var update = flag.Bool("update", false, "rewrite golden files")

// dirFS serves repository-relative paths from a directory root.
type dirFS struct{ root string }

func (d dirFS) ReadFile(path string) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.root, filepath.FromSlash(path)))
}

// renderDiags renders diagnostics one per line in golden-file form.
func renderDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		if d.SuggestedFix != "" {
			b.WriteString(" (fix: " + d.SuggestedFix + ")")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestGoldenCorpus lints each bad-case directory under testdata/src and
// compares every diagnostic — position, severity, message, suggested fix —
// against the case's golden file, exactly.
func TestGoldenCorpus(t *testing.T) {
	cases := []string{
		"unused-import",
		"undefined-reference",
		"shadowed-export",
		"schema-conformance",
		"validator-coverage",
		"import-cycle",
		"dead-export",
		"impure-construct",
		"deprecated-sitevar",
	}
	fs := dirFS{root: filepath.Join("testdata", "src")}
	for _, name := range cases {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			var roots []string
			for _, e := range ents {
				if strings.HasSuffix(e.Name(), ".cconf") || strings.HasSuffix(e.Name(), ".cinc") {
					roots = append(roots, name+"/"+e.Name())
				}
			}
			sort.Strings(roots)
			d := NewDriver(nil, fs)
			d.DeprecatedSitevars = map[string]string{"old_flag": "use new_flag instead"}
			diags, err := d.Run(roots)
			if err != nil {
				t.Fatal(err)
			}
			// Every case must produce at least one diagnostic from the
			// analyzer it names.
			found := false
			for _, dg := range diags {
				if dg.Analyzer == name {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("no %s diagnostic reported; got:\n%s", name, renderDiags(diags))
			}
			got := renderDiags(diags)
			goldenPath := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n-- got --\n%s-- want --\n%s", got, want)
			}
		})
	}
}

// TestExamplesLintClean asserts the shipped example corpus lints clean —
// the same invariant `make lint` enforces in CI.
func TestExamplesLintClean(t *testing.T) {
	root := filepath.Join("..", "..", "..", "examples", "configs")
	var roots []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		if strings.HasSuffix(path, ".cconf") || strings.HasSuffix(path, ".cinc") {
			rel, _ := filepath.Rel(root, path)
			roots = append(roots, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) == 0 {
		t.Fatal("no example configs found")
	}
	diags, err := NewDriver(cdl.NewEngine(), dirFS{root: root}).Run(roots)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("examples should lint clean, got:\n%s", renderDiags(diags))
	}
}

// fanoutFS builds a shared-.cinc fan-out: n .cconf dependents all
// importing one library (mirrors the experiments package's topology).
func fanoutFS(n int) (cdl.MapFS, []string) {
	fs := cdl.MapFS{
		"lib/shared.cinc": `
			schema Job {
				1: string name;
				2: i32 priority = 1;
			}
			validator Job(c) { assert(c.priority >= 0, "priority"); }
			def mk(name, pri) {
				return Job{name: name, priority: pri};
			}
			export mk("shared-default", 1);
		`,
	}
	var roots []string
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("svc/app%03d.cconf", i)
		fs[p] = fmt.Sprintf("import \"lib/shared.cinc\";\nexport mk(\"svc-%03d\", %d);\n", i, i%10)
		roots = append(roots, p)
	}
	return fs, roots
}

// TestDriverReusesEngineParseCache is the acceptance check for the lint
// driver's cache integration: linting 50 dependents of one shared .cinc
// parses the .cinc exactly once (51 total parses for 51 files), and a
// second lint run over the unchanged tree parses nothing at all.
func TestDriverReusesEngineParseCache(t *testing.T) {
	fs, roots := fanoutFS(50)
	eng := cdl.NewEngine()
	d := NewDriver(eng, fs)

	diags, err := d.Run(roots)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("fan-out should lint clean, got:\n%s", renderDiags(diags))
	}
	c := eng.Counters()
	if miss := c.Get("parse.miss"); miss != 51 {
		t.Errorf("first lint: parse.miss = %d, want 51 (shared .cinc parsed once)", miss)
	}
	if hit := c.Get("parse.hit"); hit != 0 {
		t.Errorf("first lint: parse.hit = %d, want 0", hit)
	}

	if _, err := d.Run(roots); err != nil {
		t.Fatal(err)
	}
	if miss := c.Get("parse.miss"); miss != 51 {
		t.Errorf("second lint: parse.miss = %d, want 51 (no re-parse)", miss)
	}
	if hit := c.Get("parse.hit"); hit != 51 {
		t.Errorf("second lint: parse.hit = %d, want 51", hit)
	}

	// The same engine then compiles the tree: every parse is served from
	// the cache the lint pass populated.
	if _, err := eng.CompileAll(fs, roots); err != nil {
		t.Fatal(err)
	}
	if miss := c.Get("parse.miss"); miss != 51 {
		t.Errorf("compile after lint: parse.miss = %d, want 51", miss)
	}
}

// TestDriverReportsLoadFailures exercises the parse/read error paths:
// a root that does not exist, and an import of a file with a syntax error.
func TestDriverReportsLoadFailures(t *testing.T) {
	fs := cdl.MapFS{
		"ok.cconf":     "import \"broken.cinc\";\nexport {a: X};\n",
		"broken.cinc":  "let X = ;\n",
		"orphan.cconf": "export {b: 2};\n",
	}
	diags, err := NewDriver(nil, fs).Run([]string{"ok.cconf", "orphan.cconf", "missing.cconf"})
	if err != nil {
		t.Fatal(err)
	}
	var parseMsgs []string
	for _, d := range diags {
		if d.Analyzer == "parse" {
			parseMsgs = append(parseMsgs, d.String())
		}
		if d.Severity != Error && d.Analyzer == "parse" {
			t.Errorf("parse diagnostics must be errors: %s", d)
		}
	}
	if len(parseMsgs) != 2 {
		t.Fatalf("want 2 parse diagnostics (broken.cinc syntax, missing root), got %v", parseMsgs)
	}
	if !HasErrors(diags) {
		t.Error("load failures must gate (HasErrors)")
	}
}

// TestSeverityHelpers covers Filter/HasErrors/ParseSeverity.
func TestSeverityHelpers(t *testing.T) {
	diags := []Diagnostic{
		{Severity: Info, Message: "i"},
		{Severity: Warn, Message: "w"},
		{Severity: Error, Message: "e"},
	}
	if n := len(Filter(diags, Warn)); n != 2 {
		t.Errorf("Filter(Warn) = %d diags, want 2", n)
	}
	if !HasErrors(diags) {
		t.Error("HasErrors = false, want true")
	}
	if HasErrors(diags[:2]) {
		t.Error("HasErrors without errors = true, want false")
	}
	for in, want := range map[string]Severity{"error": Error, "warn": Warn, "warning": Warn, "info": Info} {
		got, err := ParseSeverity(in)
		if err != nil || got != want {
			t.Errorf("ParseSeverity(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSeverity("bogus"); err == nil {
		t.Error("ParseSeverity(bogus) should fail")
	}
	if s := Summary(diags); s != "1 errors, 1 warnings, 1 infos" {
		t.Errorf("Summary = %q", s)
	}
}
