package analysis

import (
	"sort"
	"sync"

	"configerator/internal/cdl"
)

// ModuleFacts is what the driver precomputes about one module before any
// analyzer runs: its own top-level bindings, everything each import makes
// visible (transitively — importing a module injects the dep's entire
// module environment, including names the dep itself imported), the
// schemas and validators in the closure, and the per-import breakdown the
// unused-import analyzer needs.
type ModuleFacts struct {
	// Path is the module's source path; IsRoot reports a .cconf (an
	// artifact-producing top-level config, as opposed to a .cinc library).
	Path   string
	IsRoot bool

	// Own maps each top-level let/def name to its declaration position.
	// Bindings inside if/for blocks are excluded: the evaluator executes
	// those in child scopes, so they never land in the module environment.
	Own map[string]cdl.Pos

	// Env maps every name visible at module top level (imports merged in
	// source order, then own bindings) to the path of the module that
	// declares it. Builtins are not included; see Builtins.
	Env map[string]string

	// Builtins is the global environment's name set.
	Builtins map[string]bool

	// Provides maps each direct import path to the names its environment
	// injects (name → declaring module path).
	Provides map[string]map[string]string

	// Schemas maps every schema name visible in the module's closure
	// (including its own) to the definition.
	Schemas map[string]*cdl.SchemaDef

	// SchemasFrom maps each direct import path to the schema names its
	// closure registers.
	SchemasFrom map[string]map[string]bool

	// Validated holds schema names that have a validator registered
	// anywhere in the closure (including this module).
	Validated map[string]bool

	// ValidatorFrom reports, per direct import path, whether that import's
	// closure registers any validator — a side effect that makes an import
	// load-bearing even when none of its names are referenced.
	ValidatorFrom map[string]bool

	// ExportFrom reports, per direct import path, whether that import's
	// closure executes an export statement. Under last-export-wins
	// semantics a dep's export can be the module's result, so such an
	// import is load-bearing for a module with no export of its own.
	ExportFrom map[string]bool

	// HasExport reports whether the module itself has an export statement.
	HasExport bool

	// Closure is every path reachable through imports, excluding self,
	// sorted.
	Closure []string
}

// Universe is the full set of modules the driver loaded, with reverse
// import edges for cross-module analyzers.
type Universe struct {
	// Modules maps path → facts for every successfully parsed module.
	Modules map[string]*ModuleFacts
	// ASTs maps path → parsed module.
	ASTs map[string]*cdl.Module
	// Importers maps path → sorted direct importer paths.
	Importers map[string][]string
	// Roots are the paths lint was invoked on (sorted).
	Roots []string
}

// closureInfo is the memoized per-module summary used to build facts.
type closureInfo struct {
	env          map[string]string         // name → declaring path
	schemas      map[string]*cdl.SchemaDef // name → def
	validated    map[string]bool           // schema name → has validator
	hasValidator bool
	hasExport    bool
	reach        map[string]bool // reachable paths, including self
}

// factBuilder computes closure summaries over a parsed universe. Cycles
// are tolerated: a module re-entered during its own computation
// contributes its partial summary, which is enough for lint (the
// import-cycle analyzer reports the cycle itself as an Error).
type factBuilder struct {
	mods     map[string]*cdl.Module
	memo     map[string]*closureInfo
	builtins map[string]bool
	mu       sync.Mutex
}

func newFactBuilder(mods map[string]*cdl.Module) *factBuilder {
	b := &factBuilder{
		mods:     mods,
		memo:     make(map[string]*closureInfo),
		builtins: make(map[string]bool),
	}
	for _, n := range cdl.BuiltinNames() {
		b.builtins[n] = true
	}
	return b
}

// info returns the closure summary for path, computing it on first use.
// Callers must hold no locks; info serializes internally (the DFS is
// cheap relative to parsing).
func (b *factBuilder) info(path string) *closureInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.infoLocked(path)
}

func (b *factBuilder) infoLocked(path string) *closureInfo {
	if ci, ok := b.memo[path]; ok {
		return ci
	}
	ci := &closureInfo{
		env:       make(map[string]string),
		schemas:   make(map[string]*cdl.SchemaDef),
		validated: make(map[string]bool),
		reach:     map[string]bool{path: true},
	}
	// Publish before recursing so import cycles see the partial summary
	// instead of recursing forever.
	b.memo[path] = ci
	mod := b.mods[path]
	if mod == nil {
		return ci
	}
	for _, sd := range mod.Schemas {
		ci.schemas[sd.Name] = sd
	}
	// Statements in source order: an import merges the dep's environment;
	// a later own binding (or later import) wins, matching the evaluator.
	for _, st := range mod.Stmts {
		switch s := st.(type) {
		case *cdl.ImportStmt:
			dep := b.infoLocked(s.Path)
			for name, origin := range dep.env {
				ci.env[name] = origin
			}
			for name, sd := range dep.schemas {
				ci.schemas[name] = sd
			}
			for name := range dep.validated {
				ci.validated[name] = true
			}
			ci.hasValidator = ci.hasValidator || dep.hasValidator
			ci.hasExport = ci.hasExport || dep.hasExport
			for p := range dep.reach {
				ci.reach[p] = true
			}
		case *cdl.LetStmt:
			ci.env[s.Name] = path
		case *cdl.DefStmt:
			ci.env[s.Name] = path
		case *cdl.ValidatorStmt:
			ci.validated[s.Schema] = true
			ci.hasValidator = true
		case *cdl.ExportStmt:
			ci.hasExport = true
		}
	}
	return ci
}

// facts assembles the ModuleFacts for one module.
func (b *factBuilder) facts(path string) *ModuleFacts {
	mod := b.mods[path]
	self := b.info(path)
	f := &ModuleFacts{
		Path:          path,
		IsRoot:        isRootPath(path),
		Own:           make(map[string]cdl.Pos),
		Env:           make(map[string]string, len(self.env)),
		Builtins:      b.builtins,
		Provides:      make(map[string]map[string]string),
		Schemas:       make(map[string]*cdl.SchemaDef, len(self.schemas)),
		SchemasFrom:   make(map[string]map[string]bool),
		Validated:     make(map[string]bool, len(self.validated)),
		ValidatorFrom: make(map[string]bool),
		ExportFrom:    make(map[string]bool),
		HasExport:     false,
	}
	for name, origin := range self.env {
		f.Env[name] = origin
	}
	for name, sd := range self.schemas {
		f.Schemas[name] = sd
	}
	for name := range self.validated {
		f.Validated[name] = true
	}
	for p := range self.reach {
		if p != path {
			f.Closure = append(f.Closure, p)
		}
	}
	sort.Strings(f.Closure)
	if mod == nil {
		return f
	}
	for _, st := range mod.Stmts {
		switch s := st.(type) {
		case *cdl.LetStmt:
			f.Own[s.Name] = s.NamePos
		case *cdl.DefStmt:
			f.Own[s.Name] = s.NamePos
		case *cdl.ExportStmt:
			f.HasExport = true
		case *cdl.ImportStmt:
			dep := b.info(s.Path)
			prov := make(map[string]string, len(dep.env))
			for name, origin := range dep.env {
				prov[name] = origin
			}
			f.Provides[s.Path] = prov
			schemas := make(map[string]bool, len(dep.schemas))
			for name := range dep.schemas {
				schemas[name] = true
			}
			f.SchemasFrom[s.Path] = schemas
			f.ValidatorFrom[s.Path] = dep.hasValidator
			f.ExportFrom[s.Path] = dep.hasExport
		}
	}
	return f
}

// Reaches reports whether from's import closure includes to.
func (b *factBuilder) reaches(from, to string) bool {
	return b.info(from).reach[to]
}

func isRootPath(path string) bool {
	return len(path) > 6 && path[len(path)-6:] == ".cconf"
}

// InClosure reports whether path is reachable through this module's
// imports (transitively, excluding the module itself).
func (f *ModuleFacts) InClosure(path string) bool {
	i := sort.SearchStrings(f.Closure, path)
	return i < len(f.Closure) && f.Closure[i] == path
}

// validatedWithBases reports whether schema name (or any schema it
// extends) has a validator in the module's closure. Validators are
// inherited along the extends chain, so a base-schema validator covers
// every derived schema.
func (f *ModuleFacts) validatedWithBases(name string) bool {
	seen := map[string]bool{}
	for name != "" && !seen[name] {
		seen[name] = true
		if f.Validated[name] {
			return true
		}
		sd := f.Schemas[name]
		if sd == nil {
			return false
		}
		name = sd.Extends
	}
	return false
}
