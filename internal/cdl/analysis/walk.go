package analysis

import (
	"sort"

	"configerator/internal/cdl"
)

// walkExprs visits every expression in a statement list, recursively,
// including def/validator bodies and nested blocks.
func walkExprs(stmts []cdl.Stmt, fn func(cdl.Expr)) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *cdl.LetStmt:
			walkExprTree(s.Value, fn)
		case *cdl.AssignStmt:
			walkExprTree(s.Value, fn)
		case *cdl.DefStmt:
			walkExprs(s.Body, fn)
		case *cdl.ValidatorStmt:
			walkExprs(s.Body, fn)
		case *cdl.ExportStmt:
			walkExprTree(s.Value, fn)
		case *cdl.AssertStmt:
			walkExprTree(s.Cond, fn)
			walkExprTree(s.Message, fn)
		case *cdl.IfStmt:
			walkExprTree(s.Cond, fn)
			walkExprs(s.Then, fn)
			walkExprs(s.Else, fn)
		case *cdl.ForStmt:
			walkExprTree(s.Seq, fn)
			walkExprs(s.Body, fn)
		case *cdl.ReturnStmt:
			walkExprTree(s.Value, fn)
		case *cdl.ExprStmt:
			walkExprTree(s.X, fn)
		}
	}
}

// walkExprTree visits e and every subexpression.
func walkExprTree(x cdl.Expr, fn func(cdl.Expr)) {
	if x == nil {
		return
	}
	fn(x)
	switch e := x.(type) {
	case *cdl.ListExpr:
		for _, el := range e.Elems {
			walkExprTree(el, fn)
		}
	case *cdl.MapExpr:
		for i := range e.Keys {
			walkExprTree(e.Keys[i], fn)
			walkExprTree(e.Values[i], fn)
		}
	case *cdl.StructExpr:
		for _, v := range e.Values {
			walkExprTree(v, fn)
		}
	case *cdl.UpdateExpr:
		walkExprTree(e.Base, fn)
		for _, v := range e.Values {
			walkExprTree(v, fn)
		}
	case *cdl.FieldExpr:
		walkExprTree(e.Base, fn)
	case *cdl.IndexExpr:
		walkExprTree(e.Base, fn)
		walkExprTree(e.Index, fn)
	case *cdl.CallExpr:
		walkExprTree(e.Fn, fn)
		for _, a := range e.Args {
			walkExprTree(a, fn)
		}
	case *cdl.UnaryExpr:
		walkExprTree(e.X, fn)
	case *cdl.BinaryExpr:
		walkExprTree(e.X, fn)
		walkExprTree(e.Y, fn)
	case *cdl.CondExpr:
		walkExprTree(e.Cond, fn)
		walkExprTree(e.A, fn)
		walkExprTree(e.B, fn)
	}
}

// scope is a chain of visible-name sets mirroring the evaluator's lexical
// environments during the static walk.
type scope struct {
	parent *scope
	names  map[string]bool
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, names: map[string]bool{}}
}

func (s *scope) has(name string) bool {
	for cur := s; cur != nil; cur = cur.parent {
		if cur.names[name] {
			return true
		}
	}
	return false
}

// all returns every visible name, sorted (for nearest-name suggestions).
func (s *scope) all() []string {
	set := map[string]bool{}
	for cur := s; cur != nil; cur = cur.parent {
		for n := range cur.names {
			set[n] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// scopeVisitor receives scope-aware walk events.
type scopeVisitor struct {
	// expr is called for every expression with the names visible there.
	expr func(x cdl.Expr, sc *scope)
	// assign is called for every assignment statement.
	assign func(s *cdl.AssignStmt, sc *scope)
}

// scopeWalk walks the module with the evaluator's scoping rules,
// flow-insensitively within each block: every `let` in a block is visible
// throughout that block (so a use-before-let is not flagged — the walk is
// conservative to keep Error-severity analyzers free of false positives).
func scopeWalk(mod *cdl.Module, base *scope, v scopeVisitor) {
	// Schema field defaults evaluate against the module environment.
	for _, sd := range mod.Schemas {
		for _, f := range sd.Fields {
			if f.Default != nil {
				visitExpr(f.Default, base, v)
			}
		}
	}
	walkScopedBlock(mod.Stmts, base, v)
}

// walkScopedBlock walks one statement block. A new scope is created with
// every name the block itself binds (let/def at this level), then nested
// constructs chain child scopes off it.
func walkScopedBlock(stmts []cdl.Stmt, parent *scope, v scopeVisitor) {
	sc := newScope(parent)
	for _, st := range stmts {
		switch s := st.(type) {
		case *cdl.LetStmt:
			sc.names[s.Name] = true
		case *cdl.DefStmt:
			sc.names[s.Name] = true
		}
	}
	for _, st := range stmts {
		switch s := st.(type) {
		case *cdl.LetStmt:
			visitExpr(s.Value, sc, v)
		case *cdl.AssignStmt:
			if v.assign != nil {
				v.assign(s, sc)
			}
			visitExpr(s.Value, sc, v)
		case *cdl.DefStmt:
			body := newScope(sc)
			for _, p := range s.Params {
				body.names[p] = true
			}
			walkScopedBlock(s.Body, body, v)
		case *cdl.ValidatorStmt:
			body := newScope(sc)
			body.names[s.Param] = true
			walkScopedBlock(s.Body, body, v)
		case *cdl.ExportStmt:
			visitExpr(s.Value, sc, v)
		case *cdl.AssertStmt:
			visitExpr(s.Cond, sc, v)
			visitExpr(s.Message, sc, v)
		case *cdl.IfStmt:
			visitExpr(s.Cond, sc, v)
			walkScopedBlock(s.Then, sc, v)
			walkScopedBlock(s.Else, sc, v)
		case *cdl.ForStmt:
			visitExpr(s.Seq, sc, v)
			body := newScope(sc)
			body.names[s.Var] = true
			walkScopedBlock(s.Body, body, v)
		case *cdl.ReturnStmt:
			visitExpr(s.Value, sc, v)
		case *cdl.ExprStmt:
			visitExpr(s.X, sc, v)
		}
	}
}

func visitExpr(x cdl.Expr, sc *scope, v scopeVisitor) {
	if x == nil {
		return
	}
	walkExprTree(x, func(e cdl.Expr) {
		if v.expr != nil {
			v.expr(e, sc)
		}
	})
}

// editDistance is the Levenshtein distance, used for nearest-name
// suggestions on undefined references.
func editDistance(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := 0; j <= len(b); j++ {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// nearest returns the candidate closest to name within edit distance 2, or
// "" when nothing is close.
func nearest(name string, candidates []string) string {
	best, bestDist := "", 3
	for _, c := range candidates {
		if c == name {
			continue
		}
		if d := editDistance(name, c); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

func minInt(nums ...int) int {
	m := nums[0]
	for _, n := range nums[1:] {
		if n < m {
			m = n
		}
	}
	return m
}
