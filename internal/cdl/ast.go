package cdl

// ---- Types (thrift-like schema type expressions) ----

// TypeExpr is a schema type: a scalar, list<T>, map<string,T>, or a named
// struct type.
type TypeExpr struct {
	Kind TypeKind
	Elem *TypeExpr // list element / map value
	Name string    // struct type name for KindStruct
	Pos  Pos
}

// TypeKind enumerates schema types.
type TypeKind int

// Schema type kinds.
const (
	KindBool TypeKind = iota
	KindI32
	KindI64
	KindDouble
	KindString
	KindList
	KindMap
	KindStruct
)

// String renders the type in thrift-like syntax.
func (t *TypeExpr) String() string {
	switch t.Kind {
	case KindBool:
		return "bool"
	case KindI32:
		return "i32"
	case KindI64:
		return "i64"
	case KindDouble:
		return "double"
	case KindString:
		return "string"
	case KindList:
		return "list<" + t.Elem.String() + ">"
	case KindMap:
		return "map<string, " + t.Elem.String() + ">"
	case KindStruct:
		return t.Name
	}
	return "?"
}

// FieldDef is one schema field: `2: i32 priority = 0;`.
type FieldDef struct {
	ID      int
	Type    *TypeExpr
	Name    string
	Default Expr // nil if none
	Pos     Pos
}

// SchemaDef is a thrift-like struct schema. Extends names an optional base
// schema whose fields (and validators) are inherited — the config
// inheritance the paper lists as future work (§8).
type SchemaDef struct {
	Name    string
	Extends string
	Fields  []*FieldDef
	Pos     Pos
}

// Field returns the field with the given name, or nil.
func (s *SchemaDef) Field(name string) *FieldDef {
	for _, f := range s.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// ---- Expressions ----

// Expr is any expression node.
type Expr interface{ exprPos() Pos }

// LitExpr is a literal: int, float, string, bool, or null.
type LitExpr struct {
	Pos Pos
	Val Value // pre-built runtime value
}

// IdentExpr references a binding.
type IdentExpr struct {
	Pos  Pos
	Name string
}

// ListExpr is a list literal.
type ListExpr struct {
	Pos   Pos
	Elems []Expr
}

// MapExpr is a map literal {key: value, ...}; keys are expressions that
// must evaluate to strings.
type MapExpr struct {
	Pos    Pos
	Keys   []Expr
	Values []Expr
}

// StructExpr constructs a struct: Job{name: "x"}.
type StructExpr struct {
	Pos    Pos
	Type   string
	Names  []string
	Values []Expr
}

// UpdateExpr is a struct-update: base{field: v} producing a modified copy.
type UpdateExpr struct {
	Pos    Pos
	Base   Expr
	Names  []string
	Values []Expr
}

// FieldExpr accesses a struct field or map key: e.name.
type FieldExpr struct {
	Pos  Pos
	Base Expr
	Name string
}

// IndexExpr indexes a list or map: e[i].
type IndexExpr struct {
	Pos   Pos
	Base  Expr
	Index Expr
}

// CallExpr invokes a function: f(a, b).
type CallExpr struct {
	Pos  Pos
	Fn   Expr
	Args []Expr
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Pos Pos
	Op  string
	X   Expr
}

// BinaryExpr is x op y.
type BinaryExpr struct {
	Pos  Pos
	Op   string
	X, Y Expr
}

// CondExpr is cond ? a : b.
type CondExpr struct {
	Pos        Pos
	Cond, A, B Expr
}

func (e *LitExpr) exprPos() Pos    { return e.Pos }
func (e *IdentExpr) exprPos() Pos  { return e.Pos }
func (e *ListExpr) exprPos() Pos   { return e.Pos }
func (e *MapExpr) exprPos() Pos    { return e.Pos }
func (e *StructExpr) exprPos() Pos { return e.Pos }
func (e *UpdateExpr) exprPos() Pos { return e.Pos }
func (e *FieldExpr) exprPos() Pos  { return e.Pos }
func (e *IndexExpr) exprPos() Pos  { return e.Pos }
func (e *CallExpr) exprPos() Pos   { return e.Pos }
func (e *UnaryExpr) exprPos() Pos  { return e.Pos }
func (e *BinaryExpr) exprPos() Pos { return e.Pos }
func (e *CondExpr) exprPos() Pos   { return e.Pos }

// ---- Statements ----

// Stmt is any statement node.
type Stmt interface{ stmtPos() Pos }

// ImportStmt pulls every top-level binding of another module into scope.
type ImportStmt struct {
	Pos  Pos
	Path string
}

// LetStmt binds (or rebinds) a name.
type LetStmt struct {
	Pos   Pos
	Name  string
	Value Expr
}

// AssignStmt rebinds an existing name (x = expr).
type AssignStmt struct {
	Pos   Pos
	Name  string
	Value Expr
}

// DefStmt defines a function.
type DefStmt struct {
	Pos    Pos
	Name   string
	Params []string
	Body   []Stmt
}

// ValidatorStmt registers an invariant checker for a schema type.
type ValidatorStmt struct {
	Pos    Pos
	Schema string
	Param  string
	Body   []Stmt
}

// ExportStmt marks the module's exported config value.
type ExportStmt struct {
	Pos   Pos
	Value Expr
}

// AssertStmt checks an invariant.
type AssertStmt struct {
	Pos     Pos
	Cond    Expr
	Message Expr // optional
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// ForStmt iterates a list: for x in expr { ... }.
type ForStmt struct {
	Pos  Pos
	Var  string
	Seq  Expr
	Body []Stmt
}

// ReturnStmt returns from a def.
type ReturnStmt struct {
	Pos   Pos
	Value Expr // nil means return null
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (s *ImportStmt) stmtPos() Pos    { return s.Pos }
func (s *LetStmt) stmtPos() Pos       { return s.Pos }
func (s *AssignStmt) stmtPos() Pos    { return s.Pos }
func (s *DefStmt) stmtPos() Pos       { return s.Pos }
func (s *ValidatorStmt) stmtPos() Pos { return s.Pos }
func (s *ExportStmt) stmtPos() Pos    { return s.Pos }
func (s *AssertStmt) stmtPos() Pos    { return s.Pos }
func (s *IfStmt) stmtPos() Pos        { return s.Pos }
func (s *ForStmt) stmtPos() Pos       { return s.Pos }
func (s *ReturnStmt) stmtPos() Pos    { return s.Pos }
func (s *ExprStmt) stmtPos() Pos      { return s.Pos }

// Module is a parsed source file.
type Module struct {
	Path    string
	Imports []*ImportStmt
	Schemas []*SchemaDef
	Stmts   []Stmt // everything in source order, including imports/schemas markers
}
