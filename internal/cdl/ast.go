package cdl

// ---- Types (thrift-like schema type expressions) ----

// TypeExpr is a schema type: a scalar, list<T>, map<string,T>, or a named
// struct type.
type TypeExpr struct {
	Kind TypeKind
	Elem *TypeExpr // list element / map value
	Name string    // struct type name for KindStruct
	Pos  Pos
	End  Pos
}

// TypeKind enumerates schema types.
type TypeKind int

// Schema type kinds.
const (
	KindBool TypeKind = iota
	KindI32
	KindI64
	KindDouble
	KindString
	KindList
	KindMap
	KindStruct
)

// String renders the type in thrift-like syntax.
func (t *TypeExpr) String() string {
	switch t.Kind {
	case KindBool:
		return "bool"
	case KindI32:
		return "i32"
	case KindI64:
		return "i64"
	case KindDouble:
		return "double"
	case KindString:
		return "string"
	case KindList:
		return "list<" + t.Elem.String() + ">"
	case KindMap:
		return "map<string, " + t.Elem.String() + ">"
	case KindStruct:
		return t.Name
	}
	return "?"
}

// FieldDef is one schema field: `2: i32 priority = 0;`.
type FieldDef struct {
	ID      int
	Type    *TypeExpr
	Name    string
	Default Expr // nil if none
	Pos     Pos
	End     Pos
}

// SchemaDef is a thrift-like struct schema. Extends names an optional base
// schema whose fields (and validators) are inherited — the config
// inheritance the paper lists as future work (§8).
type SchemaDef struct {
	Name    string
	Extends string
	Fields  []*FieldDef
	Pos     Pos
	End     Pos
}

// Field returns the field with the given name, or nil.
func (s *SchemaDef) Field(name string) *FieldDef {
	for _, f := range s.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// ---- Expressions ----

// Expr is any expression node. Every node carries its start position and
// its end position (one past the final character of its source text).
type Expr interface {
	exprPos() Pos
	exprEnd() Pos
}

// LitExpr is a literal: int, float, string, bool, or null.
type LitExpr struct {
	Pos Pos
	End Pos
	Val Value // pre-built runtime value
}

// IdentExpr references a binding.
type IdentExpr struct {
	Pos  Pos
	End  Pos
	Name string
}

// ListExpr is a list literal.
type ListExpr struct {
	Pos   Pos
	End   Pos
	Elems []Expr
}

// MapExpr is a map literal {key: value, ...}; keys are expressions that
// must evaluate to strings.
type MapExpr struct {
	Pos    Pos
	End    Pos
	Keys   []Expr
	Values []Expr
}

// StructExpr constructs a struct: Job{name: "x"}.
type StructExpr struct {
	Pos    Pos
	End    Pos
	Type   string
	Names  []string
	Values []Expr
}

// UpdateExpr is a struct-update: base{field: v} producing a modified copy.
type UpdateExpr struct {
	Pos    Pos
	End    Pos
	Base   Expr
	Names  []string
	Values []Expr
}

// FieldExpr accesses a struct field or map key: e.name.
type FieldExpr struct {
	Pos  Pos
	End  Pos
	Base Expr
	Name string
}

// IndexExpr indexes a list or map: e[i].
type IndexExpr struct {
	Pos   Pos
	End   Pos
	Base  Expr
	Index Expr
}

// CallExpr invokes a function: f(a, b).
type CallExpr struct {
	Pos  Pos
	End  Pos
	Fn   Expr
	Args []Expr
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Pos Pos
	End Pos
	Op  string
	X   Expr
}

// BinaryExpr is x op y. Pos is the operator position (error messages point
// at the operator); the full source range is X's start to Y's end.
type BinaryExpr struct {
	Pos  Pos
	End  Pos
	Op   string
	X, Y Expr
}

// CondExpr is cond ? a : b.
type CondExpr struct {
	Pos        Pos
	End        Pos
	Cond, A, B Expr
}

func (e *LitExpr) exprPos() Pos    { return e.Pos }
func (e *IdentExpr) exprPos() Pos  { return e.Pos }
func (e *ListExpr) exprPos() Pos   { return e.Pos }
func (e *MapExpr) exprPos() Pos    { return e.Pos }
func (e *StructExpr) exprPos() Pos { return e.Pos }
func (e *UpdateExpr) exprPos() Pos { return e.Pos }
func (e *FieldExpr) exprPos() Pos  { return e.Pos }
func (e *IndexExpr) exprPos() Pos  { return e.Pos }
func (e *CallExpr) exprPos() Pos   { return e.Pos }
func (e *UnaryExpr) exprPos() Pos  { return e.Pos }
func (e *BinaryExpr) exprPos() Pos { return e.Pos }
func (e *CondExpr) exprPos() Pos   { return e.Pos }

func (e *LitExpr) exprEnd() Pos    { return e.End }
func (e *IdentExpr) exprEnd() Pos  { return e.End }
func (e *ListExpr) exprEnd() Pos   { return e.End }
func (e *MapExpr) exprEnd() Pos    { return e.End }
func (e *StructExpr) exprEnd() Pos { return e.End }
func (e *UpdateExpr) exprEnd() Pos { return e.End }
func (e *FieldExpr) exprEnd() Pos  { return e.End }
func (e *IndexExpr) exprEnd() Pos  { return e.End }
func (e *CallExpr) exprEnd() Pos   { return e.End }
func (e *UnaryExpr) exprEnd() Pos  { return e.End }
func (e *BinaryExpr) exprEnd() Pos { return e.End }
func (e *CondExpr) exprEnd() Pos   { return e.End }

// ExprPos returns the expression's start position.
func ExprPos(e Expr) Pos { return e.exprPos() }

// ExprEnd returns the position one past the expression's last character.
func ExprEnd(e Expr) Pos { return e.exprEnd() }

// ---- Statements ----

// Stmt is any statement node. Like expressions, statements carry an
// accurate start and end position.
type Stmt interface {
	stmtPos() Pos
	stmtEnd() Pos
}

// ImportStmt pulls every top-level binding of another module into scope.
type ImportStmt struct {
	Pos  Pos
	End  Pos
	Path string
	// PathPos/PathEnd delimit the quoted path literal, so diagnostics about
	// the import target can point at the string rather than the keyword.
	PathPos Pos
	PathEnd Pos
}

// LetStmt binds (or rebinds) a name.
type LetStmt struct {
	Pos   Pos
	End   Pos
	Name  string
	Value Expr
	// NamePos/NameEnd delimit the bound identifier.
	NamePos Pos
	NameEnd Pos
}

// AssignStmt rebinds an existing name (x = expr).
type AssignStmt struct {
	Pos   Pos
	End   Pos
	Name  string
	Value Expr
}

// DefStmt defines a function.
type DefStmt struct {
	Pos    Pos
	End    Pos
	Name   string
	Params []string
	Body   []Stmt
	// NamePos/NameEnd delimit the function name.
	NamePos Pos
	NameEnd Pos
}

// ValidatorStmt registers an invariant checker for a schema type.
type ValidatorStmt struct {
	Pos    Pos
	End    Pos
	Schema string
	Param  string
	Body   []Stmt
}

// ExportStmt marks the module's exported config value.
type ExportStmt struct {
	Pos   Pos
	End   Pos
	Value Expr
}

// AssertStmt checks an invariant.
type AssertStmt struct {
	Pos     Pos
	End     Pos
	Cond    Expr
	Message Expr // optional
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	End  Pos
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// ForStmt iterates a list: for x in expr { ... }.
type ForStmt struct {
	Pos  Pos
	End  Pos
	Var  string
	Seq  Expr
	Body []Stmt
}

// ReturnStmt returns from a def.
type ReturnStmt struct {
	Pos   Pos
	End   Pos
	Value Expr // nil means return null
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	Pos Pos
	End Pos
	X   Expr
}

func (s *ImportStmt) stmtPos() Pos    { return s.Pos }
func (s *LetStmt) stmtPos() Pos       { return s.Pos }
func (s *AssignStmt) stmtPos() Pos    { return s.Pos }
func (s *DefStmt) stmtPos() Pos       { return s.Pos }
func (s *ValidatorStmt) stmtPos() Pos { return s.Pos }
func (s *ExportStmt) stmtPos() Pos    { return s.Pos }
func (s *AssertStmt) stmtPos() Pos    { return s.Pos }
func (s *IfStmt) stmtPos() Pos        { return s.Pos }
func (s *ForStmt) stmtPos() Pos       { return s.Pos }
func (s *ReturnStmt) stmtPos() Pos    { return s.Pos }
func (s *ExprStmt) stmtPos() Pos      { return s.Pos }

func (s *ImportStmt) stmtEnd() Pos    { return s.End }
func (s *LetStmt) stmtEnd() Pos       { return s.End }
func (s *AssignStmt) stmtEnd() Pos    { return s.End }
func (s *DefStmt) stmtEnd() Pos       { return s.End }
func (s *ValidatorStmt) stmtEnd() Pos { return s.End }
func (s *ExportStmt) stmtEnd() Pos    { return s.End }
func (s *AssertStmt) stmtEnd() Pos    { return s.End }
func (s *IfStmt) stmtEnd() Pos        { return s.End }
func (s *ForStmt) stmtEnd() Pos       { return s.End }
func (s *ReturnStmt) stmtEnd() Pos    { return s.End }
func (s *ExprStmt) stmtEnd() Pos      { return s.End }

// StmtPos returns the statement's start position.
func StmtPos(s Stmt) Pos { return s.stmtPos() }

// StmtEnd returns the position one past the statement's last character.
func StmtEnd(s Stmt) Pos { return s.stmtEnd() }

// Module is a parsed source file.
type Module struct {
	Path    string
	Imports []*ImportStmt
	Schemas []*SchemaDef
	Stmts   []Stmt // everything in source order, including imports/schemas markers
}
