package cdl

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

func wantArgs(pos Pos, name string, args []Value, n int) error {
	if len(args) != n {
		return errf(pos, "%s expects %d args, got %d", name, n, len(args))
	}
	return nil
}

// baseEnv returns the root environment with all builtins bound.
func baseEnv() *Env {
	env := NewEnv(nil)
	reg := func(name string, fn func(pos Pos, args []Value) (Value, error)) {
		env.Define(name, &Builtin{Name: name, Fn: fn})
	}

	reg("len", func(pos Pos, args []Value) (Value, error) {
		if err := wantArgs(pos, "len", args, 1); err != nil {
			return nil, err
		}
		switch v := args[0].(type) {
		case Str:
			return Int(len(v)), nil
		case List:
			return Int(len(v)), nil
		case Map:
			return Int(len(v)), nil
		}
		return nil, errf(pos, "len: unsupported type %s", args[0].TypeName())
	})
	reg("str", func(pos Pos, args []Value) (Value, error) {
		if err := wantArgs(pos, "str", args, 1); err != nil {
			return nil, err
		}
		return Str(ToString(args[0])), nil
	})
	reg("int", func(pos Pos, args []Value) (Value, error) {
		if err := wantArgs(pos, "int", args, 1); err != nil {
			return nil, err
		}
		switch v := args[0].(type) {
		case Int:
			return v, nil
		case Float:
			return Int(int64(v)), nil
		case Bool:
			if v {
				return Int(1), nil
			}
			return Int(0), nil
		case Str:
			n, err := strconv.ParseInt(strings.TrimSpace(string(v)), 10, 64)
			if err != nil {
				return nil, errf(pos, "int: cannot parse %q", string(v))
			}
			return Int(n), nil
		}
		return nil, errf(pos, "int: unsupported type %s", args[0].TypeName())
	})
	reg("float", func(pos Pos, args []Value) (Value, error) {
		if err := wantArgs(pos, "float", args, 1); err != nil {
			return nil, err
		}
		switch v := args[0].(type) {
		case Int:
			return Float(v), nil
		case Float:
			return v, nil
		case Str:
			f, err := strconv.ParseFloat(strings.TrimSpace(string(v)), 64)
			if err != nil {
				return nil, errf(pos, "float: cannot parse %q", string(v))
			}
			return Float(f), nil
		}
		return nil, errf(pos, "float: unsupported type %s", args[0].TypeName())
	})
	reg("keys", func(pos Pos, args []Value) (Value, error) {
		if err := wantArgs(pos, "keys", args, 1); err != nil {
			return nil, err
		}
		switch v := args[0].(type) {
		case Map:
			ks := make([]string, 0, len(v))
			for k := range v {
				ks = append(ks, k)
			}
			sort.Strings(ks)
			out := make(List, len(ks))
			for i, k := range ks {
				out[i] = Str(k)
			}
			return out, nil
		case *Struct:
			ks := make([]string, 0, len(v.Fields))
			for k := range v.Fields {
				ks = append(ks, k)
			}
			sort.Strings(ks)
			out := make(List, len(ks))
			for i, k := range ks {
				out[i] = Str(k)
			}
			return out, nil
		}
		return nil, errf(pos, "keys: unsupported type %s", args[0].TypeName())
	})
	reg("has", func(pos Pos, args []Value) (Value, error) {
		if err := wantArgs(pos, "has", args, 2); err != nil {
			return nil, err
		}
		key, ok := args[1].(Str)
		if !ok {
			return nil, errf(pos, "has: key must be string")
		}
		switch v := args[0].(type) {
		case Map:
			_, ok := v[string(key)]
			return Bool(ok), nil
		case *Struct:
			_, ok := v.Fields[string(key)]
			return Bool(ok), nil
		}
		return nil, errf(pos, "has: unsupported type %s", args[0].TypeName())
	})
	reg("range", func(pos Pos, args []Value) (Value, error) {
		lo, hi := int64(0), int64(0)
		switch len(args) {
		case 1:
			n, ok := args[0].(Int)
			if !ok {
				return nil, errf(pos, "range: want int")
			}
			hi = int64(n)
		case 2:
			a, aok := args[0].(Int)
			b, bok := args[1].(Int)
			if !aok || !bok {
				return nil, errf(pos, "range: want ints")
			}
			lo, hi = int64(a), int64(b)
		default:
			return nil, errf(pos, "range expects 1 or 2 args")
		}
		if hi-lo > 1_000_000 {
			return nil, errf(pos, "range too large: %d", hi-lo)
		}
		out := make(List, 0, max64(hi-lo, 0))
		for i := lo; i < hi; i++ {
			out = append(out, Int(i))
		}
		return out, nil
	})
	reg("min", varArgsNumeric("min", func(a, b float64) float64 { return math.Min(a, b) }))
	reg("max", varArgsNumeric("max", func(a, b float64) float64 { return math.Max(a, b) }))
	reg("abs", func(pos Pos, args []Value) (Value, error) {
		if err := wantArgs(pos, "abs", args, 1); err != nil {
			return nil, err
		}
		switch v := args[0].(type) {
		case Int:
			if v < 0 {
				return -v, nil
			}
			return v, nil
		case Float:
			return Float(math.Abs(float64(v))), nil
		}
		return nil, errf(pos, "abs: unsupported type %s", args[0].TypeName())
	})
	reg("contains", func(pos Pos, args []Value) (Value, error) {
		if err := wantArgs(pos, "contains", args, 2); err != nil {
			return nil, err
		}
		switch v := args[0].(type) {
		case Str:
			sub, ok := args[1].(Str)
			if !ok {
				return nil, errf(pos, "contains: want string needle")
			}
			return Bool(strings.Contains(string(v), string(sub))), nil
		case List:
			for _, e := range v {
				if Equal(e, args[1]) {
					return Bool(true), nil
				}
			}
			return Bool(false), nil
		}
		return nil, errf(pos, "contains: unsupported type %s", args[0].TypeName())
	})
	reg("startswith", func(pos Pos, args []Value) (Value, error) {
		if err := wantArgs(pos, "startswith", args, 2); err != nil {
			return nil, err
		}
		s, ok1 := args[0].(Str)
		p, ok2 := args[1].(Str)
		if !ok1 || !ok2 {
			return nil, errf(pos, "startswith: want strings")
		}
		return Bool(strings.HasPrefix(string(s), string(p))), nil
	})
	reg("split", func(pos Pos, args []Value) (Value, error) {
		if err := wantArgs(pos, "split", args, 2); err != nil {
			return nil, err
		}
		s, ok1 := args[0].(Str)
		sep, ok2 := args[1].(Str)
		if !ok1 || !ok2 {
			return nil, errf(pos, "split: want strings")
		}
		parts := strings.Split(string(s), string(sep))
		out := make(List, len(parts))
		for i, p := range parts {
			out[i] = Str(p)
		}
		return out, nil
	})
	reg("join", func(pos Pos, args []Value) (Value, error) {
		if err := wantArgs(pos, "join", args, 2); err != nil {
			return nil, err
		}
		l, ok1 := args[0].(List)
		sep, ok2 := args[1].(Str)
		if !ok1 || !ok2 {
			return nil, errf(pos, "join: want list and string")
		}
		parts := make([]string, len(l))
		for i, e := range l {
			parts[i] = ToString(e)
		}
		return Str(strings.Join(parts, string(sep))), nil
	})
	reg("format", func(pos Pos, args []Value) (Value, error) {
		if len(args) < 1 {
			return nil, errf(pos, "format expects at least 1 arg")
		}
		tmpl, ok := args[0].(Str)
		if !ok {
			return nil, errf(pos, "format: first arg must be a string")
		}
		var b strings.Builder
		rest := args[1:]
		i := 0
		s := string(tmpl)
		for len(s) > 0 {
			idx := strings.Index(s, "{}")
			if idx < 0 {
				b.WriteString(s)
				break
			}
			b.WriteString(s[:idx])
			if i >= len(rest) {
				return nil, errf(pos, "format: not enough args for placeholders")
			}
			b.WriteString(ToString(rest[i]))
			i++
			s = s[idx+2:]
		}
		return Str(b.String()), nil
	})
	reg("json", func(pos Pos, args []Value) (Value, error) {
		if err := wantArgs(pos, "json", args, 1); err != nil {
			return nil, err
		}
		s, err := MarshalJSON(args[0])
		if err != nil {
			return nil, errf(pos, "json: %v", err)
		}
		return Str(s), nil
	})
	reg("sorted", func(pos Pos, args []Value) (Value, error) {
		if err := wantArgs(pos, "sorted", args, 1); err != nil {
			return nil, err
		}
		l, ok := args[0].(List)
		if !ok {
			return nil, errf(pos, "sorted: want list")
		}
		out := make(List, len(l))
		copy(out, l)
		var sortErr error
		sort.SliceStable(out, func(i, j int) bool {
			a, aok := toFloat(out[i])
			b, bok := toFloat(out[j])
			if aok && bok {
				return a < b
			}
			as, aok2 := out[i].(Str)
			bs, bok2 := out[j].(Str)
			if aok2 && bok2 {
				return as < bs
			}
			sortErr = errf(pos, "sorted: mixed or unsupported element types")
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
		return out, nil
	})
	return env
}

// BuiltinNames returns the names bound in the root environment, sorted.
// Static analyses treat these as always-defined.
func BuiltinNames() []string { return baseEnv().Names() }

func varArgsNumeric(name string, combine func(a, b float64) float64) func(Pos, []Value) (Value, error) {
	return func(pos Pos, args []Value) (Value, error) {
		if len(args) < 2 {
			return nil, errf(pos, "%s expects at least 2 args", name)
		}
		allInt := true
		acc, ok := toFloat(args[0])
		if !ok {
			return nil, errf(pos, "%s: want numbers", name)
		}
		if _, isInt := args[0].(Int); !isInt {
			allInt = false
		}
		for _, a := range args[1:] {
			f, ok := toFloat(a)
			if !ok {
				return nil, errf(pos, "%s: want numbers", name)
			}
			if _, isInt := a.(Int); !isInt {
				allInt = false
			}
			acc = combine(acc, f)
		}
		if allInt {
			return Int(int64(acc)), nil
		}
		return Float(acc), nil
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
