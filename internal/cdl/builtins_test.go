package cdl

import (
	"strings"
	"testing"
)

// Error-path coverage for the builtin library: every builtin reports a
// positioned, descriptive error on misuse instead of panicking.
func TestBuiltinErrorPaths(t *testing.T) {
	cases := []struct {
		expr string
		want string
	}{
		{`len(3)`, "len: unsupported"},
		{`len()`, "expects 1 args"},
		{`int("abc")`, "cannot parse"},
		{`int([])`, "int: unsupported"},
		{`float("xyz")`, "cannot parse"},
		{`float(true)`, "float: unsupported"},
		{`keys(3)`, "keys: unsupported"},
		{`has(3, "k")`, "has: unsupported"},
		{`has({}, 3)`, "key must be string"},
		{`range("x")`, "range: want int"},
		{`range(1, 2, 3)`, "range expects"},
		{`range(0, 9999999)`, "range too large"},
		{`min(1)`, "at least 2"},
		{`min(1, "x")`, "want numbers"},
		{`abs("x")`, "abs: unsupported"},
		{`contains(3, 1)`, "contains: unsupported"},
		{`contains("abc", 3)`, "want string needle"},
		{`startswith(1, "a")`, "want strings"},
		{`split(1, ",")`, "split: want strings"},
		{`join("ab", ",")`, "join: want list"},
		{`format(3)`, "first arg must be a string"},
		{`format("{} {}", 1)`, "not enough args"},
		{`sorted(3)`, "sorted: want list"},
		{`sorted([1, "a"])`, "mixed or unsupported"},
	}
	for _, c := range cases {
		_, err := EvalExpr(c.expr)
		if err == nil {
			t.Errorf("EvalExpr(%q) succeeded, want error containing %q", c.expr, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("EvalExpr(%q) err = %v, want substring %q", c.expr, err, c.want)
		}
	}
}

func TestBuiltinHappyPathsExtra(t *testing.T) {
	cases := []struct {
		expr string
		want string
	}{
		{`int(2.9)`, "2"},
		{`int(true)`, "1"},
		{`int(false)`, "0"},
		{`int(" 42 ")`, "42"},
		{`float(3)`, "3"},
		{`float("2.5")`, "2.5"},
		{`str(3.5)`, `"3.5"`},
		{`str(null)`, `"null"`},
		{`str([1, 2])`, `"[1,2]"`},
		{`abs(-4)`, "4"},
		{`abs(-2.5)`, "2.5"},
		{`min(2.5, 3)`, "2.5"},
		{`max(1, 2, 3)`, "3"},
		{`range(3)`, "[0,1,2]"},
		{`keys({z: 1, a: 2})`, `["a","z"]`},
		{`has({a: 1}, "b")`, "false"},
		{`contains("hello", "ell")`, "true"},
		{`startswith("hello", "he")`, "true"},
		{`split("a,b,c", ",")`, `["a","b","c"]`},
		{`join([1, 2], "-")`, `"1-2"`},
		{`sorted(["b", "a"])`, `["a","b"]`},
		{`sorted([2.5, 1])`, "[1,2.5]"},
		{`json({a: 1})`, `"{\"a\":1}"`},
		{`format("no placeholders")`, `"no placeholders"`},
	}
	for _, c := range cases {
		v, err := EvalExpr(c.expr)
		if err != nil {
			t.Errorf("EvalExpr(%q): %v", c.expr, err)
			continue
		}
		js, err := MarshalJSON(v)
		if err != nil {
			t.Errorf("MarshalJSON(%q): %v", c.expr, err)
			continue
		}
		if js != c.want {
			t.Errorf("EvalExpr(%q) = %s, want %s", c.expr, js, c.want)
		}
	}
}

func TestTypeNames(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null{}, "null"},
		{Bool(true), "bool"},
		{Int(1), "int"},
		{Float(1), "float"},
		{Str("s"), "string"},
		{List{}, "list"},
		{(*Func)(nil), "function"},
	}
	for _, c := range cases {
		if got := c.v.TypeName(); got != c.want {
			t.Errorf("TypeName(%T) = %q, want %q", c.v, got, c.want)
		}
	}
	if (Map{}).TypeName() != "map" {
		t.Error("map TypeName")
	}
	if (&Struct{Schema: "Job"}).TypeName() != "Job" {
		t.Error("struct TypeName")
	}
	if (&Builtin{}).TypeName() != "builtin" {
		t.Error("builtin TypeName")
	}
}

func TestMapUpdateSyntax(t *testing.T) {
	res := compileOne(t, MapFS{"a.cconf": `
		let base = {a: 1, b: 2};
		let extended = base{b: 20, c: 30};
		export {orig: base, ext: extended};
	`}, "a.cconf")
	want := `{"ext":{"a":1,"b":20,"c":30},"orig":{"a":1,"b":2}}`
	if string(res.JSON) != want {
		t.Errorf("JSON = %s\nwant  %s", res.JSON, want)
	}
}

func TestUpdateOnScalarErrors(t *testing.T) {
	err := compileErr(t, MapFS{"a.cconf": `
		let x = 5;
		export {v: (x){f: 1}};
	`}, "a.cconf")
	if !strings.Contains(err.Error(), "cannot update fields") {
		t.Errorf("err = %v", err)
	}
}

func TestTypeExprString(t *testing.T) {
	fs := MapFS{"a.cconf": `
		schema S { 1: map<string, list<i64>> m = {}; 2: double d = 0.0; 3: bool b = false; }
		export S{};
	`}
	res := compileOne(t, fs, "a.cconf")
	if string(res.JSON) != `{"b":false,"d":0,"m":{}}` {
		t.Errorf("JSON = %s", res.JSON)
	}
}
