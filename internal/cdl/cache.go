package cdl

// Cache storage for the compilation engine: a content-addressed parse
// cache, a module-evaluation cache keyed by the Merkle hash of a module's
// transitive source closure, and a whole-compile result cache. All three
// live behind the Engine mutex; entries are immutable once published, so
// readers share them freely across goroutines.

// parseEntry is one cached parse, keyed by (path, source hash). The path
// is part of the key because AST positions embed the file name.
type parseEntry struct {
	mod *Module
	err error
	// safe is the astCacheSafe verdict, computed once per parse.
	safe bool
	// structRefs are the module's own StructExpr type names (sorted), fed
	// into moduleEntry.schemaRefs for the activation visibility check.
	structRefs []string
	lastUse    int64
}

// registeredValidator is a validator statement bound to the environment of
// the module that declared it.
type registeredValidator struct {
	stmt *ValidatorStmt
	env  *Env
}

// modEffect is one replayable module-level side effect, in statement
// order. Activating a cached module replays its effects exactly where the
// seed compiler would have produced them, which preserves "last export
// wins" and validator registration order even when exports or validators
// interleave with imports.
type modEffect struct {
	// importPath, when non-empty, loads a dependency at this position.
	importPath string
	// validator, when non-nil, registers a validator bound to the cached
	// module environment.
	validator *registeredValidator
	// hasExport marks an export statement; export is its evaluated value.
	hasExport bool
	export    Value
}

// moduleEntry is one memoized module evaluation. key is the Merkle hash of
// the module's transitive source closure, so any change to the module or
// anything it imports produces a different key — stale entries can never
// be hit. uncacheable entries are negative results: the module (or one of
// its dependencies) failed the cache-safety analysis and must be evaluated
// fresh each compile.
type moduleEntry struct {
	key         string
	path        string
	uncacheable bool

	env     *Env
	schemas []*SchemaDef
	effects []modEffect
	// imports are the direct import paths in statement order (the root
	// module's Result.Imports).
	imports []string
	// closure is every path in the transitive source closure (including
	// the module itself), used for depgraph-driven invalidation.
	closure []string
	// schemaNames is every schema name registered by the closure, and
	// schemaRefs every StructExpr type name appearing in the closure.
	// Activation re-checks that no ref resolves to a schema registered by
	// a module outside the closure — the one way compile-global schema
	// state could make a cached evaluation diverge from a fresh one.
	schemaNames map[string]bool
	schemaRefs  []string

	lastUse int64
}

// resultEntry is one memoized whole-compile result, keyed by the root
// module's closure hash.
type resultEntry struct {
	res     *Result
	closure []string
	lastUse int64
}

// evictOldest removes roughly the least-recently-used quarter of a cache
// map once it exceeds max, returning how many entries were dropped. The
// scan is O(n) but runs only on overflow, which amortizes fine for cache
// maintenance.
func evictOldest[E any](m map[string]E, max int, lastUse func(E) int64, drop func(string)) int {
	if max <= 0 || len(m) <= max {
		return 0
	}
	// Find the cutoff tick below which entries are evicted: collect ticks
	// and take the quartile via a partial selection.
	ticks := make([]int64, 0, len(m))
	for _, e := range m {
		ticks = append(ticks, lastUse(e))
	}
	cutoff := quickselect(ticks, len(ticks)/4)
	dropped := 0
	for k, e := range m {
		if lastUse(e) <= cutoff {
			drop(k)
			dropped++
		}
	}
	return dropped
}

// quickselect returns the k-th smallest element (0-based) of xs, mutating
// xs in place.
func quickselect(xs []int64, k int) int64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		pivot := xs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return xs[k]
}
