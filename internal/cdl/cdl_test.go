package cdl

import (
	"strings"
	"testing"
)

func compileOne(t *testing.T, fs MapFS, path string) *Result {
	t.Helper()
	res, err := NewCompiler(fs).Compile(path)
	if err != nil {
		t.Fatalf("Compile(%s): %v", path, err)
	}
	return res
}

func compileErr(t *testing.T, fs MapFS, path string) error {
	t.Helper()
	_, err := NewCompiler(fs).Compile(path)
	if err == nil {
		t.Fatalf("Compile(%s): expected error", path)
	}
	return err
}

// The paper's Figure 2 example, transliterated to CDL: a schema, a reusable
// create_job module, and a cache job config built from it.
var figure2 = MapFS{
	"scheduler/job.schema": `
		schema Job {
			1: string name;
			2: i32 priority = 1;
			3: list<string> tags = [];
			4: map<string, i64> limits = {};
			5: bool enabled = true;
		}
		validator Job(cfg) {
			assert(cfg.priority >= 0 && cfg.priority <= 10, "priority out of range");
			assert(len(cfg.name) > 0, "name required");
		}
	`,
	"scheduler/create_job.cinc": `
		import "scheduler/job.schema";
		def create_job(name, prio) {
			return Job{name: name, priority: prio, tags: ["managed"]};
		}
	`,
	"cache/cache_job.cconf": `
		import "scheduler/create_job.cinc";
		export create_job("cache", 3);
	`,
	"security/security_job.cconf": `
		import "scheduler/create_job.cinc";
		export create_job("security", 2);
	`,
}

func TestFigure2Pipeline(t *testing.T) {
	res := compileOne(t, figure2, "cache/cache_job.cconf")
	want := `{"enabled":true,"limits":{},"name":"cache","priority":3,"tags":["managed"]}`
	if string(res.JSON) != want {
		t.Errorf("JSON = %s\nwant  %s", res.JSON, want)
	}
	if res.SchemaName != "Job" {
		t.Errorf("SchemaName = %q", res.SchemaName)
	}
	if len(res.Imports) != 1 || res.Imports[0] != "scheduler/create_job.cinc" {
		t.Errorf("Imports = %v", res.Imports)
	}
	// Transitive deps include the schema module.
	if len(res.Deps) != 2 {
		t.Errorf("Deps = %v", res.Deps)
	}
}

func TestValidatorRejects(t *testing.T) {
	fs := MapFS{}
	for k, v := range figure2 {
		fs[k] = v
	}
	fs["bad/bad_job.cconf"] = `
		import "scheduler/create_job.cinc";
		export create_job("bad", 99);
	`
	err := compileErr(t, fs, "bad/bad_job.cconf")
	if !strings.Contains(err.Error(), "priority out of range") {
		t.Errorf("err = %v", err)
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	fs := MapFS{
		"a.cconf": `
			schema C { 1: i32 x = 0; }
			export C{y: 3};
		`,
	}
	err := compileErr(t, fs, "a.cconf")
	if !strings.Contains(err.Error(), "no field") {
		t.Errorf("err = %v", err)
	}
}

func TestTypeMismatchRejected(t *testing.T) {
	fs := MapFS{
		"a.cconf": `
			schema C { 1: i32 x = 0; }
			export C{x: "nope"};
		`,
	}
	err := compileErr(t, fs, "a.cconf")
	if !strings.Contains(err.Error(), "want i32") {
		t.Errorf("err = %v", err)
	}
}

func TestI32Range(t *testing.T) {
	fs := MapFS{
		"a.cconf": `
			schema C { 1: i32 x = 0; }
			export C{x: 3000000000};
		`,
	}
	err := compileErr(t, fs, "a.cconf")
	if !strings.Contains(err.Error(), "i32 range") {
		t.Errorf("err = %v", err)
	}
}

func TestDefaultsFilled(t *testing.T) {
	fs := MapFS{
		"a.cconf": `
			schema C {
				1: i32 x = 42;
				2: string s;
				3: double d = 2.5;
				4: list<i64> l;
			}
			export C{};
		`,
	}
	res := compileOne(t, fs, "a.cconf")
	want := `{"d":2.5,"l":[],"s":"","x":42}`
	if string(res.JSON) != want {
		t.Errorf("JSON = %s, want %s", res.JSON, want)
	}
}

func TestNestedStructValidation(t *testing.T) {
	fs := MapFS{
		"a.cconf": `
			schema Inner { 1: i32 n = 0; }
			schema Outer { 1: Inner inner; 2: list<Inner> more = []; }
			validator Inner(c) { assert(c.n < 100, "n too big"); }
			export Outer{inner: Inner{n: 5}, more: [Inner{n: 200}]};
		`,
	}
	err := compileErr(t, fs, "a.cconf")
	if !strings.Contains(err.Error(), "n too big") {
		t.Errorf("nested validator did not run: %v", err)
	}
}

func TestSharedConstantPropagates(t *testing.T) {
	// The paper's app_port.cinc example: both app and firewall configs
	// import the same constant.
	fs := MapFS{
		"lib/app_port.cinc": `let APP_PORT = 8089;`,
		"app.cconf": `
			import "lib/app_port.cinc";
			schema AppConfig { 1: i64 port; }
			export AppConfig{port: APP_PORT};
		`,
		"firewall.cconf": `
			import "lib/app_port.cinc";
			schema FirewallConfig { 1: i64 allow_port; }
			export FirewallConfig{allow_port: APP_PORT};
		`,
	}
	app := compileOne(t, fs, "app.cconf")
	fw := compileOne(t, fs, "firewall.cconf")
	if string(app.JSON) != `{"port":8089}` || string(fw.JSON) != `{"allow_port":8089}` {
		t.Errorf("app=%s fw=%s", app.JSON, fw.JSON)
	}
}

func TestImportCycle(t *testing.T) {
	fs := MapFS{
		"a.cinc":  `import "b.cinc"; let A = 1;`,
		"b.cinc":  `import "a.cinc"; let B = 2;`,
		"c.cconf": `import "a.cinc"; export {v: A};`,
	}
	err := compileErr(t, fs, "c.cconf")
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("err = %v", err)
	}
}

func TestDiamondImportLoadsOnce(t *testing.T) {
	fs := MapFS{
		"base.cinc": `let N = 7;`,
		"l.cinc":    `import "base.cinc"; let L = N + 1;`,
		"r.cinc":    `import "base.cinc"; let R = N + 2;`,
		"top.cconf": `
			import "l.cinc";
			import "r.cinc";
			export {l: L, r: R};
		`,
	}
	res := compileOne(t, fs, "top.cconf")
	if string(res.JSON) != `{"l":8,"r":9}` {
		t.Errorf("JSON = %s", res.JSON)
	}
	if len(res.Deps) != 3 {
		t.Errorf("Deps = %v, want 3 unique", res.Deps)
	}
}

func TestMissingExport(t *testing.T) {
	fs := MapFS{"a.cconf": `let x = 1;`}
	err := compileErr(t, fs, "a.cconf")
	if !strings.Contains(err.Error(), "export") {
		t.Errorf("err = %v", err)
	}
}

func TestLastExportWins(t *testing.T) {
	fs := MapFS{"a.cconf": `
		export {v: 1};
		export {v: 2};
	`}
	res := compileOne(t, fs, "a.cconf")
	if string(res.JSON) != `{"v":2}` {
		t.Errorf("JSON = %s", res.JSON)
	}
}

func TestSchemalessMapExport(t *testing.T) {
	fs := MapFS{"a.cconf": `export {threshold: 0.5, names: ["a", "b"]};`}
	res := compileOne(t, fs, "a.cconf")
	if string(res.JSON) != `{"names":["a","b"],"threshold":0.5}` {
		t.Errorf("JSON = %s", res.JSON)
	}
	if res.SchemaName != "" {
		t.Errorf("SchemaName = %q, want empty", res.SchemaName)
	}
}

func TestControlFlow(t *testing.T) {
	fs := MapFS{"a.cconf": `
		def classify(n) {
			if (n > 10) { return "big"; }
			else if (n > 5) { return "medium"; }
			else { return "small"; }
		}
		let sizes = [];
		for (n in [1, 7, 20]) {
			sizes = sizes + [classify(n)];
		}
		export {sizes: sizes};
	`}
	res := compileOne(t, fs, "a.cconf")
	if string(res.JSON) != `{"sizes":["small","medium","big"]}` {
		t.Errorf("JSON = %s", res.JSON)
	}
}

func TestStructUpdateExpr(t *testing.T) {
	fs := MapFS{"a.cconf": `
		schema C { 1: i32 x = 0; 2: i32 y = 0; }
		let base = C{x: 1, y: 2};
		let mod = base{y: 99};
		export {bx: base.x, by: base.y, mx: mod.x, my: mod.y};
	`}
	res := compileOne(t, fs, "a.cconf")
	if string(res.JSON) != `{"bx":1,"by":2,"mx":1,"my":99}` {
		t.Errorf("JSON = %s", res.JSON)
	}
}

func TestBuiltins(t *testing.T) {
	fs := MapFS{"a.cconf": `
		export {
			l: len("abc"),
			k: keys({b: 1, a: 2}),
			mn: min(3, 1, 2),
			mx: max(3, 1, 2),
			r: range(2, 5),
			j: join(["x", "y"], "-"),
			f: format("{}:{}", "host", 80),
			s: sorted([3, 1, 2]),
			c: contains([1, 2], 2),
			h: has({a: 1}, "a"),
		};
	`}
	res := compileOne(t, fs, "a.cconf")
	want := `{"c":true,"f":"host:80","h":true,"j":"x-y","k":["a","b"],"l":3,"mn":1,"mx":3,"r":[2,3,4],"s":[1,2,3]}`
	if string(res.JSON) != want {
		t.Errorf("JSON = %s\nwant  %s", res.JSON, want)
	}
}

func TestArithmetic(t *testing.T) {
	fs := MapFS{"a.cconf": `
		export {
			a: 7 / 2,
			b: 7.0 / 2.0,
			c: 7 % 3,
			d: 2 * 3 + 1,
			e: -(4 - 6),
			f: 1 < 2 && 2 <= 2,
			g: !false,
			h: 1 > 2 ? "x" : "y",
		};
	`}
	res := compileOne(t, fs, "a.cconf")
	want := `{"a":3,"b":3.5,"c":1,"d":7,"e":2,"f":true,"g":true,"h":"y"}`
	if string(res.JSON) != want {
		t.Errorf("JSON = %s\nwant  %s", res.JSON, want)
	}
}

func TestDivisionByZero(t *testing.T) {
	err := compileErr(t, MapFS{"a.cconf": `export {x: 1 / 0};`}, "a.cconf")
	if !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v", err)
	}
}

func TestInfiniteLoopBounded(t *testing.T) {
	fs := MapFS{"a.cconf": `
		def f(n) { return f(n); }
		export {x: f(1)};
	`}
	err := compileErr(t, fs, "a.cconf")
	if !strings.Contains(err.Error(), "recursion") && !strings.Contains(err.Error(), "steps") {
		t.Errorf("err = %v", err)
	}
}

func TestTightLoopBounded(t *testing.T) {
	// A non-recursive unbounded loop is caught by the step budget.
	fs := MapFS{"a.cconf": `
		let l = range(1000000);
		let acc = 0;
		for (i in l) {
			for (j in l) {
				acc = acc + 1;
			}
		}
		export {x: acc};
	`}
	err := compileErr(t, fs, "a.cconf")
	if !strings.Contains(err.Error(), "steps") && !strings.Contains(err.Error(), "range too large") {
		t.Errorf("err = %v", err)
	}
}

func TestUndefinedName(t *testing.T) {
	err := compileErr(t, MapFS{"a.cconf": `export {x: nope};`}, "a.cconf")
	if !strings.Contains(err.Error(), "undefined name") {
		t.Errorf("err = %v", err)
	}
}

func TestAssignUndefined(t *testing.T) {
	err := compileErr(t, MapFS{"a.cconf": `x = 1; export {};`}, "a.cconf")
	if !strings.Contains(err.Error(), "undefined variable") {
		t.Errorf("err = %v", err)
	}
}

func TestListIndexOutOfRange(t *testing.T) {
	err := compileErr(t, MapFS{"a.cconf": `let l = [1]; export {x: l[5]};`}, "a.cconf")
	if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v", err)
	}
}

func TestMapMissingKeyIsNull(t *testing.T) {
	res := compileOne(t, MapFS{"a.cconf": `
		let m = {a: 1};
		export {missing: m["b"], present: m["a"]};
	`}, "a.cconf")
	if string(res.JSON) != `{"missing":null,"present":1}` {
		t.Errorf("JSON = %s", res.JSON)
	}
}

func TestCanonicalJSONDeterministic(t *testing.T) {
	fs := MapFS{"a.cconf": `export {z: 1, a: 2, m: {q: 1, b: 2}};`}
	r1 := compileOne(t, fs, "a.cconf")
	r2 := compileOne(t, fs, "a.cconf")
	if string(r1.JSON) != string(r2.JSON) {
		t.Error("recompilation must be byte-identical")
	}
	if string(r1.JSON) != `{"a":2,"m":{"b":2,"q":1},"z":1}` {
		t.Errorf("JSON = %s", r1.JSON)
	}
}

func TestListImports(t *testing.T) {
	src := []byte(`
		import "feed/a.cinc";
		import "tao/b.cinc";
		export {};
	`)
	deps, err := ListImports("x.cconf", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 2 || deps[0] != "feed/a.cinc" || deps[1] != "tao/b.cinc" {
		t.Errorf("deps = %v", deps)
	}
}

func TestEvalExpr(t *testing.T) {
	v, err := EvalExpr(`{rate: 0.05, hosts: ["a", "b"], n: 2 + 3}`)
	if err != nil {
		t.Fatal(err)
	}
	js, _ := MarshalJSON(v)
	if js != `{"hosts":["a","b"],"n":5,"rate":0.05}` {
		t.Errorf("JSON = %s", js)
	}
}

func TestEvalExprTrailingGarbage(t *testing.T) {
	if _, err := EvalExpr(`1 + 2 ; drop`); err == nil {
		t.Fatal("expected error on trailing input")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`let = 3;`,
		`schema {}`,
		`export ;`,
		`let x = "unterminated;`,
		`let x = 1 +;`,
		`if x { }`,
		`schema S { 1: i32 a; 1: i32 b; }`,
		`schema S { 1: i32 a; 2: i32 a; }`,
		`schema S { 1: map<i32, i32> m; }`,
	}
	for _, src := range cases {
		if _, err := Parse("t.cconf", src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	res := compileOne(t, MapFS{"a.cconf": `
		# hash comment
		// slash comment
		let x = 1; # trailing
		export {x: x};
	`}, "a.cconf")
	if string(res.JSON) != `{"x":1}` {
		t.Errorf("JSON = %s", res.JSON)
	}
}

func TestStringEscapes(t *testing.T) {
	res := compileOne(t, MapFS{"a.cconf": `export {s: "a\nb\t\"q\""};`}, "a.cconf")
	if string(res.JSON) != `{"s":"a\nb\t\"q\""}` {
		t.Errorf("JSON = %s", res.JSON)
	}
}

func TestClosureCapture(t *testing.T) {
	res := compileOne(t, MapFS{"a.cconf": `
		let base = 10;
		def add(n) { return base + n; }
		export {v: add(5)};
	`}, "a.cconf")
	if string(res.JSON) != `{"v":15}` {
		t.Errorf("JSON = %s", res.JSON)
	}
}

func TestRecursionWorks(t *testing.T) {
	res := compileOne(t, MapFS{"a.cconf": `
		def fact(n) {
			if (n <= 1) { return 1; }
			return n * fact(n - 1);
		}
		export {v: fact(6)};
	`}, "a.cconf")
	if string(res.JSON) != `{"v":720}` {
		t.Errorf("JSON = %s", res.JSON)
	}
}

func TestSchemaRedefinitionRejected(t *testing.T) {
	fs := MapFS{
		"a.cinc":  `schema S { 1: i32 x = 0; }`,
		"b.cinc":  `schema S { 1: i64 y = 0; }`,
		"c.cconf": `import "a.cinc"; import "b.cinc"; export {};`,
	}
	err := compileErr(t, fs, "c.cconf")
	if !strings.Contains(err.Error(), "already defined") {
		t.Errorf("err = %v", err)
	}
}

func TestFloatFormatting(t *testing.T) {
	res := compileOne(t, MapFS{"a.cconf": `export {a: 1.0, b: 0.1, c: 1e6, d: 2.5e-3};`}, "a.cconf")
	if string(res.JSON) != `{"a":1,"b":0.1,"c":1e+06,"d":0.0025}` {
		t.Errorf("JSON = %s", res.JSON)
	}
}

func TestValueEqual(t *testing.T) {
	if !Equal(Int(3), Float(3)) {
		t.Error("numeric cross-type equality")
	}
	if Equal(Str("a"), Str("b")) {
		t.Error("distinct strings equal")
	}
	if !Equal(List{Int(1), Str("x")}, List{Int(1), Str("x")}) {
		t.Error("deep list equality")
	}
	if !Equal(Map{"a": Int(1)}, Map{"a": Int(1)}) {
		t.Error("deep map equality")
	}
	if Equal(Map{"a": Int(1)}, Map{"a": Int(2)}) {
		t.Error("unequal maps compared equal")
	}
}

func TestTruthy(t *testing.T) {
	for _, v := range []Value{Null{}, Bool(false), Int(0), Float(0), Str(""), List{}, Map{}} {
		if Truthy(v) {
			t.Errorf("%v should be falsy", v)
		}
	}
	for _, v := range []Value{Bool(true), Int(1), Str("x"), List{Int(1)}} {
		if !Truthy(v) {
			t.Errorf("%v should be truthy", v)
		}
	}
}
