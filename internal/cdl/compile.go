package cdl

import (
	"fmt"
	"sort"
)

// FileSystem is the source tree the compiler reads modules from. In
// production flows it is backed by a vcs working copy; tests use MapFS.
type FileSystem interface {
	ReadFile(path string) ([]byte, error)
}

// MapFS is an in-memory FileSystem.
type MapFS map[string]string

// ReadFile implements FileSystem.
func (m MapFS) ReadFile(path string) ([]byte, error) {
	s, ok := m[path]
	if !ok {
		return nil, fmt.Errorf("cdl: no such file %q", path)
	}
	return []byte(s), nil
}

// Result is a compiled config artifact.
type Result struct {
	// Path is the source path that was compiled.
	Path string
	// JSON is the canonical JSON artifact checked into the repository
	// alongside the source (§3.1: "the source code of config programs and
	// generated JSON configs are stored in a version control tool").
	JSON []byte
	// Value is the normalized exported value (defaults filled).
	Value Value
	// SchemaName is the exported struct's schema ("" for schemaless
	// exports such as plain maps).
	SchemaName string
	// Imports are the direct dependency edges of the root module.
	Imports []string
	// Deps are all transitively loaded module paths (excluding the root),
	// sorted — the input to the Dependency Service.
	Deps []string
}

// Compiler compiles CDL modules to canonical JSON configs.
type Compiler struct {
	FS FileSystem
}

// NewCompiler returns a compiler over the given source tree.
func NewCompiler(fs FileSystem) *Compiler { return &Compiler{FS: fs} }

type registeredValidator struct {
	stmt *ValidatorStmt
	env  *Env
}

// loadState tracks one compilation's module graph.
type loadState struct {
	comp       *Compiler
	eval       *evaluator
	global     *Env
	modules    map[string]*Env // path -> module env (top-level bindings)
	inProgress map[string]bool
	order      []string
	validators map[string][]registeredValidator
}

// Compile loads the module at path, resolves its imports transitively,
// evaluates it, checks the exported value against its schema, runs all
// validators, and emits canonical JSON.
func (c *Compiler) Compile(path string) (*Result, error) {
	st := &loadState{
		comp:       c,
		eval:       &evaluator{schemas: map[string]*SchemaDef{}, validators: map[string][]*ValidatorStmt{}},
		global:     baseEnv(),
		modules:    map[string]*Env{},
		inProgress: map[string]bool{},
		validators: map[string][]registeredValidator{},
	}
	mod, env, err := st.load(path)
	if err != nil {
		return nil, err
	}
	if !st.eval.hasExport {
		return nil, errf(Pos{File: path, Line: 1, Col: 1}, "module exports nothing (missing `export`)")
	}
	exported := st.eval.exported
	res := &Result{Path: path}
	for _, im := range mod.Imports {
		res.Imports = append(res.Imports, im.Path)
	}
	for _, p := range st.order {
		if p != path {
			res.Deps = append(res.Deps, p)
		}
	}
	sort.Strings(res.Deps)

	// Schema normalization for struct exports.
	if s, ok := exported.(*Struct); ok {
		sd, ok := st.eval.schemas[s.Schema]
		if !ok {
			return nil, errf(Pos{File: path, Line: 1, Col: 1}, "exported struct has unknown schema %q", s.Schema)
		}
		norm, err := st.eval.checkSchema(Pos{File: path, Line: 1, Col: 1}, s, sd, env)
		if err != nil {
			return nil, err
		}
		exported = norm
		res.SchemaName = s.Schema
	}

	// Run validators over every struct instance in the exported tree. The
	// Configerator compiler "automatically runs validators to verify
	// invariants defined for configs" (§1) for every config of the type.
	if err := st.runValidators(exported); err != nil {
		return nil, err
	}

	js, err := MarshalJSON(exported)
	if err != nil {
		return nil, errf(Pos{File: path, Line: 1, Col: 1}, "%v", err)
	}
	res.JSON = []byte(js)
	res.Value = exported
	return res, nil
}

// load parses and evaluates one module (and, first, its imports).
func (st *loadState) load(path string) (*Module, *Env, error) {
	if env, ok := st.modules[path]; ok {
		return nil, env, nil // already loaded; Module not needed again
	}
	if st.inProgress[path] {
		return nil, nil, fmt.Errorf("cdl: import cycle through %q", path)
	}
	st.inProgress[path] = true
	defer delete(st.inProgress, path)

	src, err := st.comp.FS.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	mod, err := Parse(path, string(src))
	if err != nil {
		return nil, nil, err
	}
	env := NewEnv(st.global)

	// Register schemas before evaluating statements so struct literals in
	// the same file resolve.
	for _, sd := range mod.Schemas {
		if prev, ok := st.eval.schemas[sd.Name]; ok && prev != sd {
			return nil, nil, errf(sd.Pos, "schema %q already defined at %s", sd.Name, prev.Pos)
		}
		st.eval.schemas[sd.Name] = sd
	}

	for _, stm := range mod.Stmts {
		switch s := stm.(type) {
		case *ImportStmt:
			_, depEnv, err := st.load(s.Path)
			if err != nil {
				return nil, nil, err
			}
			// import binds every top-level name of the dependency, like
			// the paper's import_python(path, "*").
			for _, name := range depEnv.Names() {
				v, _ := depEnv.Lookup(name)
				env.Define(name, v)
			}
		case *ValidatorStmt:
			st.eval.validators[s.Schema] = append(st.eval.validators[s.Schema], s)
			st.validators[s.Schema] = append(st.validators[s.Schema], registeredValidator{stmt: s, env: env})
		default:
			if _, err := st.eval.exec(stm, env); err != nil {
				return nil, nil, err
			}
		}
	}
	st.modules[path] = env
	st.order = append(st.order, path)
	return mod, env, nil
}

// runValidators walks the value tree and applies every validator registered
// for each struct's schema.
func (st *loadState) runValidators(v Value) error {
	switch x := v.(type) {
	case *Struct:
		// A derived schema inherits its ancestors' validators: a config
		// of type Derived must satisfy Base's invariants too.
		for _, schemaName := range st.schemaChain(x.Schema) {
			for _, rv := range st.validators[schemaName] {
				scope := NewEnv(rv.env)
				scope.Define(rv.stmt.Param, x)
				if _, err := st.eval.execBlock(rv.stmt.Body, scope); err != nil {
					return fmt.Errorf("cdl: validator for %s: %w", schemaName, err)
				}
			}
		}
		// Deterministic field order for nested validation.
		keys := make([]string, 0, len(x.Fields))
		for k := range x.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := st.runValidators(x.Fields[k]); err != nil {
				return err
			}
		}
	case List:
		for _, e := range x {
			if err := st.runValidators(e); err != nil {
				return err
			}
		}
	case Map:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := st.runValidators(x[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

// schemaChain lists a schema and its ancestors (self first). Cycles are
// cut short here; resolveFields reports them as errors during checking.
func (st *loadState) schemaChain(name string) []string {
	var out []string
	seen := make(map[string]bool)
	for cur := name; cur != "" && !seen[cur]; {
		seen[cur] = true
		out = append(out, cur)
		sd := st.eval.schemas[cur]
		if sd == nil {
			break
		}
		cur = sd.Extends
	}
	return out
}

// ListImports parses (without evaluating) and returns the module's direct
// import paths — the cheap dependency-extraction entry point used by the
// Dependency Service.
func ListImports(file string, src []byte) ([]string, error) {
	mod, err := Parse(file, string(src))
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(mod.Imports))
	for _, im := range mod.Imports {
		out = append(out, im.Path)
	}
	return out, nil
}

// EvalExpr evaluates a standalone CDL expression with builtins available —
// the engine behind Sitevars values, which are "a PHP expression" in the
// paper and a CDL expression here.
func EvalExpr(src string) (Value, error) {
	toks, err := lexAll("<expr>", src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, file: "<expr>"}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, errf(p.cur().pos, "unexpected trailing input %q", p.cur().text)
	}
	ev := &evaluator{schemas: map[string]*SchemaDef{}, validators: map[string][]*ValidatorStmt{}}
	return ev.eval(x, NewEnv(baseEnv()))
}
