package cdl

import (
	"fmt"
	"sort"
)

// FileSystem is the source tree the compiler reads modules from. In
// production flows it is backed by a vcs working copy; tests use MapFS.
type FileSystem interface {
	ReadFile(path string) ([]byte, error)
}

// MapFS is an in-memory FileSystem.
type MapFS map[string]string

// ReadFile implements FileSystem.
func (m MapFS) ReadFile(path string) ([]byte, error) {
	s, ok := m[path]
	if !ok {
		return nil, fmt.Errorf("cdl: no such file %q", path)
	}
	return []byte(s), nil
}

// Result is a compiled config artifact.
type Result struct {
	// Path is the source path that was compiled.
	Path string
	// JSON is the canonical JSON artifact checked into the repository
	// alongside the source (§3.1: "the source code of config programs and
	// generated JSON configs are stored in a version control tool").
	JSON []byte
	// Value is the normalized exported value (defaults filled). It is
	// shared with the engine's result cache and must be treated as
	// immutable.
	Value Value
	// SchemaName is the exported struct's schema ("" for schemaless
	// exports such as plain maps).
	SchemaName string
	// Imports are the direct dependency edges of the root module.
	Imports []string
	// Deps are all transitively loaded module paths (excluding the root),
	// sorted — the input to the Dependency Service.
	Deps []string
}

// cloneResult copies the Result's slices so result-cache entries cannot be
// corrupted by a caller mutating what Compile returned. Value is shared
// (values are immutable once evaluated).
func cloneResult(r *Result) *Result {
	out := *r
	out.JSON = append([]byte(nil), r.JSON...)
	out.Imports = append([]string(nil), r.Imports...)
	out.Deps = append([]string(nil), r.Deps...)
	return &out
}

// Compiler compiles CDL modules to canonical JSON configs. It is a thin
// wrapper around a (shareable) Engine; long-lived callers should hold one
// Engine and pass it to every Compiler so caches persist across compiles.
type Compiler struct {
	FS FileSystem
	// Engine provides the parse/module/result caches. A nil Engine
	// compiles uncached (seed behavior).
	Engine *Engine
}

// NewCompiler returns a compiler over the given source tree with its own
// private engine.
func NewCompiler(fs FileSystem) *Compiler { return &Compiler{FS: fs, Engine: NewEngine()} }

// Compile loads the module at path, resolves its imports transitively,
// evaluates it, checks the exported value against its schema, runs all
// validators, and emits canonical JSON.
func (c *Compiler) Compile(path string) (*Result, error) {
	eng := c.Engine
	if eng == nil {
		eng = &Engine{CacheDisabled: true}
	}
	return eng.Compile(c.FS, path)
}

// loadState tracks one compilation's module graph.
type loadState struct {
	eng    *Engine
	fs     FileSystem
	h      *hasher // nil disables all cache use for this compile
	eval   *evaluator
	global *Env

	modules map[string]*Env // path -> module env (top-level bindings)
	// imports records each loaded module's direct import paths in
	// statement order (the root's become Result.Imports).
	imports map[string][]string
	// cached marks modules whose evaluation is backed by a cache entry
	// (activated from one, or stored as one this compile). A module may
	// only be cached if all its direct imports are.
	cached map[string]bool
	// entries holds the cache entry per cached path, for building the
	// closure metadata of dependent entries.
	entries map[string]*moduleEntry
	// usedCache is set once any module was activated from cache; together
	// with a global-env rebind it triggers the uncached-redo fallback.
	usedCache  bool
	inProgress map[string]bool
	order      []string
	validators map[string][]registeredValidator
	// building is the closure key this loadState was spawned to build
	// (engine single-flight); load must not re-enter that flight.
	building string
}

func newLoadState(eng *Engine, fs FileSystem, h *hasher) *loadState {
	return &loadState{
		eng:        eng,
		fs:         fs,
		h:          h,
		eval:       &evaluator{schemas: map[string]*SchemaDef{}, validators: map[string][]*ValidatorStmt{}},
		global:     baseEnv(),
		modules:    map[string]*Env{},
		imports:    map[string][]string{},
		cached:     map[string]bool{},
		entries:    map[string]*moduleEntry{},
		inProgress: map[string]bool{},
		validators: map[string][]registeredValidator{},
	}
}

// load returns the module environment for path, loading imports first.
// With caching enabled it consults the engine's module cache and falls
// back to a fresh in-context evaluation whenever the cached entry cannot
// be proven equivalent — so every error, and every success, is produced by
// the same code path the seed compiler used.
func (st *loadState) load(path string) (*Env, error) {
	if env, ok := st.modules[path]; ok {
		return env, nil
	}
	if st.inProgress[path] {
		return nil, fmt.Errorf("cdl: import cycle through %q", path)
	}
	st.inProgress[path] = true
	defer delete(st.inProgress, path)

	// Cache consult. Skipped when the global env has been rebound (a
	// module assigned over a builtin): cached entries bake a pristine
	// global and would no longer match seed semantics.
	if st.h != nil && !st.eng.CacheDisabled && st.global.version == 0 {
		info := st.h.info(path)
		if info.err == nil {
			ent := st.eng.module(info.key)
			if ent == nil && st.building != info.key {
				// Miss: build the module once (single-flight across
				// goroutines). A build error is discarded — the fresh
				// in-context evaluation below reproduces it with seed
				// semantics (the standalone build lacks unrelated
				// modules' schemas, so it can fail where the real
				// compile would not).
				if built, err := st.eng.buildModule(st.h, path, info); err == nil {
					ent = built
				}
			}
			if ent != nil && !ent.uncacheable {
				env, ok, err := st.activate(path, ent)
				if ok {
					return env, err
				}
			}
		}
	}
	return st.evalModule(path)
}

// activate splices a cached module into this compile: it registers the
// module's schemas (with the seed's duplicate check) and replays its
// recorded effects — imports, validator registrations, exports — in
// original statement order. ok=false means the entry cannot be used in
// this compile's context (a struct literal name would now resolve against
// a schema from outside the module's closure) and the caller must
// evaluate fresh; in that case no state has been mutated.
func (st *loadState) activate(path string, ent *moduleEntry) (env *Env, ok bool, err error) {
	for _, n := range ent.schemaRefs {
		if _, clash := st.eval.schemas[n]; clash && !ent.schemaNames[n] {
			return nil, false, nil
		}
	}
	st.usedCache = true
	for _, sd := range ent.schemas {
		if prev, dup := st.eval.schemas[sd.Name]; dup && prev != sd {
			return nil, true, errf(sd.Pos, "schema %q already defined at %s", sd.Name, prev.Pos)
		}
		st.eval.schemas[sd.Name] = sd
	}
	for _, eff := range ent.effects {
		switch {
		case eff.importPath != "":
			if _, err := st.load(eff.importPath); err != nil {
				return nil, true, err
			}
		case eff.validator != nil:
			s := eff.validator.stmt
			st.eval.validators[s.Schema] = append(st.eval.validators[s.Schema], s)
			st.validators[s.Schema] = append(st.validators[s.Schema], *eff.validator)
		case eff.hasExport:
			st.eval.exported = eff.export
			st.eval.hasExport = true
		}
	}
	st.modules[path] = ent.env
	st.imports[path] = ent.imports
	st.cached[path] = true
	st.entries[path] = ent
	st.order = append(st.order, path)
	return ent.env, true, nil
}

// evalModule parses and evaluates one module fresh (the seed code path),
// recording its module-level effects so the evaluation can be published as
// a cache entry when it proves cacheable.
func (st *loadState) evalModule(path string) (*Env, error) {
	var info *keyInfo
	if st.h != nil && !st.eng.CacheDisabled {
		info = st.h.info(path)
	}
	var src []byte
	if info != nil && info.src != nil {
		src = info.src
	} else {
		var err error
		src, err = st.fs.ReadFile(path)
		if err != nil {
			return nil, err
		}
	}
	mod, err := st.eng.parseModule(path, src)
	if err != nil {
		return nil, err
	}
	env := NewEnv(st.global)

	// Register schemas before evaluating statements so struct literals in
	// the same file resolve.
	for _, sd := range mod.Schemas {
		if prev, ok := st.eval.schemas[sd.Name]; ok && prev != sd {
			return nil, errf(sd.Pos, "schema %q already defined at %s", sd.Name, prev.Pos)
		}
		st.eval.schemas[sd.Name] = sd
	}

	var effects []modEffect
	var imports []string
	for _, stm := range mod.Stmts {
		switch s := stm.(type) {
		case *ImportStmt:
			depEnv, err := st.load(s.Path)
			if err != nil {
				return nil, err
			}
			// import binds every top-level name of the dependency, like
			// the paper's import_python(path, "*").
			for _, name := range depEnv.Names() {
				v, _ := depEnv.Lookup(name)
				env.Define(name, v)
			}
			imports = append(imports, s.Path)
			effects = append(effects, modEffect{importPath: s.Path})
		case *ValidatorStmt:
			st.eval.validators[s.Schema] = append(st.eval.validators[s.Schema], s)
			rv := &registeredValidator{stmt: s, env: env}
			st.validators[s.Schema] = append(st.validators[s.Schema], *rv)
			effects = append(effects, modEffect{validator: rv})
		default:
			seq := st.eval.exportSeq
			if _, err := st.eval.exec(stm, env); err != nil {
				return nil, err
			}
			if st.eval.exportSeq != seq {
				// The statement (possibly an if/for wrapping an export)
				// changed the exported value; record the final state so
				// replay preserves last-export-wins across modules.
				effects = append(effects, modEffect{hasExport: true, export: st.eval.exported})
			}
		}
	}
	st.modules[path] = env
	st.imports[path] = imports
	st.order = append(st.order, path)

	st.maybeStore(path, info, mod, env, effects, imports, src)
	return env, nil
}

// maybeStore publishes the just-finished evaluation as a module cache
// entry when that is provably sound: the closure key is computable, the
// module's own AST passed the cache-safety analysis, every direct import
// is itself cache-backed, and the global env stayed pristine for the whole
// compile so far. Otherwise (with a valid key) it records an uncacheable
// marker so future compiles skip the build attempt.
func (st *loadState) maybeStore(path string, info *keyInfo, mod *Module, env *Env, effects []modEffect, imports []string, src []byte) {
	if st.h == nil || st.eng.CacheDisabled || info == nil || info.err != nil || st.global.version != 0 {
		return
	}
	safe, ownRefs := st.eng.parseMeta(path, src)
	cacheable := safe
	for _, dep := range imports {
		if !st.cached[dep] {
			cacheable = false
			break
		}
	}
	if !cacheable {
		st.eng.storeUncacheable(info.key, path, info.closure)
		return
	}
	names := make(map[string]bool, len(mod.Schemas))
	for _, sd := range mod.Schemas {
		names[sd.Name] = true
	}
	refs := make(map[string]bool, len(ownRefs))
	for _, r := range ownRefs {
		refs[r] = true
	}
	for _, dep := range imports {
		dent := st.entries[dep]
		if dent == nil {
			return // activation raced an eviction; skip storing
		}
		for n := range dent.schemaNames {
			names[n] = true
		}
		for _, r := range dent.schemaRefs {
			refs[r] = true
		}
	}
	refList := make([]string, 0, len(refs))
	for r := range refs {
		refList = append(refList, r)
	}
	sort.Strings(refList)
	ent := &moduleEntry{
		key:         info.key,
		path:        path,
		env:         env,
		schemas:     mod.Schemas,
		effects:     effects,
		imports:     imports,
		closure:     info.closure,
		schemaNames: names,
		schemaRefs:  refList,
	}
	st.eng.storeModule(ent)
	st.cached[path] = true
	st.entries[path] = ent
}

// finish runs the post-load stages of a compile: the export check, schema
// normalization, validators, and canonical JSON marshalling.
func (st *loadState) finish(path string, env *Env) (*Result, error) {
	if !st.eval.hasExport {
		return nil, errf(Pos{File: path, Line: 1, Col: 1}, "module exports nothing (missing `export`)")
	}
	exported := st.eval.exported
	res := &Result{Path: path}
	res.Imports = append(res.Imports, st.imports[path]...)
	for _, p := range st.order {
		if p != path {
			res.Deps = append(res.Deps, p)
		}
	}
	sort.Strings(res.Deps)

	// Schema normalization for struct exports.
	if s, ok := exported.(*Struct); ok {
		sd, ok := st.eval.schemas[s.Schema]
		if !ok {
			return nil, errf(Pos{File: path, Line: 1, Col: 1}, "exported struct has unknown schema %q", s.Schema)
		}
		norm, err := st.eval.checkSchema(Pos{File: path, Line: 1, Col: 1}, s, sd, env)
		if err != nil {
			return nil, err
		}
		exported = norm
		res.SchemaName = s.Schema
	}

	// Run validators over every struct instance in the exported tree. The
	// Configerator compiler "automatically runs validators to verify
	// invariants defined for configs" (§1) for every config of the type.
	if err := st.runValidators(exported); err != nil {
		return nil, err
	}

	js, err := MarshalJSON(exported)
	if err != nil {
		return nil, errf(Pos{File: path, Line: 1, Col: 1}, "%v", err)
	}
	res.JSON = []byte(js)
	res.Value = exported
	return res, nil
}

// runValidators walks the value tree and applies every validator registered
// for each struct's schema.
func (st *loadState) runValidators(v Value) error {
	switch x := v.(type) {
	case *Struct:
		// A derived schema inherits its ancestors' validators: a config
		// of type Derived must satisfy Base's invariants too.
		for _, schemaName := range st.schemaChain(x.Schema) {
			for _, rv := range st.validators[schemaName] {
				scope := NewEnv(rv.env)
				scope.Define(rv.stmt.Param, x)
				if _, err := st.eval.execBlock(rv.stmt.Body, scope); err != nil {
					return fmt.Errorf("cdl: validator for %s: %w", schemaName, err)
				}
			}
		}
		// Deterministic field order for nested validation.
		keys := make([]string, 0, len(x.Fields))
		for k := range x.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := st.runValidators(x.Fields[k]); err != nil {
				return err
			}
		}
	case List:
		for _, e := range x {
			if err := st.runValidators(e); err != nil {
				return err
			}
		}
	case Map:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := st.runValidators(x[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

// schemaChain lists a schema and its ancestors (self first). Cycles are
// cut short here; resolveFields reports them as errors during checking.
func (st *loadState) schemaChain(name string) []string {
	var out []string
	seen := make(map[string]bool)
	for cur := name; cur != "" && !seen[cur]; {
		seen[cur] = true
		out = append(out, cur)
		sd := st.eval.schemas[cur]
		if sd == nil {
			break
		}
		cur = sd.Extends
	}
	return out
}

// EvalExpr evaluates a standalone CDL expression with builtins available —
// the engine behind Sitevars values, which are "a PHP expression" in the
// paper and a CDL expression here.
func EvalExpr(src string) (Value, error) {
	toks, err := lexAll("<expr>", src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, file: "<expr>"}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, errf(p.cur().pos, "unexpected trailing input %q", p.cur().text)
	}
	ev := &evaluator{schemas: map[string]*SchemaDef{}, validators: map[string][]*ValidatorStmt{}}
	return ev.eval(x, NewEnv(baseEnv()))
}
