package cdl

import (
	"strings"
	"testing"
)

// Additional lexer/parser/eval edge coverage.

func TestNumberLiterals(t *testing.T) {
	res := compileOne(t, MapFS{"a.cconf": `
		export {
			a: 1_000_000,
			b: 1e3,
			c: 2.5e-2,
			d: 0,
			e: 0.5,
		};
	`}, "a.cconf")
	want := `{"a":1000000,"b":1000,"c":0.025,"d":0,"e":0.5}`
	if string(res.JSON) != want {
		t.Errorf("JSON = %s\nwant  %s", res.JSON, want)
	}
}

func TestStringIndexing(t *testing.T) {
	res := compileOne(t, MapFS{"a.cconf": `
		let s = "hello";
		export {first: s[0], last: s[4], n: len(s)};
	`}, "a.cconf")
	if string(res.JSON) != `{"first":"h","last":"o","n":5}` {
		t.Errorf("JSON = %s", res.JSON)
	}
}

func TestNestedFunctionsAndHigherOrderError(t *testing.T) {
	// Functions are values; calling a non-function errors cleanly.
	err := compileErr(t, MapFS{"a.cconf": `
		let x = 5;
		export {v: x(1)};
	`}, "a.cconf")
	if !strings.Contains(err.Error(), "not callable") {
		t.Errorf("err = %v", err)
	}
}

func TestFunctionAsExportRejected(t *testing.T) {
	err := compileErr(t, MapFS{"a.cconf": `
		def f() { return 1; }
		export {fn: f};
	`}, "a.cconf")
	if !strings.Contains(err.Error(), "serialize") {
		t.Errorf("err = %v", err)
	}
}

func TestErrorPositionsReported(t *testing.T) {
	_, err := NewCompiler(MapFS{"dir/a.cconf": "let x = ;\n"}).Compile("dir/a.cconf")
	if err == nil || !strings.Contains(err.Error(), "dir/a.cconf:1:") {
		t.Errorf("err = %v, want position dir/a.cconf:1:", err)
	}
	_, err = NewCompiler(MapFS{"b.cconf": "let x = 1;\nlet y = z;\nexport {};\n"}).Compile("b.cconf")
	if err == nil || !strings.Contains(err.Error(), "b.cconf:2:") {
		t.Errorf("err = %v, want position b.cconf:2:", err)
	}
}

func TestDeepNesting(t *testing.T) {
	res := compileOne(t, MapFS{"a.cconf": `
		export {a: {b: {c: {d: [1, [2, [3, {e: "deep"}]]]}}}};
	`}, "a.cconf")
	if string(res.JSON) != `{"a":{"b":{"c":{"d":[1,[2,[3,{"e":"deep"}]]]}}}}` {
		t.Errorf("JSON = %s", res.JSON)
	}
}

func TestTrailingCommas(t *testing.T) {
	res := compileOne(t, MapFS{"a.cconf": `
		export {a: [1, 2, 3,], b: {x: 1,}};
	`}, "a.cconf")
	if string(res.JSON) != `{"a":[1,2,3],"b":{"x":1}}` {
		t.Errorf("JSON = %s", res.JSON)
	}
}

func TestShortCircuitPreventsErrors(t *testing.T) {
	// && and || short-circuit so the guarded division never runs.
	res := compileOne(t, MapFS{"a.cconf": `
		let d = 0;
		export {
			a: d != 0 && (10 / d) > 1,
			b: d == 0 || (10 / d) > 1,
		};
	`}, "a.cconf")
	if string(res.JSON) != `{"a":false,"b":true}` {
		t.Errorf("JSON = %s", res.JSON)
	}
}

func TestForLoopScoping(t *testing.T) {
	// Loop variables are scoped to the body; rebinding an outer variable
	// inside the loop persists.
	res := compileOne(t, MapFS{"a.cconf": `
		let total = 0;
		for (x in range(5)) {
			total = total + x;
		}
		export {total: total};
	`}, "a.cconf")
	if string(res.JSON) != `{"total":10}` {
		t.Errorf("JSON = %s", res.JSON)
	}
	err := compileErr(t, MapFS{"b.cconf": `
		for (x in [1]) { let y = x; }
		export {leak: x};
	`}, "b.cconf")
	if !strings.Contains(err.Error(), "undefined name") {
		t.Errorf("loop variable leaked: %v", err)
	}
}

func TestUnicodeStringsSurvive(t *testing.T) {
	res := compileOne(t, MapFS{"a.cconf": `export {s: "héllo 世界"};`}, "a.cconf")
	if !strings.Contains(string(res.JSON), "héllo 世界") {
		t.Errorf("JSON = %s", res.JSON)
	}
}

func TestUnicodeIdentifiers(t *testing.T) {
	res := compileOne(t, MapFS{"a.cconf": `
		let nombre = "valor";
		export {v: nombre};
	`}, "a.cconf")
	if string(res.JSON) != `{"v":"valor"}` {
		t.Errorf("JSON = %s", res.JSON)
	}
}

func TestCompareStrings(t *testing.T) {
	res := compileOne(t, MapFS{"a.cconf": `
		export {a: "abc" < "abd", b: "b" >= "a", c: "x" == "x"};
	`}, "a.cconf")
	if string(res.JSON) != `{"a":true,"b":true,"c":true}` {
		t.Errorf("JSON = %s", res.JSON)
	}
}

func TestMixedComparisonErrors(t *testing.T) {
	err := compileErr(t, MapFS{"a.cconf": `export {x: "a" < 3};`}, "a.cconf")
	if !strings.Contains(err.Error(), "cannot compare") {
		t.Errorf("err = %v", err)
	}
}

func TestValidatorSeesNormalizedDefaults(t *testing.T) {
	// Validators run on the normalized struct, so defaults are visible.
	res := compileOne(t, MapFS{"a.cconf": `
		schema C { 1: i32 x = 7; }
		validator C(c) { assert(c.x == 7 || c.x > 0, "x visible"); }
		export C{};
	`}, "a.cconf")
	if string(res.JSON) != `{"x":7}` {
		t.Errorf("JSON = %s", res.JSON)
	}
}

func TestDefaultExprsEvaluated(t *testing.T) {
	// Field defaults are expressions evaluated in scope.
	res := compileOne(t, MapFS{"a.cconf": `
		let BASE = 100;
		schema C { 1: i64 limit = BASE * 2; }
		export C{};
	`}, "a.cconf")
	if string(res.JSON) != `{"limit":200}` {
		t.Errorf("JSON = %s", res.JSON)
	}
}
