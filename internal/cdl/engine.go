package cdl

// The shared compilation engine (§3.1 commit path). The seed compiler
// re-parsed and re-evaluated the entire transitive import graph from
// scratch for every Compile call, so recompiling the dependents of a
// shared .cinc was O(dependents × full module graph). The engine memoizes
// the deterministic parts of that work across Compile calls:
//
//   - parse cache: (path, source-hash) → AST, so a .cinc imported by N
//     configs parses once, not N times;
//   - module cache: Merkle hash of a module's transitive source closure →
//     its evaluated environment, registered schemas, and replayable module
//     effects. Content-hash keys self-invalidate — editing any file in the
//     closure changes the key — and InvalidatePaths evicts the dead
//     entries precisely using the Dependency Service's affected set;
//   - result cache: root closure hash → finished *Result, making the CI
//     double-compile determinism check nearly free;
//   - single-flight module builds, so concurrent compiles that share a
//     dependency evaluate it once instead of once per worker.
//
// Modules that fail the static cache-safety analysis (purity.go) are
// evaluated fresh on every compile — memoization never changes observable
// semantics, it only skips provably repeatable work. Compile errors are
// never cached, so error messages are always produced by a fresh
// evaluation and are byte-identical to the seed compiler's.

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"configerator/internal/stats"
)

// Default cache bounds; exceeding a bound evicts the least-recently-used
// quarter of the cache.
const (
	DefaultMaxParseEntries  = 4096
	DefaultMaxModuleEntries = 4096
	DefaultMaxResultEntries = 8192
)

// Engine is a shared, concurrency-safe CDL compilation engine. The zero
// value is not usable; call NewEngine. One engine is meant to live for the
// whole pipeline lifetime and serve every change's compiles — its caches
// are keyed by content, so overlay filesystems with different staged edits
// share one engine safely.
type Engine struct {
	// CacheDisabled turns the engine into the seed serial compiler: no
	// hashing, no caches, no single-flight. Used by benchmarks as the
	// baseline.
	CacheDisabled bool
	// Workers bounds CompileAll's worker pool (default GOMAXPROCS).
	Workers int
	// Cache bounds (defaults applied by NewEngine).
	MaxParseEntries  int
	MaxModuleEntries int
	MaxResultEntries int

	counters *stats.Counters

	mu      sync.Mutex
	parse   map[string]*parseEntry
	modules map[string]*moduleEntry
	results map[string]*resultEntry
	flights map[string]*flight
	tick    int64
}

// flight is one in-progress module build; concurrent requests for the same
// closure key wait on done instead of duplicating the evaluation.
type flight struct {
	done chan struct{}
	ent  *moduleEntry // nil if the module turned out uncacheable
	err  error
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{
		MaxParseEntries:  DefaultMaxParseEntries,
		MaxModuleEntries: DefaultMaxModuleEntries,
		MaxResultEntries: DefaultMaxResultEntries,
		counters:         stats.NewCounters(),
		parse:            make(map[string]*parseEntry),
		modules:          make(map[string]*moduleEntry),
		results:          make(map[string]*resultEntry),
		flights:          make(map[string]*flight),
	}
}

// Counters exposes the engine's cache hit/miss/eviction counters.
func (e *Engine) Counters() *stats.Counters { return e.counters }

// BatchError is CompileAll's failure report: the error produced by the
// lexicographically first failing path. Its message is exactly the
// underlying compile error's, so callers that previously surfaced
// Compiler.Compile errors keep byte-identical output.
type BatchError struct {
	// Path is the requested (root) path whose compile failed — not
	// necessarily the file the error is positioned in.
	Path string
	Err  error
}

// Error implements error.
func (b *BatchError) Error() string { return b.Err.Error() }

// Unwrap exposes the underlying compile error.
func (b *BatchError) Unwrap() error { return b.Err }

// ---- hashing ----

// keyInfo is the hashed view of one source file under one FileSystem: its
// content, scanned direct imports, transitive closure, and Merkle closure
// key. err records why a key could not be computed (unreadable file,
// lexical error, import cycle); such paths compile uncached.
type keyInfo struct {
	src     []byte
	key     string
	imports []string
	closure []string
	err     error
}

// hasher computes closure keys for one FileSystem view, memoized per path.
// It is safe for concurrent use; the mutex serializes the recursive walk,
// which is cheap (reads + sha256, no parsing or evaluation).
type hasher struct {
	eng  *Engine
	fs   FileSystem
	mu   sync.Mutex
	memo map[string]*keyInfo
}

func newHasher(eng *Engine, fs FileSystem) *hasher {
	return &hasher{eng: eng, fs: fs, memo: make(map[string]*keyInfo)}
}

// info returns the keyInfo for path, computing (and memoizing) the whole
// transitive closure on first use.
func (h *hasher) info(path string) *keyInfo {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.walk(path, make(map[string]bool))
}

func (h *hasher) walk(path string, visiting map[string]bool) *keyInfo {
	if ki, ok := h.memo[path]; ok {
		return ki
	}
	if visiting[path] {
		// Genuine import cycle: every path on the cycle is permanently
		// unkeyable, so memoizing the error is correct.
		ki := &keyInfo{err: fmt.Errorf("cdl: import cycle through %q", path)}
		h.memo[path] = ki
		return ki
	}
	ki := &keyInfo{}
	src, err := h.fs.ReadFile(path)
	if err != nil {
		ki.err = err
		h.memo[path] = ki
		return ki
	}
	ki.src = src
	imports, err := ScanImports(path, src)
	if err != nil {
		ki.err = err
		h.memo[path] = ki
		return ki
	}
	ki.imports = imports

	visiting[path] = true
	sum := sha256.Sum256(src)
	hash := sha256.New()
	hash.Write([]byte("cdl-module\x00"))
	hash.Write([]byte(path))
	hash.Write([]byte{0})
	hash.Write(sum[:])
	closure := map[string]bool{path: true}
	for _, imp := range imports {
		sub := h.walk(imp, visiting)
		if sub.err != nil && ki.err == nil {
			ki.err = sub.err
		}
		hash.Write([]byte{0})
		hash.Write([]byte(sub.key))
		for _, p := range sub.closure {
			closure[p] = true
		}
		closure[imp] = true
	}
	delete(visiting, path)

	ki.closure = make([]string, 0, len(closure))
	for p := range closure {
		ki.closure = append(ki.closure, p)
	}
	sort.Strings(ki.closure)
	if ki.err == nil {
		ki.key = fmt.Sprintf("%x", hash.Sum(nil))
	}
	h.memo[path] = ki
	return ki
}

// ---- parse cache ----

// parseModule parses src (content-addressed, memoized). Parse errors are
// cached too: the same bytes always produce the same error.
func (e *Engine) parseModule(path string, src []byte) (*Module, error) {
	if e.CacheDisabled {
		return Parse(path, string(src))
	}
	sum := sha256.Sum256(src)
	key := path + "\x00" + string(sum[:])
	e.mu.Lock()
	if pe, ok := e.parse[key]; ok {
		pe.lastUse = e.nextTick()
		e.counters.Add("parse.hit", 1)
		e.mu.Unlock()
		return pe.mod, pe.err
	}
	e.counters.Add("parse.miss", 1)
	e.mu.Unlock()

	mod, err := Parse(path, string(src))
	pe := &parseEntry{mod: mod, err: err}
	if err == nil {
		pe.safe = astCacheSafe(mod)
		pe.structRefs = collectStructRefs(mod)
	}
	e.mu.Lock()
	pe.lastUse = e.nextTick()
	e.parse[key] = pe
	e.counters.Add("evict.parse", int64(evictOldest(e.parse, e.MaxParseEntries,
		func(p *parseEntry) int64 { return p.lastUse }, func(k string) { delete(e.parse, k) })))
	e.mu.Unlock()
	return mod, err
}

// ParseCached parses src through the engine's content-addressed parse
// cache: the same (path, bytes) pair is parsed once no matter how many
// callers ask. This is the entry point the configlint driver uses, so a
// lint of N dependents sharing a .cinc parses the shared file exactly once
// — and a lint run immediately after a compile (or vice versa) reuses the
// other's parse work entirely.
func (e *Engine) ParseCached(path string, src []byte) (*Module, error) {
	return e.parseModule(path, src)
}

// parseMeta reports the cached cache-safety verdict and struct-literal
// type names for already-parsed content (false/nil when unknown).
func (e *Engine) parseMeta(path string, src []byte) (bool, []string) {
	sum := sha256.Sum256(src)
	key := path + "\x00" + string(sum[:])
	e.mu.Lock()
	defer e.mu.Unlock()
	if pe, ok := e.parse[key]; ok && pe.err == nil {
		return pe.safe, pe.structRefs
	}
	return false, nil
}

// ---- module cache ----

// module returns the cached module entry for key (counting hit/miss), or
// nil.
func (e *Engine) module(key string) *moduleEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.modules[key]
	if !ok {
		e.counters.Add("module.miss", 1)
		return nil
	}
	ent.lastUse = e.nextTick()
	if ent.uncacheable {
		e.counters.Add("module.uncacheable", 1)
	} else {
		e.counters.Add("module.hit", 1)
	}
	return ent
}

// peekModule is module without counters, for internal bookkeeping.
func (e *Engine) peekModule(key string) *moduleEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.modules[key]
}

func (e *Engine) storeModule(ent *moduleEntry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent.lastUse = e.nextTick()
	e.modules[ent.key] = ent
	e.counters.Add("evict.module", int64(evictOldest(e.modules, e.MaxModuleEntries,
		func(m *moduleEntry) int64 { return m.lastUse }, func(k string) { delete(e.modules, k) })))
}

// storeUncacheable records a negative entry so future compiles skip the
// build attempt for this closure. It never overwrites a real entry (an
// activation that fell back for context reasons must not poison the cache
// for other compiles).
func (e *Engine) storeUncacheable(key, path string, closure []string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.modules[key]; ok {
		return
	}
	e.modules[key] = &moduleEntry{key: key, path: path, uncacheable: true, closure: closure, lastUse: e.nextTick()}
	e.counters.Add("evict.module", int64(evictOldest(e.modules, e.MaxModuleEntries,
		func(m *moduleEntry) int64 { return m.lastUse }, func(k string) { delete(e.modules, k) })))
}

// buildModule evaluates one cacheable module in an isolated load state and
// publishes the entry, single-flighted per closure key so concurrent
// compiles sharing a dependency evaluate it exactly once. Returns
// (nil, nil) when the module turns out uncacheable.
func (e *Engine) buildModule(h *hasher, path string, info *keyInfo) (*moduleEntry, error) {
	e.mu.Lock()
	if ent, ok := e.modules[info.key]; ok { // raced with another builder
		e.mu.Unlock()
		if ent.uncacheable {
			return nil, nil
		}
		return ent, nil
	}
	if f, ok := e.flights[info.key]; ok {
		e.mu.Unlock()
		<-f.done
		return f.ent, f.err
	}
	f := &flight{done: make(chan struct{})}
	e.flights[info.key] = f
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.flights, info.key)
		e.mu.Unlock()
		close(f.done)
	}()

	// Fast path: if the module's own AST is already known-unsafe, skip the
	// evaluation entirely.
	if _, err := e.parseModule(path, info.src); err != nil {
		f.err = err
		return nil, err
	}
	if safe, _ := e.parseMeta(path, info.src); !safe {
		e.storeUncacheable(info.key, path, info.closure)
		return nil, nil
	}

	e.counters.Add("module.build", 1)
	st := newLoadState(e, h.fs, h)
	st.building = info.key
	if _, err := st.load(path); err != nil {
		f.err = err
		return nil, err
	}
	// evalModule stored either the real entry or an uncacheable marker
	// (when a transitive dependency was unsafe).
	ent := e.peekModule(info.key)
	if ent == nil || ent.uncacheable {
		return nil, nil
	}
	f.ent = ent
	return ent, nil
}

// ---- result cache ----

func (e *Engine) lookupResult(key string) *Result {
	e.mu.Lock()
	defer e.mu.Unlock()
	if re, ok := e.results[key]; ok {
		re.lastUse = e.nextTick()
		e.counters.Add("result.hit", 1)
		return cloneResult(re.res)
	}
	e.counters.Add("result.miss", 1)
	return nil
}

func (e *Engine) storeResult(key string, res *Result, closure []string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.results[key] = &resultEntry{res: cloneResult(res), closure: closure, lastUse: e.nextTick()}
	e.counters.Add("evict.result", int64(evictOldest(e.results, e.MaxResultEntries,
		func(r *resultEntry) int64 { return r.lastUse }, func(k string) { delete(e.results, k) })))
}

// nextTick must be called with e.mu held.
func (e *Engine) nextTick() int64 {
	e.tick++
	return e.tick
}

// ---- invalidation ----

// InvalidatePaths evicts every module and result entry whose transitive
// source closure intersects the given paths, plus parse entries for the
// paths themselves. Content-hash keys mean stale entries can never be hit
// again regardless; invalidation reclaims their memory immediately. The
// pipeline calls this with the Dependency Service's affected set (changed
// files plus all transitive importers) after a change lands.
func (e *Engine) InvalidatePaths(paths ...string) int {
	if len(paths) == 0 {
		return 0
	}
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	touches := func(closure []string) bool {
		for _, p := range closure {
			if set[p] {
				return true
			}
		}
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	dropped := 0
	for k, ent := range e.modules {
		if touches(ent.closure) {
			delete(e.modules, k)
			dropped++
		}
	}
	for k, re := range e.results {
		if touches(re.closure) {
			delete(e.results, k)
			dropped++
		}
	}
	for k, pe := range e.parse {
		if pe.mod != nil && set[pe.mod.Path] {
			delete(e.parse, k)
			dropped++
		}
	}
	e.counters.Add("invalidate", int64(dropped))
	return dropped
}

// ---- compile entry points ----

// Compile compiles a single module through the engine's caches.
func (e *Engine) Compile(fs FileSystem, path string) (*Result, error) {
	var h *hasher
	if !e.CacheDisabled {
		h = newHasher(e, fs)
	}
	return e.compileOne(fs, h, path)
}

func (e *Engine) compileOne(fs FileSystem, h *hasher, path string) (*Result, error) {
	var info *keyInfo
	if h != nil {
		info = h.info(path)
		if info.err == nil {
			if res := e.lookupResult(info.key); res != nil {
				return res, nil
			}
		}
	}
	st := newLoadState(e, fs, h)
	env, err := st.load(path)
	var res *Result
	if err == nil {
		res, err = st.finish(path, env)
	}
	if st.usedCache && st.global.version > 0 {
		// A module rebound a shared global binding (assigned over a
		// builtin) after cached modules — which bake a pristine global —
		// were spliced in. Redo the whole compile uncached for exact seed
		// semantics; this is the rare escape hatch, not a hot path.
		e.counters.Add("compile.uncached_redo", 1)
		st = newLoadState(e, fs, nil)
		env, err = st.load(path)
		if err != nil {
			return nil, err
		}
		return st.finish(path, env)
	}
	if err != nil {
		return nil, err
	}
	if info != nil && info.err == nil && st.cached[path] && st.global.version == 0 {
		e.storeResult(info.key, res, info.closure)
	}
	return res, nil
}

// CompileAll compiles the given paths (deduplicated) through a bounded
// worker pool, scheduling them in dependency-topological waves so that
// requested paths imported by other requested paths are compiled — and
// cached — first. The returned results cover every path that compiled
// successfully, sorted by path; the error (a *BatchError, nil when all
// succeed) is the lexicographically first failing path's error, so output
// is reproducible run-to-run and identical between GOMAXPROCS=1 and
// parallel execution.
func (e *Engine) CompileAll(fs FileSystem, paths []string) ([]*Result, error) {
	uniq := make([]string, 0, len(paths))
	seen := make(map[string]bool, len(paths))
	for _, p := range paths {
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	sort.Strings(uniq)

	var h *hasher
	waves := [][]string{uniq}
	if !e.CacheDisabled {
		h = newHasher(e, fs)
		waves = planWaves(h, uniq)
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	resByPath := make(map[string]*Result, len(uniq))
	errByPath := make(map[string]error)
	var mu sync.Mutex
	for _, wave := range waves {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for _, p := range wave {
			wg.Add(1)
			sem <- struct{}{}
			go func(p string) {
				defer wg.Done()
				defer func() { <-sem }()
				res, err := e.compileOne(fs, h, p)
				mu.Lock()
				if err != nil {
					errByPath[p] = err
				} else {
					resByPath[p] = res
				}
				mu.Unlock()
			}(p)
		}
		wg.Wait()
	}

	out := make([]*Result, 0, len(resByPath))
	for _, p := range uniq {
		if res, ok := resByPath[p]; ok {
			out = append(out, res)
		}
	}
	var batchErr error
	for _, p := range uniq { // uniq is sorted: first failing path wins
		if err, ok := errByPath[p]; ok {
			batchErr = &BatchError{Path: p, Err: err}
			break
		}
	}
	return out, batchErr
}

// planWaves orders the requested paths into dependency-topological waves:
// a path lands in a later wave than any requested path inside its own
// transitive closure. Paths whose closures cannot be hashed (cycles,
// unreadable imports) go in the first wave and surface their errors from a
// fresh compile.
func planWaves(h *hasher, paths []string) [][]string {
	requested := make(map[string]bool, len(paths))
	for _, p := range paths {
		requested[p] = true
	}
	level := make(map[string]int, len(paths))
	var levelOf func(p string, guard map[string]bool) int
	levelOf = func(p string, guard map[string]bool) int {
		if l, ok := level[p]; ok {
			return l
		}
		if guard[p] {
			return 0
		}
		guard[p] = true
		defer delete(guard, p)
		l := 0
		info := h.info(p)
		if info.err == nil {
			for _, dep := range info.closure {
				if dep != p && requested[dep] {
					if dl := levelOf(dep, guard) + 1; dl > l {
						l = dl
					}
				}
			}
		}
		level[p] = l
		return l
	}
	maxLevel := 0
	for _, p := range paths {
		if l := levelOf(p, make(map[string]bool)); l > maxLevel {
			maxLevel = l
		}
	}
	waves := make([][]string, maxLevel+1)
	for _, p := range paths { // paths already sorted: waves stay sorted
		waves[level[p]] = append(waves[level[p]], p)
	}
	out := waves[:0]
	for _, w := range waves {
		if len(w) > 0 {
			out = append(out, w)
		}
	}
	return out
}
