package cdl

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// engineFanoutFS is a miniature of the shared-.cinc fan-out: n configs all
// importing one library.
func engineFanoutFS(n int) (MapFS, []string) {
	fs := MapFS{
		"lib/shared.cinc": `
			schema Job {
				1: string name;
				2: i32 priority = 1;
				3: list<string> tags = [];
			}
			validator Job(c) { assert(c.priority >= 0 && c.priority <= 10, "range"); }
			def mk(name, prio) {
				return Job{name: name, priority: prio, tags: ["managed", name]};
			}
		`,
	}
	paths := make([]string, 0, n)
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("svc/app%02d.cconf", i)
		fs[p] = fmt.Sprintf("import \"lib/shared.cinc\";\nexport mk(\"svc-%02d\", %d);\n", i, i%10)
		paths = append(paths, p)
	}
	return fs, paths
}

// seedCompileAll runs the pre-engine serial path for reference output.
func seedCompileAll(t *testing.T, fs MapFS, paths []string) map[string][]byte {
	t.Helper()
	eng := &Engine{CacheDisabled: true}
	out := make(map[string][]byte, len(paths))
	for _, p := range paths {
		res, err := eng.Compile(fs, p)
		if err != nil {
			t.Fatalf("seed compile %s: %v", p, err)
		}
		out[p] = res.JSON
	}
	return out
}

// TestCompileAllMatchesSeed: engine output (cold, warm, serial, parallel)
// is byte-identical to the seed compiler's.
func TestCompileAllMatchesSeed(t *testing.T) {
	fs, paths := engineFanoutFS(20)
	want := seedCompileAll(t, fs, paths)

	for _, workers := range []int{1, 8} {
		eng := NewEngine()
		eng.Workers = workers
		for round := 0; round < 3; round++ { // round 0 cold, 1-2 warm
			results, err := eng.CompileAll(fs, paths)
			if err != nil {
				t.Fatalf("workers=%d round=%d: %v", workers, round, err)
			}
			if len(results) != len(paths) {
				t.Fatalf("workers=%d round=%d: %d results, want %d", workers, round, len(results), len(paths))
			}
			for i, res := range results {
				if res.Path != paths[i] {
					t.Fatalf("workers=%d round=%d: result %d is %s, want %s (sorted order)", workers, round, i, res.Path, paths[i])
				}
				if !bytes.Equal(res.JSON, want[res.Path]) {
					t.Errorf("workers=%d round=%d: %s differs from seed output", workers, round, res.Path)
				}
			}
		}
	}
}

// TestCompileAllCounters: the fan-out parses every source exactly once
// cold, and a warm identical batch is pure result-cache hits.
func TestCompileAllCounters(t *testing.T) {
	fs, paths := engineFanoutFS(10)
	eng := NewEngine()
	eng.Workers = 1
	if _, err := eng.CompileAll(fs, paths); err != nil {
		t.Fatal(err)
	}
	cold := eng.Counters().Snapshot()
	if cold["parse.miss"] != 11 {
		t.Errorf("cold parse.miss = %d, want 11 (10 configs + 1 shared .cinc)", cold["parse.miss"])
	}
	if _, err := eng.CompileAll(fs, paths); err != nil {
		t.Fatal(err)
	}
	warm := eng.Counters().Snapshot()
	if d := warm["parse.miss"] - cold["parse.miss"]; d != 0 {
		t.Errorf("warm batch parsed %d times, want 0", d)
	}
	if d := warm["module.build"] - cold["module.build"]; d != 0 {
		t.Errorf("warm batch built %d modules, want 0", d)
	}
	if d := warm["result.hit"] - cold["result.hit"]; d != 10 {
		t.Errorf("warm result.hit delta = %d, want 10", d)
	}
}

// TestDiamondParsesOnce: a diamond import graph (root → b, c → d) parses
// each file exactly once per content version.
func TestDiamondParsesOnce(t *testing.T) {
	fs := MapFS{
		"d.cinc":      `let base = 7;`,
		"b.cinc":      `import "d.cinc"; def fromB() { return base + 1; }`,
		"c.cinc":      `import "d.cinc"; def fromC() { return base + 2; }`,
		"root.cconf":  `import "b.cinc"; import "c.cinc"; export {b: fromB(), c: fromC()};`,
		"other.cconf": `import "b.cinc"; import "c.cinc"; export fromB() * fromC();`,
	}
	want := seedCompileAll(t, fs, []string{"root.cconf", "other.cconf"})
	eng := NewEngine()
	eng.Workers = 1
	results, err := eng.CompileAll(fs, []string{"root.cconf", "other.cconf"})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if !bytes.Equal(res.JSON, want[res.Path]) {
			t.Errorf("%s differs from seed output", res.Path)
		}
	}
	if got := eng.Counters().Get("parse.miss"); got != 5 {
		t.Errorf("parse.miss = %d, want 5 (each file once, diamond shared)", got)
	}
}

// TestImpureModuleNotCached: a .cinc whose function mutates module state is
// evaluated fresh every compile, so repeated compiles see identical
// first-call behavior — memoization must not change observable semantics.
func TestImpureModuleNotCached(t *testing.T) {
	fs := MapFS{
		"counter.cinc": `
			let n = 0;
			def bump() {
				n = n + 1;
				return n;
			}
		`,
		"use.cconf": `import "counter.cinc"; export {first: bump(), second: bump()};`,
	}
	want := seedCompileAll(t, fs, []string{"use.cconf"})
	eng := NewEngine()
	for i := 0; i < 3; i++ {
		res, err := eng.Compile(fs, "use.cconf")
		if err != nil {
			t.Fatalf("compile %d: %v", i, err)
		}
		if !bytes.Equal(res.JSON, want["use.cconf"]) {
			t.Errorf("compile %d: %s, want %s", i, res.JSON, want["use.cconf"])
		}
	}
	// Build attempts are fine; serving the impure closure from a cache is
	// not.
	if hits := eng.Counters().Get("module.hit"); hits != 0 {
		t.Errorf("impure module served from module cache: module.hit = %d", hits)
	}
	if hits := eng.Counters().Get("result.hit"); hits != 0 {
		t.Errorf("impure compile served from result cache: result.hit = %d", hits)
	}
}

// TestSchemaContextFallback: `Name{...}` resolves against the compile-wide
// schema namespace, so a library struct-literal can be legal in one root
// config and an error in another. The cache must preserve both behaviors.
func TestSchemaContextFallback(t *testing.T) {
	fs := MapFS{
		"schema.cinc": `schema Job { 1: string name; }`,
		"lib.cinc":    `def mkjob(n) { return Job{name: n}; }`,
		"ok.cconf":    `import "schema.cinc"; import "lib.cinc"; export mkjob("a");`,
		"bad.cconf":   `import "lib.cinc"; export mkjob("b");`,
	}
	seedEng := &Engine{CacheDisabled: true}
	okWant, err := seedEng.Compile(fs, "ok.cconf")
	if err != nil {
		t.Fatal(err)
	}
	_, badErr := seedEng.Compile(fs, "bad.cconf")
	if badErr == nil || !strings.Contains(badErr.Error(), "unknown schema") {
		t.Fatalf("seed bad.cconf error = %v, want unknown schema", badErr)
	}

	// Both orders: caching lib.cinc via one root must not change the other.
	for _, order := range [][]string{{"ok.cconf", "bad.cconf"}, {"bad.cconf", "ok.cconf"}} {
		eng := NewEngine()
		for round := 0; round < 2; round++ {
			for _, p := range order {
				res, err := eng.Compile(fs, p)
				if p == "ok.cconf" {
					if err != nil {
						t.Fatalf("order %v round %d: ok.cconf: %v", order, round, err)
					}
					if !bytes.Equal(res.JSON, okWant.JSON) {
						t.Errorf("order %v round %d: ok.cconf differs from seed", order, round)
					}
				} else {
					if err == nil || err.Error() != badErr.Error() {
						t.Errorf("order %v round %d: bad.cconf error = %v, want %v", order, round, err, badErr)
					}
				}
			}
		}
	}
}

// TestErrorParityColdWarm: compile errors are never served from cache, and
// messages match the seed compiler byte-for-byte, cold and warm.
func TestErrorParityColdWarm(t *testing.T) {
	fs := MapFS{
		"lib/shared.cinc": `
			schema Job { 1: string name; 2: i32 priority = 1; }
			validator Job(c) { assert(c.priority <= 10, "priority too high"); }
			def mk(name, prio) { return Job{name: name, priority: prio}; }
		`,
		"good.cconf":    `import "lib/shared.cinc"; export mk("g", 1);`,
		"invalid.cconf": `import "lib/shared.cinc"; export mk("v", 99);`,
		"noexport.cinc": `let x = 1;`,
		"parse.cconf":   `import ;`,
		"missing.cconf": `import "does/not/exist.cinc"; export 1;`,
	}
	failing := []string{"invalid.cconf", "parse.cconf", "missing.cconf"}
	seedEng := &Engine{CacheDisabled: true}
	wantErr := make(map[string]string)
	for _, p := range failing {
		_, err := seedEng.Compile(fs, p)
		if err == nil {
			t.Fatalf("seed %s: expected error", p)
		}
		wantErr[p] = err.Error()
	}

	eng := NewEngine()
	for round := 0; round < 3; round++ {
		for _, p := range failing {
			_, err := eng.Compile(fs, p)
			if err == nil || err.Error() != wantErr[p] {
				t.Errorf("round %d: %s error = %v, want %q", round, p, err, wantErr[p])
			}
		}
		if _, err := eng.Compile(fs, "good.cconf"); err != nil {
			t.Errorf("round %d: good.cconf: %v", round, err)
		}
	}
}

// TestCompileAllBatchError: the batch error is the lexicographically first
// failing path's error, with successful results still returned sorted.
func TestCompileAllBatchError(t *testing.T) {
	fs := MapFS{
		"lib.cinc":   `def mk(p) { return {prio: p}; }`,
		"a-ok.cconf": `import "lib.cinc"; export mk(1);`,
		"b-bad.cconf": `import "lib.cinc";
			export missing_fn(2);`,
		"c-bad.cconf": `import ;`,
		"d-ok.cconf":  `import "lib.cinc"; export mk(4);`,
	}
	paths := []string{"d-ok.cconf", "c-bad.cconf", "b-bad.cconf", "a-ok.cconf"}
	seedEng := &Engine{CacheDisabled: true}
	_, seedErr := seedEng.Compile(fs, "b-bad.cconf")
	if seedErr == nil {
		t.Fatal("seed b-bad.cconf: expected error")
	}

	for _, workers := range []int{1, 8} {
		eng := NewEngine()
		eng.Workers = workers
		results, err := eng.CompileAll(fs, paths)
		var be *BatchError
		if !errors.As(err, &be) {
			t.Fatalf("workers=%d: error %T, want *BatchError", workers, err)
		}
		if be.Path != "b-bad.cconf" {
			t.Errorf("workers=%d: failing path %s, want b-bad.cconf (first sorted)", workers, be.Path)
		}
		if be.Error() != seedErr.Error() {
			t.Errorf("workers=%d: message %q, want %q", workers, be.Error(), seedErr.Error())
		}
		var got []string
		for _, r := range results {
			got = append(got, r.Path)
		}
		if fmt.Sprint(got) != "[a-ok.cconf d-ok.cconf]" {
			t.Errorf("workers=%d: results %v, want the two passing paths sorted", workers, got)
		}
	}
}

// TestContentChangeSelfInvalidates: editing a file is picked up with no
// explicit invalidation — keys are content hashes.
func TestContentChangeSelfInvalidates(t *testing.T) {
	fs := MapFS{
		"lib.cinc":  `def val() { return 1; }`,
		"a.cconf":   `import "lib.cinc"; export val();`,
		"raw.cconf": `export 10;`,
	}
	eng := NewEngine()
	res, err := eng.Compile(fs, "a.cconf")
	if err != nil {
		t.Fatal(err)
	}
	if string(res.JSON) != "1" {
		t.Fatalf("got %s, want 1", res.JSON)
	}
	fs["lib.cinc"] = `def val() { return 2; }`
	res, err = eng.Compile(fs, "a.cconf")
	if err != nil {
		t.Fatal(err)
	}
	if string(res.JSON) != "2" {
		t.Errorf("after edit got %s, want 2 (stale cache served)", res.JSON)
	}
}

// TestInvalidatePaths evicts exactly the entries whose closure intersects
// the affected set, and compiles keep working afterwards.
func TestInvalidatePaths(t *testing.T) {
	fs, paths := engineFanoutFS(5)
	fs["solo.cconf"] = `export {standalone: true};`
	all := append(append([]string{}, paths...), "solo.cconf")
	eng := NewEngine()
	eng.Workers = 1
	want := seedCompileAll(t, fs, all)
	if _, err := eng.CompileAll(fs, all); err != nil {
		t.Fatal(err)
	}
	dropped := eng.InvalidatePaths("lib/shared.cinc")
	if dropped == 0 {
		t.Fatal("InvalidatePaths dropped nothing")
	}
	// solo.cconf's result survived: next compile is a result-cache hit.
	before := eng.Counters().Get("result.hit")
	if _, err := eng.Compile(fs, "solo.cconf"); err != nil {
		t.Fatal(err)
	}
	if eng.Counters().Get("result.hit") != before+1 {
		t.Error("solo.cconf was invalidated but its closure is disjoint")
	}
	results, err := eng.CompileAll(fs, all)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if !bytes.Equal(res.JSON, want[res.Path]) {
			t.Errorf("%s differs from seed output after invalidation", res.Path)
		}
	}
}

// TestExportLastWins: replayed module effects preserve statement order,
// including exports nested in control flow.
func TestExportLastWins(t *testing.T) {
	fs := MapFS{
		"flow.cinc": `
			export {v: 1};
			let pick = 2;
			if (pick > 1) {
				export {v: pick};
			}
		`,
		"use.cconf": `import "flow.cinc"; export {v: 3};`,
		"own.cconf": `import "flow.cinc";
			let y = 1;`,
	}
	want := seedCompileAll(t, fs, []string{"use.cconf"})
	_, seedErr := (&Engine{CacheDisabled: true}).Compile(fs, "own.cconf")
	eng := NewEngine()
	for round := 0; round < 2; round++ {
		res, err := eng.Compile(fs, "use.cconf")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.JSON, want["use.cconf"]) {
			t.Errorf("round %d: use.cconf = %s, want %s", round, res.JSON, want["use.cconf"])
		}
		// own.cconf has no export of its own; seed semantics decide
		// whether an imported module's export satisfies the requirement —
		// the engine must agree either way.
		_, err = eng.Compile(fs, "own.cconf")
		if (err == nil) != (seedErr == nil) || (err != nil && err.Error() != seedErr.Error()) {
			t.Errorf("round %d: own.cconf error = %v, seed = %v", round, err, seedErr)
		}
	}
}
