package cdl

import (
	"fmt"
	"sort"
	"strings"
)

// Env is a lexically scoped binding environment.
type Env struct {
	parent *Env
	vars   map[string]Value
	// version counts rebinds (Set) landing in this scope. The compiler
	// watches the global env's version to detect a module rebinding a
	// shared builtin — the one case where memoized module environments
	// could diverge from a fresh evaluation — and falls back to an
	// uncached compile when it happens.
	version int
}

// NewEnv returns an environment chained to parent (nil for the root).
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent, vars: make(map[string]Value)}
}

// Lookup resolves a name through the scope chain.
func (e *Env) Lookup(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Define binds a name in this scope.
func (e *Env) Define(name string, v Value) { e.vars[name] = v }

// Set rebinds the nearest existing binding; false if the name is unbound.
func (e *Env) Set(name string, v Value) bool {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			s.version++
			return true
		}
	}
	return false
}

// Names returns the names bound directly in this scope, sorted.
func (e *Env) Names() []string {
	out := make([]string, 0, len(e.vars))
	for n := range e.vars {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// evaluator executes module statements.
type evaluator struct {
	schemas    map[string]*SchemaDef
	validators map[string][]*ValidatorStmt
	exported   Value
	hasExport  bool
	// exportSeq counts export statements executed, letting the compiler
	// detect exports that happen inside nested blocks of a statement it
	// executed (for module-effect recording) without comparing Values.
	exportSeq int
	steps     int
	depth     int
}

// maxSteps bounds evaluation so a buggy config program cannot hang the
// compiler (a validator is production infrastructure, not a sandbox).
const maxSteps = 5_000_000

// maxDepth bounds call recursion so runaway recursion in a config program
// produces a compile error instead of exhausting the host stack.
const maxDepth = 500

type returnSignal struct{ v Value }

func (e *evaluator) tick(pos Pos) error {
	e.steps++
	if e.steps > maxSteps {
		return errf(pos, "evaluation exceeded %d steps (infinite loop?)", maxSteps)
	}
	return nil
}

func (e *evaluator) execBlock(stmts []Stmt, env *Env) (*returnSignal, error) {
	for _, st := range stmts {
		sig, err := e.exec(st, env)
		if err != nil || sig != nil {
			return sig, err
		}
	}
	return nil, nil
}

func (e *evaluator) exec(st Stmt, env *Env) (*returnSignal, error) {
	if err := e.tick(st.stmtPos()); err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *ImportStmt:
		// Imports are resolved by the compiler before evaluation.
		return nil, nil
	case *LetStmt:
		v, err := e.eval(s.Value, env)
		if err != nil {
			return nil, err
		}
		env.Define(s.Name, v)
		return nil, nil
	case *AssignStmt:
		v, err := e.eval(s.Value, env)
		if err != nil {
			return nil, err
		}
		if !env.Set(s.Name, v) {
			return nil, errf(s.Pos, "assignment to undefined variable %q (use let)", s.Name)
		}
		return nil, nil
	case *DefStmt:
		env.Define(s.Name, &Func{Name: s.Name, Params: s.Params, Body: s.Body, Closure: env})
		return nil, nil
	case *ValidatorStmt:
		e.validators[s.Schema] = append(e.validators[s.Schema], s)
		return nil, nil
	case *ExportStmt:
		v, err := e.eval(s.Value, env)
		if err != nil {
			return nil, err
		}
		// export_if_last semantics: the last export wins.
		e.exported = v
		e.hasExport = true
		e.exportSeq++
		return nil, nil
	case *AssertStmt:
		v, err := e.eval(s.Cond, env)
		if err != nil {
			return nil, err
		}
		if !Truthy(v) {
			msg := "assertion failed"
			if s.Message != nil {
				mv, err := e.eval(s.Message, env)
				if err != nil {
					return nil, err
				}
				msg = ToString(mv)
			}
			return nil, errf(s.Pos, "%s", msg)
		}
		return nil, nil
	case *IfStmt:
		c, err := e.eval(s.Cond, env)
		if err != nil {
			return nil, err
		}
		if Truthy(c) {
			return e.execBlock(s.Then, NewEnv(env))
		}
		return e.execBlock(s.Else, NewEnv(env))
	case *ForStmt:
		seq, err := e.eval(s.Seq, env)
		if err != nil {
			return nil, err
		}
		list, ok := seq.(List)
		if !ok {
			return nil, errf(s.Pos, "for expects a list, got %s", seq.TypeName())
		}
		for _, item := range list {
			scope := NewEnv(env)
			scope.Define(s.Var, item)
			sig, err := e.execBlock(s.Body, scope)
			if err != nil || sig != nil {
				return sig, err
			}
		}
		return nil, nil
	case *ReturnStmt:
		if s.Value == nil {
			return &returnSignal{v: Null{}}, nil
		}
		v, err := e.eval(s.Value, env)
		if err != nil {
			return nil, err
		}
		return &returnSignal{v: v}, nil
	case *ExprStmt:
		_, err := e.eval(s.X, env)
		return nil, err
	}
	return nil, errf(st.stmtPos(), "unknown statement %T", st)
}

func (e *evaluator) eval(x Expr, env *Env) (Value, error) {
	if err := e.tick(x.exprPos()); err != nil {
		return nil, err
	}
	switch ex := x.(type) {
	case *LitExpr:
		return ex.Val, nil
	case *IdentExpr:
		if v, ok := env.Lookup(ex.Name); ok {
			return v, nil
		}
		return nil, errf(ex.Pos, "undefined name %q", ex.Name)
	case *ListExpr:
		out := make(List, 0, len(ex.Elems))
		for _, el := range ex.Elems {
			v, err := e.eval(el, env)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case *MapExpr:
		out := make(Map, len(ex.Keys))
		for i := range ex.Keys {
			k, err := e.eval(ex.Keys[i], env)
			if err != nil {
				return nil, err
			}
			ks, ok := k.(Str)
			if !ok {
				return nil, errf(ex.Keys[i].exprPos(), "map key must be string, got %s", k.TypeName())
			}
			v, err := e.eval(ex.Values[i], env)
			if err != nil {
				return nil, err
			}
			out[string(ks)] = v
		}
		return out, nil
	case *StructExpr:
		if sd, ok := e.schemas[ex.Type]; ok {
			return e.buildStruct(ex, sd, env)
		}
		// Not a schema: maybe `x{...}` update syntax on a variable.
		if base, ok := env.Lookup(ex.Type); ok {
			return e.applyUpdate(ex.Pos, base, ex.Names, ex.Values, env)
		}
		return nil, errf(ex.Pos, "unknown schema %q", ex.Type)
	case *UpdateExpr:
		base, err := e.eval(ex.Base, env)
		if err != nil {
			return nil, err
		}
		return e.applyUpdate(ex.Pos, base, ex.Names, ex.Values, env)
	case *FieldExpr:
		base, err := e.eval(ex.Base, env)
		if err != nil {
			return nil, err
		}
		switch b := base.(type) {
		case *Struct:
			if v, ok := b.Fields[ex.Name]; ok {
				return v, nil
			}
			return nil, errf(ex.Pos, "%s has no field %q", b.Schema, ex.Name)
		case Map:
			if v, ok := b[ex.Name]; ok {
				return v, nil
			}
			return Null{}, nil
		}
		return nil, errf(ex.Pos, "cannot access field %q on %s", ex.Name, base.TypeName())
	case *IndexExpr:
		base, err := e.eval(ex.Base, env)
		if err != nil {
			return nil, err
		}
		idx, err := e.eval(ex.Index, env)
		if err != nil {
			return nil, err
		}
		switch b := base.(type) {
		case List:
			i, ok := idx.(Int)
			if !ok {
				return nil, errf(ex.Pos, "list index must be int, got %s", idx.TypeName())
			}
			if i < 0 || int(i) >= len(b) {
				return nil, errf(ex.Pos, "list index %d out of range [0,%d)", i, len(b))
			}
			return b[i], nil
		case Map:
			k, ok := idx.(Str)
			if !ok {
				return nil, errf(ex.Pos, "map key must be string, got %s", idx.TypeName())
			}
			if v, ok := b[string(k)]; ok {
				return v, nil
			}
			return Null{}, nil
		case Str:
			i, ok := idx.(Int)
			if !ok {
				return nil, errf(ex.Pos, "string index must be int")
			}
			if i < 0 || int(i) >= len(b) {
				return nil, errf(ex.Pos, "string index %d out of range", i)
			}
			return Str(b[i : i+1]), nil
		}
		return nil, errf(ex.Pos, "cannot index %s", base.TypeName())
	case *CallExpr:
		fn, err := e.eval(ex.Fn, env)
		if err != nil {
			return nil, err
		}
		args := make([]Value, len(ex.Args))
		for i, a := range ex.Args {
			v, err := e.eval(a, env)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return e.call(ex.Pos, fn, args)
	case *UnaryExpr:
		v, err := e.eval(ex.X, env)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case "-":
			switch n := v.(type) {
			case Int:
				return -n, nil
			case Float:
				return -n, nil
			}
			return nil, errf(ex.Pos, "cannot negate %s", v.TypeName())
		case "!":
			return Bool(!Truthy(v)), nil
		}
	case *BinaryExpr:
		return e.evalBinary(ex, env)
	case *CondExpr:
		c, err := e.eval(ex.Cond, env)
		if err != nil {
			return nil, err
		}
		if Truthy(c) {
			return e.eval(ex.A, env)
		}
		return e.eval(ex.B, env)
	}
	return nil, errf(x.exprPos(), "unknown expression %T", x)
}

// resolveFields returns a schema's full field list, base fields first,
// walking the inheritance chain. It rejects unknown bases, cycles, and
// fields redefined along the chain.
func (e *evaluator) resolveFields(pos Pos, sd *SchemaDef) ([]*FieldDef, error) {
	var chain []*SchemaDef
	seen := make(map[string]bool)
	for cur := sd; ; {
		if seen[cur.Name] {
			return nil, errf(pos, "schema inheritance cycle through %q", cur.Name)
		}
		seen[cur.Name] = true
		chain = append([]*SchemaDef{cur}, chain...)
		if cur.Extends == "" {
			break
		}
		base, ok := e.schemas[cur.Extends]
		if !ok {
			return nil, errf(pos, "schema %q extends unknown schema %q", cur.Name, cur.Extends)
		}
		cur = base
	}
	var fields []*FieldDef
	names := make(map[string]bool)
	for _, s := range chain {
		for _, f := range s.Fields {
			if names[f.Name] {
				return nil, errf(pos, "field %q redefined in schema %q inheritance chain", f.Name, sd.Name)
			}
			names[f.Name] = true
			fields = append(fields, f)
		}
	}
	return fields, nil
}

// lookupField resolves a field through the inheritance chain (nil when the
// schema has no such field).
func (e *evaluator) lookupField(pos Pos, sd *SchemaDef, name string) (*FieldDef, error) {
	fields, err := e.resolveFields(pos, sd)
	if err != nil {
		return nil, err
	}
	for _, f := range fields {
		if f.Name == name {
			return f, nil
		}
	}
	return nil, nil
}

func (e *evaluator) buildStruct(ex *StructExpr, sd *SchemaDef, env *Env) (Value, error) {
	s := &Struct{Schema: sd.Name, Fields: make(map[string]Value)}
	for i, name := range ex.Names {
		f, err := e.lookupField(ex.Pos, sd, name)
		if err != nil {
			return nil, err
		}
		if f == nil {
			return nil, errf(ex.Pos, "schema %s has no field %q", sd.Name, name)
		}
		v, err := e.eval(ex.Values[i], env)
		if err != nil {
			return nil, err
		}
		s.Fields[name] = v
	}
	return s, nil
}

func (e *evaluator) applyUpdate(pos Pos, base Value, names []string, values []Expr, env *Env) (Value, error) {
	switch b := base.(type) {
	case *Struct:
		out := CopyStruct(b)
		sd := e.schemas[b.Schema]
		for i, name := range names {
			if sd != nil {
				f, err := e.lookupField(pos, sd, name)
				if err != nil {
					return nil, err
				}
				if f == nil {
					return nil, errf(pos, "schema %s has no field %q", b.Schema, name)
				}
			}
			v, err := e.eval(values[i], env)
			if err != nil {
				return nil, err
			}
			out.Fields[name] = v
		}
		return out, nil
	case Map:
		out := make(Map, len(b)+len(names))
		for k, v := range b {
			out[k] = v
		}
		for i, name := range names {
			v, err := e.eval(values[i], env)
			if err != nil {
				return nil, err
			}
			out[name] = v
		}
		return out, nil
	}
	return nil, errf(pos, "cannot update fields on %s", base.TypeName())
}

func (e *evaluator) call(pos Pos, fn Value, args []Value) (Value, error) {
	switch f := fn.(type) {
	case *Builtin:
		return f.Fn(pos, args)
	case *Func:
		if len(args) != len(f.Params) {
			return nil, errf(pos, "%s expects %d args, got %d", f.Name, len(f.Params), len(args))
		}
		e.depth++
		defer func() { e.depth-- }()
		if e.depth > maxDepth {
			return nil, errf(pos, "call depth exceeded %d steps (runaway recursion?)", maxDepth)
		}
		scope := NewEnv(f.Closure)
		for i, p := range f.Params {
			scope.Define(p, args[i])
		}
		sig, err := e.execBlock(f.Body, scope)
		if err != nil {
			return nil, err
		}
		if sig != nil {
			return sig.v, nil
		}
		return Null{}, nil
	}
	return nil, errf(pos, "%s is not callable", fn.TypeName())
}

func (e *evaluator) evalBinary(ex *BinaryExpr, env *Env) (Value, error) {
	// Short-circuit logicals first.
	switch ex.Op {
	case "&&":
		x, err := e.eval(ex.X, env)
		if err != nil {
			return nil, err
		}
		if !Truthy(x) {
			return Bool(false), nil
		}
		y, err := e.eval(ex.Y, env)
		if err != nil {
			return nil, err
		}
		return Bool(Truthy(y)), nil
	case "||":
		x, err := e.eval(ex.X, env)
		if err != nil {
			return nil, err
		}
		if Truthy(x) {
			return Bool(true), nil
		}
		y, err := e.eval(ex.Y, env)
		if err != nil {
			return nil, err
		}
		return Bool(Truthy(y)), nil
	}
	x, err := e.eval(ex.X, env)
	if err != nil {
		return nil, err
	}
	y, err := e.eval(ex.Y, env)
	if err != nil {
		return nil, err
	}
	switch ex.Op {
	case "==":
		return Bool(Equal(x, y)), nil
	case "!=":
		return Bool(!Equal(x, y)), nil
	}
	// String ops.
	if xs, ok := x.(Str); ok {
		switch ex.Op {
		case "+":
			if ys, ok := y.(Str); ok {
				return xs + ys, nil
			}
			return nil, errf(ex.Pos, "cannot add string and %s (use str())", y.TypeName())
		case "<", "<=", ">", ">=":
			ys, ok := y.(Str)
			if !ok {
				return nil, errf(ex.Pos, "cannot compare string and %s", y.TypeName())
			}
			return compareResult(ex.Op, strings.Compare(string(xs), string(ys))), nil
		}
	}
	// List concatenation.
	if xl, ok := x.(List); ok && ex.Op == "+" {
		yl, ok := y.(List)
		if !ok {
			return nil, errf(ex.Pos, "cannot add list and %s", y.TypeName())
		}
		out := make(List, 0, len(xl)+len(yl))
		out = append(out, xl...)
		return append(out, yl...), nil
	}
	// Numeric ops.
	xi, xIsInt := x.(Int)
	yi, yIsInt := y.(Int)
	if xIsInt && yIsInt {
		switch ex.Op {
		case "+":
			return xi + yi, nil
		case "-":
			return xi - yi, nil
		case "*":
			return xi * yi, nil
		case "/":
			if yi == 0 {
				return nil, errf(ex.Pos, "division by zero")
			}
			return xi / yi, nil
		case "%":
			if yi == 0 {
				return nil, errf(ex.Pos, "modulo by zero")
			}
			return xi % yi, nil
		case "<", "<=", ">", ">=":
			switch {
			case xi < yi:
				return compareResult(ex.Op, -1), nil
			case xi > yi:
				return compareResult(ex.Op, 1), nil
			default:
				return compareResult(ex.Op, 0), nil
			}
		}
	}
	xf, xok := toFloat(x)
	yf, yok := toFloat(y)
	if xok && yok {
		switch ex.Op {
		case "+":
			return Float(xf + yf), nil
		case "-":
			return Float(xf - yf), nil
		case "*":
			return Float(xf * yf), nil
		case "/":
			if yf == 0 {
				return nil, errf(ex.Pos, "division by zero")
			}
			return Float(xf / yf), nil
		case "<", "<=", ">", ">=":
			switch {
			case xf < yf:
				return compareResult(ex.Op, -1), nil
			case xf > yf:
				return compareResult(ex.Op, 1), nil
			default:
				return compareResult(ex.Op, 0), nil
			}
		}
	}
	return nil, errf(ex.Pos, "invalid operands for %q: %s and %s", ex.Op, x.TypeName(), y.TypeName())
}

func compareResult(op string, cmp int) Bool {
	switch op {
	case "<":
		return cmp < 0
	case "<=":
		return cmp <= 0
	case ">":
		return cmp > 0
	case ">=":
		return cmp >= 0
	}
	panic(fmt.Sprintf("cdl: bad comparison op %q", op))
}

func toFloat(v Value) (float64, bool) {
	switch n := v.(type) {
	case Int:
		return float64(n), true
	case Float:
		return float64(n), true
	}
	return 0, false
}
