package cdl

import (
	"strings"
	"testing"
)

// Config inheritance — the abstraction improvement the paper lists as
// future work (§8), implemented here: `schema Derived extends Base`.

var inheritFS = MapFS{
	"base.cinc": `
		schema Service {
			1: string name;
			2: i32 port = 8080;
			3: bool tls = true;
		}
		validator Service(s) {
			assert(len(s.name) > 0, "name required");
			assert(s.port > 0 && s.port < 65536, "port range");
		}
	`,
	"derived.cinc": `
		import "base.cinc";
		schema WebService extends Service {
			4: i32 worker_threads = 8;
			5: list<string> vhosts = [];
		}
		validator WebService(w) {
			assert(w.worker_threads >= 1, "need workers");
		}
	`,
}

func withInherit(extra MapFS) MapFS {
	fs := MapFS{}
	for k, v := range inheritFS {
		fs[k] = v
	}
	for k, v := range extra {
		fs[k] = v
	}
	return fs
}

func TestInheritedFieldsAndDefaults(t *testing.T) {
	fs := withInherit(MapFS{"web.cconf": `
		import "derived.cinc";
		export WebService{name: "frontend", vhosts: ["a.example"]};
	`})
	res := compileOne(t, fs, "web.cconf")
	want := `{"name":"frontend","port":8080,"tls":true,"vhosts":["a.example"],"worker_threads":8}`
	if string(res.JSON) != want {
		t.Errorf("JSON = %s\nwant  %s", res.JSON, want)
	}
}

func TestBaseFieldSettableOnDerived(t *testing.T) {
	fs := withInherit(MapFS{"web.cconf": `
		import "derived.cinc";
		let w = WebService{name: "x", port: 9090};
		let w2 = w{port: 9191, worker_threads: 16};
		export {p: w2.port, t: w2.worker_threads};
	`})
	res := compileOne(t, fs, "web.cconf")
	if string(res.JSON) != `{"p":9191,"t":16}` {
		t.Errorf("JSON = %s", res.JSON)
	}
}

func TestBaseValidatorRunsOnDerived(t *testing.T) {
	fs := withInherit(MapFS{"web.cconf": `
		import "derived.cinc";
		export WebService{name: "x", port: 99999};
	`})
	err := compileErr(t, fs, "web.cconf")
	if !strings.Contains(err.Error(), "port range") {
		t.Errorf("base validator did not run: %v", err)
	}
}

func TestDerivedValidatorRuns(t *testing.T) {
	fs := withInherit(MapFS{"web.cconf": `
		import "derived.cinc";
		export WebService{name: "x", worker_threads: 0};
	`})
	err := compileErr(t, fs, "web.cconf")
	if !strings.Contains(err.Error(), "need workers") {
		t.Errorf("derived validator did not run: %v", err)
	}
}

func TestUnknownFieldStillRejected(t *testing.T) {
	fs := withInherit(MapFS{"web.cconf": `
		import "derived.cinc";
		export WebService{name: "x", prot: 1};
	`})
	err := compileErr(t, fs, "web.cconf")
	if !strings.Contains(err.Error(), "no field") {
		t.Errorf("err = %v", err)
	}
}

func TestExtendsUnknownBase(t *testing.T) {
	fs := MapFS{"bad.cconf": `
		schema D extends Missing { 1: i32 x = 0; }
		export D{};
	`}
	err := compileErr(t, fs, "bad.cconf")
	if !strings.Contains(err.Error(), "unknown schema") {
		t.Errorf("err = %v", err)
	}
}

func TestInheritanceCycleRejected(t *testing.T) {
	fs := MapFS{"cyc.cconf": `
		schema A extends B { 1: i32 x = 0; }
		schema B extends A { 1: i32 y = 0; }
		export A{};
	`}
	err := compileErr(t, fs, "cyc.cconf")
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("err = %v", err)
	}
}

func TestFieldRedefinitionAcrossChainRejected(t *testing.T) {
	fs := MapFS{"dup.cconf": `
		schema Base { 1: i32 x = 0; }
		schema D extends Base { 2: i32 x = 1; }
		export D{};
	`}
	err := compileErr(t, fs, "dup.cconf")
	if !strings.Contains(err.Error(), "redefined") {
		t.Errorf("err = %v", err)
	}
}

func TestThreeLevelChain(t *testing.T) {
	fs := MapFS{"deep.cconf": `
		schema A { 1: i32 a = 1; }
		schema B extends A { 2: i32 b = 2; }
		schema C extends B { 3: i32 c = 3; }
		validator A(v) { assert(v.a > 0, "a positive"); }
		export C{c: 30};
	`}
	res := compileOne(t, fs, "deep.cconf")
	if string(res.JSON) != `{"a":1,"b":2,"c":30}` {
		t.Errorf("JSON = %s", res.JSON)
	}
	bad := MapFS{"deep.cconf": `
		schema A { 1: i32 a = 1; }
		schema B extends A { 2: i32 b = 2; }
		schema C extends B { 3: i32 c = 3; }
		validator A(v) { assert(v.a > 0, "a positive"); }
		export C{a: -1};
	`}
	err := compileErr(t, bad, "deep.cconf")
	if !strings.Contains(err.Error(), "a positive") {
		t.Errorf("grandparent validator did not run: %v", err)
	}
}
