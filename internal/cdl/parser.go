package cdl

import "fmt"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
	file string
}

// Parse parses one CDL source file into a Module.
func Parse(file, src string) (*Module, error) {
	toks, err := lexAll(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, file: file}
	m := &Module{Path: file}
	for !p.at(tokEOF, "") {
		st, err := p.parseTopLevel(m)
		if err != nil {
			return nil, err
		}
		if st != nil {
			m.Stmts = append(m.Stmts, st)
		}
	}
	return m, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

// last returns the end position of the most recently consumed token — the
// end position of whatever construct just finished parsing.
func (p *parser) last() Pos { return p.toks[p.i-1].end }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	return text == "" || t.text == text
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.cur()
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, errf(t.pos, "expected %q, found %q", want, t.text)
}

func (p *parser) parseTopLevel(m *Module) (Stmt, error) {
	t := p.cur()
	if t.kind == tokKeyword {
		switch t.text {
		case "import":
			st, err := p.parseImport()
			if err != nil {
				return nil, err
			}
			m.Imports = append(m.Imports, st)
			return st, nil
		case "schema":
			sd, err := p.parseSchema()
			if err != nil {
				return nil, err
			}
			m.Schemas = append(m.Schemas, sd)
			return nil, nil
		}
	}
	return p.parseStmt()
}

func (p *parser) parseImport() (*ImportStmt, error) {
	kw, _ := p.expect(tokKeyword, "import")
	pathTok, err := p.expect(tokString, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &ImportStmt{Pos: kw.pos, End: p.last(), Path: pathTok.strVal,
		PathPos: pathTok.pos, PathEnd: pathTok.end}, nil
}

func (p *parser) parseSchema() (*SchemaDef, error) {
	kw, _ := p.expect(tokKeyword, "schema")
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	sd := &SchemaDef{Name: name.text, Pos: kw.pos}
	if p.at(tokIdent, "extends") {
		p.next()
		base, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		sd.Extends = base.text
	}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	seenIDs := make(map[int]bool)
	seenNames := make(map[string]bool)
	for !p.accept(tokPunct, "}") {
		idTok, err := p.expect(tokInt, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ":"); err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fname, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		fd := &FieldDef{ID: int(idTok.intVal), Type: typ, Name: fname.text, Pos: idTok.pos}
		if seenIDs[fd.ID] {
			return nil, errf(idTok.pos, "duplicate field id %d in schema %s", fd.ID, sd.Name)
		}
		if seenNames[fd.Name] {
			return nil, errf(fname.pos, "duplicate field name %q in schema %s", fd.Name, sd.Name)
		}
		seenIDs[fd.ID] = true
		seenNames[fd.Name] = true
		if p.accept(tokOp, "=") {
			def, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fd.Default = def
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		fd.End = p.last()
		sd.Fields = append(sd.Fields, fd)
	}
	sd.End = p.last()
	return sd, nil
}

func (p *parser) parseType() (*TypeExpr, error) {
	te, err := p.parseTypeInner()
	if err != nil {
		return nil, err
	}
	te.End = p.last()
	return te, nil
}

func (p *parser) parseTypeInner() (*TypeExpr, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, errf(t.pos, "expected type name, found %q", t.text)
	}
	p.next()
	te := &TypeExpr{Pos: t.pos}
	switch t.text {
	case "bool":
		te.Kind = KindBool
	case "i32":
		te.Kind = KindI32
	case "i64":
		te.Kind = KindI64
	case "double":
		te.Kind = KindDouble
	case "string":
		te.Kind = KindString
	case "list":
		te.Kind = KindList
		if _, err := p.expect(tokOp, "<"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		te.Elem = elem
		if _, err := p.expect(tokOp, ">"); err != nil {
			return nil, err
		}
	case "map":
		te.Kind = KindMap
		if _, err := p.expect(tokOp, "<"); err != nil {
			return nil, err
		}
		key, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if key.Kind != KindString {
			return nil, errf(key.Pos, "map keys must be string (JSON object keys)")
		}
		if _, err := p.expect(tokPunct, ","); err != nil {
			return nil, err
		}
		val, err := p.parseType()
		if err != nil {
			return nil, err
		}
		te.Elem = val
		if _, err := p.expect(tokOp, ">"); err != nil {
			return nil, err
		}
	default:
		te.Kind = KindStruct
		te.Name = t.text
	}
	return te, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.accept(tokPunct, "}") {
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	if t.kind == tokKeyword {
		switch t.text {
		case "let":
			p.next()
			name, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, "="); err != nil {
				return nil, err
			}
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			return &LetStmt{Pos: t.pos, End: p.last(), Name: name.text, Value: v,
				NamePos: name.pos, NameEnd: name.end}, nil
		case "def":
			p.next()
			name, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			var params []string
			for !p.accept(tokPunct, ")") {
				if len(params) > 0 {
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
				pn, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				params = append(params, pn.text)
			}
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			return &DefStmt{Pos: t.pos, End: p.last(), Name: name.text, Params: params, Body: body,
				NamePos: name.pos, NameEnd: name.end}, nil
		case "validator":
			p.next()
			schema, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			param, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			return &ValidatorStmt{Pos: t.pos, End: p.last(), Schema: schema.text, Param: param.text, Body: body}, nil
		case "export":
			p.next()
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			return &ExportStmt{Pos: t.pos, End: p.last(), Value: v}, nil
		case "assert":
			p.next()
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			var msg Expr
			if p.accept(tokPunct, ",") {
				msg, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			return &AssertStmt{Pos: t.pos, End: p.last(), Cond: cond, Message: msg}, nil
		case "if":
			return p.parseIf()
		case "for":
			// `for (x in seq) { ... }` — the parens avoid the classic
			// composite-literal ambiguity with `seq {`.
			p.next()
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			v, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "in"); err != nil {
				return nil, err
			}
			seq, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			return &ForStmt{Pos: t.pos, End: p.last(), Var: v.text, Seq: seq, Body: body}, nil
		case "return":
			p.next()
			if p.accept(tokPunct, ";") {
				return &ReturnStmt{Pos: t.pos, End: p.last()}, nil
			}
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			return &ReturnStmt{Pos: t.pos, End: p.last(), Value: v}, nil
		case "import", "schema":
			return nil, errf(t.pos, "%s is only allowed at top level", t.text)
		}
	}
	// assignment or expression statement
	if t.kind == tokIdent && p.toks[p.i+1].is(tokOp, "=") {
		p.next()
		p.next()
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: t.pos, End: p.last(), Name: t.text, Value: v}, nil
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: t.pos, End: p.last(), X: x}, nil
}

func (p *parser) parseIf() (Stmt, error) {
	kw, _ := p.expect(tokKeyword, "if")
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Pos: kw.pos, End: p.last(), Cond: cond, Then: then}
	if p.accept(tokKeyword, "else") {
		if p.at(tokKeyword, "if") {
			elseIf, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = []Stmt{elseIf}
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		st.End = p.last()
	}
	return st, nil
}

// ---- Expressions (precedence climbing) ----

func (p *parser) parseExpr() (Expr, error) { return p.parseCond() }

func (p *parser) parseCond() (Expr, error) {
	cond, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.accept(tokPunct, "?") {
		return cond, nil
	}
	a, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ":"); err != nil {
		return nil, err
	}
	b, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Pos: cond.exprPos(), End: b.exprEnd(), Cond: cond, A: a, B: b}, nil
}

func (p *parser) parseOr() (Expr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "||") {
		op := p.next()
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos: op.pos, End: y.exprEnd(), Op: "||", X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseAnd() (Expr, error) {
	x, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "&&") {
		op := p.next()
		y, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos: op.pos, End: y.exprEnd(), Op: "&&", X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseCmp() (Expr, error) {
	x, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokOp {
			return x, nil
		}
		switch t.text {
		case "==", "!=", "<", "<=", ">", ">=":
			p.next()
			y, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			x = &BinaryExpr{Pos: t.pos, End: y.exprEnd(), Op: t.text, X: x, Y: y}
		default:
			return x, nil
		}
	}
}

func (p *parser) parseAdd() (Expr, error) {
	x, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "+") || p.at(tokOp, "-") {
		op := p.next()
		y, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos: op.pos, End: y.exprEnd(), Op: op.text, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseMul() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "*") || p.at(tokOp, "/") || p.at(tokOp, "%") {
		op := p.next()
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Pos: op.pos, End: y.exprEnd(), Op: op.text, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.is(tokOp, "-") || t.is(tokOp, "!") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.pos, End: x.exprEnd(), Op: t.text, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case t.is(tokPunct, "."):
			p.next()
			name, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			x = &FieldExpr{Pos: t.pos, End: name.end, Base: x, Name: name.text}
		case t.is(tokPunct, "["):
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{Pos: t.pos, End: p.last(), Base: x, Index: idx}
		case t.is(tokPunct, "("):
			p.next()
			var args []Expr
			for !p.accept(tokPunct, ")") {
				if len(args) > 0 {
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			x = &CallExpr{Pos: t.pos, End: p.last(), Fn: x, Args: args}
		case t.is(tokPunct, "{"):
			// Struct update on a non-identifier base, or struct literal on
			// an identifier base. An identifier followed by '{' is a struct
			// literal when the identifier names a type (decided at eval);
			// we parse both as the same shape.
			names, values, err := p.parseFieldInits()
			if err != nil {
				return nil, err
			}
			if id, ok := x.(*IdentExpr); ok {
				x = &StructExpr{Pos: id.Pos, End: p.last(), Type: id.Name, Names: names, Values: values}
			} else {
				x = &UpdateExpr{Pos: t.pos, End: p.last(), Base: x, Names: names, Values: values}
			}
		default:
			return x, nil
		}
	}
}

// parseFieldInits parses "{name: expr, ...}".
func (p *parser) parseFieldInits() ([]string, []Expr, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, nil, err
	}
	var names []string
	var values []Expr
	for !p.accept(tokPunct, "}") {
		if len(names) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, nil, err
			}
			if p.accept(tokPunct, "}") { // trailing comma
				return names, values, nil
			}
		}
		n, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, nil, err
		}
		if _, err := p.expect(tokPunct, ":"); err != nil {
			return nil, nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, nil, err
		}
		names = append(names, n.text)
		values = append(values, v)
	}
	return names, values, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.next()
		return &LitExpr{Pos: t.pos, End: t.end, Val: Int(t.intVal)}, nil
	case tokFloat:
		p.next()
		return &LitExpr{Pos: t.pos, End: t.end, Val: Float(t.floatVal)}, nil
	case tokString:
		p.next()
		return &LitExpr{Pos: t.pos, End: t.end, Val: Str(t.strVal)}, nil
	case tokKeyword:
		switch t.text {
		case "true":
			p.next()
			return &LitExpr{Pos: t.pos, End: t.end, Val: Bool(true)}, nil
		case "false":
			p.next()
			return &LitExpr{Pos: t.pos, End: t.end, Val: Bool(false)}, nil
		case "null":
			p.next()
			return &LitExpr{Pos: t.pos, End: t.end, Val: Null{}}, nil
		}
	case tokIdent:
		p.next()
		return &IdentExpr{Pos: t.pos, End: t.end, Name: t.text}, nil
	case tokPunct:
		switch t.text {
		case "(":
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return x, nil
		case "[":
			p.next()
			var elems []Expr
			for !p.accept(tokPunct, "]") {
				if len(elems) > 0 {
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
					if p.accept(tokPunct, "]") {
						return &ListExpr{Pos: t.pos, End: p.last(), Elems: elems}, nil
					}
				}
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
			}
			return &ListExpr{Pos: t.pos, End: p.last(), Elems: elems}, nil
		case "{":
			p.next()
			m := &MapExpr{Pos: t.pos}
			for !p.accept(tokPunct, "}") {
				if len(m.Keys) > 0 {
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
					if p.accept(tokPunct, "}") {
						m.End = p.last()
						return m, nil
					}
				}
				var k Expr
				kt := p.cur()
				if kt.kind == tokString {
					p.next()
					k = &LitExpr{Pos: kt.pos, End: kt.end, Val: Str(kt.strVal)}
				} else if kt.kind == tokIdent {
					p.next()
					k = &LitExpr{Pos: kt.pos, End: kt.end, Val: Str(kt.text)}
				} else {
					return nil, errf(kt.pos, "map key must be a string or identifier")
				}
				if _, err := p.expect(tokPunct, ":"); err != nil {
					return nil, err
				}
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				m.Keys = append(m.Keys, k)
				m.Values = append(m.Values, v)
			}
			m.End = p.last()
			return m, nil
		}
	}
	return nil, errf(t.pos, "unexpected token %q", t.text)
}
