package cdl

import (
	"strings"
	"testing"
)

// offsetOf converts a (line, col) position back to a byte offset in src.
func offsetOf(t *testing.T, lines []string, p Pos) int {
	t.Helper()
	if p.Line < 1 || p.Line > len(lines)+1 {
		t.Fatalf("position %v: line out of range (have %d lines)", p, len(lines))
	}
	off := 0
	for i := 0; i < p.Line-1; i++ {
		off += len(lines[i]) + 1 // +1 for the newline
	}
	return off + p.Col - 1
}

// collectNodes gathers every statement and expression in the module.
func collectNodes(mod *Module) (stmts []Stmt, exprs []Expr) {
	var walkExpr func(Expr)
	var walkStmts func([]Stmt)
	walkExpr = func(x Expr) {
		if x == nil {
			return
		}
		exprs = append(exprs, x)
		switch e := x.(type) {
		case *ListExpr:
			for _, el := range e.Elems {
				walkExpr(el)
			}
		case *MapExpr:
			for i := range e.Keys {
				walkExpr(e.Keys[i])
				walkExpr(e.Values[i])
			}
		case *StructExpr:
			for _, v := range e.Values {
				walkExpr(v)
			}
		case *UpdateExpr:
			walkExpr(e.Base)
			for _, v := range e.Values {
				walkExpr(v)
			}
		case *FieldExpr:
			walkExpr(e.Base)
		case *IndexExpr:
			walkExpr(e.Base)
			walkExpr(e.Index)
		case *CallExpr:
			walkExpr(e.Fn)
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *UnaryExpr:
			walkExpr(e.X)
		case *BinaryExpr:
			walkExpr(e.X)
			walkExpr(e.Y)
		case *CondExpr:
			walkExpr(e.Cond)
			walkExpr(e.A)
			walkExpr(e.B)
		}
	}
	walkStmts = func(list []Stmt) {
		for _, st := range list {
			stmts = append(stmts, st)
			switch s := st.(type) {
			case *LetStmt:
				walkExpr(s.Value)
			case *AssignStmt:
				walkExpr(s.Value)
			case *DefStmt:
				walkStmts(s.Body)
			case *ValidatorStmt:
				walkStmts(s.Body)
			case *ExportStmt:
				walkExpr(s.Value)
			case *AssertStmt:
				walkExpr(s.Cond)
				walkExpr(s.Message)
			case *IfStmt:
				walkExpr(s.Cond)
				walkStmts(s.Then)
				walkStmts(s.Else)
			case *ForStmt:
				walkExpr(s.Seq)
				walkStmts(s.Body)
			case *ReturnStmt:
				walkExpr(s.Value)
			case *ExprStmt:
				walkExpr(s.X)
			}
		}
	}
	walkStmts(mod.Stmts)
	return stmts, exprs
}

// TestPositionRoundTrip parses a module exercising every node kind and
// checks that each node's (start, end) range maps back onto the exact
// source text it was parsed from.
func TestPositionRoundTrip(t *testing.T) {
	src := `import "lib/dep.cinc";
schema Job extends Base {
	1: string name;
	2: i32 priority = 3 + 4;
	3: list<string> tags = [];
	4: map<string, i64> limits = {};
}
validator Job(c) {
	assert(c.priority >= 0, "bad " + "priority");
}
let xs = [1, 2.5, "three", true, false, null];
let m = {a: 1, "b": xs[0], c: -xs[1]};
def mk(name, pri) {
	if (pri > 5) {
		return Job{name: name, priority: pri};
	} else {
		return Job{name: name};
	}
}
let total = 0;
for (i in range(3)) {
	total = total + i;
}
let j = mk("x", 1 < 2 ? 9 : total);
let j2 = j{priority: len(str(total))};
export (j2);
`
	mod, err := Parse("round.cconf", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	lines := strings.Split(src, "\n")
	stmts, exprs := collectNodes(mod)
	if len(stmts) < 14 || len(exprs) < 40 {
		t.Fatalf("walker found too few nodes: %d stmts, %d exprs", len(stmts), len(exprs))
	}

	checkRange := func(desc string, start, end Pos) (string, bool) {
		if start.Line == 0 || end.Line == 0 {
			t.Errorf("%s: missing position (start=%v end=%v)", desc, start, end)
			return "", false
		}
		so, eo := offsetOf(t, lines, start), offsetOf(t, lines, end)
		if so >= eo {
			t.Errorf("%s: empty or inverted range %v..%v", desc, start, end)
			return "", false
		}
		if eo > len(src) {
			t.Errorf("%s: end %v beyond source", desc, end)
			return "", false
		}
		return src[so:eo], true
	}

	for _, st := range stmts {
		text, ok := checkRange(nodeDesc(st), StmtPos(st), StmtEnd(st))
		if !ok {
			continue
		}
		// Every statement's source text ends in ';' or a block '}'.
		if last := text[len(text)-1]; last != ';' && last != '}' {
			t.Errorf("stmt %T at %v: range %q does not end a statement", st, StmtPos(st), text)
		}
	}
	for _, x := range exprs {
		text, ok := checkRange(nodeDesc(x), ExprPos(x), ExprEnd(x))
		if !ok {
			continue
		}
		switch e := x.(type) {
		case *IdentExpr:
			if text != e.Name {
				t.Errorf("ident at %v: range covers %q, want %q", e.Pos, text, e.Name)
			}
		case *ListExpr:
			if text[0] != '[' || text[len(text)-1] != ']' {
				t.Errorf("list at %v: range covers %q", e.Pos, text)
			}
		case *MapExpr:
			if text[0] != '{' || text[len(text)-1] != '}' {
				t.Errorf("map at %v: range covers %q", e.Pos, text)
			}
		case *StructExpr:
			if !strings.HasPrefix(text, e.Type) || text[len(text)-1] != '}' {
				t.Errorf("struct at %v: range covers %q", e.Pos, text)
			}
		case *CallExpr:
			if text[len(text)-1] != ')' {
				t.Errorf("call at %v: range covers %q", e.Pos, text)
			}
		case *IndexExpr:
			if text[len(text)-1] != ']' {
				t.Errorf("index at %v: range covers %q", e.Pos, text)
			}
		case *UpdateExpr:
			if text[len(text)-1] != '}' {
				t.Errorf("update at %v: range covers %q", e.Pos, text)
			}
		}
	}

	// BinaryExpr spans X start..Y end even though Pos is the operator.
	for _, x := range exprs {
		if b, ok := x.(*BinaryExpr); ok {
			if ExprEnd(b) != ExprEnd(b.Y) {
				t.Errorf("binary %q at %v: end %v != Y end %v", b.Op, b.Pos, ExprEnd(b), ExprEnd(b.Y))
			}
		}
	}

	// Schemas and fields carry ranges too.
	for _, sd := range mod.Schemas {
		if text, ok := checkRange("schema "+sd.Name, sd.Pos, sd.End); ok {
			if !strings.HasPrefix(text, "schema ") || text[len(text)-1] != '}' {
				t.Errorf("schema %s: range covers %q", sd.Name, text)
			}
		}
		for _, f := range sd.Fields {
			if text, ok := checkRange("field "+f.Name, f.Pos, f.End); ok {
				if text[len(text)-1] != ';' {
					t.Errorf("field %s: range covers %q", f.Name, text)
				}
			}
		}
	}

	// Import statements expose the quoted path range.
	for _, imp := range mod.Imports {
		if text, ok := checkRange("import path", imp.PathPos, imp.PathEnd); ok {
			if text != `"lib/dep.cinc"` {
				t.Errorf("import path range covers %q", text)
			}
		}
	}

	// Let statements expose the bound-name range.
	for _, st := range stmts {
		if l, ok := st.(*LetStmt); ok {
			if text, ok := checkRange("let name", l.NamePos, l.NameEnd); ok && text != l.Name {
				t.Errorf("let %s: name range covers %q", l.Name, text)
			}
		}
	}
}

func nodeDesc(n interface{}) string {
	switch v := n.(type) {
	case Stmt:
		return StmtPos(v).String()
	case Expr:
		return ExprPos(v).String()
	}
	return "?"
}
