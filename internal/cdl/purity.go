package cdl

import "sort"

// Static cache-safety analysis for module memoization.
//
// A memoized module's evaluated environment is shared, read-only, across
// Compile calls (and across goroutines in CompileAll). That is only sound
// if nothing can write to the environment after module evaluation
// finishes. The one post-evaluation write path in CDL is an `x = expr`
// assignment executed inside a deferred body — a `def` function or a
// `validator` — whose closure chains up to the module environment: calling
// such a function later would mutate the shared environment.
//
// astCacheSafe walks every deferred body and resolves each assignment
// against the lexical scopes *created at call time* (parameters, `let`s and
// `for` variables inside the body, and enclosing function-call scopes,
// which are all fresh per invocation). If an assignment could bind to any
// scope that exists at module-evaluation time — the module env, a
// top-level if/for block env captured by a nested def, a builtin in the
// global env, or an imported name — the module is declared unsafe and is
// evaluated fresh on every compile instead of being cached.
//
// The analysis is flow-sensitive within a block (a `let` only makes the
// name local for statements after it, matching the evaluator) and
// conservative: anything it cannot prove call-local is treated as a module
// mutation.

// collectStructRefs gathers every StructExpr type name appearing anywhere
// in the module — including def and validator bodies, which may run during
// another module's evaluation. `Name{...}` resolves as a schema literal
// when Name is a registered schema and as variable-update syntax otherwise,
// and the seed compiler's schema namespace is compile-global: a schema
// registered by an unrelated, non-imported module changes how the
// expression resolves. Activating a cached module is therefore gated on
// none of these names being bound to a schema from outside the module's
// own closure (see loadState.activate).
func collectStructRefs(mod *Module) []string {
	set := map[string]bool{}
	var walkStmts func([]Stmt)
	var walkExpr func(Expr)
	walkExpr = func(x Expr) {
		switch e := x.(type) {
		case *ListExpr:
			for _, el := range e.Elems {
				walkExpr(el)
			}
		case *MapExpr:
			for i := range e.Keys {
				walkExpr(e.Keys[i])
				walkExpr(e.Values[i])
			}
		case *StructExpr:
			set[e.Type] = true
			for _, v := range e.Values {
				walkExpr(v)
			}
		case *UpdateExpr:
			walkExpr(e.Base)
			for _, v := range e.Values {
				walkExpr(v)
			}
		case *FieldExpr:
			walkExpr(e.Base)
		case *IndexExpr:
			walkExpr(e.Base)
			walkExpr(e.Index)
		case *CallExpr:
			walkExpr(e.Fn)
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *UnaryExpr:
			walkExpr(e.X)
		case *BinaryExpr:
			walkExpr(e.X)
			walkExpr(e.Y)
		case *CondExpr:
			walkExpr(e.Cond)
			walkExpr(e.A)
			walkExpr(e.B)
		}
	}
	walkStmts = func(stmts []Stmt) {
		for _, st := range stmts {
			switch s := st.(type) {
			case *LetStmt:
				walkExpr(s.Value)
			case *AssignStmt:
				walkExpr(s.Value)
			case *DefStmt:
				walkStmts(s.Body)
			case *ValidatorStmt:
				walkStmts(s.Body)
			case *ExportStmt:
				walkExpr(s.Value)
			case *AssertStmt:
				walkExpr(s.Cond)
				if s.Message != nil {
					walkExpr(s.Message)
				}
			case *IfStmt:
				walkExpr(s.Cond)
				walkStmts(s.Then)
				walkStmts(s.Else)
			case *ForStmt:
				walkExpr(s.Seq)
				walkStmts(s.Body)
			case *ReturnStmt:
				if s.Value != nil {
					walkExpr(s.Value)
				}
			case *ExprStmt:
				walkExpr(s.X)
			}
		}
	}
	walkStmts(mod.Stmts)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// scanScope is one lexical block during the static walk. callLocal marks
// scopes that the evaluator materializes per function call (safe to
// mutate); module-evaluation-time scopes have callLocal=false.
type scanScope struct {
	parent    *scanScope
	names     map[string]bool
	callLocal bool
}

func newScanScope(parent *scanScope, callLocal bool) *scanScope {
	return &scanScope{parent: parent, names: map[string]bool{}, callLocal: callLocal}
}

// resolvesCallLocal reports whether an assignment to name would bind inside
// a per-call scope. Unknown names fall through to the module/global env,
// which is not call-local.
func (s *scanScope) resolvesCallLocal(name string) bool {
	for cur := s; cur != nil; cur = cur.parent {
		if cur.names[name] {
			return cur.callLocal
		}
	}
	return false
}

// resolves reports whether the name is bound anywhere in the statically
// visible scopes. An unresolved top-level assignment either rebinds an
// imported name (invisible to this single-module walk), rebinds a builtin
// in the global env — which the seed semantics share across every module
// of a compile — or fails at runtime. All three are conservatively treated
// as unsafe to memoize.
func (s *scanScope) resolves(name string) bool {
	for cur := s; cur != nil; cur = cur.parent {
		if cur.names[name] {
			return true
		}
	}
	return false
}

// astCacheSafe reports whether the module's evaluated environment may be
// shared across compiles.
func astCacheSafe(mod *Module) bool {
	return len(ImpureAssignments(mod)) == 0
}

// ImpureAssignments returns every assignment statement that defeats module
// memoization, in source order: an assignment inside a deferred body (def
// or validator) that could bind to a scope existing at module-evaluation
// time, or a top-level assignment to a name the module does not itself
// define (a rebind of an imported name or a shared builtin). A module with
// no impure assignments is cache-safe and its evaluated environment may be
// shared across compiles; the configlint impure-construct analyzer
// surfaces each returned site as a diagnostic.
func ImpureAssignments(mod *Module) []*AssignStmt {
	top := newScanScope(nil, false)
	var sites []*AssignStmt
	collectImpure(mod.Stmts, top, false, &sites)
	return sites
}

// collectImpure walks a statement list inside the given scope, appending
// unsafe assignments to sites. inDeferred is true once the walk has entered
// a def or validator body (where assignments execute after module
// evaluation).
func collectImpure(stmts []Stmt, scope *scanScope, inDeferred bool, sites *[]*AssignStmt) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *LetStmt:
			scope.names[s.Name] = true
		case *AssignStmt:
			if inDeferred {
				if !scope.resolvesCallLocal(s.Name) {
					*sites = append(*sites, s)
				}
			} else if !scope.resolves(s.Name) {
				*sites = append(*sites, s)
			}
		case *DefStmt:
			scope.names[s.Name] = true
			body := newScanScope(scope, true)
			for _, p := range s.Params {
				body.names[p] = true
			}
			collectImpure(s.Body, body, true, sites)
		case *ValidatorStmt:
			body := newScanScope(scope, true)
			body.names[s.Param] = true
			collectImpure(s.Body, body, true, sites)
		case *IfStmt:
			// Child blocks inherit call-locality from the enclosing scope:
			// a block env inside a def is per-call, a top-level block env
			// is created once at module evaluation and captured by any def
			// defined inside it.
			collectImpure(s.Then, newScanScope(scope, scope.callLocal), inDeferred, sites)
			collectImpure(s.Else, newScanScope(scope, scope.callLocal), inDeferred, sites)
		case *ForStmt:
			body := newScanScope(scope, scope.callLocal)
			body.names[s.Var] = true
			collectImpure(s.Body, body, inDeferred, sites)
		}
	}
}
