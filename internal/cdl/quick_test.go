package cdl

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genValue builds a random JSON-representable Value of bounded depth.
func genValue(r *rand.Rand, depth int) Value {
	max := 7
	if depth <= 0 {
		max = 5 // scalars only
	}
	switch r.Intn(max) {
	case 0:
		return Null{}
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(r.Int63n(1 << 40))
	case 3:
		return Float(r.NormFloat64() * 1000)
	case 4:
		b := make([]byte, r.Intn(12))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return Str(b)
	case 5:
		n := r.Intn(4)
		l := make(List, n)
		for i := range l {
			l[i] = genValue(r, depth-1)
		}
		return l
	default:
		n := r.Intn(4)
		m := make(Map, n)
		for i := 0; i < n; i++ {
			key := string(rune('a'+r.Intn(26))) + string(rune('a'+r.Intn(26)))
			m[key] = genValue(r, depth-1)
		}
		return m
	}
}

// valueBox lets testing/quick drive our custom generator.
type valueBox struct{ v Value }

// Generate implements quick.Generator.
func (valueBox) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(valueBox{v: genValue(r, 3)})
}

func TestQuickMarshalDeterministic(t *testing.T) {
	err := quick.Check(func(b valueBox) bool {
		s1, err1 := MarshalJSON(b.v)
		s2, err2 := MarshalJSON(b.v)
		return err1 == nil && err2 == nil && s1 == s2
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickEqualReflexive(t *testing.T) {
	err := quick.Check(func(b valueBox) bool {
		return Equal(b.v, b.v)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickEqualSymmetric(t *testing.T) {
	err := quick.Check(func(a, b valueBox) bool {
		return Equal(a.v, b.v) == Equal(b.v, a.v)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickMarshalProducesValidJSON(t *testing.T) {
	err := quick.Check(func(b valueBox) bool {
		s, err := MarshalJSON(b.v)
		return err == nil && json.Valid([]byte(s))
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickTruthyTotal(t *testing.T) {
	// Truthy never panics on any generated value.
	err := quick.Check(func(b valueBox) bool {
		_ = Truthy(b.v)
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickCopyStructIndependent(t *testing.T) {
	err := quick.Check(func(b valueBox) bool {
		s := &Struct{Schema: "S", Fields: map[string]Value{"x": b.v}}
		cp := CopyStruct(s)
		cp.Fields["x"] = Int(-1)
		got, ok := s.Fields["x"]
		return ok && Equal(got, b.v)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}
