package cdl

// Lexer-only import scanning. The Dependency Service extracts import edges
// from every config source on every change (§3.1); paying a full parse for
// that is wasteful when only the `import "path";` statements matter. The
// scanner tokenizes the source once and collects import paths without
// building an AST.
//
// Soundness: the parser accepts `import` only as a top-level statement, and
// a top-level statement position is never inside brackets, so scanning for
// the `import` keyword at bracket depth zero yields a superset of the
// parser's import list. For any module that parses, the two lists are
// identical; for a module with syntax errors the scanner may report extra
// candidate edges, which is the safe direction for both dependency tracking
// (extra recompiles) and cache keys (extra key material).

// ScanImports returns the module's direct import paths using the lexer
// only — no AST is built. It fails only on lexical errors.
func ScanImports(file string, src []byte) ([]string, error) {
	l := newLexer(file, string(src))
	out := []string{}
	depth := 0
	pendingImport := false
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		if pendingImport {
			if t.kind == tokEOF {
				return nil, errf(t.pos, "expected string path after import")
			}
			if t.kind != tokString {
				return nil, errf(t.pos, "expected string path after import, got %q", t.text)
			}
			out = append(out, t.strVal)
			pendingImport = false
			continue
		}
		if t.kind == tokEOF {
			return out, nil
		}
		switch t.kind {
		case tokPunct:
			switch t.text {
			case "(", "[", "{":
				depth++
			case ")", "]", "}":
				depth--
			}
		case tokKeyword:
			if t.text == "import" && depth == 0 {
				pendingImport = true
			}
		}
	}
}

// ListImports returns the module's direct import paths — the cheap
// dependency-extraction entry point used by the Dependency Service. It is
// backed by the lexer-only scanner, so depgraph.ExtractAndSet does not pay
// a full parse per changed file.
func ListImports(file string, src []byte) ([]string, error) {
	return ScanImports(file, src)
}
