package cdl

// Schema checking: every exported config is type-checked against its schema
// (the thrift-defined data shape of §3.1), defaults are filled in for
// omitted fields, and i32 range is enforced. This is the first of the
// paper's layered defenses against configuration errors (§3.3) — an export
// that does not conform never becomes a JSON artifact.

import "math"

// checkSchema verifies v against the schema set and returns a normalized
// copy with defaults filled. schemas maps name -> def; the evaluator is
// needed to evaluate default expressions.
func (e *evaluator) checkSchema(pos Pos, v Value, sd *SchemaDef, env *Env) (Value, error) {
	s, ok := v.(*Struct)
	if !ok {
		return nil, errf(pos, "expected struct %s, got %s", sd.Name, v.TypeName())
	}
	if s.Schema != sd.Name {
		return nil, errf(pos, "expected struct %s, got %s", sd.Name, s.Schema)
	}
	fields, err := e.resolveFields(pos, sd)
	if err != nil {
		return nil, err
	}
	out := &Struct{Schema: sd.Name, Fields: make(map[string]Value, len(fields))}
	for _, f := range fields {
		fv, present := s.Fields[f.Name]
		if !present || isNull(fv) {
			if f.Default != nil {
				dv, err := e.eval(f.Default, env)
				if err != nil {
					return nil, err
				}
				fv = dv
			} else {
				fv = zeroValue(f.Type)
			}
		}
		cv, err := e.checkType(pos, fv, f.Type, env)
		if err != nil {
			return nil, errf(pos, "field %s.%s: %s", sd.Name, f.Name, err.(*Error).Msg)
		}
		out.Fields[f.Name] = cv
	}
	// Reject fields not in the schema (typo defense, §3.3 Type I errors).
	known := make(map[string]bool, len(fields))
	for _, f := range fields {
		known[f.Name] = true
	}
	for name := range s.Fields {
		if !known[name] {
			return nil, errf(pos, "schema %s has no field %q", sd.Name, name)
		}
	}
	return out, nil
}

func (e *evaluator) checkType(pos Pos, v Value, t *TypeExpr, env *Env) (Value, error) {
	switch t.Kind {
	case KindBool:
		if b, ok := v.(Bool); ok {
			return b, nil
		}
		return nil, errf(pos, "want bool, got %s", v.TypeName())
	case KindI32:
		i, ok := v.(Int)
		if !ok {
			return nil, errf(pos, "want i32, got %s", v.TypeName())
		}
		if int64(i) > math.MaxInt32 || int64(i) < math.MinInt32 {
			return nil, errf(pos, "value %d out of i32 range", int64(i))
		}
		return i, nil
	case KindI64:
		if i, ok := v.(Int); ok {
			return i, nil
		}
		return nil, errf(pos, "want i64, got %s", v.TypeName())
	case KindDouble:
		switch n := v.(type) {
		case Float:
			return n, nil
		case Int:
			return Float(n), nil // int literals are fine for double fields
		}
		return nil, errf(pos, "want double, got %s", v.TypeName())
	case KindString:
		if s, ok := v.(Str); ok {
			return s, nil
		}
		return nil, errf(pos, "want string, got %s", v.TypeName())
	case KindList:
		l, ok := v.(List)
		if !ok {
			return nil, errf(pos, "want %s, got %s", t, v.TypeName())
		}
		out := make(List, len(l))
		for i, el := range l {
			cv, err := e.checkType(pos, el, t.Elem, env)
			if err != nil {
				return nil, err
			}
			out[i] = cv
		}
		return out, nil
	case KindMap:
		m, ok := v.(Map)
		if !ok {
			return nil, errf(pos, "want %s, got %s", t, v.TypeName())
		}
		out := make(Map, len(m))
		for k, el := range m {
			cv, err := e.checkType(pos, el, t.Elem, env)
			if err != nil {
				return nil, err
			}
			out[k] = cv
		}
		return out, nil
	case KindStruct:
		sd, ok := e.schemas[t.Name]
		if !ok {
			return nil, errf(pos, "unknown schema %q", t.Name)
		}
		return e.checkSchema(pos, v, sd, env)
	}
	return nil, errf(pos, "unknown type kind")
}

func isNull(v Value) bool {
	_, ok := v.(Null)
	return ok
}

// zeroValue is the thrift-like implicit default for a field without an
// explicit one.
func zeroValue(t *TypeExpr) Value {
	switch t.Kind {
	case KindBool:
		return Bool(false)
	case KindI32, KindI64:
		return Int(0)
	case KindDouble:
		return Float(0)
	case KindString:
		return Str("")
	case KindList:
		return List{}
	case KindMap:
		return Map{}
	case KindStruct:
		// A nested struct with no default must be provided explicitly; the
		// empty instance lets checkSchema fill its own field defaults.
		return &Struct{Schema: t.Name, Fields: map[string]Value{}}
	}
	return Null{}
}
