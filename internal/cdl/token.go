// Package cdl implements the Config Definition Language — this repository's
// stand-in for the Python + Thrift "configuration as code" sources the
// Configerator compiler consumes (§3.1).
//
// A CDL module can declare thrift-like schemas, reusable functions and
// constants, validators that express config invariants (§3.3), and imports
// of other modules. Import statements are the dependency edges the
// Dependency Service extracts (§3.1): when an imported file changes, every
// importer is recompiled in the same commit, which is what keeps e.g. an
// application config and a firewall config consistent. Compiling a module
// evaluates it, type-checks the exported value against its schema, fills in
// defaults, runs every registered validator, and emits canonical JSON.
package cdl

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Pos is a source position for error reporting.
type Pos struct {
	File string
	Line int
	Col  int
}

// String renders file:line:col.
func (p Pos) String() string { return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col) }

// Error is a positioned compilation or evaluation error.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokPunct   // ( ) { } [ ] , ; : . ? < >
	tokOp      // + - * / % == != <= >= && || ! = < >
	tokKeyword // import schema let def validator export assert if else for in return true false null and or not
)

var keywords = map[string]bool{
	"import": true, "schema": true, "let": true, "def": true,
	"validator": true, "export": true, "assert": true, "if": true,
	"else": true, "for": true, "in": true, "return": true,
	"true": true, "false": true, "null": true,
}

type token struct {
	kind tokenKind
	text string
	pos  Pos
	// end is the position one past the token's last character (same line
	// for every token kind: newlines never appear inside a token).
	end Pos
	// literal payloads
	intVal   int64
	floatVal float64
	strVal   string
}

func (t token) is(kind tokenKind, text string) bool {
	return t.kind == kind && t.text == text
}

type lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
}

func newLexer(file, src string) *lexer {
	return &lexer{src: src, file: file, line: 1, col: 1}
}

func (l *lexer) pos() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c rune) bool { return c == '_' || unicode.IsLetter(c) }
func isIdentPart(c rune) bool  { return c == '_' || unicode.IsLetter(c) || unicode.IsDigit(c) }

// next returns the next token or an error. The token carries both its
// start position and its end position (one past the last character), so
// downstream consumers — the parser and the diagnostics it feeds — can
// report precise source ranges.
func (l *lexer) next() (token, error) {
	t, err := l.lex()
	if err != nil {
		return t, err
	}
	t.end = l.pos()
	return t, nil
}

// lex scans one token; next() stamps the end position afterwards.
func (l *lexer) lex() (token, error) {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	c := l.peekByte()
	switch {
	case c >= '0' && c <= '9':
		return l.lexNumber(pos)
	case c == '"':
		return l.lexString(pos)
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	if isIdentStart(r) {
		start := l.off
		for l.off < len(l.src) {
			r, size := utf8.DecodeRuneInString(l.src[l.off:])
			if !isIdentPart(r) {
				break
			}
			for i := 0; i < size; i++ {
				l.advance()
			}
		}
		text := l.src[start:l.off]
		if keywords[text] {
			return token{kind: tokKeyword, text: text, pos: pos}, nil
		}
		return token{kind: tokIdent, text: text, pos: pos}, nil
	}
	// Operators and punctuation.
	two := ""
	if l.off+1 < len(l.src) {
		two = l.src[l.off : l.off+2]
	}
	switch two {
	case "==", "!=", "<=", ">=", "&&", "||":
		l.advance()
		l.advance()
		return token{kind: tokOp, text: two, pos: pos}, nil
	}
	l.advance()
	s := string(c)
	switch c {
	case '+', '-', '*', '/', '%', '!', '=', '<', '>':
		return token{kind: tokOp, text: s, pos: pos}, nil
	case '(', ')', '{', '}', '[', ']', ',', ';', ':', '.', '?':
		return token{kind: tokPunct, text: s, pos: pos}, nil
	}
	return token{}, errf(pos, "unexpected character %q", s)
}

func (l *lexer) lexNumber(pos Pos) (token, error) {
	start := l.off
	isFloat := false
	for l.off < len(l.src) {
		c := l.peekByte()
		if c >= '0' && c <= '9' || c == '_' {
			l.advance()
		} else if c == '.' && !isFloat && l.peek2() >= '0' && l.peek2() <= '9' {
			isFloat = true
			l.advance()
		} else if (c == 'e' || c == 'E') && l.off > start {
			isFloat = true
			l.advance()
			if l.peekByte() == '+' || l.peekByte() == '-' {
				l.advance()
			}
		} else {
			break
		}
	}
	text := strings.ReplaceAll(l.src[start:l.off], "_", "")
	if isFloat {
		var f float64
		if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
			return token{}, errf(pos, "bad float literal %q", text)
		}
		return token{kind: tokFloat, text: text, floatVal: f, pos: pos}, nil
	}
	var i int64
	if _, err := fmt.Sscanf(text, "%d", &i); err != nil {
		return token{}, errf(pos, "bad int literal %q", text)
	}
	return token{kind: tokInt, text: text, intVal: i, pos: pos}, nil
}

func (l *lexer) lexString(pos Pos) (token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.off >= len(l.src) {
			return token{}, errf(pos, "unterminated string")
		}
		c := l.advance()
		switch c {
		case '"':
			return token{kind: tokString, text: b.String(), strVal: b.String(), pos: pos}, nil
		case '\\':
			if l.off >= len(l.src) {
				return token{}, errf(pos, "unterminated escape")
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return token{}, errf(pos, "bad escape \\%c", e)
			}
		case '\n':
			return token{}, errf(pos, "newline in string")
		default:
			b.WriteByte(c)
		}
	}
}

// lexAll tokenizes the whole source.
func lexAll(file, src string) ([]token, error) {
	l := newLexer(file, src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
