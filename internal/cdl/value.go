package cdl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is a CDL runtime value. The set mirrors what JSON can express plus
// functions (which exist only during evaluation and cannot be exported).
type Value interface {
	// TypeName is the human-readable type used in error messages.
	TypeName() string
}

// Null is the null value.
type Null struct{}

// Bool is a boolean value.
type Bool bool

// Int is a 64-bit integer value.
type Int int64

// Float is a 64-bit floating point value.
type Float float64

// Str is a string value.
type Str string

// List is an ordered sequence.
type List []Value

// Map is a string-keyed map.
type Map map[string]Value

// Struct is an instance of a named schema.
type Struct struct {
	Schema string
	Fields map[string]Value
}

// Func is a user-defined function closure.
type Func struct {
	Name    string
	Params  []string
	Body    []Stmt
	Closure *Env
}

// Builtin is a native function.
type Builtin struct {
	Name string
	Fn   func(pos Pos, args []Value) (Value, error)
}

// TypeName implementations.
func (Null) TypeName() string      { return "null" }
func (Bool) TypeName() string      { return "bool" }
func (Int) TypeName() string       { return "int" }
func (Float) TypeName() string     { return "float" }
func (Str) TypeName() string       { return "string" }
func (List) TypeName() string      { return "list" }
func (Map) TypeName() string       { return "map" }
func (s *Struct) TypeName() string { return s.Schema }
func (*Func) TypeName() string     { return "function" }
func (*Builtin) TypeName() string  { return "builtin" }

// Truthy reports the boolean interpretation used by if/&&/||.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case Null:
		return false
	case Bool:
		return bool(x)
	case Int:
		return x != 0
	case Float:
		return x != 0
	case Str:
		return x != ""
	case List:
		return len(x) > 0
	case Map:
		return len(x) > 0
	default:
		return true
	}
}

// Equal reports deep value equality (numeric cross-type compare included).
func Equal(a, b Value) bool {
	switch x := a.(type) {
	case Null:
		_, ok := b.(Null)
		return ok
	case Bool:
		y, ok := b.(Bool)
		return ok && x == y
	case Int:
		switch y := b.(type) {
		case Int:
			return x == y
		case Float:
			return Float(x) == y
		}
		return false
	case Float:
		switch y := b.(type) {
		case Float:
			return x == y
		case Int:
			return x == Float(y)
		}
		return false
	case Str:
		y, ok := b.(Str)
		return ok && x == y
	case List:
		y, ok := b.(List)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	case Map:
		y, ok := b.(Map)
		if !ok || len(x) != len(y) {
			return false
		}
		for k, v := range x {
			yv, ok := y[k]
			if !ok || !Equal(v, yv) {
				return false
			}
		}
		return true
	case *Struct:
		y, ok := b.(*Struct)
		if !ok || x.Schema != y.Schema || len(x.Fields) != len(y.Fields) {
			return false
		}
		for k, v := range x.Fields {
			yv, ok := y.Fields[k]
			if !ok || !Equal(v, yv) {
				return false
			}
		}
		return true
	}
	return false
}

// CopyStruct returns a shallow copy (field map cloned) for update exprs.
func CopyStruct(s *Struct) *Struct {
	f := make(map[string]Value, len(s.Fields))
	for k, v := range s.Fields {
		f[k] = v
	}
	return &Struct{Schema: s.Schema, Fields: f}
}

// ToString renders a value for str() and error messages.
func ToString(v Value) string {
	var b strings.Builder
	writeString(&b, v)
	return b.String()
}

func writeString(b *strings.Builder, v Value) {
	switch x := v.(type) {
	case Null:
		b.WriteString("null")
	case Bool:
		fmt.Fprintf(b, "%v", bool(x))
	case Int:
		fmt.Fprintf(b, "%d", int64(x))
	case Float:
		b.WriteString(strconv.FormatFloat(float64(x), 'g', -1, 64))
	case Str:
		b.WriteString(string(x))
	default:
		b.WriteString(mustJSON(v))
	}
}

// ---- Canonical JSON ----

// MarshalJSON renders the value as canonical JSON: object keys sorted,
// minimal float formatting, stable across runs. Every compiled config is
// emitted this way so that recompiling unchanged source yields a
// byte-identical JSON artifact (no spurious diffs in the repository).
func MarshalJSON(v Value) (string, error) {
	var b strings.Builder
	if err := writeJSON(&b, v); err != nil {
		return "", err
	}
	return b.String(), nil
}

func mustJSON(v Value) string {
	s, err := MarshalJSON(v)
	if err != nil {
		return "<" + err.Error() + ">"
	}
	return s
}

func writeJSON(b *strings.Builder, v Value) error {
	switch x := v.(type) {
	case Null:
		b.WriteString("null")
	case Bool:
		if x {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case Int:
		b.WriteString(strconv.FormatInt(int64(x), 10))
	case Float:
		b.WriteString(strconv.FormatFloat(float64(x), 'g', -1, 64))
	case Str:
		b.WriteString(strconv.Quote(string(x)))
	case List:
		b.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				b.WriteByte(',')
			}
			if err := writeJSON(b, e); err != nil {
				return err
			}
		}
		b.WriteByte(']')
	case Map:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Quote(k))
			b.WriteByte(':')
			if err := writeJSON(b, x[k]); err != nil {
				return err
			}
		}
		b.WriteByte('}')
	case *Struct:
		keys := make([]string, 0, len(x.Fields))
		for k := range x.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Quote(k))
			b.WriteByte(':')
			if err := writeJSON(b, x.Fields[k]); err != nil {
				return err
			}
		}
		b.WriteByte('}')
	case *Func, *Builtin:
		return fmt.Errorf("cdl: cannot serialize %s to JSON", v.TypeName())
	default:
		return fmt.Errorf("cdl: unknown value type %T", v)
	}
	return nil
}
