// Package ci models Sandcastle (§3.3): for a config change that affects
// frontend products, "in a sandbox environment, the Sandcastle tool
// automatically performs a comprehensive set of synthetic, continuous
// integration tests of the site under the new config".
//
// The sandbox runs registered tests against the proposed change set. The
// paper notes its blind spot — "continuous integration tests in a sandbox
// can have broad coverage, but may miss config errors due to the
// small-scale setup or other environment differences" — which the fault-
// injection experiment (§6.4) reproduces: load-dependent Type II errors
// pass the sandbox and are only caught (if at all) by large canary phases.
package ci

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"configerator/internal/cdl"
	"configerator/internal/cdl/analysis"
)

// ChangeSet is the proposed config artifacts, path → JSON content.
type ChangeSet map[string][]byte

// CompileChecker verifies the compiled artifacts in a change set — the
// sandbox's first gate, run before any synthetic test. It returns an error
// when an artifact does not match what the compiler produces.
type CompileChecker func(cs ChangeSet) error

// LintChecker statically analyzes the sources behind a change set and
// returns the diagnostics. The sandbox blocks the change when any
// diagnostic is Error severity; warnings surface in the logs without
// failing the run.
type LintChecker func(cs ChangeSet) []analysis.Diagnostic

// Test is one synthetic integration test.
type Test struct {
	Name string
	// Run inspects the proposed change set and returns an error on
	// failure. Tests run in a sandbox: they see the change, not the fleet.
	Run func(cs ChangeSet) error
	// Cost is the test's contribution to wall-clock duration.
	Cost time.Duration
}

// Result is the outcome of a sandbox run, posted to the review diff.
type Result struct {
	Passed   bool
	Failures []string
	Logs     []string
	Duration time.Duration
}

// Sandbox is a Sandcastle instance with its registered test suite.
type Sandbox struct {
	tests []Test
	// SetupCost models sandbox provisioning.
	SetupCost time.Duration
	// Compile, when set, re-verifies the change set's artifacts against
	// the compiler before the test suite runs (cost 0: the engine's
	// result cache makes the double-compile nearly free).
	Compile CompileChecker
	// Lint, when set, runs static analysis before the compile check and
	// the test suite; Error diagnostics fail the run (the engine's parse
	// cache makes the re-lint nearly free).
	Lint LintChecker

	// Runs counts sandbox executions.
	Runs int
}

// NewSandbox returns a sandbox with the given provisioning cost.
func NewSandbox(setupCost time.Duration) *Sandbox {
	return &Sandbox{SetupCost: setupCost}
}

// Register adds a test to the suite.
func (s *Sandbox) Register(t Test) { s.tests = append(s.tests, t) }

// TestCount reports the number of registered tests.
func (s *Sandbox) TestCount() int { return len(s.tests) }

// Run executes the full suite against a change set.
func (s *Sandbox) Run(cs ChangeSet) Result {
	s.Runs++
	res := Result{Passed: true, Duration: s.SetupCost}
	if s.Lint != nil {
		diags := s.Lint(cs)
		for _, d := range diags {
			res.Logs = append(res.Logs, "LINT "+d.String())
		}
		if analysis.HasErrors(diags) {
			res.Passed = false
			errs := analysis.Filter(diags, analysis.Error)
			res.Failures = append(res.Failures, fmt.Sprintf("lint: %s (first: %s)",
				analysis.Summary(errs), errs[0]))
			res.Logs = append(res.Logs, "FAIL lint")
		} else {
			res.Logs = append(res.Logs, "PASS lint")
		}
	}
	if s.Compile != nil {
		if err := s.Compile(cs); err != nil {
			res.Passed = false
			res.Failures = append(res.Failures, fmt.Sprintf("compile: %v", err))
			res.Logs = append(res.Logs, fmt.Sprintf("FAIL compile: %v", err))
		} else {
			res.Logs = append(res.Logs, "PASS compile")
		}
	}
	for _, t := range s.tests {
		res.Duration += t.Cost
		if err := t.Run(cs); err != nil {
			res.Passed = false
			res.Failures = append(res.Failures, fmt.Sprintf("%s: %v", t.Name, err))
			res.Logs = append(res.Logs, fmt.Sprintf("FAIL %s: %v", t.Name, err))
		} else {
			res.Logs = append(res.Logs, "PASS "+t.Name)
		}
	}
	return res
}

// RecompileCheck returns a CompileChecker that recompiles each artifact's
// source through the engine's batch API and compares bytes. sources maps
// artifact path → source path; artifacts without a mapping (raw configs)
// are skipped. Because the pipeline compiled the same sources moments
// earlier through the same engine, this re-verification is served almost
// entirely from the result cache.
// LintCheck returns a LintChecker that statically analyzes the source of
// every artifact in the change set through the shared engine's parse
// cache. sources maps artifact path → source path; artifacts without a
// mapping (raw configs) are skipped.
func LintCheck(eng *cdl.Engine, fs cdl.FileSystem, sources map[string]string) LintChecker {
	return func(cs ChangeSet) []analysis.Diagnostic {
		var roots []string
		for artifact := range cs {
			if src, ok := sources[artifact]; ok {
				roots = append(roots, src)
			}
		}
		if len(roots) == 0 {
			return nil
		}
		sort.Strings(roots)
		diags, err := analysis.NewDriver(eng, fs).Run(roots)
		if err != nil {
			p := cdl.Pos{File: roots[0], Line: 1, Col: 1}
			return []analysis.Diagnostic{{
				Pos: p, End: p, Severity: analysis.Error,
				Analyzer: "driver", Message: err.Error(),
			}}
		}
		return diags
	}
}

func RecompileCheck(eng *cdl.Engine, fs cdl.FileSystem, sources map[string]string) CompileChecker {
	return func(cs ChangeSet) error {
		var paths []string
		bySrc := make(map[string]string)
		for artifact := range cs {
			src, ok := sources[artifact]
			if !ok {
				continue
			}
			paths = append(paths, src)
			bySrc[src] = artifact
		}
		if len(paths) == 0 {
			return nil
		}
		sort.Strings(paths)
		results, err := eng.CompileAll(fs, paths)
		if err != nil {
			return err
		}
		for _, res := range results {
			artifact := bySrc[res.Path]
			if !bytes.Equal(res.JSON, cs[artifact]) {
				return fmt.Errorf("ci: artifact %s does not match compiler output of %s", artifact, res.Path)
			}
		}
		return nil
	}
}
