// Package ci models Sandcastle (§3.3): for a config change that affects
// frontend products, "in a sandbox environment, the Sandcastle tool
// automatically performs a comprehensive set of synthetic, continuous
// integration tests of the site under the new config".
//
// The sandbox runs registered tests against the proposed change set. The
// paper notes its blind spot — "continuous integration tests in a sandbox
// can have broad coverage, but may miss config errors due to the
// small-scale setup or other environment differences" — which the fault-
// injection experiment (§6.4) reproduces: load-dependent Type II errors
// pass the sandbox and are only caught (if at all) by large canary phases.
package ci

import (
	"fmt"
	"time"
)

// ChangeSet is the proposed config artifacts, path → JSON content.
type ChangeSet map[string][]byte

// Test is one synthetic integration test.
type Test struct {
	Name string
	// Run inspects the proposed change set and returns an error on
	// failure. Tests run in a sandbox: they see the change, not the fleet.
	Run func(cs ChangeSet) error
	// Cost is the test's contribution to wall-clock duration.
	Cost time.Duration
}

// Result is the outcome of a sandbox run, posted to the review diff.
type Result struct {
	Passed   bool
	Failures []string
	Logs     []string
	Duration time.Duration
}

// Sandbox is a Sandcastle instance with its registered test suite.
type Sandbox struct {
	tests []Test
	// SetupCost models sandbox provisioning.
	SetupCost time.Duration

	// Runs counts sandbox executions.
	Runs int
}

// NewSandbox returns a sandbox with the given provisioning cost.
func NewSandbox(setupCost time.Duration) *Sandbox {
	return &Sandbox{SetupCost: setupCost}
}

// Register adds a test to the suite.
func (s *Sandbox) Register(t Test) { s.tests = append(s.tests, t) }

// TestCount reports the number of registered tests.
func (s *Sandbox) TestCount() int { return len(s.tests) }

// Run executes the full suite against a change set.
func (s *Sandbox) Run(cs ChangeSet) Result {
	s.Runs++
	res := Result{Passed: true, Duration: s.SetupCost}
	for _, t := range s.tests {
		res.Duration += t.Cost
		if err := t.Run(cs); err != nil {
			res.Passed = false
			res.Failures = append(res.Failures, fmt.Sprintf("%s: %v", t.Name, err))
			res.Logs = append(res.Logs, fmt.Sprintf("FAIL %s: %v", t.Name, err))
		} else {
			res.Logs = append(res.Logs, "PASS "+t.Name)
		}
	}
	return res
}
