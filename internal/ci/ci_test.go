package ci

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestAllPass(t *testing.T) {
	s := NewSandbox(time.Minute)
	s.Register(Test{Name: "t1", Run: func(ChangeSet) error { return nil }, Cost: 30 * time.Second})
	s.Register(Test{Name: "t2", Run: func(ChangeSet) error { return nil }, Cost: 30 * time.Second})
	res := s.Run(ChangeSet{"a.json": []byte("{}")})
	if !res.Passed || len(res.Failures) != 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.Duration != 2*time.Minute {
		t.Errorf("Duration = %v", res.Duration)
	}
	if s.Runs != 1 || s.TestCount() != 2 {
		t.Errorf("Runs=%d TestCount=%d", s.Runs, s.TestCount())
	}
}

func TestFailureRecorded(t *testing.T) {
	s := NewSandbox(0)
	s.Register(Test{Name: "good", Run: func(ChangeSet) error { return nil }})
	s.Register(Test{Name: "bad", Run: func(cs ChangeSet) error {
		if _, ok := cs["required.json"]; !ok {
			return errors.New("missing required config")
		}
		return nil
	}})
	res := s.Run(ChangeSet{"other.json": []byte("{}")})
	if res.Passed {
		t.Fatal("expected failure")
	}
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "bad:") {
		t.Errorf("Failures = %v", res.Failures)
	}
	foundPass, foundFail := false, false
	for _, l := range res.Logs {
		if strings.HasPrefix(l, "PASS good") {
			foundPass = true
		}
		if strings.HasPrefix(l, "FAIL bad") {
			foundFail = true
		}
	}
	if !foundPass || !foundFail {
		t.Errorf("Logs = %v", res.Logs)
	}
}

func TestChangeSetVisibleToTests(t *testing.T) {
	s := NewSandbox(0)
	var seen []string
	s.Register(Test{Name: "inspect", Run: func(cs ChangeSet) error {
		for p := range cs {
			seen = append(seen, p)
		}
		return nil
	}})
	s.Run(ChangeSet{"x.json": []byte("1")})
	if len(seen) != 1 || seen[0] != "x.json" {
		t.Errorf("seen = %v", seen)
	}
}

func TestEmptySuitePasses(t *testing.T) {
	s := NewSandbox(time.Second)
	res := s.Run(nil)
	if !res.Passed || res.Duration != time.Second {
		t.Errorf("res = %+v", res)
	}
}
