package ci

import (
	"errors"
	"strings"
	"testing"
	"time"

	"configerator/internal/cdl"
)

func TestAllPass(t *testing.T) {
	s := NewSandbox(time.Minute)
	s.Register(Test{Name: "t1", Run: func(ChangeSet) error { return nil }, Cost: 30 * time.Second})
	s.Register(Test{Name: "t2", Run: func(ChangeSet) error { return nil }, Cost: 30 * time.Second})
	res := s.Run(ChangeSet{"a.json": []byte("{}")})
	if !res.Passed || len(res.Failures) != 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.Duration != 2*time.Minute {
		t.Errorf("Duration = %v", res.Duration)
	}
	if s.Runs != 1 || s.TestCount() != 2 {
		t.Errorf("Runs=%d TestCount=%d", s.Runs, s.TestCount())
	}
}

func TestFailureRecorded(t *testing.T) {
	s := NewSandbox(0)
	s.Register(Test{Name: "good", Run: func(ChangeSet) error { return nil }})
	s.Register(Test{Name: "bad", Run: func(cs ChangeSet) error {
		if _, ok := cs["required.json"]; !ok {
			return errors.New("missing required config")
		}
		return nil
	}})
	res := s.Run(ChangeSet{"other.json": []byte("{}")})
	if res.Passed {
		t.Fatal("expected failure")
	}
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "bad:") {
		t.Errorf("Failures = %v", res.Failures)
	}
	foundPass, foundFail := false, false
	for _, l := range res.Logs {
		if strings.HasPrefix(l, "PASS good") {
			foundPass = true
		}
		if strings.HasPrefix(l, "FAIL bad") {
			foundFail = true
		}
	}
	if !foundPass || !foundFail {
		t.Errorf("Logs = %v", res.Logs)
	}
}

func TestChangeSetVisibleToTests(t *testing.T) {
	s := NewSandbox(0)
	var seen []string
	s.Register(Test{Name: "inspect", Run: func(cs ChangeSet) error {
		for p := range cs {
			seen = append(seen, p)
		}
		return nil
	}})
	s.Run(ChangeSet{"x.json": []byte("1")})
	if len(seen) != 1 || seen[0] != "x.json" {
		t.Errorf("seen = %v", seen)
	}
}

func TestEmptySuitePasses(t *testing.T) {
	s := NewSandbox(time.Second)
	res := s.Run(nil)
	if !res.Passed || res.Duration != time.Second {
		t.Errorf("res = %+v", res)
	}
}

func TestCompileCheckerRunsFirst(t *testing.T) {
	s := NewSandbox(0)
	var order []string
	s.Compile = func(ChangeSet) error {
		order = append(order, "compile")
		return nil
	}
	s.Register(Test{Name: "t1", Run: func(ChangeSet) error {
		order = append(order, "t1")
		return nil
	}})
	res := s.Run(ChangeSet{"a.json": []byte("{}")})
	if !res.Passed {
		t.Fatalf("res = %+v", res)
	}
	if len(order) != 2 || order[0] != "compile" || order[1] != "t1" {
		t.Errorf("order = %v, want compile before tests", order)
	}
	if len(res.Logs) == 0 || res.Logs[0] != "PASS compile" {
		t.Errorf("Logs = %v", res.Logs)
	}
}

func TestCompileCheckerFailure(t *testing.T) {
	s := NewSandbox(0)
	s.Compile = func(ChangeSet) error { return errors.New("artifact drift") }
	res := s.Run(ChangeSet{"a.json": []byte("{}")})
	if res.Passed {
		t.Fatal("compile failure must fail the sandbox run")
	}
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "compile: artifact drift") {
		t.Errorf("Failures = %v", res.Failures)
	}
}

func TestRecompileCheck(t *testing.T) {
	fs := cdl.MapFS{
		"lib.cinc": `def mk(p) { return {prio: p}; }`,
		"a.cconf":  `import "lib.cinc"; export mk(1);`,
		"b.cconf":  `import "lib.cinc"; export mk(2);`,
	}
	eng := cdl.NewEngine()
	resA, err := eng.Compile(fs, "a.cconf")
	if err != nil {
		t.Fatal(err)
	}
	resB, err := eng.Compile(fs, "b.cconf")
	if err != nil {
		t.Fatal(err)
	}
	sources := map[string]string{"a.json": "a.cconf", "b.json": "b.cconf"}
	check := RecompileCheck(eng, fs, sources)

	// Matching artifacts pass; raw configs without a source mapping are
	// skipped.
	cs := ChangeSet{"a.json": resA.JSON, "b.json": resB.JSON, "raw.json": []byte(`{"x":1}`)}
	if err := check(cs); err != nil {
		t.Fatalf("matching change set: %v", err)
	}

	// A tampered artifact is caught.
	cs["b.json"] = []byte(`{"prio":99}`)
	err = check(cs)
	if err == nil || !strings.Contains(err.Error(), "artifact b.json does not match compiler output of b.cconf") {
		t.Errorf("tampered artifact: err = %v", err)
	}

	// A change set with no compiled artifacts passes trivially.
	if err := RecompileCheck(eng, fs, nil)(ChangeSet{"raw.json": []byte("{}")}); err != nil {
		t.Errorf("raw-only change set: %v", err)
	}
}
