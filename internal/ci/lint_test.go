package ci

import (
	"strings"
	"testing"

	"configerator/internal/cdl"
)

// TestSandboxLintBlocksErrors asserts the sandbox's lint gate: a change
// whose source carries an Error diagnostic fails the run before any test
// executes, while warnings pass through as log lines only.
func TestSandboxLintBlocksErrors(t *testing.T) {
	fs := cdl.MapFS{
		// The bad branch never evaluates, so this compiles — only static
		// analysis sees the undefined reference.
		"svc/bad.cconf": `
			let enabled = false;
			if (enabled) {
				let x = missing_name;
			}
			export {on: enabled};
		`,
		"svc/good.cconf": `export {on: true};`,
	}
	eng := cdl.NewEngine()
	sources := map[string]string{
		"svc/bad.json":  "svc/bad.cconf",
		"svc/good.json": "svc/good.cconf",
	}

	sb := NewSandbox(0)
	sb.Lint = LintCheck(eng, fs, sources)

	res := sb.Run(ChangeSet{"svc/bad.json": []byte(`{}`)})
	if res.Passed {
		t.Fatal("sandbox passed a change with a lint error")
	}
	if len(res.Failures) == 0 || !strings.Contains(res.Failures[0], "lint") {
		t.Fatalf("failure should name lint, got %v", res.Failures)
	}
	if !strings.Contains(strings.Join(res.Failures, " "), "missing_name") {
		t.Fatalf("failure should carry the diagnostic, got %v", res.Failures)
	}

	res = sb.Run(ChangeSet{"svc/good.json": []byte(`{}`)})
	if !res.Passed {
		t.Fatalf("clean change failed lint: %v", res.Failures)
	}
	found := false
	for _, l := range res.Logs {
		if l == "PASS lint" {
			found = true
		}
	}
	if !found {
		t.Fatalf("logs should record the lint pass, got %v", res.Logs)
	}
}

// TestSandboxLintWarningsDoNotBlock: Warn-severity diagnostics surface in
// the logs but never fail the run.
func TestSandboxLintWarningsDoNotBlock(t *testing.T) {
	fs := cdl.MapFS{
		"svc/warn.cconf": "import \"svc/lib.cinc\";\nexport {a: 1};\n",
		"svc/lib.cinc":   "let UNUSED = 1;\n",
	}
	sb := NewSandbox(0)
	sb.Lint = LintCheck(cdl.NewEngine(), fs, map[string]string{"svc/warn.json": "svc/warn.cconf"})
	res := sb.Run(ChangeSet{"svc/warn.json": []byte(`{}`)})
	if !res.Passed {
		t.Fatalf("warnings must not block: %v", res.Failures)
	}
	warned := false
	for _, l := range res.Logs {
		if strings.Contains(l, "unused-import") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("warning should appear in logs, got %v", res.Logs)
	}
}
