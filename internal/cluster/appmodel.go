package cluster

import (
	"encoding/json"

	"configerator/internal/health"
)

// Fault markers embedded in config JSON drive the simulated application
// behaviour. The fault-injection experiments (§6.4 reproduction) craft
// configs carrying a "_fault" object; the app model translates it into
// metric shifts the canary service can (or, for some classes, cannot)
// observe.
type FaultMarker struct {
	// Type is one of "error", "crash", "log_spew", "load", "latency".
	Type string `json:"type"`
	// Intensity scales the effect (1.0 = strong).
	Intensity float64 `json:"intensity"`
}

// faultIn extracts the marker from a config artifact, if any.
func faultIn(data []byte) (FaultMarker, bool) {
	var probe struct {
		Fault *FaultMarker `json:"_fault"`
	}
	if err := json.Unmarshal(data, &probe); err != nil || probe.Fault == nil {
		return FaultMarker{}, false
	}
	return *probe.Fault, true
}

// Baseline metric levels for a healthy server.
const (
	baseErrorRate = 0.010
	baseCrashRate = 0.001
	baseLogSpew   = 100.0
	baseLatencyMs = 50.0
	baseCTR       = 0.050
)

// DefaultAppModel computes a server's health sample from the configs its
// applications currently see (committed or canary-overridden):
//
//   - "error": error rate multiplies by 1+9·intensity — obvious even on 20
//     servers (a Type I-style effect the first canary phase catches).
//   - "crash": crash rate and error rate jump (the §6.4 race-condition
//     anecdote: a valid config exercising a buggy code path).
//   - "log_spew": log lines explode (the §6.4 schema-mismatch anecdote
//     caught by comparing error logs of 20 canary servers).
//   - "load": a rare code path hits a shared backend; the latency penalty
//     on servers running the config scales with the FRACTION of the fleet
//     running it, so 20 test servers barely move while a cluster-wide
//     phase shows a large shift (the §6.4 load incident).
//   - "latency": a flat per-server latency regression.
func DefaultAppModel(f *Fleet, s *Server) health.Sample {
	sample := health.Sample{
		health.MetricErrorRate: baseErrorRate,
		health.MetricCrashRate: baseCrashRate,
		health.MetricLogSpew:   baseLogSpew,
		health.MetricLatencyMs: baseLatencyMs,
		health.MetricCTR:       baseCTR,
	}
	for _, path := range f.WatchedPaths() {
		e, ok := s.Proxy.Get(path)
		if !ok || !e.Exists {
			continue
		}
		fault, ok := faultIn(e.Data)
		if !ok {
			continue
		}
		switch fault.Type {
		case "error":
			sample[health.MetricErrorRate] *= 1 + 9*fault.Intensity
		case "crash":
			sample[health.MetricCrashRate] *= 1 + 50*fault.Intensity
			sample[health.MetricErrorRate] *= 1 + 4*fault.Intensity
		case "log_spew":
			sample[health.MetricLogSpew] *= 1 + 40*fault.Intensity
		case "load":
			frac := f.fractionRunning(path, e.Data)
			sample[health.MetricLatencyMs] *= 1 + 4*fault.Intensity*frac
		case "latency":
			sample[health.MetricLatencyMs] *= 1 + fault.Intensity
		}
	}
	return sample
}

// fractionRunning reports what fraction of the fleet currently sees the
// same bytes for the path — the breadth term behind load-type faults.
func (f *Fleet) fractionRunning(path string, data []byte) float64 {
	if len(f.servers) == 0 {
		return 0
	}
	n := 0
	for _, s := range f.servers {
		if e, ok := s.Proxy.Get(path); ok && e.Exists && string(e.Data) == string(data) {
			n++
		}
	}
	return float64(n) / float64(len(f.servers))
}
