package cluster

import (
	"context"
	"testing"
	"time"

	"configerator/internal/obs"
	"configerator/internal/simnet"
)

// TestChaosLeaderCrashPlusPartition is the combined-fault scenario: the
// Zeus leader crashes while a region link partition is in effect. The
// ensemble must re-elect, a write must still commit, and once the plan
// heals everything the whole fleet converges on the new version.
func TestChaosLeaderCrashPlusPartition(t *testing.T) {
	reg := obs.New()
	cfg := SmallConfig(3, 77)
	cfg.Obs = reg
	f := New(cfg)
	f.Net.RunFor(10 * time.Second)
	leader := f.Ensemble.Leader()
	if leader == "" {
		t.Fatal("no zeus leader")
	}

	const path = "/chaos/knob"
	writeZeus(t, f, path, `v1`)
	f.SubscribeAll(path)
	f.Net.RunFor(5 * time.Second)

	// Concurrent faults: partition one cluster's observers from the
	// ensemble at t=1s, crash the leader at t=2s (while the partition is
	// live), heal and restart later.
	obsUE1 := f.Observers("ue1")
	members := f.Ensemble.Members
	plan := simnet.NewFaultPlan(
		simnet.WithPartitionGroup(1*time.Second, obsUE1, members),
		simnet.WithCrash(2*time.Second, leader),
		simnet.WithRestart(25*time.Second, leader),
		simnet.WithHealGroup(30*time.Second, obsUE1, members),
	)
	plan.Apply(f.Net)
	f.Net.RunFor(15 * time.Second) // past crash + re-election

	newLeader := f.Ensemble.Leader()
	if newLeader == "" {
		t.Fatal("no leader re-elected after crash")
	}
	if newLeader == leader {
		t.Fatalf("leader still %s after its crash", leader)
	}

	// A write must commit under the combined fault (quorum is 3/5 with one
	// member down; the partition only cuts observers).
	writeZeus(t, f, path, `v2`)

	// Partitioned-off ue1 stays available on the old version (stale-serve),
	// everyone else already has v2.
	for _, s := range f.Cluster("uw1") {
		if v, err := s.Client.Get(context.Background(), path); err != nil || string(v.Raw) != "v2" {
			t.Fatalf("uw1 read during fault: v=%v err=%v, want v2", v, err)
		}
	}
	for _, s := range f.Cluster("ue1") {
		if _, err := s.Client.Get(context.Background(), path); err != nil {
			t.Fatalf("partitioned ue1 server failed a read: %v", err)
		}
	}

	// After the plan heals everything, the whole fleet converges on v2.
	f.Net.RunFor(40 * time.Second)
	if plan.Fired() != plan.Len() {
		t.Fatalf("plan fired %d of %d", plan.Fired(), plan.Len())
	}
	for _, s := range f.AllServers() {
		e, ok := s.Proxy.Get(path)
		if !ok || string(e.Data) != "v2" {
			t.Errorf("%s = %q after heal, want v2", s.ID, e.Data)
		}
	}
	if got := reg.Counters().Get("fault.injected"); got != int64(plan.Len()) {
		t.Errorf("fault.injected = %d, want %d", got, plan.Len())
	}
}
