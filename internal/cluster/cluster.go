// Package cluster wires the full production topology of Figure 3 onto a
// simnet: a multi-region Zeus ensemble, per-cluster observers, a
// Configerator proxy on every server, and application client libraries —
// plus the health model the canary service samples.
package cluster

import (
	"fmt"
	"sort"

	"configerator/internal/confclient"
	"configerator/internal/health"
	"configerator/internal/monitor"
	"configerator/internal/obs"
	"configerator/internal/proxy"
	"configerator/internal/simnet"
	"configerator/internal/zeus"
)

// ClusterSpec describes one cluster.
type ClusterSpec struct {
	Name    string
	Servers int
}

// RegionSpec describes one region.
type RegionSpec struct {
	Name     string
	Clusters []ClusterSpec
}

// Config sizes a fleet.
type Config struct {
	Regions             []RegionSpec
	ZeusMembers         int
	ObserversPerCluster int
	Seed                uint64

	// Latency overrides the network latency model (DefaultLatency when
	// nil). Calibrated propagation measurements use this with a 1-member
	// ensemble: consensus timing constants assume datacenter latencies.
	Latency *simnet.LatencyModel

	// Obs, when set, instruments the whole fleet — Zeus commits, observer
	// applies, proxy materializes, and client reads all report into it.
	Obs *obs.Registry
}

// SmallConfig is a laptop-friendly topology: 2 regions x 2 clusters with
// the given servers per cluster.
func SmallConfig(serversPerCluster int, seed uint64) Config {
	return Config{
		Regions: []RegionSpec{
			{Name: "us-west", Clusters: []ClusterSpec{
				{Name: "uw1", Servers: serversPerCluster},
				{Name: "uw2", Servers: serversPerCluster},
			}},
			{Name: "us-east", Clusters: []ClusterSpec{
				{Name: "ue1", Servers: serversPerCluster},
				{Name: "ue2", Servers: serversPerCluster},
			}},
		},
		ZeusMembers:         5,
		ObserversPerCluster: 2,
		Seed:                seed,
	}
}

// Server is one production server: its proxy and client library.
type Server struct {
	ID        simnet.NodeID
	Placement simnet.Placement
	Proxy     *proxy.Proxy
	Client    *confclient.Client
}

// Fleet is the assembled deployment.
type Fleet struct {
	Net      *simnet.Network
	Ensemble *zeus.Ensemble
	// Obs is the fleet-wide observability registry (nil when not
	// configured); the pipeline inherits it unless given its own.
	Obs *obs.Registry
	// Monitor is the fleet-health plane (nil until AttachMonitor).
	Monitor *monitor.Monitor

	servers   []*Server
	byID      map[simnet.NodeID]*Server
	byCluster map[string][]*Server
	observers map[string][]simnet.NodeID // cluster -> observer ids

	// watched are the config paths the "applications" on every server
	// subscribe to; the health model evaluates fault markers in them.
	watched map[string]bool

	// appModel computes a server's health sample; replaceable.
	appModel func(f *Fleet, s *Server) health.Sample
}

// New builds the fleet on a fresh network and elects the Zeus leader.
func New(cfg Config) *Fleet {
	lat := simnet.DefaultLatency()
	if cfg.Latency != nil {
		lat = *cfg.Latency
	}
	net := simnet.New(lat, cfg.Seed)
	net.SetObs(cfg.Obs)
	f := &Fleet{
		Net:       net,
		Obs:       cfg.Obs,
		byID:      make(map[simnet.NodeID]*Server),
		byCluster: make(map[string][]*Server),
		observers: make(map[string][]simnet.NodeID),
		watched:   make(map[string]bool),
	}
	f.appModel = DefaultAppModel

	// Zeus members spread round-robin across the first cluster of each
	// region (the paper runs the consensus across regions for resilience).
	var zeusPlacements []simnet.Placement
	for _, r := range cfg.Regions {
		zeusPlacements = append(zeusPlacements,
			simnet.Placement{Region: r.Name, Cluster: r.Clusters[0].Name + "-zk"})
	}
	if cfg.ZeusMembers < 1 {
		cfg.ZeusMembers = 5
	}
	f.Ensemble = zeus.StartEnsemble(net, cfg.ZeusMembers, zeusPlacements)
	f.Ensemble.SetObs(cfg.Obs)

	for _, r := range cfg.Regions {
		for _, c := range r.Clusters {
			place := simnet.Placement{Region: r.Name, Cluster: c.Name}
			// Observers for this cluster.
			var obsIDs []simnet.NodeID
			n := cfg.ObserversPerCluster
			if n < 1 {
				n = 2
			}
			for i := 0; i < n; i++ {
				id := simnet.NodeID(fmt.Sprintf("obs-%s-%d", c.Name, i))
				f.Ensemble.AddObserver(id, place)
				obsIDs = append(obsIDs, id)
			}
			f.observers[c.Name] = obsIDs
			// Servers.
			for i := 0; i < c.Servers; i++ {
				id := simnet.NodeID(fmt.Sprintf("srv-%s-%d", c.Name, i))
				px := proxy.New(net, id, place, obsIDs, nil)
				px.Obs = cfg.Obs
				cl := confclient.New(px)
				cl.SetObs(cfg.Obs)
				s := &Server{ID: id, Placement: place, Proxy: px, Client: cl}
				f.servers = append(f.servers, s)
				f.byID[id] = s
				f.byCluster[c.Name] = append(f.byCluster[c.Name], s)
			}
		}
	}
	return f
}

// AllServers returns every server.
func (f *Fleet) AllServers() []*Server { return f.servers }

// ServerByID resolves a server.
func (f *Fleet) ServerByID(id simnet.NodeID) *Server { return f.byID[id] }

// Cluster returns the servers in a cluster.
func (f *Fleet) Cluster(name string) []*Server { return f.byCluster[name] }

// ClusterNames lists cluster names, sorted.
func (f *Fleet) ClusterNames() []string {
	out := make([]string, 0, len(f.byCluster))
	for n := range f.byCluster {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Observers returns a cluster's observer ids.
func (f *Fleet) Observers(cluster string) []simnet.NodeID { return f.observers[cluster] }

// SubscribeAll makes every server's application subscribe to a config
// path: the proxies fetch it with watches, so updates push down the tree.
func (f *Fleet) SubscribeAll(path string) {
	f.watched[path] = true
	for _, s := range f.servers {
		s.Proxy.Want(path)
	}
}

// WatchedPaths lists the fleet-wide subscribed paths, sorted.
func (f *Fleet) WatchedPaths() []string {
	out := make([]string, 0, len(f.watched))
	for p := range f.watched {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// AttachMonitor stands up the fleet-health plane: a monitor node folding
// Zeus convergence watermarks against proxy heartbeats. Zero-value
// Ensemble/Obs fields inherit the fleet's; every existing proxy starts
// heartbeating at cfg.HeartbeatEvery. Call once, before driving traffic.
func (f *Fleet) AttachMonitor(cfg monitor.Config) *monitor.Monitor {
	if cfg.Ensemble == nil {
		cfg.Ensemble = f.Ensemble
	}
	if cfg.Obs == nil {
		cfg.Obs = f.Obs
	}
	m := monitor.New(cfg)
	// Place the monitor alongside the first region's consensus nodes; its
	// exact placement only changes heartbeat latency, not semantics.
	place := simnet.Placement{Region: "monitor", Cluster: "monitor"}
	if len(f.servers) > 0 {
		place = f.servers[0].Placement
	}
	m.Attach(f.Net, place)
	for _, s := range f.servers {
		s.Proxy.EnableMonitor(m.ID(), m.Config().HeartbeatEvery)
	}
	f.Monitor = m
	return m
}

// SetAppModel replaces the health model.
func (f *Fleet) SetAppModel(fn func(f *Fleet, s *Server) health.Sample) { f.appModel = fn }

// ---- canary.Deployment implementation ----

// Servers lists the fleet's server ids (stable order: creation order).
func (f *Fleet) Servers() []simnet.NodeID {
	out := make([]simnet.NodeID, len(f.servers))
	for i, s := range f.servers {
		out[i] = s.ID
	}
	return out
}

// ServersIn implements canary.ClusterTargeter: the servers of one cluster,
// enabling "test in a full cluster" phases.
func (f *Fleet) ServersIn(cluster string) []simnet.NodeID {
	servers := f.byCluster[cluster]
	out := make([]simnet.NodeID, len(servers))
	for i, s := range servers {
		out[i] = s.ID
	}
	return out
}

// DeployTemp temporarily deploys a config to the given servers' proxies.
func (f *Fleet) DeployTemp(servers []simnet.NodeID, path string, data []byte) {
	f.watched[path] = true
	for _, id := range servers {
		if s := f.byID[id]; s != nil {
			s.Proxy.SetOverride(path, data)
		}
	}
}

// Rollback clears temporary deployments.
func (f *Fleet) Rollback(servers []simnet.NodeID, path string) {
	for _, id := range servers {
		if s := f.byID[id]; s != nil {
			s.Proxy.ClearOverride(path)
		}
	}
}

// Sample implements health.Collector via the fleet's app model.
func (f *Fleet) Sample(server simnet.NodeID) health.Sample {
	s := f.byID[server]
	if s == nil {
		return health.Sample{}
	}
	return f.appModel(f, s)
}
