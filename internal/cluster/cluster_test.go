package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"configerator/internal/health"
	"configerator/internal/simnet"
	"configerator/internal/zeus"
)

func newFleet(t *testing.T) *Fleet {
	t.Helper()
	f := New(SmallConfig(5, 42))
	f.Net.RunFor(10 * time.Second)
	if f.Ensemble.Leader() == "" {
		t.Fatal("no zeus leader")
	}
	return f
}

var writerSeq int

func writeZeus(t *testing.T, f *Fleet, path, data string) {
	t.Helper()
	writerSeq++
	id := simnet.NodeID(fmt.Sprintf("test-writer-%d", writerSeq))
	cl := zeus.NewClient(id, f.Ensemble.Members)
	f.Net.AddNode(id, simnet.Placement{Region: "us-west", Cluster: "ctrl"}, cl)
	done := false
	f.Net.After(0, func() {
		ctx := simnet.MakeContext(f.Net, id)
		cl.Write(&ctx, path, []byte(data), func(zeus.WriteResult) { done = true })
	})
	for i := 0; i < 100 && !done; i++ {
		f.Net.RunFor(200 * time.Millisecond)
	}
	if !done {
		t.Fatal("zeus write never committed")
	}
	f.Net.RunFor(10 * time.Second)
}

func TestTopology(t *testing.T) {
	f := newFleet(t)
	if got := len(f.AllServers()); got != 20 {
		t.Errorf("servers = %d, want 20", got)
	}
	if got := len(f.ClusterNames()); got != 4 {
		t.Errorf("clusters = %v", f.ClusterNames())
	}
	for _, c := range f.ClusterNames() {
		if len(f.Observers(c)) != 2 {
			t.Errorf("cluster %s observers = %d", c, len(f.Observers(c)))
		}
		if len(f.Cluster(c)) != 5 {
			t.Errorf("cluster %s servers = %d", c, len(f.Cluster(c)))
		}
	}
}

func TestFleetWideDistribution(t *testing.T) {
	f := newFleet(t)
	f.SubscribeAll("/configs/app.json")
	writeZeus(t, f, "/configs/app.json", `{"v":1}`)
	for _, s := range f.AllServers() {
		cfg, err := s.Client.Get(context.Background(), "/configs/app.json")
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if cfg.Int("v", 0) != 1 {
			t.Fatalf("%s: v = %d", s.ID, cfg.Int("v", 0))
		}
	}
}

func TestBaselineHealth(t *testing.T) {
	f := newFleet(t)
	s := f.Sample(f.AllServers()[0].ID)
	if s[health.MetricErrorRate] != baseErrorRate || s[health.MetricLatencyMs] != baseLatencyMs {
		t.Errorf("baseline sample = %v", s)
	}
	if len(f.Sample("no-such-server")) != 0 {
		t.Error("unknown server should sample empty")
	}
}

func TestFaultMarkersMoveMetrics(t *testing.T) {
	f := newFleet(t)
	f.SubscribeAll("/configs/app.json")
	writeZeus(t, f, "/configs/app.json", `{"_fault":{"type":"error","intensity":1.0}}`)
	s := f.Sample(f.AllServers()[0].ID)
	if s[health.MetricErrorRate] <= baseErrorRate*5 {
		t.Errorf("error fault not reflected: %v", s[health.MetricErrorRate])
	}
}

func TestCanaryDeploymentInterface(t *testing.T) {
	f := newFleet(t)
	servers := f.Servers()
	test := servers[:3]
	f.DeployTemp(test, "/configs/new.json", []byte(`{"_fault":{"type":"log_spew","intensity":1.0}}`))
	// Test servers see the spew; control servers do not.
	testSample := f.Sample(test[0])
	controlSample := f.Sample(servers[10])
	if testSample[health.MetricLogSpew] <= controlSample[health.MetricLogSpew] {
		t.Errorf("override not visible: test=%v control=%v",
			testSample[health.MetricLogSpew], controlSample[health.MetricLogSpew])
	}
	f.Rollback(test, "/configs/new.json")
	after := f.Sample(test[0])
	if after[health.MetricLogSpew] != controlSample[health.MetricLogSpew] {
		t.Errorf("rollback did not restore health: %v", after[health.MetricLogSpew])
	}
}

func TestLoadFaultScalesWithBreadth(t *testing.T) {
	f := newFleet(t)
	data := []byte(`{"_fault":{"type":"load","intensity":1.0}}`)
	servers := f.Servers()
	// Narrow deployment: tiny latency shift.
	f.DeployTemp(servers[:1], "/configs/load.json", data)
	narrow := f.Sample(servers[0])[health.MetricLatencyMs]
	// Broad deployment: large shift on the same server.
	f.DeployTemp(servers[1:], "/configs/load.json", data)
	broad := f.Sample(servers[0])[health.MetricLatencyMs]
	if broad <= narrow*2 {
		t.Errorf("load fault did not scale with breadth: narrow=%v broad=%v", narrow, broad)
	}
}
