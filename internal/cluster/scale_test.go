package cluster

import (
	"context"
	"testing"
	"time"

	"configerator/internal/health"
)

// TestLargeFleetConvergence pushes one config change to a 400-server fleet
// (2 regions x 2 clusters x 100 servers) and checks that every proxy
// converges through the leader→observer→proxy tree, and that the tree's
// fanout keeps the leader's direct flock small: the leader pushes to 8
// observers, not to 400 proxies.
func TestLargeFleetConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("large fleet")
	}
	f := New(SmallConfig(100, 1234)) // 400 servers
	f.Net.RunFor(10 * time.Second)
	if f.Ensemble.Leader() == "" {
		t.Fatal("no leader")
	}
	f.SubscribeAll("/configs/wide.json")
	f.Net.RunFor(5 * time.Second)
	start := f.Net.Now()
	writeZeus(t, f, "/configs/wide.json", `{"v":7}`)
	var slowest time.Duration
	for _, s := range f.AllServers() {
		cfg, err := s.Client.Get(context.Background(), "/configs/wide.json")
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if cfg.Int("v", 0) != 7 {
			t.Fatalf("%s did not converge", s.ID)
		}
		_ = cfg
	}
	_ = slowest
	elapsed := f.Net.Now().Sub(start)
	// writeZeus runs up to ~10s of settle; the point is convergence, and
	// the tree reaching 400 proxies within that window.
	if elapsed > time.Minute {
		t.Errorf("convergence window = %v", elapsed)
	}
	// Health sampling stays cheap at this scale.
	sample := f.Sample(f.AllServers()[123].ID)
	if sample[health.MetricLatencyMs] <= 0 {
		t.Error("health sample broken at scale")
	}
}

// TestObserverOutageClusterStillServes kills every observer in one cluster:
// its proxies keep serving from cache, and recover when observers return.
func TestObserverOutageClusterStillServes(t *testing.T) {
	f := New(SmallConfig(5, 99))
	f.Net.RunFor(10 * time.Second)
	f.SubscribeAll("/configs/app.json")
	writeZeus(t, f, "/configs/app.json", `{"v":1}`)

	cluster := f.ClusterNames()[0]
	for _, obs := range f.Observers(cluster) {
		f.Net.Fail(obs)
	}
	f.Net.RunFor(10 * time.Second)
	// Cached reads still work in the darkened cluster.
	for _, s := range f.Cluster(cluster) {
		cfg, err := s.Client.Get(context.Background(), "/configs/app.json")
		if err != nil || cfg.Int("v", 0) != 1 {
			t.Fatalf("%s lost cached config during observer outage: %v", s.ID, err)
		}
	}
	// A write lands while the cluster is dark; it must arrive after
	// observers recover.
	writeZeus(t, f, "/configs/app.json", `{"v":2}`)
	for _, obs := range f.Observers(cluster) {
		f.Net.Recover(obs)
	}
	f.Net.RunFor(30 * time.Second)
	for _, s := range f.Cluster(cluster) {
		cfg, err := s.Client.Get(context.Background(), "/configs/app.json")
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Int("v", 0) != 2 {
			t.Fatalf("%s stuck at v%d after observer recovery", s.ID, cfg.Int("v", 0))
		}
	}
}
