// Package confclient is the Configerator client library that applications
// link in (§3.4): typed access to JSON configs served by the local proxy,
// change watches, and the disk-cache fallback that keeps an application
// running "even if all Configerator components fail".
//
// The v2 API is context-aware: Get(ctx, path) returns a Value carrying
// staleness metadata (version, source, age) so callers can tell a fresh
// read from a degraded one, and Watch(ctx, path, fn) stops delivering —
// and releases its proxy-side registration — once ctx is cancelled. The
// v1 methods (Want/Current/Subscribe) remain as thin deprecated shims for
// one release.
//
// Read hot path. Configs change rarely and are read constantly, so Get
// decodes each config version exactly once: the parse result is memoized
// in the proxy entry's per-version Memo slot, and decodes are further
// deduplicated by content hash — two paths holding identical bytes (or one
// path flapping between two versions) share a single json.Unmarshal. A
// warm Get is one proxy snapshot read plus one atomic memo load: zero
// allocations (BenchmarkGet asserts it), safe from any goroutine. The
// returned *Value is shared between readers and therefore immutable —
// accessors that expose compound data (Strings, Map) copy on return.
package confclient

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"configerator/internal/obs"
	"configerator/internal/proxy"
	"configerator/internal/stats"
	"configerator/internal/vcs"
)

// Value is a parsed view of one JSON config artifact, plus the staleness
// metadata of the read that produced it. Values returned by Get are shared
// between all readers of the same config version: treat them as immutable
// and use the accessors, which copy mutable shapes on return.
type Value struct {
	Path    string
	Version int64
	Raw     []byte
	// Source says which layer served this value: proxy.SourceFresh from
	// memory with a healthy distribution plane, proxy.SourceCached from
	// memory during a plane outage, proxy.SourceStale from the on-disk
	// fallback.
	Source proxy.Source
	// Age is how long ago the local proxy last confirmed this value with
	// an observer (0 for fresh pushes; set on degraded reads so callers
	// can bound how stale a cached/stale value may be).
	Age    time.Duration
	fields map[string]interface{}
}

// Config is the v1 name for Value.
//
// Deprecated: use Value.
type Config = Value

// Fresh reports whether the value was served by a healthy distribution
// plane (as opposed to a degraded cached/stale layer).
func (c *Value) Fresh() bool { return c.Source == proxy.SourceFresh }

// emptyFields backs every unparseable or empty config so they share one
// allocation. It must never be written.
var emptyFields = map[string]interface{}{}

// Bool returns a boolean field, or def when absent or mistyped.
func (c *Value) Bool(field string, def bool) bool {
	if v, ok := c.fields[field].(bool); ok {
		return v
	}
	return def
}

// Int returns an integer field, or def when absent or mistyped.
func (c *Value) Int(field string, def int64) int64 {
	if v, ok := c.fields[field].(float64); ok {
		return int64(v)
	}
	return def
}

// Float returns a numeric field, or def when absent or mistyped.
func (c *Value) Float(field string, def float64) float64 {
	if v, ok := c.fields[field].(float64); ok {
		return v
	}
	return def
}

// String returns a string field, or def when absent or mistyped.
func (c *Value) String(field, def string) string {
	if v, ok := c.fields[field].(string); ok {
		return v
	}
	return def
}

// Strings returns a string-list field (nil when absent or mistyped). The
// slice is the caller's to mutate: it is built fresh on every call.
func (c *Value) Strings(field string) []string {
	raw, ok := c.fields[field].([]interface{})
	if !ok {
		return nil
	}
	out := make([]string, 0, len(raw))
	for _, e := range raw {
		if s, ok := e.(string); ok {
			out = append(out, s)
		}
	}
	return out
}

// Map returns a nested object field (nil when absent or mistyped). The map
// is a copy: mutating it cannot corrupt the shared decoded value that
// other readers of this config version see. Values nested inside it are
// still shared — treat them as read-only.
func (c *Value) Map(field string) map[string]interface{} {
	v, ok := c.fields[field].(map[string]interface{})
	if !ok {
		return nil
	}
	out := make(map[string]interface{}, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

// Has reports whether a field is present.
func (c *Value) Has(field string) bool {
	_, ok := c.fields[field]
	return ok
}

// Client is an application's handle to its local proxy. Get and Watch are
// safe for concurrent use from any goroutine.
type Client struct {
	proxy *proxy.Proxy

	obs *obs.Registry
	// cnt is the counters handle hoisted out of the per-call path: with no
	// registry attached it is a nil *stats.Counters whose Add is a no-op,
	// so miss/deleted/degraded accounting costs one nil check instead of a
	// registry lookup per call.
	cnt *stats.Counters

	// Hot-path read accounting. These are atomics, not obs counters: a
	// warm Get must not take the counters mutex (or allocate).
	hits     atomic.Int64 // successful Gets
	memoHits atomic.Int64 // Gets served from a per-version memo slot

	// byHash deduplicates decodes across paths and versions: identical
	// bytes (same content hash) decode once no matter where they appear.
	mu     sync.Mutex
	byHash map[uint64]map[string]interface{}
}

// byHashCap bounds the decode-dedup table; when full it is reset rather
// than evicted (config churn is slow — refilling is cheap and rare).
const byHashCap = 4096

// New returns a client bound to the local proxy.
func New(p *proxy.Proxy) *Client {
	return &Client{
		proxy:  p,
		cnt:    (*obs.Registry)(nil).Counters(), // no-op default (nil-safe)
		byHash: make(map[uint64]map[string]interface{}),
	}
}

// SetObs attaches an observability registry that counts application read
// outcomes; commit-to-read latency is recorded by the proxy underneath.
// The counters handle is resolved once here, keeping the per-call paths
// free of registry lookups. Call before sharing the client across
// goroutines.
func (c *Client) SetObs(r *obs.Registry) {
	c.obs = r
	c.cnt = r.Counters()
}

// Hits reports the number of successful Gets (hot-path accounting kept in
// atomics so reads never contend on the counters mutex).
func (c *Client) Hits() int64 { return c.hits.Load() }

// MemoHits reports how many Gets were served from a per-version decode
// memo — i.e. without parsing anything.
func (c *Client) MemoHits() int64 { return c.memoHits.Load() }

// decodeFields parses data, deduplicating by content hash: the same bytes
// at two paths (or re-materialized at the same path) decode exactly once.
// confclient.parse.memo counts hash-table hits, confclient.parse.decode
// actual json.Unmarshal calls.
func (c *Client) decodeFields(data []byte) map[string]interface{} {
	if len(data) == 0 {
		return emptyFields
	}
	h := vcs.HashBytes(data)
	c.mu.Lock()
	f, ok := c.byHash[h]
	c.mu.Unlock()
	if ok {
		c.cnt.Add("confclient.parse.memo", 1)
		return f
	}
	var fields map[string]interface{}
	if err := json.Unmarshal(data, &fields); err != nil || fields == nil {
		// Non-object JSON (arrays, scalars) and raw configs are legal;
		// typed getters just won't find fields.
		fields = emptyFields
	}
	c.cnt.Add("confclient.parse.decode", 1)
	c.mu.Lock()
	if len(c.byHash) >= byHashCap {
		c.byHash = make(map[uint64]map[string]interface{})
	}
	c.byHash[h] = fields
	c.mu.Unlock()
	return fields
}

// valueFor turns a proxy entry into the shared *Value for its version,
// decoding at most once per version (and at most once per distinct
// content, across versions and paths). The shared value always reads as
// fresh; degraded reads get a copy carrying their real Source/Age.
func (c *Client) valueFor(e proxy.Entry) *Value {
	m := e.Memo()
	if v, ok := m.Load().(*Value); ok {
		c.memoHits.Add(1)
		return v
	}
	v := &Value{
		Path:    e.Path,
		Version: e.Version,
		Raw:     e.Data,
		Source:  proxy.SourceFresh,
		fields:  c.decodeFields(e.Data),
	}
	// Racing readers of the same new version may both build v; either
	// result is correct and the slot keeps one (disk entries have no slot:
	// m is nil and Store no-ops).
	m.Store(v)
	return v
}

// Get returns the latest locally known value of a config, annotated with
// where it came from and how stale it may be. It never blocks:
// distribution is push-based, so the local copy is fresh except in the
// seconds after a change, and during a distribution-plane outage the
// proxy degrades to cached/stale values (Source says which) rather than
// failing. The error reports a cancelled context, or a config that has
// never been seen on this server at all.
//
// Warm fresh reads return the shared per-version value with zero
// allocations; degraded reads allocate one copy to carry Source and Age.
func (c *Client) Get(ctx context.Context, path string) (*Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := c.proxy.Read(path)
	if !r.OK {
		c.cnt.Add("confclient.read.miss", 1)
		return nil, fmt.Errorf("confclient: %s not available (never fetched on this server, or staleness refused)", path)
	}
	if !r.Exists {
		c.cnt.Add("confclient.read.deleted", 1)
		return nil, fmt.Errorf("confclient: %s deleted", path)
	}
	c.hits.Add(1)
	v := c.valueFor(r.Entry)
	if r.Source != proxy.SourceFresh {
		c.cnt.Add("confclient.read.degraded", 1)
		// The age distribution of degraded serving is the staleness the
		// fleet-health SLOs bound; observing it here costs nothing on the
		// fresh (zero-alloc) path.
		c.obs.Observe("confclient.read.stale_age", r.Age)
		// Degraded read: same decode, real staleness metadata on a copy so
		// the shared value stays immutable.
		vv := *v
		vv.Source, vv.Age = r.Source, r.Age
		return &vv, nil
	}
	return v, nil
}

// Watch invokes fn with the parsed value on every change (and does an
// initial fetch). Delivery stops — and the proxy-side registration is
// released — once ctx is cancelled, so a watcher cannot leak across proxy
// restarts. Unparseable payloads are delivered with empty fields so the
// application can fall back to Raw.
func (c *Client) Watch(ctx context.Context, path string, fn func(*Value)) {
	if ctx.Err() != nil {
		return
	}
	// Liveness is checked lazily at delivery time (not via a goroutine or
	// AfterFunc) so the single-threaded simulation stays deterministic and
	// race-free.
	alive := func() bool { return ctx.Err() == nil }
	c.proxy.SubscribeWhile(path, alive, func(e proxy.Entry) {
		if !e.Exists {
			return
		}
		fn(c.valueFor(e))
	})
}

// Want prefetches configs so later Get calls hit the warm cache. An
// application declares the configs it needs on startup.
func (c *Client) Want(paths ...string) {
	for _, p := range paths {
		c.proxy.Want(p)
	}
}

// Current returns the latest locally known value of a config.
//
// Deprecated: use Get, which is context-aware and reports staleness.
func (c *Client) Current(path string) (*Value, error) {
	return c.Get(context.Background(), path)
}

// Subscribe invokes fn with the parsed config on every change.
//
// Deprecated: use Watch, whose context releases the registration.
func (c *Client) Subscribe(path string, fn func(*Value)) {
	c.Watch(context.Background(), path, fn)
}
