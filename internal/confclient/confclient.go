// Package confclient is the Configerator client library that applications
// link in (§3.4): typed access to JSON configs served by the local proxy,
// change watches, and the disk-cache fallback that keeps an application
// running "even if all Configerator components fail".
//
// The v2 API is context-aware: Get(ctx, path) returns a Value carrying
// staleness metadata (version, source, age) so callers can tell a fresh
// read from a degraded one, and Watch(ctx, path, fn) stops delivering —
// and releases its proxy-side registration — once ctx is cancelled. The
// v1 methods (Want/Current/Subscribe) remain as thin deprecated shims for
// one release.
package confclient

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"configerator/internal/obs"
	"configerator/internal/proxy"
)

// Value is a parsed view of one JSON config artifact, plus the staleness
// metadata of the read that produced it.
type Value struct {
	Path    string
	Version int64
	Raw     []byte
	// Source says which layer served this value: proxy.SourceFresh from
	// memory with a healthy distribution plane, proxy.SourceCached from
	// memory during a plane outage, proxy.SourceStale from the on-disk
	// fallback.
	Source proxy.Source
	// Age is how long ago the local proxy last confirmed this value with
	// an observer (0 for fresh pushes).
	Age    time.Duration
	fields map[string]interface{}
}

// Config is the v1 name for Value.
//
// Deprecated: use Value.
type Config = Value

// Fresh reports whether the value was served by a healthy distribution
// plane (as opposed to a degraded cached/stale layer).
func (c *Value) Fresh() bool { return c.Source == proxy.SourceFresh }

func parseValue(e proxy.Entry) (*Value, error) {
	c := &Value{Path: e.Path, Version: e.Version, Raw: e.Data}
	if len(e.Data) == 0 {
		c.fields = map[string]interface{}{}
		return c, nil
	}
	var fields map[string]interface{}
	if err := json.Unmarshal(e.Data, &fields); err != nil {
		// Non-object JSON (arrays, scalars) and raw configs are legal;
		// typed getters just won't find fields.
		c.fields = map[string]interface{}{}
		return c, nil
	}
	c.fields = fields
	return c, nil
}

// Bool returns a boolean field, or def when absent or mistyped.
func (c *Value) Bool(field string, def bool) bool {
	if v, ok := c.fields[field].(bool); ok {
		return v
	}
	return def
}

// Int returns an integer field, or def when absent or mistyped.
func (c *Value) Int(field string, def int64) int64 {
	if v, ok := c.fields[field].(float64); ok {
		return int64(v)
	}
	return def
}

// Float returns a numeric field, or def when absent or mistyped.
func (c *Value) Float(field string, def float64) float64 {
	if v, ok := c.fields[field].(float64); ok {
		return v
	}
	return def
}

// String returns a string field, or def when absent or mistyped.
func (c *Value) String(field, def string) string {
	if v, ok := c.fields[field].(string); ok {
		return v
	}
	return def
}

// Strings returns a string-list field (nil when absent or mistyped).
func (c *Value) Strings(field string) []string {
	raw, ok := c.fields[field].([]interface{})
	if !ok {
		return nil
	}
	out := make([]string, 0, len(raw))
	for _, e := range raw {
		if s, ok := e.(string); ok {
			out = append(out, s)
		}
	}
	return out
}

// Map returns a nested object field (nil when absent or mistyped).
func (c *Value) Map(field string) map[string]interface{} {
	if v, ok := c.fields[field].(map[string]interface{}); ok {
		return v
	}
	return nil
}

// Has reports whether a field is present.
func (c *Value) Has(field string) bool {
	_, ok := c.fields[field]
	return ok
}

// Client is an application's handle to its local proxy.
type Client struct {
	proxy *proxy.Proxy

	// Obs, when set, counts application read outcomes; commit-to-read
	// latency is recorded by the proxy underneath (nil = no
	// instrumentation).
	Obs *obs.Registry
}

// New returns a client bound to the local proxy.
func New(p *proxy.Proxy) *Client { return &Client{proxy: p} }

// Get returns the latest locally known value of a config, annotated with
// where it came from and how stale it may be. It never blocks:
// distribution is push-based, so the local copy is fresh except in the
// seconds after a change, and during a distribution-plane outage the
// proxy degrades to cached/stale values (Source says which) rather than
// failing. The error reports a cancelled context, or a config that has
// never been seen on this server at all.
func (c *Client) Get(ctx context.Context, path string) (*Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := c.proxy.Read(path)
	if !r.OK {
		c.Obs.Add("confclient.read.miss", 1)
		return nil, fmt.Errorf("confclient: %s not available (never fetched on this server, or staleness refused)", path)
	}
	if !r.Exists {
		c.Obs.Add("confclient.read.deleted", 1)
		return nil, fmt.Errorf("confclient: %s deleted", path)
	}
	c.Obs.Add("confclient.read.hit", 1)
	if r.Source != proxy.SourceFresh {
		c.Obs.Add("confclient.read.degraded", 1)
	}
	v, err := parseValue(r.Entry)
	if err != nil {
		return nil, err
	}
	v.Source, v.Age = r.Source, r.Age
	return v, nil
}

// Watch invokes fn with the parsed value on every change (and does an
// initial fetch). Delivery stops — and the proxy-side registration is
// released — once ctx is cancelled, so a watcher cannot leak across proxy
// restarts. Unparseable payloads are delivered with empty fields so the
// application can fall back to Raw.
func (c *Client) Watch(ctx context.Context, path string, fn func(*Value)) {
	if ctx.Err() != nil {
		return
	}
	// Liveness is checked lazily at delivery time (not via a goroutine or
	// AfterFunc) so the single-threaded simulation stays deterministic and
	// race-free.
	alive := func() bool { return ctx.Err() == nil }
	c.proxy.SubscribeWhile(path, alive, func(e proxy.Entry) {
		if !e.Exists {
			return
		}
		v, err := parseValue(e)
		if err != nil {
			return
		}
		v.Source = proxy.SourceFresh
		fn(v)
	})
}

// Want prefetches configs so later Get calls hit the warm cache. An
// application declares the configs it needs on startup.
func (c *Client) Want(paths ...string) {
	for _, p := range paths {
		c.proxy.Want(p)
	}
}

// Current returns the latest locally known value of a config.
//
// Deprecated: use Get, which is context-aware and reports staleness.
func (c *Client) Current(path string) (*Value, error) {
	return c.Get(context.Background(), path)
}

// Subscribe invokes fn with the parsed config on every change.
//
// Deprecated: use Watch, whose context releases the registration.
func (c *Client) Subscribe(path string, fn func(*Value)) {
	c.Watch(context.Background(), path, fn)
}
