// Package confclient is the Configerator client library that applications
// link in (§3.4): typed access to JSON configs served by the local proxy,
// subscription callbacks, and the disk-cache fallback that keeps an
// application running "even if all Configerator components fail".
package confclient

import (
	"encoding/json"
	"fmt"

	"configerator/internal/obs"
	"configerator/internal/proxy"
)

// Config is a parsed view of one JSON config artifact.
type Config struct {
	Path    string
	Version int64
	Raw     []byte
	fields  map[string]interface{}
}

func parseConfig(e proxy.Entry) (*Config, error) {
	c := &Config{Path: e.Path, Version: e.Version, Raw: e.Data}
	if len(e.Data) == 0 {
		c.fields = map[string]interface{}{}
		return c, nil
	}
	var fields map[string]interface{}
	if err := json.Unmarshal(e.Data, &fields); err != nil {
		// Non-object JSON (arrays, scalars) and raw configs are legal;
		// typed getters just won't find fields.
		c.fields = map[string]interface{}{}
		return c, nil
	}
	c.fields = fields
	return c, nil
}

// Bool returns a boolean field, or def when absent or mistyped.
func (c *Config) Bool(field string, def bool) bool {
	if v, ok := c.fields[field].(bool); ok {
		return v
	}
	return def
}

// Int returns an integer field, or def when absent or mistyped.
func (c *Config) Int(field string, def int64) int64 {
	if v, ok := c.fields[field].(float64); ok {
		return int64(v)
	}
	return def
}

// Float returns a numeric field, or def when absent or mistyped.
func (c *Config) Float(field string, def float64) float64 {
	if v, ok := c.fields[field].(float64); ok {
		return v
	}
	return def
}

// String returns a string field, or def when absent or mistyped.
func (c *Config) String(field, def string) string {
	if v, ok := c.fields[field].(string); ok {
		return v
	}
	return def
}

// Strings returns a string-list field (nil when absent or mistyped).
func (c *Config) Strings(field string) []string {
	raw, ok := c.fields[field].([]interface{})
	if !ok {
		return nil
	}
	out := make([]string, 0, len(raw))
	for _, e := range raw {
		if s, ok := e.(string); ok {
			out = append(out, s)
		}
	}
	return out
}

// Map returns a nested object field (nil when absent or mistyped).
func (c *Config) Map(field string) map[string]interface{} {
	if v, ok := c.fields[field].(map[string]interface{}); ok {
		return v
	}
	return nil
}

// Has reports whether a field is present.
func (c *Config) Has(field string) bool {
	_, ok := c.fields[field]
	return ok
}

// Client is an application's handle to its local proxy.
type Client struct {
	proxy *proxy.Proxy

	// Obs, when set, counts application read outcomes; commit-to-read
	// latency is recorded by the proxy underneath (nil = no
	// instrumentation).
	Obs *obs.Registry
}

// New returns a client bound to the local proxy.
func New(p *proxy.Proxy) *Client { return &Client{proxy: p} }

// Want prefetches configs so later Current calls hit the warm cache. An
// application declares the configs it needs on startup.
func (c *Client) Want(paths ...string) {
	for _, p := range paths {
		c.proxy.Want(p)
	}
}

// Current returns the latest locally known value of a config. It never
// blocks: distribution is push-based, so the local copy is fresh except in
// the seconds after a change. The error reports a config that has never
// been seen on this server at all.
func (c *Client) Current(path string) (*Config, error) {
	e, ok := c.proxy.Get(path)
	if !ok {
		c.Obs.Add("confclient.read.miss", 1)
		return nil, fmt.Errorf("confclient: %s not available (never fetched on this server)", path)
	}
	if !e.Exists {
		c.Obs.Add("confclient.read.deleted", 1)
		return nil, fmt.Errorf("confclient: %s deleted", path)
	}
	c.Obs.Add("confclient.read.hit", 1)
	return parseConfig(e)
}

// Subscribe invokes fn with the parsed config on every change (and does an
// initial fetch). Unparseable payloads are delivered with empty fields so
// the application can fall back to Raw.
func (c *Client) Subscribe(path string, fn func(*Config)) {
	c.proxy.Subscribe(path, func(e proxy.Entry) {
		if !e.Exists {
			return
		}
		cfg, err := parseConfig(e)
		if err != nil {
			return
		}
		fn(cfg)
	})
}
