package confclient

import (
	"context"
	"testing"
	"time"

	"configerator/internal/obs"
	"configerator/internal/proxy"
	"configerator/internal/simnet"
	"configerator/internal/zeus"
)

func newStack(t *testing.T) (*simnet.Network, *zeus.Client, *Client, *proxy.Proxy) {
	t.Helper()
	net := simnet.New(simnet.DefaultLatency(), 42)
	ens := zeus.StartEnsemble(net, 3, []simnet.Placement{
		{Region: "us", Cluster: "zk1"},
		{Region: "us", Cluster: "zk2"},
		{Region: "eu", Cluster: "zk3"},
	})
	ens.AddObserver("obs-1", simnet.Placement{Region: "us", Cluster: "web"})
	wc := zeus.NewClient("tailer", ens.Members)
	net.AddNode("tailer", simnet.Placement{Region: "us", Cluster: "ctrl"}, wc)
	net.RunFor(10 * time.Second)
	px := proxy.New(net, "proxy-1", simnet.Placement{Region: "us", Cluster: "web"},
		[]simnet.NodeID{"obs-1"}, nil)
	return net, wc, New(px), px
}

func write(t *testing.T, net *simnet.Network, wc *zeus.Client, path, data string) {
	t.Helper()
	done := false
	net.After(0, func() {
		ctx := simnet.MakeContext(net, "tailer")
		wc.Write(&ctx, path, []byte(data), func(zeus.WriteResult) { done = true })
	})
	for i := 0; i < 100 && !done; i++ {
		net.RunFor(200 * time.Millisecond)
	}
	if !done {
		t.Fatal("write never committed")
	}
	net.RunFor(5 * time.Second)
}

func TestTypedGetters(t *testing.T) {
	net, wc, cl, _ := newStack(t)
	write(t, net, wc, "/configs/app",
		`{"enabled":true,"batch":64,"rate":0.25,"name":"cache","hosts":["h1","h2"],"limits":{"mem":512}}`)
	cl.Want("/configs/app")
	net.RunFor(2 * time.Second)
	cfg, err := cl.Get(context.Background(), "/configs/app")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Bool("enabled", false) {
		t.Error("Bool")
	}
	if cfg.Int("batch", 0) != 64 {
		t.Error("Int")
	}
	if cfg.Float("rate", 0) != 0.25 {
		t.Error("Float")
	}
	if cfg.String("name", "") != "cache" {
		t.Error("String")
	}
	if hs := cfg.Strings("hosts"); len(hs) != 2 || hs[0] != "h1" {
		t.Errorf("Strings = %v", hs)
	}
	if m := cfg.Map("limits"); m == nil || m["mem"].(float64) != 512 {
		t.Errorf("Map = %v", m)
	}
	if !cfg.Has("enabled") || cfg.Has("nope") {
		t.Error("Has")
	}
	// Defaults on missing fields.
	if cfg.Bool("nope", true) != true || cfg.Int("nope", 7) != 7 ||
		cfg.String("nope", "d") != "d" || cfg.Float("nope", 1.5) != 1.5 {
		t.Error("defaults")
	}
	// Defaults on mistyped fields.
	if cfg.Bool("batch", true) != true || cfg.Int("name", 9) != 9 {
		t.Error("mistyped defaults")
	}
}

func TestGetUnknown(t *testing.T) {
	_, _, cl, _ := newStack(t)
	if _, err := cl.Get(context.Background(), "/configs/unknown"); err == nil {
		t.Fatal("expected error for unknown config")
	}
}

func TestWatchFiresOnChange(t *testing.T) {
	net, wc, cl, _ := newStack(t)
	write(t, net, wc, "/configs/app", `{"v":1}`)
	var seen []int64
	cl.Watch(context.Background(), "/configs/app", func(c *Value) {
		seen = append(seen, c.Int("v", -1))
	})
	net.RunFor(2 * time.Second)
	write(t, net, wc, "/configs/app", `{"v":2}`)
	write(t, net, wc, "/configs/app", `{"v":3}`)
	if len(seen) < 3 || seen[len(seen)-1] != 3 {
		t.Fatalf("seen = %v", seen)
	}
}

func TestNonObjectJSONDoesNotBreak(t *testing.T) {
	net, wc, cl, _ := newStack(t)
	write(t, net, wc, "/configs/arr", `[1,2,3]`)
	cl.Want("/configs/arr")
	net.RunFor(2 * time.Second)
	cfg, err := cl.Get(context.Background(), "/configs/arr")
	if err != nil {
		t.Fatal(err)
	}
	if string(cfg.Raw) != "[1,2,3]" {
		t.Errorf("Raw = %s", cfg.Raw)
	}
	if cfg.Has("anything") {
		t.Error("array config should expose no fields")
	}
}

func TestAvailabilityThroughDiskCache(t *testing.T) {
	net, wc, cl, px := newStack(t)
	write(t, net, wc, "/configs/app", `{"v":1}`)
	cl.Want("/configs/app")
	net.RunFor(2 * time.Second)

	// A healthy read is marked fresh.
	cfg, err := cl.Get(context.Background(), "/configs/app")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Fresh() || cfg.Source != proxy.SourceFresh {
		t.Errorf("healthy read source = %q, want fresh", cfg.Source)
	}

	// Everything dies: observer and proxy. The deprecated v1 shim still
	// reads through the disk cache.
	net.Fail("obs-1")
	px.Crash()
	net.RunFor(1 * time.Second)
	cfg, err = cl.Current("/configs/app")
	if err != nil {
		t.Fatalf("disk-cache fallback failed: %v", err)
	}
	if cfg.Int("v", 0) != 1 {
		t.Errorf("stale value = %d, want 1", cfg.Int("v", 0))
	}
	if cfg.Source != proxy.SourceStale {
		t.Errorf("outage read source = %q, want stale", cfg.Source)
	}
	if cfg.Age <= 0 {
		t.Errorf("outage read age = %v, want > 0", cfg.Age)
	}
}

// TestGetCancelledContext: a cancelled context fails fast without touching
// the proxy.
func TestGetCancelledContext(t *testing.T) {
	_, _, cl, _ := newStack(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.Get(ctx, "/configs/app"); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestWatchCancellation: after ctx is cancelled the callback stops firing
// and the proxy-side registration is pruned — no leak across restarts.
func TestWatchCancellation(t *testing.T) {
	net, wc, cl, px := newStack(t)
	write(t, net, wc, "/configs/app", `{"v":1}`)
	ctx, cancel := context.WithCancel(context.Background())
	fired := 0
	cl.Watch(ctx, "/configs/app", func(*Value) { fired++ })
	net.RunFor(2 * time.Second)
	write(t, net, wc, "/configs/app", `{"v":2}`)
	if fired < 2 {
		t.Fatalf("watch fired %d times before cancel", fired)
	}
	cancel()
	before := fired
	write(t, net, wc, "/configs/app", `{"v":3}`)
	if fired != before {
		t.Errorf("watch fired after cancel (%d -> %d)", before, fired)
	}
	if n := px.SubCount("/configs/app"); n != 0 {
		t.Errorf("proxy still holds %d subscriptions after cancel", n)
	}
	// A cancelled-context Watch never registers at all.
	cl.Watch(ctx, "/configs/app", func(*Value) { fired++ })
	if n := px.SubCount("/configs/app"); n != 0 {
		t.Errorf("cancelled Watch registered a subscription (%d)", n)
	}
}

// TestDegradedReadObservesStaleAge: degraded reads feed the staleness
// histogram the fleet-health SLOs bound; fresh reads never touch it.
func TestDegradedReadObservesStaleAge(t *testing.T) {
	net, wc, cl, _ := newStack(t)
	reg := obs.New()
	cl.SetObs(reg)
	write(t, net, wc, "/configs/app", `{"v":1}`)
	cl.Want("/configs/app")
	net.RunFor(2 * time.Second)
	if _, err := cl.Get(context.Background(), "/configs/app"); err != nil {
		t.Fatal(err)
	}
	if n := reg.Histogram("confclient.read.stale_age").Count(); n != 0 {
		t.Fatalf("fresh read observed stale age (count=%d)", n)
	}

	net.Fail("obs-1")
	net.RunFor(10 * time.Second) // plane declared down
	cfg, err := cl.Get(context.Background(), "/configs/app")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Source == proxy.SourceFresh {
		t.Fatalf("read still fresh with observer dead")
	}
	h := reg.Histogram("confclient.read.stale_age")
	if h.Count() == 0 {
		t.Fatal("degraded read did not observe stale age")
	}
	if h.Max() <= 0 {
		t.Fatalf("stale age max = %v", h.Max())
	}
}
