package confclient

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"configerator/internal/obs"
	"configerator/internal/proxy"
)

// TestValueCacheAcrossVersions: each committed version of a path is decoded
// once and then served as the same shared *Value; a new version yields a
// new (distinct) value. N versions -> N distinct pointers.
func TestValueCacheAcrossVersions(t *testing.T) {
	net, wc, cl, _ := newStack(t)
	const path = "/configs/versions"
	const n = 5
	seen := make(map[*Value]int64)
	for i := 1; i <= n; i++ {
		write(t, net, wc, path, fmt.Sprintf(`{"v":%d}`, i))
		if i == 1 {
			cl.Want(path)
			net.RunFor(2 * time.Second)
		}
		v1, err := cl.Get(context.Background(), path)
		if err != nil {
			t.Fatal(err)
		}
		memoBefore := cl.MemoHits()
		v2, err := cl.Get(context.Background(), path)
		if err != nil {
			t.Fatal(err)
		}
		if v1 != v2 {
			t.Fatalf("version %d: repeated Gets returned distinct values (%p vs %p)", i, v1, v2)
		}
		if cl.MemoHits() <= memoBefore {
			t.Errorf("version %d: second Get did not hit the memo slot", i)
		}
		if got := v1.Int("v", -1); got != int64(i) {
			t.Fatalf("version %d: v = %d", i, got)
		}
		seen[v1] = v1.Version
	}
	if len(seen) != n {
		t.Errorf("%d versions produced %d distinct values, want %d", n, len(seen), n)
	}
}

// TestSharedDecodeAcrossPaths: two paths holding byte-identical content
// share one json.Unmarshal — the second path's first read is a content-hash
// memo hit, counter-asserted via confclient.parse.memo/parse.decode.
func TestSharedDecodeAcrossPaths(t *testing.T) {
	net, wc, cl, _ := newStack(t)
	reg := obs.New()
	cl.SetObs(reg)
	const body = `{"shared":true,"weight":3}`
	write(t, net, wc, "/configs/shared/a", body)
	write(t, net, wc, "/configs/shared/b", body)
	cl.Want("/configs/shared/a", "/configs/shared/b")
	net.RunFor(2 * time.Second)

	va, err := cl.Get(context.Background(), "/configs/shared/a")
	if err != nil {
		t.Fatal(err)
	}
	if d := reg.Counters().Get("confclient.parse.decode"); d != 1 {
		t.Fatalf("decodes after first path = %d, want 1", d)
	}
	vb, err := cl.Get(context.Background(), "/configs/shared/b")
	if err != nil {
		t.Fatal(err)
	}
	if d := reg.Counters().Get("confclient.parse.decode"); d != 1 {
		t.Errorf("decodes after second path = %d, want 1 (content shared)", d)
	}
	if m := reg.Counters().Get("confclient.parse.memo"); m != 1 {
		t.Errorf("parse.memo = %d, want 1", m)
	}
	if !va.Bool("shared", false) || !vb.Bool("shared", false) {
		t.Error("decoded fields wrong")
	}
	if va == vb {
		t.Error("distinct paths must still have distinct Values (Path/Version differ)")
	}
	// Warm re-reads touch neither counter: the per-version memo serves them.
	cl.Get(context.Background(), "/configs/shared/a")
	cl.Get(context.Background(), "/configs/shared/b")
	if d := reg.Counters().Get("confclient.parse.decode"); d != 1 {
		t.Errorf("warm re-reads decoded again (%d)", d)
	}
}

// TestMapAliasingRegression: Values are shared between readers, so a caller
// mutating a returned Map (or Strings) must not corrupt what the next Get
// sees.
func TestMapAliasingRegression(t *testing.T) {
	net, wc, cl, _ := newStack(t)
	const path = "/configs/aliasing"
	write(t, net, wc, path, `{"limits":{"mem":512},"hosts":["h1","h2"]}`)
	cl.Want(path)
	net.RunFor(2 * time.Second)

	v1, err := cl.Get(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	m := v1.Map("limits")
	m["mem"] = float64(-1)
	m["injected"] = true
	hs := v1.Strings("hosts")
	hs[0] = "evil"

	v2, err := cl.Get(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	if got := v2.Map("limits")["mem"].(float64); got != 512 {
		t.Errorf("mutating a returned Map leaked into the shared value: mem = %v", got)
	}
	if v2.Map("limits")["injected"] != nil {
		t.Error("injected key visible to a later reader")
	}
	if hs2 := v2.Strings("hosts"); hs2[0] != "h1" {
		t.Errorf("mutating a returned Strings slice leaked: %v", hs2)
	}
}

// TestWarmGetZeroAlloc is the headline regression gate: a warm fresh Get is
// one snapshot read plus one memo load — zero heap allocations.
func TestWarmGetZeroAlloc(t *testing.T) {
	net, wc, cl, _ := newStack(t)
	reg := obs.New()
	cl.SetObs(reg)
	const path = "/configs/zeroalloc"
	write(t, net, wc, path, `{"enabled":true,"batch":64}`)
	cl.Want(path)
	net.RunFor(2 * time.Second)
	ctx := context.Background()
	if _, err := cl.Get(ctx, path); err != nil { // consume first-read event + decode
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		v, err := cl.Get(ctx, path)
		if err != nil || !v.Bool("enabled", false) {
			t.Fatal("warm read failed")
		}
	})
	if allocs != 0 {
		t.Errorf("warm Get allocates %.1f per run, want 0", allocs)
	}
}

// TestConcurrentReadersUnderChurn exercises the snapshot-swap store under
// -race: goroutine readers spin on Get while the simulation thread delivers
// watch events, flips canary overrides, kills the distribution plane, and
// heals it. Every read must return a coherent value.
func TestConcurrentReadersUnderChurn(t *testing.T) {
	net, wc, cl, px := newStack(t)
	const path = "/configs/churn"
	write(t, net, wc, path, `{"v":1}`)
	cl.Want(path)
	net.RunFor(2 * time.Second)

	const readers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	ctx := context.Background()
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v, err := cl.Get(ctx, path); err == nil {
					if got := v.Int("v", -1); got < 1 {
						t.Errorf("incoherent read: v = %d (%s)", got, v.Raw)
						return
					}
				}
				r := px.Read(path)
				if r.OK && len(r.Data) == 0 {
					t.Error("read returned OK entry with no data")
					return
				}
				runtime.Gosched()
			}
		}()
	}

	// Churn, all from the simulation/driver thread.
	for i := 2; i <= 5; i++ {
		write(t, net, wc, path, fmt.Sprintf(`{"v":%d}`, i))
	}
	px.SetOverride(path, []byte(`{"v":100}`))
	net.RunFor(1 * time.Second)
	if !px.Overridden(path) {
		t.Error("override not visible")
	}
	px.ClearOverride(path)
	net.RunFor(1 * time.Second)
	// Plane down: the only observer dies; reads degrade to cached.
	net.Fail("obs-1")
	net.RunFor(15 * time.Second)
	if !px.PlaneDown() {
		t.Error("plane should be down")
	}
	// Heal and verify updates flow again.
	net.Recover("obs-1")
	net.RunFor(15 * time.Second)
	if px.PlaneDown() {
		t.Error("plane should have healed")
	}
	write(t, net, wc, path, `{"v":6}`)

	close(stop)
	wg.Wait()

	v, err := cl.Get(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Int("v", -1); got != 6 {
		t.Errorf("final v = %d, want 6", got)
	}
	if v.Source != proxy.SourceFresh {
		t.Errorf("final source = %q, want fresh", v.Source)
	}
}
