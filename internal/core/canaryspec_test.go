package core

import (
	"testing"
	"time"

	"configerator/internal/canary"
	"configerator/internal/health"
)

func TestPerConfigCanarySpec(t *testing.T) {
	p, f := fleetPipeline(t)
	f.SubscribeAll("/configs/search/fast.json")

	// Search configs get a single short lenient phase instead of the
	// default ten-minute two-phase spec.
	p.SetCanarySpec("search/", canary.Spec{Phases: []canary.Phase{{
		Name: "search-quick", TestServers: 5, Duration: time.Minute,
		Checks: []canary.Check{{Metric: health.MetricErrorRate, HigherIsWorse: true, Tolerance: 0.5}},
	}}})

	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "search knob",
		Raws: map[string][]byte{"search/fast.json": []byte(`{"v":1}`)},
	})
	if !rep.OK() {
		t.Fatalf("failed at %s: %v", rep.FailedStage, rep.Err)
	}
	if rep.Canary == nil || len(rep.Canary.Phases) != 1 || rep.Canary.Phases[0].Name != "search-quick" {
		t.Fatalf("canary = %+v", rep.Canary)
	}
	if rep.Timings["canary"] > 2*time.Minute {
		t.Errorf("quick spec took %v", rep.Timings["canary"])
	}

	// Other paths still get the default spec.
	f.SubscribeAll("/configs/feed/other.json")
	rep = p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "feed knob",
		Raws: map[string][]byte{"feed/other.json": []byte(`{"v":1}`)},
	})
	if !rep.OK() {
		t.Fatalf("failed: %v", rep.Err)
	}
	if len(rep.Canary.Phases) != 2 {
		t.Fatalf("default spec not applied: %+v", rep.Canary)
	}
}

func TestLongestPrefixSpecWins(t *testing.T) {
	p := standalone(t)
	p.SetCanarySpec("a/", canary.Spec{Phases: []canary.Phase{{Name: "broad"}}})
	p.SetCanarySpec("a/b/", canary.Spec{Phases: []canary.Phase{{Name: "narrow"}}})
	if got := p.canarySpecFor("a/b/c.json"); got.Phases[0].Name != "narrow" {
		t.Errorf("spec = %+v", got.Phases[0].Name)
	}
	if got := p.canarySpecFor("a/x.json"); got.Phases[0].Name != "broad" {
		t.Errorf("spec = %+v", got.Phases[0].Name)
	}
	if got := p.canarySpecFor("z/x.json"); len(got.Phases) != 2 {
		t.Errorf("default spec = %+v", got)
	}
}
