// Dataflow wiring: the whole-repo analysis (internal/cdl/analysis/dataflow)
// feeds three pipeline surfaces. Stage 1 computes the change's blast radius
// and rejects non-deterministic overlay stacks; stage 2 posts the radius and
// combined risk score onto the review diff; the landing-strip gate re-runs
// both checks on diffs that bypass the pipeline, and additionally refuses
// high-radius direct submits — a change that can flip many artifacts must
// come through the pipeline so the canary covers its radius.
package core

import (
	"fmt"
	"sort"

	"configerator/internal/cdl/analysis"
	"configerator/internal/cdl/analysis/dataflow"
	"configerator/internal/vcs"
)

// DefaultHighRadiusArtifacts is the artifact-count threshold above which a
// change may not land via a direct strip submit (Options.HighRadiusArtifacts
// overrides; negative disables).
const DefaultHighRadiusArtifacts = 25

// configRoots enumerates every top-level artifact source visible through a
// change's overlay view: the repositories plus overlay additions, minus
// deletions.
func (p *Pipeline) configRoots(overlay map[string][]byte, deleted map[string]bool) []string {
	seen := make(map[string]bool)
	var roots []string
	add := func(path string) {
		if isTopLevel(path) && !deleted[path] && !seen[path] {
			seen[path] = true
			roots = append(roots, path)
		}
	}
	for _, repo := range p.Repos.Repos() {
		for _, path := range repo.Paths() {
			add(path)
		}
	}
	for path := range overlay {
		add(path)
	}
	sort.Strings(roots)
	return roots
}

// blastRadius analyzes the whole repo through the change's overlay view and
// answers the radius query for the changed paths, with canary domains
// attached.
func (p *Pipeline) blastRadius(fs *overlayFS, changed []string) (*dataflow.Repo, *dataflow.Radius) {
	rep := p.Dataflow.Analyze(fs, p.configRoots(fs.overlay, fs.deleted))
	rad := rep.Radius(changed)
	rad.Domains = p.canaryDomains(rad.Artifacts)
	rad.Rescore()
	return rep, rad
}

// canaryDomains maps affected artifacts onto the registered canary-spec
// prefixes ("default" for artifacts no spec covers) — the groups a canary
// rollout must exercise to cover the radius.
func (p *Pipeline) canaryDomains(artifacts []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, root := range artifacts {
		domain := "default"
		if prefix, ok := p.canaryPrefixFor(ArtifactPath(root)); ok {
			domain = prefix
		}
		if !seen[domain] {
			seen[domain] = true
			out = append(out, domain)
		}
	}
	sort.Strings(out)
	return out
}

// highRadius reports whether the radius exceeds the direct-submit threshold.
func (p *Pipeline) highRadius(rad *dataflow.Radius) bool {
	return rad != nil && p.highRadiusAt > 0 && len(rad.Artifacts) >= p.highRadiusAt
}

// dataflowGate is the strip-gate half of the analysis: determinacy over the
// diff's affected artifacts (always), and the high-radius refusal for diffs
// the pipeline has not canaried (pointer identity marks pipeline shards in
// p.cleared around strip.Submit).
func (p *Pipeline) dataflowGate(d *vcs.Diff) error {
	overlay := make(map[string][]byte)
	deleted := make(map[string]bool)
	var changed []string
	for _, ch := range d.Changes {
		if !isSource(ch.Path) {
			continue
		}
		changed = append(changed, ch.Path)
		if ch.Delete {
			deleted[ch.Path] = true
		} else {
			overlay[ch.Path] = ch.Content
		}
	}
	if len(changed) == 0 {
		return nil
	}
	fs := &overlayFS{repos: p.Repos, overlay: overlay, deleted: deleted}
	rep, rad := p.blastRadius(fs, changed)
	if errs := analysis.Filter(rep.DeterminacyFor(rad.Artifacts), analysis.Error); len(errs) > 0 {
		return fmt.Errorf("%w at the landing strip: %s", ErrNondeterministic, errs[0].Message)
	}
	if !p.cleared[d] && p.highRadius(rad) {
		return fmt.Errorf("%w: change reaches %d artifacts (threshold %d); land it through the pipeline so the canary covers the radius",
			ErrHighRadius, len(rad.Artifacts), p.highRadiusAt)
	}
	return nil
}

// gate chains the lint gate and the dataflow gate into the landing strip's
// pre-land hook.
func (p *Pipeline) gate() func(*vcs.Diff) error {
	lint := p.lintGate()
	return func(d *vcs.Diff) error {
		if err := lint(d); err != nil {
			return err
		}
		return p.dataflowGate(d)
	}
}
