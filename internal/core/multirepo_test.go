package core

import (
	"context"
	"testing"
	"time"

	"configerator/internal/cluster"
	"configerator/internal/vcs"
)

// TestPartitionedNamespacePipeline drives the §3.6 multi-repo arrangement
// through the full pipeline: feed/ and tao/ live in separate repositories
// with their own landing strips and tailers, cross-repo changes land as
// one commit per shard, and cross-repo imports compile transparently.
func TestPartitionedNamespacePipeline(t *testing.T) {
	repos := vcs.NewRepoSet("configerator")
	repos.AddRepo("feed")
	repos.AddRepo("tao")
	fleet := cluster.New(cluster.SmallConfig(3, 55))
	fleet.Net.RunFor(10 * time.Second)
	p := New(Options{Repos: repos, Fleet: fleet})
	if len(p.Tailers) != 3 { // feed, tao, default
		t.Fatalf("tailers = %d, want 3 (one per repository)", len(p.Tailers))
	}

	// A cross-repo change: a shared constant in feed/ imported by a tao/
	// config (the paper: "cross-repository dependency is supported").
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "cross-repo seed",
		Sources: map[string][]byte{
			"feed/shards.cinc": []byte(`let SHARDS = 64;`),
			"tao/topology.cconf": []byte(`
				import "feed/shards.cinc";
				export {shards: SHARDS, replicas: 3};
			`),
		},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatalf("cross-repo change failed at %s: %v", rep.FailedStage, rep.Err)
	}
	// Both repositories got their shard of the commit.
	if len(rep.Landed) != 2 {
		t.Fatalf("Landed = %v, want 2 shards", rep.Landed)
	}
	feedRepo := repos.Route("feed/shards.cinc")
	taoRepo := repos.Route("tao/topology.cconf")
	if feedRepo == taoRepo {
		t.Fatal("routing broken: both files in one repo")
	}
	if feedRepo.CommitCount() != 1 || taoRepo.CommitCount() != 1 {
		t.Errorf("commits: feed=%d tao=%d", feedRepo.CommitCount(), taoRepo.CommitCount())
	}

	// Changing the shared constant in feed/ recompiles the tao/ config —
	// dependency tracking spans repositories.
	rep = p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "double the shards",
		Sources:    map[string][]byte{"feed/shards.cinc": []byte(`let SHARDS = 128;`)},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatalf("shared-constant change failed: %v", rep.Err)
	}
	if len(rep.Recompiled) != 1 || rep.Recompiled[0] != "tao/topology.cconf" {
		t.Errorf("Recompiled = %v", rep.Recompiled)
	}
	artifact, err := p.ReadArtifact("tao/topology.json")
	if err != nil {
		t.Fatal(err)
	}
	if string(artifact) != `{"replicas":3,"shards":128}` {
		t.Errorf("artifact = %s", artifact)
	}

	// And the updated artifact reaches the fleet through the tao tailer.
	fleet.SubscribeAll(ZeusPath("tao/topology.json"))
	fleet.Net.RunFor(20 * time.Second)
	cfg, err := fleet.AllServers()[0].Client.Get(context.Background(), ZeusPath("tao/topology.json"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Int("shards", 0) != 128 {
		t.Errorf("distributed shards = %d", cfg.Int("shards", 0))
	}
}

// TestConcurrentShardsNoContention shows the throughput motivation: diffs
// against different repositories land without contending even when both
// were cut before either landed.
func TestConcurrentShardsNoContention(t *testing.T) {
	repos := vcs.NewRepoSet("configerator")
	repos.AddRepo("feed")
	repos.AddRepo("tao")
	p := New(Options{Repos: repos})
	a := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "feed change",
		Raws:       map[string][]byte{"feed/a.json": []byte(`{"a":1}`)},
		SkipCanary: true,
	})
	b := p.Submit(&ChangeRequest{
		Author: "carol", Reviewer: "bob", Title: "tao change",
		Raws:       map[string][]byte{"tao/b.json": []byte(`{"b":2}`)},
		SkipCanary: true,
	})
	if !a.OK() || !b.OK() {
		t.Fatalf("a=%v b=%v", a.Err, b.Err)
	}
	// Neither strip saw the other's commit: no queueing across shards.
	if p.Strip("feed/a.json") == p.Strip("tao/b.json") {
		t.Fatal("shards share a strip")
	}
}

// TestCrossRepoLandOrder pins the shard landing order: the shard
// providing a cross-repo import must land before the shard importing it —
// even when repository name order says otherwise — or the importer's
// landing-strip lint cannot resolve the still-unlanded provider. (This
// was a map-iteration-order flake before orderShards existed.)
func TestCrossRepoLandOrder(t *testing.T) {
	repos := vcs.NewRepoSet("configerator")
	repos.AddRepo("aaa") // importer sorts first...
	repos.AddRepo("zzz") // ...provider sorts last
	p := New(Options{Repos: repos})
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "provider lands first",
		Sources: map[string][]byte{
			"zzz/base.cinc": []byte(`let LIMIT = 7;`),
			"aaa/top.cconf": []byte(`
				import "zzz/base.cinc";
				export {limit: LIMIT};
			`),
		},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatalf("cross-repo change failed at %s: %v", rep.FailedStage, rep.Err)
	}
	if len(rep.Landed) != 2 {
		t.Fatalf("Landed = %v, want 2 shards", rep.Landed)
	}
}
