package core

import "fmt"

// Mutator is the programmatic config-change API of Figure 3: "config
// changes can also be initiated … programmatically by an automation tool
// invoking the APIs provided by the Mutator component". Traffic shifters,
// load-test drivers, and model publishers all go through here — which is
// why 89% of raw-config updates in §6.1 are tool-made, not hand-edited.
type Mutator struct {
	p *Pipeline
	// Tool is the automation identity recorded as the commit author.
	Tool string
	// Changes counts submitted mutations.
	Changes int
}

// NewMutator returns a mutator for an automation tool.
func NewMutator(p *Pipeline, tool string) *Mutator {
	return &Mutator{p: p, Tool: tool}
}

// SetRaw updates (or creates) a raw config. Automation changes run the
// same pipeline as human changes — review record, CI, canary — with an
// automation service account as the reviewer of record.
func (m *Mutator) SetRaw(path string, content []byte, opts ...Option) *ChangeReport {
	req := &ChangeRequest{
		Author:   m.Tool,
		Reviewer: "automation-oncall",
		Title:    fmt.Sprintf("[%s] update %s", m.Tool, path),
		Raws:     map[string][]byte{path: content},
	}
	for _, o := range opts {
		o(req)
	}
	m.Changes++
	return m.p.Submit(req)
}

// EditSource updates a config-as-code source file.
func (m *Mutator) EditSource(path string, content []byte, opts ...Option) *ChangeReport {
	req := &ChangeRequest{
		Author:   m.Tool,
		Reviewer: "automation-oncall",
		Title:    fmt.Sprintf("[%s] edit %s", m.Tool, path),
		Sources:  map[string][]byte{path: content},
	}
	for _, o := range opts {
		o(req)
	}
	m.Changes++
	return m.p.Submit(req)
}

// Delete removes a config.
func (m *Mutator) Delete(path string, opts ...Option) *ChangeReport {
	req := &ChangeRequest{
		Author:   m.Tool,
		Reviewer: "automation-oncall",
		Title:    fmt.Sprintf("[%s] delete %s", m.Tool, path),
		Deletes:  []string{path},
	}
	for _, o := range opts {
		o(req)
	}
	m.Changes++
	return m.p.Submit(req)
}

// Option tweaks a mutator-built request.
type Option func(*ChangeRequest)

// SkipCanary bypasses canary testing (emergency paths; use sparingly).
func SkipCanary() Option {
	return func(r *ChangeRequest) { r.SkipCanary = true }
}

// WithReviewer overrides the reviewer of record.
func WithReviewer(name string) Option {
	return func(r *ChangeRequest) { r.Reviewer = name }
}

// WithTitle overrides the change title.
func WithTitle(title string) Option {
	return func(r *ChangeRequest) { r.Title = title }
}
