// Package core assembles the Configerator pipeline of Figure 3: authoring
// (the CDL compiler), dependency tracking, code review (Phabricator),
// continuous integration (Sandcastle), automated canary, the landing
// strip, the git tailer, Zeus distribution, and the per-server proxies.
//
// A ChangeRequest walks the same path an engineer's diff walks in the
// paper: compile + validate → review with CI results attached → canary on
// live servers → land through the strip → tail into Zeus → push to every
// subscribed proxy.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"configerator/internal/canary"
	"configerator/internal/cdl"
	"configerator/internal/cdl/analysis"
	"configerator/internal/cdl/analysis/dataflow"
	"configerator/internal/ci"
	"configerator/internal/cluster"
	"configerator/internal/depgraph"
	"configerator/internal/landingstrip"
	"configerator/internal/obs"
	"configerator/internal/review"
	"configerator/internal/riskadvisor"
	"configerator/internal/simnet"
	"configerator/internal/tailer"
	"configerator/internal/vclock"
	"configerator/internal/vcs"
)

// ZeusPrefix is where compiled artifacts live in the Zeus namespace.
const ZeusPrefix = "/configs/"

// Options configures a pipeline.
type Options struct {
	// Repos is the partitioned repository set; a fresh single-default set
	// is created when nil.
	Repos *vcs.RepoSet
	// Cost is the git cost model (DefaultCostModel when zero).
	Cost vcs.CostModel
	// Fleet enables canary testing and distribution. Optional.
	Fleet *cluster.Fleet
	// CanaryPhase1 is the small canary phase size (default 20, the
	// paper's first phase).
	CanaryPhase1 int
	// CanaryPhase2 is the cluster-scale canary phase size (default: half
	// the fleet, leaving the rest as the control group).
	CanaryPhase2 int
	// SandboxSetup is Sandcastle's provisioning cost.
	SandboxSetup time.Duration
	// HighRadiusArtifacts is the blast-radius artifact count at which a
	// change may no longer land via a direct strip submit and must come
	// through the pipeline (so the canary covers its radius). 0 means
	// DefaultHighRadiusArtifacts; negative disables the check.
	HighRadiusArtifacts int
	// Obs receives traces, histograms, and counters for every change.
	// When nil, the fleet's registry is used (if any); nil overall means
	// zero-overhead no-op instrumentation.
	Obs *obs.Registry
}

// Pipeline is the assembled Configerator deployment.
type Pipeline struct {
	Repos   *vcs.RepoSet
	Cost    vcs.CostModel
	Deps    *depgraph.Graph
	Review  *review.Queue
	Sandbox *ci.Sandbox
	// Engine is the shared CDL compilation engine. It lives for the whole
	// pipeline lifetime: its caches are content-addressed, so compiles
	// across different changes (each with its own overlay view) reuse
	// parse trees and module evaluations for unchanged files.
	Engine  *cdl.Engine
	Fleet   *cluster.Fleet
	Canary  *canary.Runner
	Tailers []*tailer.Tailer
	// Risk is the advisory flagger for high-risk updates (the §8 future
	// work, implemented): it learns from every landed change and posts
	// findings onto review diffs without blocking them.
	Risk *riskadvisor.Advisor
	// Dataflow is the memoized whole-repo analysis index shared by stage 1
	// and every landing strip's gate; it rides the same engine parse cache
	// as lint and compile.
	Dataflow *dataflow.Index
	// DeprecatedSitevars configures the deprecated-sitevar analyzer:
	// sitevar name → replacement note.
	DeprecatedSitevars map[string]string
	// Obs is the observability registry every stage reports into. Each
	// Submit opens a commit-scoped trace here; per-stage latencies land in
	// "stage.<name>" histograms, and the fleet components stitch
	// distribution hops into the same trace.
	Obs *obs.Registry

	strips map[*vcs.Repository]*landingstrip.Strip
	clock  *vclock.Virtual // standalone clock when no fleet
	phase1 int
	phase2 int
	// highRadiusAt is the resolved HighRadiusArtifacts threshold (0 =
	// disabled).
	highRadiusAt int
	// cleared marks, by pointer identity, the diff shards the pipeline is
	// about to land after canarying (or when no canary infrastructure
	// exists): the strip gate exempts them from the high-radius refusal.
	cleared map[*vcs.Diff]bool
	// canarySpecs holds per-path-prefix canary specs ("a config is
	// associated with a canary spec that describes how to automate
	// testing the config in production", §3.3). Longest prefix wins;
	// unmatched paths use the default two-phase spec.
	canarySpecs map[string]canary.Spec
}

// New assembles a pipeline.
func New(opts Options) *Pipeline {
	p := &Pipeline{
		Repos:       opts.Repos,
		Cost:        opts.Cost,
		Deps:        depgraph.New(),
		Review:      review.NewQueue(),
		Sandbox:     ci.NewSandbox(opts.SandboxSetup),
		Engine:      cdl.NewEngine(),
		Fleet:       opts.Fleet,
		Risk:        riskadvisor.New(riskadvisor.DefaultThresholds()),
		strips:      make(map[*vcs.Repository]*landingstrip.Strip),
		phase1:      opts.CanaryPhase1,
		phase2:      opts.CanaryPhase2,
		canarySpecs: make(map[string]canary.Spec),
		cleared:     make(map[*vcs.Diff]bool),
	}
	p.Obs = opts.Obs
	if p.Obs == nil && opts.Fleet != nil {
		p.Obs = opts.Fleet.Obs
	}
	p.Dataflow = dataflow.NewIndex(p.Engine)
	p.Dataflow.Obs = p.Obs
	p.highRadiusAt = opts.HighRadiusArtifacts
	if p.highRadiusAt == 0 {
		p.highRadiusAt = DefaultHighRadiusArtifacts
	} else if p.highRadiusAt < 0 {
		p.highRadiusAt = 0
	}
	if p.Repos == nil {
		p.Repos = vcs.NewRepoSet("configerator")
	}
	if p.Cost == (vcs.CostModel{}) {
		p.Cost = vcs.DefaultCostModel()
	}
	for _, repo := range p.Repos.Repos() {
		p.strips[repo] = landingstrip.New(repo, p.Cost)
		p.strips[repo].Gate = p.gate()
		p.strips[repo].Obs = p.Obs
	}
	if p.Fleet != nil {
		p.Canary = canary.NewRunner(p.Fleet.Net, p.Fleet)
		p.Canary.Obs = p.Obs
		if p.phase1 == 0 {
			p.phase1 = 20
		}
		if p.phase2 == 0 {
			p.phase2 = len(p.Fleet.AllServers()) / 2
		}
		for i, repo := range p.Repos.Repos() {
			id := simnet.NodeID(fmt.Sprintf("tailer-%d", i))
			tl := tailer.New(p.Fleet.Net, id,
				simnet.Placement{Region: "us-west", Cluster: "ctrl"},
				repo, p.Fleet.Ensemble.Members, ZeusPrefix)
			tl.Obs = p.Obs
			p.Tailers = append(p.Tailers, tl)
		}
	} else {
		p.clock = vclock.NewVirtual()
	}
	p.syncDeps()
	return p
}

// Now reports pipeline time (the fleet's virtual clock, or standalone).
func (p *Pipeline) Now() time.Time {
	if p.Fleet != nil {
		return p.Fleet.Net.Now()
	}
	return p.clock.Now()
}

func (p *Pipeline) advance(d time.Duration) {
	if p.Fleet != nil {
		p.Fleet.Net.RunFor(d)
	} else {
		p.clock.Advance(d)
	}
}

// Strip returns the landing strip for the repo owning path.
func (p *Pipeline) Strip(path string) *landingstrip.Strip {
	return p.strips[p.Repos.Route(path)]
}

// syncDeps bootstraps the dependency graph from repository contents.
func (p *Pipeline) syncDeps() {
	for _, repo := range p.Repos.Repos() {
		for _, path := range repo.Paths() {
			if !isSource(path) {
				continue
			}
			data, err := repo.ReadFile(path)
			if err == nil {
				_ = p.Deps.ExtractAndSet(path, data)
			}
		}
	}
}

func isSource(path string) bool {
	return strings.HasSuffix(path, ".cconf") || strings.HasSuffix(path, ".cinc") ||
		strings.HasSuffix(path, ".schema")
}

func isTopLevel(path string) bool { return strings.HasSuffix(path, ".cconf") }

// ArtifactPath maps a source path to its compiled JSON artifact path.
func ArtifactPath(src string) string {
	return strings.TrimSuffix(src, ".cconf") + ".json"
}

// overlayFS is a working-tree view: staged edits over the repositories.
type overlayFS struct {
	repos   *vcs.RepoSet
	overlay map[string][]byte
	deleted map[string]bool
}

// ReadFile implements cdl.FileSystem.
func (o *overlayFS) ReadFile(path string) ([]byte, error) {
	if o.deleted[path] {
		return nil, fmt.Errorf("core: %s deleted in this change", path)
	}
	if data, ok := o.overlay[path]; ok {
		return data, nil
	}
	return o.repos.ReadFile(path)
}

// ChangeRequest is one proposed config change.
type ChangeRequest struct {
	Author   string
	Title    string
	Reviewer string
	// Sources are config-as-code edits (.cconf/.cinc/.schema).
	Sources map[string][]byte
	// Raws are raw config edits, committed and distributed verbatim
	// (§6.1: manually edited or produced by other automation tools).
	Raws map[string][]byte
	// Deletes removes files.
	Deletes []string
	// ReviewNotes are human-readable intent lines posted onto the review
	// diff (e.g. the Gatekeeper UI's "Updated employee sampling from 1%
	// to 10%", footnote 1 of the paper).
	ReviewNotes []string
	// SkipCanary bypasses canary testing (e.g. no fleet impact).
	SkipCanary bool
	// OverrideCanary lands despite a canary failure — the human override
	// of the §6.4 anecdote ("It must be a false positive!").
	OverrideCanary bool
}

// ChangeReport is the pipeline's account of one change.
type ChangeReport struct {
	DiffID int
	// Lint holds every static-analysis diagnostic over the change's
	// affected set (changed sources plus their transitive importers).
	// Error diagnostics fail stage 1; warnings ride along for the review.
	Lint []analysis.Diagnostic
	// Compiled maps artifact path -> canonical JSON.
	Compiled map[string][]byte
	// Recompiled lists dependent sources rebuilt because an import
	// changed.
	Recompiled []string
	CIResult   *ci.Result
	// Canary is the last canary report — the failing one when the stage
	// failed (kept for compatibility; see Canaries for the full set).
	Canary *canary.Report
	// Canaries holds one report per canaried artifact, in artifact order.
	Canaries []*canary.Report
	// RiskFlags are the advisory findings posted to the review diff.
	RiskFlags []string
	// Radius is the change's static blast radius (dataflow pass 2): every
	// downstream artifact, consumer binding, and canary domain the edit
	// can reach. Nil when the change touches no config sources.
	Radius *dataflow.Radius
	// RiskScore combines the radius score with the risk-advisor flags
	// (WeightRiskFlag per flag) into one deterministic number.
	RiskScore float64
	// Landed maps repository name -> commit hash.
	Landed map[string]vcs.Hash
	// Timings records per-stage virtual durations.
	Timings map[string]time.Duration

	FailedStage string
	Err         error
	Submitted   time.Time
	Finished    time.Time

	// lineDeltas caches per-path update sizes measured pre-land (shared
	// between risk assessment and post-land history recording).
	lineDeltas map[string]int
}

// OK reports whether the change landed.
func (r *ChangeReport) OK() bool { return r.Err == nil && len(r.Landed) > 0 }

// Errors for pipeline stages.
var (
	ErrLintFailed   = errors.New("core: static analysis found errors")
	ErrCIFailed     = errors.New("core: continuous integration tests failed")
	ErrCanaryFailed = errors.New("core: canary aborted the rollout")
	ErrEmptyChange  = errors.New("core: change contains no edits")
	// ErrNondeterministic: the dataflow determinacy pass found an artifact
	// whose output depends on overlay import / shard land order.
	ErrNondeterministic = errors.New("core: change makes artifact output depend on import/land order")
	// ErrHighRadius: the change's static blast radius exceeds the
	// direct-submit threshold and must land through the pipeline's canary.
	ErrHighRadius = errors.New("core: high blast-radius change requires canary")
)

// lintAffected runs the configlint analyzer suite over the changed
// sources plus every transitive importer, through the shared engine's
// parse cache. The dependency graph supplies the affected set before its
// edges are rewritten, so a .cinc edit lints every .cconf it can break.
func (p *Pipeline) lintAffected(fs cdl.FileSystem, changed []string, deleted map[string]bool) []analysis.Diagnostic {
	roots := append([]string(nil), changed...)
	roots = append(roots, p.Deps.Dependents(changed...)...)
	live := roots[:0]
	seen := make(map[string]bool, len(roots))
	for _, r := range roots {
		if !deleted[r] && !seen[r] {
			seen[r] = true
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return nil
	}
	sort.Strings(live)
	d := analysis.NewDriver(p.Engine, fs)
	d.DeprecatedSitevars = p.DeprecatedSitevars
	diags, err := d.Run(live)
	if err != nil {
		pos := cdl.Pos{File: live[0], Line: 1, Col: 1}
		return []analysis.Diagnostic{{
			Pos: pos, End: pos, Severity: analysis.Error,
			Analyzer: "driver", Message: err.Error(),
		}}
	}
	return diags
}

// lintGate adapts lintAffected into the landing strip's pre-land hook: a
// diff whose post-apply affected set has any Error diagnostic is refused
// before it touches the repository. This catches changes submitted to the
// strip directly, bypassing pipeline stages 1–3.
func (p *Pipeline) lintGate() func(*vcs.Diff) error {
	return func(d *vcs.Diff) error {
		overlay := make(map[string][]byte)
		deleted := make(map[string]bool)
		var changed []string
		for _, ch := range d.Changes {
			if !isSource(ch.Path) {
				continue
			}
			if ch.Delete {
				deleted[ch.Path] = true
				continue
			}
			overlay[ch.Path] = ch.Content
			changed = append(changed, ch.Path)
		}
		if len(changed) == 0 {
			return nil
		}
		fs := &overlayFS{repos: p.Repos, overlay: overlay, deleted: deleted}
		diags := p.lintAffected(fs, changed, deleted)
		if analysis.HasErrors(diags) {
			errs := analysis.Filter(diags, analysis.Error)
			return fmt.Errorf("%w at the landing strip: %s (first: %s)",
				ErrLintFailed, analysis.Summary(errs), errs[0])
		}
		return nil
	}
}

// orderShards fixes the landing order of a cross-repo change: repository
// name order, except that a shard providing a source imported by another
// shard lands first. Each strip's gate lints its shard against the
// already-landed repositories, so the provider must be committed before
// the importer's shard reaches its strip. Import cycles between shards
// fall back to plain name order.
func orderShards(shards map[*vcs.Repository]*vcs.Diff) []*vcs.Repository {
	repos := make([]*vcs.Repository, 0, len(shards))
	for repo := range shards {
		repos = append(repos, repo)
	}
	sort.Slice(repos, func(i, j int) bool { return repos[i].Name < repos[j].Name })
	if len(repos) < 2 {
		return repos
	}
	// Which shard provides each changed source path.
	provider := make(map[string]*vcs.Repository)
	for repo, shard := range shards {
		for _, ch := range shard.Changes {
			if isSource(ch.Path) && !ch.Delete {
				provider[ch.Path] = repo
			}
		}
	}
	// deps[A] = shards whose sources A's sources directly import.
	deps := make(map[*vcs.Repository]map[*vcs.Repository]bool)
	for repo, shard := range shards {
		for _, ch := range shard.Changes {
			if !isSource(ch.Path) || ch.Delete {
				continue
			}
			imports, err := cdl.ListImports(ch.Path, ch.Content)
			if err != nil {
				continue // the strip's lint gate reports it
			}
			for _, imp := range imports {
				if from := provider[imp]; from != nil && from != repo {
					if deps[repo] == nil {
						deps[repo] = make(map[*vcs.Repository]bool)
					}
					deps[repo][from] = true
				}
			}
		}
	}
	// Kahn's algorithm over the name-sorted list keeps the order
	// deterministic; any leftover cycle lands in name order.
	var out []*vcs.Repository
	placed := make(map[*vcs.Repository]bool)
	for len(out) < len(repos) {
		progressed := false
		for _, repo := range repos {
			if placed[repo] {
				continue
			}
			ready := true
			for dep := range deps[repo] {
				if !placed[dep] {
					ready = false
					break
				}
			}
			if ready {
				out = append(out, repo)
				placed[repo] = true
				progressed = true
			}
		}
		if !progressed {
			for _, repo := range repos {
				if !placed[repo] {
					out = append(out, repo)
					placed[repo] = true
				}
			}
		}
	}
	return out
}

// Submit drives a change through every stage. With a fleet attached, the
// virtual clock advances through canary soak times, commit costs, and
// propagation.
func (p *Pipeline) Submit(req *ChangeRequest) *ChangeReport {
	report := &ChangeReport{
		Compiled:  make(map[string][]byte),
		Landed:    make(map[string]vcs.Hash),
		Timings:   make(map[string]time.Duration),
		Submitted: p.Now(),
	}
	tr := p.Obs.StartTrace("", p.Now())
	tr.Annotate("author", req.Author)
	tr.Annotate("title", req.Title)
	fail := func(stage string, err error) *ChangeReport {
		report.FailedStage = stage
		report.Err = err
		report.Finished = p.Now()
		tr.Annotate("failed_stage", stage)
		tr.EndAt(p.Now())
		p.Obs.Add("pipeline.failed", 1)
		p.observeStageTimings(report)
		return report
	}
	if len(req.Sources) == 0 && len(req.Raws) == 0 && len(req.Deletes) == 0 {
		return fail("validate", ErrEmptyChange)
	}

	// ---- Stage 1: compile + validate (Configerator compiler) ----
	start := p.Now()
	spLint := tr.Span(StageLint, start)
	spCompile := tr.Span(StageCompile, start)
	fs := &overlayFS{repos: p.Repos, overlay: req.Sources, deleted: make(map[string]bool)}
	for _, d := range req.Deletes {
		fs.deleted[d] = true
	}
	var changedSources []string
	for path := range req.Sources {
		changedSources = append(changedSources, path)
	}
	sort.Strings(changedSources)
	// Static analysis gates the stage before any evaluation: the affected
	// set (changed sources + transitive importers) is linted through the
	// engine's parse cache, so the compile below re-parses nothing.
	report.Lint = p.lintAffected(fs, changedSources, fs.deleted)
	report.Timings[StageLint] = p.Now().Sub(start)
	spLint.Attr("diagnostics", len(report.Lint))
	spLint.End(p.Now())
	if analysis.HasErrors(report.Lint) {
		errs := analysis.Filter(report.Lint, analysis.Error)
		return fail("lint", fmt.Errorf("%w: %s (first: %s)",
			ErrLintFailed, analysis.Summary(errs), errs[0]))
	}
	// Whole-repo dataflow: blast radius onto the change trace, determinacy
	// over the affected artifacts, and static reach into the risk advisor.
	radiusChanged := append([]string(nil), changedSources...)
	for _, path := range req.Deletes {
		if isSource(path) {
			radiusChanged = append(radiusChanged, path)
		}
	}
	if len(radiusChanged) > 0 {
		rep, rad := p.blastRadius(fs, radiusChanged)
		report.Radius = rad
		report.RiskScore = rad.Score
		tr.Annotate("radius.artifacts", fmt.Sprintf("%d", len(rad.Artifacts)))
		tr.Annotate("radius.consumers", fmt.Sprintf("%d", len(rad.Consumers)))
		tr.Annotate("radius.score", fmt.Sprintf("%.1f", rad.Score))
		if ddiags := rep.DeterminacyFor(rad.Artifacts); len(ddiags) > 0 {
			report.Lint = append(report.Lint, ddiags...)
			if analysis.HasErrors(ddiags) {
				errs := analysis.Filter(ddiags, analysis.Error)
				return fail("lint", fmt.Errorf("%w: %s", ErrNondeterministic, errs[0].Message))
			}
		}
		for _, path := range changedSources {
			pr := rep.Radius([]string{path})
			p.Risk.SetReach(path, len(pr.Artifacts)+len(pr.Consumers))
		}
	}
	toCompile := p.Deps.RecompileSet(changedSources, isTopLevel)
	live := toCompile[:0]
	for _, src := range toCompile {
		if !fs.deleted[src] {
			live = append(live, src)
		}
	}
	toCompile = live
	// The batch API compiles the recompile set through the shared engine:
	// dependency-topological waves over a bounded worker pool, with the
	// shared .cinc closure parsed and evaluated once instead of once per
	// dependent. Results are sorted by path and the error is the first
	// failing path's, so reports are reproducible run-to-run.
	results, cerr := p.Engine.CompileAll(fs, toCompile)
	srcForArtifact := make(map[string]string, len(results))
	for _, res := range results {
		if be, ok := cerr.(*cdl.BatchError); ok && res.Path >= be.Path {
			// Keep the seed's stop-at-first-error report shape: only
			// artifacts preceding the failing path are recorded.
			continue
		}
		report.Compiled[ArtifactPath(res.Path)] = res.JSON
		srcForArtifact[ArtifactPath(res.Path)] = res.Path
		if _, direct := req.Sources[res.Path]; !direct {
			report.Recompiled = append(report.Recompiled, res.Path)
		}
	}
	if cerr != nil {
		return fail("compile", cerr)
	}
	p.Sandbox.Compile = ci.RecompileCheck(p.Engine, fs, srcForArtifact)
	p.Sandbox.Lint = ci.LintCheck(p.Engine, fs, srcForArtifact)
	report.Timings[StageCompile] = p.Now().Sub(start)
	spCompile.Attr("artifacts", len(report.Compiled))
	spCompile.End(p.Now())

	// ---- Stage 2: review + Sandcastle CI ----
	start = p.Now()
	spReview := tr.Span(StageReviewCI, start)
	diff := p.Review.Submit(req.Author, req.Title, p.Now())
	report.DiffID = diff.ID
	changeSet := ci.ChangeSet{}
	for path, data := range report.Compiled {
		changeSet[path] = data
	}
	for path, data := range req.Raws {
		changeSet[path] = data
	}
	for _, note := range req.ReviewNotes {
		_ = p.Review.Comment(diff.ID, "ui-tool", note)
	}
	ciRes := p.Sandbox.Run(changeSet)
	report.CIResult = &ciRes
	_ = p.Review.PostTestResults(diff.ID, ciRes.Logs)
	p.advance(ciRes.Duration)
	if !ciRes.Passed {
		_ = p.Review.Reject(diff.ID, reviewerFor(req), p.Now())
		return fail("ci", fmt.Errorf("%w: %s", ErrCIFailed, strings.Join(ciRes.Failures, "; ")))
	}
	for _, flag := range p.assessRisk(req, report) {
		report.RiskFlags = append(report.RiskFlags, flag.String())
		_ = p.Review.Comment(diff.ID, "risk-advisor", flag.String())
	}
	if report.Radius != nil {
		rad := report.Radius
		report.RiskScore = rad.Score + dataflow.WeightRiskFlag*float64(len(report.RiskFlags))
		_ = p.Review.Comment(diff.ID, "dataflow",
			fmt.Sprintf("[dataflow] blast radius: %d artifacts, %d consumers, %d canary domains; risk score %.1f",
				len(rad.Artifacts), len(rad.Consumers), len(rad.Domains), report.RiskScore))
	}
	if err := p.Review.Approve(diff.ID, reviewerFor(req), p.Now()); err != nil {
		return fail("review", err)
	}
	report.Timings[StageReviewCI] = p.Now().Sub(start)
	spReview.Attr("diff", report.DiffID)
	spReview.End(p.Now())

	// ---- Stage 3: automated canary ----
	// A high-radius change may not opt out of canary: the wider the static
	// reach, the more the live-fleet check is worth.
	if p.Canary != nil && req.SkipCanary && p.highRadius(report.Radius) {
		return fail("canary", fmt.Errorf("%w: change reaches %d artifacts (threshold %d)",
			ErrHighRadius, len(report.Radius.Artifacts), p.highRadiusAt))
	}
	if p.Canary != nil && !req.SkipCanary {
		start = p.Now()
		spCanary := tr.Span(StageCanary, start)
		for _, artifact := range sortedKeys(changeSet) {
			data := changeSet[artifact]
			spec := p.canarySpecFor(artifact)
			var cres canary.Report
			done := false
			p.Canary.Run(spec, data, func(rep canary.Report) { cres = rep; done = true })
			for i := 0; i < 360 && !done; i++ {
				p.Fleet.Net.RunFor(5 * time.Second)
			}
			report.Canaries = append(report.Canaries, &cres)
			report.Canary = &cres
			if !done {
				return fail("canary", fmt.Errorf("core: canary never completed for %s", artifact))
			}
			if !cres.Passed && !req.OverrideCanary {
				return fail("canary", fmt.Errorf("%w: %s", ErrCanaryFailed,
					cres.Phases[len(cres.Phases)-1].FailedCheck))
			}
		}
		report.Timings[StageCanary] = p.Now().Sub(start)
		spCanary.Attr("artifacts", len(report.Canaries))
		spCanary.End(p.Now())
	}

	// ---- Stage 4: land through the strip(s) ----
	start = p.Now()
	spCommit := tr.Span(StageCommit, start)
	// Bind the change's Zeus paths to this trace before anything lands, so
	// distribution events stitched during the commit advance (the tailer
	// can poll mid-advance) and stage 5 attach to the right trace.
	for path := range report.Compiled {
		p.Obs.BindPath(ZeusPath(path), tr)
	}
	for path := range req.Raws {
		p.Obs.BindPath(ZeusPath(path), tr)
	}
	var changes []vcs.Change
	for path, data := range req.Sources {
		changes = append(changes, vcs.Change{Path: path, Content: data})
	}
	for path, data := range report.Compiled {
		changes = append(changes, vcs.Change{Path: path, Content: data})
	}
	for path, data := range req.Raws {
		changes = append(changes, vcs.Change{Path: path, Content: data})
	}
	for _, path := range req.Deletes {
		changes = append(changes, vcs.Change{Path: path, Delete: true})
		if isTopLevel(path) {
			changes = append(changes, vcs.Change{Path: ArtifactPath(path), Delete: true})
		}
	}
	shards := p.Repos.SplitDiff(&vcs.Diff{Author: req.Author, Message: req.Title, Changes: changes})
	// Pipeline shards are exempt from the gate's high-radius refusal when
	// the change was canaried — or when no canary infrastructure exists to
	// require (stage 3 already refused high-radius SkipCanary requests).
	canaried := p.Canary == nil || !req.SkipCanary
	var worst time.Duration
	for _, repo := range orderShards(shards) {
		shard := shards[repo]
		strip := p.strips[repo]
		if strip == nil { // repo added after pipeline construction
			strip = landingstrip.New(repo, p.Cost)
			strip.Gate = p.gate()
			strip.Obs = p.Obs
			p.strips[repo] = strip
		}
		if canaried {
			p.cleared[shard] = true
		}
		res := strip.Submit(shard, p.Now())
		delete(p.cleared, shard)
		if res.Err != nil {
			return fail("land", res.Err)
		}
		report.Landed[repo.Name] = res.Hash
		if res.Latency() > worst {
			worst = res.Latency()
		}
	}
	p.advance(worst)
	report.Timings[StageCommit] = p.Now().Sub(start)
	// The landed commit hashes become lookup aliases, so the trace resolves
	// by (prefix of) commit hash as well as by its change-N key.
	for _, h := range report.Landed {
		p.Obs.Alias(tr, h.String())
	}
	spCommit.End(p.Now())

	// Evict engine cache entries whose closures touch the landed change.
	// The affected set — changed files plus their transitive importers —
	// must be computed against the pre-change graph edges, before the
	// ExtractAndSet loop below rewrites them. (Content-hash keys already
	// make stale entries unreachable; this reclaims their memory.)
	var touched []string
	for path := range req.Sources {
		if isSource(path) {
			touched = append(touched, path)
		}
	}
	for _, path := range req.Deletes {
		if isSource(path) {
			touched = append(touched, path)
		}
	}
	if len(touched) > 0 {
		affected := append(touched, p.Deps.Dependents(touched...)...)
		p.Engine.InvalidatePaths(affected...)
	}

	// Keep the dependency graph current.
	for path, data := range req.Sources {
		if isSource(path) {
			_ = p.Deps.ExtractAndSet(path, data)
		}
	}
	for _, path := range req.Deletes {
		p.Deps.Remove(path)
	}
	p.observeRisk(req, report)

	// ---- Stage 5: tail + distribute ----
	if p.Fleet != nil {
		start = p.Now()
		spProp := tr.Span(StagePropagate, start)
		tr.SetDistParent(spProp)
		p.Fleet.Net.RunFor(tailer.PollInterval + 10*time.Second)
		report.Timings[StagePropagate] = p.Now().Sub(start)
		spProp.End(p.Now())
	}
	report.Finished = p.Now()
	tr.EndAt(p.Now())
	p.Obs.Add("pipeline.landed", 1)
	p.observeStageTimings(report)
	return report
}

// observeStageTimings folds a report's per-stage durations into the
// registry's "stage.<name>" histograms.
func (p *Pipeline) observeStageTimings(report *ChangeReport) {
	if p.Obs == nil {
		return
	}
	for _, name := range StageNames {
		if d, ok := report.Timings[name]; ok {
			p.Obs.Observe("stage."+name, d)
		}
	}
}

func reviewerFor(req *ChangeRequest) string {
	if req.Reviewer != "" {
		return req.Reviewer
	}
	return "reviewbot"
}

func sortedKeys(cs ci.ChangeSet) []string {
	out := make([]string, 0, len(cs))
	for k := range cs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ReadArtifact reads a compiled/raw config from the repositories.
func (p *Pipeline) ReadArtifact(path string) ([]byte, error) {
	return p.Repos.ReadFile(path)
}

// ZeusPath maps a repository artifact path to its Zeus path.
func ZeusPath(artifact string) string { return ZeusPrefix + artifact }

// SetCanarySpec registers a canary spec for every artifact under the given
// path prefix. The spec's ConfigPath is filled per artifact at run time.
func (p *Pipeline) SetCanarySpec(pathPrefix string, spec canary.Spec) {
	p.canarySpecs[pathPrefix] = spec
}

// canaryPrefixFor finds the longest registered canary-spec prefix covering
// the artifact.
func (p *Pipeline) canaryPrefixFor(artifact string) (string, bool) {
	var best string
	found := false
	for prefix := range p.canarySpecs {
		if strings.HasPrefix(artifact, prefix) && (!found || len(prefix) > len(best)) {
			best = prefix
			found = true
		}
	}
	return best, found
}

// canarySpecFor picks the longest registered prefix match, falling back to
// the paper's default two-phase spec.
func (p *Pipeline) canarySpecFor(artifact string) canary.Spec {
	if best, found := p.canaryPrefixFor(artifact); found {
		spec := p.canarySpecs[best]
		spec.ConfigPath = ZeusPrefix + artifact
		return spec
	}
	spec := canary.DefaultSpec(ZeusPrefix+artifact, p.phase2)
	spec.Phases[0].TestServers = p.phase1
	return spec
}
