package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"configerator/internal/cdl/analysis/dataflow"
)

// racyOverlays is the seeded non-deterministic fixture: two overlays
// assigning the same exported name different values, with no import order
// between them.
func racyOverlays() map[string][]byte {
	return map[string][]byte{
		"overlays/a.cinc": []byte("let timeout = 5;\n"),
		"overlays/b.cinc": []byte("let timeout = 30;\n"),
		"svc/app.cconf": []byte("import \"overlays/a.cinc\";\nimport \"overlays/b.cinc\";\n" +
			"export {timeout: timeout};\n"),
	}
}

// TestStripGateRejectsNondeterministicOverlay: the seeded fixture pushed
// straight at the landing strip is refused by Strip.Gate, with a diagnostic
// naming both conflicting sites — the ISSUE acceptance criterion.
func TestStripGateRejectsNondeterministicOverlay(t *testing.T) {
	p := standalone(t)
	strip := p.Strip("svc/app.cconf")
	wc := strip.Repo().Clone("mallory")
	for path, data := range racyOverlays() {
		wc.Write(path, data)
	}
	res := strip.Submit(wc.Diff("racy overlays"), p.Now())
	if res.Err == nil {
		t.Fatal("strip landed a non-deterministic overlay stack")
	}
	if !errors.Is(res.Err, ErrNondeterministic) {
		t.Fatalf("err = %v, want ErrNondeterministic", res.Err)
	}
	msg := res.Err.Error()
	if !strings.Contains(msg, "overlays/a.cinc:1") || !strings.Contains(msg, "overlays/b.cinc:1") {
		t.Fatalf("rejection must name both conflicting sites: %v", res.Err)
	}
	if strip.Repo().CommitCount() != 0 {
		t.Error("refused diff reached the repository")
	}

	// Giving the overlays an import order makes the same stack land.
	wc2 := strip.Repo().Clone("carol")
	wc2.Write("overlays/a.cinc", []byte("let timeout = 5;\n"))
	wc2.Write("overlays/b.cinc", []byte("import \"overlays/a.cinc\";\nlet timeout = 30;\n"))
	wc2.Write("svc/app.cconf", []byte("import \"overlays/b.cinc\";\nexport {timeout: timeout};\n"))
	if res := strip.Submit(wc2.Diff("ordered overlays"), p.Now()); res.Err != nil {
		t.Fatalf("ordered overlays refused: %v", res.Err)
	}
}

// TestPipelineRejectsNondeterministicAtLint: the same fixture through the
// pipeline fails in stage 1 with the determinacy diagnostics on the report.
func TestPipelineRejectsNondeterministicAtLint(t *testing.T) {
	p := standalone(t)
	rep := p.Submit(&ChangeRequest{
		Author: "mallory", Reviewer: "bob", Title: "racy overlays",
		Sources: racyOverlays(), SkipCanary: true,
	})
	if rep.OK() {
		t.Fatal("non-deterministic change landed")
	}
	if rep.FailedStage != "lint" {
		t.Fatalf("FailedStage = %q, want lint (err: %v)", rep.FailedStage, rep.Err)
	}
	if !errors.Is(rep.Err, ErrNondeterministic) {
		t.Fatalf("err = %v, want ErrNondeterministic", rep.Err)
	}
	found := false
	for _, d := range rep.Lint {
		if d.Analyzer == dataflow.DeterminacyAnalyzer {
			found = true
		}
	}
	if !found {
		t.Fatalf("report.Lint should carry the determinacy diagnostic, got %v", rep.Lint)
	}
}

// seedSharedLib lands a library with n importing artifacts through the
// pipeline, so a later edit to the library has an n-artifact blast radius.
func seedSharedLib(t *testing.T, p *Pipeline, n int) {
	t.Helper()
	sources := map[string][]byte{
		"lib/shared.cinc": []byte("let LIMIT = 10;\n"),
	}
	for i := 0; i < n; i++ {
		sources[fmt.Sprintf("svc/app%d.cconf", i)] =
			[]byte("import \"lib/shared.cinc\";\nexport {limit: LIMIT};\n")
	}
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "seed shared lib",
		Sources: sources, SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatalf("seed failed at %s: %v", rep.FailedStage, rep.Err)
	}
}

// TestStripGateRejectsHighRadiusDirectSubmit: once a library's static reach
// crosses the threshold, a direct strip submit editing it is refused — the
// change must come through the pipeline, which canaries it (or, standalone,
// at least runs the full stage sequence).
func TestStripGateRejectsHighRadiusDirectSubmit(t *testing.T) {
	p := New(Options{HighRadiusArtifacts: 3})
	seedSharedLib(t, p, 3)

	strip := p.Strip("lib/shared.cinc")
	wc := strip.Repo().Clone("mallory")
	wc.Write("lib/shared.cinc", []byte("let LIMIT = 99;\n"))
	res := strip.Submit(wc.Diff("bump limit"), p.Now())
	if !errors.Is(res.Err, ErrHighRadius) {
		t.Fatalf("err = %v, want ErrHighRadius", res.Err)
	}
	if !strings.Contains(res.Err.Error(), "3 artifacts") {
		t.Fatalf("rejection should count the radius: %v", res.Err)
	}

	// The same edit through the pipeline lands: its shards are cleared.
	rep := p.Submit(&ChangeRequest{
		Author: "mallory", Reviewer: "bob", Title: "bump limit properly",
		Sources:    map[string][]byte{"lib/shared.cinc": []byte("let LIMIT = 99;\n")},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatalf("pipeline submit failed at %s: %v", rep.FailedStage, rep.Err)
	}

	// A low-radius direct submit is still fine.
	wc2 := strip.Repo().Clone("carol")
	wc2.Write("svc/app0.cconf", []byte("import \"lib/shared.cinc\";\nexport {limit: LIMIT, v: 2};\n"))
	if res := strip.Submit(wc2.Diff("tweak one app"), p.Now()); res.Err != nil {
		t.Fatalf("low-radius direct diff refused: %v", res.Err)
	}
}

// TestRadiusOnReportAndReview: a landed change carries its blast radius and
// combined risk score, the review diff gets the [dataflow] comment, and the
// advisor learns the changed path's static reach.
func TestRadiusOnReportAndReview(t *testing.T) {
	p := standalone(t)
	seedSharedLib(t, p, 3)

	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "bump limit",
		Sources:    map[string][]byte{"lib/shared.cinc": []byte("let LIMIT = 20;\n")},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatalf("failed at %s: %v", rep.FailedStage, rep.Err)
	}
	if rep.Radius == nil {
		t.Fatal("report has no Radius")
	}
	if got := strings.Join(rep.Radius.Artifacts, ","); got != "svc/app0.cconf,svc/app1.cconf,svc/app2.cconf" {
		t.Fatalf("radius artifacts = %q", got)
	}
	if rep.RiskScore < rep.Radius.Score || rep.Radius.Score <= 0 {
		t.Fatalf("RiskScore = %v, radius score = %v", rep.RiskScore, rep.Radius.Score)
	}
	diff, err := p.Review.Get(rep.DiffID)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range diff.Comments {
		if strings.Contains(c, "[dataflow] blast radius: 3 artifacts") {
			found = true
		}
	}
	if !found {
		t.Fatalf("review diff missing the [dataflow] comment: %v", diff.Comments)
	}
	// Static reach reached the advisor (the 3 downstream artifacts; a
	// plain .cinc has no sitevar/gatekeeper consumer bindings).
	if got := p.Risk.Reach("lib/shared.cinc"); got != 3 {
		t.Fatalf("advisor reach = %d, want 3", got)
	}
}

// TestHighRadiusCannotSkipCanary: with a fleet attached, a high-radius
// change asking to skip canary is refused in stage 3.
// (Exercised without a fleet by checking the guard directly: p.Canary is
// nil standalone, so the stage-3 branch needs the fleet-backed pipeline in
// the integration tests; here we pin the gate exemption logic instead.)
func TestHighRadiusGateExemptionScopedToShard(t *testing.T) {
	p := New(Options{HighRadiusArtifacts: 3})
	seedSharedLib(t, p, 3)
	// After a pipeline submit, the cleared set must be empty again: the
	// exemption is scoped to the shard being landed, not left open.
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "touch lib",
		Sources:    map[string][]byte{"lib/shared.cinc": []byte("let LIMIT = 11;\n")},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatalf("failed at %s: %v", rep.FailedStage, rep.Err)
	}
	if len(p.cleared) != 0 {
		t.Fatalf("cleared set leaked %d entries", len(p.cleared))
	}
	// And a direct submit right after is still refused.
	strip := p.Strip("lib/shared.cinc")
	wc := strip.Repo().Clone("mallory")
	wc.Write("lib/shared.cinc", []byte("let LIMIT = 12;\n"))
	if res := strip.Submit(wc.Diff("backdoor"), p.Now()); !errors.Is(res.Err, ErrHighRadius) {
		t.Fatalf("err = %v, want ErrHighRadius", res.Err)
	}
}
