package core

import (
	"errors"
	"strings"
	"testing"

	"configerator/internal/cdl/analysis"
	"configerator/internal/vcs"
)

// deadBranchBad is a config the compiler accepts (the bad branch never
// evaluates) but static analysis rejects: only configlint catches the
// undefined reference.
var deadBranchBad = []byte(`
	let enabled = false;
	if (enabled) {
		let x = missing_name;
	}
	export {on: enabled};
`)

// TestPipelineLintBlocksStage1: an Error diagnostic fails the change in
// stage 1, before compile, review, or landing.
func TestPipelineLintBlocksStage1(t *testing.T) {
	p := standalone(t)
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "sneaky dead branch",
		Sources:    map[string][]byte{"svc/bad.cconf": deadBranchBad},
		SkipCanary: true,
	})
	if rep.OK() {
		t.Fatal("change with lint error landed")
	}
	if rep.FailedStage != "lint" {
		t.Fatalf("FailedStage = %q, want lint (err: %v)", rep.FailedStage, rep.Err)
	}
	if !errors.Is(rep.Err, ErrLintFailed) {
		t.Fatalf("err = %v, want ErrLintFailed", rep.Err)
	}
	if !analysis.HasErrors(rep.Lint) {
		t.Fatal("report should carry the Error diagnostics")
	}
	if !strings.Contains(rep.Err.Error(), "missing_name") {
		t.Fatalf("error should name the reference: %v", rep.Err)
	}
	if len(rep.Compiled) != 0 || len(rep.Landed) != 0 {
		t.Fatal("nothing should compile or land after a lint failure")
	}
	if _, err := p.ReadArtifact("svc/bad.json"); err == nil {
		t.Fatal("artifact exists for a blocked change")
	}
}

// TestPipelineLintCoversDependents: editing a .cinc lints every importer,
// so a library change that breaks a dependent is blocked even though the
// library itself is clean.
func TestPipelineLintCoversDependents(t *testing.T) {
	p := standalone(t)
	seedSchema(t, p)
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "add consumer",
		Sources: map[string][]byte{
			"cache/job.cconf": []byte(`import "scheduler/job.cinc"; export create_job("cache", 3);`),
		},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatalf("consumer failed at %s: %v", rep.FailedStage, rep.Err)
	}
	// Rename create_job out from under the dependent. The library alone
	// lints clean; the dependent's undefined reference must block.
	rep = p.Submit(&ChangeRequest{
		Author: "mallory", Reviewer: "bob", Title: "rename helper",
		Sources: map[string][]byte{
			"scheduler/job.cinc": []byte(`
				schema Job {
					1: string name;
					2: i32 priority = 1;
					3: bool enabled = true;
				}
				validator Job(c) { assert(c.priority >= 0, "priority"); }
				def make_job(name, prio) {
					return Job{name: name, priority: prio};
				}
			`),
		},
		SkipCanary: true,
	})
	if rep.FailedStage != "lint" {
		t.Fatalf("FailedStage = %q, want lint (err: %v)", rep.FailedStage, rep.Err)
	}
	found := false
	for _, d := range rep.Lint {
		if d.Severity == analysis.Error && d.Pos.File == "cache/job.cconf" {
			found = true
		}
	}
	if !found {
		t.Fatalf("diagnostics should point at the dependent, got: %v", rep.Lint)
	}
}

// TestPipelineLintWarningsRideAlong: warnings appear in the report but do
// not block the change.
func TestPipelineLintWarningsRideAlong(t *testing.T) {
	p := standalone(t)
	// A plain constants library: no validators or exports, so importing
	// it without referencing a name really is dead weight.
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "unused import",
		Sources: map[string][]byte{
			"lib/consts.cinc": []byte(`let LIMIT = 10;`),
			"svc/app.cconf":   []byte(`import "lib/consts.cinc"; export {a: 1};`),
		},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatalf("failed at %s: %v", rep.FailedStage, rep.Err)
	}
	warned := false
	for _, d := range rep.Lint {
		if d.Analyzer == "unused-import" && d.Severity == analysis.Warn {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("report should carry the unused-import warning, got: %v", rep.Lint)
	}
}

// TestStripGateBlocksDirectSubmit: a diff pushed straight at the landing
// strip — bypassing stages 1–3 — is still refused when its affected set
// lints dirty.
func TestStripGateBlocksDirectSubmit(t *testing.T) {
	p := standalone(t)
	strip := p.Strip("svc/bad.cconf")
	if strip == nil {
		t.Fatal("no strip for path")
	}
	wc := strip.Repo().Clone("mallory")
	wc.Write("svc/bad.cconf", deadBranchBad)
	res := strip.Submit(wc.Diff("backdoor"), p.Now())
	if res.Err == nil {
		t.Fatal("strip landed a diff whose affected set lints dirty")
	}
	if !errors.Is(res.Err, ErrLintFailed) {
		t.Fatalf("err = %v, want ErrLintFailed", res.Err)
	}
	if strip.Repo().CommitCount() != 0 {
		t.Error("refused diff reached the repository")
	}

	// The same backdoor with a clean diff lands.
	wc2 := strip.Repo().Clone("carol")
	wc2.Write("svc/ok.cconf", []byte(`export {ok: true};`))
	if res := strip.Submit(wc2.Diff("clean"), p.Now()); res.Err != nil {
		t.Fatalf("clean direct diff refused: %v", res.Err)
	}
}

// TestStripGateCatchesCrossFileBreakage: a direct diff that edits a
// library refuses to land when an existing importer in the repository
// would break — the gate lints the post-diff affected set via the
// dependency graph.
func TestStripGateCatchesCrossFileBreakage(t *testing.T) {
	p := standalone(t)
	seedSchema(t, p)
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "add consumer",
		Sources: map[string][]byte{
			"cache/job.cconf": []byte(`import "scheduler/job.cinc"; export create_job("cache", 3);`),
		},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatalf("consumer failed at %s: %v", rep.FailedStage, rep.Err)
	}
	strip := p.Strip("scheduler/job.cinc")
	wc := strip.Repo().Clone("mallory")
	wc.Write("scheduler/job.cinc", []byte(`let only = 1;`))
	res := strip.Submit(wc.Diff("gut the library"), p.Now())
	if !errors.Is(res.Err, ErrLintFailed) {
		t.Fatalf("err = %v, want ErrLintFailed (dependent breaks)", res.Err)
	}
	var _ vcs.Hash = res.Hash // zero: nothing landed
}
