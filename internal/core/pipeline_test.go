package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"configerator/internal/ci"
	"configerator/internal/cluster"
)

// standalone returns a pipeline without a fleet (compile/review/ci/land).
func standalone(t *testing.T) *Pipeline {
	t.Helper()
	return New(Options{})
}

var jobSchema = []byte(`
	schema Job {
		1: string name;
		2: i32 priority = 1;
		3: bool enabled = true;
	}
	validator Job(c) {
		assert(c.priority >= 0 && c.priority <= 10, "priority out of range");
	}
	def create_job(name, prio) {
		return Job{name: name, priority: prio};
	}
`)

func seedSchema(t *testing.T, p *Pipeline) {
	t.Helper()
	rep := p.Submit(&ChangeRequest{
		Author: "scheduler-team", Reviewer: "bob", Title: "add job schema",
		Sources:    map[string][]byte{"scheduler/job.cinc": jobSchema},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatalf("seed failed at %s: %v", rep.FailedStage, rep.Err)
	}
}

func TestCompileLandFlow(t *testing.T) {
	p := standalone(t)
	seedSchema(t, p)
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "add cache job",
		Sources: map[string][]byte{
			"cache/job.cconf": []byte(`import "scheduler/job.cinc"; export create_job("cache", 3);`),
		},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatalf("failed at %s: %v", rep.FailedStage, rep.Err)
	}
	artifact, err := p.ReadArtifact("cache/job.json")
	if err != nil {
		t.Fatal(err)
	}
	want := `{"enabled":true,"name":"cache","priority":3}`
	if string(artifact) != want {
		t.Errorf("artifact = %s, want %s", artifact, want)
	}
	// Source is stored too (§3.1: both source and JSON in version control).
	if _, err := p.ReadArtifact("cache/job.cconf"); err != nil {
		t.Error("source not committed")
	}
	if rep.DiffID == 0 || rep.CIResult == nil || !rep.CIResult.Passed {
		t.Errorf("report = %+v", rep)
	}
}

func TestValidatorBlocksBadConfig(t *testing.T) {
	p := standalone(t)
	seedSchema(t, p)
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "bad priority",
		Sources: map[string][]byte{
			"cache/job.cconf": []byte(`import "scheduler/job.cinc"; export create_job("cache", 99);`),
		},
		SkipCanary: true,
	})
	if rep.OK() || rep.FailedStage != "compile" {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.Err.Error(), "priority out of range") {
		t.Errorf("err = %v", rep.Err)
	}
	// Nothing landed.
	if _, err := p.ReadArtifact("cache/job.json"); err == nil {
		t.Error("artifact landed despite validator failure")
	}
}

func TestDependentRecompilation(t *testing.T) {
	p := standalone(t)
	// The paper's app/firewall example: changing the shared port must
	// recompile and re-land both configs in one change.
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "seed port configs",
		Sources: map[string][]byte{
			"lib/app_port.cinc": []byte(`let APP_PORT = 8089;`),
			"app.cconf":         []byte(`import "lib/app_port.cinc"; export {port: APP_PORT};`),
			"firewall.cconf":    []byte(`import "lib/app_port.cinc"; export {allow: APP_PORT};`),
		},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatalf("seed failed: %v", rep.Err)
	}
	// Now change only the shared constant.
	rep = p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "move port",
		Sources: map[string][]byte{
			"lib/app_port.cinc": []byte(`let APP_PORT = 9000;`),
		},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatalf("port change failed: %v", rep.Err)
	}
	if len(rep.Recompiled) != 2 {
		t.Errorf("Recompiled = %v, want app.cconf and firewall.cconf", rep.Recompiled)
	}
	app, _ := p.ReadArtifact("app.json")
	fw, _ := p.ReadArtifact("firewall.json")
	if string(app) != `{"port":9000}` || string(fw) != `{"allow":9000}` {
		t.Errorf("app=%s fw=%s", app, fw)
	}
}

func TestCIFailureRejectsDiff(t *testing.T) {
	p := standalone(t)
	p.Sandbox.Register(ci.Test{Name: "no-empty-name", Run: func(cs ci.ChangeSet) error {
		for path, data := range cs {
			if strings.Contains(string(data), `"name":""`) {
				return errors.New("empty name in " + path)
			}
		}
		return nil
	}})
	seedSchema(t, p)
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "empty name",
		Sources: map[string][]byte{
			"cache/job.cconf": []byte(`import "scheduler/job.cinc"; export create_job("", 3);`),
		},
		SkipCanary: true,
	})
	if rep.OK() || rep.FailedStage != "ci" {
		t.Fatalf("report: stage=%s err=%v", rep.FailedStage, rep.Err)
	}
	d, _ := p.Review.Get(rep.DiffID)
	if d.Status.String() != "rejected" {
		t.Errorf("diff status = %v", d.Status)
	}
}

func TestSelfReviewBlocked(t *testing.T) {
	p := standalone(t)
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "alice", Title: "self-approved",
		Raws:       map[string][]byte{"raw/x.json": []byte(`{}`)},
		SkipCanary: true,
	})
	if rep.OK() || rep.FailedStage != "review" {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRawConfigFlow(t *testing.T) {
	p := standalone(t)
	rep := p.Submit(&ChangeRequest{
		Author: "traffic-tool", Reviewer: "oncall", Title: "shift traffic",
		Raws:       map[string][]byte{"traffic/weights.json": []byte(`{"us-west":0.6,"us-east":0.4}`)},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatalf("failed: %v", rep.Err)
	}
	got, err := p.ReadArtifact("traffic/weights.json")
	if err != nil || !strings.Contains(string(got), "us-west") {
		t.Errorf("raw artifact = %s, %v", got, err)
	}
}

func TestEmptyChangeRejected(t *testing.T) {
	p := standalone(t)
	rep := p.Submit(&ChangeRequest{Author: "a", Reviewer: "b"})
	if !errors.Is(rep.Err, ErrEmptyChange) {
		t.Fatalf("err = %v", rep.Err)
	}
}

func TestDeleteFlow(t *testing.T) {
	p := standalone(t)
	seedSchema(t, p)
	p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "add",
		Sources: map[string][]byte{
			"tmp/job.cconf": []byte(`import "scheduler/job.cinc"; export create_job("tmp", 1);`),
		},
		SkipCanary: true,
	})
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "remove",
		Deletes:    []string{"tmp/job.cconf"},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatalf("delete failed: %v", rep.Err)
	}
	if _, err := p.ReadArtifact("tmp/job.cconf"); err == nil {
		t.Error("source still present")
	}
	if _, err := p.ReadArtifact("tmp/job.json"); err == nil {
		t.Error("artifact still present")
	}
}

func TestMutator(t *testing.T) {
	p := standalone(t)
	m := NewMutator(p, "loadbalancer")
	rep := m.SetRaw("traffic/weights.json", []byte(`{"w":1}`), SkipCanary())
	if !rep.OK() {
		t.Fatalf("mutator failed: %v", rep.Err)
	}
	if m.Changes != 1 {
		t.Errorf("Changes = %d", m.Changes)
	}
	rep = m.Delete("traffic/weights.json", SkipCanary())
	if !rep.OK() {
		t.Fatalf("mutator delete failed: %v", rep.Err)
	}
}

// ---- full-stack tests with a fleet ----

func fleetPipeline(t *testing.T) (*Pipeline, *cluster.Fleet) {
	t.Helper()
	f := cluster.New(cluster.SmallConfig(15, 7)) // 60 servers
	f.Net.RunFor(10 * time.Second)
	if f.Ensemble.Leader() == "" {
		t.Fatal("no leader")
	}
	p := New(Options{Fleet: f, CanaryPhase2: 30})
	return p, f
}

func TestEndToEndDistribution(t *testing.T) {
	p, f := fleetPipeline(t)
	f.SubscribeAll("/configs/feed/ranker.json")
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "ranker weights",
		Raws:       map[string][]byte{"feed/ranker.json": []byte(`{"w1":0.3,"w2":0.7}`)},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatalf("failed at %s: %v", rep.FailedStage, rep.Err)
	}
	f.Net.RunFor(20 * time.Second)
	for _, s := range f.AllServers() {
		cfg, err := s.Client.Get(context.Background(), "/configs/feed/ranker.json")
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if cfg.Float("w2", 0) != 0.7 {
			t.Fatalf("%s: w2 = %v", s.ID, cfg.Float("w2", 0))
		}
	}
}

func TestCanaryBlocksBadChange(t *testing.T) {
	p, f := fleetPipeline(t)
	f.SubscribeAll("/configs/feed/knobs.json")
	// Seed a good version.
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "seed knobs",
		Raws:       map[string][]byte{"feed/knobs.json": []byte(`{"v":1}`)},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatal(rep.Err)
	}
	f.Net.RunFor(20 * time.Second)
	// A config that spikes error rates must be stopped by canary phase 1
	// and never land.
	rep = p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "bad knobs",
		Raws: map[string][]byte{"feed/knobs.json": []byte(`{"v":2,"_fault":{"type":"error","intensity":1.0}}`)},
	})
	if rep.OK() || rep.FailedStage != "canary" {
		t.Fatalf("report: stage=%s err=%v", rep.FailedStage, rep.Err)
	}
	if rep.Canary == nil || rep.Canary.Passed {
		t.Fatalf("canary report = %+v", rep.Canary)
	}
	// The committed config is still v1 everywhere, and no overrides
	// remain.
	got, _ := p.ReadArtifact("feed/knobs.json")
	if !strings.Contains(string(got), `"v":1`) {
		t.Errorf("repo contents = %s", got)
	}
	for _, s := range f.AllServers() {
		if s.Proxy.Overridden("/configs/feed/knobs.json") {
			t.Fatalf("%s still has a canary override", s.ID)
		}
	}
}

func TestCanaryPassesGoodChange(t *testing.T) {
	p, f := fleetPipeline(t)
	f.SubscribeAll("/configs/feed/good.json")
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "good change",
		Raws: map[string][]byte{"feed/good.json": []byte(`{"v":1}`)},
	})
	if !rep.OK() {
		t.Fatalf("failed at %s: %v", rep.FailedStage, rep.Err)
	}
	if rep.Canary == nil || !rep.Canary.Passed {
		t.Fatalf("canary = %+v", rep.Canary)
	}
	// Canary dominates end-to-end time, ~10 min (§6.3).
	if rep.Timings["canary"] < 8*time.Minute || rep.Timings["canary"] > 15*time.Minute {
		t.Errorf("canary took %v, want ~10m", rep.Timings["canary"])
	}
}

func TestOverrideCanaryLandsAnyway(t *testing.T) {
	p, f := fleetPipeline(t)
	f.SubscribeAll("/configs/feed/risky.json")
	rep := p.Submit(&ChangeRequest{
		Author: "impatient", Reviewer: "bob", Title: "must be a false positive!",
		Raws: map[string][]byte{
			"feed/risky.json": []byte(`{"_fault":{"type":"crash","intensity":0.5}}`),
		},
		OverrideCanary: true,
	})
	if !rep.OK() {
		t.Fatalf("override should land: %v", rep.Err)
	}
	if rep.Canary.Passed {
		t.Error("canary should have flagged the change")
	}
}

func TestCanariesPerArtifact(t *testing.T) {
	// Satellite fix: with two artifacts in one change, the report keeps one
	// canary report per artifact instead of overwriting a single field.
	p, f := fleetPipeline(t)
	f.SubscribeAll("/configs/feed/one.json")
	f.SubscribeAll("/configs/feed/two.json")
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "two artifacts",
		Raws: map[string][]byte{
			"feed/one.json": []byte(`{"v":1}`),
			"feed/two.json": []byte(`{"v":2}`),
		},
	})
	if !rep.OK() {
		t.Fatalf("failed at %s: %v", rep.FailedStage, rep.Err)
	}
	if len(rep.Canaries) != 2 {
		t.Fatalf("Canaries = %d reports, want 2", len(rep.Canaries))
	}
	for i, cr := range rep.Canaries {
		if cr == nil || !cr.Passed {
			t.Errorf("Canaries[%d] = %+v, want passed", i, cr)
		}
	}
	// The legacy single-report field still holds the last canary run.
	if rep.Canary == nil || rep.Canary != rep.Canaries[len(rep.Canaries)-1] {
		t.Errorf("Canary = %p, want last of Canaries", rep.Canary)
	}
}

func TestPipelineEngineReuse(t *testing.T) {
	// The pipeline's engine persists across Submits: resubmitting the same
	// source compiles from the result cache.
	p, _ := fleetPipeline(t)
	src := `export {limit: 10};`
	for i := 0; i < 2; i++ {
		rep := p.Submit(&ChangeRequest{
			Author: "alice", Reviewer: "bob", Title: "compiled",
			Sources:    map[string][]byte{"limits/app.cconf": []byte(src)},
			SkipCanary: true,
		})
		if !rep.OK() {
			t.Fatalf("submit %d failed at %s: %v", i, rep.FailedStage, rep.Err)
		}
	}
	if hits := p.Engine.Counters().Get("result.hit"); hits == 0 {
		t.Error("second submit of identical source produced no result-cache hits")
	}
}
