package core

import (
	"configerator/internal/riskadvisor"
	"configerator/internal/vcs"
)

// changedArtifacts enumerates the repository paths a request touches with
// their new contents (sources, compiled artifacts, and raws).
func changedArtifacts(req *ChangeRequest, report *ChangeReport) map[string][]byte {
	out := make(map[string][]byte, len(req.Sources)+len(report.Compiled)+len(req.Raws))
	for path, data := range req.Sources {
		out[path] = data
	}
	for path, data := range report.Compiled {
		out[path] = data
	}
	for path, data := range req.Raws {
		out[path] = data
	}
	return out
}

// lineDelta measures the update size the way Table 2 counts it: the line
// diff between the repository's current contents and the proposed ones.
func (p *Pipeline) lineDelta(path string, proposed []byte) int {
	current, err := p.Repos.ReadFile(path)
	if err != nil {
		current = nil // new file: every line is an addition
	}
	return vcs.DiffLines(current, proposed).Total()
}

// assessRisk runs the advisor over every touched path. The line deltas are
// computed against pre-land repository contents and cached on the report
// so observeRisk can reuse them after the change lands.
func (p *Pipeline) assessRisk(req *ChangeRequest, report *ChangeReport) []riskadvisor.Flag {
	if p.Risk == nil {
		return nil
	}
	if report.lineDeltas == nil {
		report.lineDeltas = make(map[string]int)
	}
	var flags []riskadvisor.Flag
	for path, data := range changedArtifacts(req, report) {
		delta := p.lineDelta(path, data)
		report.lineDeltas[path] = delta
		flags = append(flags, p.Risk.Assess(path, req.Author, delta, p.Now())...)
	}
	return flags
}

// observeRisk feeds the landed change back into the advisor's history.
func (p *Pipeline) observeRisk(req *ChangeRequest, report *ChangeReport) {
	if p.Risk == nil {
		return
	}
	for path := range changedArtifacts(req, report) {
		p.Risk.Observe(path, req.Author, report.lineDeltas[path], p.Now())
	}
}
