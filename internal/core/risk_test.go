package core

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestRiskDormantConfigFlagged(t *testing.T) {
	p := standalone(t)
	// Land a raw config, let it sit dormant for a year, change it again.
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "seed",
		Raws:       map[string][]byte{"legacy/knob.json": []byte(`{"v":1}`)},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatal(rep.Err)
	}
	p.clock.Advance(365 * 24 * time.Hour)
	rep = p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "wake the dormant config",
		Raws:       map[string][]byte{"legacy/knob.json": []byte(`{"v":2}`)},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatal(rep.Err)
	}
	found := false
	for _, f := range rep.RiskFlags {
		if strings.Contains(f, "dormant") {
			found = true
		}
	}
	if !found {
		t.Errorf("RiskFlags = %v, want dormant-config flag", rep.RiskFlags)
	}
	// The flag is advisory: the change still landed. And it is visible on
	// the review diff.
	d, err := p.Review.Get(rep.DiffID)
	if err != nil {
		t.Fatal(err)
	}
	hasComment := false
	for _, c := range d.Comments {
		if strings.Contains(c, "risk-advisor") && strings.Contains(c, "dormant") {
			hasComment = true
		}
	}
	if !hasComment {
		t.Errorf("review comments = %v", d.Comments)
	}
}

func TestRiskUnusualSizeFlagged(t *testing.T) {
	p := standalone(t)
	// History of tiny updates...
	for i := 0; i < 6; i++ {
		rep := p.Submit(&ChangeRequest{
			Author: "alice", Reviewer: "bob", Title: "small tweak",
			Raws:       map[string][]byte{"app/knob.json": []byte(fmt.Sprintf(`{"v":%d}`, i))},
			SkipCanary: true,
		})
		if !rep.OK() {
			t.Fatal(rep.Err)
		}
		p.clock.Advance(24 * time.Hour)
	}
	// ...then a 100-line rewrite.
	var big strings.Builder
	big.WriteString("{\n")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&big, "  \"k%d\": %d,\n", i, i)
	}
	big.WriteString("  \"v\": 99\n}\n")
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "huge rewrite",
		Raws:       map[string][]byte{"app/knob.json": []byte(big.String())},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatal(rep.Err)
	}
	found := false
	for _, f := range rep.RiskFlags {
		if strings.Contains(f, "unusually-large") {
			found = true
		}
	}
	if !found {
		t.Errorf("RiskFlags = %v, want unusually-large flag", rep.RiskFlags)
	}
}

func TestRiskFirstTimeAuthorFlagged(t *testing.T) {
	p := standalone(t)
	for i := 0; i < 4; i++ {
		rep := p.Submit(&ChangeRequest{
			Author: "alice", Reviewer: "bob", Title: "tweak",
			Raws:       map[string][]byte{"app/owned.json": []byte(fmt.Sprintf(`{"v":%d}`, i))},
			SkipCanary: true,
		})
		if !rep.OK() {
			t.Fatal(rep.Err)
		}
	}
	rep := p.Submit(&ChangeRequest{
		Author: "mallory", Reviewer: "bob", Title: "drive-by edit",
		Raws:       map[string][]byte{"app/owned.json": []byte(`{"v":9}`)},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatal(rep.Err)
	}
	found := false
	for _, f := range rep.RiskFlags {
		if strings.Contains(f, "first-time-author") {
			found = true
		}
	}
	if !found {
		t.Errorf("RiskFlags = %v, want first-time-author flag", rep.RiskFlags)
	}
}

func TestRiskNoFlagsOnNormalFlow(t *testing.T) {
	p := standalone(t)
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "new config",
		Raws:       map[string][]byte{"app/new.json": []byte(`{"v":1}`)},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatal(rep.Err)
	}
	if len(rep.RiskFlags) != 0 {
		t.Errorf("new config flagged: %v", rep.RiskFlags)
	}
	rep = p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "routine tweak",
		Raws:       map[string][]byte{"app/new.json": []byte(`{"v":2}`)},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatal(rep.Err)
	}
	if len(rep.RiskFlags) != 0 {
		t.Errorf("routine update flagged: %v", rep.RiskFlags)
	}
}
