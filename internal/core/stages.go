package core

// Canonical stage names. These are the keys of ChangeReport.Timings, the
// suffixes of the registry's "stage.<name>" latency histograms, and the
// span names in a change's trace — one list shared by the pipeline,
// benchreport, and the obs experiment instead of scattered string
// literals.
//
// StageLint and StageCompile are both part of pipeline stage 1: the lint
// timing covers static analysis alone, while the compile timing is
// measured from the same stage start and so includes it (the compile runs
// through the parse cache the lint warmed).
const (
	StageLint      = "lint"
	StageCompile   = "compile"
	StageReviewCI  = "review+ci"
	StageCanary    = "canary"
	StageCommit    = "commit"
	StagePropagate = "propagate"
)

// StageNames lists every canonical stage name in pipeline order. A full
// fleet run with canary enabled records a timing for each of these;
// StageCanary is absent when skipped and StagePropagate when no fleet is
// attached.
var StageNames = []string{
	StageLint, StageCompile, StageReviewCI, StageCanary, StageCommit, StagePropagate,
}
