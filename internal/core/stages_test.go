package core

import (
	"strings"
	"testing"
	"time"

	"configerator/internal/cluster"
	"configerator/internal/obs"
)

// TestStageNamesCanonical pins the ChangeReport.Timings contract: a full
// fleet run with canary records exactly the canonical stage-name set, and
// every run's keys are drawn from StageNames — no stray string literals.
func TestStageNamesCanonical(t *testing.T) {
	reg := obs.New()
	cfg := cluster.SmallConfig(3, 11) // 12 servers
	cfg.Obs = reg
	f := cluster.New(cfg)
	f.Net.RunFor(10 * time.Second)
	if f.Ensemble.Leader() == "" {
		t.Fatal("no leader")
	}
	p := New(Options{Fleet: f, CanaryPhase1: 2, CanaryPhase2: 4})
	if p.Obs != reg {
		t.Fatal("pipeline did not inherit the fleet registry")
	}
	f.SubscribeAll("/configs/feed/stages.json")
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "stage sweep",
		Raws: map[string][]byte{"feed/stages.json": []byte(`{"v":1}`)},
	})
	if !rep.OK() {
		t.Fatalf("failed at %s: %v", rep.FailedStage, rep.Err)
	}

	// Exactly the canonical set, in a full run.
	want := make(map[string]bool, len(StageNames))
	for _, n := range StageNames {
		want[n] = true
	}
	for k := range rep.Timings {
		if !want[k] {
			t.Errorf("Timings has non-canonical key %q", k)
		}
	}
	if len(rep.Timings) != len(StageNames) {
		t.Errorf("Timings keys = %v, want all of %v", rep.Timings, StageNames)
	}

	// Every stage fed its histogram.
	for _, n := range StageNames {
		if reg.Histogram("stage."+n).Count() == 0 {
			t.Errorf("stage.%s histogram empty", n)
		}
	}

	// The commit's trace is resolvable by landed hash and renders the full
	// span tree: all five pipeline stages plus at least one zeus push hop
	// and a proxy materialize.
	var hash string
	for _, h := range rep.Landed {
		hash = h.String()
	}
	tr := reg.TraceByKey(hash)
	if tr == nil {
		t.Fatalf("no trace for landed hash %s", hash)
	}
	if reg.TraceByKey(hash[:6]) != tr {
		t.Error("trace not resolvable by hash prefix")
	}
	out := tr.Render()
	for _, span := range append(append([]string(nil), StageNames...),
		"zeus.commit", "observer ", "proxy ") {
		if !strings.Contains(out, span) {
			t.Errorf("trace missing span %q:\n%s", span, out)
		}
	}
}

// TestStageNamesSubsetStandalone: without a fleet (and with canary
// skipped) the recorded stages are the fleet-independent prefix.
func TestStageNamesSubsetStandalone(t *testing.T) {
	p := New(Options{Obs: obs.New()})
	seedSchema(t, p)
	rep := p.Submit(&ChangeRequest{
		Author: "alice", Reviewer: "bob", Title: "standalone stages",
		Sources: map[string][]byte{
			"cache/stages.cconf": []byte(`import "scheduler/job.cinc"; export create_job("stages", 1);`),
		},
		SkipCanary: true,
	})
	if !rep.OK() {
		t.Fatalf("failed at %s: %v", rep.FailedStage, rep.Err)
	}
	want := map[string]bool{StageLint: true, StageCompile: true, StageReviewCI: true, StageCommit: true}
	if len(rep.Timings) != len(want) {
		t.Errorf("Timings = %v, want keys %v", rep.Timings, want)
	}
	for k := range rep.Timings {
		if !want[k] {
			t.Errorf("unexpected Timings key %q", k)
		}
	}
}
