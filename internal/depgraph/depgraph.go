// Package depgraph implements the Dependency Service (§3.1, Figure 3).
//
// Configerator "expresses configuration dependency as source code
// dependency, similar to the include statement in a C++ program" and
// "automatically extracts dependencies from source code without the need to
// manually edit a makefile". This package maintains that graph: each config
// source file's import list is extracted by the CDL parser, an inverted
// index maps every file to its importers, and when a file changes the
// transitive importer set is the recompile set — the paper's example being
// a change to app_port.cinc recompiling both app.cconf and firewall.cconf
// in one commit.
package depgraph

import (
	"fmt"
	"sort"

	"configerator/internal/cdl"
)

// Graph tracks config source dependencies.
type Graph struct {
	// deps maps file -> its direct imports.
	deps map[string][]string
	// rdeps maps file -> set of direct importers (the inverted index).
	rdeps map[string]map[string]bool
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		deps:  make(map[string][]string),
		rdeps: make(map[string]map[string]bool),
	}
}

// SetImports records (replacing) a file's direct imports.
func (g *Graph) SetImports(file string, imports []string) {
	for _, old := range g.deps[file] {
		delete(g.rdeps[old], file)
	}
	cp := make([]string, len(imports))
	copy(cp, imports)
	g.deps[file] = cp
	for _, dep := range imports {
		set, ok := g.rdeps[dep]
		if !ok {
			set = make(map[string]bool)
			g.rdeps[dep] = set
		}
		set[file] = true
	}
}

// ExtractAndSet parses the source, extracts its imports, and records them.
func (g *Graph) ExtractAndSet(file string, src []byte) error {
	imports, err := cdl.ListImports(file, src)
	if err != nil {
		return fmt.Errorf("depgraph: extracting %s: %w", file, err)
	}
	g.SetImports(file, imports)
	return nil
}

// Remove deletes a file from the graph (it keeps its reverse entries for
// files that still import it — those imports are now dangling and will fail
// at compile time, which is the correct failure mode).
func (g *Graph) Remove(file string) {
	for _, old := range g.deps[file] {
		delete(g.rdeps[old], file)
	}
	delete(g.deps, file)
}

// DirectImports returns the file's direct imports, sorted.
func (g *Graph) DirectImports(file string) []string {
	out := make([]string, len(g.deps[file]))
	copy(out, g.deps[file])
	sort.Strings(out)
	return out
}

// DirectImporters returns the files that directly import the given file.
func (g *Graph) DirectImporters(file string) []string {
	set := g.rdeps[file]
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Dependents returns every file that transitively imports any of the
// changed files — the recompile set (excluding the changed files
// themselves).
func (g *Graph) Dependents(changed ...string) []string {
	seen := make(map[string]bool)
	var frontier []string
	for _, c := range changed {
		frontier = append(frontier, c)
	}
	changedSet := make(map[string]bool, len(changed))
	for _, c := range changed {
		changedSet[c] = true
	}
	for len(frontier) > 0 {
		f := frontier[0]
		frontier = frontier[1:]
		for imp := range g.rdeps[f] {
			if !seen[imp] {
				seen[imp] = true
				frontier = append(frontier, imp)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		if !changedSet[f] {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// RecompileSet returns the files that must be recompiled when the given
// files change: the changed files themselves (if known to the graph or
// matching the keep filter) plus all transitive importers, filtered by
// keep (typically "is a top-level .cconf"). Order is deterministic.
func (g *Graph) RecompileSet(changed []string, keep func(string) bool) []string {
	set := make(map[string]bool)
	for _, c := range changed {
		if keep == nil || keep(c) {
			set[c] = true
		}
	}
	for _, d := range g.Dependents(changed...) {
		if keep == nil || keep(d) {
			set[d] = true
		}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Files returns every file with recorded imports, sorted.
func (g *Graph) Files() []string {
	out := make([]string, 0, len(g.deps))
	for f := range g.deps {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Cycle returns a dependency cycle if one exists ("" slice if acyclic).
func (g *Graph) Cycle() []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var stack []string
	var cycle []string
	var visit func(f string) bool
	visit = func(f string) bool {
		color[f] = gray
		stack = append(stack, f)
		for _, dep := range g.deps[f] {
			switch color[dep] {
			case gray:
				// Found: slice the stack from dep onwards.
				for i, s := range stack {
					if s == dep {
						cycle = append([]string{}, stack[i:]...)
						return true
					}
				}
			case white:
				if visit(dep) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[f] = black
		return false
	}
	for _, f := range g.Files() {
		if color[f] == white && visit(f) {
			return cycle
		}
	}
	return nil
}
