package depgraph

import (
	"reflect"
	"strings"
	"testing"
)

func TestPaperExample(t *testing.T) {
	// app.cconf and firewall.cconf both import app_port.cinc; changing the
	// shared constant must recompile both (§3.1).
	g := New()
	g.SetImports("app.cconf", []string{"lib/app_port.cinc"})
	g.SetImports("firewall.cconf", []string{"lib/app_port.cinc"})
	got := g.Dependents("lib/app_port.cinc")
	want := []string{"app.cconf", "firewall.cconf"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Dependents = %v, want %v", got, want)
	}
}

func TestTransitive(t *testing.T) {
	g := New()
	g.SetImports("b.cinc", []string{"a.cinc"})
	g.SetImports("c.cconf", []string{"b.cinc"})
	g.SetImports("d.cconf", []string{"c.cconf"})
	got := g.Dependents("a.cinc")
	want := []string{"b.cinc", "c.cconf", "d.cconf"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Dependents = %v, want %v", got, want)
	}
}

func TestSetImportsReplaces(t *testing.T) {
	g := New()
	g.SetImports("x.cconf", []string{"old.cinc"})
	g.SetImports("x.cconf", []string{"new.cinc"})
	if deps := g.Dependents("old.cinc"); len(deps) != 0 {
		t.Errorf("stale reverse edge: %v", deps)
	}
	if deps := g.Dependents("new.cinc"); len(deps) != 1 || deps[0] != "x.cconf" {
		t.Errorf("Dependents(new) = %v", deps)
	}
}

func TestRemove(t *testing.T) {
	g := New()
	g.SetImports("x.cconf", []string{"lib.cinc"})
	g.Remove("x.cconf")
	if deps := g.Dependents("lib.cinc"); len(deps) != 0 {
		t.Errorf("Dependents after remove = %v", deps)
	}
}

func TestRecompileSetFilters(t *testing.T) {
	g := New()
	g.SetImports("lib/shared.cinc", nil)
	g.SetImports("a.cconf", []string{"lib/shared.cinc"})
	g.SetImports("mid.cinc", []string{"lib/shared.cinc"})
	g.SetImports("b.cconf", []string{"mid.cinc"})
	isConf := func(f string) bool { return strings.HasSuffix(f, ".cconf") }
	got := g.RecompileSet([]string{"lib/shared.cinc"}, isConf)
	want := []string{"a.cconf", "b.cconf"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RecompileSet = %v, want %v", got, want)
	}
}

func TestRecompileSetIncludesChangedConf(t *testing.T) {
	g := New()
	g.SetImports("a.cconf", nil)
	got := g.RecompileSet([]string{"a.cconf"}, func(f string) bool { return strings.HasSuffix(f, ".cconf") })
	if !reflect.DeepEqual(got, []string{"a.cconf"}) {
		t.Errorf("RecompileSet = %v", got)
	}
}

func TestExtractAndSet(t *testing.T) {
	g := New()
	src := []byte(`
		import "feed/base.cinc";
		import "tao/shards.cinc";
		export {};
	`)
	if err := g.ExtractAndSet("feed/ranker.cconf", src); err != nil {
		t.Fatal(err)
	}
	got := g.DirectImports("feed/ranker.cconf")
	want := []string{"feed/base.cinc", "tao/shards.cinc"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DirectImports = %v", got)
	}
	if imp := g.DirectImporters("feed/base.cinc"); len(imp) != 1 || imp[0] != "feed/ranker.cconf" {
		t.Errorf("DirectImporters = %v", imp)
	}
}

func TestExtractParseError(t *testing.T) {
	g := New()
	if err := g.ExtractAndSet("bad.cconf", []byte(`import ;`)); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestCycleDetection(t *testing.T) {
	g := New()
	g.SetImports("a", []string{"b"})
	g.SetImports("b", []string{"c"})
	g.SetImports("c", []string{"a"})
	cyc := g.Cycle()
	if len(cyc) != 3 {
		t.Errorf("Cycle = %v", cyc)
	}
	g2 := New()
	g2.SetImports("a", []string{"b"})
	g2.SetImports("b", nil)
	if cyc := g2.Cycle(); cyc != nil {
		t.Errorf("false cycle: %v", cyc)
	}
}

func TestDiamondDependentsNoDuplicates(t *testing.T) {
	g := New()
	g.SetImports("l.cinc", []string{"base.cinc"})
	g.SetImports("r.cinc", []string{"base.cinc"})
	g.SetImports("top.cconf", []string{"l.cinc", "r.cinc"})
	got := g.Dependents("base.cinc")
	want := []string{"l.cinc", "r.cinc", "top.cconf"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Dependents = %v", got)
	}
}

func TestFiles(t *testing.T) {
	g := New()
	g.SetImports("b", nil)
	g.SetImports("a", nil)
	if got := g.Files(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Files = %v", got)
	}
}

// --- RecompileSet on diamond import graphs ---

// diamondGraph builds two stacked diamonds:
//
//	base.cinc ← {left.cinc, right.cinc} ← mid.cinc ← {a.cconf, b.cconf}
//	base.cinc ← left.cinc ← c.cconf (short side)
func diamondGraph() *Graph {
	g := New()
	g.SetImports("left.cinc", []string{"base.cinc"})
	g.SetImports("right.cinc", []string{"base.cinc"})
	g.SetImports("mid.cinc", []string{"left.cinc", "right.cinc"})
	g.SetImports("a.cconf", []string{"mid.cinc"})
	g.SetImports("b.cconf", []string{"mid.cinc"})
	g.SetImports("c.cconf", []string{"left.cinc"})
	return g
}

func isConf(f string) bool { return strings.HasSuffix(f, ".cconf") }

// TestRecompileSetDiamondDedup: a .cconf reachable through both sides of a
// diamond appears exactly once.
func TestRecompileSetDiamondDedup(t *testing.T) {
	g := diamondGraph()
	got := g.RecompileSet([]string{"base.cinc"}, isConf)
	want := []string{"a.cconf", "b.cconf", "c.cconf"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RecompileSet = %v, want %v (deduped, sorted)", got, want)
	}
}

// TestRecompileSetDiamondStable: repeated calls return identical slices —
// the set is sorted, not map-ordered.
func TestRecompileSetDiamondStable(t *testing.T) {
	g := diamondGraph()
	first := g.RecompileSet([]string{"base.cinc"}, isConf)
	for i := 0; i < 20; i++ {
		if got := g.RecompileSet([]string{"base.cinc"}, isConf); !reflect.DeepEqual(got, first) {
			t.Fatalf("iteration %d: RecompileSet = %v, want %v", i, got, first)
		}
	}
}

// TestRecompileSetDiamondKeepFilter: the keep filter prunes intermediate
// .cinc files but must never drop a transitively affected .cconf, no
// matter which diamond vertex changes.
func TestRecompileSetDiamondKeepFilter(t *testing.T) {
	g := diamondGraph()
	cases := []struct {
		changed []string
		want    []string
	}{
		{[]string{"base.cinc"}, []string{"a.cconf", "b.cconf", "c.cconf"}},
		{[]string{"left.cinc"}, []string{"a.cconf", "b.cconf", "c.cconf"}},
		{[]string{"right.cinc"}, []string{"a.cconf", "b.cconf"}},
		{[]string{"mid.cinc"}, []string{"a.cconf", "b.cconf"}},
		{[]string{"left.cinc", "right.cinc"}, []string{"a.cconf", "b.cconf", "c.cconf"}},
		{[]string{"a.cconf"}, []string{"a.cconf"}},
	}
	for _, c := range cases {
		got := g.RecompileSet(c.changed, isConf)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("RecompileSet(%v) = %v, want %v", c.changed, got, c.want)
		}
		// No filter: the set includes the changed files and every
		// intermediate, still deduped.
		unfiltered := g.RecompileSet(c.changed, nil)
		seen := make(map[string]bool)
		for _, f := range unfiltered {
			if seen[f] {
				t.Errorf("RecompileSet(%v, nil) has duplicate %s", c.changed, f)
			}
			seen[f] = true
		}
		for _, f := range c.want {
			if !seen[f] {
				t.Errorf("RecompileSet(%v, nil) missing affected %s", c.changed, f)
			}
		}
	}
}
