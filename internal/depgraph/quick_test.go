package depgraph

import (
	"fmt"
	"testing"
	"testing/quick"
)

// buildRandomDAG constructs an acyclic import graph from a seed: file i
// may only import files with smaller indices.
func buildRandomDAG(edges []uint16, n int) *Graph {
	g := New()
	if n < 2 {
		n = 2
	}
	for i := 1; i < n; i++ {
		var imports []string
		for _, e := range edges {
			target := int(e) % i
			imports = append(imports, name(target))
		}
		g.SetImports(name(i), imports)
	}
	return g
}

func name(i int) string { return fmt.Sprintf("f%03d.cinc", i) }

func TestQuickDependentsExcludeChanged(t *testing.T) {
	err := quick.Check(func(edges []uint16, nn uint8) bool {
		n := int(nn%20) + 2
		g := buildRandomDAG(edges, n)
		for i := 0; i < n; i++ {
			for _, d := range g.Dependents(name(i)) {
				if d == name(i) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickDependentsTransitive(t *testing.T) {
	// If b imports a, then Dependents(a) ⊇ {b} ∪ Dependents(b).
	err := quick.Check(func(edges []uint16, nn uint8) bool {
		n := int(nn%15) + 3
		g := buildRandomDAG(edges, n)
		for i := 1; i < n; i++ {
			for _, dep := range g.DirectImports(name(i)) {
				depSet := toSet(g.Dependents(dep))
				if !depSet[name(i)] {
					return false
				}
				for _, higher := range g.Dependents(name(i)) {
					if !depSet[higher] {
						return false
					}
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickRandomDAGAcyclic(t *testing.T) {
	err := quick.Check(func(edges []uint16, nn uint8) bool {
		g := buildRandomDAG(edges, int(nn%20)+2)
		return g.Cycle() == nil
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}

func toSet(xs []string) map[string]bool {
	m := make(map[string]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}
