package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"configerator/internal/cluster"
	"configerator/internal/monitor"
	"configerator/internal/obs"
	"configerator/internal/proxy"
	"configerator/internal/simnet"
	"configerator/internal/zeus"
)

// AvailabilityReport is the BENCH_availability.json schema: continuous
// reads under a scripted infrastructure outage (observer crashes, a region
// partition, a crash-looping proxy), with stale-serve on vs off.
type AvailabilityReport struct {
	Workload struct {
		Servers     int     `json:"servers"`
		Writes      int     `json:"writes"`
		ReadEveryMs int     `json:"read_every_ms"`
		DurationSec float64 `json:"duration_sec"`
	} `json:"workload"`
	StaleServeOn  AvailabilitySide `json:"stale_serve_on"`
	StaleServeOff AvailabilitySide `json:"stale_serve_off"`
	Convergence   struct {
		// AfterHealMs is how long after the last scripted heal every
		// server served the final committed revision (stale-serve-on run).
		AfterHealMs float64 `json:"after_heal_ms"`
	} `json:"convergence"`
	Faults struct {
		Scripted int              `json:"scripted"`
		Fired    int              `json:"fired"`
		Counters map[string]int64 `json:"counters"`
	} `json:"faults"`
	// Monitor reports the fleet-health plane's view of the same outage
	// (stale-serve-on run): the SLO alerts that fired, the scripted outage
	// windows each alert is checked against, and how quickly alerts
	// cleared once the fleet reconverged after the last heal.
	Monitor AvailabilityMonitor `json:"monitor"`
}

// AvailabilityMonitor is the fleet-health section of the availability
// artifact.
type AvailabilityMonitor struct {
	Sweeps       int64                `json:"sweeps"`
	SweepEveryMs float64              `json:"sweep_every_ms"`
	Alerts       []AvailabilityAlert  `json:"alerts"`
	Windows      []AvailabilityWindow `json:"outage_windows"`
	// AllWindowsCovered: every scripted outage window overlapped an
	// active SLO alert (allowing burn-rate detection latency).
	AllWindowsCovered bool `json:"all_windows_covered"`
	// AllAlertsCleared: no alert was still active at the end of the run.
	AllAlertsCleared bool `json:"all_alerts_cleared"`
	// ClearAfterLastHealMs is when the last alert cleared, measured from
	// the final scripted heal (the 35s observer restart).
	ClearAfterLastHealMs float64 `json:"clear_after_last_heal_ms"`
	// ClearedWithinSweeps is ClearAfterLastHealMs minus the fleet's own
	// reconvergence time, in sweeps — the monitor's deadline is two.
	ClearedWithinSweeps float64 `json:"cleared_within_sweeps"`
	TimeToHeadP50Ms     float64 `json:"time_to_head_p50_ms"`
	TimeToHeadP99Ms     float64 `json:"time_to_head_p99_ms"`
}

// AvailabilityAlert is one SLO alert, offsets from workload start.
type AvailabilityAlert struct {
	SLO          string   `json:"slo"`
	FiredOffMs   float64  `json:"fired_off_ms"`
	ClearedOffMs float64  `json:"cleared_off_ms"` // 0 while active
	Active       bool     `json:"active"`
	Paths        []string `json:"paths"`
}

// AvailabilityWindow is one scripted outage interval and whether an SLO
// alert was active during it.
type AvailabilityWindow struct {
	Kind    string  `json:"kind"`
	Key     string  `json:"key"`
	StartMs float64 `json:"start_ms"`
	EndMs   float64 `json:"end_ms"`
	Covered bool    `json:"covered"`
}

// AvailabilitySide is one run's read outcomes.
type AvailabilitySide struct {
	Reads        int     `json:"reads"`
	OK           int     `json:"ok"`
	Availability float64 `json:"availability"`
	// Staleness of reads served during the outage window: how far behind
	// the latest committed revision the served value was.
	StalenessP50Ms float64 `json:"staleness_p50_ms"`
	StalenessP99Ms float64 `json:"staleness_p99_ms"`
	DegradedReads  int64   `json:"degraded_reads"`
	StaleReads     int64   `json:"stale_reads"`
	RefusedReads   int64   `json:"refused_reads"`
	PlaneDownSeen  int64   `json:"plane_down_transitions"`
}

// availOutcome carries one scenario run's raw measurements.
type availOutcome struct {
	side        AvailabilitySide
	convergence time.Duration
	scripted    int
	fired       int
	counters    map[string]int64
	mon         AvailabilityMonitor
}

// availSweepEvery is the monitor cadence the availability scenario runs
// at; the SLO grace and staleness bounds are sized to the fault timeline.
const (
	availSweepEvery    = 2 * time.Second
	availConvergeGrace = 5 * time.Second
	availMaxStaleAge   = 15 * time.Second
)

// availabilityScenario runs the scripted outage once. The fault timeline
// (offsets from the start of the read workload):
//
//	 5s  both observers of cluster uw1 crash (that cluster's distribution
//	     plane is gone until they restart)
//	 8s  us-east is partitioned from us-west — east observers keep serving
//	     their proxies, but stop receiving commits
//	10s  one ue1 proxy starts crash-looping mid-watch (down 2s, up 3s, ×2)
//	30s  the region partition heals (delta/full-snapshot catch-up)
//	35s  the uw1 observers restart (session re-registration + catch-up)
//
// Writes land every 2s until t=28s; reads hit every server every 500ms for
// 60s. Every scripted fault is asserted via the obs fault counters.
func availabilityScenario(seed uint64, staleServe bool) availOutcome {
	reg := obs.New()
	cfg := cluster.SmallConfig(3, seed)
	cfg.Obs = reg
	f := cluster.New(cfg)
	f.Net.RunFor(10 * time.Second) // elect
	for _, s := range f.AllServers() {
		s.Proxy.StaleServe = staleServe
	}

	const path = "/avail/knob.json"
	writer := zeus.NewClient("avail-writer", f.Ensemble.Members)
	f.Net.AddNode("avail-writer", simnet.Placement{Region: "us-west", Cluster: "ctrl"}, writer)

	// Warm: land rev 0 and let every proxy fetch it with a watch.
	landRev := func(rev int64, done func(time.Time)) {
		f.Net.After(0, func() {
			ctx := simnet.MakeContext(f.Net, "avail-writer")
			data := []byte(fmt.Sprintf(`{"rev":%d}`, rev))
			writer.Write(&ctx, path, data, func(zeus.WriteResult) { done(f.Net.Now()) })
		})
	}
	warmed := false
	landRev(0, func(time.Time) { warmed = true })
	for i := 0; i < 40 && !warmed; i++ {
		f.Net.RunFor(500 * time.Millisecond)
	}
	f.SubscribeAll(path)
	f.Net.RunFor(5 * time.Second)

	// The fleet-health plane watches the same outage: convergence within
	// 5s for 99% of (path, proxy) pairs, degraded staleness under 15s.
	mon := f.AttachMonitor(monitor.Config{
		SweepEvery: availSweepEvery,
		SLOs: []*monitor.SLO{
			monitor.ConvergenceSLO(0.99, availConvergeGrace),
			monitor.StalenessSLO(0.99, availMaxStaleAge),
		},
	})

	// The scripted fault plan.
	east, west := groupByRegion(f)
	uw1Obs := f.Observers("uw1")
	looper := f.Cluster("ue1")[0].Proxy
	opts := []simnet.PlanOption{
		simnet.WithCrash(5*time.Second, uw1Obs[0]),
		simnet.WithCrash(5*time.Second, uw1Obs[1]),
		simnet.WithPartitionGroup(8*time.Second, east, west),
		simnet.WithCall(10*time.Second, "proxy-crash", looper.Crash),
		simnet.WithCall(12*time.Second, "proxy-restart", looper.Restart),
		simnet.WithCall(15*time.Second, "proxy-crash", looper.Crash),
		simnet.WithCall(17*time.Second, "proxy-restart", looper.Restart),
		simnet.WithHealGroup(30*time.Second, east, west),
		simnet.WithRestart(35*time.Second, uw1Obs[0]),
		simnet.WithRestart(35*time.Second, uw1Obs[1]),
	}
	plan := simnet.NewFaultPlan(opts...)
	plan.Apply(f.Net)

	// Write workload: a new revision every 2s until t=28s.
	commitAt := map[int64]time.Time{0: f.Net.Now()}
	var lastRev int64
	for i := int64(1); i <= 14; i++ {
		rev := i
		f.Net.After(time.Duration(rev)*2*time.Second, func() {
			landRev(rev, func(at time.Time) {
				commitAt[rev] = at
				if rev > lastRev {
					lastRev = rev
				}
			})
		})
	}

	// Read workload: every server, every 500ms, for 60s of virtual time.
	// Staleness is measured against the newest commit at read time during
	// the outage window [5s, 35s].
	var (
		side        AvailabilitySide
		staleness   []time.Duration
		start       = f.Net.Now()
		healAt      = start.Add(35 * time.Second)
		convergence = time.Duration(-1)
	)
	latestCommitted := func(at time.Time) int64 {
		best := int64(-1)
		for rev, t := range commitAt {
			if !t.After(at) && rev > best {
				best = rev
			}
		}
		return best
	}
	var pump func()
	pump = func() {
		now := f.Net.Now()
		off := now.Sub(start)
		if off >= 60*time.Second {
			return
		}
		inOutage := off >= 5*time.Second && off <= 35*time.Second
		afterHeal := off > 35*time.Second
		sweepConverged := afterHeal
		for _, s := range f.AllServers() {
			side.Reads++
			v, err := s.Client.Get(context.Background(), path)
			if err != nil {
				sweepConverged = false
				continue
			}
			side.OK++
			if afterHeal && v.Int("rev", -1) != lastRev {
				sweepConverged = false
			}
			if v.Source != proxy.SourceFresh {
				side.DegradedReads++
			}
			if v.Source == proxy.SourceStale {
				side.StaleReads++
			}
			if inOutage {
				rev := v.Int("rev", -1)
				if cur := latestCommitted(now); cur > rev {
					staleness = append(staleness, now.Sub(commitAt[rev+1]))
				} else {
					staleness = append(staleness, 0)
				}
			}
		}
		if sweepConverged && convergence < 0 {
			convergence = now.Sub(healAt)
		}
		f.Net.After(500*time.Millisecond, pump)
	}
	f.Net.After(0, pump)
	f.Net.RunFor(62 * time.Second)

	// Convergence fallback: if the fleet had not yet converged when the
	// read pump ended, keep stepping until every server serves the final
	// committed revision.
	for step := 0; convergence < 0 && step < 240; step++ {
		all := true
		for _, s := range f.AllServers() {
			v, err := s.Client.Get(context.Background(), path)
			if err != nil || v.Int("rev", -1) != lastRev {
				all = false
				break
			}
		}
		if all {
			convergence = f.Net.Now().Sub(healAt)
			break
		}
		f.Net.RunFor(250 * time.Millisecond)
	}

	if side.Reads > 0 {
		side.Availability = float64(side.OK) / float64(side.Reads)
	}
	side.RefusedReads = reg.Counters().Get("proxy.read.refused")
	side.PlaneDownSeen = reg.Counters().Get("proxy.plane.down")
	sort.Slice(staleness, func(i, j int) bool { return staleness[i] < staleness[j] })
	if n := len(staleness); n > 0 {
		side.StalenessP50Ms = staleness[n/2].Seconds() * 1e3
		side.StalenessP99Ms = staleness[n*99/100].Seconds() * 1e3
	}

	counters := make(map[string]int64)
	for _, k := range []string{
		"fault.injected", "fault.crash", "fault.restart",
		"fault.partition_group", "fault.heal_group", "fault.call",
	} {
		counters[k] = reg.Counters().Get(k)
	}
	return availOutcome{
		side:        side,
		convergence: convergence,
		scripted:    plan.Len(),
		fired:       plan.Fired(),
		counters:    counters,
		mon:         foldMonitor(mon, plan, start, healAt, convergence),
	}
}

// foldMonitor distills the monitor's run into the artifact's health
// section: alert timeline, per-window coverage, and clear latency.
func foldMonitor(mon *monitor.Monitor, plan *simnet.FaultPlan,
	start, healAt time.Time, convergence time.Duration) AvailabilityMonitor {
	st := mon.Status()
	out := AvailabilityMonitor{
		Sweeps:           st.Sweeps,
		SweepEveryMs:     availSweepEvery.Seconds() * 1e3,
		AllAlertsCleared: true,
		TimeToHeadP50Ms:  st.TimeToHeadP50.Seconds() * 1e3,
		TimeToHeadP99Ms:  st.TimeToHeadP99.Seconds() * 1e3,
	}
	off := func(t time.Time) time.Duration { return t.Sub(start) }
	var lastClear time.Duration
	for _, a := range st.Alerts {
		aa := AvailabilityAlert{
			SLO: a.SLO, Active: a.Active(), Paths: a.Paths,
			FiredOffMs: off(a.FiredAt).Seconds() * 1e3,
		}
		if a.Active() {
			out.AllAlertsCleared = false
		} else {
			aa.ClearedOffMs = off(a.ClearedAt).Seconds() * 1e3
			if c := off(a.ClearedAt); c > lastClear {
				lastClear = c
			}
		}
		out.Alerts = append(out.Alerts, aa)
	}

	// A burn-rate alert needs a few hot sweeps before it pages, so a
	// window counts as covered if an alert was active at any point within
	// [start, end + detection slack].
	slack := 3 * availSweepEvery
	out.AllWindowsCovered = true
	for _, w := range plan.OutageWindows() {
		aw := AvailabilityWindow{
			Kind:    string(w.Kind),
			Key:     w.Key,
			StartMs: w.Start.Seconds() * 1e3,
			EndMs:   w.End.Seconds() * 1e3,
		}
		winEnd := w.End + slack
		if !w.Closed {
			winEnd = 1 << 62 // never healed: any later alert covers it
		}
		for _, a := range st.Alerts {
			fired := off(a.FiredAt)
			cleared := time.Duration(1 << 62)
			if !a.Active() {
				cleared = off(a.ClearedAt)
			}
			if fired <= winEnd && cleared >= w.Start {
				aw.Covered = true
				break
			}
		}
		if !aw.Covered {
			out.AllWindowsCovered = false
		}
		out.Windows = append(out.Windows, aw)
	}

	if out.AllAlertsCleared && len(out.Alerts) > 0 {
		healOff := healAt.Sub(start)
		out.ClearAfterLastHealMs = (lastClear - healOff).Seconds() * 1e3
		// The monitor's deadline: once the fleet itself has reconverged
		// (which takes `convergence` after the heal), alerts must clear
		// within two sweeps — plus one sweep+heartbeat of observation lag.
		if convergence >= 0 {
			sinceConverged := lastClear - healOff - convergence
			out.ClearedWithinSweeps = float64(sinceConverged) / float64(availSweepEvery)
		}
	}
	return out
}

// boolMetric renders an assertion as a 0/1 metric.
func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// groupByRegion splits every fleet node (servers, observers, ensemble
// members) into us-east vs everything-else, for the region partition.
func groupByRegion(f *cluster.Fleet) (east, west []simnet.NodeID) {
	var ids []simnet.NodeID
	ids = append(ids, f.Servers()...)
	for _, c := range f.ClusterNames() {
		ids = append(ids, f.Observers(c)...)
	}
	ids = append(ids, f.Ensemble.Members...)
	for _, id := range ids {
		if f.Net.Placement(id).Region == "us-east" {
			east = append(east, id)
		} else {
			west = append(west, id)
		}
	}
	return east, west
}

// Availability runs the graceful-degradation experiment (paper §4.1: "the
// availability of the configuration management system should be higher
// than that of the applications it supports"): continuous reads across the
// fleet while observers crash, a region partitions, and a proxy
// crash-loops — once with stale-serve on (the paper's choice: availability
// over freshness) and once with it off. The raw numbers land as
// BENCH_availability.json.
func Availability(opts Options) Result {
	r := Result{ID: "availability", Title: "Read availability under infrastructure faults (stale-serve on vs off)"}

	on := availabilityScenario(opts.Seed, true)
	off := availabilityScenario(opts.Seed, false)

	var rep AvailabilityReport
	rep.Workload.Servers = 12
	rep.Workload.Writes = 15
	rep.Workload.ReadEveryMs = 500
	rep.Workload.DurationSec = 60
	rep.StaleServeOn = on.side
	rep.StaleServeOff = off.side
	rep.Convergence.AfterHealMs = on.convergence.Seconds() * 1e3
	rep.Faults.Scripted = on.scripted
	rep.Faults.Fired = on.fired
	rep.Faults.Counters = on.counters
	rep.Monitor = on.mon

	var b strings.Builder
	fmt.Fprintf(&b, "scripted faults: %d (fired %d; fault.injected=%d)\n\n",
		on.scripted, on.fired, on.counters["fault.injected"])
	fmt.Fprintf(&b, "%-16s %10s %10s %14s %14s %10s\n",
		"mode", "reads", "ok", "availability", "stale p99", "refused")
	row := func(name string, s AvailabilitySide) {
		fmt.Fprintf(&b, "%-16s %10d %10d %13.2f%% %12.0fms %10d\n",
			name, s.Reads, s.OK, s.Availability*100, s.StalenessP99Ms, s.RefusedReads)
	}
	row("stale-serve on", on.side)
	row("stale-serve off", off.side)
	fmt.Fprintf(&b, "\nconvergence after heal: %s\n", on.convergence.Round(time.Millisecond))
	fmt.Fprintf(&b, "\nfleet-health monitor (%d sweeps): %d alerts, windows covered=%t, cleared=%t\n",
		on.mon.Sweeps, len(on.mon.Alerts), on.mon.AllWindowsCovered, on.mon.AllAlertsCleared)
	for _, a := range on.mon.Alerts {
		fmt.Fprintf(&b, "  %-28s fired @%6.1fs cleared @%6.1fs paths=%s\n",
			a.SLO, a.FiredOffMs/1e3, a.ClearedOffMs/1e3, strings.Join(a.Paths, ","))
	}
	r.Text = b.String()

	r.metric("availability_stale_serve_on", on.side.Availability, 1.0, true)
	r.metric("availability_stale_serve_off", off.side.Availability, 0, false)
	r.metric("outage_staleness_p50_ms", on.side.StalenessP50Ms, 0, false)
	r.metric("outage_staleness_p99_ms", on.side.StalenessP99Ms, 0, false)
	r.metric("convergence_after_heal_ms", rep.Convergence.AfterHealMs, 0, false)
	r.metric("faults_fired", float64(on.fired), float64(on.scripted), true)
	r.metric("slo_alerts_fired", float64(len(on.mon.Alerts)), 1, true)
	r.metric("slo_windows_covered", boolMetric(on.mon.AllWindowsCovered), 1, true)
	r.metric("slo_alerts_cleared", boolMetric(on.mon.AllAlertsCleared), 1, true)
	r.metric("slo_cleared_within_sweeps", on.mon.ClearedWithinSweeps, 2, false)

	art, _ := json.MarshalIndent(rep, "", "  ")
	r.ArtifactName = "BENCH_availability.json"
	r.Artifact = art
	return r
}
