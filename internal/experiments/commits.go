package experiments

import (
	"fmt"
	"strings"
	"time"

	"configerator/internal/landingstrip"
	"configerator/internal/stats"
	"configerator/internal/vclock"
	"configerator/internal/vcs"
	"configerator/internal/workload"
)

// Fig11DailyCommits reproduces Figure 11: daily commit throughput of the
// configerator, www, and fbcode repositories over ten months, with the
// weekly pattern and Configerator's automation-driven weekend floor.
func Fig11DailyCommits(opts Options) Result {
	days := 300
	if opts.Quick {
		days = 120
	}
	cfg := workload.GenerateCommits(workload.ConfigeratorProfile(), days, opts.Seed)
	www := workload.GenerateCommits(workload.WWWProfile(), days, opts.Seed+1)
	fbcode := workload.GenerateCommits(workload.FbcodeProfile(), days, opts.Seed+2)
	r := Result{ID: "fig11", Title: "Daily commit throughput per repository"}
	var b strings.Builder
	b.WriteString(cfg.DailySeries().Sparkline(70) + "\n")
	b.WriteString(www.DailySeries().Sparkline(70) + "\n")
	b.WriteString(fbcode.DailySeries().Sparkline(70) + "\n")
	r.Text = b.String()
	r.metric("configerator_weekend_ratio", cfg.WeekendRatio(), 0.33, true)
	r.metric("www_weekend_ratio", www.WeekendRatio(), 0.10, true)
	r.metric("fbcode_weekend_ratio", fbcode.WeekendRatio(), 0.07, true)
	early := float64(cfg.PeakDaily(0, 30))
	late := float64(cfg.PeakDaily(days-30, days))
	growth := late/early - 1
	paperGrowth := 1.8 * float64(days) / 300 // 180% over 10 months, scaled
	r.metric("configerator_peak_growth", growth, paperGrowth, true)
	return r
}

// Fig12HourlyCommits reproduces Figure 12: hourly commit throughput over
// one week — a diurnal peak 10AM-6PM on weekdays plus a steady automated
// floor through nights and weekends.
func Fig12HourlyCommits(opts Options) Result {
	cfg := workload.GenerateCommits(workload.ConfigeratorProfile(), 14, opts.Seed)
	r := Result{ID: "fig12", Title: "Configerator hourly commit throughput over one week"}
	var b strings.Builder
	b.WriteString(cfg.HourlySeries(7, 14).Sparkline(84) + "\n")
	var peak, trough float64
	peakN, troughN := 0, 0
	for h := 7 * 24; h < 14*24; h++ {
		hour := h % 24
		n := float64(cfg.PerHour[h])
		if hour >= 10 && hour < 18 {
			peak += n
			peakN++
		}
		if hour >= 2 && hour < 6 {
			trough += n
			troughN++
		}
	}
	peak /= float64(peakN)
	trough /= float64(troughN)
	fmt.Fprintf(&b, "mean 10-18h commits/hour: %.0f; mean 02-06h: %.0f\n", peak, trough)
	r.Text = b.String()
	r.metric("peak_to_trough_ratio", peak/trough, 0, false)
	r.metric("night_floor_commits_per_hour", trough, 0, false)
	return r
}

// Fig13CommitThroughput reproduces Figure 13: maximum commit throughput
// (and the companion latency = 60s/throughput curve) as a function of
// repository size, measured by replaying a synthetic commit history into
// the landing strip over the calibrated git cost model — the same sandbox
// methodology the paper used, including projecting beyond the production
// size with synthetic commits.
func Fig13CommitThroughput(opts Options) Result {
	r := Result{ID: "fig13", Title: "Max commit throughput vs repository size"}
	cost := vcs.DefaultCostModel()
	sizes := []int{1_000, 100_000, 200_000, 400_000, 600_000, 800_000, 1_000_000}
	if opts.Quick {
		sizes = []int{1_000, 200_000, 600_000, 1_000_000}
	}
	var through stats.Series
	through.Name = "commits/minute"
	var latency stats.Series
	latency.Name = "commit latency (s)"
	var b strings.Builder
	b.WriteString("files\tcommits/min\tlatency(s)\n")
	var tpSmall, tpLarge float64
	for _, files := range sizes {
		repo := vcs.NewRepository("sandbox")
		repo.SetSyntheticFileCount(files)
		strip := landingstrip.New(repo, cost)
		// Saturate the strip: a burst of back-to-back diffs, all arriving
		// at once; measured throughput is the drain rate.
		const burst = 50
		start := vclock.Epoch
		var finish time.Time
		for i := 0; i < burst; i++ {
			wc := repo.Clone("replayer")
			wc.Write(fmt.Sprintf("replay/f%d", i), []byte("x = 1\n"))
			res := strip.Submit(wc.Diff("replayed commit"), start)
			if res.Err != nil {
				panic(res.Err)
			}
			finish = res.Finish
		}
		perMin := float64(burst) / finish.Sub(start).Minutes()
		lat := finish.Sub(start).Seconds() / burst
		through.Add(float64(files), perMin)
		latency.Add(float64(files), lat)
		fmt.Fprintf(&b, "%7d\t%7.1f\t%6.2f\n", files, perMin, lat)
		if files == sizes[0] {
			tpSmall = perMin
		}
		tpLarge = perMin
	}
	b.WriteString(through.Sparkline(40) + "\n")
	b.WriteString(latency.Sparkline(40) + "\n")
	r.Text = b.String()
	// Paper endpoints: >200/min on a small repo, roughly 10/min at 1M
	// files (latency ~0.25s -> ~6s).
	r.metric("throughput_small_repo_per_min", tpSmall, 230, true)
	r.metric("throughput_1M_files_per_min", tpLarge, 10, true)
	r.metric("slowdown_factor", tpSmall/tpLarge, 23, true)
	return r
}

// AblationLandingStrip compares the landing strip against engineers
// pushing directly with git semantics under contention (§3.6).
func AblationLandingStrip(opts Options) Result {
	r := Result{ID: "ablation-landing-strip", Title: "Landing strip vs direct git push under contention"}
	cost := vcs.DefaultCostModel()
	const files = 500_000
	const committers = 20

	// Direct: everyone clones at the same head, then pushes one after
	// another; each later pusher pays a stale-clone update first.
	direct := vcs.NewRepository("direct")
	direct.SetSyntheticFileCount(files)
	var clones []*vcs.WorkingCopy
	for i := 0; i < committers; i++ {
		wc := direct.Clone(fmt.Sprintf("eng%d", i))
		wc.Write(fmt.Sprintf("d/f%d", i), []byte("x"))
		clones = append(clones, wc)
	}
	var directTotal time.Duration
	now := vclock.Epoch
	for i, wc := range clones {
		res, attempts := landingstrip.DirectPush(direct, cost, wc, "change", now)
		if res.Err != nil {
			panic(res.Err)
		}
		directTotal += res.Finish.Sub(res.Start)
		now = res.Finish
		_ = i
		_ = attempts
	}

	// Strip: the same diffs land FCFS with no updates.
	stripRepo := vcs.NewRepository("strip")
	stripRepo.SetSyntheticFileCount(files)
	strip := landingstrip.New(stripRepo, cost)
	var diffs []*vcs.Diff
	for i := 0; i < committers; i++ {
		wc := stripRepo.Clone(fmt.Sprintf("eng%d", i))
		wc.Write(fmt.Sprintf("d/f%d", i), []byte("x"))
		diffs = append(diffs, wc.Diff("change"))
	}
	var stripTotal time.Duration
	for _, d := range diffs {
		res := strip.Submit(d, vclock.Epoch)
		if res.Err != nil {
			panic(res.Err)
		}
		stripTotal += res.Work
	}

	directMean := directTotal / committers
	stripMean := stripTotal / committers
	r.Text = fmt.Sprintf("%d committers, %d-file repo:\n  direct push mean cost: %v\n  landing strip mean cost: %v\n  speedup: %.1fx\n",
		committers, files, directMean, stripMean, float64(directMean)/float64(stripMean))
	r.metric("direct_mean_seconds", directMean.Seconds(), 0, false)
	r.metric("strip_mean_seconds", stripMean.Seconds(), 0, false)
	r.metric("speedup", float64(directMean)/float64(stripMean), 0, false)
	return r
}

// AblationMultiRepo measures commit throughput of one shared repository vs
// a partitioned multi-repo namespace (§3.6).
func AblationMultiRepo(opts Options) Result {
	r := Result{ID: "ablation-multirepo", Title: "Single shared repo vs partitioned multi-repo commit throughput"}
	cost := vcs.DefaultCostModel()
	const files = 1_000_000
	const commits = 60
	const partitions = 4

	// Single repo: all commits serialize through one strip.
	single := vcs.NewRepository("single")
	single.SetSyntheticFileCount(files)
	strip := landingstrip.New(single, cost)
	var finish time.Time
	for i := 0; i < commits; i++ {
		wc := single.Clone("eng")
		wc.Write(fmt.Sprintf("p%d/f%d", i%partitions, i), []byte("x"))
		res := strip.Submit(wc.Diff("c"), vclock.Epoch)
		finish = res.Finish
	}
	singleThroughput := float64(commits) / finish.Sub(vclock.Epoch).Minutes()

	// Partitioned: four repos, each a quarter of the namespace, commits
	// land concurrently on their own strips.
	set := vcs.NewRepoSet("default")
	var strips []*landingstrip.Strip
	for i := 0; i < partitions; i++ {
		repo := set.AddRepo(fmt.Sprintf("p%d", i))
		repo.SetSyntheticFileCount(files / partitions)
		strips = append(strips, landingstrip.New(repo, cost))
	}
	var worst time.Time
	for i := 0; i < commits; i++ {
		shard := i % partitions
		repo := strips[shard].Repo()
		wc := repo.Clone("eng")
		wc.Write(fmt.Sprintf("p%d/f%d", shard, i), []byte("x"))
		res := strips[shard].Submit(wc.Diff("c"), vclock.Epoch)
		if res.Finish.After(worst) {
			worst = res.Finish
		}
	}
	multiThroughput := float64(commits) / worst.Sub(vclock.Epoch).Minutes()

	r.Text = fmt.Sprintf("%d commits over a %d-file namespace:\n  single repo: %.1f commits/min\n  %d-way partitioned: %.1f commits/min\n  speedup: %.1fx\n",
		commits, files, singleThroughput, partitions, multiThroughput, multiThroughput/singleThroughput)
	r.metric("single_repo_commits_per_min", singleThroughput, 0, false)
	r.metric("partitioned_commits_per_min", multiThroughput, 0, false)
	r.metric("speedup", multiThroughput/singleThroughput, 0, false)
	return r
}
