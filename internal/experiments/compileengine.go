package experiments

import (
	"fmt"
	"time"

	"configerator/internal/cdl"
)

// fanoutFS builds the paper's recompile-fan-out scenario (§3.1): one shared
// .cinc imported by n top-level configs. The .cinc carries a schema, a
// validator, and a deliberately non-trivial amount of evaluation work so
// the cost of re-evaluating it per dependent is visible.
func fanoutFS(n int) (cdl.MapFS, []string) {
	fs := cdl.MapFS{
		"lib/shared.cinc": `
			schema Job {
				1: string name;
				2: i32 priority = 1;
				3: list<string> tags = [];
				4: map<string, i64> limits = {};
			}
			validator Job(c) { assert(c.priority >= 0 && c.priority <= 10, "priority out of range"); }
			let total = 0;
			for (i in range(400)) {
				total = total + i * i;
			}
			let tiers = [];
			for (i in range(40)) {
				tiers = tiers + ["tier-" + str(i)];
			}
			def mk(name, pri) {
				return Job{name: name, priority: pri, tags: ["managed", name] + tiers, limits: {"budget": total}};
			}
			export mk("shared-default", 1);
		`,
	}
	paths := make([]string, 0, n)
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("svc/app%03d.cconf", i)
		fs[p] = fmt.Sprintf("import \"lib/shared.cinc\";\nexport mk(\"svc-%03d\", %d);\n", i, i%10)
		paths = append(paths, p)
	}
	return fs, paths
}

// CompileEngine measures the memoizing compilation engine against the seed
// serial compiler on the shared-.cinc fan-out, and reports the engine's
// cache counters. Counter metrics are exact invariants (asserted by the
// test suite); wall-clock speedups are environment-dependent and reported
// for the record.
func CompileEngine(opts Options) Result {
	n := 100
	if opts.Quick {
		n = 40
	}
	fs, paths := fanoutFS(n)

	// Seed baseline: the pre-engine compiler, one full parse+eval of the
	// whole import graph per dependent.
	seedEng := &cdl.Engine{CacheDisabled: true}
	seedStart := time.Now()
	for _, p := range paths {
		if _, err := seedEng.Compile(fs, p); err != nil {
			panic(err)
		}
	}
	seedDur := time.Since(seedStart)

	// Cold engine: first batch compile populates the caches. Workers=1
	// keeps the counter values exactly deterministic.
	eng := cdl.NewEngine()
	eng.Workers = 1
	coldStart := time.Now()
	if _, err := eng.CompileAll(fs, paths); err != nil {
		panic(err)
	}
	coldDur := time.Since(coldStart)
	cold := eng.Counters().Snapshot()

	// Warm: identical batch again — the §3.3 double-compile that CI pays.
	warmStart := time.Now()
	if _, err := eng.CompileAll(fs, paths); err != nil {
		panic(err)
	}
	warmDur := time.Since(warmStart)
	warm := eng.Counters().Snapshot()

	// Touched: the shared .cinc changes, every dependent recompiles — but
	// dependent sources are unchanged, so their parses come from cache.
	fs["lib/shared.cinc"] = fs["lib/shared.cinc"] + "\nexport mk(\"shared-default\", 2);\n"
	eng.InvalidatePaths("lib/shared.cinc")
	touchStart := time.Now()
	if _, err := eng.CompileAll(fs, paths); err != nil {
		panic(err)
	}
	touchDur := time.Since(touchStart)
	touched := eng.Counters().Snapshot()

	r := Result{ID: "engine", Title: "content-hash-memoized CDL compilation engine (fan-out recompile)"}
	r.metric("dependents", float64(n), 0, false)
	r.metric("seed_serial_ms", float64(seedDur.Microseconds())/1000, 0, false)
	r.metric("cold_batch_ms", float64(coldDur.Microseconds())/1000, 0, false)
	r.metric("warm_batch_ms", float64(warmDur.Microseconds())/1000, 0, false)
	r.metric("touched_cinc_ms", float64(touchDur.Microseconds())/1000, 0, false)
	if warmDur > 0 {
		r.metric("warm_speedup_vs_seed", float64(seedDur)/float64(warmDur), 0, false)
	}
	if touchDur > 0 {
		r.metric("touched_speedup_vs_seed", float64(seedDur)/float64(touchDur), 0, false)
	}
	// Exact cache invariants: every source parses once cold (n dependents
	// + 1 shared .cinc); a warm batch is pure result-cache hits with zero
	// parses or module builds; a touched .cinc re-parses only itself.
	r.metric("cold_parse_miss", float64(cold["parse.miss"]), 0, false)
	r.metric("warm_parse_miss_delta", float64(warm["parse.miss"]-cold["parse.miss"]), 0, false)
	r.metric("warm_result_hit_delta", float64(warm["result.hit"]-cold["result.hit"]), 0, false)
	r.metric("warm_module_build_delta", float64(warm["module.build"]-cold["module.build"]), 0, false)
	r.metric("touched_parse_miss_delta", float64(touched["parse.miss"]-warm["parse.miss"]), 0, false)
	r.Text = eng.Counters().Table("cdl engine cache counters (after cold+warm+touched batches)")
	return r
}
