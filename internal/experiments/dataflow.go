package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"configerator/internal/cdl"
	"configerator/internal/cdl/analysis/dataflow"
)

// DataflowReport is the BENCH_dataflow.json schema: whole-repo provenance
// wall-times (cold vs memo-warm), the incremental cost of a one-file edit,
// and radius-query latency over a fleet-sized synthetic tree.
type DataflowReport struct {
	Workload struct {
		Artifacts int `json:"artifacts"`
		Libs      int `json:"libs"`
		Sitevars  int `json:"sitevars"`
		Files     int `json:"files"`
	} `json:"workload"`
	Provenance struct {
		ColdMs        float64 `json:"cold_ms"`
		WarmMs        float64 `json:"warm_ms"` // min of 3 warm runs
		WarmSpeedup   float64 `json:"warm_speedup"`
		ColdRecompute int     `json:"cold_recompute"`
		WarmMemoHits  int     `json:"warm_memo_hits"`
		EditRecompute int     `json:"edit_recompute"` // one-sitevar edit cone
		EditMemoHits  int     `json:"edit_memo_hits"`
	} `json:"provenance"`
	Radius struct {
		Queries      int     `json:"queries"`
		P50Us        float64 `json:"p50_us"`
		P99Us        float64 `json:"p99_us"`
		MaxArtifacts int     `json:"max_artifacts"`
	} `json:"radius"`
}

// dataflowFS builds the synthetic tree: sitevar templates feeding shared
// libraries feeding artifacts, in a fixed topology so counter deltas are
// exact (artifact i uses lib i%L; lib j uses sitevars j%S and (j+1)%S).
func dataflowFS(artifacts, libs, sitevars int) (cdl.MapFS, []string) {
	fs := cdl.MapFS{}
	for s := 0; s < sitevars; s++ {
		fs[fmt.Sprintf("sitevars/sv%d.cinc", s)] =
			fmt.Sprintf("let SV%d = %d;\n", s, 100+s)
	}
	for l := 0; l < libs; l++ {
		a, b := l%sitevars, (l+1)%sitevars
		fs[fmt.Sprintf("lib/lib%d.cinc", l)] = fmt.Sprintf(
			"import \"sitevars/sv%d.cinc\";\nimport \"sitevars/sv%d.cinc\";\n"+
				"let BASE%d = SV%d + SV%d;\nlet NAME%d = \"lib%d\";\n",
			a, b, l, a, b, l, l)
	}
	roots := make([]string, 0, artifacts)
	for i := 0; i < artifacts; i++ {
		l := i % libs
		path := fmt.Sprintf("svc/app%d.cconf", i)
		fs[path] = fmt.Sprintf(
			"import \"lib/lib%d.cinc\";\n"+
				"let scaled = BASE%d * %d;\n"+
				"export {value: scaled, name: NAME%d, rank: %d};\n",
			l, l, i+1, l, i)
		roots = append(roots, path)
	}
	return fs, roots
}

// Dataflow measures the whole-repo analysis (internal/cdl/analysis/dataflow)
// at fleet shape: cold Analyze parses and summarizes every module; a warm
// Analyze over the unchanged tree must be pure memo hits (the ISSUE
// acceptance: >= 5x faster); a one-sitevar edit recomputes exactly its
// provenance cone; and blast-radius queries answer in microseconds.
func Dataflow(opts Options) Result {
	artifacts, libs, sitevars := 1000, 200, 100
	if opts.Quick {
		artifacts, libs, sitevars = 300, 60, 30
	}
	fs, roots := dataflowFS(artifacts, libs, sitevars)

	ix := dataflow.NewIndex(cdl.NewEngine())

	coldStart := time.Now()
	rep := ix.Analyze(fs, roots)
	coldDur := time.Since(coldStart)
	if len(rep.Errors) > 0 {
		panic(fmt.Sprintf("dataflow analyze errors: %v", rep.Errors))
	}
	cold := ix.Counters().Snapshot()

	// Warm: min of 3 runs against the populated memo (what every pipeline
	// Submit and strip-gate check pays after the first analysis).
	warmDur := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		rep = ix.Analyze(fs, roots)
		if d := time.Since(start); d < warmDur {
			warmDur = d
		}
	}
	warm := ix.Counters().Snapshot()

	// One-sitevar edit: only its cone (the sitevar, every lib importing it,
	// every artifact on those libs) recomputes.
	edited, _ := dataflowFS(artifacts, libs, sitevars)
	edited["sitevars/sv0.cinc"] = "let SV0 = 999;\n"
	editStart := time.Now()
	rep = ix.Analyze(edited, roots)
	editDur := time.Since(editStart)
	after := ix.Counters().Snapshot()

	// Radius queries, alternating external-input tokens and file paths.
	queries := 32
	maxArts := 0
	durs := make([]time.Duration, 0, queries)
	for q := 0; q < queries; q++ {
		var changed string
		if q%2 == 0 {
			changed = fmt.Sprintf("sitevars/sv%d.cinc", q%sitevars)
		} else {
			changed = fmt.Sprintf("lib/lib%d.cinc", q%libs)
		}
		start := time.Now()
		rad := rep.Radius([]string{changed})
		durs = append(durs, time.Since(start))
		if len(rad.Artifacts) > maxArts {
			maxArts = len(rad.Artifacts)
		}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	p50 := durs[len(durs)/2]
	p99 := durs[len(durs)*99/100]

	var out DataflowReport
	out.Workload.Artifacts = artifacts
	out.Workload.Libs = libs
	out.Workload.Sitevars = sitevars
	out.Workload.Files = len(fs)
	out.Provenance.ColdMs = float64(coldDur.Microseconds()) / 1000
	out.Provenance.WarmMs = float64(warmDur.Microseconds()) / 1000
	if warmDur > 0 {
		out.Provenance.WarmSpeedup = float64(coldDur) / float64(warmDur)
	}
	out.Provenance.ColdRecompute = int(cold["provenance.recompute"])
	out.Provenance.WarmMemoHits = int(warm["provenance.memo"] - cold["provenance.memo"])
	out.Provenance.EditRecompute = int(after["provenance.recompute"] - warm["provenance.recompute"])
	out.Provenance.EditMemoHits = int(after["provenance.memo"] - warm["provenance.memo"])
	out.Radius.Queries = queries
	out.Radius.P50Us = float64(p50.Nanoseconds()) / 1000
	out.Radius.P99Us = float64(p99.Nanoseconds()) / 1000
	out.Radius.MaxArtifacts = maxArts

	r := Result{ID: "dataflow", Title: "whole-repo dataflow: memoized provenance, incremental edits, radius queries"}
	r.metric("files", float64(len(fs)), 0, false)
	r.metric("cold_analyze_ms", out.Provenance.ColdMs, 0, false)
	r.metric("warm_analyze_ms", out.Provenance.WarmMs, 0, false)
	r.metric("warm_speedup", out.Provenance.WarmSpeedup, 0, false)
	r.metric("cold_recompute", float64(out.Provenance.ColdRecompute), 0, false)
	r.metric("edit_recompute", float64(out.Provenance.EditRecompute), 0, false)
	r.metric("edit_analyze_ms", float64(editDur.Microseconds())/1000, 0, false)
	r.metric("radius_p50_us", out.Radius.P50Us, 0, false)
	r.metric("radius_p99_us", out.Radius.P99Us, 0, false)

	r.Text = fmt.Sprintf(
		"tree: %d artifacts, %d libs, %d sitevars (%d files)\n"+
			"cold analyze: %.2f ms (%d module summaries built)\n"+
			"warm analyze: %.3f ms, %.0fx speedup (%d memo hits, 0 rebuilds)\n"+
			"one-sitevar edit: %.2f ms, %d summaries rebuilt (the provenance cone), %d memo hits\n"+
			"radius queries: p50 %.1f us, p99 %.1f us over %d queries (max %d artifacts)\n",
		artifacts, libs, sitevars, len(fs),
		out.Provenance.ColdMs, out.Provenance.ColdRecompute,
		out.Provenance.WarmMs, out.Provenance.WarmSpeedup, out.Provenance.WarmMemoHits,
		float64(editDur.Microseconds())/1000, out.Provenance.EditRecompute, out.Provenance.EditMemoHits,
		out.Radius.P50Us, out.Radius.P99Us, queries, maxArts)

	art, _ := json.MarshalIndent(out, "", "  ")
	r.ArtifactName = "BENCH_dataflow.json"
	r.Artifact = art
	return r
}
