package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"configerator/internal/obs"
	"configerator/internal/proxy"
	"configerator/internal/simnet"
	"configerator/internal/zeus"
)

// DistributionReport is the BENCH_distribution.json schema: the batched,
// delta-encoded distribution plane against its naive baselines on the same
// workload.
type DistributionReport struct {
	Throughput struct {
		Writers           int     `json:"writers"`
		Ops               int     `json:"ops"`
		BatchedOpsPerSec  float64 `json:"batched_ops_per_sec"`
		BaselineOpsPerSec float64 `json:"baseline_ops_per_sec"`
		Speedup           float64 `json:"speedup"`
		BatchedWaves      int64   `json:"batched_waves"`
		BaselineWaves     int64   `json:"baseline_waves"`
	} `json:"throughput"`
	Bytes struct {
		ConfigBytes int     `json:"config_bytes"`
		Edits       int     `json:"edits"`
		DeltaBytes  uint64  `json:"delta_bytes"`
		FullBytes   uint64  `json:"full_bytes"`
		Ratio       float64 `json:"ratio"`
		DeltaPushes int64   `json:"delta_pushes"`
		FullPushes  int64   `json:"full_pushes"`
	} `json:"bytes"`
	Propagation struct {
		DeltaP50Ms float64 `json:"delta_p50_ms"`
		DeltaP99Ms float64 `json:"delta_p99_ms"`
		FullP50Ms  float64 `json:"full_p50_ms"`
		FullP99Ms  float64 `json:"full_p99_ms"`
	} `json:"propagation"`
}

// distBytesBody is the steady-state content of the Part 2 watched config
// (~32 KB; each measured edit only bumps the rev header).
const distBytesLine = "tier.web.option = \"steady-state-value\"\n"
const distBytesLines = 840

// distThroughput drives concurrent writers (each issuing sequential writes
// to its own paths) against a same-cluster 3-member ensemble and measures
// committed writes per second of virtual time. The only knob that differs
// between the two calls is group commit: off is the one-proposal-per-write
// baseline, where every write pays its own durable log write; on, writes
// arriving while a wave is in flight coalesce and the log cost is paid
// once per wave.
func distThroughput(seed uint64, writers, perWriter int, groupCommit bool) (opsPerSec float64, waves int64) {
	net := simnet.New(simnet.DefaultLatency(), seed)
	reg := obs.New()
	place := simnet.Placement{Region: "us", Cluster: "zk"}
	ens := zeus.StartEnsemble(net, 3, []simnet.Placement{place})
	ens.SetObs(reg)
	ens.SetGroupCommit(groupCommit)
	net.RunFor(10 * time.Second)

	total := writers * perWriter
	committed := 0
	payload := []byte(`{"knob":"value","rollout_percent":100,"ttl_seconds":300}`)
	start := net.Now()
	last := start
	for w := 0; w < writers; w++ {
		w := w
		id := simnet.NodeID(fmt.Sprintf("writer-%d", w))
		cl := zeus.NewClient(id, ens.Members)
		net.AddNode(id, place, cl)
		var step func(k int)
		step = func(k int) {
			if k == perWriter {
				return
			}
			ctx := simnet.MakeContext(net, id)
			cl.Write(&ctx, fmt.Sprintf("/dist/w%02d/cfg-%d", w, k), payload, func(zeus.WriteResult) {
				committed++
				last = net.Now()
				step(k + 1)
			})
		}
		net.After(0, func() { step(0) })
	}
	for i := 0; i < 400 && committed < total; i++ {
		net.RunFor(500 * time.Millisecond)
	}
	elapsed := last.Sub(start).Seconds()
	if committed == 0 || elapsed <= 0 {
		return 0, 0
	}
	return float64(committed) / elapsed, reg.Counters().Get("zeus.propose.waves")
}

// distBytes warms a watched ~32 KB config on a proxy and then pushes small
// sequential edits through the leader→observer→proxy plane, counting every
// payload byte simnet carries. The deltas knob toggles hash-advertised
// delta encoding end to end; off, every hop re-ships the full config. The
// propagation histogram (commit→proxy materialize) is measured on the same
// runs via commit-scoped traces. A single-member ensemble isolates the
// distribution plane (observer pushes, watch events, fetches) from
// replication traffic.
func distBytes(seed uint64, edits int, deltas bool) (editBytes uint64, deltaPushes, fullPushes int64, p50, p99 time.Duration) {
	net := simnet.New(simnet.DefaultLatency(), seed)
	reg := obs.New()
	net.SetObs(reg)
	zkPlace := simnet.Placement{Region: "us", Cluster: "zk"}
	ens := zeus.StartEnsemble(net, 1, []simnet.Placement{zkPlace})
	ens.SetObs(reg)
	ens.SetDeltaEncoding(deltas)
	clPlace := simnet.Placement{Region: "us", Cluster: "c1"}
	ens.AddObserver("obs-1", clPlace)
	px := proxy.New(net, "srv-1", clPlace, []simnet.NodeID{"obs-1"}, nil)
	px.Obs = reg
	px.DeltaEncoding = deltas
	writer := zeus.NewClient("writer", ens.Members)
	net.AddNode("writer", zkPlace, writer)
	net.RunFor(10 * time.Second)

	const path = "/dist/bytes/app.json"
	body := strings.Repeat(distBytesLine, distBytesLines)
	render := func(rev int) []byte {
		return []byte(fmt.Sprintf("rev = %06d\n%s", rev, body))
	}
	write := func(data []byte) {
		done := false
		net.After(0, func() {
			ctx := simnet.MakeContext(net, "writer")
			writer.Write(&ctx, path, data, func(zeus.WriteResult) { done = true })
		})
		for i := 0; i < 40 && !done; i++ {
			net.RunFor(500 * time.Millisecond)
		}
	}

	// Warm: land the config and let the proxy fetch it with a watch, so
	// every measured edit is a pure push.
	write(render(0))
	px.Want(path)
	net.RunFor(10 * time.Second)

	// Push-plane bytes: the leader→observer and observer→proxy links. The
	// writer's own upload of the new content is the same in both modes and
	// is not part of the distribution plane.
	pushPlane := func() uint64 {
		leader := ens.Leader()
		return net.LinkBytes(leader, "obs-1") + net.LinkBytes("obs-1", "srv-1")
	}
	before := pushPlane()
	for i := 1; i <= edits; i++ {
		tr := reg.StartTrace(fmt.Sprintf("edit-%d", i), net.Now())
		reg.BindPath(path, tr)
		write(render(i))
		net.RunFor(2 * time.Second)
		tr.EndAt(net.Now())
	}
	editBytes = pushPlane() - before
	h := reg.Histogram(obs.HistCommitToProxy)
	return editBytes, reg.Counters().Get("zeus.push.delta"), reg.Counters().Get("zeus.push.full"),
		h.Quantile(0.50), h.Quantile(0.99)
}

// Distribution benchmarks the batched, delta-encoded distribution plane
// (DESIGN.md §9) against its naive baselines:
//
//  1. Commit throughput under 32 concurrent writers, group commit on vs
//     one-proposal-per-write. The win is durable-log amortization: one
//     fsync-equivalent per wave instead of per write (the group-commit and
//     pipelining levers FRAPPÉ applies to the same problem shape).
//  2. Bytes on wire for small edits to a watched ~32 KB config, delta
//     encoding on vs full snapshots, with commit→proxy propagation
//     latency measured on the same runs to show deltas don't cost
//     freshness.
//
// The raw numbers land as BENCH_distribution.json.
func Distribution(opts Options) Result {
	r := Result{ID: "distribution", Title: "Distribution plane: group commit, deltas, bytes on wire"}

	writers, perWriter, edits := 32, 8, 10
	if opts.Quick {
		perWriter, edits = 4, 6
	}

	var rep DistributionReport

	batched, batchedWaves := distThroughput(opts.Seed, writers, perWriter, true)
	baseline, baselineWaves := distThroughput(opts.Seed, writers, perWriter, false)
	rep.Throughput.Writers = writers
	rep.Throughput.Ops = writers * perWriter
	rep.Throughput.BatchedOpsPerSec = batched
	rep.Throughput.BaselineOpsPerSec = baseline
	rep.Throughput.BatchedWaves = batchedWaves
	rep.Throughput.BaselineWaves = baselineWaves
	if baseline > 0 {
		rep.Throughput.Speedup = batched / baseline
	}

	deltaBytes, deltaPushes, _, dp50, dp99 := distBytes(opts.Seed, edits, true)
	fullBytes, _, fullPushes, fp50, fp99 := distBytes(opts.Seed, edits, false)
	rep.Bytes.ConfigBytes = len("rev = 000000\n") + distBytesLines*len(distBytesLine)
	rep.Bytes.Edits = edits
	rep.Bytes.DeltaBytes = deltaBytes
	rep.Bytes.FullBytes = fullBytes
	rep.Bytes.DeltaPushes = deltaPushes
	rep.Bytes.FullPushes = fullPushes
	if fullBytes > 0 {
		rep.Bytes.Ratio = float64(deltaBytes) / float64(fullBytes)
	}
	rep.Propagation.DeltaP50Ms = dp50.Seconds() * 1e3
	rep.Propagation.DeltaP99Ms = dp99.Seconds() * 1e3
	rep.Propagation.FullP50Ms = fp50.Seconds() * 1e3
	rep.Propagation.FullP99Ms = fp99.Seconds() * 1e3

	var b strings.Builder
	fmt.Fprintf(&b, "group commit, %d writers x %d writes:\n", writers, perWriter)
	fmt.Fprintf(&b, "  batched   %8.0f ops/s  (%d waves)\n", batched, batchedWaves)
	fmt.Fprintf(&b, "  baseline  %8.0f ops/s  (%d waves)\n", baseline, baselineWaves)
	fmt.Fprintf(&b, "  speedup   %.1fx\n\n", rep.Throughput.Speedup)
	fmt.Fprintf(&b, "delta encoding, %d small edits to a %d-byte watched config:\n",
		edits, rep.Bytes.ConfigBytes)
	fmt.Fprintf(&b, "  deltas on   %8d bytes on wire  (p50 %s, p99 %s to proxy)\n",
		deltaBytes, dp50.Round(time.Microsecond), dp99.Round(time.Microsecond))
	fmt.Fprintf(&b, "  deltas off  %8d bytes on wire  (p50 %s, p99 %s to proxy)\n",
		fullBytes, fp50.Round(time.Microsecond), fp99.Round(time.Microsecond))
	fmt.Fprintf(&b, "  ratio       %.3f\n", rep.Bytes.Ratio)
	r.Text = b.String()

	r.metric("throughput_speedup_x", rep.Throughput.Speedup, 0, false)
	r.metric("batched_ops_per_sec", batched, 0, false)
	r.metric("baseline_ops_per_sec", baseline, 0, false)
	r.metric("delta_bytes_ratio", rep.Bytes.Ratio, 0, false)
	r.metric("delta_propagation_p99_ms", rep.Propagation.DeltaP99Ms, 0, false)
	r.metric("full_propagation_p99_ms", rep.Propagation.FullP99Ms, 0, false)

	art, _ := json.MarshalIndent(rep, "", "  ")
	r.ArtifactName = "BENCH_distribution.json"
	r.Artifact = art
	return r
}
