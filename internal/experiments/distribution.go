package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"configerator/internal/cluster"
	"configerator/internal/confclient"
	"configerator/internal/core"
	"configerator/internal/packagevessel"
	"configerator/internal/packagevessel/blob"
	"configerator/internal/simnet"
	"configerator/internal/stats"
	"configerator/internal/vcs"
)

// Fig14PropagationLatency reproduces Figure 14: the latency between
// committing a config change and the new config reaching the production
// servers, sampled around the clock so the load-driven daily pattern
// shows. The paper's ~14.5 s baseline decomposes as ~5 s git commit on a
// large repository + ~5 s git-tailer fetch + ~4.5 s Zeus tree propagation;
// we reproduce the first two with the calibrated cost model and a
// paper-scale synthetic file count, while tree propagation over the
// simulated fleet is sub-second (the paper's 4.5 s is the fanout to
// hundreds of thousands of subscribers; the simulation substitutes a
// smaller fleet — see DESIGN.md).
func Fig14PropagationLatency(opts Options) Result {
	r := Result{ID: "fig14", Title: "Commit-to-fleet propagation latency around the clock"}
	days := 3
	if opts.Quick {
		days = 1
	}
	fleet := cluster.New(cluster.SmallConfig(6, opts.Seed)) // 24 servers
	fleet.Net.RunFor(10 * time.Second)
	p := core.New(core.Options{Fleet: fleet})
	const path = "probe/latency.json"
	repo := p.Repos.Route(path)
	repo.SetSyntheticFileCount(800_000) // ≈5 s commits, like production
	p.Tailers[0].SetProcessingDelay(5 * time.Second)
	cost := p.Cost
	zpath := core.ZeusPath(path)
	fleet.SubscribeAll(zpath)

	// Every server records when it first sees each probe value.
	nServers := len(fleet.AllServers())
	arrived := make(map[int64]int)
	lastArrival := make(map[int64]time.Time)
	for _, s := range fleet.AllServers() {
		s.Client.Watch(context.Background(), zpath, func(cfg *confclient.Value) {
			id := cfg.Int("probe", -1)
			if id >= 0 {
				arrived[id]++
				if arrived[id] == nServers {
					lastArrival[id] = fleet.Net.Now()
				}
			}
		})
	}

	// Diurnal background commit load (other engineers and tools sharing
	// the strip) — this is what bends the curve at peak hours.
	loadAt := func(hour int) int {
		switch {
		case hour >= 10 && hour < 18:
			return 3
		case hour >= 8 && hour < 21:
			return 1
		default:
			return 0
		}
	}

	var series stats.Series
	series.Name = "propagation latency (s)"
	lat := stats.NewCDF()
	var b strings.Builder
	b.WriteString("hour\tlatency(s)\n")
	probe := int64(0)
	for hour := 0; hour < days*24; hour += 2 {
		probe++
		t0 := fleet.Net.Now()
		// The probe commit queues behind the hour's background commits on
		// the shared git repository; the repository head only advances —
		// and the tailer only sees it — once the git work completes.
		queued := loadAt(hour % 24)
		perCommit := cost.CommitCost(repo.FileCount(), repo.CommitCount())
		commitDelay := time.Duration(queued+1) * perCommit
		id := probe
		fleet.Net.After(commitDelay, func() {
			repo.CommitChanges("prober", "probe", fleet.Net.Now(),
				probeChange(path, id))
		})
		// Run until the fleet has it (bounded), then jump to the next
		// sampling point.
		for i := 0; i < 240 && lastArrival[probe].IsZero(); i++ {
			fleet.Net.RunFor(500 * time.Millisecond)
		}
		if lastArrival[probe].IsZero() {
			continue
		}
		l := lastArrival[probe].Sub(t0).Seconds()
		series.Add(float64(hour), l)
		lat.Add(l)
		fmt.Fprintf(&b, "%4d\t%6.2f\n", hour, l)
		fleet.Net.RunFor(2*time.Hour - fleet.Net.Now().Sub(t0))
	}
	b.WriteString(series.Sparkline(48) + "\n")
	r.Text = b.String()
	r.metric("baseline_latency_s", lat.Quantile(0.10), 14.5, true)
	r.metric("median_latency_s", lat.Quantile(0.50), 0, false)
	r.metric("peak_latency_s", lat.Max(), 0, false)
	r.metric("peak_over_baseline", lat.Max()/lat.Quantile(0.10), 40.0/14.5, true)
	return r
}

func probeChange(path string, id int64) vcs.Change {
	return vcs.Change{Path: path, Content: []byte(fmt.Sprintf(`{"probe":%d}`, id))}
}

// PackageVesselDelivery reproduces §3.5's operational claim:
// "PackageVessel consistently and reliably delivers the large configs to
// the live servers in less than four minutes" — here a 256 MB model pushed
// to a 60-server fleet over 1 Gbit/s links via the locality-aware swarm.
func PackageVesselDelivery(opts Options) Result {
	r := Result{ID: "packagevessel", Title: "Large-config delivery time via hybrid subscription-P2P"}
	agents := 60
	sizeMB := 256
	if opts.Quick {
		agents = 24
		sizeMB = 64
	}
	worst, sameClusterFrac, storageShare := runSwarm(opts.Seed, agents, sizeMB, true)
	r.Text = fmt.Sprintf("%d servers, %d MB package: slowest completion %v; %.0f%% of chunks same-cluster; storage served %.1f%% of chunk demand\n",
		agents, sizeMB, worst.Round(time.Millisecond), 100*sameClusterFrac, 100*storageShare)
	r.metric("slowest_server_seconds", worst.Seconds(), 240, true)
	r.metric("same_cluster_chunk_fraction", sameClusterFrac, 0, false)
	r.metric("storage_served_share", storageShare, 0, false)
	return r
}

// AblationP2PvsCentral compares the swarm against every server fetching
// straight from central storage (§3.5's motivation: a naive central fetch
// overloads the storage system).
func AblationP2PvsCentral(opts Options) Result {
	r := Result{ID: "ablation-p2p", Title: "P2P swarm vs central-only fetch for large configs"}
	agents := 40
	sizeMB := 96
	if opts.Quick {
		agents = 20
		sizeMB = 48
	}
	p2p, _, _ := runSwarm(opts.Seed, agents, sizeMB, true)
	central, _, _ := runSwarm(opts.Seed, agents, sizeMB, false)
	r.Text = fmt.Sprintf("%d servers, %d MB package:\n  P2P swarm slowest: %v\n  central-only slowest: %v\n  speedup: %.1fx\n",
		agents, sizeMB, p2p.Round(time.Millisecond), central.Round(time.Millisecond),
		float64(central)/float64(p2p))
	r.metric("p2p_seconds", p2p.Seconds(), 0, false)
	r.metric("central_seconds", central.Seconds(), 0, false)
	r.metric("speedup", float64(central)/float64(p2p), 0, false)
	return r
}

// runSwarm builds a fresh swarm and returns the slowest completion plus
// locality and registry-load statistics.
func runSwarm(seed uint64, agents, sizeMB int, p2p bool) (worst time.Duration, sameClusterFrac, storageShare float64) {
	net := simnet.New(simnet.DefaultLatency(), seed)
	const bps = 1.25e8 // 1 Gbit/s
	registry := packagevessel.NewRegistry(net, "registry", simnet.Placement{Region: "us", Cluster: "store"}, "tracker")
	net.SetBandwidth("registry", bps, bps)
	packagevessel.NewTracker(net, "tracker", simnet.Placement{Region: "us", Cluster: "store"})
	var list []*packagevessel.Agent
	for i := 0; i < agents; i++ {
		cluster := fmt.Sprintf("c%d", i%4)
		region := "us"
		if i%4 >= 2 {
			region = "eu"
		}
		id := simnet.NodeID(fmt.Sprintf("srv-%d", i))
		a := packagevessel.NewAgent(net, id, simnet.Placement{Region: region, Cluster: cluster}, packagevessel.Options{})
		net.SetBandwidth(id, bps, bps)
		list = append(list, a)
	}
	m, err := registry.Publish(packagevessel.SyntheticPackage("model", 1, sizeMB<<20, packagevessel.DefaultChunkSize, seed))
	if err != nil {
		panic(err)
	}
	meta := packagevessel.MetadataFor(m, registry.ID(), registry.Tracker())
	completed := 0
	for _, a := range list {
		a.OnComplete(func(_ blob.Manifest, d time.Duration, _ packagevessel.TransferStats) {
			completed++
			if d > worst {
				worst = d
			}
		})
		if p2p {
			a.OnAnnounce(meta)
		} else {
			a.FetchDirect(m, registry.ID())
		}
	}
	net.RunFor(4 * time.Hour)
	if completed != agents {
		panic(fmt.Sprintf("experiments: swarm incomplete: %d of %d", completed, agents))
	}
	var same, total, fromOrigin uint64
	for _, a := range list {
		same += a.ChunksSameCluster
		total += a.ChunksSameCluster + a.ChunksSameRegion + a.ChunksCrossRegion
		fromOrigin += a.ChunksFromOrigin
	}
	return worst, float64(same) / float64(total), float64(fromOrigin) / float64(total)
}

// AblationPushVsPull quantifies §3.4's push-vs-pull argument with the
// paper's own workload numbers: many servers need tens of thousands of
// configs, so a stateless pull must enumerate the full config list in
// every poll, and most polls return no new data.
func AblationPushVsPull(opts Options) Result {
	r := Result{ID: "ablation-push-pull", Title: "Push (watch) vs pull (poll) distribution cost"}
	const (
		servers          = 100_000 // paper scale
		configsPerServer = 20_000  // "many servers need tens of thousands of configs"
		pathBytes        = 40      // average config path length
		updatesPerHour   = 2_000   // fleet-relevant config updates per hour
		watchersPerPath  = 1_000   // servers subscribed to an average config
		pollSeconds      = 60.0
	)
	// Pull: every poll carries the full config list; almost all polls are
	// empty. Per hour:
	pollsPerHour := float64(servers) * 3600 / pollSeconds
	pullUpstreamBytes := pollsPerHour * configsPerServer * pathBytes
	pullUsefulFraction := float64(updatesPerHour) * watchersPerPath / pollsPerHour / configsPerServer
	pullMeanStaleness := pollSeconds / 2

	// Push: the observer tree forwards each update once per watcher; the
	// subscription list is sent once at startup, not per poll.
	pushMessagesPerHour := float64(updatesPerHour) * watchersPerPath
	pushMeanStaleness := 4.5 // the tree propagation time (§6.3)

	var b strings.Builder
	fmt.Fprintf(&b, "fleet=%d servers, %d configs/server, %d updates/hour\n",
		servers, configsPerServer, updatesPerHour)
	fmt.Fprintf(&b, "  pull(60s): %.2e polls/hour, %.1f TB/hour of config-list overhead, useful-poll ratio %.2e, mean staleness %.0fs\n",
		pollsPerHour, pullUpstreamBytes/1e12, pullUsefulFraction, pullMeanStaleness)
	fmt.Fprintf(&b, "  push:      %.2e update messages/hour, no poll overhead, mean staleness %.1fs\n",
		pushMessagesPerHour, pushMeanStaleness)
	fmt.Fprintf(&b, "  message ratio pull/push: %.0fx\n", pollsPerHour/pushMessagesPerHour)
	r.Text = b.String()
	r.metric("pull_polls_per_hour", pollsPerHour, 0, false)
	r.metric("push_messages_per_hour", pushMessagesPerHour, 0, false)
	r.metric("pull_over_push_messages", pollsPerHour/pushMessagesPerHour, 0, false)
	r.metric("pull_list_overhead_TB_per_hour", pullUpstreamBytes/1e12, 0, false)
	return r
}
