// Package experiments regenerates every table and figure from the paper's
// evaluation (Section 6) plus the design-choice ablations listed in
// DESIGN.md. Each experiment returns a Result holding the rendered
// rows/series (the same shape the paper reports) and the key scalar
// metrics that the benchmark assertions and EXPERIMENTS.md compare against
// the published values.
//
// The root bench harness (bench_test.go) and cmd/benchreport both call
// into this package, so the benchmarks and the written report can never
// drift apart.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one regenerated table or figure.
type Result struct {
	// ID is the paper reference, e.g. "fig7", "table2", "sec6.4".
	ID string
	// Title describes the experiment.
	Title string
	// Text is the rendered rows/series.
	Text string
	// Metrics are the headline numbers (paper value vs measured).
	Metrics map[string]float64
	// PaperValues are the corresponding published numbers, keyed like
	// Metrics, where the paper states one.
	PaperValues map[string]float64
	// ArtifactName and Artifact, when set, are a raw data file the
	// experiment wants written next to the report (e.g. the obs
	// experiment's full registry dump as BENCH_obs.json).
	ArtifactName string
	Artifact     []byte
}

// metric registers a measured value with its paper counterpart (NaN-free;
// use ok=false when the paper gives no number).
func (r *Result) metric(name string, measured float64, paper float64, hasPaper bool) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = measured
	if hasPaper {
		if r.PaperValues == nil {
			r.PaperValues = make(map[string]float64)
		}
		r.PaperValues[name] = paper
	}
}

// Summary renders the paper-vs-measured comparison block.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if paper, ok := r.PaperValues[k]; ok {
			fmt.Fprintf(&b, "  %-44s paper=%-12.4g measured=%.4g\n", k, paper, r.Metrics[k])
		} else {
			fmt.Fprintf(&b, "  %-44s measured=%.4g\n", k, r.Metrics[k])
		}
	}
	return b.String()
}

// Options scales the experiments; defaults are laptop-friendly.
type Options struct {
	Seed uint64
	// Quick shrinks the slow simulations (used by `go test`).
	Quick bool
}

// Experiment pairs an experiment's Result.ID with its constructor
// (TestAllRuns pins the two in sync).
type Experiment struct {
	ID  string
	Run func(Options) Result
}

// Catalog lists every experiment in paper order.
func Catalog() []Experiment {
	return []Experiment{
		{"fig7", Fig7ConfigGrowth},
		{"fig8", Fig8ConfigSizes},
		{"fig9", Fig9Freshness},
		{"fig10", Fig10AgeAtUpdate},
		{"table1", Table1UpdatesPerConfig},
		{"table2", Table2LineChanges},
		{"table3", Table3CoAuthors},
		{"fig11", Fig11DailyCommits},
		{"fig12", Fig12HourlyCommits},
		{"fig13", Fig13CommitThroughput},
		{"fig14", Fig14PropagationLatency},
		{"fig15", Fig15GatekeeperChecks},
		{"sec6.4", Sec64ConfigErrors},
		{"packagevessel", PackageVesselDelivery},
		{"vessel", Vessel},
		{"ablation-push-pull", AblationPushVsPull},
		{"ablation-landing-strip", AblationLandingStrip},
		{"ablation-multirepo", AblationMultiRepo},
		{"ablation-p2p", AblationP2PvsCentral},
		{"ablation-gk-optimizer", AblationGatekeeperOptimizer},
		{"ablation-mobile-delta", AblationMobileDelta},
		{"ext-riskadvisor", ExtensionRiskAdvisor},
		{"engine", CompileEngine},
		{"configlint", Lint},
		{"obs", Obs},
		{"distribution", Distribution},
		{"availability", Availability},
		{"readpath", ReadPath},
		{"dataflow", Dataflow},
		{"monitor", Monitor},
		{"scale", Scale},
	}
}

// All runs every experiment in paper order.
func All(opts Options) []Result {
	entries := Catalog()
	out := make([]Result, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.Run(opts))
	}
	return out
}

// Run executes only the experiments whose IDs are listed, in catalog
// order; an empty list means all. Unknown IDs are an error.
func Run(opts Options, ids []string) ([]Result, error) {
	if len(ids) == 0 {
		return All(opts), nil
	}
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	var out []Result
	for _, e := range Catalog() {
		if want[e.ID] {
			out = append(out, e.Run(opts))
			delete(want, e.ID)
		}
	}
	for id := range want {
		return nil, fmt.Errorf("experiments: unknown id %q", id)
	}
	return out, nil
}
