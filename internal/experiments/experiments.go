// Package experiments regenerates every table and figure from the paper's
// evaluation (Section 6) plus the design-choice ablations listed in
// DESIGN.md. Each experiment returns a Result holding the rendered
// rows/series (the same shape the paper reports) and the key scalar
// metrics that the benchmark assertions and EXPERIMENTS.md compare against
// the published values.
//
// The root bench harness (bench_test.go) and cmd/benchreport both call
// into this package, so the benchmarks and the written report can never
// drift apart.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one regenerated table or figure.
type Result struct {
	// ID is the paper reference, e.g. "fig7", "table2", "sec6.4".
	ID string
	// Title describes the experiment.
	Title string
	// Text is the rendered rows/series.
	Text string
	// Metrics are the headline numbers (paper value vs measured).
	Metrics map[string]float64
	// PaperValues are the corresponding published numbers, keyed like
	// Metrics, where the paper states one.
	PaperValues map[string]float64
}

// metric registers a measured value with its paper counterpart (NaN-free;
// use ok=false when the paper gives no number).
func (r *Result) metric(name string, measured float64, paper float64, hasPaper bool) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = measured
	if hasPaper {
		if r.PaperValues == nil {
			r.PaperValues = make(map[string]float64)
		}
		r.PaperValues[name] = paper
	}
}

// Summary renders the paper-vs-measured comparison block.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if paper, ok := r.PaperValues[k]; ok {
			fmt.Fprintf(&b, "  %-44s paper=%-12.4g measured=%.4g\n", k, paper, r.Metrics[k])
		} else {
			fmt.Fprintf(&b, "  %-44s measured=%.4g\n", k, r.Metrics[k])
		}
	}
	return b.String()
}

// Options scales the experiments; defaults are laptop-friendly.
type Options struct {
	Seed uint64
	// Quick shrinks the slow simulations (used by `go test`).
	Quick bool
}

// All runs every experiment in paper order.
func All(opts Options) []Result {
	return []Result{
		Fig7ConfigGrowth(opts),
		Fig8ConfigSizes(opts),
		Fig9Freshness(opts),
		Fig10AgeAtUpdate(opts),
		Table1UpdatesPerConfig(opts),
		Table2LineChanges(opts),
		Table3CoAuthors(opts),
		Fig11DailyCommits(opts),
		Fig12HourlyCommits(opts),
		Fig13CommitThroughput(opts),
		Fig14PropagationLatency(opts),
		Fig15GatekeeperChecks(opts),
		Sec64ConfigErrors(opts),
		PackageVesselDelivery(opts),
		AblationPushVsPull(opts),
		AblationLandingStrip(opts),
		AblationMultiRepo(opts),
		AblationP2PvsCentral(opts),
		AblationGatekeeperOptimizer(opts),
		AblationMobileDelta(opts),
		ExtensionRiskAdvisor(opts),
		CompileEngine(opts),
		Lint(opts),
	}
}
