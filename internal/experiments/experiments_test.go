package experiments

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

var opts = Options{Seed: 42, Quick: true}

func relClose(t *testing.T, r Result, key string, relTol float64) {
	t.Helper()
	paper, ok := r.PaperValues[key]
	if !ok {
		t.Fatalf("%s: no paper value for %s", r.ID, key)
	}
	got := r.Metrics[key]
	if paper == 0 {
		t.Fatalf("%s: paper value for %s is zero", r.ID, key)
	}
	if math.Abs(got-paper)/math.Abs(paper) > relTol {
		t.Errorf("%s: %s = %.4g, paper %.4g (tol %.0f%%)", r.ID, key, got, paper, 100*relTol)
	}
}

func TestFig7(t *testing.T) {
	r := Fig7ConfigGrowth(opts)
	relClose(t, r, "compiled_share_at_end", 0.10)
	if r.Metrics["growth_second_half_vs_first"] <= 1.0 {
		t.Errorf("growth not convex: %v", r.Metrics["growth_second_half_vs_first"])
	}
	if !strings.Contains(r.Text, "compiled") {
		t.Error("missing series")
	}
}

func TestFig8(t *testing.T) {
	r := Fig8ConfigSizes(opts)
	relClose(t, r, "raw_p50_bytes", 0.30)
	relClose(t, r, "compiled_p50_bytes", 0.30)
	relClose(t, r, "raw_p95_bytes", 0.35)
	relClose(t, r, "compiled_p95_bytes", 0.35)
}

func TestFig9Fig10(t *testing.T) {
	f9 := Fig9Freshness(opts)
	if f9.Metrics["touched_within_90d"] < 0.1 || f9.Metrics["untouched_for_300d"] < 0.1 {
		t.Errorf("freshness extremes lack mass: %+v", f9.Metrics)
	}
	f10 := Fig10AgeAtUpdate(opts)
	if f10.Metrics["updates_on_configs_younger_60d"] < 0.1 ||
		f10.Metrics["updates_on_configs_older_300d"] < 0.05 {
		t.Errorf("age-at-update extremes lack mass: %+v", f10.Metrics)
	}
}

func TestTable1(t *testing.T) {
	r := Table1UpdatesPerConfig(opts)
	relClose(t, r, "compiled_written_once", 0.20)
	relClose(t, r, "raw_written_once", 0.12)
	relClose(t, r, "raw_automated_update_fraction", 0.05)
	if r.Metrics["raw_top1pct_update_share"] <= r.Metrics["compiled_top1pct_update_share"] {
		t.Error("raw updates must be more skewed than compiled")
	}
}

func TestTable2(t *testing.T) {
	r := Table2LineChanges(opts)
	relClose(t, r, "compiled_two_line_updates", 0.10)
	relClose(t, r, "raw_two_line_updates", 0.10)
}

func TestTable3(t *testing.T) {
	r := Table3CoAuthors(opts)
	relClose(t, r, "compiled_single_author", 0.15)
	relClose(t, r, "raw_single_author", 0.15)
}

func TestFig11(t *testing.T) {
	r := Fig11DailyCommits(opts)
	relClose(t, r, "configerator_weekend_ratio", 0.35)
	if r.Metrics["configerator_weekend_ratio"] <= r.Metrics["www_weekend_ratio"] {
		t.Error("configerator weekends must outpace www")
	}
}

func TestFig12(t *testing.T) {
	r := Fig12HourlyCommits(opts)
	if r.Metrics["peak_to_trough_ratio"] < 3 {
		t.Errorf("no diurnal pattern: %v", r.Metrics["peak_to_trough_ratio"])
	}
	if r.Metrics["night_floor_commits_per_hour"] <= 0 {
		t.Error("automation floor missing")
	}
}

func TestFig13(t *testing.T) {
	r := Fig13CommitThroughput(opts)
	relClose(t, r, "throughput_small_repo_per_min", 0.20)
	relClose(t, r, "throughput_1M_files_per_min", 0.30)
	if r.Metrics["slowdown_factor"] < 10 {
		t.Errorf("slowdown = %v, want >> 1", r.Metrics["slowdown_factor"])
	}
}

func TestFig14(t *testing.T) {
	r := Fig14PropagationLatency(opts)
	base := r.Metrics["baseline_latency_s"]
	// Paper baseline 14.5 s; ours lacks the planetary-fanout 4.5 s term.
	if base < 7 || base > 18 {
		t.Errorf("baseline = %vs, want ~10-14.5", base)
	}
	if r.Metrics["peak_over_baseline"] < 1.5 {
		t.Errorf("load pattern missing: peak/base = %v", r.Metrics["peak_over_baseline"])
	}
}

func TestFig15(t *testing.T) {
	r := Fig15GatekeeperChecks(opts)
	if r.Metrics["single_core_checks_per_sec"] < 100_000 {
		t.Errorf("check rate implausibly low: %v", r.Metrics["single_core_checks_per_sec"])
	}
	peak := r.Metrics["sitewide_peak_billion_per_sec"]
	if peak < 0.5 || peak > 10 {
		t.Errorf("site-wide peak = %v billion/s, want 'billions'", peak)
	}
}

func TestSec64(t *testing.T) {
	r := Sec64ConfigErrors(opts)
	for _, k := range []string{"escape_share_type1", "escape_share_type2", "escape_share_type3"} {
		paper := r.PaperValues[k]
		got := r.Metrics[k]
		if math.Abs(got-paper) > 0.22 {
			t.Errorf("%s = %.2f, paper %.2f", k, got, paper)
		}
	}
	if r.Metrics["validator_catches"] == 0 || r.Metrics["canary_phase2_catches"] == 0 {
		t.Errorf("defense layers idle: %+v", r.Metrics)
	}
}

func TestPackageVessel(t *testing.T) {
	r := PackageVesselDelivery(opts)
	if r.Metrics["slowest_server_seconds"] >= 240 {
		t.Errorf("delivery took %vs, paper claims < 4 min", r.Metrics["slowest_server_seconds"])
	}
	if r.Metrics["same_cluster_chunk_fraction"] < 0.5 {
		t.Errorf("locality fraction = %v", r.Metrics["same_cluster_chunk_fraction"])
	}
}

func TestAblations(t *testing.T) {
	if s := AblationPushVsPull(opts).Metrics["pull_over_push_messages"]; s < 2 {
		t.Errorf("push should need fewer messages: ratio %v", s)
	}
	if s := AblationLandingStrip(opts).Metrics["speedup"]; s < 2 {
		t.Errorf("landing strip speedup = %v", s)
	}
	if s := AblationMultiRepo(opts).Metrics["speedup"]; s < 2 {
		t.Errorf("multi-repo speedup = %v", s)
	}
	if s := AblationP2PvsCentral(opts).Metrics["speedup"]; s < 1.3 {
		t.Errorf("p2p speedup = %v", s)
	}
	if s := AblationGatekeeperOptimizer(opts).Metrics["saving_factor"]; s < 3 {
		t.Errorf("optimizer saving = %v", s)
	}
	if s := AblationMobileDelta(opts).Metrics["bandwidth_saving"]; s < 5 {
		t.Errorf("mobile delta saving = %v", s)
	}
}

func TestExtensionRiskAdvisor(t *testing.T) {
	r := ExtensionRiskAdvisor(opts)
	frac := r.Metrics["flagged_update_fraction"]
	if frac <= 0.005 || frac >= 1.0 {
		t.Errorf("flagged fraction = %.3f", frac)
	}
	if r.Metrics["dormant_flags_per_1000"] <= 0 {
		t.Error("dormant-change signal never fired on a history where 35%% of configs go 300d untouched")
	}
	// The advisor's dormancy signal must agree with the independent
	// analytic count over the same history.
	if ratio := r.Metrics["dormant_vs_analytic_ratio"]; ratio < 0.99 || ratio > 1.01 {
		t.Errorf("dormant_vs_analytic_ratio = %.3f, want 1.0", ratio)
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	results := All(opts)
	if len(results) != 31 {
		t.Fatalf("All returned %d results", len(results))
	}
	// The catalog keys must match what each experiment actually reports,
	// or `benchreport -only` silently diverges from the result IDs.
	for i, e := range Catalog() {
		if results[i].ID != e.ID {
			t.Errorf("catalog[%d] = %q but result ID = %q", i, e.ID, results[i].ID)
		}
	}
	seen := make(map[string]bool)
	for _, r := range results {
		if r.ID == "" || r.Text == "" || len(r.Metrics) == 0 {
			t.Errorf("incomplete result: %+v", r.ID)
		}
		if seen[r.ID] {
			t.Errorf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
		if !strings.Contains(r.Summary(), r.ID) {
			t.Errorf("summary missing id")
		}
	}
}

func TestDistributionArtifact(t *testing.T) {
	r := Distribution(opts)
	if r.ArtifactName != "BENCH_distribution.json" {
		t.Fatalf("artifact name = %q", r.ArtifactName)
	}
	var rep DistributionReport
	if err := json.Unmarshal(r.Artifact, &rep); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	// ISSUE acceptance: group commit must buy >= 3x commit throughput
	// under 32 concurrent writers vs one-proposal-per-write.
	if rep.Throughput.Writers != 32 {
		t.Errorf("writers = %d, want 32", rep.Throughput.Writers)
	}
	if rep.Throughput.Speedup < 3 {
		t.Errorf("group-commit speedup = %.2fx, want >= 3x", rep.Throughput.Speedup)
	}
	if rep.Throughput.BatchedWaves <= 0 || rep.Throughput.BaselineWaves <= 0 ||
		rep.Throughput.BatchedWaves >= rep.Throughput.BaselineWaves {
		t.Errorf("waves batched=%d baseline=%d: batching must use fewer proposal waves",
			rep.Throughput.BatchedWaves, rep.Throughput.BaselineWaves)
	}
	// ISSUE acceptance: small-edit pushes with deltas on must ship <= 25%
	// of the full-snapshot bytes.
	if rep.Bytes.DeltaBytes == 0 || rep.Bytes.FullBytes == 0 {
		t.Fatalf("byte counters empty: %+v", rep.Bytes)
	}
	if rep.Bytes.Ratio > 0.25 {
		t.Errorf("delta/full bytes ratio = %.3f, want <= 0.25", rep.Bytes.Ratio)
	}
	if rep.Bytes.DeltaPushes < int64(rep.Bytes.Edits) {
		t.Errorf("delta pushes = %d, want >= %d", rep.Bytes.DeltaPushes, rep.Bytes.Edits)
	}
	// Propagation must not regress: deltas ship less, so commit->proxy p99
	// stays at or below the full-snapshot run (small slack for jitter).
	if rep.Propagation.DeltaP99Ms > rep.Propagation.FullP99Ms*1.2 {
		t.Errorf("delta p99 = %.3fms vs full p99 = %.3fms: propagation regressed",
			rep.Propagation.DeltaP99Ms, rep.Propagation.FullP99Ms)
	}
	if rep.Propagation.DeltaP50Ms <= 0 || rep.Propagation.FullP50Ms <= 0 {
		t.Errorf("propagation histogram empty: %+v", rep.Propagation)
	}
}

func TestVesselArtifact(t *testing.T) {
	r := Vessel(opts)
	if r.ArtifactName != "BENCH_vessel.json" {
		t.Fatalf("artifact name = %q", r.ArtifactName)
	}
	var rep VesselReport
	if err := json.Unmarshal(r.Artifact, &rep); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	// ISSUE acceptance (a): fleet delivery within the §5 four-minute claim.
	if !rep.Fleet.Under4Min || rep.Fleet.MaxSeconds <= 0 || rep.Fleet.MaxSeconds >= 240 {
		t.Errorf("fleet delivery max = %.1fs, want (0, 240)", rep.Fleet.MaxSeconds)
	}
	if rep.Fleet.SameCluster < 0.5 {
		t.Errorf("same-cluster chunk fraction = %.2f, want >= 0.5", rep.Fleet.SameCluster)
	}
	// ISSUE acceptance (b): the v2 delta moves <25% of full-package bytes.
	if !rep.Delta.Under25Pct || rep.Delta.WireFrac <= 0 || rep.Delta.WireFrac >= 0.25 {
		t.Errorf("delta wire fraction = %.3f, want (0, 0.25)", rep.Delta.WireFrac)
	}
	if rep.Delta.PublishedNew >= rep.Delta.PublishedDedup {
		t.Errorf("publish stats new=%d dedup=%d: most chunks must dedup",
			rep.Delta.PublishedNew, rep.Delta.PublishedDedup)
	}
	// ISSUE acceptance (c): the restarted agent re-fetches only what the
	// journal could not verify.
	if !rep.Resume.Completed || !rep.Resume.NoRefetch {
		t.Errorf("resume: completed=%v noRefetch=%v", rep.Resume.Completed, rep.Resume.NoRefetch)
	}
	if rep.Resume.VerifiedOnDisk <= 0 ||
		rep.Resume.RefetchedAfter != rep.Resume.ChunksTotal-rep.Resume.VerifiedOnDisk {
		t.Errorf("resume accounting: %+v", rep.Resume)
	}
	// Same seed, same bits.
	if !rep.Determinism.Identical {
		t.Errorf("determinism fingerprints diverge: %v", rep.Determinism.Fingerprints)
	}
}

func TestAvailabilityArtifact(t *testing.T) {
	r := Availability(opts)
	if r.ArtifactName != "BENCH_availability.json" {
		t.Fatalf("artifact name = %q", r.ArtifactName)
	}
	var rep AvailabilityReport
	if err := json.Unmarshal(r.Artifact, &rep); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	// ISSUE acceptance: with stale-serve on, every read during the outage
	// succeeds (served from cache/disk with staleness metadata); with it
	// off, availability is measurably lower.
	if on := rep.StaleServeOn.Availability; on != 1.0 {
		t.Errorf("stale-serve-on availability = %.4f, want 1.0", on)
	}
	if off := rep.StaleServeOff.Availability; off >= rep.StaleServeOn.Availability {
		t.Errorf("stale-serve-off availability = %.4f, want < on (%.4f)",
			off, rep.StaleServeOn.Availability)
	}
	if rep.StaleServeOff.RefusedReads == 0 {
		t.Error("stale-serve-off run refused no reads — the contrast proves nothing")
	}
	// The degraded path actually exercised: stale reads served during the
	// outage, and staleness quantiles measured.
	if rep.StaleServeOn.StaleReads == 0 {
		t.Error("no stale reads served during the outage")
	}
	if rep.StaleServeOn.StalenessP99Ms <= 0 {
		t.Errorf("staleness p99 = %.1fms, want > 0", rep.StaleServeOn.StalenessP99Ms)
	}
	if rep.StaleServeOn.StalenessP99Ms < rep.StaleServeOn.StalenessP50Ms {
		t.Errorf("staleness p99 (%.1f) < p50 (%.1f)",
			rep.StaleServeOn.StalenessP99Ms, rep.StaleServeOn.StalenessP50Ms)
	}
	// Convergence after the final heal must be measured and bounded.
	if c := rep.Convergence.AfterHealMs; c < 0 || c > 30_000 {
		t.Errorf("convergence after heal = %.0fms, want within (0, 30s]", c)
	}
	// ISSUE acceptance: every scripted fault fired and was mirrored into
	// the obs counters.
	if rep.Faults.Fired != rep.Faults.Scripted {
		t.Errorf("faults fired = %d, scripted = %d", rep.Faults.Fired, rep.Faults.Scripted)
	}
	if got := rep.Faults.Counters["fault.injected"]; got != int64(rep.Faults.Scripted) {
		t.Errorf("fault.injected counter = %d, want %d", got, rep.Faults.Scripted)
	}
	for _, k := range []string{"fault.crash", "fault.restart", "fault.partition_group",
		"fault.heal_group", "fault.call"} {
		if rep.Faults.Counters[k] == 0 {
			t.Errorf("counter %s = 0, want > 0", k)
		}
	}

	// ISSUE acceptance: the fleet-health plane saw the outage. Both SLOs
	// fired, every scripted outage window was covered by an active alert,
	// and every alert cleared within two sweeps of the fleet reconverging
	// after the last heal.
	mon := rep.Monitor
	if mon.Sweeps == 0 {
		t.Fatal("monitor never swept")
	}
	slos := map[string]bool{}
	for _, a := range mon.Alerts {
		slos[a.SLO] = true
		if a.FiredOffMs < 5_000 {
			t.Errorf("alert %s fired at %.0fms, before the first fault", a.SLO, a.FiredOffMs)
		}
	}
	if !slos["fleet-convergence"] || !slos["staleness-under-degraded"] {
		t.Errorf("SLO alerts fired = %v, want both fleet-convergence and staleness-under-degraded", slos)
	}
	if len(mon.Windows) == 0 {
		t.Fatal("no outage windows derived from the fault plan")
	}
	if !mon.AllWindowsCovered {
		t.Errorf("outage windows not all covered by alerts: %+v", mon.Windows)
	}
	if !mon.AllAlertsCleared {
		t.Errorf("alerts still active after heal: %+v", mon.Alerts)
	}
	if mon.ClearedWithinSweeps > 2 {
		t.Errorf("alerts cleared %.1f sweeps after reconvergence, want <= 2", mon.ClearedWithinSweeps)
	}
	// Continuous propagation measurement (the §6.3 curve, monitored):
	// healthy-path p50 stays in the push-propagation regime.
	if mon.TimeToHeadP50Ms <= 0 || mon.TimeToHeadP50Ms > 5_000 {
		t.Errorf("monitored time-to-head p50 = %.1fms", mon.TimeToHeadP50Ms)
	}
	if mon.TimeToHeadP99Ms < mon.TimeToHeadP50Ms {
		t.Errorf("time-to-head p99 (%.1f) < p50 (%.1f)", mon.TimeToHeadP99Ms, mon.TimeToHeadP50Ms)
	}
}

func TestReadpathArtifact(t *testing.T) {
	r := ReadPath(opts)
	if r.ArtifactName != "BENCH_readpath.json" {
		t.Fatalf("artifact name = %q", r.ArtifactName)
	}
	var rep ReadpathReport
	if err := json.Unmarshal(r.Artifact, &rep); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if rep.Workload.Paths <= 0 || rep.Workload.PayloadBytes <= 0 || rep.Workload.WindowMs <= 0 {
		t.Fatalf("workload header empty: %+v", rep.Workload)
	}
	// ISSUE acceptance: the warm read hot path allocates nothing, at both
	// layers (proxy.Read and confclient.Get).
	if rep.AllocsPerRead != 0 {
		t.Errorf("allocs per warm proxy.Read = %v, want 0", rep.AllocsPerRead)
	}
	if rep.AllocsPerGet != 0 {
		t.Errorf("allocs per warm client Get = %v, want 0", rep.AllocsPerGet)
	}
	// ISSUE acceptance: >= 5x reads/sec over the lock+decode-per-read
	// baseline at 32 concurrent readers, with sane latency quantiles.
	if len(rep.Levels) == 0 {
		t.Fatal("no concurrency levels measured")
	}
	top := rep.Levels[len(rep.Levels)-1]
	if top.Readers != 32 {
		t.Errorf("top level readers = %d, want 32", top.Readers)
	}
	if top.Speedup < 5 {
		t.Errorf("speedup at 32 readers = %.2fx, want >= 5x", top.Speedup)
	}
	for _, lv := range rep.Levels {
		if lv.ReadsPerSec <= 0 || lv.BaselineReadsPerSec <= 0 {
			t.Errorf("level %d: empty throughput %+v", lv.Readers, lv)
		}
		if lv.ReadP50Ns <= 0 || lv.ReadP99Ns < lv.ReadP50Ns {
			t.Errorf("level %d: bad latency quantiles p50=%v p99=%v",
				lv.Readers, lv.ReadP50Ns, lv.ReadP99Ns)
		}
	}
	// Freshness must be measured over live churn versions and stay in the
	// same band the distribution plane delivers (sub-5s commit-to-read),
	// i.e. the fast read path does not trade freshness for throughput.
	if rep.Freshness.Samples == 0 {
		t.Fatal("no commit-to-read freshness samples")
	}
	if p99 := rep.Freshness.CommitToReadP99Ms; p99 <= 0 || p99 > 5000 {
		t.Errorf("commit-to-read p99 = %.1fms, want within (0, 5000]", p99)
	}
	if rep.Freshness.CommitToReadP99Ms < rep.Freshness.CommitToReadP50Ms {
		t.Errorf("freshness p99 (%.1f) < p50 (%.1f)",
			rep.Freshness.CommitToReadP99Ms, rep.Freshness.CommitToReadP50Ms)
	}
	// Decode economy: the memoized cache turns millions of reads into a
	// handful of unmarshals (at most one per delivered version).
	if rep.Decode.Reads == 0 || rep.Decode.Decodes == 0 {
		t.Fatalf("decode accounting empty: %+v", rep.Decode)
	}
	if ratio := float64(rep.Decode.Decodes) / float64(rep.Decode.Reads); ratio > 0.001 {
		t.Errorf("decode/read ratio = %.6f, want <= 0.001 (memoization broken)", ratio)
	}
	if rep.Decode.MemoHits == 0 {
		t.Error("memo hits = 0: warm reads are not being served from the per-version slot")
	}
}

func TestCompileEngine(t *testing.T) {
	r := CompileEngine(opts)
	n := r.Metrics["dependents"]
	// Exact counter invariants (Workers=1 makes them deterministic):
	// cold parses each source once, the warm batch is all result-cache
	// hits with zero parses/builds, and a touched .cinc re-parses only
	// itself.
	if got := r.Metrics["cold_parse_miss"]; got != n+1 {
		t.Errorf("cold_parse_miss = %v, want %v", got, n+1)
	}
	if got := r.Metrics["warm_parse_miss_delta"]; got != 0 {
		t.Errorf("warm_parse_miss_delta = %v, want 0", got)
	}
	if got := r.Metrics["warm_result_hit_delta"]; got != n {
		t.Errorf("warm_result_hit_delta = %v, want %v", got, n)
	}
	if got := r.Metrics["warm_module_build_delta"]; got != 0 {
		t.Errorf("warm_module_build_delta = %v, want 0", got)
	}
	if got := r.Metrics["touched_parse_miss_delta"]; got != 1 {
		t.Errorf("touched_parse_miss_delta = %v, want 1", got)
	}
	// ISSUE acceptance: warm recompile of the fan-out must be at least
	// 5x faster than the seed serial path. Measured ~40x; assert the
	// contract with margin for noisy CI machines.
	if got := r.Metrics["warm_speedup_vs_seed"]; got < 5 {
		t.Errorf("warm_speedup_vs_seed = %v, want >= 5", got)
	}
	if !strings.Contains(r.Text, "result.hit") {
		t.Error("counter table missing from Text")
	}
}

func TestLint(t *testing.T) {
	r := Lint(opts)
	roots := r.Metrics["roots"]
	// The corpus has three library files beyond the roots (shared.cinc,
	// consts.cinc, old_flag.cinc); a cold lint parses each distinct
	// source exactly once despite the fan-out on shared.cinc.
	if got := r.Metrics["cold_parse_miss"]; got != roots+3 {
		t.Errorf("cold_parse_miss = %v, want %v", got, roots+3)
	}
	// A warm lint is pure parse-cache hits, and compiling afterwards
	// with the same engine re-parses nothing the lint already read.
	if got := r.Metrics["warm_parse_miss_delta"]; got != 0 {
		t.Errorf("warm_parse_miss_delta = %v, want 0", got)
	}
	if got := r.Metrics["compile_parse_miss_delta"]; got != 0 {
		t.Errorf("compile_parse_miss_delta = %v, want 0", got)
	}
	// The seeded dirty configs must yield the expected findings.
	if got := r.Metrics["diag_errors"]; got != 1 {
		t.Errorf("diag_errors = %v, want 1 (dead-branch undefined reference)", got)
	}
	if got := r.Metrics["diag_warnings"]; got < 2 {
		t.Errorf("diag_warnings = %v, want >= 2 (unused import + deprecated sitevar)", got)
	}
	if !strings.Contains(r.Text, "diagnostics by analyzer") {
		t.Error("analyzer breakdown missing from Text")
	}
}

func TestDataflowArtifact(t *testing.T) {
	r := Dataflow(opts)
	if r.ArtifactName != "BENCH_dataflow.json" {
		t.Fatalf("artifact name = %q", r.ArtifactName)
	}
	var rep DataflowReport
	if err := json.Unmarshal(r.Artifact, &rep); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if rep.Workload.Artifacts <= 0 || rep.Workload.Libs <= 0 ||
		rep.Workload.Sitevars <= 0 || rep.Workload.Files <= 0 {
		t.Fatalf("workload header empty: %+v", rep.Workload)
	}
	// ISSUE acceptance: warm whole-repo provenance is >= 5x faster than
	// cold, and the warm run rebuilds nothing.
	if rep.Provenance.WarmSpeedup < 5 {
		t.Errorf("warm speedup = %.2fx, want >= 5x (cold %.2fms, warm %.3fms)",
			rep.Provenance.WarmSpeedup, rep.Provenance.ColdMs, rep.Provenance.WarmMs)
	}
	if rep.Provenance.ColdRecompute != rep.Workload.Files {
		t.Errorf("cold recompute = %d, want every file (%d)",
			rep.Provenance.ColdRecompute, rep.Workload.Files)
	}
	// A one-sitevar edit recomputes its cone only, never the whole tree.
	if rep.Provenance.EditRecompute <= 0 ||
		rep.Provenance.EditRecompute >= rep.Workload.Files {
		t.Errorf("edit recompute = %d, want in (0, %d)",
			rep.Provenance.EditRecompute, rep.Workload.Files)
	}
	if rep.Provenance.EditMemoHits <= 0 {
		t.Errorf("edit memo hits = %d, want > 0 (untouched closures reused)",
			rep.Provenance.EditMemoHits)
	}
	// Radius queries answer with sane quantiles and a non-trivial reach.
	if rep.Radius.Queries <= 0 || rep.Radius.MaxArtifacts <= 0 {
		t.Fatalf("radius accounting empty: %+v", rep.Radius)
	}
	if rep.Radius.P50Us <= 0 || rep.Radius.P99Us < rep.Radius.P50Us {
		t.Errorf("bad radius quantiles p50=%v p99=%v", rep.Radius.P50Us, rep.Radius.P99Us)
	}
}

func TestMonitorArtifact(t *testing.T) {
	r := Monitor(opts)
	if r.ArtifactName != "BENCH_monitor.json" {
		t.Fatalf("artifact name = %q", r.ArtifactName)
	}
	var rep MonitorReport
	if err := json.Unmarshal(r.Artifact, &rep); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	// ISSUE acceptance: monitoring overhead within 5% of the unmonitored
	// read path (heartbeats and sweeps ride the sim loop, not reads).
	if rep.Overhead.BaselineReadsPerSec <= 0 || rep.Overhead.MonitoredReadsPerSec <= 0 {
		t.Fatalf("storm measured nothing: %+v", rep.Overhead)
	}
	if rep.Overhead.OverheadPct > 5 {
		t.Errorf("monitoring overhead = %.1f%%, want <= 5%%", rep.Overhead.OverheadPct)
	}
	// The monitoring plane was actually live during the storm.
	if rep.Overhead.Heartbeats == 0 || rep.Overhead.Sweeps == 0 {
		t.Errorf("monitoring idle during storm: %+v", rep.Overhead)
	}
	// ISSUE acceptance: the PR-6 zero-alloc gates survive monitoring.
	if rep.Allocs.PerProxyRead != 0 || rep.Allocs.PerClientGet != 0 {
		t.Errorf("warm-read allocs with monitoring on = %+v, want 0", rep.Allocs)
	}
	// Continuous convergence measurement: one time-to-head sample per
	// (proxy, version), quantiles in the push-propagation regime.
	if want := int64(rep.Convergence.Proxies * (rep.Convergence.Writes + 1)); rep.Convergence.Samples != want {
		t.Errorf("time-to-head samples = %d, want %d", rep.Convergence.Samples, want)
	}
	if rep.Convergence.TimeToHeadP50Ms <= 0 || rep.Convergence.TimeToHeadP50Ms > 2_000 {
		t.Errorf("time-to-head p50 = %.1fms", rep.Convergence.TimeToHeadP50Ms)
	}
	if rep.Convergence.TimeToHeadP99Ms < rep.Convergence.TimeToHeadP50Ms {
		t.Errorf("p99 (%.1f) < p50 (%.1f)",
			rep.Convergence.TimeToHeadP99Ms, rep.Convergence.TimeToHeadP50Ms)
	}
	// The injected outage produced exactly one fire/clear cycle with
	// bounded latency.
	if rep.Alerts.Fired != 1 || rep.Alerts.Cleared != 1 {
		t.Errorf("alert cycle = %+v, want fired=1 cleared=1", rep.Alerts)
	}
	if rep.Alerts.FireLatencyMs <= 0 || rep.Alerts.FireLatencyMs > 15_000 {
		t.Errorf("fire latency = %.0fms", rep.Alerts.FireLatencyMs)
	}
	if rep.Alerts.ClearLatencyMs <= 0 || rep.Alerts.ClearLatencyMs > 15_000 {
		t.Errorf("clear latency = %.0fms", rep.Alerts.ClearLatencyMs)
	}
}

func TestScaleArtifact(t *testing.T) {
	r := Scale(opts)
	if r.ArtifactName != "BENCH_scale.json" {
		t.Fatalf("artifact name = %q", r.ArtifactName)
	}
	var rep ScaleReport
	if err := json.Unmarshal(r.Artifact, &rep); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	// ISSUE acceptance: the warm simnet hot paths allocate nothing.
	if rep.AllocsPerSend != 0 {
		t.Errorf("allocs per warm Send = %.2f, want 0", rep.AllocsPerSend)
	}
	if rep.AllocsPerTimer != 0 {
		t.Errorf("allocs per warm SetTimer = %.2f, want 0", rep.AllocsPerTimer)
	}
	// ISSUE acceptance: same seed, same fleet → identical delivery totals.
	if !rep.Push.Run.Deterministic {
		t.Error("push scenario not deterministic across same-seed runs")
	}
	if !rep.Mobile.Run.Deterministic {
		t.Error("mobile scenario not deterministic across same-seed runs")
	}

	// §6.3 push: the whole fleet converges, with the S-curve topping out in
	// the paper's regime (~4.5 s; the calibrated spreads cap at ~4.3 s plus
	// jitter, and the 25 ms sweep quantizes upward).
	if rep.Push.ConvergedFrac != 1.0 {
		t.Errorf("push converged frac = %.4f, want 1.0", rep.Push.ConvergedFrac)
	}
	if rep.Push.P99Seconds <= 1 || rep.Push.P99Seconds > 6 {
		t.Errorf("push p99 = %.2fs, want in (1s, 6s]", rep.Push.P99Seconds)
	}
	if rep.Push.P50Seconds <= 0 || rep.Push.P50Seconds > rep.Push.P99Seconds {
		t.Errorf("push p50 = %.2fs vs p99 = %.2fs", rep.Push.P50Seconds, rep.Push.P99Seconds)
	}
	if rep.Push.Run.Dropped != 0 {
		t.Errorf("push dropped %d messages on a healthy fleet", rep.Push.Run.Dropped)
	}

	// §5 mobile hybrid: the push wave reaches ~90% within a minute and the
	// regular poll heals every straggler within one interval.
	if rep.Mobile.PushReachFrac < 0.85 || rep.Mobile.PushReachFrac > 0.95 {
		t.Errorf("push reach frac = %.3f, want ~0.9", rep.Mobile.PushReachFrac)
	}
	if rep.Mobile.ReachedIn60sFrac < rep.Mobile.PushReachFrac-0.02 {
		t.Errorf("reached in 60s = %.3f < push reach %.3f: pushed devices did not re-pull promptly",
			rep.Mobile.ReachedIn60sFrac, rep.Mobile.PushReachFrac)
	}
	if !rep.Mobile.CaughtUpByPoll {
		t.Error("stragglers did not catch up within a poll interval")
	}
	if rep.Mobile.CatchupP99Sec <= 0 || rep.Mobile.CatchupP99Sec > rep.Mobile.PollIntervalMin*60 {
		t.Errorf("catch-up p99 = %.0fs, want within one %.0f-minute poll interval",
			rep.Mobile.CatchupP99Sec, rep.Mobile.PollIntervalMin)
	}
	if rep.Mobile.NotModifiedFrac <= 0 {
		t.Error("no poll ever hit the not-modified path")
	}

	// Throughput/alloc smoke gates (quick sizes; generous floors so slow CI
	// machines pass while a core regression — heap scheduler, per-event
	// allocation — still trips them).
	for name, run := range map[string]ScaleRun{"push": rep.Push.Run, "mobile": rep.Mobile.Run} {
		if run.Events == 0 {
			t.Fatalf("%s scenario processed no events", name)
		}
		if run.EventsPerSec < 50_000 {
			t.Errorf("%s events/sec = %.0f, want >= 50k", name, run.EventsPerSec)
		}
		if run.AllocsPerEvent > 32 {
			t.Errorf("%s allocs/event = %.1f, want <= 32", name, run.AllocsPerEvent)
		}
		if run.BytesOnWire == 0 || run.Delivered == 0 {
			t.Errorf("%s accounting empty: %+v", name, run)
		}
	}
}
