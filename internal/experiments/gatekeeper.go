package experiments

import (
	"fmt"
	"strings"
	"time"

	"configerator/internal/gatekeeper"
	"configerator/internal/laser"
	"configerator/internal/mobileconfig"
	"configerator/internal/simnet"
	"configerator/internal/stats"
	"configerator/internal/vclock"
)

// realisticProject builds a project with the mixed restraint shapes real
// gates use (Figure 5).
func realisticProject(name string) *gatekeeper.ProjectSpec {
	return &gatekeeper.ProjectSpec{Project: name, Rules: []gatekeeper.RuleSpec{
		{
			Restraints: []gatekeeper.RestraintSpec{
				{Name: "employee"},
			},
			PassProbability: 1.0,
		},
		{
			Restraints: []gatekeeper.RestraintSpec{
				{Name: "country", Params: gatekeeper.Params{"in": []string{"US", "CA", "GB"}}},
				{Name: "app_version_at_least", Params: gatekeeper.Params{"version": 100.0}},
				{Name: "friend_count_at_least", Params: gatekeeper.Params{"n": 10.0}},
			},
			PassProbability: 0.10,
		},
		{
			Restraints: []gatekeeper.RestraintSpec{
				{Name: "platform", Params: gatekeeper.Params{"in": []string{"ios", "android"}}},
			},
			PassProbability: 0.01,
		},
	}}
}

func sampleUser(rng *stats.RNG, id int64) *gatekeeper.User {
	countries := []string{"US", "BR", "IN", "GB", "JP", "DE"}
	platforms := []string{"www", "ios", "android"}
	return &gatekeeper.User{
		ID:          id,
		Employee:    rng.Bool(0.001),
		Country:     countries[rng.Intn(len(countries))],
		Region:      "r" + countries[rng.Intn(len(countries))],
		Platform:    platforms[rng.Intn(len(platforms))],
		App:         "fb4a",
		AppVersion:  90 + rng.Intn(40),
		FriendCount: rng.Intn(500),
		AccountAge:  time.Duration(rng.Intn(2000)) * 24 * time.Hour,
		Now:         vclock.Epoch,
	}
}

// Fig15GatekeeperChecks reproduces Figure 15: Gatekeeper check throughput.
// The paper reports billions of checks per second site-wide across
// hundreds of thousands of frontend servers with a diurnal pattern; we
// measure this runtime's real single-core check rate and scale-model the
// site-wide series from the traffic profile.
func Fig15GatekeeperChecks(opts Options) Result {
	r := Result{ID: "fig15", Title: "Gatekeeper check throughput"}
	reg := gatekeeper.NewRegistry(nil)
	rt := gatekeeper.NewRuntime(reg)
	for i := 0; i < 10; i++ {
		spec := realisticProject(fmt.Sprintf("Proj%d", i))
		if err := rt.Load(spec.Encode()); err != nil {
			panic(err)
		}
	}
	rng := stats.NewRNG(opts.Seed)
	users := make([]*gatekeeper.User, 4096)
	for i := range users {
		users[i] = sampleUser(rng, int64(i))
	}
	n := 2_000_000
	if opts.Quick {
		n = 200_000
	}
	start := time.Now()
	passes := 0
	for i := 0; i < n; i++ {
		if rt.Check(fmt.Sprintf("Proj%d", i%10), users[i%len(users)]) {
			passes++
		}
	}
	elapsed := time.Since(start)
	perCore := float64(n) / elapsed.Seconds()

	// Site-wide scale model: 300k frontend servers, each handling ~1500
	// requests/s at peak with ~4 gate checks per request, modulated by
	// the diurnal traffic profile. (The measured single-core rate above
	// shows one core could serve ~2M checks/s, i.e. the site-wide rate
	// needs a fraction of each server — but §6.3 notes data-intensive
	// restraints make the real aggregate CPU cost significant.)
	const servers = 300_000
	const peakChecksPerServer = 6_000
	var series stats.Series
	series.Name = "site-wide checks/s (billions)"
	for h := 0; h < 7*24; h++ {
		traffic := 0.55 + 0.45*diurnalTraffic(h%24)
		series.Add(float64(h), servers*peakChecksPerServer*traffic/1e9)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "measured single-core: %.2fM checks/s (pass rate %.1f%%)\n",
		perCore/1e6, 100*float64(passes)/float64(n))
	b.WriteString(series.Sparkline(84) + "\n")
	r.Text = b.String()
	r.metric("single_core_checks_per_sec", perCore, 0, false)
	r.metric("sitewide_peak_billion_per_sec", series.MaxY(), 1.0, true)
	return r
}

func diurnalTraffic(hour int) float64 {
	switch {
	case hour >= 9 && hour < 22:
		return 1.0
	case hour >= 6 && hour < 9:
		return 0.6
	default:
		return 0.25
	}
}

// AblationGatekeeperOptimizer measures the cost-based boolean-tree
// optimization (§4): reordering a conjunction so a cheap, selective
// restraint runs before an expensive laser() lookup.
func AblationGatekeeperOptimizer(opts Options) Result {
	r := Result{ID: "ablation-gk-optimizer", Title: "Gatekeeper cost-based restraint reordering"}
	build := func(optimize bool) *gatekeeper.Project {
		ls := laser.NewStore()
		for id := int64(0); id < 10_000; id++ {
			ls.Set(laser.UserKey("Heavy", id), 1.0)
		}
		reg := gatekeeper.NewRegistry(ls)
		spec := &gatekeeper.ProjectSpec{Project: "Heavy", Rules: []gatekeeper.RuleSpec{{
			Restraints: []gatekeeper.RestraintSpec{
				{Name: "laser", Params: gatekeeper.Params{"project": "Heavy", "threshold": 0.5}},
				{Name: "country", Params: gatekeeper.Params{"in": []string{"IS"}}},
			},
			PassProbability: 1.0,
		}}}
		p, err := gatekeeper.Compile(spec, reg)
		if err != nil {
			panic(err)
		}
		if optimize {
			p.SetOptimizeInterval(512)
		} else {
			p.SetOptimizeInterval(0)
		}
		return p
	}
	run := func(p *gatekeeper.Project) float64 {
		rng := stats.NewRNG(opts.Seed)
		for i := 0; i < 50_000; i++ {
			u := sampleUser(rng, int64(i%10_000))
			u.Country = "US"
			p.Check(u)
		}
		return p.RestraintCost()
	}
	unopt := run(build(false))
	opt := run(build(true))
	r.Text = fmt.Sprintf("50k checks of [laser() AND country∈{IS}]:\n  static order cost: %.0f units\n  cost-based order:  %.0f units\n  saving: %.1fx\n",
		unopt, opt, unopt/opt)
	r.metric("unoptimized_cost", unopt, 0, false)
	r.metric("optimized_cost", opt, 0, false)
	r.metric("saving_factor", unopt/opt, 0, false)
	return r
}

// AblationMobileDelta measures MobileConfig's hash-based delta pull
// against resending full values on every poll (§5's bandwidth argument).
func AblationMobileDelta(opts Options) Result {
	r := Result{ID: "ablation-mobile-delta", Title: "MobileConfig delta pull vs full responses"}
	devices := 200
	if opts.Quick {
		devices = 60
	}
	run := func(delta bool) (bytes uint64, pulls uint64) {
		net := simnet.New(simnet.DefaultLatency(), opts.Seed)
		reg := gatekeeper.NewRegistry(nil)
		grt := gatekeeper.NewRuntime(reg)
		spec := &gatekeeper.ProjectSpec{Project: "MX", Rules: []gatekeeper.RuleSpec{{
			Restraints: []gatekeeper.RestraintSpec{{Name: "always"}}, PassProbability: 0.5,
		}}}
		if err := grt.Load(spec.Encode()); err != nil {
			panic(err)
		}
		tr := mobileconfig.NewTranslator(grt, nil)
		mapping := &mobileconfig.Mapping{Config: "APP", Fields: map[string]mobileconfig.FieldBinding{
			"FEATURE_X":   {Backend: mobileconfig.BackendGatekeeper, Project: "MX"},
			"MAX_RETRIES": {Backend: mobileconfig.BackendConstant, Value: 3.0},
			"ENDPOINT":    {Backend: mobileconfig.BackendConstant, Value: "https://api.example.com/graph/v2"},
		}}
		if err := tr.LoadMapping(mapping.Encode()); err != nil {
			panic(err)
		}
		_ = mobileconfig.NewServer(net, "mcfg", simnet.Placement{Region: "us", Cluster: "web"},
			tr, func(id int64) *gatekeeper.User {
				return &gatekeeper.User{ID: id, Now: vclock.Epoch}
			})
		schema := tr.RegisterSchema([]string{"FEATURE_X", "MAX_RETRIES", "ENDPOINT"})
		var devs []*mobileconfig.Device
		for i := 0; i < devices; i++ {
			d := mobileconfig.NewDevice(net, simnet.NodeID(fmt.Sprintf("ph-%d", i)),
				simnet.Placement{Region: "mobile", Cluster: "cell"}, "mcfg", "APP", int64(i), schema)
			d.SetPollInterval(time.Hour)
			if !delta {
				d.DisableCache()
			}
			devs = append(devs, d)
		}
		net.RunFor(24 * time.Hour)
		for _, d := range devs {
			pulls += d.Pulls
		}
		return net.BytesSent, pulls
	}
	deltaBytes, pulls := run(true)
	fullBytes, _ := run(false)
	r.Text = fmt.Sprintf("%d devices, 24h of hourly polls (%d pulls), values unchanged after first fetch:\n  delta protocol: %.1f KB transferred\n  full responses: %.1f KB transferred\n  bandwidth saving: %.1fx\n",
		devices, pulls, float64(deltaBytes)/1e3, float64(fullBytes)/1e3,
		float64(fullBytes)/float64(deltaBytes))
	r.metric("delta_bytes", float64(deltaBytes), 0, false)
	r.metric("full_bytes", float64(fullBytes), 0, false)
	r.metric("bandwidth_saving", float64(fullBytes)/float64(deltaBytes), 0, false)
	return r
}
