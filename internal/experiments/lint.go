package experiments

import (
	"fmt"
	"time"

	"configerator/internal/cdl"
	"configerator/internal/cdl/analysis"
)

// Lint measures the configlint driver over the shared-.cinc fan-out: cold
// analyzer wall-time, warm wall-time against a populated parse cache, the
// incremental cost of compiling after linting with the same engine, and
// the diagnostic yield on a corpus seeded with known-bad configs. The
// parse counters are exact invariants (a lint of n dependents parses the
// shared .cinc once); wall-clock numbers are environment-dependent and
// reported for the record.
func Lint(opts Options) Result {
	n := 100
	if opts.Quick {
		n = 40
	}
	fs, paths := fanoutFS(n)

	// Seed a handful of dirty dependents so the diagnostic counters are
	// non-trivial: an unused import (Warn), a dead-branch undefined
	// reference (Error), and a deprecated sitevar use (Warn).
	fs["lib/consts.cinc"] = "let LIMIT = 10;\n"
	fs["sitevars/old_flag.cinc"] = "let OLD = 1;\n"
	fs["svc/unused.cconf"] = "import \"lib/consts.cinc\";\nexport {a: 1};\n"
	fs["svc/deadref.cconf"] = "let on = false;\nif (on) {\n\tlet x = missing_name;\n}\nexport {on: on};\n"
	fs["svc/oldsite.cconf"] = "import \"sitevars/old_flag.cinc\";\nexport {v: OLD};\n"
	roots := append(append([]string{}, paths...),
		"svc/unused.cconf", "svc/deadref.cconf", "svc/oldsite.cconf")

	eng := cdl.NewEngine()
	driver := analysis.NewDriver(eng, fs)
	driver.DeprecatedSitevars = map[string]string{"old_flag": "use new_flag"}

	// Cold: every source parses exactly once, shared .cinc included.
	coldStart := time.Now()
	diags, err := driver.Run(roots)
	if err != nil {
		panic(err)
	}
	coldDur := time.Since(coldStart)
	cold := eng.Counters().Snapshot()

	// Warm: the same lint against a populated parse cache — what an
	// editor or pre-commit hook pays on re-runs.
	warmStart := time.Now()
	if _, err := driver.Run(roots); err != nil {
		panic(err)
	}
	warmDur := time.Since(warmStart)
	warm := eng.Counters().Snapshot()

	// Compile the clean dependents with the same engine: pipeline stage 1
	// lints then compiles, and the lint's parses must be reusable.
	compileStart := time.Now()
	if _, err := eng.CompileAll(fs, paths); err != nil {
		panic(err)
	}
	compileDur := time.Since(compileStart)
	after := eng.Counters().Snapshot()

	var errs, warns int
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
		switch d.Severity {
		case analysis.Error:
			errs++
		case analysis.Warn:
			warns++
		}
	}

	r := Result{ID: "configlint", Title: "configlint static-analysis driver (fan-out lint + compile reuse)"}
	r.metric("roots", float64(len(roots)), 0, false)
	r.metric("analyzers", float64(len(analysis.Analyzers())), 0, false)
	r.metric("cold_lint_ms", float64(coldDur.Microseconds())/1000, 0, false)
	r.metric("warm_lint_ms", float64(warmDur.Microseconds())/1000, 0, false)
	r.metric("compile_after_lint_ms", float64(compileDur.Microseconds())/1000, 0, false)
	r.metric("diagnostics", float64(len(diags)), 0, false)
	r.metric("diag_errors", float64(errs), 0, false)
	r.metric("diag_warnings", float64(warns), 0, false)
	// Exact cache invariants: cold lint parses each distinct source once
	// (shared .cinc included, despite n importers); a warm lint is pure
	// parse-cache hits; compiling after linting re-parses nothing.
	r.metric("cold_parse_miss", float64(cold["parse.miss"]), 0, false)
	r.metric("warm_parse_miss_delta", float64(warm["parse.miss"]-cold["parse.miss"]), 0, false)
	r.metric("compile_parse_miss_delta", float64(after["parse.miss"]-warm["parse.miss"]), 0, false)

	r.Text = eng.Counters().Table("cdl engine cache counters (after cold+warm lint, then compile)")
	r.Text += "\ndiagnostics by analyzer:\n"
	for _, a := range analysis.Analyzers() {
		if c := byAnalyzer[a.Name]; c > 0 {
			r.Text += fmt.Sprintf("  %-22s %d\n", a.Name, c)
		}
	}
	return r
}
