package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"configerator/internal/cluster"
	"configerator/internal/confclient"
	"configerator/internal/monitor"
	"configerator/internal/obs"
	"configerator/internal/proxy"
	"configerator/internal/simnet"
	"configerator/internal/zeus"
)

// MonitorReport is the BENCH_monitor.json schema: what continuous
// fleet-health monitoring costs and what it buys. The cost side reruns
// the readpath storm with heartbeats+sweeps live and gates the overhead
// at 5% and warm-read allocations at zero; the value side measures the
// continuous time-to-head distribution on a real fleet and the fire/clear
// latency of SLO burn alerts around an injected outage.
type MonitorReport struct {
	Overhead struct {
		Readers              int     `json:"readers"`
		WindowMs             int     `json:"window_ms"`
		Trials               int     `json:"trials"`
		BaselineReadsPerSec  float64 `json:"baseline_reads_per_sec"`
		MonitoredReadsPerSec float64 `json:"monitored_reads_per_sec"`
		OverheadPct          float64 `json:"overhead_pct"`
		HeartbeatEveryMs     float64 `json:"heartbeat_every_ms"`
		SweepEveryMs         float64 `json:"sweep_every_ms"`
		Heartbeats           int64   `json:"heartbeats"`
		Sweeps               int64   `json:"sweeps"`
	} `json:"overhead"`
	// Allocs are per warm read with monitoring ENABLED — the PR-6 gates
	// must survive the monitoring plane.
	Allocs struct {
		PerProxyRead float64 `json:"per_proxy_read"`
		PerClientGet float64 `json:"per_client_get"`
	} `json:"allocs"`
	Convergence struct {
		Proxies         int     `json:"proxies"`
		Writes          int     `json:"writes"`
		Samples         int64   `json:"samples"`
		TimeToHeadP50Ms float64 `json:"time_to_head_p50_ms"`
		TimeToHeadP99Ms float64 `json:"time_to_head_p99_ms"`
	} `json:"convergence"`
	Alerts struct {
		// FireLatencyMs: injected fault → convergence alert fired.
		// ClearLatencyMs: fault healed → alert cleared.
		FireLatencyMs  float64 `json:"fire_latency_ms"`
		ClearLatencyMs float64 `json:"clear_latency_ms"`
		Fired          int64   `json:"fired"`
		Cleared        int64   `json:"cleared"`
	} `json:"alerts"`
}

// monStack is the single-server rig the overhead comparison runs on —
// the same shape as the readpath experiment, optionally monitored.
type monStack struct {
	net *simnet.Network
	reg *obs.Registry
	px  *proxy.Proxy
	cl  *confclient.Client
	wc  *zeus.Client
}

const (
	monHeartbeatEvery = 200 * time.Millisecond
	monSweepEvery     = 500 * time.Millisecond
)

func newMonStack(seed uint64, monitored bool) *monStack {
	reg := obs.New()
	net := simnet.New(simnet.DefaultLatency(), seed)
	ens := zeus.StartEnsemble(net, 3, []simnet.Placement{
		{Region: "us", Cluster: "zk1"},
		{Region: "us", Cluster: "zk2"},
		{Region: "eu", Cluster: "zk3"},
	})
	ens.SetObs(reg)
	ens.AddObserver("obs-1", simnet.Placement{Region: "us", Cluster: "web"})
	wc := zeus.NewClient("mon-writer", ens.Members)
	net.AddNode("mon-writer", simnet.Placement{Region: "us", Cluster: "ctrl"}, wc)
	net.RunFor(10 * time.Second)
	px := proxy.New(net, "mon-proxy", simnet.Placement{Region: "us", Cluster: "web"},
		[]simnet.NodeID{"obs-1"}, nil)
	px.Obs = reg
	cl := confclient.New(px)
	cl.SetObs(reg)
	if monitored {
		// Aggressive cadences so heartbeats and sweeps actually fire many
		// times inside the storm's virtual-time churn.
		m := monitor.New(monitor.Config{
			ID: "mon", Ensemble: ens, Obs: reg, SweepEvery: monSweepEvery,
			HeartbeatEvery: monHeartbeatEvery,
		})
		m.Attach(net, simnet.Placement{Region: "us", Cluster: "web"})
		px.EnableMonitor("mon", monHeartbeatEvery)
	}
	return &monStack{net: net, reg: reg, px: px, cl: cl, wc: wc}
}

func (s *monStack) commit(path string, rev int) {
	s.net.After(0, func() {
		ctx := simnet.MakeContext(s.net, "mon-writer")
		s.wc.Write(&ctx, path, readpathPayload(path, rev), func(zeus.WriteResult) {})
	})
}

// warm lands rev 1 on every path and warms the client memos.
func (s *monStack) warm(paths []string) {
	for _, p := range paths {
		s.commit(p, 1)
	}
	s.net.RunFor(10 * time.Second)
	s.cl.Want(paths...)
	s.net.RunFor(5 * time.Second)
	ctx := context.Background()
	for _, p := range paths {
		if _, err := s.cl.Get(ctx, p); err != nil {
			panic("monitor experiment: warm read failed: " + err.Error())
		}
	}
}

// storm runs one readpath-style measurement window against the stack.
func (s *monStack) storm(readers int, window time.Duration, paths []string) float64 {
	ctx := context.Background()
	read := func(i int) {
		if v, err := s.cl.Get(ctx, paths[i%len(paths)]); err == nil {
			_ = v.Int("rev", -1)
		}
	}
	rev := 1
	lv := readpathMeasure(readers, window, read, func(deadline time.Time) {
		for time.Now().Before(deadline) {
			rev++
			s.commit(paths[rev%len(paths)], rev)
			s.net.RunFor(250 * time.Millisecond)
			time.Sleep(time.Millisecond)
		}
	})
	return lv.ReadsPerSec
}

// Monitor measures the fleet-health plane: read-path overhead with
// monitoring on vs off (gated at 5%), warm-read allocations with
// monitoring enabled (gated at 0), the continuous time-to-head
// distribution over a fleet, and SLO alert fire/clear latency around an
// injected outage. Raw numbers land as BENCH_monitor.json.
func Monitor(opts Options) Result {
	r := Result{ID: "monitor", Title: "Fleet-health monitoring: overhead, convergence quantiles, alert latency"}
	var rep MonitorReport

	// ---- Overhead: same storm, monitoring off vs on, best-of-N trials
	// so scheduler noise cannot masquerade as monitoring cost (the
	// monitored work rides timer ticks, never the read path).
	const nPaths = 8
	paths := make([]string, nPaths)
	for i := range paths {
		paths[i] = fmt.Sprintf("/readpath/cfg-%d.json", i)
	}
	readers, window, trials := 8, 300*time.Millisecond, 3
	if opts.Quick {
		window, trials = 120*time.Millisecond, 2
	}
	off := newMonStack(opts.Seed, false)
	on := newMonStack(opts.Seed, true)
	off.warm(paths)
	on.warm(paths)
	var bestOff, bestOn float64
	for t := 0; t < trials; t++ {
		if v := off.storm(readers, window, paths); v > bestOff {
			bestOff = v
		}
		if v := on.storm(readers, window, paths); v > bestOn {
			bestOn = v
		}
	}
	rep.Overhead.Readers = readers
	rep.Overhead.WindowMs = int(window / time.Millisecond)
	rep.Overhead.Trials = trials
	rep.Overhead.BaselineReadsPerSec = bestOff
	rep.Overhead.MonitoredReadsPerSec = bestOn
	if bestOff > 0 {
		rep.Overhead.OverheadPct = (1 - bestOn/bestOff) * 100
	}
	rep.Overhead.HeartbeatEveryMs = monHeartbeatEvery.Seconds() * 1e3
	rep.Overhead.SweepEveryMs = monSweepEvery.Seconds() * 1e3
	rep.Overhead.Heartbeats = on.reg.Counters().Get("proxy.monitor.heartbeat")
	rep.Overhead.Sweeps = on.reg.Counters().Get("monitor.sweeps")

	// ---- Allocation gates, with the monitoring plane live.
	ctx := context.Background()
	rep.Allocs.PerProxyRead = testing.AllocsPerRun(200, func() {
		if res := on.px.Read(paths[0]); !res.OK {
			panic("monitor experiment: cold proxy read")
		}
	})
	rep.Allocs.PerClientGet = testing.AllocsPerRun(200, func() {
		if _, err := on.cl.Get(ctx, paths[1]); err != nil {
			panic("monitor experiment: cold client get")
		}
	})

	// ---- Convergence quantiles + alert latency on a real fleet.
	reg := obs.New()
	cfg := cluster.SmallConfig(2, opts.Seed)
	cfg.Obs = reg
	f := cluster.New(cfg)
	f.Net.RunFor(10 * time.Second)
	mon := f.AttachMonitor(monitor.Config{
		SweepEvery: time.Second,
		SLOs:       []*monitor.SLO{monitor.ConvergenceSLO(0.99, 2*time.Second)},
	})
	const fpath = "/monitor/knob.json"
	writer := zeus.NewClient("fleet-writer", f.Ensemble.Members)
	f.Net.AddNode("fleet-writer", simnet.Placement{Region: "us-west", Cluster: "ctrl"}, writer)
	land := func(rev int) {
		f.Net.After(0, func() {
			wctx := simnet.MakeContext(f.Net, "fleet-writer")
			writer.Write(&wctx, fpath,
				[]byte(fmt.Sprintf(`{"rev":%d}`, rev)), func(zeus.WriteResult) {})
		})
	}
	land(0)
	f.Net.RunFor(5 * time.Second)
	f.SubscribeAll(fpath)
	f.Net.RunFor(5 * time.Second)

	writes := 10
	for i := 1; i <= writes; i++ {
		land(i)
		f.Net.RunFor(3 * time.Second)
	}
	h := reg.Histogram(monitor.HistTimeToHead)
	rep.Convergence.Proxies = len(f.AllServers())
	rep.Convergence.Writes = writes
	rep.Convergence.Samples = int64(h.Count())
	rep.Convergence.TimeToHeadP50Ms = h.Quantile(0.50).Seconds() * 1e3
	rep.Convergence.TimeToHeadP99Ms = h.Quantile(0.99).Seconds() * 1e3

	// Outage: kill uw1's distribution plane, keep writing so its proxies
	// fall behind; the convergence alert must fire, then clear after heal.
	faultAt := f.Net.Now()
	for _, id := range f.Observers("uw1") {
		f.Net.Fail(id)
	}
	for i := writes + 1; i <= writes+12; i++ {
		land(i)
		f.Net.RunFor(2 * time.Second)
	}
	var fired time.Time
	for _, a := range mon.Status().ActiveAlerts() {
		fired = a.FiredAt
	}
	healAt := f.Net.Now()
	for _, id := range f.Observers("uw1") {
		f.Net.Recover(id)
	}
	f.Net.RunFor(30 * time.Second)
	st := mon.Status()
	rep.Alerts.Fired = reg.Counters().Get("monitor.alert.fired")
	rep.Alerts.Cleared = reg.Counters().Get("monitor.alert.cleared")
	if !fired.IsZero() {
		rep.Alerts.FireLatencyMs = fired.Sub(faultAt).Seconds() * 1e3
	}
	for _, a := range st.Alerts {
		if !a.Active() && a.ClearedAt.After(healAt) {
			rep.Alerts.ClearLatencyMs = a.ClearedAt.Sub(healAt).Seconds() * 1e3
		}
	}

	// ---- Render.
	var b strings.Builder
	fmt.Fprintf(&b, "overhead: %d readers, %dms window, best of %d trials\n",
		readers, rep.Overhead.WindowMs, trials)
	fmt.Fprintf(&b, "  baseline  %12.0f reads/s\n", bestOff)
	fmt.Fprintf(&b, "  monitored %12.0f reads/s (%.1f%% overhead; %d heartbeats, %d sweeps)\n",
		bestOn, rep.Overhead.OverheadPct, rep.Overhead.Heartbeats, rep.Overhead.Sweeps)
	fmt.Fprintf(&b, "  allocs/warm-read: proxy=%.1f client=%.1f (monitoring on)\n",
		rep.Allocs.PerProxyRead, rep.Allocs.PerClientGet)
	fmt.Fprintf(&b, "\nconvergence over %d proxies, %d writes: time-to-head p50=%.1fms p99=%.1fms (%d samples)\n",
		rep.Convergence.Proxies, writes,
		rep.Convergence.TimeToHeadP50Ms, rep.Convergence.TimeToHeadP99Ms, rep.Convergence.Samples)
	fmt.Fprintf(&b, "alerts: fired %d (latency %.0fms after fault), cleared %d (%.0fms after heal)\n",
		rep.Alerts.Fired, rep.Alerts.FireLatencyMs, rep.Alerts.Cleared, rep.Alerts.ClearLatencyMs)
	r.Text = b.String()

	r.metric("overhead_pct", rep.Overhead.OverheadPct, 5, true)
	r.metric("allocs_per_proxy_read_monitored", rep.Allocs.PerProxyRead, 0, true)
	r.metric("allocs_per_client_get_monitored", rep.Allocs.PerClientGet, 0, true)
	r.metric("time_to_head_p50_ms", rep.Convergence.TimeToHeadP50Ms, 0, false)
	r.metric("time_to_head_p99_ms", rep.Convergence.TimeToHeadP99Ms, 0, false)
	r.metric("alert_fire_latency_ms", rep.Alerts.FireLatencyMs, 0, false)
	r.metric("alert_clear_latency_ms", rep.Alerts.ClearLatencyMs, 0, false)

	data, _ := json.MarshalIndent(rep, "", "  ")
	r.ArtifactName = "BENCH_monitor.json"
	r.Artifact = data
	return r
}
