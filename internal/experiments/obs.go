package experiments

import (
	"fmt"
	"strings"
	"time"

	"configerator/internal/cluster"
	"configerator/internal/core"
	"configerator/internal/obs"
	"configerator/internal/proxy"
	"configerator/internal/simnet"
	"configerator/internal/stats"
	"configerator/internal/zeus"
)

// Obs exercises the commit-scoped observability layer end to end and
// reports the two distributions DESIGN.md §8 documents:
//
//  1. Per-stage pipeline latency (p50/p90/p99) from a small fleet running
//     a mix of canaried and fast-lane commits under the default
//     datacenter latency model.
//  2. Per-hop push-tree latency from the calibrated wide-area topology
//     (single-member ensemble, second-scale links), where the
//     leader→observer→proxy chain must total the paper's ~4.5 s tree
//     propagation (§6.3).
//
// The full registry of the fleet run — counters, histograms, and span
// trees — is attached as the BENCH_obs.json artifact so the raw
// distributions land next to EXPERIMENTS.md.
func Obs(opts Options) Result {
	r := Result{ID: "obs", Title: "Commit-scoped tracing: stage latency and push-tree hops"}

	// ---- Part 1: per-stage latency over an instrumented fleet ----
	reg := obs.New()
	cfg := cluster.SmallConfig(3, opts.Seed)
	cfg.Obs = reg
	fleet := cluster.New(cfg)
	fleet.Net.RunFor(10 * time.Second)
	p := core.New(core.Options{Fleet: fleet, CanaryPhase1: 2, CanaryPhase2: 4})

	commits := 6
	if opts.Quick {
		commits = 3
	}
	landed := 0
	for i := 0; i < commits; i++ {
		path := fmt.Sprintf("obs/cfg-%d.json", i)
		fleet.SubscribeAll(core.ZeusPath(path))
		rep := p.Submit(&core.ChangeRequest{
			Author: "obs-bot", Reviewer: "reviewer", Title: fmt.Sprintf("probe %d", i),
			Raws: map[string][]byte{path: []byte(fmt.Sprintf(`{"probe":%d}`, i))},
			// Alternate the fast lane and the full canary path so both
			// stage mixes appear in the histograms.
			SkipCanary: i%2 == 1,
		})
		if rep.OK() {
			landed++
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "fleet run: %d commits (%d landed), %d servers\n\n",
		commits, landed, len(fleet.AllServers()))
	tb := stats.NewTable("per-stage pipeline latency", "stage", "n", "p50", "p90", "p99", "max")
	for _, name := range core.StageNames {
		h := reg.Histogram("stage." + name)
		if h.Count() == 0 {
			continue
		}
		tb.AddRow(name, fmt.Sprint(h.Count()),
			h.Quantile(0.50).Round(time.Millisecond).String(),
			h.Quantile(0.90).Round(time.Millisecond).String(),
			h.Quantile(0.99).Round(time.Millisecond).String(),
			h.Max().Round(time.Millisecond).String())
		r.metric("stage_"+name+"_p50_s", h.Quantile(0.50).Seconds(), 0, false)
		r.metric("stage_"+name+"_p99_s", h.Quantile(0.99).Seconds(), 0, false)
	}
	b.WriteString(tb.String())
	r.metric("commits_landed", float64(landed), 0, false)
	r.metric("traces_recorded", float64(len(reg.Traces())), 0, false)

	// ---- Part 2: per-hop distribution on the calibrated topology ----
	// Same rig as proxy.TestPushTreeLatencyMatchesLinkModel: the link
	// latencies are inflated to seconds so the hops dominate, which only a
	// single-member ensemble tolerates (quorum = 1 self-elects at any
	// latency). Leader alone in "us"; observer and proxy share an "eu"
	// cluster: one 4 s cross-region hop plus one 500 ms in-cluster hop.
	lat := simnet.LatencyModel{
		SameCluster: 500 * time.Millisecond,
		SameRegion:  2 * time.Second,
		CrossRegion: 4 * time.Second,
		Jitter:      0,
	}
	net := simnet.New(lat, opts.Seed)
	hopReg := obs.New()
	ens := zeus.StartEnsemble(net, 1, []simnet.Placement{{Region: "us", Cluster: "zk"}})
	ens.SetObs(hopReg)
	euPlace := simnet.Placement{Region: "eu", Cluster: "c1"}
	ens.AddObserver("obs-eu", euPlace)
	px := proxy.New(net, "srv-eu", euPlace, []simnet.NodeID{"obs-eu"}, nil)
	px.Obs = hopReg
	cl := zeus.NewClient("writer", ens.Members)
	net.AddNode("writer", simnet.Placement{Region: "us", Cluster: "zk"}, cl)
	net.RunFor(20 * time.Second)

	const calibPath = "/configs/obs-calib.json"
	write := func(data string) {
		done := false
		net.After(0, func() {
			ctx := simnet.MakeContext(net, "writer")
			cl.Write(&ctx, calibPath, []byte(data), func(zeus.WriteResult) { done = true })
		})
		for i := 0; i < 100 && !done; i++ {
			net.RunFor(time.Second)
		}
	}

	// Warm the watch first so every measured delivery is a pure push.
	write(`{"v":0}`)
	px.Want(calibPath)
	net.RunFor(20 * time.Second)

	pushes := 5
	if opts.Quick {
		pushes = 3
	}
	for i := 1; i <= pushes; i++ {
		tr := hopReg.StartTrace(fmt.Sprintf("calib-%d", i), net.Now())
		hopReg.BindPath(calibPath, tr)
		write(fmt.Sprintf(`{"v":%d}`, i))
		// Poll the application read once per simulated second: the first
		// read after delivery records the commit-to-read latency.
		for j := 0; j < 20; j++ {
			net.RunFor(time.Second)
			px.Get(calibPath)
		}
		tr.EndAt(net.Now())
	}

	b.WriteString("\ncalibrated push tree (1-member ensemble, us → eu):\n")
	hb := stats.NewTable("push-tree hops", "hop", "n", "p50", "max")
	for _, name := range []string{
		obs.HistHopLeaderObserver, obs.HistHopObserverProxy,
		obs.HistCommitToProxy, obs.HistCommitToRead,
	} {
		h := hopReg.Histogram(name)
		hb.AddRow(name, fmt.Sprint(h.Count()),
			h.Quantile(0.50).Round(time.Millisecond).String(),
			h.Max().Round(time.Millisecond).String())
	}
	b.WriteString(hb.String())
	r.metric("hop_leader_to_observer_s",
		hopReg.Histogram(obs.HistHopLeaderObserver).Quantile(0.50).Seconds(), 0, false)
	r.metric("hop_observer_to_proxy_s",
		hopReg.Histogram(obs.HistHopObserverProxy).Quantile(0.50).Seconds(), 0, false)
	// The paper's headline number: commit-to-proxy over the Zeus tree.
	r.metric("tree_propagation_total_s",
		hopReg.Histogram(obs.HistCommitToProxy).Quantile(0.50).Seconds(), 4.5, true)
	r.metric("commit_to_read_s",
		hopReg.Histogram(obs.HistCommitToRead).Quantile(0.50).Seconds(), 0, false)

	// One rendered span tree from the calibrated run, as the trace
	// subcommand would print it.
	if tr := hopReg.TraceByKey(fmt.Sprintf("calib-%d", pushes)); tr != nil {
		b.WriteString("\nsample trace:\n")
		b.WriteString(tr.Render())
	}

	r.Text = b.String()
	r.ArtifactName = "BENCH_obs.json"
	r.Artifact = reg.JSON()
	return r
}
