package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestObs holds the observability experiment to the ISSUE acceptance
// criteria: per-stage p50/p99 for every pipeline stage, a per-hop
// push-tree distribution whose total matches the paper's ~4.5 s tree
// propagation, and a parseable registry artifact.
func TestObs(t *testing.T) {
	r := Obs(opts)

	for _, stage := range []string{"lint", "compile", "review+ci", "canary", "commit", "propagate"} {
		if _, ok := r.Metrics["stage_"+stage+"_p50_s"]; !ok {
			t.Errorf("missing stage_%s_p50_s", stage)
		}
		if _, ok := r.Metrics["stage_"+stage+"_p99_s"]; !ok {
			t.Errorf("missing stage_%s_p99_s", stage)
		}
	}
	if got := r.Metrics["commits_landed"]; got < 3 {
		t.Errorf("commits_landed = %v, want >= 3", got)
	}

	// Calibrated hop chain: 4 s + 0.5 s = 4.5 s, within histogram
	// bucket resolution.
	if got := r.Metrics["tree_propagation_total_s"]; got < 4.4 || got > 4.6 {
		t.Errorf("tree_propagation_total_s = %v, want ~4.5", got)
	}
	if paper := r.PaperValues["tree_propagation_total_s"]; paper != 4.5 {
		t.Errorf("paper value = %v, want 4.5", paper)
	}
	if got := r.Metrics["hop_leader_to_observer_s"]; got < 3.9 || got > 4.1 {
		t.Errorf("hop_leader_to_observer_s = %v, want ~4.0", got)
	}
	if got := r.Metrics["hop_observer_to_proxy_s"]; got < 0.45 || got > 0.55 {
		t.Errorf("hop_observer_to_proxy_s = %v, want ~0.5", got)
	}
	if got := r.Metrics["commit_to_read_s"]; got < 4.4 || got > 7 {
		t.Errorf("commit_to_read_s = %v, want ~5 (tree propagation + 1 s read-poll grain)", got)
	}

	// The rendered text includes the sample span tree with the full chain.
	for _, want := range []string{"zeus.commit", "observer obs-eu", "proxy srv-eu"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("experiment text missing %q", want)
		}
	}

	// The artifact is the fleet registry dump, valid JSON with the
	// expected top-level shape.
	if r.ArtifactName != "BENCH_obs.json" {
		t.Errorf("ArtifactName = %q", r.ArtifactName)
	}
	var dump struct {
		Counters   map[string]int64           `json:"counters"`
		Histograms map[string]json.RawMessage `json:"histograms"`
		Traces     []json.RawMessage          `json:"traces"`
	}
	if err := json.Unmarshal(r.Artifact, &dump); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if len(dump.Histograms) == 0 || len(dump.Traces) == 0 {
		t.Errorf("artifact missing histograms/traces: %d/%d",
			len(dump.Histograms), len(dump.Traces))
	}
	if dump.Counters["pipeline.landed"] == 0 {
		t.Error("artifact counters missing pipeline.landed")
	}
}
