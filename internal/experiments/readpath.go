package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"configerator/internal/confclient"
	"configerator/internal/obs"
	"configerator/internal/proxy"
	"configerator/internal/simnet"
	"configerator/internal/zeus"
)

// ReadpathReport is the BENCH_readpath.json schema: mixed read/write
// saturation of the zero-alloc read hot path. Goroutine readers hammer
// confclient.Get while the simulation thread lands commits that swap the
// proxy's read snapshot; the baseline is the pre-snapshot design (shared
// RWMutex store, one json.Unmarshal per read).
type ReadpathReport struct {
	Workload struct {
		Paths        int `json:"paths"`
		PayloadBytes int `json:"payload_bytes"`
		WindowMs     int `json:"window_ms"`
	} `json:"workload"`
	Levels []ReadpathLevel `json:"levels"`
	// AllocsPerRead / AllocsPerGet are heap allocations per warm
	// proxy.Read / confclient.Get (the tentpole's hard gate: both 0).
	AllocsPerRead float64 `json:"allocs_per_read"`
	AllocsPerGet  float64 `json:"allocs_per_get"`
	Freshness     struct {
		// Commit-to-first-read latency (virtual time) observed while the
		// read storm ran — snapshot swaps must not delay visibility.
		CommitToReadP50Ms float64 `json:"commit_to_read_p50_ms"`
		CommitToReadP99Ms float64 `json:"commit_to_read_p99_ms"`
		Samples           int64   `json:"samples"`
	} `json:"freshness"`
	Decode struct {
		// Decodes counts json.Unmarshal calls; MemoHits reads served from
		// a per-version memo; HashHits decodes avoided because another
		// path/version had identical bytes.
		Decodes  int64 `json:"decodes"`
		HashHits int64 `json:"hash_hits"`
		MemoHits int64 `json:"memo_hits"`
		Reads    int64 `json:"reads"`
	} `json:"decode"`
}

// ReadpathLevel is one concurrency point: reads/sec with n readers racing
// m writers, against the legacy lock+decode baseline at the same level.
type ReadpathLevel struct {
	Readers             int     `json:"readers"`
	Writers             int     `json:"writers"`
	ReadsPerSec         float64 `json:"reads_per_sec"`
	BaselineReadsPerSec float64 `json:"baseline_reads_per_sec"`
	Speedup             float64 `json:"speedup"`
	ReadP50Ns           float64 `json:"read_p50_ns"`
	ReadP99Ns           float64 `json:"read_p99_ns"`
}

// legacyStore emulates the pre-change read path for the baseline column: a
// mutable map behind a mutex (the minimal thread-safety the old design
// would have needed) and a JSON decode on every read, exactly what
// parseValue did per Get before values were memoized per content hash.
type legacyStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

func (s *legacyStore) write(path string, data []byte) {
	s.mu.Lock()
	s.m[path] = data
	s.mu.Unlock()
}

func (s *legacyStore) read(path string) int64 {
	s.mu.RLock()
	data := s.m[path]
	s.mu.RUnlock()
	var fields map[string]interface{}
	if err := json.Unmarshal(data, &fields); err != nil {
		return -1
	}
	if v, ok := fields["rev"].(float64); ok {
		return int64(v)
	}
	return -1
}

func readpathPayload(path string, rev int) []byte {
	return []byte(fmt.Sprintf(
		`{"rev":%d,"owner":"svc-%s","enabled":true,"weight":0.25,"hosts":["h1","h2","h3","h4"],"limits":{"mem_mb":512,"cpu_pct":80}}`,
		rev, strings.TrimPrefix(path, "/readpath/")))
}

// readpathMeasure runs n reader goroutines against read() for the window
// while churn() (run on the calling goroutine — the simulation thread)
// lands writes. Returns reads/sec and sampled per-read latency quantiles.
func readpathMeasure(readers int, window time.Duration, read func(int), churn func(time.Time)) ReadpathLevel {
	var stop atomic.Bool
	var total atomic.Int64
	lats := make([][]time.Duration, readers)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var n int64
			samples := make([]time.Duration, 0, 4096)
			for i := g; !stop.Load(); i++ {
				if n%64 == 0 {
					t0 := time.Now()
					read(i)
					samples = append(samples, time.Since(t0))
				} else {
					read(i)
				}
				n++
			}
			total.Add(n)
			lats[g] = samples
		}(g)
	}
	churn(start.Add(window))
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, s := range lats {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	lv := ReadpathLevel{
		Readers:     readers,
		ReadsPerSec: float64(total.Load()) / elapsed.Seconds(),
	}
	if n := len(all); n > 0 {
		lv.ReadP50Ns = float64(all[n/2])
		lv.ReadP99Ns = float64(all[n*99/100])
	}
	return lv
}

// ReadPath measures the zero-alloc read hot path under mixed read/write
// saturation (the tentpole experiment): reads/sec at growing reader counts
// racing live commit churn, per-read latency, allocation gates, and
// commit-to-read freshness — against the legacy per-read-decode baseline.
func ReadPath(opts Options) Result {
	r := Result{ID: "readpath", Title: "Read hot path: snapshot reads + memoized decode vs per-read lock+decode"}

	// Stack: 3-member ensemble, one observer, one proxy, one client — the
	// hot path is per-server, so one server with racing goroutines is the
	// honest unit of measurement.
	reg := obs.New()
	net := simnet.New(simnet.DefaultLatency(), opts.Seed)
	ens := zeus.StartEnsemble(net, 3, []simnet.Placement{
		{Region: "us", Cluster: "zk1"},
		{Region: "us", Cluster: "zk2"},
		{Region: "eu", Cluster: "zk3"},
	})
	ens.SetObs(reg)
	ens.AddObserver("obs-1", simnet.Placement{Region: "us", Cluster: "web"})
	wc := zeus.NewClient("rp-writer", ens.Members)
	net.AddNode("rp-writer", simnet.Placement{Region: "us", Cluster: "ctrl"}, wc)
	net.RunFor(10 * time.Second)
	px := proxy.New(net, "rp-proxy", simnet.Placement{Region: "us", Cluster: "web"},
		[]simnet.NodeID{"obs-1"}, nil)
	px.Obs = reg
	cl := confclient.New(px)
	cl.SetObs(reg)

	const nPaths = 8
	paths := make([]string, nPaths)
	for i := range paths {
		paths[i] = fmt.Sprintf("/readpath/cfg-%d.json", i)
	}
	commit := func(path string, rev int) {
		net.After(0, func() {
			ctx := simnet.MakeContext(net, "rp-writer")
			wc.Write(&ctx, path, readpathPayload(path, rev), func(zeus.WriteResult) {})
		})
	}
	for _, p := range paths {
		commit(p, 1)
	}
	net.RunFor(10 * time.Second)
	cl.Want(paths...)
	net.RunFor(5 * time.Second)

	ctx := context.Background()
	readReal := func(i int) {
		if v, err := cl.Get(ctx, paths[i%nPaths]); err == nil {
			_ = v.Int("rev", -1)
		}
	}
	for i := 0; i < nPaths; i++ {
		readReal(i) // warm every memo before the allocation gate
	}

	// Hard gates: warm reads allocate nothing, at either layer.
	r.metric("allocs_per_proxy_read", testing.AllocsPerRun(200, func() {
		if res := px.Read(paths[0]); !res.OK {
			panic("readpath: cold proxy read")
		}
	}), 0, true)
	r.metric("allocs_per_client_get", testing.AllocsPerRun(200, func() {
		if _, err := cl.Get(ctx, paths[1]); err != nil {
			panic("readpath: cold client get")
		}
	}), 0, true)

	// Bind a trace per path so commit/apply/materialize/first-read events
	// correlate into the commit-to-read freshness histogram. Bound after
	// warm-up: the histogram should measure versions landing under the
	// live read storm, not the rig's deliberate warm-up waits.
	for _, p := range paths {
		reg.BindPath(p, reg.StartTrace("readpath "+p, net.Now()))
	}

	window := 400 * time.Millisecond
	if opts.Quick {
		window = 150 * time.Millisecond
	}

	legacy := &legacyStore{m: make(map[string][]byte)}
	for _, p := range paths {
		legacy.write(p, readpathPayload(p, 1))
	}
	readLegacy := func(i int) { legacy.read(paths[i%nPaths]) }

	levels := []struct{ readers, writers int }{{1, 1}, {8, 2}, {32, 4}}
	var report ReadpathReport
	report.Workload.Paths = nPaths
	report.Workload.PayloadBytes = len(readpathPayload(paths[0], 1))
	report.Workload.WindowMs = int(window / time.Millisecond)

	var b strings.Builder
	fmt.Fprintf(&b, "read storm over %d paths (%dB payloads), %v per level, live commit churn\n\n",
		nPaths, report.Workload.PayloadBytes, window)
	fmt.Fprintf(&b, "%8s %8s %14s %14s %9s %10s %10s\n",
		"readers", "writers", "reads/s", "baseline/s", "speedup", "p50", "p99")
	rev := 1
	for _, lev := range levels {
		writers := lev.writers
		lv := readpathMeasure(lev.readers, window, readReal, func(deadline time.Time) {
			for time.Now().Before(deadline) {
				rev++
				for w := 0; w < writers; w++ {
					commit(paths[w%nPaths], rev)
				}
				net.RunFor(250 * time.Millisecond)
				time.Sleep(time.Millisecond)
			}
		})
		// Drain: let in-flight pushes land and read every path once, so a
		// version committed at the window edge gets its first read now
		// rather than a (virtual) level later.
		net.RunFor(2 * time.Second)
		for i := 0; i < nPaths; i++ {
			readReal(i)
		}
		base := readpathMeasure(lev.readers, window, readLegacy, func(deadline time.Time) {
			i := 0
			for time.Now().Before(deadline) {
				i++
				for w := 0; w < writers; w++ {
					legacy.write(paths[w%nPaths], readpathPayload(paths[w%nPaths], i))
				}
				time.Sleep(time.Millisecond)
			}
		})
		lv.Writers = writers
		lv.BaselineReadsPerSec = base.ReadsPerSec
		if base.ReadsPerSec > 0 {
			lv.Speedup = lv.ReadsPerSec / base.ReadsPerSec
		}
		report.Levels = append(report.Levels, lv)
		fmt.Fprintf(&b, "%8d %8d %14.0f %14.0f %8.1fx %10s %10s\n",
			lv.Readers, lv.Writers, lv.ReadsPerSec, lv.BaselineReadsPerSec, lv.Speedup,
			time.Duration(lv.ReadP50Ns).Round(10*time.Nanosecond),
			time.Duration(lv.ReadP99Ns).Round(10*time.Nanosecond))
	}

	report.AllocsPerRead = r.Metrics["allocs_per_proxy_read"]
	report.AllocsPerGet = r.Metrics["allocs_per_client_get"]
	h := reg.Histogram(obs.HistCommitToRead)
	report.Freshness.Samples = int64(h.Count())
	report.Freshness.CommitToReadP50Ms = h.Quantile(0.50).Seconds() * 1e3
	report.Freshness.CommitToReadP99Ms = h.Quantile(0.99).Seconds() * 1e3
	report.Decode.Decodes = reg.Counters().Get("confclient.parse.decode")
	report.Decode.HashHits = reg.Counters().Get("confclient.parse.memo")
	report.Decode.MemoHits = cl.MemoHits()
	report.Decode.Reads = cl.Hits()

	fmt.Fprintf(&b, "\nfreshness: commit-to-read p50=%.1fms p99=%.1fms over %d versions\n",
		report.Freshness.CommitToReadP50Ms, report.Freshness.CommitToReadP99Ms, report.Freshness.Samples)
	fmt.Fprintf(&b, "decode economy: %d reads, %d memo hits, %d unmarshals (%d saved by content hash)\n",
		report.Decode.Reads, report.Decode.MemoHits, report.Decode.Decodes, report.Decode.HashHits)

	last := report.Levels[len(report.Levels)-1]
	r.metric("reads_per_sec_32r", last.ReadsPerSec, 0, false)
	r.metric("baseline_reads_per_sec_32r", last.BaselineReadsPerSec, 0, false)
	r.metric("speedup_32r", last.Speedup, 0, false)
	r.metric("read_p99_ns_32r", last.ReadP99Ns, 0, false)
	r.metric("commit_to_read_p99_ms", report.Freshness.CommitToReadP99Ms, 0, false)
	r.metric("decode_per_read", float64(report.Decode.Decodes)/float64(max64(report.Decode.Reads, 1)), 0, false)

	r.Text = b.String()
	data, _ := json.MarshalIndent(report, "", "  ")
	r.ArtifactName = "BENCH_readpath.json"
	r.Artifact = data
	return r
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
