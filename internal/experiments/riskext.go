package experiments

import (
	"fmt"
	"sort"
	"strings"

	"configerator/internal/riskadvisor"
	"configerator/internal/stats"
	"configerator/internal/workload"
)

// ExtensionRiskAdvisor evaluates the §8 future-work feature on the
// paper-calibrated workload: replay the generated repository history
// through the risk advisor and measure how often each signal fires. The
// paper motivates the feature with its own data ("old configs do get
// updated … flag high-risk updates based on the past history, e.g., a
// dormant config is suddenly changed"), so the interesting readout is the
// advisory volume: flags must be common enough to matter and rare enough
// to stay readable in review.
func ExtensionRiskAdvisor(opts Options) Result {
	r := Result{ID: "ext-riskadvisor", Title: "Risk-advisor flag rates over the calibrated history"}
	h := history(opts)
	adv := riskadvisor.New(riskadvisor.DefaultThresholds())

	// Replay all updates in global time order.
	type event struct {
		cfg *workload.Config
		u   workload.Update
	}
	var events []event
	for _, c := range h.Configs {
		for _, u := range c.Updates {
			events = append(events, event{cfg: c, u: u})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].u.Time.Before(events[j].u.Time) })

	pathOf := func(c *workload.Config) string { return fmt.Sprintf("cfg/%06d.json", c.ID) }
	flagCounts := map[riskadvisor.FlagKind]int{}
	flaggedUpdates := 0
	for _, ev := range events {
		flags := adv.Assess(pathOf(ev.cfg), ev.u.Author, ev.u.LineChanges, ev.u.Time)
		if len(flags) > 0 {
			flaggedUpdates++
		}
		for _, f := range flags {
			flagCounts[f.Kind]++
		}
		adv.Observe(pathOf(ev.cfg), ev.u.Author, ev.u.LineChanges, ev.u.Time)
	}
	total := len(events)

	// Cross-validate the dormancy signal against an independent analytic
	// count over the same history: updates whose gap since the config's
	// previous update meets the threshold.
	expectedDormant := 0
	threshold := riskadvisor.DefaultThresholds().DormancyAge
	for _, c := range h.Configs {
		for i := 1; i < len(c.Updates); i++ {
			if c.Updates[i].Time.Sub(c.Updates[i-1].Time) >= threshold {
				expectedDormant++
			}
		}
	}

	var b strings.Builder
	tab := stats.NewTable("Flag volume over the replayed history:", "signal", "fired", "per-1000 updates")
	for _, kind := range []riskadvisor.FlagKind{
		riskadvisor.FlagDormantChange, riskadvisor.FlagUnusualSize,
		riskadvisor.FlagHighlyShared, riskadvisor.FlagNewAuthor,
	} {
		tab.AddRawRow(string(kind), flagCounts[kind],
			fmt.Sprintf("%.1f", 1000*float64(flagCounts[kind])/float64(total)))
	}
	b.WriteString(tab.String())
	fmt.Fprintf(&b, "\n%d updates replayed; %.1f%% carried at least one advisory flag\n",
		total, 100*float64(flaggedUpdates)/float64(total))
	fmt.Fprintf(&b, "dormancy cross-check: advisor flagged %d vs %d analytically dormant updates\n",
		flagCounts[riskadvisor.FlagDormantChange], expectedDormant)
	r.Text = b.String()
	r.metric("flagged_update_fraction", float64(flaggedUpdates)/float64(total), 0, false)
	r.metric("dormant_flags_per_1000", 1000*float64(flagCounts[riskadvisor.FlagDormantChange])/float64(total), 0, false)
	r.metric("unusual_size_flags_per_1000", 1000*float64(flagCounts[riskadvisor.FlagUnusualSize])/float64(total), 0, false)
	r.metric("highly_shared_flags_per_1000", 1000*float64(flagCounts[riskadvisor.FlagHighlyShared])/float64(total), 0, false)
	r.metric("new_author_flags_per_1000", 1000*float64(flagCounts[riskadvisor.FlagNewAuthor])/float64(total), 0, false)
	ratio := 0.0
	if expectedDormant > 0 {
		ratio = float64(flagCounts[riskadvisor.FlagDormantChange]) / float64(expectedDormant)
	}
	r.metric("dormant_vs_analytic_ratio", ratio, 1.0, true)
	return r
}
