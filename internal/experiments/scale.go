package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"configerator/internal/gatekeeper"
	"configerator/internal/mobileconfig"
	"configerator/internal/proxy"
	"configerator/internal/simnet"
	"configerator/internal/stats"
	"configerator/internal/zeus"
)

// ScaleReport is the BENCH_scale.json schema: the fleet-scale simnet core
// (timer wheel, pooled events, dense node table — DESIGN.md §14) carrying
// the paper's headline fleets. Two scenarios, each run twice with the same
// seed to prove determinism at scale:
//
//   - push: the §6.3 propagation curve — one config commit reaching 100k
//     proxies through the leader → observer → proxy tree (the paper:
//     "hundreds of thousands of servers in ~4.5 s").
//   - mobile: the §5 pull/push hybrid at 1M devices — staggered hourly-
//     style polls, an emergency mapping change pushed as an unreliable
//     "pull now" hint, stragglers healed by their next regular poll.
type ScaleReport struct {
	Quick bool   `json:"quick"`
	Seed  uint64 `json:"seed"`

	Push   ScalePush   `json:"push"`
	Mobile ScaleMobile `json:"mobile"`

	// Warm steady-state micro gates (testing.AllocsPerRun on a 2-node net).
	AllocsPerSend  float64 `json:"allocs_per_send"`
	AllocsPerTimer float64 `json:"allocs_per_timer"`
}

// ScaleRun is the common per-scenario accounting block.
type ScaleRun struct {
	WallSeconds    float64 `json:"wall_seconds"`
	Events         uint64  `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesOnWire    uint64  `json:"bytes_on_wire"`
	Delivered      uint64  `json:"delivered"`
	Dropped        uint64  `json:"dropped"`
	// Deterministic is true when a second run with the same seed produced
	// identical Delivered/Dropped/BytesSent.
	Deterministic bool `json:"deterministic"`
}

// ScalePush is the §6.3 propagation scenario.
type ScalePush struct {
	Proxies      int `json:"proxies"`
	Observers    int `json:"observers"`
	Regions      int `json:"regions"`
	Clusters     int `json:"clusters"`
	PayloadBytes int `json:"payload_bytes"`

	ConvergedFrac float64 `json:"converged_frac"`
	P50Seconds    float64 `json:"p50_seconds"`
	P99Seconds    float64 `json:"p99_seconds"`
	MaxSeconds    float64 `json:"max_seconds"`

	Run ScaleRun `json:"run"`
}

// ScaleMobile is the §5 pull/push hybrid scenario.
type ScaleMobile struct {
	Devices          int     `json:"devices"`
	Servers          int     `json:"servers"`
	PollIntervalMin  float64 `json:"poll_interval_min"`
	PushReachFrac    float64 `json:"push_reach_frac"`
	ReachedIn60sFrac float64 `json:"reached_in_60s_frac"`
	CatchupP99Sec    float64 `json:"catchup_p99_seconds"`
	CaughtUpByPoll   bool    `json:"caught_up_by_poll"`
	NotModifiedFrac  float64 `json:"not_modified_frac"`

	Run ScaleRun `json:"run"`
}

// runMeter measures one scenario's event-processing phase: wall clock,
// events processed, and heap allocations per event (handlers included —
// the simnet core itself allocates zero per warm event).
type runMeter struct {
	start   time.Time
	mallocs uint64
	events  uint64
	net     *simnet.Network
}

func startMeter(net *simnet.Network) *runMeter {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &runMeter{start: time.Now(), mallocs: ms.Mallocs, events: net.Events, net: net}
}

func (m *runMeter) stop() ScaleRun {
	wall := time.Since(m.start).Seconds()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	events := m.net.Events - m.events
	run := ScaleRun{
		WallSeconds: wall,
		Events:      events,
		BytesOnWire: m.net.BytesSent,
		Delivered:   m.net.Delivered,
		Dropped:     m.net.Dropped,
	}
	if wall > 0 {
		run.EventsPerSec = float64(events) / wall
	}
	if events > 0 {
		run.AllocsPerEvent = float64(ms.Mallocs-m.mallocs) / float64(events)
	}
	return run
}

// scalePushOnce runs the §6.3 scenario once and returns the filled block.
//
// Topology: a 3-member ensemble in one cluster, regions × clustersPerRegion
// clusters with 2 observers each, perCluster proxies per cluster. The
// paper's 4.5 s is the scheduling spread of a fan-out to hundreds of
// thousands of subscribers, which the simulator's raw hop latencies do not
// model; it is calibrated here as per-link latency spreads — observers
// receive the leader's batch 1–3 s after commit (global pacing) and each
// proxy's watch event is staggered 0.2–1.0 s behind its observer (cluster
// pacing) — yielding the S-curve that tops out near the paper's number.
func scalePushOnce(seed uint64, regions, clustersPerRegion, perCluster, payload int) (ScalePush, ScaleRun) {
	net := simnet.New(simnet.DefaultLatency(), seed)
	zkPlace := simnet.Placement{Region: "r0", Cluster: "zk"}
	ens := zeus.StartEnsemble(net, 3, []simnet.Placement{zkPlace})
	net.RunFor(12 * time.Second)

	nObs := 0
	obsByCluster := make(map[string][]simnet.NodeID)
	for r := 0; r < regions; r++ {
		for c := 0; c < clustersPerRegion; c++ {
			place := simnet.Placement{
				Region:  fmt.Sprintf("r%d", r),
				Cluster: fmt.Sprintf("c%d", c),
			}
			key := place.Region + "/" + place.Cluster
			for k := 0; k < 2; k++ {
				id := simnet.NodeID(fmt.Sprintf("obs-%d-%d-%d", r, c, k))
				ens.AddObserver(id, place)
				obsByCluster[key] = append(obsByCluster[key], id)
				for _, m := range ens.Members {
					extra := time.Second + time.Duration(nObs)*2*time.Second/time.Duration(2*regions*clustersPerRegion)
					net.SetLinkLatency(m, id, extra)
				}
				nObs++
			}
		}
	}
	net.RunFor(10 * time.Second)

	const path = "/scale/push/knob.json"
	writer := zeus.NewClient("writer", ens.Members)
	net.AddNode("writer", zkPlace, writer)
	body := strings.Repeat("x", payload-16)
	commit := func(rev int) {
		net.After(0, func() {
			ctx := simnet.MakeContext(net, "writer")
			writer.Write(&ctx, path, []byte(fmt.Sprintf(`{"rev":%06d,"p":"%s"}`, rev, body)), nil)
		})
	}
	commit(1)
	net.RunFor(10 * time.Second)

	proxies := make([]*proxy.Proxy, 0, regions*clustersPerRegion*perCluster)
	for r := 0; r < regions; r++ {
		for c := 0; c < clustersPerRegion; c++ {
			place := simnet.Placement{
				Region:  fmt.Sprintf("r%d", r),
				Cluster: fmt.Sprintf("c%d", c),
			}
			obs := obsByCluster[place.Region+"/"+place.Cluster]
			for k := 0; k < perCluster; k++ {
				id := simnet.NodeID(fmt.Sprintf("px-%d-%d-%05d", r, c, k))
				px := proxy.New(net, id, place, obs, nil)
				spread := 200*time.Millisecond + time.Duration(k)*800*time.Millisecond/time.Duration(perCluster)
				for _, o := range obs {
					net.SetLinkLatency(o, id, spread)
				}
				px.Want(path)
				proxies = append(proxies, px)
			}
		}
	}
	net.RunFor(15 * time.Second) // warm: every proxy fetches rev 1 with a watch

	base := make([]uint64, len(proxies))
	for i, px := range proxies {
		base[i] = px.WatchEvents
	}

	meter := startMeter(net)
	t0 := net.Now()
	commit(2)
	converged := make([]bool, len(proxies))
	left := len(proxies)
	cdf := stats.NewCDF()
	for tick := 0; tick < 1200 && left > 0; tick++ {
		net.RunFor(25 * time.Millisecond)
		since := net.Now().Sub(t0).Seconds()
		for i, px := range proxies {
			if !converged[i] && px.WatchEvents > base[i] {
				converged[i] = true
				cdf.Add(since)
				left--
			}
		}
	}
	run := meter.stop()

	p := ScalePush{
		Proxies:       len(proxies),
		Observers:     nObs,
		Regions:       regions,
		Clusters:      regions * clustersPerRegion,
		PayloadBytes:  payload,
		ConvergedFrac: float64(len(proxies)-left) / float64(len(proxies)),
		P50Seconds:    cdf.Quantile(0.50),
		P99Seconds:    cdf.Quantile(0.99),
		MaxSeconds:    cdf.Max(),
	}
	return p, run
}

// scaleMobileOnce runs the §5 hybrid once. Devices poll their translation
// server every pollInterval with first polls staggered across the whole
// interval; at changeAt the mapping is updated fleet-wide and each server
// pushes a "pull now" hint to the ~90% of its devices the unreliable push
// channel reaches. The rest catch up at their next regular poll.
func scaleMobileOnce(seed uint64, devices, servers int) (ScaleMobile, ScaleRun) {
	const pollInterval = 20 * time.Minute
	net := simnet.New(simnet.DefaultLatency(), seed)
	rng := stats.NewRNG(seed * 7919)

	mapping := func(retries int) []byte {
		m := mobileconfig.Mapping{Config: "main", Fields: map[string]mobileconfig.FieldBinding{
			"FEATURE_X":   {Backend: mobileconfig.BackendConstant, Value: true},
			"MAX_RETRIES": {Backend: mobileconfig.BackendConstant, Value: retries},
			"UPLOAD_KBPS": {Backend: mobileconfig.BackendConstant, Value: 256},
		}}
		return m.Encode()
	}
	fields := []string{"FEATURE_X", "MAX_RETRIES", "UPLOAD_KBPS"}
	user := &gatekeeper.User{}
	users := func(id int64) *gatekeeper.User { user.ID = id; return user }

	srvs := make([]*mobileconfig.Server, servers)
	trs := make([]*mobileconfig.Translator, servers)
	var schemaHash uint64
	for s := 0; s < servers; s++ {
		tr := mobileconfig.NewTranslator(nil, nil)
		if err := tr.LoadMapping(mapping(3)); err != nil {
			panic(err)
		}
		trs[s] = tr
		schemaHash = tr.RegisterSchema(fields)
		place := simnet.Placement{
			Region:  fmt.Sprintf("mr%d", s%4),
			Cluster: fmt.Sprintf("mc%d", s/4),
		}
		srvs[s] = mobileconfig.NewServer(net, simnet.NodeID(fmt.Sprintf("tserv-%02d", s)), place, tr, users)
	}

	devs := make([]*mobileconfig.Device, devices)
	devIDs := make([][]simnet.NodeID, servers) // per server, in creation order
	for i := 0; i < devices; i++ {
		s := i % servers
		id := simnet.NodeID(fmt.Sprintf("dev-%07d", i))
		place := net.Placement(srvs[s].ID())
		first := time.Duration(rng.Intn(int(pollInterval)))
		d := mobileconfig.NewDeviceAt(net, id, place, srvs[s].ID(), "main", int64(i), schemaHash, first)
		d.SetPollInterval(pollInterval)
		devs[i] = d
		devIDs[s] = append(devIDs[s], id)
	}

	meter := startMeter(net)
	net.RunFor(pollInterval + time.Minute) // warm: every device pulls rev 1

	// Emergency change: remap MAX_RETRIES fleet-wide and push the hint.
	// (Mapping distribution itself rides configerator — §4's plane, modeled
	// in the distribution experiment; here it lands on every server at once.)
	for _, tr := range trs {
		if err := tr.LoadMapping(mapping(5)); err != nil {
			panic(err)
		}
	}
	pushAt := net.Now()
	pushed := 0
	for s, srv := range srvs {
		reach := make([]simnet.NodeID, 0, len(devIDs[s]))
		for _, id := range devIDs[s] {
			if rng.Float64() < 0.9 { // unreliable push channel
				reach = append(reach, id)
			}
		}
		ctx := simnet.MakeContext(net, srv.ID())
		srv.Push(&ctx, "main", reach)
		pushed += len(reach)
	}

	converged := make([]bool, devices)
	left := devices
	cdf := stats.NewCDF()
	reached60 := 0
	sample := func() {
		since := net.Now().Sub(pushAt).Seconds()
		for i, d := range devs {
			if !converged[i] && d.Updates >= 2 {
				converged[i] = true
				cdf.Add(since)
				left--
				if since <= 60 {
					reached60++
				}
			}
		}
	}
	for tick := 0; tick < 30 && left > 0; tick++ { // fine grid over the push minute
		net.RunFor(2 * time.Second)
		sample()
	}
	for tick := 0; tick < 80 && left > 0; tick++ { // coarse grid over the poll catch-up
		net.RunFor(20 * time.Second)
		sample()
	}
	run := meter.stop()

	var polls, notMod uint64
	for _, s := range srvs {
		polls += s.Polls
		notMod += s.NotModified
	}
	m := ScaleMobile{
		Devices:          devices,
		Servers:          servers,
		PollIntervalMin:  pollInterval.Minutes(),
		PushReachFrac:    float64(pushed) / float64(devices),
		ReachedIn60sFrac: float64(reached60) / float64(devices),
		CatchupP99Sec:    cdf.Quantile(0.99),
		CaughtUpByPoll:   left == 0,
		NotModifiedFrac:  float64(notMod) / float64(polls),
	}
	return m, run
}

// Scale is the fleet-scale experiment behind BENCH_scale.json.
func Scale(opts Options) Result {
	r := Result{ID: "scale", Title: "Fleet-scale simnet: 100k-proxy §6.3 push and 1M-device §5 hybrid"}
	regions, clustersPerRegion, perCluster := 5, 4, 5000 // 100k proxies
	devices, servers := 1_000_000, 20
	if opts.Quick {
		perCluster = 200 // 4k proxies
		devices = 20_000
	}

	report := ScaleReport{Quick: opts.Quick, Seed: opts.Seed}

	push1, run1 := scalePushOnce(opts.Seed, regions, clustersPerRegion, perCluster, 2048)
	_, run1b := scalePushOnce(opts.Seed, regions, clustersPerRegion, perCluster, 2048)
	run1.Deterministic = run1.Delivered == run1b.Delivered &&
		run1.Dropped == run1b.Dropped && run1.BytesOnWire == run1b.BytesOnWire
	push1.Run = run1
	report.Push = push1

	mob1, mrun1 := scaleMobileOnce(opts.Seed, devices, servers)
	_, mrun1b := scaleMobileOnce(opts.Seed, devices, servers)
	mrun1.Deterministic = mrun1.Delivered == mrun1b.Delivered &&
		mrun1.Dropped == mrun1b.Dropped && mrun1.BytesOnWire == mrun1b.BytesOnWire
	mob1.Run = mrun1
	report.Mobile = mob1

	report.AllocsPerSend, report.AllocsPerTimer = scaleMicroAllocs()

	var b strings.Builder
	fmt.Fprintf(&b, "push: %d proxies, %d observers, %d clusters — converged %.1f%%, p50 %.2fs p99 %.2fs max %.2fs\n",
		push1.Proxies, push1.Observers, push1.Clusters, 100*push1.ConvergedFrac,
		push1.P50Seconds, push1.P99Seconds, push1.MaxSeconds)
	fmt.Fprintf(&b, "      wall %.1fs, %.2fM events (%.2fM events/s), %.1f allocs/event, %.1f MB on wire, deterministic=%v\n",
		run1.WallSeconds, float64(run1.Events)/1e6, run1.EventsPerSec/1e6,
		run1.AllocsPerEvent, float64(run1.BytesOnWire)/1e6, run1.Deterministic)
	fmt.Fprintf(&b, "mobile: %d devices / %d servers — push reached %.1f%%, %.1f%% updated in 60s, catch-up p99 %.0fs, all by next poll=%v, not-modified %.1f%%\n",
		mob1.Devices, mob1.Servers, 100*mob1.PushReachFrac, 100*mob1.ReachedIn60sFrac,
		mob1.CatchupP99Sec, mob1.CaughtUpByPoll, 100*mob1.NotModifiedFrac)
	fmt.Fprintf(&b, "       wall %.1fs, %.2fM events (%.2fM events/s), %.1f allocs/event, %.1f MB on wire, deterministic=%v\n",
		mrun1.WallSeconds, float64(mrun1.Events)/1e6, mrun1.EventsPerSec/1e6,
		mrun1.AllocsPerEvent, float64(mrun1.BytesOnWire)/1e6, mrun1.Deterministic)
	fmt.Fprintf(&b, "core:  %.0f allocs per warm Send, %.0f per warm SetTimer\n",
		report.AllocsPerSend, report.AllocsPerTimer)
	r.Text = b.String()

	r.metric("push_proxies", float64(push1.Proxies), 0, false)
	r.metric("push_p99_s", push1.P99Seconds, 4.5, true)
	r.metric("push_converged_frac", push1.ConvergedFrac, 1.0, true)
	r.metric("push_events_per_sec", run1.EventsPerSec, 0, false)
	r.metric("mobile_devices", float64(mob1.Devices), 0, false)
	r.metric("mobile_reached_60s_frac", mob1.ReachedIn60sFrac, 0, false)
	r.metric("mobile_events_per_sec", mrun1.EventsPerSec, 0, false)
	r.metric("allocs_per_send", report.AllocsPerSend, 0, true)
	r.metric("allocs_per_timer", report.AllocsPerTimer, 0, true)

	data, _ := json.MarshalIndent(report, "", "  ")
	r.ArtifactName = "BENCH_scale.json"
	r.Artifact = data
	return r
}

// scaleMicroAllocs measures warm-path allocations on a minimal net: after
// warmup, Send+Step and SetTimer+Step must not allocate at all (events come
// from the freelist, link state from pre-grown maps).
func scaleMicroAllocs() (send, timer float64) {
	net := simnet.New(simnet.DefaultLatency(), 17)
	place := simnet.Placement{Region: "r", Cluster: "c"}
	h := simnet.HandlerFunc(func(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {})
	net.AddNode("a", place, h)
	net.AddNode("b", place, h)
	msg := &struct{}{}
	for i := 0; i < 1000; i++ {
		net.SendSized("a", "b", msg, 1024)
		net.Step()
	}
	send = allocsPerRun(1000, func() {
		net.SendSized("a", "b", msg, 1024)
		net.Step()
	})
	timer = allocsPerRun(1000, func() {
		net.SetTimer("a", time.Millisecond, msg)
		net.Step()
	})
	return send, timer
}

// allocsPerRun is testing.AllocsPerRun without the testing import.
func allocsPerRun(runs int, f func()) float64 {
	f() // warm
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}
