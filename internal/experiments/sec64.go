package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"configerator/internal/cluster"
	"configerator/internal/core"
	"configerator/internal/faultinject"
	"configerator/internal/stats"
)

// Sec64ConfigErrors reproduces the §6.4 configuration-error analysis: a
// calibrated mix of Type I/II/III errors is injected through the full
// pipeline; the harness reports which defense layer caught each one and
// checks that the escapes (the would-be production incidents) split
// roughly like the paper's 42% / 36% / 22%.
func Sec64ConfigErrors(opts Options) Result {
	r := Result{ID: "sec6.4", Title: "Configuration-error incidents by type and defense layer"}
	n := 150
	if opts.Quick {
		n = 100
	}
	fleet := cluster.New(cluster.SmallConfig(15, opts.Seed)) // 60 servers
	fleet.Net.RunFor(10 * time.Second)
	p := core.New(core.Options{Fleet: fleet, CanaryPhase1: 2, CanaryPhase2: 30})
	c := faultinject.NewCampaign(p, faultinject.WithSeed(opts.Seed))
	if err := c.Seed(); err != nil {
		panic(err)
	}
	outcomes := c.Run(n)
	s := faultinject.Summarize(outcomes)

	var b strings.Builder
	fmt.Fprintf(&b, "%d injected errors\n\n", s.Total)
	layerTab := stats.NewTable("Catches by defense layer:", "layer", "count")
	layers := make([]string, 0, len(s.ByLayer))
	for l := range s.ByLayer {
		layers = append(layers, l)
	}
	sort.Strings(layers)
	for _, l := range layers {
		layerTab.AddRawRow(l, s.ByLayer[l])
	}
	b.WriteString(layerTab.String())
	b.WriteString("\n")
	mixTab := stats.NewTable("Escaped-to-production mix (the paper's incident breakdown):",
		"type", "paper", "measured")
	mixTab.AddRow("Type I: common config errors", 0.42, s.EscapeMix[faultinject.TypeI])
	mixTab.AddRow("Type II: subtle config errors", 0.36, s.EscapeMix[faultinject.TypeII])
	mixTab.AddRow("Type III: valid configs exposing code bugs", 0.22, s.EscapeMix[faultinject.TypeIII])
	b.WriteString(mixTab.String())
	r.Text = b.String()
	r.metric("escape_share_type1", s.EscapeMix[faultinject.TypeI], 0.42, true)
	r.metric("escape_share_type2", s.EscapeMix[faultinject.TypeII], 0.36, true)
	r.metric("escape_share_type3", s.EscapeMix[faultinject.TypeIII], 0.22, true)
	r.metric("validator_catches", float64(s.ByLayer[faultinject.CaughtByValidator]), 0, false)
	r.metric("canary_phase2_catches", float64(s.ByLayer[faultinject.CaughtByCanary2]), 0, false)
	r.metric("escaped_total", float64(s.ByLayer[faultinject.Escaped]), 0, false)
	return r
}
