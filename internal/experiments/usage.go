package experiments

import (
	"fmt"
	"strings"

	"configerator/internal/stats"
	"configerator/internal/workload"
)

// sharedHistory caches the generated history per (seed, quick) so the
// seven usage-statistics experiments analyze one population, exactly as
// the paper's §6.1-6.2 statistics all describe one repository.
var histCache = map[[2]uint64]*workload.History{}

func history(opts Options) *workload.History {
	key := [2]uint64{opts.Seed, 0}
	if opts.Quick {
		key[1] = 1
	}
	if h, ok := histCache[key]; ok {
		return h
	}
	p := workload.Params{Seed: opts.Seed, Days: 1400, ScalePerDay: 2.0,
		MigrationDay: 900, MigrationConfigs: 1500}
	if opts.Quick {
		p.ScalePerDay = 0.8
		p.MigrationConfigs = 500
	}
	h := workload.Generate(p)
	histCache[key] = h
	return h
}

// Fig7ConfigGrowth reproduces Figure 7: the number of configs in the
// repository over ~1400 days, compiled vs raw, with the Gatekeeper
// migration step.
func Fig7ConfigGrowth(opts Options) Result {
	h := history(opts)
	points := h.Fig7ConfigGrowth()
	r := Result{ID: "fig7", Title: "Number of configs in the repository over time"}
	var total, compiled stats.Series
	total.Name = "total configs"
	compiled.Name = "compiled configs"
	var raw stats.Series
	raw.Name = "raw configs"
	for _, pt := range points {
		total.Add(float64(pt.Day), float64(pt.Total))
		compiled.Add(float64(pt.Day), float64(pt.Compiled))
		raw.Add(float64(pt.Day), float64(pt.Raw))
	}
	last := points[len(points)-1]
	mid := points[len(points)/2]
	var b strings.Builder
	b.WriteString(total.Sparkline(60) + "\n")
	b.WriteString(compiled.Sparkline(60) + "\n")
	b.WriteString(raw.Sparkline(60) + "\n")
	fmt.Fprintf(&b, "day %4d: total=%d compiled=%d raw=%d\n", mid.Day, mid.Total, mid.Compiled, mid.Raw)
	fmt.Fprintf(&b, "day %4d: total=%d compiled=%d raw=%d\n", last.Day, last.Total, last.Compiled, last.Raw)
	r.Text = b.String()
	r.metric("compiled_share_at_end", float64(last.Compiled)/float64(last.Total), 0.75, true)
	r.metric("growth_second_half_vs_first", float64(last.Total-mid.Total)/float64(mid.Total), 0, false)
	r.metric("migration_step_configs", float64(points[901].Total-points[899].Total), 0, false)
	return r
}

// Fig8ConfigSizes reproduces Figure 8: the CDF of config size for raw and
// compiled configs.
func Fig8ConfigSizes(opts Options) Result {
	h := history(opts)
	raw, compiled := h.Fig8SizeCDFs()
	r := Result{ID: "fig8", Title: "CDF of config size (bytes)"}
	points := []float64{100, 200, 400, 800, 1000, 2000, 5000, 10000, 25000, 45000, 100000, 1000000}
	var b strings.Builder
	b.WriteString("size(B)\traw CDF\tcompiled CDF\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%7.0f\t%5.1f%%\t%5.1f%%\n", p,
			100*raw.FractionAtMost(p), 100*compiled.FractionAtMost(p))
	}
	r.Text = b.String()
	r.metric("raw_p50_bytes", raw.Quantile(0.5), 400, true)
	r.metric("compiled_p50_bytes", compiled.Quantile(0.5), 1000, true)
	r.metric("raw_p95_bytes", raw.Quantile(0.95), 25000, true)
	r.metric("compiled_p95_bytes", compiled.Quantile(0.95), 45000, true)
	return r
}

// Fig9Freshness reproduces Figure 9: days since each config was last
// modified.
func Fig9Freshness(opts Options) Result {
	h := history(opts)
	cdf := h.Fig9Freshness()
	r := Result{ID: "fig9", Title: "Freshness of configs (days since last modified)"}
	var b strings.Builder
	b.WriteString("days\tCDF\n")
	for _, d := range []float64{1, 5, 10, 20, 30, 60, 90, 120, 150, 200, 300, 400, 500, 600, 700} {
		fmt.Fprintf(&b, "%4.0f\t%5.1f%%\n", d, 100*cdf.FractionAtMost(d))
	}
	r.Text = b.String()
	r.metric("touched_within_90d", cdf.FractionAtMost(90), 0.28, true)
	r.metric("untouched_for_300d", 1-cdf.FractionAtMost(300), 0.35, true)
	return r
}

// Fig10AgeAtUpdate reproduces Figure 10: a config's age at update time.
func Fig10AgeAtUpdate(opts Options) Result {
	h := history(opts)
	cdf := h.Fig10AgeAtUpdate()
	r := Result{ID: "fig10", Title: "Age of a config at the time of an update (days)"}
	var b strings.Builder
	b.WriteString("age(days)\tCDF of updates\n")
	for _, d := range []float64{1, 5, 10, 20, 30, 60, 90, 120, 150, 200, 300, 400, 500, 600, 700} {
		fmt.Fprintf(&b, "%8.0f\t%5.1f%%\n", d, 100*cdf.FractionAtMost(d))
	}
	r.Text = b.String()
	r.metric("updates_on_configs_younger_60d", cdf.FractionAtMost(60), 0.29, true)
	r.metric("updates_on_configs_older_300d", 1-cdf.FractionAtMost(300), 0.29, true)
	return r
}

// Table1UpdatesPerConfig reproduces Table 1.
func Table1UpdatesPerConfig(opts Options) Result {
	h := history(opts)
	compiled, raw := h.Table1UpdatesPerConfig()
	r := Result{ID: "table1", Title: "Number of times a config gets updated (writes in lifetime)"}
	tab := stats.NewTable("", "writes", "compiled", "raw")
	type row struct {
		label  string
		lo, hi int
	}
	rows := []row{{"1", 1, 1}, {"2", 2, 2}, {"3", 3, 3}, {"4", 4, 4},
		{"[5,10]", 5, 10}, {"[11,100]", 11, 100}, {"[101,1000]", 101, 1000},
		{"[1001,inf)", 1001, 1 << 30}}
	for _, rw := range rows {
		tab.AddRow(rw.label, compiled.FractionInRange(rw.lo, rw.hi), raw.FractionInRange(rw.lo, rw.hi))
	}
	r.Text = tab.String()
	r.metric("compiled_written_once", compiled.FractionExactly(1), 0.250, true)
	r.metric("raw_written_once", raw.FractionExactly(1), 0.569, true)
	r.metric("raw_top1pct_update_share", h.TopUpdateShare(workload.KindRaw, 0.01), 0.928, true)
	r.metric("compiled_top1pct_update_share", h.TopUpdateShare(workload.KindCompiled, 0.01), 0.645, true)
	r.metric("raw_automated_update_fraction", h.AutomatedUpdateFraction(workload.KindRaw), 0.89, true)
	return r
}

// Table2LineChanges reproduces Table 2.
func Table2LineChanges(opts Options) Result {
	h := history(opts)
	compiled := h.Table2LineChanges(workload.KindCompiled)
	raw := h.Table2LineChanges(workload.KindRaw)
	r := Result{ID: "table2", Title: "Number of line changes in a config update"}
	tab := stats.NewTable("", "lines", "compiled", "raw")
	type row struct {
		label  string
		lo, hi int
	}
	rows := []row{{"1", 1, 1}, {"2", 2, 2}, {"[3,4]", 3, 4}, {"[5,6]", 5, 6},
		{"[7,10]", 7, 10}, {"[11,50]", 11, 50}, {"[51,100]", 51, 100}, {"[101,inf)", 101, 1 << 30}}
	for _, rw := range rows {
		tab.AddRow(rw.label, compiled.FractionInRange(rw.lo, rw.hi), raw.FractionInRange(rw.lo, rw.hi))
	}
	r.Text = tab.String()
	r.metric("compiled_two_line_updates", compiled.FractionExactly(2), 0.495, true)
	r.metric("compiled_over_100_lines", compiled.FractionInRange(101, 1<<30), 0.087, true)
	r.metric("raw_two_line_updates", raw.FractionExactly(2), 0.486, true)
	return r
}

// Table3CoAuthors reproduces Table 3.
func Table3CoAuthors(opts Options) Result {
	h := history(opts)
	compiled := h.Table3CoAuthors(workload.KindCompiled)
	raw := h.Table3CoAuthors(workload.KindRaw)
	r := Result{ID: "table3", Title: "Number of co-authors of configs"}
	tab := stats.NewTable("", "authors", "compiled", "raw")
	type row struct {
		label  string
		lo, hi int
	}
	rows := []row{{"1", 1, 1}, {"2", 2, 2}, {"3", 3, 3}, {"4", 4, 4},
		{"[5,10]", 5, 10}, {"[11,50]", 11, 50}, {"[51,100]", 51, 100}, {"[101,inf)", 101, 1 << 30}}
	for _, rw := range rows {
		tab.AddRow(rw.label, compiled.FractionInRange(rw.lo, rw.hi), raw.FractionInRange(rw.lo, rw.hi))
	}
	r.Text = tab.String()
	r.metric("compiled_single_author", compiled.FractionExactly(1), 0.495, true)
	r.metric("raw_single_author", raw.FractionExactly(1), 0.700, true)
	r.metric("compiled_1_2_authors", compiled.FractionInRange(1, 2), 0.796, true)
	r.metric("raw_1_2_authors", raw.FractionInRange(1, 2), 0.915, true)
	return r
}
