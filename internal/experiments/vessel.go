package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"configerator/internal/packagevessel"
	"configerator/internal/packagevessel/blob"
	"configerator/internal/simnet"
	"configerator/internal/vcs"
)

// VesselReport is the raw artifact behind BENCH_vessel.json: the
// content-addressed PackageVessel measured against the three claims the
// redesign is accountable for — §5's fleet-wide <4 min delivery at 10k
// agents, cross-version dedup cutting a delta publish to a fraction of
// the full package's bytes, and crash-resume that never re-fetches a
// chunk the journal already verified. Every number is a deterministic
// function of the seed; the Determinism block proves it by running the
// scenarios twice and comparing state fingerprints.
type VesselReport struct {
	Fleet struct {
		Agents        int     `json:"agents"`
		PackageMB     int     `json:"package_mb"`
		ChunkMB       int     `json:"chunk_mb"`
		P50Seconds    float64 `json:"p50_seconds"`
		P90Seconds    float64 `json:"p90_seconds"`
		P99Seconds    float64 `json:"p99_seconds"`
		MaxSeconds    float64 `json:"max_seconds"`
		Under4Min     bool    `json:"under_4min"`
		SameCluster   float64 `json:"same_cluster_chunk_frac"`
		RegistryShare float64 `json:"registry_served_share"`
		GrantWaste    float64 `json:"grant_waste_frac"`
		Fingerprint   string  `json:"fingerprint"`
	} `json:"fleet_delivery"`
	Delta struct {
		Agents         int     `json:"agents"`
		FullChunks     int     `json:"full_chunks"`
		ChangedFrac    float64 `json:"changed_frac"`
		PublishedNew   int     `json:"published_new_chunks"`
		PublishedDedup int     `json:"published_dedup_chunks"`
		WireFrac       float64 `json:"v2_wire_bytes_frac"`
		Under25Pct     bool    `json:"under_25pct"`
		Fingerprint    string  `json:"fingerprint"`
	} `json:"delta_publish"`
	Resume struct {
		ChunksTotal     int    `json:"chunks_total"`
		VerifiedOnDisk  int    `json:"verified_on_restart"`
		RefetchedAfter  int    `json:"refetched_after_restart"`
		LifetimeFetched int    `json:"lifetime_fetched"`
		Completed       bool   `json:"completed"`
		NoRefetch       bool   `json:"no_refetch_of_verified"`
		Fingerprint     string `json:"fingerprint"`
	} `json:"resume"`
	Determinism struct {
		Runs         int      `json:"runs_per_scenario"`
		Fingerprints []string `json:"fingerprints"`
		Identical    bool     `json:"identical"`
	} `json:"determinism"`
}

// fingerprint folds a stream of integers into a content hash, giving each
// scenario a single comparable digest of its observable outcome
// (completion times, chunk accounting, registry load).
type fingerprint struct{ buf []byte }

func (f *fingerprint) add(vs ...uint64) {
	for _, v := range vs {
		for i := 0; i < 8; i++ {
			f.buf = append(f.buf, byte(v>>(8*i)))
		}
	}
}

func (f *fingerprint) String() string {
	return fmt.Sprintf("%016x", vcs.HashBytes(f.buf))
}

// vesselFleet is a registry + tracker + agent swarm sized for one
// scenario.
type vesselFleet struct {
	net      *simnet.Network
	registry *packagevessel.Registry
	tracker  *packagevessel.Tracker
	agents   []*packagevessel.Agent
}

const vesselBps = 1.25e8 // 1 Gbit/s per server

func newVesselFleet(seed uint64, agents, clusters, chunkSize int) *vesselFleet {
	net := simnet.New(simnet.DefaultLatency(), seed)
	f := &vesselFleet{net: net}
	f.registry = packagevessel.NewRegistry(net, "registry",
		simnet.Placement{Region: "us", Cluster: "store"}, "tracker")
	net.SetBandwidth("registry", vesselBps, vesselBps)
	f.tracker = packagevessel.NewTracker(net, "tracker",
		simnet.Placement{Region: "us", Cluster: "store"})
	f.tracker.SetHolderBudget(packagevessel.HolderBudgetFor(vesselBps, chunkSize))
	for i := 0; i < agents; i++ {
		cl := fmt.Sprintf("c%d", i%clusters)
		region := "us"
		if clusters > 1 && i%clusters >= clusters/2 {
			region = "eu"
		}
		id := simnet.NodeID(fmt.Sprintf("srv-%d", i))
		a := packagevessel.NewAgent(net, id,
			simnet.Placement{Region: region, Cluster: cl}, packagevessel.Options{})
		net.SetBandwidth(id, vesselBps, vesselBps)
		f.agents = append(f.agents, a)
	}
	return f
}

// deliver announces a manifest to every agent and runs until the fleet
// completes (or the deadline passes); returns sorted completion times.
func (f *vesselFleet) deliver(m blob.Manifest, deadline time.Duration) []time.Duration {
	meta := packagevessel.MetadataFor(m, f.registry.ID(), f.tracker.ID())
	var took []time.Duration
	for _, a := range f.agents {
		a.OnComplete(func(_ blob.Manifest, d time.Duration, _ packagevessel.TransferStats) {
			took = append(took, d)
		})
		a.OnAnnounce(meta)
	}
	step := 5 * time.Second
	for waited := time.Duration(0); waited < deadline && len(took) < len(f.agents); waited += step {
		f.net.RunFor(step)
	}
	return took
}

type fleetOutcome struct {
	took        []time.Duration
	sameCluster float64
	regShare    float64
	grantWaste  float64
	fp          string
}

// runFleetDelivery measures one fleet-wide package delivery.
func runFleetDelivery(seed uint64, agents, clusters, sizeMB, chunkMB int) fleetOutcome {
	f := newVesselFleet(seed, agents, clusters, chunkMB<<20)
	m, err := f.registry.Publish(packagevessel.SyntheticPackage(
		"model", 1, sizeMB<<20, chunkMB<<20, seed))
	if err != nil {
		panic(err)
	}
	took := f.deliver(m, time.Hour)
	if len(took) != agents {
		panic(fmt.Sprintf("vessel: fleet incomplete: %d of %d", len(took), agents))
	}
	var out fleetOutcome
	out.took = took
	var fp fingerprint
	var same, total, fromOrigin, fetched uint64
	for _, a := range f.agents {
		same += a.ChunksSameCluster
		total += a.ChunksSameCluster + a.ChunksSameRegion + a.ChunksCrossRegion
		fromOrigin += a.ChunksFromOrigin
		fetched += a.ChunksFetched
		fp.add(a.ChunksFetched, a.ChunksSameCluster, a.ChunksServed)
	}
	for _, d := range took {
		fp.add(uint64(d))
	}
	fp.add(f.registry.ChunksServed, f.tracker.Assignments)
	out.sameCluster = float64(same) / float64(total)
	out.regShare = float64(fromOrigin) / float64(total)
	if f.tracker.Assignments > 0 {
		out.grantWaste = 1 - float64(fetched)/float64(f.tracker.Assignments)
	}
	out.fp = fp.String()
	return out
}

type deltaOutcome struct {
	newChunks, dedupChunks int
	wireFrac               float64
	fp                     string
}

// runDeltaPublish delivers v1 fleet-wide, publishes a changedFrac delta
// as v2, and measures the wire bytes the fleet spends on v2 relative to
// the full package size.
func runDeltaPublish(seed uint64, agents, sizeMB int, changedFrac float64) deltaOutcome {
	const chunkSize = packagevessel.DefaultChunkSize
	f := newVesselFleet(seed, agents, 4, chunkSize)
	v1 := packagevessel.SyntheticPackage("model", 1, sizeMB<<20, chunkSize, seed)
	m1, err := f.registry.Publish(v1)
	if err != nil {
		panic(err)
	}
	if n := len(f.deliver(m1, time.Hour)); n != agents {
		panic(fmt.Sprintf("vessel: v1 incomplete: %d of %d", n, agents))
	}

	m2, err := f.registry.Publish(packagevessel.NextVersion(v1, 2, changedFrac, seed))
	if err != nil {
		panic(err)
	}
	var wire int64
	var fp fingerprint
	meta := packagevessel.MetadataFor(m2, f.registry.ID(), f.tracker.ID())
	done := 0
	for _, a := range f.agents {
		a.OnComplete(func(_ blob.Manifest, _ time.Duration, st packagevessel.TransferStats) {
			done++
			wire += st.BytesFetched
			fp.add(uint64(st.ChunksFetched), uint64(st.ChunksDeduped), uint64(st.BytesFetched))
		})
		a.OnAnnounce(meta)
	}
	for i := 0; i < 720 && done < agents; i++ {
		f.net.RunFor(5 * time.Second)
	}
	if done != agents {
		panic(fmt.Sprintf("vessel: v2 incomplete: %d of %d", done, agents))
	}
	st := f.registry.LastPublish()
	fp.add(uint64(st.NewChunks), uint64(st.DedupChunks), f.registry.ChunksServed)
	return deltaOutcome{
		newChunks:   st.NewChunks,
		dedupChunks: st.DedupChunks,
		// Per-agent average v2 wire bytes over the full package size.
		wireFrac: float64(wire) / float64(agents) / float64(int64(sizeMB)<<20),
		fp:       fp.String(),
	}
}

type resumeOutcome struct {
	chunksTotal, verified, refetched, lifetime int
	completed, noRefetch                       bool
	fp                                         string
}

// runResume crashes one agent mid-download, restarts it, and accounts
// exactly which chunks crossed the wire across its two lives.
func runResume(seed uint64, agents, sizeMB int) resumeOutcome {
	const chunkSize = packagevessel.DefaultChunkSize
	f := newVesselFleet(seed, agents, 2, chunkSize)
	// Slow links stretch the transfer so the crash lands mid-download.
	for i := 0; i < agents; i++ {
		f.net.SetBandwidth(simnet.NodeID(fmt.Sprintf("srv-%d", i)), 1.25e7, 1.25e7)
	}
	victim := f.agents[0]
	m, err := f.registry.Publish(packagevessel.SyntheticPackage(
		"model", 1, sizeMB<<20, chunkSize, seed))
	if err != nil {
		panic(err)
	}
	var final packagevessel.TransferStats
	victim.OnComplete(func(_ blob.Manifest, _ time.Duration, st packagevessel.TransferStats) {
		final = st
	})
	plan := simnet.NewFaultPlan(
		simnet.WithCrash(2*time.Second, "srv-0"),
		simnet.WithRestart(20*time.Second, "srv-0"),
	)
	plan.Apply(f.net)
	meta := packagevessel.MetadataFor(m, f.registry.ID(), f.tracker.ID())
	for _, a := range f.agents {
		a.OnAnnounce(meta)
	}
	f.net.RunFor(10 * time.Minute)

	total := len(m.Distinct())
	out := resumeOutcome{
		chunksTotal: total,
		verified:    final.ResumeVerified,
		refetched:   final.ChunksFetched,
		lifetime:    int(victim.ChunksFetched),
		completed:   victim.Complete("model", 1),
	}
	// Chunks fetched across both lives must equal the manifest exactly:
	// nothing verified on disk at restart went over the wire twice.
	out.noRefetch = final.Resumed &&
		final.ResumeVerified > 0 &&
		final.ChunksFetched == total-final.ResumeVerified &&
		out.lifetime == total
	var fp fingerprint
	fp.add(uint64(final.ResumeVerified), uint64(final.ChunksFetched),
		victim.ChunksFetched, victim.ResumeVerified, f.registry.ChunksServed)
	out.fp = fp.String()
	return out
}

// Vessel benchmarks the content-addressed PackageVessel against the
// redesign's three acceptance claims and writes the raw numbers as
// BENCH_vessel.json: (a) a 10k-agent fleet receives a multi-GB package
// in under the four minutes §5 claims, (b) publishing a small-delta v2
// moves under 25% of the full package's bytes thanks to digest-keyed
// dedup, and (c) a crashed-and-restarted agent completes without
// re-fetching any chunk its resume journal already verified.
func Vessel(opts Options) Result {
	r := Result{ID: "vessel", Title: "Content-addressed PackageVessel: 10k-agent delivery, delta publish, crash resume"}

	fleetAgents, fleetClusters, fleetMB, fleetChunkMB := 10_000, 40, 2048, 16
	deltaAgents, deltaMB := 48, 192
	resumeAgents, resumeMB := 12, 64
	miniAgents, miniMB, miniChunkMB := 400, 128, 4
	if opts.Quick {
		fleetAgents, fleetClusters, fleetMB, fleetChunkMB = 800, 16, 256, 8
		deltaAgents, deltaMB = 24, 64
		miniAgents, miniMB = 120, 64
	}

	var rep VesselReport

	// (a) Fleet-scale delivery against the four-minute claim.
	fleet := runFleetDelivery(opts.Seed, fleetAgents, fleetClusters, fleetMB, fleetChunkMB)
	q := func(p float64) time.Duration {
		return fleet.took[int(p*float64(len(fleet.took)-1))]
	}
	rep.Fleet.Agents = fleetAgents
	rep.Fleet.PackageMB = fleetMB
	rep.Fleet.ChunkMB = fleetChunkMB
	rep.Fleet.P50Seconds = q(0.50).Seconds()
	rep.Fleet.P90Seconds = q(0.90).Seconds()
	rep.Fleet.P99Seconds = q(0.99).Seconds()
	rep.Fleet.MaxSeconds = q(1.0).Seconds()
	rep.Fleet.Under4Min = rep.Fleet.MaxSeconds < 240
	rep.Fleet.SameCluster = fleet.sameCluster
	rep.Fleet.RegistryShare = fleet.regShare
	rep.Fleet.GrantWaste = fleet.grantWaste
	rep.Fleet.Fingerprint = fleet.fp

	// (b) Delta publish: 12.5% of chunks change between v1 and v2.
	const changedFrac = 0.125
	delta := runDeltaPublish(opts.Seed, deltaAgents, deltaMB, changedFrac)
	rep.Delta.Agents = deltaAgents
	rep.Delta.FullChunks = deltaMB // 1 MiB chunks
	rep.Delta.ChangedFrac = changedFrac
	rep.Delta.PublishedNew = delta.newChunks
	rep.Delta.PublishedDedup = delta.dedupChunks
	rep.Delta.WireFrac = delta.wireFrac
	rep.Delta.Under25Pct = delta.wireFrac < 0.25
	rep.Delta.Fingerprint = delta.fp

	// (c) Crash mid-download, restart, finish from the journal.
	res := runResume(opts.Seed, resumeAgents, resumeMB)
	rep.Resume.ChunksTotal = res.chunksTotal
	rep.Resume.VerifiedOnDisk = res.verified
	rep.Resume.RefetchedAfter = res.refetched
	rep.Resume.LifetimeFetched = res.lifetime
	rep.Resume.Completed = res.completed
	rep.Resume.NoRefetch = res.noRefetch
	rep.Resume.Fingerprint = res.fp

	// Determinism: each scenario class re-run with the same seed must
	// reproduce its fingerprint bit-for-bit (the fleet run is represented
	// by a smaller configuration so the check stays affordable).
	mini1 := runFleetDelivery(opts.Seed, miniAgents, 8, miniMB, miniChunkMB)
	mini2 := runFleetDelivery(opts.Seed, miniAgents, 8, miniMB, miniChunkMB)
	delta2 := runDeltaPublish(opts.Seed, deltaAgents, deltaMB, changedFrac)
	res2 := runResume(opts.Seed, resumeAgents, resumeMB)
	rep.Determinism.Runs = 2
	rep.Determinism.Fingerprints = []string{mini1.fp, mini2.fp, delta.fp, delta2.fp, res.fp, res2.fp}
	rep.Determinism.Identical = mini1.fp == mini2.fp && delta.fp == delta2.fp && res.fp == res2.fp

	var b strings.Builder
	fmt.Fprintf(&b, "fleet delivery: %d agents, %d MB package (%d MB chunks): p50 %.1fs p99 %.1fs max %.1fs (four-minute bound: %v)\n",
		fleetAgents, fleetMB, fleetChunkMB, rep.Fleet.P50Seconds, rep.Fleet.P99Seconds, rep.Fleet.MaxSeconds, rep.Fleet.Under4Min)
	fmt.Fprintf(&b, "  locality: %.0f%% same-cluster; registry served %.1f%% of chunks; grant waste %.1f%%\n",
		100*fleet.sameCluster, 100*fleet.regShare, 100*fleet.grantWaste)
	fmt.Fprintf(&b, "delta publish: v2 changed %.1f%% of %d chunks -> registry stored %d new / %d dedup; fleet moved %.1f%% of full-package bytes (<25%%: %v)\n",
		100*changedFrac, rep.Delta.FullChunks, delta.newChunks, delta.dedupChunks, 100*delta.wireFrac, rep.Delta.Under25Pct)
	fmt.Fprintf(&b, "resume: crash mid-download, restart: %d/%d chunks verified on disk, %d re-fetched, lifetime fetches %d (no re-fetch of verified: %v)\n",
		res.verified, res.chunksTotal, res.refetched, res.lifetime, res.noRefetch)
	fmt.Fprintf(&b, "determinism: %v (fingerprints %s)\n",
		rep.Determinism.Identical, strings.Join(rep.Determinism.Fingerprints, " "))
	r.Text = b.String()

	r.metric("fleet_agents", float64(fleetAgents), 0, false)
	r.metric("fleet_max_seconds", rep.Fleet.MaxSeconds, 240, true)
	r.metric("fleet_p50_seconds", rep.Fleet.P50Seconds, 0, false)
	r.metric("fleet_same_cluster_frac", fleet.sameCluster, 0, false)
	r.metric("delta_wire_frac", delta.wireFrac, 0.25, true)
	r.metric("resume_verified_chunks", float64(res.verified), 0, false)
	r.metric("resume_no_refetch", boolMetric(res.noRefetch), 1, true)
	r.metric("deterministic", boolMetric(rep.Determinism.Identical), 1, true)

	art, _ := json.MarshalIndent(rep, "", "  ")
	r.ArtifactName = "BENCH_vessel.json"
	r.Artifact = art
	return r
}
