// Package faultinject reproduces the configuration-error analysis of
// §6.4. The paper classifies three months of high-impact incidents into:
//
//	Type I  (42%): common config errors — typos, out-of-bound values, bad
//	               references; obvious once spotted.
//	Type II (36%): subtle errors — load-related, failure-induced,
//	               butterfly effects; hard to anticipate.
//	Type III(22%): valid config changes that exposed latent code bugs.
//
// We cannot observe Facebook's incidents, so we measure the same *pipeline
// behaviour* instead: a calibrated mix of injected errors is driven
// through the full Configerator pipeline (compiler + validators →
// Sandcastle → two canary phases → landing) and the harness records which
// defense layer stops each one. Escape paths mirror the paper's reality:
// changes that bypass canary (automation and emergency pushes), engineers
// overriding a canary rejection (the §6.4 anecdote), and load errors whose
// effect is invisible at 20-server scale. The calibration is chosen so the
// injections that DO escape to production split approximately 42/36/22 —
// the paper's incident mix — letting us check which layers would have had
// to improve to change each slice.
package faultinject

import (
	"bytes"
	"fmt"

	"configerator/internal/ci"
	"configerator/internal/core"
	"configerator/internal/simnet"
	"configerator/internal/stats"
)

// ErrorType is the §6.4 incident class.
type ErrorType int

// The three §6.4 classes.
const (
	TypeI ErrorType = iota + 1
	TypeII
	TypeIII
)

// String names the class.
func (t ErrorType) String() string {
	switch t {
	case TypeI:
		return "Type I (common config error)"
	case TypeII:
		return "Type II (subtle config error)"
	case TypeIII:
		return "Type III (valid config exposing code bug)"
	}
	return "unknown"
}

// Layers that can stop an injection.
const (
	CaughtByValidator = "validator"
	CaughtByCI        = "sandcastle-ci"
	CaughtByCanary1   = "canary-phase1"
	CaughtByCanary2   = "canary-phase2"
	Escaped           = "escaped-to-production"
)

// Outcome records one injection's fate.
type Outcome struct {
	Seq      int
	Type     ErrorType
	Kind     string // generator label, e.g. "schema-violation"
	CaughtBy string
	Bypassed bool // the change skipped or overrode canary
}

// Mix calibrates the injection blend. The defaults are tuned so escapes
// split ≈42/36/22 across the three types.
type Mix struct {
	TypeIShare   float64
	TypeIIShare  float64
	TypeIIIShare float64
	// Within Type I: the fraction caught mechanically by the compiler's
	// validators (expressible invariants) and by CI.
	ValidatorCoverage float64
	CICoverage        float64
	// Canary-bypass probabilities (automation/emergency changes that skip
	// canary, §6.6 "empower engineers ... as the safety net" has limits).
	SkipCanaryI   float64
	SkipCanaryII  float64
	SkipCanaryIII float64
	// OverrideIII is the probability a Type III canary rejection is
	// overridden by a human ("it must be a false positive!").
	OverrideIII float64
}

// DefaultMix is the calibrated blend.
func DefaultMix() Mix {
	return Mix{
		TypeIShare: 0.50, TypeIIShare: 0.25, TypeIIIShare: 0.25,
		ValidatorCoverage: 0.60, CICoverage: 0.15,
		SkipCanaryI: 0.55, SkipCanaryII: 0.25,
		SkipCanaryIII: 0.08, OverrideIII: 0.08,
	}
}

// Campaign drives injections through a pipeline.
type Campaign struct {
	p           *core.Pipeline
	rng         *stats.RNG
	mix         Mix
	seq         int
	plan        *simnet.FaultPlan
	planApplied bool
}

// Option configures a Campaign (functional options, matching the simnet
// fault-plan style so pipeline-level and infra-level campaigns compose).
type Option func(*Campaign)

// WithMix overrides the calibrated injection blend.
func WithMix(m Mix) Option { return func(c *Campaign) { c.mix = m } }

// WithSeed reseeds the campaign's deterministic RNG (default 1).
func WithSeed(seed uint64) Option {
	return func(c *Campaign) { c.rng = stats.NewRNG(seed) }
}

// WithInfraPlan schedules an infrastructure fault plan on the pipeline's
// fleet when the campaign starts: config errors flow through the pipeline
// while observers crash and links partition underneath it.
func WithInfraPlan(plan *simnet.FaultPlan) Option {
	return func(c *Campaign) { c.plan = plan }
}

// NewCampaign builds a campaign over a fleet-attached pipeline, with
// DefaultMix and seed 1 unless overridden by options. The pipeline's
// fleet must subscribe to the target path so the app model reacts to the
// injected configs.
func NewCampaign(p *core.Pipeline, opts ...Option) *Campaign {
	c := &Campaign{p: p, rng: stats.NewRNG(1), mix: DefaultMix()}
	for _, o := range opts {
		o(c)
	}
	return c
}

// schemaSeed installs a schema with a validator, the substrate for
// mechanical Type I catches.
const schemaSeed = `
	schema Quota {
		1: string service;
		2: i64 limit = 100;
	}
	validator Quota(q) {
		assert(q.limit > 0 && q.limit <= 1000000, "limit out of range");
		assert(len(q.service) > 0, "service required");
	}
`

// Seed installs the schema module and the Sandcastle integration test;
// call once before Run.
func (c *Campaign) Seed() error {
	c.p.Sandbox.Register(ci.Test{
		Name: "site-integration",
		Run: func(cs ci.ChangeSet) error {
			for path, data := range cs {
				if bytes.Contains(data, []byte(`"ci_detectable":true`)) {
					return fmt.Errorf("synthetic site test fails under %s", path)
				}
			}
			return nil
		},
	})
	rep := c.p.Submit(&core.ChangeRequest{
		Author: "infra", Reviewer: "bob", Title: "seed quota schema",
		Sources:    map[string][]byte{"lib/quota.cinc": []byte(schemaSeed)},
		SkipCanary: true,
	})
	if !rep.OK() {
		return fmt.Errorf("faultinject: seeding schema: %w", rep.Err)
	}
	return nil
}

// Run injects n errors and returns their outcomes. A composed infra plan
// (WithInfraPlan) is applied to the fleet's network on the first Run.
func (c *Campaign) Run(n int) []Outcome {
	if c.plan != nil && !c.planApplied {
		c.planApplied = true
		c.plan.Apply(c.p.Fleet.Net)
	}
	outcomes := make([]Outcome, 0, n)
	for i := 0; i < n; i++ {
		u := c.rng.Float64()
		var o Outcome
		switch {
		case u < c.mix.TypeIShare:
			o = c.injectTypeI()
		case u < c.mix.TypeIShare+c.mix.TypeIIShare:
			o = c.injectTypeII()
		default:
			o = c.injectTypeIII()
		}
		c.seq++
		o.Seq = c.seq
		outcomes = append(outcomes, o)
	}
	return outcomes
}

// target returns a unique config path per injection so outcomes stay
// independent.
func (c *Campaign) target() string {
	return fmt.Sprintf("apps/inject%04d.json", c.seq)
}

func (c *Campaign) classify(rep *core.ChangeReport, bypassed bool) string {
	if rep.OK() {
		return Escaped
	}
	switch rep.FailedStage {
	case "compile":
		return CaughtByValidator
	case "ci":
		return CaughtByCI
	case "canary":
		if rep.Canary != nil && len(rep.Canary.Phases) >= 2 {
			return CaughtByCanary2
		}
		return CaughtByCanary1
	}
	return rep.FailedStage
}

// injectTypeI: a common config error. Most are expressible as schema or
// validator violations (the compiler stops them); some are CI-detectable
// integration breaks; the rest are typos in raw configs with no schema —
// obvious in production (error-rate spike) but only if a canary runs.
func (c *Campaign) injectTypeI() Outcome {
	o := Outcome{Type: TypeI}
	u := c.rng.Float64()
	switch {
	case u < c.mix.ValidatorCoverage:
		o.Kind = "schema-violation"
		src := fmt.Sprintf(`import "lib/quota.cinc"; export Quota{service: "svc%d", limit: -5};`, c.seq)
		rep := c.p.Submit(&core.ChangeRequest{
			Author: "eng", Reviewer: "bob", Title: "bad quota",
			Sources:    map[string][]byte{fmt.Sprintf("apps/quota%04d.cconf", c.seq): []byte(src)},
			SkipCanary: true,
		})
		o.CaughtBy = c.classify(rep, false)
	case u < c.mix.ValidatorCoverage+c.mix.CICoverage:
		o.Kind = "integration-break"
		rep := c.p.Submit(&core.ChangeRequest{
			Author: "eng", Reviewer: "bob", Title: "breaks site tests",
			Raws:       map[string][]byte{c.target(): []byte(`{"ci_detectable":true}`)},
			SkipCanary: true,
		})
		o.CaughtBy = c.classify(rep, false)
	default:
		o.Kind = "raw-typo"
		skip := c.rng.Bool(c.mix.SkipCanaryI)
		o.Bypassed = skip
		rep := c.p.Submit(&core.ChangeRequest{
			Author: "eng", Reviewer: "bob", Title: "typo'd raw config",
			Raws: map[string][]byte{c.target(): []byte(
				`{"cluster":"web-east-typo","_fault":{"type":"error","intensity":0.8}}`)},
			SkipCanary: skip,
		})
		o.CaughtBy = c.classify(rep, skip)
	}
	return o
}

// injectTypeII: a load-dependent error — harmless on 20 servers, a
// latency disaster fleet-wide. Only the cluster-scale canary phase can
// see it, and only when the change does not bypass canary entirely.
func (c *Campaign) injectTypeII() Outcome {
	o := Outcome{Type: TypeII, Kind: "load-amplification"}
	skip := c.rng.Bool(c.mix.SkipCanaryII)
	o.Bypassed = skip
	rep := c.p.Submit(&core.ChangeRequest{
		Author: "eng", Reviewer: "bob", Title: "rare code path hits backend",
		Raws: map[string][]byte{c.target(): []byte(
			`{"prefetch":"aggressive","_fault":{"type":"load","intensity":1.0}}`)},
		SkipCanary: skip,
	})
	o.CaughtBy = c.classify(rep, skip)
	return o
}

// injectTypeIII: a perfectly valid config that exercises a buggy code
// path (crash or log spew). Validators and CI have nothing to object to;
// canary catches it unless skipped or overridden by a human.
func (c *Campaign) injectTypeIII() Outcome {
	o := Outcome{Type: TypeIII}
	kind := "latent-crash"
	fault := `{"new_path":true,"_fault":{"type":"crash","intensity":0.6}}`
	if c.rng.Bool(0.5) {
		kind = "log-spew"
		fault = `{"new_path":true,"_fault":{"type":"log_spew","intensity":0.9}}`
	}
	o.Kind = kind
	skip := c.rng.Bool(c.mix.SkipCanaryIII)
	override := !skip && c.rng.Bool(c.mix.OverrideIII)
	o.Bypassed = skip || override
	rep := c.p.Submit(&core.ChangeRequest{
		Author: "eng", Reviewer: "bob", Title: "innocent-looking change",
		Raws:           map[string][]byte{c.target(): []byte(fault)},
		SkipCanary:     skip,
		OverrideCanary: override,
	})
	o.CaughtBy = c.classify(rep, o.Bypassed)
	return o
}

// Summary aggregates outcomes the way §6.4 reports them.
type Summary struct {
	Total     int
	ByLayer   map[string]int
	ByType    map[ErrorType]int
	Escapes   map[ErrorType]int
	EscapeMix map[ErrorType]float64 // escaped share per type (sums to 1)
}

// Summarize builds the aggregate.
func Summarize(outcomes []Outcome) Summary {
	s := Summary{
		Total:     len(outcomes),
		ByLayer:   make(map[string]int),
		ByType:    make(map[ErrorType]int),
		Escapes:   make(map[ErrorType]int),
		EscapeMix: make(map[ErrorType]float64),
	}
	escaped := 0
	for _, o := range outcomes {
		s.ByLayer[o.CaughtBy]++
		s.ByType[o.Type]++
		if o.CaughtBy == Escaped {
			s.Escapes[o.Type]++
			escaped++
		}
	}
	if escaped > 0 {
		for t, n := range s.Escapes {
			s.EscapeMix[t] = float64(n) / float64(escaped)
		}
	}
	return s
}
