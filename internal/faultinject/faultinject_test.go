package faultinject

import (
	"testing"
	"time"

	"configerator/internal/cluster"
	"configerator/internal/core"
	"configerator/internal/obs"
	"configerator/internal/simnet"
)

func newCampaign(t *testing.T, seed uint64) *Campaign {
	t.Helper()
	f := cluster.New(cluster.SmallConfig(15, seed)) // 60 servers
	f.Net.RunFor(10 * time.Second)
	if f.Ensemble.Leader() == "" {
		t.Fatal("no leader")
	}
	p := core.New(core.Options{Fleet: f, CanaryPhase1: 2, CanaryPhase2: 30})
	c := NewCampaign(p, WithMix(DefaultMix()), WithSeed(seed))
	if err := c.Seed(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLayersCatchTheirClasses(t *testing.T) {
	c := newCampaign(t, 1)
	outcomes := c.Run(40)
	s := Summarize(outcomes)
	if s.Total != 40 {
		t.Fatalf("Total = %d", s.Total)
	}
	// The validator layer only ever fires for Type I.
	for _, o := range outcomes {
		if o.CaughtBy == CaughtByValidator && o.Type != TypeI {
			t.Errorf("validator caught %v", o.Type)
		}
		if o.CaughtBy == CaughtByCI && o.Type != TypeI {
			t.Errorf("CI caught %v", o.Type)
		}
		// Load errors are invisible at 20 servers: when canary catches a
		// Type II it must be phase 2.
		if o.Type == TypeII && o.CaughtBy == CaughtByCanary1 {
			t.Errorf("phase 1 caught a load error (should be invisible at small scale)")
		}
		// Type III passes validators and CI by construction.
		if o.Type == TypeIII && (o.CaughtBy == CaughtByValidator || o.CaughtBy == CaughtByCI) {
			t.Errorf("static layer caught a valid config (Type III): %v", o.CaughtBy)
		}
	}
	if s.ByLayer[CaughtByValidator] == 0 {
		t.Error("no validator catches at all")
	}
	if s.ByLayer[CaughtByCanary2] == 0 {
		t.Error("no cluster-scale canary catches at all")
	}
}

func TestNonBypassedVisibleErrorsAlwaysCaught(t *testing.T) {
	c := newCampaign(t, 2)
	outcomes := c.Run(40)
	for _, o := range outcomes {
		if !o.Bypassed && o.CaughtBy == Escaped {
			t.Errorf("non-bypassed %v (%s) escaped the full pipeline", o.Type, o.Kind)
		}
	}
}

func TestEscapeMixMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("long campaign")
	}
	c := newCampaign(t, 3)
	outcomes := c.Run(150)
	s := Summarize(outcomes)
	total := s.Escapes[TypeI] + s.Escapes[TypeII] + s.Escapes[TypeIII]
	if total < 15 {
		t.Fatalf("too few escapes (%d) to compare mix", total)
	}
	// §6.4: incidents split 42% / 36% / 22%. Synthetic sampling noise on
	// ~30 escapes is large; assert the shape within ±0.15.
	check := func(tpe ErrorType, want float64) {
		got := s.EscapeMix[tpe]
		if got < want-0.15 || got > want+0.15 {
			t.Errorf("%v escape share = %.2f, want %.2f ± 0.15", tpe, got, want)
		}
	}
	check(TypeI, 0.42)
	check(TypeII, 0.36)
	check(TypeIII, 0.22)
	if s.EscapeMix[TypeIII] >= s.EscapeMix[TypeI] {
		t.Errorf("Type III should be the smallest slice: %+v", s.EscapeMix)
	}
}

// TestInfraPlanComposes runs a pipeline-level error campaign with an
// infra-level fault plan scheduled underneath it: the pipeline still
// classifies every injection (the ensemble tolerates an observer crash and
// a transient link cut), and every scripted infra fault is mirrored into
// the obs counters.
func TestInfraPlanComposes(t *testing.T) {
	reg := obs.New()
	cfg := cluster.SmallConfig(15, 4)
	cfg.Obs = reg
	f := cluster.New(cfg)
	f.Net.RunFor(10 * time.Second)
	if f.Ensemble.Leader() == "" {
		t.Fatal("no leader")
	}
	p := core.New(core.Options{Fleet: f, CanaryPhase1: 2, CanaryPhase2: 30})

	cl := f.ClusterNames()[0]
	victim := f.Observers(cl)[0]
	peer := f.Observers(cl)[1]
	plan := simnet.NewFaultPlan(
		simnet.WithCrash(2*time.Second, victim),
		simnet.WithPartitionOneWay(5*time.Second, victim, peer),
		simnet.WithHealOneWay(20*time.Second, victim, peer),
		simnet.WithRestart(40*time.Second, victim),
	)
	c := NewCampaign(p, WithSeed(4), WithInfraPlan(plan))
	if err := c.Seed(); err != nil {
		t.Fatal(err)
	}
	outcomes := c.Run(10)
	f.Net.RunFor(60 * time.Second) // let the tail of the plan fire
	for _, o := range outcomes {
		if o.CaughtBy == "" {
			t.Errorf("outcome %d unclassified under infra faults", o.Seq)
		}
	}
	if plan.Fired() != plan.Len() {
		t.Fatalf("infra plan fired %d of %d events", plan.Fired(), plan.Len())
	}
	if got := reg.Counters().Get("fault.injected"); got != int64(plan.Len()) {
		t.Errorf("fault.injected = %d, want %d", got, plan.Len())
	}
}

func TestSummarize(t *testing.T) {
	outcomes := []Outcome{
		{Type: TypeI, CaughtBy: CaughtByValidator},
		{Type: TypeI, CaughtBy: Escaped},
		{Type: TypeII, CaughtBy: CaughtByCanary2},
		{Type: TypeIII, CaughtBy: Escaped},
	}
	s := Summarize(outcomes)
	if s.ByLayer[Escaped] != 2 || s.ByType[TypeI] != 2 {
		t.Errorf("summary = %+v", s)
	}
	if s.EscapeMix[TypeI] != 0.5 || s.EscapeMix[TypeIII] != 0.5 {
		t.Errorf("EscapeMix = %+v", s.EscapeMix)
	}
}

func TestErrorTypeString(t *testing.T) {
	if TypeI.String() == "unknown" || TypeII.String() == "unknown" || TypeIII.String() == "unknown" {
		t.Error("ErrorType.String broken")
	}
}
