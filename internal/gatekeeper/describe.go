package gatekeeper

import (
	"fmt"
	"sort"
	"strings"
)

// DescribeChange renders a Gatekeeper config change as human-readable
// lines — the paper's footnote 1: the UI "converts a user's operations on
// the UI into a text file, e.g., 'Updated Employee sampling from 1% to
// 10%'. The text file … [is] submitted for code review." The pipeline
// attaches these lines to the review diff so reviewers see intent, not
// JSON.
func DescribeChange(oldSpec, newSpec *ProjectSpec) []string {
	var out []string
	if oldSpec == nil {
		out = append(out, fmt.Sprintf("Created project %q with %d rule(s)", newSpec.Project, len(newSpec.Rules)))
		for i, r := range newSpec.Rules {
			out = append(out, fmt.Sprintf("  rule %d: %s sampling at %s", i+1, ruleLabel(r), pct(r.PassProbability)))
		}
		return out
	}
	if newSpec == nil {
		return []string{fmt.Sprintf("Deleted project %q", oldSpec.Project)}
	}
	if oldSpec.Project != newSpec.Project {
		out = append(out, fmt.Sprintf("Renamed project %q to %q", oldSpec.Project, newSpec.Project))
	}
	// Match rules by their restraint signature so probability tweaks on
	// an unchanged conjunction read as "Updated X sampling from a% to b%".
	oldBySig := map[string][]RuleSpec{}
	for _, r := range oldSpec.Rules {
		sig := ruleLabel(r)
		oldBySig[sig] = append(oldBySig[sig], r)
	}
	seen := map[string]int{}
	for _, r := range newSpec.Rules {
		sig := ruleLabel(r)
		idx := seen[sig]
		seen[sig]++
		if olds := oldBySig[sig]; idx < len(olds) {
			if olds[idx].PassProbability != r.PassProbability {
				out = append(out, fmt.Sprintf("Updated %s sampling from %s to %s",
					sig, pct(olds[idx].PassProbability), pct(r.PassProbability)))
			}
		} else {
			out = append(out, fmt.Sprintf("Added rule: %s sampling at %s", sig, pct(r.PassProbability)))
		}
	}
	for sig, olds := range oldBySig {
		if removed := len(olds) - seen[sig]; removed > 0 {
			out = append(out, fmt.Sprintf("Removed %d rule(s): %s", removed, sig))
		}
	}
	sort.Strings(out)
	if len(out) == 0 {
		out = append(out, "No semantic change")
	}
	return out
}

// ruleLabel summarizes a conjunction: "Employee AND country in [US, CA]".
func ruleLabel(r RuleSpec) string {
	if len(r.Restraints) == 0 {
		return "(empty rule)"
	}
	parts := make([]string, 0, len(r.Restraints))
	for _, rs := range r.Restraints {
		label := restraintLabel(rs)
		if rs.Negate {
			label = "NOT " + label
		}
		parts = append(parts, label)
	}
	return strings.Join(parts, " AND ")
}

func restraintLabel(rs RestraintSpec) string {
	var details []string
	keys := make([]string, 0, len(rs.Params))
	for k := range rs.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		details = append(details, fmt.Sprintf("%s=%v", k, rs.Params[k]))
	}
	if len(details) == 0 {
		return rs.Name
	}
	return fmt.Sprintf("%s(%s)", rs.Name, strings.Join(details, ", "))
}

func pct(p float64) string {
	return fmt.Sprintf("%g%%", p*100)
}
