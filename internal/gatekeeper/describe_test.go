package gatekeeper

import (
	"strings"
	"testing"
)

func emp(p float64) RuleSpec {
	return RuleSpec{Restraints: []RestraintSpec{{Name: "employee"}}, PassProbability: p}
}

func TestDescribeSamplingChange(t *testing.T) {
	oldSpec := &ProjectSpec{Project: "X", Rules: []RuleSpec{emp(0.01)}}
	newSpec := &ProjectSpec{Project: "X", Rules: []RuleSpec{emp(0.10)}}
	lines := DescribeChange(oldSpec, newSpec)
	// The paper's canonical example.
	want := "Updated employee sampling from 1% to 10%"
	if len(lines) != 1 || lines[0] != want {
		t.Errorf("lines = %v, want [%q]", lines, want)
	}
}

func TestDescribeCreateAndDelete(t *testing.T) {
	spec := &ProjectSpec{Project: "X", Rules: []RuleSpec{emp(0.01)}}
	created := DescribeChange(nil, spec)
	if len(created) != 2 || !strings.Contains(created[0], "Created project") {
		t.Errorf("created = %v", created)
	}
	deleted := DescribeChange(spec, nil)
	if len(deleted) != 1 || !strings.Contains(deleted[0], "Deleted project") {
		t.Errorf("deleted = %v", deleted)
	}
}

func TestDescribeAddRemoveRules(t *testing.T) {
	regional := RuleSpec{
		Restraints:      []RestraintSpec{{Name: "region", Params: Params{"in": []string{"us-west"}}}},
		PassProbability: 0.05,
	}
	oldSpec := &ProjectSpec{Project: "X", Rules: []RuleSpec{emp(1.0)}}
	newSpec := &ProjectSpec{Project: "X", Rules: []RuleSpec{emp(1.0), regional}}
	lines := DescribeChange(oldSpec, newSpec)
	if len(lines) != 1 || !strings.Contains(lines[0], "Added rule") ||
		!strings.Contains(lines[0], "region(in=[us-west])") {
		t.Errorf("lines = %v", lines)
	}
	back := DescribeChange(newSpec, oldSpec)
	if len(back) != 1 || !strings.Contains(back[0], "Removed 1 rule") {
		t.Errorf("back = %v", back)
	}
}

func TestDescribeNegatedConjunction(t *testing.T) {
	r := RuleSpec{Restraints: []RestraintSpec{
		{Name: "employee", Negate: true},
		{Name: "country", Params: Params{"in": []string{"US"}}},
	}, PassProbability: 0.5}
	lines := DescribeChange(nil, &ProjectSpec{Project: "X", Rules: []RuleSpec{r}})
	if !strings.Contains(lines[1], "NOT employee AND country(in=[US])") {
		t.Errorf("lines = %v", lines)
	}
}

func TestDescribeNoChange(t *testing.T) {
	spec := &ProjectSpec{Project: "X", Rules: []RuleSpec{emp(0.5)}}
	lines := DescribeChange(spec, spec)
	if len(lines) != 1 || lines[0] != "No semantic change" {
		t.Errorf("lines = %v", lines)
	}
}
