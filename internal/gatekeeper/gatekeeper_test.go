package gatekeeper

import (
	"math"
	"testing"
	"time"

	"configerator/internal/laser"
	"configerator/internal/vclock"
)

func reg() *Registry { return NewRegistry(nil) }

func compile(t *testing.T, spec *ProjectSpec, r *Registry) *Project {
	t.Helper()
	p, err := Compile(spec, r)
	if err != nil {
		t.Fatal(err)
	}
	p.SetOptimizeInterval(0)
	return p
}

func employeeUser(id int64) *User {
	return &User{ID: id, Employee: true, Country: "US", Region: "us-west",
		Platform: "www", Now: vclock.Epoch}
}

func TestEmployeeGate(t *testing.T) {
	spec := &ProjectSpec{Project: "ProjectX", Rules: []RuleSpec{{
		Restraints:      []RestraintSpec{{Name: "employee"}},
		PassProbability: 1.0,
	}}}
	p := compile(t, spec, reg())
	if !p.Check(employeeUser(1)) {
		t.Error("employee should pass")
	}
	civ := employeeUser(2)
	civ.Employee = false
	if p.Check(civ) {
		t.Error("non-employee should fail")
	}
}

func TestNegation(t *testing.T) {
	spec := &ProjectSpec{Project: "P", Rules: []RuleSpec{{
		Restraints:      []RestraintSpec{{Name: "employee", Negate: true}},
		PassProbability: 1.0,
	}}}
	p := compile(t, spec, reg())
	if p.Check(employeeUser(1)) {
		t.Error("negated employee should fail for employees")
	}
	civ := employeeUser(2)
	civ.Employee = false
	if !p.Check(civ) {
		t.Error("negated employee should pass for non-employees")
	}
}

func TestSamplingDeterministicAndMonotonic(t *testing.T) {
	mk := func(prob float64) *Project {
		return compile(t, &ProjectSpec{Project: "P", Rules: []RuleSpec{{
			Restraints:      []RestraintSpec{{Name: "always"}},
			PassProbability: prob,
		}}}, reg())
	}
	p1 := mk(0.01)
	p10 := mk(0.10)
	inAt1, inAt10 := 0, 0
	for id := int64(0); id < 20000; id++ {
		u := employeeUser(id)
		a := p1.Check(u)
		b := p10.Check(u)
		if a {
			inAt1++
			if !b {
				t.Fatalf("user %d enabled at 1%% but disabled at 10%%: rollout not monotonic", id)
			}
		}
		if b {
			inAt10++
		}
		// Determinism: re-check gives the same answer.
		if p1.Check(u) != a {
			t.Fatalf("user %d: nondeterministic check", id)
		}
	}
	f1 := float64(inAt1) / 20000
	f10 := float64(inAt10) / 20000
	if math.Abs(f1-0.01) > 0.005 {
		t.Errorf("1%% rollout hit %.3f", f1)
	}
	if math.Abs(f10-0.10) > 0.01 {
		t.Errorf("10%% rollout hit %.3f", f10)
	}
}

func TestDNFOrderedRules(t *testing.T) {
	// Figure 5 shape: first matching if-statement decides; later rules are
	// not consulted.
	spec := &ProjectSpec{Project: "P", Rules: []RuleSpec{
		{Restraints: []RestraintSpec{{Name: "employee"}}, PassProbability: 0}, // employees: always fail
		{Restraints: []RestraintSpec{{Name: "always"}}, PassProbability: 1.0}, // everyone else: pass
	}}
	p := compile(t, spec, reg())
	if p.Check(employeeUser(1)) {
		t.Error("employee matched rule 1 with p=0; must not fall through to rule 2")
	}
	civ := employeeUser(2)
	civ.Employee = false
	if !p.Check(civ) {
		t.Error("non-employee should reach rule 2")
	}
}

func TestBuiltinRestraints(t *testing.T) {
	r := reg()
	now := vclock.Epoch
	u := &User{
		ID: 42, Country: "JP", Region: "apac", Locale: "ja_JP",
		App: "messenger", Platform: "ios", AppVersion: 120,
		DeviceModel: "iPhone6", AccountAge: 10 * 24 * time.Hour,
		FriendCount: 250, Now: now,
	}
	cases := []struct {
		name   string
		params Params
		want   bool
	}{
		{"always", nil, true},
		{"country", Params{"in": []string{"JP", "KR"}}, true},
		{"country", Params{"in": []string{"US"}}, false},
		{"region", Params{"in": []string{"apac"}}, true},
		{"locale", Params{"in": []string{"ja_JP"}}, true},
		{"app", Params{"in": []string{"messenger"}}, true},
		{"platform", Params{"in": []string{"ios", "android"}}, true},
		{"platform", Params{"in": []string{"www"}}, false},
		{"device_model", Params{"in": []string{"iPhone6"}}, true},
		{"app_version_at_least", Params{"version": 100.0}, true},
		{"app_version_at_least", Params{"version": 200.0}, false},
		{"new_user", Params{"max_days": 30.0}, true},
		{"new_user", Params{"max_days": 5.0}, false},
		{"account_age_at_least_days", Params{"days": 5.0}, true},
		{"friend_count_at_least", Params{"n": 100.0}, true},
		{"friend_count_at_most", Params{"n": 100.0}, false},
		{"id_in", Params{"ids": []interface{}{41.0, 42.0}}, true},
		{"id_in", Params{"ids": []interface{}{7.0}}, false},
		{"id_mod", Params{"mod": 10.0, "buckets": []interface{}{2.0}}, true}, // 42%10=2
		{"id_mod", Params{"mod": 10.0, "buckets": []interface{}{3.0}}, false},
		{"datetime_range", Params{"after_unix": float64(now.Unix() - 10)}, true},
		{"datetime_range", Params{"after_unix": float64(now.Unix() + 10)}, false},
		{"weekday", Params{"in": []string{now.Weekday().String()}}, true},
		{"hour_range", Params{"from": 0.0, "to": 24.0}, true},
	}
	for _, c := range cases {
		res, err := r.Lookup(c.name)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := res.Check(u, c.params); got != c.want {
			t.Errorf("%s(%v) = %v, want %v", c.name, c.params, got, c.want)
		}
	}
}

func TestLaserRestraint(t *testing.T) {
	ls := laser.NewStore()
	r := NewRegistry(ls)
	// Trending-topics style score loaded by a batch job.
	job := laser.BatchJob{Project: "Trending", Compute: func(id int64) float64 {
		if id%2 == 0 {
			return 0.9
		}
		return 0.1
	}}
	job.Run(ls, []int64{1, 2, 3, 4})
	spec := &ProjectSpec{Project: "Trending", Rules: []RuleSpec{{
		Restraints: []RestraintSpec{{Name: "laser",
			Params: Params{"project": "Trending", "threshold": 0.5}}},
		PassProbability: 1.0,
	}}}
	p := compile(t, spec, r)
	if !p.Check(employeeUser(2)) {
		t.Error("high-score user should pass laser gate")
	}
	if p.Check(employeeUser(3)) {
		t.Error("low-score user should fail laser gate")
	}
	if p.Check(employeeUser(99)) {
		t.Error("missing laser key should fail")
	}
	if ls.Gets == 0 {
		t.Error("laser store not consulted")
	}
}

func TestParseProjectSpec(t *testing.T) {
	data := []byte(`{"project":"X","rules":[{"restraints":[{"name":"employee"}],"pass_probability":0.5}]}`)
	spec, err := ParseProjectSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Project != "X" || len(spec.Rules) != 1 {
		t.Errorf("spec = %+v", spec)
	}
	// Round trip.
	spec2, err := ParseProjectSpec(spec.Encode())
	if err != nil || spec2.Project != "X" {
		t.Errorf("round trip failed: %v", err)
	}
}

func TestParseProjectSpecErrors(t *testing.T) {
	for _, bad := range []string{
		`{`,
		`{"rules":[]}`,
		`{"project":"X","rules":[{"pass_probability":1.5}]}`,
	} {
		if _, err := ParseProjectSpec([]byte(bad)); err == nil {
			t.Errorf("ParseProjectSpec(%q) succeeded", bad)
		}
	}
}

func TestCompileUnknownRestraint(t *testing.T) {
	spec := &ProjectSpec{Project: "P", Rules: []RuleSpec{{
		Restraints: []RestraintSpec{{Name: "no_such_restraint"}},
	}}}
	if _, err := Compile(spec, reg()); err == nil {
		t.Fatal("expected unknown-restraint error")
	}
}

func TestOptimizerReordersExpensiveRestraintLast(t *testing.T) {
	ls := laser.NewStore() // empty: laser always false... we want laser true mostly
	r := NewRegistry(ls)
	for id := int64(0); id < 1000; id++ {
		ls.Set(laser.UserKey("P", id), 1.0)
	}
	// Conjunction: laser (expensive, usually true) AND country (cheap,
	// usually false). The optimizer must move country first.
	spec := &ProjectSpec{Project: "P", Rules: []RuleSpec{{
		Restraints: []RestraintSpec{
			{Name: "laser", Params: Params{"project": "P", "threshold": 0.5}},
			{Name: "country", Params: Params{"in": []string{"IS"}}}, // rare
		},
		PassProbability: 1.0,
	}}}
	p := compile(t, spec, r)
	p.SetOptimizeInterval(256)
	u := employeeUser(0)
	for id := int64(0); id < 2000; id++ {
		u.ID = id % 1000
		u.Country = "US" // never Iceland
		p.Check(u)
	}
	order := p.EvalOrder(0)
	if order[0] != "country" {
		t.Errorf("EvalOrder = %v; optimizer should front-load the cheap selective restraint", order)
	}
	// With country first, the laser store stops being consulted.
	before := ls.Gets
	for id := int64(0); id < 1000; id++ {
		u.ID = id
		p.Check(u)
	}
	if ls.Gets != before {
		t.Errorf("laser consulted %d times after optimization", ls.Gets-before)
	}
}

func TestOptimizerReducesCost(t *testing.T) {
	build := func(interval uint64) *Project {
		ls := laser.NewStore()
		r := NewRegistry(ls)
		spec := &ProjectSpec{Project: "P", Rules: []RuleSpec{{
			Restraints: []RestraintSpec{
				{Name: "laser", Params: Params{"project": "P", "threshold": 0.5}},
				{Name: "employee"},
			},
			PassProbability: 1.0,
		}}}
		p, err := Compile(spec, r)
		if err != nil {
			t.Fatal(err)
		}
		p.SetOptimizeInterval(interval)
		return p
	}
	run := func(p *Project) float64 {
		u := employeeUser(0)
		u.Employee = false // employee restraint always false
		for id := int64(0); id < 10000; id++ {
			u.ID = id
			p.Check(u)
		}
		return p.RestraintCost()
	}
	unopt := run(build(0))
	opt := run(build(256))
	if opt >= unopt {
		t.Errorf("optimized cost %v !< unoptimized %v", opt, unopt)
	}
	if opt > unopt/5 {
		t.Errorf("optimizer saved too little: %v vs %v", opt, unopt)
	}
}

func TestRuntimeLoadAndCheck(t *testing.T) {
	rt := NewRuntime(reg())
	spec := &ProjectSpec{Project: "Feature", Rules: []RuleSpec{{
		Restraints: []RestraintSpec{{Name: "employee"}}, PassProbability: 1,
	}}}
	if err := rt.Load(spec.Encode()); err != nil {
		t.Fatal(err)
	}
	if !rt.Check("Feature", employeeUser(1)) {
		t.Error("loaded project should gate")
	}
	if rt.Check("Unknown", employeeUser(1)) {
		t.Error("unknown project must fail closed")
	}
	if got := rt.Projects(); len(got) != 1 || got[0] != "Feature" {
		t.Errorf("Projects = %v", got)
	}
	// Live update: disable the feature.
	spec.Rules[0].PassProbability = 0
	if err := rt.Load(spec.Encode()); err != nil {
		t.Fatal(err)
	}
	if rt.Check("Feature", employeeUser(1)) {
		t.Error("disabled project still passing")
	}
	if rt.Recompiles != 2 {
		t.Errorf("Recompiles = %d", rt.Recompiles)
	}
}

func TestRolloutStagesMonotoneExposure(t *testing.T) {
	stages := RolloutStages("Launch", "us-west")
	rt := NewRuntime(reg())
	users := make([]*User, 0, 5000)
	for id := int64(0); id < 5000; id++ {
		u := employeeUser(id)
		u.Employee = id%100 == 0 // 1% employees
		u.Region = "us-west"
		if id%3 == 0 {
			u.Region = "eu"
		}
		users = append(users, u)
	}
	prevEnabled := make(map[int64]bool)
	prevCount := 0
	for si, spec := range stages {
		if err := rt.Load(spec.Encode()); err != nil {
			t.Fatal(err)
		}
		count := 0
		for _, u := range users {
			if rt.Check("Launch", u) {
				count++
				// A user enabled in an earlier stage must stay enabled:
				// launches only widen.
			} else if prevEnabled[u.ID] {
				t.Fatalf("stage %d disabled user %d who was enabled earlier", si, u.ID)
			}
		}
		for _, u := range users {
			if rt.Check("Launch", u) {
				prevEnabled[u.ID] = true
			}
		}
		if count < prevCount {
			t.Fatalf("stage %d shrank exposure: %d -> %d", si, prevCount, count)
		}
		prevCount = count
	}
	if prevCount != len(users) {
		t.Errorf("final stage enabled %d of %d", prevCount, len(users))
	}
}
