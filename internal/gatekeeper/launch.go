package gatekeeper

import (
	"fmt"

	"configerator/internal/core"
)

// LaunchTool is the Gatekeeper Web UI's backend: product engineers adjust
// a project's rules graphically, the tool converts the operations into
// human-readable text for code review (footnote 1), and every change rides
// the ordinary Configerator pipeline — version control, CI, canary —
// before the new gating logic reaches the fleet as a JSON config update.
type LaunchTool struct {
	p *core.Pipeline
	// PathPrefix locates project configs in the repository namespace.
	PathPrefix string
	current    map[string]*ProjectSpec
}

// NewLaunchTool builds the UI backend over a pipeline.
func NewLaunchTool(p *core.Pipeline) *LaunchTool {
	return &LaunchTool{p: p, PathPrefix: "gatekeeper/", current: make(map[string]*ProjectSpec)}
}

// ArtifactPath maps a project to its repository path.
func (lt *LaunchTool) ArtifactPath(project string) string {
	return lt.PathPrefix + project + ".json"
}

// ZeusPath maps a project to its distribution path; Gatekeeper runtimes
// Bind to it.
func (lt *LaunchTool) ZeusPath(project string) string {
	return core.ZeusPath(lt.ArtifactPath(project))
}

// Current returns the last landed spec for a project (nil if none).
func (lt *LaunchTool) Current(project string) *ProjectSpec { return lt.current[project] }

// Update submits a project change. The returned report carries the
// pipeline outcome; the human-readable change description is posted to the
// review diff.
func (lt *LaunchTool) Update(spec *ProjectSpec, author, reviewer string, opts ...core.Option) *core.ChangeReport {
	notes := DescribeChange(lt.current[spec.Project], spec)
	req := &core.ChangeRequest{
		Author:      author,
		Reviewer:    reviewer,
		Title:       fmt.Sprintf("gatekeeper %s: %s", spec.Project, notes[0]),
		Raws:        map[string][]byte{lt.ArtifactPath(spec.Project): spec.Encode()},
		ReviewNotes: notes,
	}
	for _, o := range opts {
		o(req)
	}
	report := lt.p.Submit(req)
	if report.OK() {
		lt.current[spec.Project] = spec
	}
	return report
}

// Launch walks a full staged rollout: each stage is one pipeline change;
// the sequence stops at the first blocked stage. It returns the per-stage
// reports.
func (lt *LaunchTool) Launch(project, region, author, reviewer string, opts ...core.Option) []*core.ChangeReport {
	var reports []*core.ChangeReport
	for _, spec := range RolloutStages(project, region) {
		rep := lt.Update(spec, author, reviewer, opts...)
		reports = append(reports, rep)
		if !rep.OK() {
			break
		}
	}
	return reports
}
