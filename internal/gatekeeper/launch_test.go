package gatekeeper

import (
	"context"
	"strings"
	"testing"
	"time"

	"configerator/internal/cluster"
	"configerator/internal/core"
)

func launchRig(t *testing.T) (*LaunchTool, *cluster.Fleet) {
	t.Helper()
	fleet := cluster.New(cluster.SmallConfig(3, 33))
	fleet.Net.RunFor(10 * time.Second)
	p := core.New(core.Options{Fleet: fleet})
	return NewLaunchTool(p), fleet
}

func TestLaunchToolEndToEnd(t *testing.T) {
	lt, fleet := launchRig(t)
	fleet.SubscribeAll(lt.ZeusPath("NewFeed"))

	// Wire a runtime on one server, bound to the config path.
	rt := NewRuntime(NewRegistry(nil))
	srv := fleet.AllServers()[0]
	rt.Bind(context.Background(), srv.Client, lt.ZeusPath("NewFeed"))

	spec := &ProjectSpec{Project: "NewFeed", Rules: []RuleSpec{{
		Restraints: []RestraintSpec{{Name: "employee"}}, PassProbability: 1,
	}}}
	rep := lt.Update(spec, "alice", "bob", core.SkipCanary())
	if !rep.OK() {
		t.Fatalf("update blocked at %s: %v", rep.FailedStage, rep.Err)
	}
	fleet.Net.RunFor(20 * time.Second)
	u := &User{ID: 1, Employee: true, Now: fleet.Net.Now()}
	if !rt.Check("NewFeed", u) {
		t.Error("runtime did not pick up the launched project")
	}
	if lt.Current("NewFeed") != spec {
		t.Error("Current not updated")
	}
}

func TestLaunchToolReviewNotes(t *testing.T) {
	lt, _ := launchRig(t)
	spec1 := &ProjectSpec{Project: "X", Rules: []RuleSpec{{
		Restraints: []RestraintSpec{{Name: "employee"}}, PassProbability: 0.01,
	}}}
	rep := lt.Update(spec1, "alice", "bob", core.SkipCanary())
	if !rep.OK() {
		t.Fatal(rep.Err)
	}
	spec2 := &ProjectSpec{Project: "X", Rules: []RuleSpec{{
		Restraints: []RestraintSpec{{Name: "employee"}}, PassProbability: 0.10,
	}}}
	rep = lt.Update(spec2, "alice", "bob", core.SkipCanary())
	if !rep.OK() {
		t.Fatal(rep.Err)
	}
	d, err := lt.p.Review.Get(rep.DiffID)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range d.Comments {
		if strings.Contains(c, "Updated employee sampling from 1% to 10%") {
			found = true
		}
	}
	if !found {
		t.Errorf("review comments = %v", d.Comments)
	}
}

func TestLaunchSequence(t *testing.T) {
	lt, fleet := launchRig(t)
	fleet.SubscribeAll(lt.ZeusPath("Seq"))
	reports := lt.Launch("Seq", "us-west", "alice", "bob", core.SkipCanary())
	if len(reports) != 7 {
		t.Fatalf("reports = %d, want 7 stages", len(reports))
	}
	for i, rep := range reports {
		if !rep.OK() {
			t.Fatalf("stage %d blocked: %v", i, rep.Err)
		}
	}
	// The final committed spec is the global-100% one.
	cur := lt.Current("Seq")
	if cur == nil || len(cur.Rules) != 1 || cur.Rules[0].PassProbability != 1.0 {
		t.Errorf("final spec = %+v", cur)
	}
}
