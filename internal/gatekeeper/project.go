package gatekeeper

import (
	"encoding/json"
	"fmt"

	"configerator/internal/stats"
)

// RestraintSpec is one configured restraint instance within a rule. The
// negation operator is built inside each restraint (§4): Negate flips the
// result, giving the gating logic the full expressive power of DNF.
type RestraintSpec struct {
	Name   string `json:"name"`
	Params Params `json:"params,omitempty"`
	Negate bool   `json:"negate,omitempty"`
}

// RuleSpec is one if-statement: a conjunction of restraints plus the
// probabilistic user sampling applied when the conjunction holds.
type RuleSpec struct {
	Restraints []RestraintSpec `json:"restraints"`
	// PassProbability in [0,1]: rand(user_id) < p, deterministic per
	// (project, user) so a user's experience is stable and raising p from
	// 1% to 10% strictly grows the enabled set.
	PassProbability float64 `json:"pass_probability"`
}

// ProjectSpec is the JSON shape of a Gatekeeper project config as stored
// in Configerator.
type ProjectSpec struct {
	Project string     `json:"project"`
	Rules   []RuleSpec `json:"rules"`
}

// ParseProjectSpec decodes a project config artifact.
func ParseProjectSpec(data []byte) (*ProjectSpec, error) {
	var spec ProjectSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("gatekeeper: parsing project config: %w", err)
	}
	if spec.Project == "" {
		return nil, fmt.Errorf("gatekeeper: project config missing \"project\"")
	}
	for i, rule := range spec.Rules {
		if rule.PassProbability < 0 || rule.PassProbability > 1 {
			return nil, fmt.Errorf("gatekeeper: rule %d pass_probability %v out of [0,1]",
				i, rule.PassProbability)
		}
	}
	return &spec, nil
}

// Encode renders the spec as its canonical JSON artifact.
func (s *ProjectSpec) Encode() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		panic("gatekeeper: encoding project spec: " + err.Error())
	}
	return b
}

// boundRestraint is a compiled restraint instance with runtime statistics.
type boundRestraint struct {
	spec RestraintSpec
	impl *Restraint
	// Execution statistics for cost-based optimization.
	evals     uint64
	trues     uint64
	totalCost float64
}

func (b *boundRestraint) check(u *User) bool {
	b.evals++
	b.totalCost += b.impl.BaseCost
	res := b.impl.Check(u, b.spec.Params)
	if b.spec.Negate {
		res = !res
	}
	if res {
		b.trues++
	}
	return res
}

// probTrue estimates P(restraint passes) from observed stats (seeded at
// 0.5 before data accumulates).
func (b *boundRestraint) probTrue() float64 {
	if b.evals < 32 {
		return 0.5
	}
	return float64(b.trues) / float64(b.evals)
}

// rank orders restraints for evaluation within a conjunction: evaluate the
// cheapest, most-likely-to-fail restraint first. A conjunction
// short-circuits on the first false, so the expected cost of a restraint
// scheduled first is cost/(1-P(true)) per pruned evaluation.
func (b *boundRestraint) rank() float64 {
	pFalse := 1 - b.probTrue()
	const eps = 1e-3
	return b.impl.BaseCost / (pFalse + eps)
}

// boundRule is a compiled if-statement.
type boundRule struct {
	restraints []*boundRestraint
	passProb   float64
	order      []int // evaluation order (indices into restraints)
}

// Project is a compiled Gatekeeper project: the boolean tree the runtime
// evaluates on every gk_check.
type Project struct {
	Name  string
	rules []*boundRule

	// Checks and PassCount are exposure statistics.
	Checks    uint64
	PassCount uint64

	optimizeEvery uint64
}

// Compile binds a spec's restraint names against the registry.
func Compile(spec *ProjectSpec, reg *Registry) (*Project, error) {
	p := &Project{Name: spec.Project, optimizeEvery: 1024}
	for _, rs := range spec.Rules {
		rule := &boundRule{passProb: rs.PassProbability}
		for _, inst := range rs.Restraints {
			impl, err := reg.Lookup(inst.Name)
			if err != nil {
				return nil, err
			}
			rule.restraints = append(rule.restraints, &boundRestraint{spec: inst, impl: impl})
		}
		rule.order = make([]int, len(rule.restraints))
		for i := range rule.order {
			rule.order[i] = i
		}
		p.rules = append(p.rules, rule)
	}
	return p, nil
}

// Check is gk_check(project, user): walk the if-statements in order; the
// first rule whose conjunction holds casts the deterministic die.
func (p *Project) Check(u *User) bool {
	p.Checks++
	if p.optimizeEvery > 0 && p.Checks%p.optimizeEvery == 0 {
		p.Optimize()
	}
	for _, rule := range p.rules {
		matched := true
		for _, idx := range rule.order {
			if !rule.restraints[idx].check(u) {
				matched = false
				break
			}
		}
		if matched {
			if sampleUser(p.Name, u.ID, rule.passProb) {
				p.PassCount++
				return true
			}
			return false
		}
	}
	return false
}

// sampleUser is the paper's rand($user_id) < $pass_prob with a determinism
// guarantee: the same (project, user) always lands on the same side for a
// given probability, and increasing the probability only adds users.
func sampleUser(project string, userID int64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return stats.HashFloat(fmt.Sprintf("%s:%d", project, userID)) < p
}

// Optimize reorders each conjunction by the cost-based rank, like an SQL
// engine reordering predicates (§4).
func (p *Project) Optimize() {
	for _, rule := range p.rules {
		order := rule.order
		// Insertion sort by rank: tiny lists, called often.
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && rule.restraints[order[j]].rank() < rule.restraints[order[j-1]].rank(); j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
	}
}

// SetOptimizeInterval tunes (or, with 0, disables) periodic reordering.
func (p *Project) SetOptimizeInterval(every uint64) { p.optimizeEvery = every }

// EvalOrder exposes the current evaluation order of rule i (tests).
func (p *Project) EvalOrder(rule int) []string {
	r := p.rules[rule]
	out := make([]string, len(r.order))
	for i, idx := range r.order {
		out[i] = r.restraints[idx].spec.Name
	}
	return out
}

// RestraintEvals reports total restraint evaluations across rules — the
// work metric the optimizer minimizes.
func (p *Project) RestraintEvals() uint64 {
	var n uint64
	for _, r := range p.rules {
		for _, b := range r.restraints {
			n += b.evals
		}
	}
	return n
}

// RestraintCost reports the total weighted evaluation cost.
func (p *Project) RestraintCost() float64 {
	var c float64
	for _, r := range p.rules {
		for _, b := range r.restraints {
			c += b.totalCost
		}
	}
	return c
}
