package gatekeeper

import (
	"testing"
	"testing/quick"
)

func TestQuickSamplingMonotoneInProbability(t *testing.T) {
	// For any user and any pair of probabilities p1 <= p2, a user sampled
	// in at p1 is sampled in at p2 — the property that makes 1%→10%→100%
	// rollouts strictly widening.
	err := quick.Check(func(id int64, a, b float64) bool {
		p1 := clamp01(a)
		p2 := clamp01(b)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		if sampleUser("Launch", id, p1) && !sampleUser("Launch", id, p2) {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickSamplingDeterministic(t *testing.T) {
	err := quick.Check(func(id int64, p float64) bool {
		pr := clamp01(p)
		return sampleUser("X", id, pr) == sampleUser("X", id, pr)
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickSamplingBoundaries(t *testing.T) {
	err := quick.Check(func(id int64) bool {
		return !sampleUser("X", id, 0) && sampleUser("X", id, 1)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickProjectIndependence(t *testing.T) {
	// Different projects bucket users independently: there exist users
	// enabled in one but not the other (sanity that the project name is
	// folded into the hash).
	inA, inB, differ := 0, 0, 0
	for id := int64(0); id < 2000; id++ {
		a := sampleUser("ProjA", id, 0.5)
		b := sampleUser("ProjB", id, 0.5)
		if a {
			inA++
		}
		if b {
			inB++
		}
		if a != b {
			differ++
		}
	}
	if differ < 500 {
		t.Errorf("projects too correlated: differ=%d", differ)
	}
	if inA < 800 || inA > 1200 || inB < 800 || inB > 1200 {
		t.Errorf("sampling off: inA=%d inB=%d", inA, inB)
	}
}

func clamp01(x float64) float64 {
	if x != x || x < 0 { // NaN or negative
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
