package gatekeeper

import (
	"fmt"
	"time"

	"configerator/internal/laser"
)

// Params are a restraint instance's configuration values (decoded from the
// project's JSON config).
type Params map[string]interface{}

func (p Params) strings(key string) []string {
	switch v := p[key].(type) {
	case []string:
		return v
	case []interface{}:
		out := make([]string, 0, len(v))
		for _, e := range v {
			if s, ok := e.(string); ok {
				out = append(out, s)
			}
		}
		return out
	}
	return nil
}

func (p Params) float(key string, def float64) float64 {
	switch v := p[key].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	case int64:
		return float64(v)
	}
	return def
}

func (p Params) ints(key string) []int64 {
	switch v := p[key].(type) {
	case []int64:
		return v
	case []interface{}:
		out := make([]int64, 0, len(v))
		for _, e := range v {
			if f, ok := e.(float64); ok {
				out = append(out, int64(f))
			}
		}
		return out
	}
	return nil
}

// Restraint is a statically implemented predicate over a user. Projects
// compose restraint instances dynamically through configuration.
type Restraint struct {
	Name string
	// Check evaluates the predicate.
	Check func(u *User, p Params) bool
	// BaseCost is the relative evaluation cost used to seed the
	// cost-based optimizer (laser lookups dwarf attribute checks).
	BaseCost float64
}

// Registry maps restraint names to implementations. New restraints are
// added in code ("new restraints can be added quickly" — PHP rolls twice a
// day); everything else changes through config.
type Registry struct {
	byName map[string]*Restraint
	laser  *laser.Store
}

// NewRegistry returns a registry with every built-in restraint installed.
// The laser store may be nil if no laser() restraints are used.
func NewRegistry(ls *laser.Store) *Registry {
	r := &Registry{byName: make(map[string]*Restraint), laser: ls}
	r.installBuiltins()
	return r
}

// Register installs a custom restraint.
func (r *Registry) Register(res *Restraint) {
	r.byName[res.Name] = res
}

// Lookup returns a restraint by name.
func (r *Registry) Lookup(name string) (*Restraint, error) {
	res, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("gatekeeper: unknown restraint %q", name)
	}
	return res, nil
}

// Names lists registered restraint names (unsorted).
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	return out
}

func inStrings(list []string, v string) bool {
	for _, s := range list {
		if s == v {
			return true
		}
	}
	return false
}

func (r *Registry) installBuiltins() {
	add := func(name string, cost float64, check func(u *User, p Params) bool) {
		r.Register(&Restraint{Name: name, BaseCost: cost, Check: check})
	}
	add("always", 0.1, func(u *User, p Params) bool { return true })
	add("employee", 1, func(u *User, p Params) bool { return u.Employee })
	add("country", 1, func(u *User, p Params) bool { return inStrings(p.strings("in"), u.Country) })
	add("region", 1, func(u *User, p Params) bool { return inStrings(p.strings("in"), u.Region) })
	add("locale", 1, func(u *User, p Params) bool { return inStrings(p.strings("in"), u.Locale) })
	add("app", 1, func(u *User, p Params) bool { return inStrings(p.strings("in"), u.App) })
	add("platform", 1, func(u *User, p Params) bool { return inStrings(p.strings("in"), u.Platform) })
	add("device_model", 1, func(u *User, p Params) bool {
		return inStrings(p.strings("in"), u.DeviceModel)
	})
	add("app_version_at_least", 1, func(u *User, p Params) bool {
		return float64(u.AppVersion) >= p.float("version", 0)
	})
	add("new_user", 1, func(u *User, p Params) bool {
		return u.AccountAge <= time.Duration(p.float("max_days", 30))*24*time.Hour
	})
	add("account_age_at_least_days", 1, func(u *User, p Params) bool {
		return u.AccountAge >= time.Duration(p.float("days", 0))*24*time.Hour
	})
	add("friend_count_at_least", 1, func(u *User, p Params) bool {
		return float64(u.FriendCount) >= p.float("n", 0)
	})
	add("friend_count_at_most", 1, func(u *User, p Params) bool {
		return float64(u.FriendCount) <= p.float("n", 0)
	})
	add("id_in", 2, func(u *User, p Params) bool {
		for _, id := range p.ints("ids") {
			if id == u.ID {
				return true
			}
		}
		return false
	})
	add("id_mod", 1, func(u *User, p Params) bool {
		mod := int64(p.float("mod", 100))
		if mod <= 0 {
			return false
		}
		bucket := u.ID % mod
		for _, b := range p.ints("buckets") {
			if b == bucket {
				return true
			}
		}
		return false
	})
	add("datetime_range", 1, func(u *User, p Params) bool {
		after := int64(p.float("after_unix", 0))
		before := int64(p.float("before_unix", 1<<62))
		t := u.Now.Unix()
		return t >= after && t < before
	})
	add("weekday", 1, func(u *User, p Params) bool {
		return inStrings(p.strings("in"), u.Now.Weekday().String())
	})
	add("hour_range", 1, func(u *User, p Params) bool {
		h := float64(u.Now.Hour())
		return h >= p.float("from", 0) && h < p.float("to", 24)
	})
	// The key-value-store integration point: passes when
	// get("$project-$user_id") > threshold. Far more expensive than
	// attribute restraints — the optimizer should schedule it last.
	add("laser", 50, func(u *User, p Params) bool {
		if r.laser == nil {
			return false
		}
		project, _ := p["project"].(string)
		score, ok := r.laser.Get(laser.UserKey(project, u.ID))
		return ok && score > p.float("threshold", 0)
	})
}
