package gatekeeper

import (
	"context"
	"fmt"
	"sort"

	"configerator/internal/confclient"
)

// Runtime is the Gatekeeper runtime embedded in a product server (the
// paper's HHVM extension): it holds the compiled projects, re-compiles a
// project whenever its config changes, and serves gk_check calls.
type Runtime struct {
	registry *Registry
	projects map[string]*Project

	// Recompiles counts live project config swaps.
	Recompiles uint64
}

// NewRuntime returns an empty runtime over the registry.
func NewRuntime(reg *Registry) *Runtime {
	return &Runtime{registry: reg, projects: make(map[string]*Project)}
}

// Load installs (or replaces) a project from its config artifact. Called
// live when a config update arrives — no code upgrade.
func (r *Runtime) Load(data []byte) error {
	spec, err := ParseProjectSpec(data)
	if err != nil {
		return err
	}
	p, err := Compile(spec, r.registry)
	if err != nil {
		return err
	}
	r.projects[p.Name] = p
	r.Recompiles++
	return nil
}

// Check is gk_check($project, $user): false for unknown projects (a
// product must fail closed when its gate config has not arrived).
func (r *Runtime) Check(project string, u *User) bool {
	p, ok := r.projects[project]
	if !ok {
		return false
	}
	return p.Check(u)
}

// Project returns a loaded project (nil if absent).
func (r *Runtime) Project(name string) *Project { return r.projects[name] }

// Projects lists loaded project names, sorted.
func (r *Runtime) Projects() []string {
	out := make([]string, 0, len(r.projects))
	for n := range r.projects {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Bind watches a project's config path so that config updates rebuild
// the boolean tree live (bottom of Figure 3: the new config is delivered
// to production servers and the Gatekeeper runtime reads it). The watch
// ends when ctx is cancelled.
func (r *Runtime) Bind(ctx context.Context, client *confclient.Client, path string) {
	client.Watch(ctx, path, func(cfg *confclient.Value) {
		// A malformed artifact is ignored; the previous tree keeps
		// serving (availability over freshness).
		_ = r.Load(cfg.Raw)
	})
}

// RolloutStages builds the spec sequence for a typical staged launch
// (§4): employees 1%→10%→100%, then a regional slice, then global
// 1%→10%→100%. Each stage is one config update.
func RolloutStages(project, region string) []*ProjectSpec {
	employee := func(p float64) RuleSpec {
		return RuleSpec{
			Restraints:      []RestraintSpec{{Name: "employee"}},
			PassProbability: p,
		}
	}
	regional := func(p float64) RuleSpec {
		return RuleSpec{
			Restraints:      []RestraintSpec{{Name: "region", Params: Params{"in": []string{region}}}},
			PassProbability: p,
		}
	}
	global := func(p float64) RuleSpec {
		return RuleSpec{
			Restraints:      []RestraintSpec{{Name: "always"}},
			PassProbability: p,
		}
	}
	mk := func(rules ...RuleSpec) *ProjectSpec {
		return &ProjectSpec{Project: project, Rules: rules}
	}
	return []*ProjectSpec{
		mk(employee(0.01)),
		mk(employee(0.10)),
		mk(employee(1.0)),
		mk(employee(1.0), regional(0.05)),
		mk(employee(1.0), regional(0.05), global(0.01)),
		mk(employee(1.0), regional(0.05), global(0.10)),
		mk(global(1.0)),
	}
}

// String summarizes runtime state.
func (r *Runtime) String() string {
	return fmt.Sprintf("gatekeeper.Runtime{projects: %d, recompiles: %d}",
		len(r.projects), r.Recompiles)
}
