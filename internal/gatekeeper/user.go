// Package gatekeeper implements Gatekeeper (§4): staged rollout of product
// features and A/B experiments through live config changes.
//
// A Gatekeeper project is gating logic in disjunctive normal form: an
// ordered list of if-statements whose conditions are conjunctions of
// restraints (employee? country? device model? laser score above T?), each
// with a configurable pass probability that samples users
// deterministically. Restraints are statically implemented (hundreds exist
// at Facebook; ~20 here); projects are composed from them dynamically
// through configuration, so the rollout target changes with a config
// update and no code push. The runtime reads the project config, builds a
// boolean tree, and — like an SQL engine doing cost-based optimization —
// uses execution statistics (restraint cost and probability of returning
// true) to evaluate the tree efficiently.
package gatekeeper

import "time"

// User is the evaluation context for one gate check: the viewer and
// environment attributes restraints inspect.
type User struct {
	ID          int64
	Employee    bool
	Country     string
	Region      string
	Locale      string
	App         string // product binary: "www", "fb4a", "messenger", ...
	Platform    string // "www", "ios", "android"
	AppVersion  int    // monotone build number
	DeviceModel string
	AccountAge  time.Duration
	FriendCount int
	// Now is the check time (virtual time in simulations).
	Now time.Time
}
