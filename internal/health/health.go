// Package health provides the healthcheck metrics the canary service
// compares (§3.3): each server exposes a metric sample (error rate,
// latency, click-through rate, …), and a canary phase compares the servers
// running the new config against the rest of the fleet — "the CTR collected
// from the servers using the new config should not be more than x% lower
// than the CTR collected from the servers still using the old config".
package health

import (
	"math"
	"sort"

	"configerator/internal/simnet"
)

// Canonical metric names used across the repository's experiments.
const (
	MetricErrorRate = "error_rate"
	MetricLatencyMs = "latency_ms"
	MetricCTR       = "ctr"
	MetricCrashRate = "crash_rate"
	MetricLogSpew   = "log_lines_per_sec"
)

// Sample is one server's metric snapshot.
type Sample map[string]float64

// Collector produces a metric sample for a server. The cluster simulation
// implements it; canary tests use fakes.
type Collector interface {
	Sample(server simnet.NodeID) Sample
}

// CollectorFunc adapts a function to Collector.
type CollectorFunc func(server simnet.NodeID) Sample

// Sample implements Collector.
func (f CollectorFunc) Sample(server simnet.NodeID) Sample { return f(server) }

// Mean averages one metric over samples (missing metrics count as absent,
// not zero). The second result is false when no sample carries the metric.
func Mean(samples []Sample, metric string) (float64, bool) {
	sum, n := 0.0, 0
	for _, s := range samples {
		if v, ok := s[metric]; ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// Score folds a sample into one badness number: higher is sicker. Error
// rate dominates (one point per 0.1% of errors beats a millisecond of
// latency), so an endpoint that times out ranks below a slow-but-correct
// one. Used by the proxy to pick which observer to talk to.
func Score(s Sample) float64 {
	return s[MetricErrorRate]*1000 + s[MetricLatencyMs]
}

// Ranked is one scored endpoint.
type Ranked struct {
	ID    simnet.NodeID
	Score float64
}

// Rank orders endpoints healthiest-first. Ties break by id so the order
// is deterministic regardless of map iteration.
func Rank(samples map[simnet.NodeID]Sample) []Ranked {
	out := make([]Ranked, 0, len(samples))
	for id, s := range samples {
		out = append(out, Ranked{ID: id, Score: Score(s)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Comparison is a test-vs-control readout for one metric.
type Comparison struct {
	Metric      string
	TestMean    float64
	ControlMean float64
	// RelDelta is (test-control)/control; +0.5 means the test group is 50%
	// higher. When control is ~0 and test is positive, RelDelta is +Inf.
	RelDelta float64
	// Valid is false when either side had no data.
	Valid bool
}

// Compare computes the test-vs-control comparison for one metric.
func Compare(test, control []Sample, metric string) Comparison {
	c := Comparison{Metric: metric}
	tm, tok := Mean(test, metric)
	cm, cok := Mean(control, metric)
	if !tok || !cok {
		return c
	}
	c.TestMean, c.ControlMean, c.Valid = tm, cm, true
	switch {
	case cm != 0:
		c.RelDelta = (tm - cm) / math.Abs(cm)
	case tm == 0:
		c.RelDelta = 0
	case tm > 0:
		c.RelDelta = math.Inf(1)
	default:
		c.RelDelta = math.Inf(-1)
	}
	return c
}
