package health

import (
	"math"
	"testing"

	"configerator/internal/simnet"
)

func TestMean(t *testing.T) {
	samples := []Sample{
		{MetricErrorRate: 0.01},
		{MetricErrorRate: 0.03},
		{MetricLatencyMs: 50}, // no error_rate: excluded, not zero
	}
	m, ok := Mean(samples, MetricErrorRate)
	if !ok || math.Abs(m-0.02) > 1e-12 {
		t.Errorf("Mean = %v, %v", m, ok)
	}
	if _, ok := Mean(samples, "unknown"); ok {
		t.Error("unknown metric should report no data")
	}
}

func TestCompareRelDelta(t *testing.T) {
	test := []Sample{{MetricErrorRate: 0.03}}
	control := []Sample{{MetricErrorRate: 0.02}}
	c := Compare(test, control, MetricErrorRate)
	if !c.Valid {
		t.Fatal("not valid")
	}
	if math.Abs(c.RelDelta-0.5) > 1e-9 {
		t.Errorf("RelDelta = %v, want 0.5", c.RelDelta)
	}
}

func TestCompareZeroControl(t *testing.T) {
	c := Compare([]Sample{{MetricCrashRate: 0.1}}, []Sample{{MetricCrashRate: 0}}, MetricCrashRate)
	if !math.IsInf(c.RelDelta, 1) {
		t.Errorf("RelDelta = %v, want +Inf", c.RelDelta)
	}
	c = Compare([]Sample{{MetricCrashRate: 0}}, []Sample{{MetricCrashRate: 0}}, MetricCrashRate)
	if c.RelDelta != 0 {
		t.Errorf("0/0 RelDelta = %v, want 0", c.RelDelta)
	}
}

func TestCompareMissingData(t *testing.T) {
	c := Compare(nil, []Sample{{MetricCTR: 0.1}}, MetricCTR)
	if c.Valid {
		t.Error("comparison with empty test group must be invalid")
	}
}

func TestCompareNegativeDelta(t *testing.T) {
	// CTR drops 20%.
	c := Compare([]Sample{{MetricCTR: 0.08}}, []Sample{{MetricCTR: 0.10}}, MetricCTR)
	if math.Abs(c.RelDelta+0.2) > 1e-9 {
		t.Errorf("RelDelta = %v, want -0.2", c.RelDelta)
	}
}

func TestCollectorFunc(t *testing.T) {
	var c Collector = CollectorFunc(func(server simnet.NodeID) Sample {
		return Sample{MetricLatencyMs: 42}
	})
	if got := c.Sample("web-1")[MetricLatencyMs]; got != 42 {
		t.Errorf("Sample = %v", got)
	}
}
