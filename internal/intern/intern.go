// Package intern is a process-global string intern table for config paths.
//
// At fleet scale every layer of the distribution tree keys its state by
// config path: the Zeus data tree, every observer's replica and watch
// table, every proxy's snapshot and disk cache, and every client's
// subscription set. Without interning, a simulation of O(nodes) proxies
// each tracking O(paths) configs holds O(nodes × paths) copies of the same
// byte sequences — the paths outweigh the configs. Interning collapses
// each distinct path to one shared immutable string: the first writer
// pays a table insert, every later holder shares the same backing bytes.
//
// The table is sharded to keep write contention negligible, and the read
// (already-interned) path takes only a shard RLock and a map lookup — no
// allocation, so it is safe to call from hot paths. Strings are never
// evicted: config namespaces are small and long-lived by design (the
// paper's repository holds O(10^4–10^5) paths for the whole site).
package intern

import "sync"

const shardCount = 64 // power of two; FNV-1a low bits pick the shard

type shard struct {
	mu sync.RWMutex
	m  map[string]string
}

var shards [shardCount]shard

func init() {
	for i := range shards {
		shards[i].m = make(map[string]string)
	}
}

// FNV-1a over the string's bytes, inlined so shard selection is
// allocation-free (matches vcs.HashBytes; duplicated here to keep intern
// dependency-free).
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Path returns the canonical shared instance of s, inserting it on first
// sight. The returned string is equal to s and must be treated as
// immutable (strings are). Safe for concurrent use.
func Path(s string) string {
	if s == "" {
		return ""
	}
	sh := &shards[hashString(s)&(shardCount-1)]
	sh.mu.RLock()
	v, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	sh.mu.Lock()
	// Re-check under the write lock: another goroutine may have inserted
	// between the RUnlock and the Lock.
	if v, ok = sh.m[s]; !ok {
		// Clone the bytes so the table never pins a caller's larger
		// backing array (paths often arrive as substrings of messages).
		v = string(append([]byte(nil), s...))
		sh.m[s] = v
	}
	sh.mu.Unlock()
	return v
}

// Size reports the number of distinct interned strings (tests and
// capacity dashboards).
func Size() int {
	n := 0
	for i := range shards {
		sh := &shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}
