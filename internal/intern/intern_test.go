package intern

import (
	"fmt"
	"sync"
	"testing"
	"unsafe"
)

// sdata reports the pointer to a string's backing bytes.
func sdata(s string) uintptr {
	return (*(*struct {
		data uintptr
		len  int
	})(unsafe.Pointer(&s))).data
}

func TestPathCanonicalizes(t *testing.T) {
	// Build two equal strings with distinct backing arrays.
	a := string([]byte("/configs/intern/app.json"))
	b := string([]byte("/configs/intern/app.json"))
	if sdata(a) == sdata(b) {
		t.Skip("runtime deduplicated the test inputs")
	}
	ia, ib := Path(a), Path(b)
	if ia != a || ib != b {
		t.Fatalf("interned strings differ in value: %q %q", ia, ib)
	}
	if sdata(ia) != sdata(ib) {
		t.Errorf("Path returned two backing arrays for equal strings")
	}
}

func TestPathEmpty(t *testing.T) {
	if Path("") != "" {
		t.Fatal("empty string must intern to itself")
	}
}

// TestPathWarmZeroAlloc: interning an already-known string must not
// allocate — it runs on the proxy update path for every event.
func TestPathWarmZeroAlloc(t *testing.T) {
	s := string([]byte("/configs/intern/warm.json"))
	Path(s)
	allocs := testing.AllocsPerRun(100, func() {
		if Path(s) == "" {
			t.Fatal("lost interned string")
		}
	})
	if allocs != 0 {
		t.Errorf("warm Path allocates %.1f per run, want 0", allocs)
	}
}

func TestPathConcurrent(t *testing.T) {
	before := Size()
	const goroutines = 8
	const paths = 64
	var wg sync.WaitGroup
	out := make([][]string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got := make([]string, paths)
			for i := 0; i < paths; i++ {
				got[i] = Path(fmt.Sprintf("/configs/intern/conc-%d.json", i))
			}
			out[g] = got
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range out[g] {
			if sdata(out[g][i]) != sdata(out[0][i]) {
				t.Fatalf("goroutine %d path %d got a different canonical instance", g, i)
			}
		}
	}
	if grown := Size() - before; grown != paths {
		t.Errorf("table grew by %d, want %d", grown, paths)
	}
}
