package landingstrip

import (
	"errors"
	"strings"
	"testing"

	"configerator/internal/vcs"
)

var errGate = errors.New("gate: diff refused")

// TestStripGateRefusesDiff: a gate error rejects the diff before it
// touches the repository, and counts as a rejection.
func TestStripGateRefusesDiff(t *testing.T) {
	repo := vcs.NewRepository("shared")
	strip := New(repo, vcs.DefaultCostModel())
	strip.Gate = func(d *vcs.Diff) error {
		for _, ch := range d.Changes {
			if strings.Contains(ch.Path, "bad") {
				return errGate
			}
		}
		return nil
	}

	r := strip.Submit(mkDiff(repo, "alice", "svc/bad.cconf", "x"), t0)
	if !errors.Is(r.Err, errGate) {
		t.Fatalf("err = %v, want gate error", r.Err)
	}
	if repo.CommitCount() != 0 {
		t.Errorf("refused diff reached the repository: %d commits", repo.CommitCount())
	}
	if strip.Rejected != 1 || strip.Landed != 0 {
		t.Errorf("Rejected=%d Landed=%d, want 1/0", strip.Rejected, strip.Landed)
	}

	// A clean diff still lands through the same gate.
	r = strip.Submit(mkDiff(repo, "bob", "svc/good.cconf", "y"), t0)
	if r.Err != nil {
		t.Fatalf("clean diff rejected: %v", r.Err)
	}
	if strip.Landed != 1 || repo.CommitCount() != 1 {
		t.Errorf("Landed=%d commits=%d, want 1/1", strip.Landed, repo.CommitCount())
	}
}

// TestStripGateRejectionCostsNoQueueTime: a refused diff does not occupy
// the strip, so a diff behind it is not delayed.
func TestStripGateRejectionCostsNoQueueTime(t *testing.T) {
	repo := vcs.NewRepository("shared")
	strip := New(repo, vcs.DefaultCostModel())
	strip.Gate = func(d *vcs.Diff) error { return errGate }
	r := strip.Submit(mkDiff(repo, "alice", "a", "1"), t0)
	if r.Queued != 0 || r.Work != 0 {
		t.Errorf("refused diff accounted time: queued=%v work=%v", r.Queued, r.Work)
	}
	strip.Gate = nil
	if r := strip.Submit(mkDiff(repo, "bob", "b", "2"), t0); r.Queued != 0 {
		t.Errorf("later diff queued %v behind a refused diff", r.Queued)
	}
}
