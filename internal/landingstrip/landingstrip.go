// Package landingstrip implements the Landing Strip (§3.6): the component
// that receives diffs from committers, serializes them first-come-first-
// served, and pushes them into the shared git repository on the
// committers' behalf.
//
// Without it, every engineer pays git's semantics: a push is rejected
// whenever the local clone is stale — even when the two diffs touch
// different files — forcing an expensive update (10s of seconds on a large
// repository) and a retry that may lose the race again. The strip lands
// stale-based diffs directly and rejects only true conflicts, in which case
// the committer must update and resolve.
package landingstrip

import (
	"time"

	"configerator/internal/obs"
	"configerator/internal/vcs"
)

// Result reports one landed (or rejected) diff.
type Result struct {
	Hash   vcs.Hash
	Err    error
	Queued time.Duration // time spent waiting behind earlier diffs
	Work   time.Duration // commit execution time (cost model)
	Start  time.Time
	Finish time.Time
}

// Latency is the committer-visible end-to-end time.
func (r Result) Latency() time.Duration { return r.Queued + r.Work }

// Strip serializes commits into one repository. It does not own a clock;
// callers pass each diff's arrival time, which lets throughput experiments
// replay arbitrarily dense arrival processes.
type Strip struct {
	repo *vcs.Repository
	cost vcs.CostModel
	// busyUntil is when the strip finishes its current queue.
	busyUntil time.Time

	// Gate, when set, is consulted before a diff lands. A non-nil error
	// refuses the diff (counted in Rejected) without touching the
	// repository — the pipeline wires this to the configlint static
	// analyzer so that a change whose affected set lints dirty cannot
	// land, even when submitted to the strip directly, bypassing the
	// earlier pipeline stages.
	Gate func(d *vcs.Diff) error

	// Landed and Rejected count outcomes.
	Landed   int
	Rejected int

	// Obs, when set, records each landed diff's queueing delay and commit
	// work in the "strip.queued" / "strip.work" histograms and counts
	// outcomes (nil = no instrumentation).
	Obs *obs.Registry
}

// New returns a strip in front of repo with the given cost model.
func New(repo *vcs.Repository, cost vcs.CostModel) *Strip {
	return &Strip{repo: repo, cost: cost}
}

// Repo returns the repository this strip lands into.
func (s *Strip) Repo() *vcs.Repository { return s.repo }

// Submit lands one diff arriving at the given time. Queueing, the cost
// model, and conflict rejection are all accounted.
func (s *Strip) Submit(d *vcs.Diff, arrival time.Time) Result {
	if s.Gate != nil {
		if err := s.Gate(d); err != nil {
			s.Rejected++
			s.Obs.Add("strip.rejected", 1)
			return Result{Err: err, Start: arrival, Finish: arrival}
		}
	}
	start := arrival
	if s.busyUntil.After(start) {
		start = s.busyUntil
	}
	work := s.cost.CommitCost(s.repo.FileCount(), s.repo.CommitCount())
	finish := start.Add(work)
	s.busyUntil = finish
	h, err := s.repo.Land(d, finish)
	res := Result{
		Hash: h, Err: err,
		Queued: start.Sub(arrival), Work: work,
		Start: start, Finish: finish,
	}
	if err != nil {
		s.Rejected++
		s.Obs.Add("strip.rejected", 1)
	} else {
		s.Landed++
		s.Obs.Add("strip.landed", 1)
		s.Obs.Observe("strip.queued", res.Queued)
		s.Obs.Observe("strip.work", res.Work)
	}
	return res
}

// DirectPush models the ablation baseline: an engineer pushing straight to
// the shared repository with git semantics. Each stale-base attempt costs a
// full working-copy update before the retry; the diff's base is refreshed
// on update (so a true conflict surfaces as vcs.ErrConflict). The returned
// attempts count includes the successful one.
func DirectPush(repo *vcs.Repository, cost vcs.CostModel, wc *vcs.WorkingCopy, message string, arrival time.Time) (Result, int) {
	now := arrival
	attempts := 0
	for {
		attempts++
		work := cost.CommitCost(repo.FileCount(), repo.CommitCount())
		now = now.Add(work)
		h, err := wc.Push(message, now)
		if err == nil {
			return Result{Hash: h, Work: now.Sub(arrival), Start: arrival, Finish: now}, attempts
		}
		// Push rejected: the clone is stale. Pay the update and retry —
		// the churn the landing strip exists to eliminate.
		now = now.Add(cost.UpdateCost(repo.FileCount()))
		if uerr := wc.Update(); uerr != nil {
			return Result{Err: uerr, Start: arrival, Finish: now}, attempts
		}
	}
}
