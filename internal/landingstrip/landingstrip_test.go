package landingstrip

import (
	"errors"
	"testing"
	"time"

	"configerator/internal/vclock"
	"configerator/internal/vcs"
)

var t0 = vclock.Epoch

func mkDiff(repo *vcs.Repository, author, path, content string) *vcs.Diff {
	wc := repo.Clone(author)
	wc.Write(path, []byte(content))
	return wc.Diff("change " + path)
}

func TestStripLandsStaleDisjointDiffs(t *testing.T) {
	repo := vcs.NewRepository("shared")
	strip := New(repo, vcs.DefaultCostModel())
	// Both diffs are cut against the same (empty) head.
	dA := mkDiff(repo, "alice", "feed/a", "1")
	dB := mkDiff(repo, "bob", "tao/b", "2")
	rA := strip.Submit(dA, t0)
	rB := strip.Submit(dB, t0)
	if rA.Err != nil || rB.Err != nil {
		t.Fatalf("errs: %v %v", rA.Err, rB.Err)
	}
	if repo.CommitCount() != 2 || strip.Landed != 2 {
		t.Errorf("commits=%d landed=%d", repo.CommitCount(), strip.Landed)
	}
}

func TestStripRejectsTrueConflict(t *testing.T) {
	repo := vcs.NewRepository("shared")
	repo.CommitChanges("seed", "seed", t0, vcs.Change{Path: "f", Content: []byte("v0")})
	strip := New(repo, vcs.DefaultCostModel())
	dA := mkDiff(repo, "alice", "f", "alice")
	dB := mkDiff(repo, "bob", "f", "bob")
	if r := strip.Submit(dA, t0); r.Err != nil {
		t.Fatal(r.Err)
	}
	r := strip.Submit(dB, t0)
	if !errors.Is(r.Err, vcs.ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", r.Err)
	}
	if strip.Rejected != 1 {
		t.Errorf("Rejected = %d", strip.Rejected)
	}
}

func TestStripSerializesFCFS(t *testing.T) {
	repo := vcs.NewRepository("shared")
	strip := New(repo, vcs.DefaultCostModel())
	// Three diffs arrive at the same instant; they queue.
	var finishes []time.Time
	for i, who := range []string{"a", "b", "c"} {
		d := mkDiff(repo, who, "f"+who, "x")
		r := strip.Submit(d, t0)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		finishes = append(finishes, r.Finish)
		if i > 0 && r.Queued == 0 {
			t.Errorf("diff %d did not queue", i)
		}
	}
	if !(finishes[0].Before(finishes[1]) && finishes[1].Before(finishes[2])) {
		t.Errorf("finishes not ordered: %v", finishes)
	}
}

func TestStripIdleResetsQueue(t *testing.T) {
	repo := vcs.NewRepository("shared")
	strip := New(repo, vcs.DefaultCostModel())
	r1 := strip.Submit(mkDiff(repo, "a", "f1", "x"), t0)
	// Next arrival is long after the strip is idle: no queueing.
	r2 := strip.Submit(mkDiff(repo, "b", "f2", "x"), r1.Finish.Add(time.Hour))
	if r2.Queued != 0 {
		t.Errorf("Queued = %v, want 0", r2.Queued)
	}
}

func TestCommitCostGrowsWithRepo(t *testing.T) {
	repo := vcs.NewRepository("shared")
	strip := New(repo, vcs.DefaultCostModel())
	small := strip.Submit(mkDiff(repo, "a", "f", "x"), t0).Work
	// Inflate the repository.
	var changes []vcs.Change
	for i := 0; i < 50000; i++ {
		changes = append(changes, vcs.Change{Path: pathN(i), Content: []byte("y")})
	}
	repo.CommitChanges("bulk", "bulk", t0, changes...)
	large := strip.Submit(mkDiff(repo, "a", "g", "x"), t0.Add(time.Hour)).Work
	if large <= small {
		t.Errorf("work did not grow: %v vs %v", small, large)
	}
}

func pathN(i int) string {
	return "bulk/" + string(rune('a'+i%26)) + "/" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestDirectPushPaysUpdateOnContention(t *testing.T) {
	repo := vcs.NewRepository("shared")
	cost := vcs.DefaultCostModel()
	wc := repo.Clone("alice")
	wc.Write("feed/a", []byte("1"))
	// Bob lands first, making alice's clone stale.
	repo.CommitChanges("bob", "race", t0, vcs.Change{Path: "tao/b", Content: []byte("2")})
	res, attempts := DirectPush(repo, cost, wc, "alice's diff", t0)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2 (one stale, one clean)", attempts)
	}
	// The direct path must be slower than a strip landing of the same
	// stale diff (which skips the update entirely).
	strip := New(vcs.NewRepository("other"), cost)
	wc2 := strip.Repo().Clone("alice")
	wc2.Write("feed/a", []byte("1"))
	strip.Repo().CommitChanges("bob", "race", t0, vcs.Change{Path: "tao/b", Content: []byte("2")})
	stripRes := strip.Submit(wc2.Diff("alice's diff"), t0)
	if stripRes.Err != nil {
		t.Fatal(stripRes.Err)
	}
	if res.Finish.Sub(res.Start) <= stripRes.Latency() {
		t.Errorf("direct push (%v) should cost more than strip (%v)",
			res.Finish.Sub(res.Start), stripRes.Latency())
	}
}

func TestDirectPushConflict(t *testing.T) {
	repo := vcs.NewRepository("shared")
	repo.CommitChanges("seed", "seed", t0, vcs.Change{Path: "f", Content: []byte("v0")})
	wc := repo.Clone("alice")
	wc.Write("f", []byte("alice"))
	repo.CommitChanges("bob", "race", t0, vcs.Change{Path: "f", Content: []byte("bob")})
	res, _ := DirectPush(repo, vcs.DefaultCostModel(), wc, "m", t0)
	if !errors.Is(res.Err, vcs.ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", res.Err)
	}
}
