// Promotion gating: a PackageVessel tag move (latest/canary/prod) is an
// explicit metadata write — a TagRecord landed through the strip like any
// other config change. The gate refuses records that name unpublished
// versions, malformed records, and prod promotions that skip the canary
// stage, so the repository never holds a tag pointing at content the
// registry cannot serve.
package landingstrip

import (
	"fmt"

	"configerator/internal/packagevessel"
	"configerator/internal/vcs"
)

// PromotionRules answers the two questions a tag move raises, typically
// wired to a packagevessel.Registry (Exists -> HasVersion, Current ->
// CurrentTag). Kept as funcs so the gate does not force a registry
// dependency on every strip.
type PromotionRules struct {
	// Exists reports whether (name, version) has been published.
	Exists func(name string, version int64) bool
	// Current returns the version a tag currently points at.
	Current func(name, tag string) (int64, bool)
}

// RulesFor wires the gate to a live registry.
func RulesFor(r *packagevessel.Registry) PromotionRules {
	return PromotionRules{Exists: r.HasVersion, Current: r.CurrentTag}
}

// Gate validates every tag-record path a diff touches. Non-tag paths pass
// untouched; deletions of tag records are refused (a tag is moved, never
// removed, so rollback history stays navigable).
func (pr PromotionRules) Gate(d *vcs.Diff) error {
	for _, c := range d.Changes {
		name, tag, ok := packagevessel.ParseTagPath(c.Path)
		if !ok {
			continue
		}
		if c.Delete || c.Content == nil {
			return fmt.Errorf("landingstrip: %s: tag records are moved, not deleted", c.Path)
		}
		rec, err := packagevessel.ParseTagRecord(c.Content)
		if err != nil {
			return fmt.Errorf("landingstrip: %s: %w", c.Path, err)
		}
		if rec.Name != name || rec.Tag != tag {
			return fmt.Errorf("landingstrip: %s: record names %s/%s, path says %s/%s",
				c.Path, rec.Name, rec.Tag, name, tag)
		}
		if pr.Exists != nil && !pr.Exists(rec.Name, rec.Version) {
			return fmt.Errorf("landingstrip: %s: version %d is not published", c.Path, rec.Version)
		}
		if rec.Tag == "prod" && pr.Current != nil {
			canary, ok := pr.Current(rec.Name, "canary")
			if !ok || canary != rec.Version {
				return fmt.Errorf("landingstrip: %s: prod requires version %d to be the current canary (staged rollout)",
					c.Path, rec.Version)
			}
		}
	}
	return nil
}

// ChainGates runs gates in order, stopping at the first refusal — how the
// promotion gate composes with the configlint gate the pipeline installs.
func ChainGates(gates ...func(*vcs.Diff) error) func(*vcs.Diff) error {
	return func(d *vcs.Diff) error {
		for _, g := range gates {
			if g == nil {
				continue
			}
			if err := g(d); err != nil {
				return err
			}
		}
		return nil
	}
}
