package landingstrip

import (
	"errors"
	"strings"
	"testing"

	"configerator/internal/packagevessel"
	"configerator/internal/simnet"
	"configerator/internal/vcs"
)

func promoRig(t *testing.T) (*packagevessel.Registry, *Strip) {
	t.Helper()
	net := simnet.New(simnet.DefaultLatency(), 1)
	reg := packagevessel.NewRegistry(net, "registry", simnet.Placement{}, "tracker")
	packagevessel.NewTracker(net, "tracker", simnet.Placement{})
	for v := int64(1); v <= 2; v++ {
		p := packagevessel.SyntheticPackage("ranker", v, 4<<20, packagevessel.DefaultChunkSize, 7)
		if _, err := reg.Publish(p); err != nil {
			t.Fatal(err)
		}
	}
	repo := vcs.NewRepository("shared")
	strip := New(repo, vcs.DefaultCostModel())
	strip.Gate = RulesFor(reg).Gate
	return reg, strip
}

func tagDiff(t *testing.T, repo *vcs.Repository, rec packagevessel.TagRecord) *vcs.Diff {
	t.Helper()
	data, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	wc := repo.Clone("promoter")
	wc.Write(packagevessel.TagPath(rec.Name, rec.Tag), data)
	return wc.Diff("promote " + rec.Name + "/" + rec.Tag)
}

func TestPromotionGateLandsValidCanary(t *testing.T) {
	reg, strip := promoRig(t)
	rec, err := reg.Promote("ranker", "canary", 1)
	if err != nil {
		t.Fatal(err)
	}
	r := strip.Submit(tagDiff(t, strip.Repo(), rec), t0)
	if r.Err != nil {
		t.Fatalf("valid canary promotion refused: %v", r.Err)
	}
	// The landed record applies cleanly to the registry.
	if err := reg.ApplyTag(rec); err != nil {
		t.Fatal(err)
	}
	if v, ok := reg.CurrentTag("ranker", "canary"); !ok || v != 1 {
		t.Errorf("canary = %d, %v", v, ok)
	}
}

func TestPromotionGateRefusesUnpublished(t *testing.T) {
	_, strip := promoRig(t)
	rec := packagevessel.TagRecord{Name: "ranker", Tag: "canary", Version: 9}
	r := strip.Submit(tagDiff(t, strip.Repo(), rec), t0)
	if r.Err == nil || !strings.Contains(r.Err.Error(), "not published") {
		t.Fatalf("err = %v, want unpublished refusal", r.Err)
	}
	if strip.Landed != 0 || strip.Rejected != 1 {
		t.Errorf("landed=%d rejected=%d", strip.Landed, strip.Rejected)
	}
}

func TestPromotionGateRefusesProdWithoutCanary(t *testing.T) {
	reg, strip := promoRig(t)
	rec := packagevessel.TagRecord{Name: "ranker", Tag: "prod", Version: 1}
	r := strip.Submit(tagDiff(t, strip.Repo(), rec), t0)
	if r.Err == nil || !strings.Contains(r.Err.Error(), "canary") {
		t.Fatalf("err = %v, want staged-rollout refusal", r.Err)
	}
	// After canary lands and applies, prod goes through.
	canary, err := reg.Promote("ranker", "canary", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r := strip.Submit(tagDiff(t, strip.Repo(), canary), t0); r.Err != nil {
		t.Fatal(r.Err)
	}
	if err := reg.ApplyTag(canary); err != nil {
		t.Fatal(err)
	}
	prod, err := reg.Promote("ranker", "prod", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r := strip.Submit(tagDiff(t, strip.Repo(), prod), t0); r.Err != nil {
		t.Fatalf("prod after canary refused: %v", r.Err)
	}
}

func TestPromotionGateRefusesMalformed(t *testing.T) {
	_, strip := promoRig(t)
	repo := strip.Repo()

	// Record/path mismatch.
	wc := repo.Clone("promoter")
	rec := packagevessel.TagRecord{Name: "ranker", Tag: "canary", Version: 1}
	data, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	wc.Write(packagevessel.TagPath("other", "canary"), data)
	if r := strip.Submit(wc.Diff("mismatch"), t0); r.Err == nil {
		t.Error("path/record mismatch landed")
	}

	// Undecodable record.
	wc = repo.Clone("promoter")
	wc.Write(packagevessel.TagPath("ranker", "canary"), []byte("{"))
	if r := strip.Submit(wc.Diff("garbage"), t0); r.Err == nil {
		t.Error("garbage tag record landed")
	}

	// Non-tag paths pass through the gate untouched.
	wc = repo.Clone("someone")
	wc.Write("feeds/ranking.json", []byte("{}"))
	if r := strip.Submit(wc.Diff("unrelated"), t0); r.Err != nil {
		t.Errorf("unrelated change refused: %v", r.Err)
	}
}

func TestChainGates(t *testing.T) {
	boom := errors.New("boom")
	var calls []string
	g1 := func(*vcs.Diff) error { calls = append(calls, "g1"); return nil }
	g2 := func(*vcs.Diff) error { calls = append(calls, "g2"); return boom }
	g3 := func(*vcs.Diff) error { calls = append(calls, "g3"); return nil }
	gate := ChainGates(g1, nil, g2, g3)
	if err := gate(&vcs.Diff{}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(calls) != 2 || calls[0] != "g1" || calls[1] != "g2" {
		t.Errorf("calls = %v (must stop at first refusal)", calls)
	}
}
