// Package laser models Laser (§4): a key-value store on flash/memory that
// Gatekeeper's "laser()" restraint queries for gating decisions too
// expensive to compute inline — e.g. "users whose recent posts relate to
// trending topics" (stream processing) or "users suitable for a feature"
// (a MapReduce job re-run periodically). Any system can integrate with
// Gatekeeper by putting data into Laser.
package laser

import (
	"fmt"
	"sync"
)

// Store is the key → score store.
type Store struct {
	mu   sync.RWMutex
	data map[string]float64

	// Gets counts lookups (the restraint-cost statistics feed on this).
	Gets uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{data: make(map[string]float64)}
}

// Get returns the score for key; ok reports presence.
func (s *Store) Get(key string) (float64, bool) {
	s.mu.Lock()
	s.Gets++
	v, ok := s.data[key]
	s.mu.Unlock()
	return v, ok
}

// Set stores one score (the stream-processing path: continuous updates).
func (s *Store) Set(key string, score float64) {
	s.mu.Lock()
	s.data[key] = score
	s.mu.Unlock()
}

// Delete removes a key.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	delete(s.data, key)
	s.mu.Unlock()
}

// Len reports the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// UserKey builds the "$project-$user_id" key format the paper describes
// for the laser() restraint's get().
func UserKey(project string, userID int64) string {
	return fmt.Sprintf("%s-%d", project, userID)
}

// BatchJob models the MapReduce path: an offline job that computes a score
// for every user and loads the output into Laser. Re-running the job
// refreshes the data for all users.
type BatchJob struct {
	Project string
	// Compute derives the score for one user.
	Compute func(userID int64) float64
}

// Run scores every user and bulk-loads the results.
func (j BatchJob) Run(store *Store, userIDs []int64) int {
	loaded := 0
	for _, id := range userIDs {
		store.Set(UserKey(j.Project, id), j.Compute(id))
		loaded++
	}
	return loaded
}

// StreamFeeder models the stream-processing path: deltas applied as events
// arrive.
type StreamFeeder struct {
	Project string
	store   *Store
	// Events counts applied updates.
	Events uint64
}

// NewStreamFeeder returns a feeder writing into store.
func NewStreamFeeder(project string, store *Store) *StreamFeeder {
	return &StreamFeeder{Project: project, store: store}
}

// Feed applies one scored event for a user.
func (f *StreamFeeder) Feed(userID int64, score float64) {
	f.store.Set(UserKey(f.Project, userID), score)
	f.Events++
}
