package laser

import "testing"

func TestGetSet(t *testing.T) {
	s := NewStore()
	s.Set("k", 0.7)
	v, ok := s.Get("k")
	if !ok || v != 0.7 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing key found")
	}
	s.Delete("k")
	if _, ok := s.Get("k"); ok {
		t.Fatal("deleted key found")
	}
	if s.Gets != 3 {
		t.Errorf("Gets = %d", s.Gets)
	}
}

func TestUserKey(t *testing.T) {
	if got := UserKey("Trending", 42); got != "Trending-42" {
		t.Errorf("UserKey = %q", got)
	}
}

func TestBatchJobRefreshesAllUsers(t *testing.T) {
	s := NewStore()
	job := BatchJob{Project: "P", Compute: func(id int64) float64 { return float64(id) }}
	if n := job.Run(s, []int64{1, 2, 3}); n != 3 {
		t.Fatalf("loaded %d", n)
	}
	if v, _ := s.Get("P-2"); v != 2 {
		t.Errorf("P-2 = %v", v)
	}
	// Re-running refreshes.
	job.Compute = func(id int64) float64 { return float64(id) * 10 }
	job.Run(s, []int64{1, 2, 3})
	if v, _ := s.Get("P-2"); v != 20 {
		t.Errorf("after rerun P-2 = %v", v)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestStreamFeeder(t *testing.T) {
	s := NewStore()
	f := NewStreamFeeder("Topics", s)
	f.Feed(7, 0.9)
	f.Feed(7, 0.2) // newer event overwrites
	if v, _ := s.Get("Topics-7"); v != 0.2 {
		t.Errorf("score = %v", v)
	}
	if f.Events != 2 {
		t.Errorf("Events = %d", f.Events)
	}
}
