package mobileconfig

import (
	"testing"
	"time"

	"configerator/internal/confclient"
	"configerator/internal/proxy"
	"configerator/internal/simnet"
	"configerator/internal/zeus"
)

// TestConfigeratorBackend exercises the fourth backend kind: a mobile
// field mapped straight onto a Configerator config field served through a
// real Zeus + proxy stack.
func TestConfigeratorBackend(t *testing.T) {
	net := simnet.New(simnet.DefaultLatency(), 31)
	ens := zeus.StartEnsemble(net, 3, []simnet.Placement{
		{Region: "us", Cluster: "zk1"},
		{Region: "us", Cluster: "zk2"},
		{Region: "eu", Cluster: "zk3"},
	})
	ens.AddObserver("obs-1", simnet.Placement{Region: "us", Cluster: "web"})
	wc := zeus.NewClient("writer", ens.Members)
	net.AddNode("writer", simnet.Placement{Region: "us", Cluster: "ctrl"}, wc)
	net.RunFor(10 * time.Second)
	done := false
	net.After(0, func() {
		ctx := simnet.MakeContext(net, "writer")
		wc.Write(&ctx, "/configs/mobile/upload.json",
			[]byte(`{"quality":0.8,"max_mb":25}`), func(zeus.WriteResult) { done = true })
	})
	for i := 0; i < 100 && !done; i++ {
		net.RunFor(200 * time.Millisecond)
	}
	if !done {
		t.Fatal("seed write never committed")
	}
	px := proxy.New(net, "proxy-1", simnet.Placement{Region: "us", Cluster: "web"},
		[]simnet.NodeID{"obs-1"}, nil)
	client := confclient.New(px)
	client.Want("/configs/mobile/upload.json")
	net.RunFor(5 * time.Second)

	tr := NewTranslator(nil, client)
	mapping := &Mapping{Config: "APP", Fields: map[string]FieldBinding{
		"UPLOAD_QUALITY": {Backend: BackendConfigerator,
			Path: "/configs/mobile/upload.json", Field: "quality"},
		"WHOLE_CONFIG": {Backend: BackendConfigerator,
			Path: "/configs/mobile/upload.json"},
		"MISSING_FIELD": {Backend: BackendConfigerator,
			Path: "/configs/mobile/upload.json", Field: "nope"},
		"MISSING_PATH": {Backend: BackendConfigerator,
			Path: "/configs/never.json", Field: "x"},
	}}
	if err := tr.LoadMapping(mapping.Encode()); err != nil {
		t.Fatal(err)
	}
	if tr.Mapping().Config != "APP" {
		t.Errorf("Mapping accessor broken")
	}
	h := tr.RegisterSchema([]string{"UPLOAD_QUALITY", "WHOLE_CONFIG", "MISSING_FIELD", "MISSING_PATH"})
	if fields, ok := tr.SchemaFields(h); !ok || len(fields) != 4 {
		t.Errorf("SchemaFields = %v, %v", fields, ok)
	}
	values, err := tr.Translate(h, mkUser(1))
	if err != nil {
		t.Fatal(err)
	}
	if q, ok := values["UPLOAD_QUALITY"].(float64); !ok || q != 0.8 {
		t.Errorf("UPLOAD_QUALITY = %v", values["UPLOAD_QUALITY"])
	}
	if _, ok := values["WHOLE_CONFIG"]; !ok {
		t.Error("WHOLE_CONFIG missing")
	}
	// Unresolvable bindings are omitted, not fatal — the device keeps the
	// rest of its config.
	if _, ok := values["MISSING_FIELD"]; ok {
		t.Error("MISSING_FIELD should be omitted")
	}
	if _, ok := values["MISSING_PATH"]; ok {
		t.Error("MISSING_PATH should be omitted")
	}
}

func TestDeviceAccessors(t *testing.T) {
	r := newDeviceRig(t)
	d := r.addDevice(t, 1, []string{"FEATURE_X", "MAX_RETRIES"})
	r.net.RunFor(time.Minute)
	if v, ok := d.Get("FEATURE_X"); !ok || v != true {
		t.Errorf("Get = %v, %v", v, ok)
	}
	if _, ok := d.Get("NOPE"); ok {
		t.Error("missing field found")
	}
	if d.GetString("FEATURE_X", "d") != "d" {
		t.Error("GetString on bool should default")
	}
	if d.GetBool("MAX_RETRIES", true) != true {
		t.Error("GetBool on number should default")
	}
	if d.GetFloat("FEATURE_X", 9) != 9 {
		t.Error("GetFloat on bool should default")
	}
}

func TestDeviceRestartKeepsFlashAndResumesPolling(t *testing.T) {
	r := newDeviceRig(t)
	d := r.addDevice(t, 1, []string{"MAX_RETRIES"})
	r.net.RunFor(time.Minute)
	if d.GetFloat("MAX_RETRIES", 0) != 3.0 {
		t.Fatal("initial value missing")
	}
	// App restart: flash survives, polling resumes.
	r.net.Fail("phone-1")
	r.net.RunFor(time.Minute)
	r.net.Recover("phone-1")
	if d.GetFloat("MAX_RETRIES", 0) != 3.0 {
		t.Error("flash cache lost across restart")
	}
	// Change the backend; the resumed poll picks it up.
	m := testMapping()
	m.Fields["MAX_RETRIES"] = FieldBinding{Backend: BackendConstant, Value: 5.0}
	if err := r.tr.LoadMapping(m.Encode()); err != nil {
		t.Fatal(err)
	}
	r.net.RunFor(30 * time.Minute)
	if d.GetFloat("MAX_RETRIES", 0) != 5.0 {
		t.Error("polling did not resume after restart")
	}
}

func TestTranslateEmptyVariants(t *testing.T) {
	tr := NewTranslator(nil, nil)
	m := &Mapping{Config: "X", Fields: map[string]FieldBinding{
		"E":  {Backend: BackendExperiment, Project: "p"},                                              // no variants
		"E0": {Backend: BackendExperiment, Project: "p", Variants: []Variant{{Name: "a", Weight: 0}}}, // zero weight
		"GK": {Backend: BackendGatekeeper, Project: "p"},                                              // nil runtime
		"??": {Backend: "unknown"},
	}}
	if err := tr.LoadMapping(m.Encode()); err != nil {
		t.Fatal(err)
	}
	h := tr.RegisterSchema([]string{"E", "E0", "GK", "??"})
	values, err := tr.Translate(h, mkUser(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 0 {
		t.Errorf("values = %v, want all omitted", values)
	}
}

func TestTranslateNoMapping(t *testing.T) {
	tr := NewTranslator(nil, nil)
	h := tr.RegisterSchema([]string{"A"})
	if _, err := tr.Translate(h, mkUser(1)); err == nil {
		t.Fatal("expected error without a mapping")
	}
}
