package mobileconfig

import (
	"encoding/json"
	"time"

	"configerator/internal/gatekeeper"
	"configerator/internal/simnet"
)

// Poll protocol messages.

// MsgPull is the client poll: hashes only, no payload — the bandwidth
// optimization of §5.
type MsgPull struct {
	Config     string
	SchemaHash uint64
	ValueHash  uint64
	UserID     int64
}

// MsgNotModified answers a poll whose cached values are current.
type MsgNotModified struct{ Config string }

// MsgValues carries the recomputed values for the client's schema.
type MsgValues struct {
	Config string
	Values map[string]interface{}
	Hash   uint64
}

// MsgEmergencyPush is the push-notification hint: "pull now". It may be
// lost in transit (push notification is unreliable).
type MsgEmergencyPush struct{ Config string }

type msgTickPoll struct{}

// Server is a translation-layer server node: it answers device polls using
// its Translator and can fan out emergency pushes.
type Server struct {
	id simnet.NodeID
	tr *Translator
	// users resolves a device's user attributes (the real system looks
	// this up per request; the simulation injects it).
	users func(id int64) *gatekeeper.User

	// Polls, NotModified, and FullResponses count protocol outcomes.
	Polls         uint64
	NotModified   uint64
	FullResponses uint64
	// BytesSaved estimates bandwidth saved by the not-modified path.
	BytesSaved uint64
}

// NewServer creates a translation server node.
func NewServer(net *simnet.Network, id simnet.NodeID, p simnet.Placement,
	tr *Translator, users func(id int64) *gatekeeper.User) *Server {
	s := &Server{id: id, tr: tr, users: users}
	net.AddNode(id, p, s)
	return s
}

// ID returns the server's node id.
func (s *Server) ID() simnet.NodeID { return s.id }

// HandleMessage implements simnet.Handler.
func (s *Server) HandleMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	m, ok := msg.(MsgPull)
	if !ok {
		return
	}
	s.Polls++
	values, err := s.tr.Translate(m.SchemaHash, s.users(m.UserID))
	if err != nil {
		return // unknown schema: the device keeps its cache
	}
	h := ValueHash(values)
	if h == m.ValueHash {
		s.NotModified++
		s.BytesSaved += uint64(encodedSize(values))
		ctx.Send(from, MsgNotModified{Config: m.Config})
		return
	}
	s.FullResponses++
	ctx.SendSized(from, MsgValues{Config: m.Config, Values: values, Hash: h}, encodedSize(values))
}

// Push sends the emergency pull hint to a set of devices as one broadcast
// wave: all recipients share the same immutable hint message. devices must
// be deterministically ordered (each delivery draws jitter from the shared
// RNG in slice order).
func (s *Server) Push(ctx *simnet.Context, config string, devices []simnet.NodeID) {
	ctx.Broadcast(devices, MsgEmergencyPush{Config: config}, 0)
}

func encodedSize(values map[string]interface{}) int {
	b, err := json.Marshal(values)
	if err != nil {
		return 0
	}
	return len(b)
}

// Device is one mobile app install: a flash cache of config values, a
// periodic poll, and an emergency-push listener.
type Device struct {
	id     simnet.NodeID
	net    *simnet.Network
	server simnet.NodeID
	config string
	userID int64

	schemaHash uint64
	// flash is the on-device cache; it survives app restarts.
	flash     map[string]interface{}
	flashHash uint64
	interval  time.Duration
	// noCache disables the value-hash optimization (ablation baseline:
	// every poll fetches full values).
	noCache bool

	// Stats.
	Pulls         uint64
	CacheHits     uint64
	Updates       uint64
	PushesHandled uint64
}

// DefaultPollInterval matches the paper's example ("e.g., once every
// hour").
const DefaultPollInterval = time.Hour

// NewDevice creates a device node that polls the given server immediately
// and then every poll interval.
func NewDevice(net *simnet.Network, id simnet.NodeID, p simnet.Placement,
	server simnet.NodeID, config string, userID int64, schemaHash uint64) *Device {
	return NewDeviceAt(net, id, p, server, config, userID, schemaHash, 0)
}

// NewDeviceAt is NewDevice with the first poll deferred by firstPoll —
// fleet-scale simulations spread a million devices' first polls across the
// poll interval instead of synchronizing a thundering herd at t=0 (real
// phones wake up whenever their users do).
func NewDeviceAt(net *simnet.Network, id simnet.NodeID, p simnet.Placement,
	server simnet.NodeID, config string, userID int64, schemaHash uint64,
	firstPoll time.Duration) *Device {
	d := &Device{
		id: id, net: net, server: server, config: config, userID: userID,
		schemaHash: schemaHash,
		flash:      make(map[string]interface{}),
		interval:   DefaultPollInterval,
	}
	net.AddNode(id, p, d)
	net.SetTimer(id, firstPoll, msgTickPoll{})
	return d
}

// SetPollInterval overrides the poll cadence (tests).
func (d *Device) SetPollInterval(iv time.Duration) { d.interval = iv }

// DisableCache makes every poll fetch full values — the ablation baseline
// for measuring what the hash exchange saves.
func (d *Device) DisableCache() { d.noCache = true }

// Get reads a config field from the flash cache — the app's getter path
// (myCfg.getBool(...)); it never blocks on the network.
func (d *Device) Get(field string) (interface{}, bool) {
	v, ok := d.flash[field]
	return v, ok
}

// GetBool is the typed getter of Figure 6.
func (d *Device) GetBool(field string, def bool) bool {
	if v, ok := d.flash[field].(bool); ok {
		return v
	}
	return def
}

// GetFloat returns a numeric field.
func (d *Device) GetFloat(field string, def float64) float64 {
	if v, ok := d.flash[field].(float64); ok {
		return v
	}
	return def
}

// GetString returns a string field.
func (d *Device) GetString(field, def string) string {
	if v, ok := d.flash[field].(string); ok {
		return v
	}
	return def
}

// OnRestart implements simnet.Restarter: the flash cache survives, the
// poll timer restarts.
func (d *Device) OnRestart(ctx *simnet.Context) {
	ctx.SetTimer(d.interval, msgTickPoll{})
}

// HandleMessage implements simnet.Handler.
func (d *Device) HandleMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case msgTickPoll:
		d.pull(ctx)
		ctx.SetTimer(d.interval, msgTickPoll{})
	case MsgEmergencyPush:
		// The push carries no data; it triggers an immediate pull, so a
		// lost push only delays the device until its next poll.
		d.PushesHandled++
		d.pull(ctx)
	case MsgNotModified:
		d.CacheHits++
	case MsgValues:
		if m.Hash != d.flashHash {
			d.flash = m.Values
			d.flashHash = m.Hash
			d.Updates++
		}
		_ = m
	}
}

func (d *Device) pull(ctx *simnet.Context) {
	d.Pulls++
	hash := d.flashHash
	if d.noCache {
		hash = 0
	}
	ctx.Send(d.server, MsgPull{
		Config:     d.config,
		SchemaHash: d.schemaHash,
		ValueHash:  hash,
		UserID:     d.userID,
	})
}
