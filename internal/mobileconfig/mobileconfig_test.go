package mobileconfig

import (
	"fmt"
	"testing"
	"time"

	"configerator/internal/gatekeeper"
	"configerator/internal/simnet"
	"configerator/internal/vclock"
)

func mkUser(id int64) *gatekeeper.User {
	return &gatekeeper.User{ID: id, Platform: "ios", DeviceModel: "iPhone6", Now: vclock.Epoch}
}

func testMapping() *Mapping {
	return &Mapping{
		Config: "MY_CONFIG",
		Fields: map[string]FieldBinding{
			"FEATURE_X":   {Backend: BackendGatekeeper, Project: "ProjX"},
			"MAX_RETRIES": {Backend: BackendConstant, Value: 3.0},
			"VOIP_ECHO": {Backend: BackendExperiment, Project: "ECHO", Variants: []Variant{
				{Name: "low", Weight: 1, Value: 0.1},
				{Name: "high", Weight: 1, Value: 0.9},
			}},
		},
	}
}

func newTranslator(t *testing.T) *Translator {
	t.Helper()
	reg := gatekeeper.NewRegistry(nil)
	rt := gatekeeper.NewRuntime(reg)
	spec := &gatekeeper.ProjectSpec{Project: "ProjX", Rules: []gatekeeper.RuleSpec{{
		Restraints:      []gatekeeper.RestraintSpec{{Name: "device_model", Params: gatekeeper.Params{"in": []string{"iPhone6"}}}},
		PassProbability: 1.0,
	}}}
	if err := rt.Load(spec.Encode()); err != nil {
		t.Fatal(err)
	}
	tr := NewTranslator(rt, nil)
	if err := tr.LoadMapping(testMapping().Encode()); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTranslateAllBackends(t *testing.T) {
	tr := newTranslator(t)
	h := tr.RegisterSchema([]string{"FEATURE_X", "MAX_RETRIES", "VOIP_ECHO"})
	values, err := tr.Translate(h, mkUser(42))
	if err != nil {
		t.Fatal(err)
	}
	if values["FEATURE_X"] != true {
		t.Errorf("FEATURE_X = %v", values["FEATURE_X"])
	}
	if values["MAX_RETRIES"] != 3.0 {
		t.Errorf("MAX_RETRIES = %v", values["MAX_RETRIES"])
	}
	if v := values["VOIP_ECHO"]; v != 0.1 && v != 0.9 {
		t.Errorf("VOIP_ECHO = %v", v)
	}
}

func TestExperimentDeterministicAndBalanced(t *testing.T) {
	tr := newTranslator(t)
	h := tr.RegisterSchema([]string{"VOIP_ECHO"})
	low := 0
	for id := int64(0); id < 4000; id++ {
		v1, _ := tr.Translate(h, mkUser(id))
		v2, _ := tr.Translate(h, mkUser(id))
		if v1["VOIP_ECHO"] != v2["VOIP_ECHO"] {
			t.Fatalf("variant assignment not stable for user %d", id)
		}
		if v1["VOIP_ECHO"] == 0.1 {
			low++
		}
	}
	frac := float64(low) / 4000
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("low-variant fraction = %.3f, want ~0.5", frac)
	}
}

func TestLegacySchemaGetsSubset(t *testing.T) {
	tr := newTranslator(t)
	oldHash := tr.RegisterSchema([]string{"MAX_RETRIES"}) // v1 app knows one field
	newHash := tr.RegisterSchema([]string{"MAX_RETRIES", "FEATURE_X", "VOIP_ECHO"})
	oldValues, err := tr.Translate(oldHash, mkUser(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(oldValues) != 1 {
		t.Errorf("legacy app got %d fields, want 1", len(oldValues))
	}
	newValues, _ := tr.Translate(newHash, mkUser(1))
	if len(newValues) != 3 {
		t.Errorf("new app got %d fields, want 3", len(newValues))
	}
}

func TestUnknownSchemaErrors(t *testing.T) {
	tr := newTranslator(t)
	if _, err := tr.Translate(0xdead, mkUser(1)); err == nil {
		t.Fatal("unknown schema should error")
	}
}

func TestRemapFieldToConstant(t *testing.T) {
	// The paper's migration story: after the experiment finds the best
	// parameter, VOIP_ECHO is remapped to a constant — only the mapping
	// changes, the app keeps calling the same getter.
	tr := newTranslator(t)
	h := tr.RegisterSchema([]string{"VOIP_ECHO"})
	m := testMapping()
	m.Fields["VOIP_ECHO"] = FieldBinding{Backend: BackendConstant, Value: 0.42}
	if err := tr.LoadMapping(m.Encode()); err != nil {
		t.Fatal(err)
	}
	values, _ := tr.Translate(h, mkUser(7))
	if values["VOIP_ECHO"] != 0.42 {
		t.Errorf("VOIP_ECHO = %v after remap", values["VOIP_ECHO"])
	}
}

func TestSchemaHashOrderIndependent(t *testing.T) {
	a := SchemaHash([]string{"A", "B", "C"})
	b := SchemaHash([]string{"C", "A", "B"})
	if a != b {
		t.Error("schema hash must be order independent")
	}
	if SchemaHash([]string{"A"}) == SchemaHash([]string{"B"}) {
		t.Error("different schemas must differ")
	}
}

func TestValueHashStability(t *testing.T) {
	v1 := map[string]interface{}{"a": 1.0, "b": "x"}
	v2 := map[string]interface{}{"b": "x", "a": 1.0}
	if ValueHash(v1) != ValueHash(v2) {
		t.Error("value hash must be order independent")
	}
	v3 := map[string]interface{}{"a": 2.0, "b": "x"}
	if ValueHash(v1) == ValueHash(v3) {
		t.Error("different values must hash differently")
	}
}

// deviceRig wires a translation server and devices on a simnet.
type deviceRig struct {
	net    *simnet.Network
	tr     *Translator
	server *Server
}

func newDeviceRig(t *testing.T) *deviceRig {
	t.Helper()
	net := simnet.New(simnet.DefaultLatency(), 5)
	tr := newTranslator(t)
	srv := NewServer(net, "mcfg-1", simnet.Placement{Region: "us", Cluster: "web"}, tr,
		func(id int64) *gatekeeper.User { return mkUser(id) })
	return &deviceRig{net: net, tr: tr, server: srv}
}

func (r *deviceRig) addDevice(t *testing.T, i int64, fields []string) *Device {
	t.Helper()
	h := r.tr.RegisterSchema(fields)
	d := NewDevice(r.net, simnet.NodeID(fmt.Sprintf("phone-%d", i)),
		simnet.Placement{Region: "mobile", Cluster: "cell"}, "mcfg-1", "MY_CONFIG", i, h)
	d.SetPollInterval(10 * time.Minute)
	return d
}

func TestDevicePullAndCache(t *testing.T) {
	r := newDeviceRig(t)
	d := r.addDevice(t, 1, []string{"FEATURE_X", "MAX_RETRIES"})
	r.net.RunFor(time.Minute)
	if !d.GetBool("FEATURE_X", false) {
		t.Error("FEATURE_X not cached on device")
	}
	if d.GetFloat("MAX_RETRIES", 0) != 3.0 {
		t.Error("MAX_RETRIES not cached")
	}
	if d.Updates != 1 {
		t.Errorf("Updates = %d", d.Updates)
	}
	// Subsequent polls with unchanged values hit the not-modified path.
	r.net.RunFor(time.Hour)
	if d.CacheHits == 0 {
		t.Error("no not-modified responses")
	}
	if d.Updates != 1 {
		t.Errorf("Updates grew to %d without changes", d.Updates)
	}
	if r.server.BytesSaved == 0 {
		t.Error("BytesSaved = 0; delta protocol not saving bandwidth")
	}
}

func TestMappingChangePropagatesOnNextPoll(t *testing.T) {
	r := newDeviceRig(t)
	d := r.addDevice(t, 1, []string{"MAX_RETRIES"})
	r.net.RunFor(time.Minute)
	if d.GetFloat("MAX_RETRIES", 0) != 3.0 {
		t.Fatal("initial value missing")
	}
	m := testMapping()
	m.Fields["MAX_RETRIES"] = FieldBinding{Backend: BackendConstant, Value: 7.0}
	if err := r.tr.LoadMapping(m.Encode()); err != nil {
		t.Fatal(err)
	}
	r.net.RunFor(11 * time.Minute) // next poll
	if d.GetFloat("MAX_RETRIES", 0) != 7.0 {
		t.Errorf("MAX_RETRIES = %v after mapping change", d.GetFloat("MAX_RETRIES", 0))
	}
}

func TestEmergencyPushTriggersImmediatePull(t *testing.T) {
	r := newDeviceRig(t)
	d := r.addDevice(t, 1, []string{"FEATURE_X"})
	d.SetPollInterval(24 * time.Hour) // effectively never polls again
	r.net.RunFor(time.Minute)
	if !d.GetBool("FEATURE_X", false) {
		t.Fatal("initial pull missing")
	}
	// Kill the buggy feature and push.
	spec := &gatekeeper.ProjectSpec{Project: "ProjX", Rules: []gatekeeper.RuleSpec{{
		Restraints:      []gatekeeper.RestraintSpec{{Name: "always"}},
		PassProbability: 0,
	}}}
	reg := gatekeeper.NewRegistry(nil)
	rt := gatekeeper.NewRuntime(reg)
	if err := rt.Load(spec.Encode()); err != nil {
		t.Fatal(err)
	}
	r.tr.gk = rt
	r.net.After(0, func() {
		ctx := simnet.MakeContext(r.net, "mcfg-1")
		r.server.Push(&ctx, "MY_CONFIG", []simnet.NodeID{"phone-1"})
	})
	r.net.RunFor(time.Minute)
	if d.GetBool("FEATURE_X", true) {
		t.Error("emergency disable did not reach the device")
	}
	if d.PushesHandled != 1 {
		t.Errorf("PushesHandled = %d", d.PushesHandled)
	}
}

func TestLostPushRecoveredByPoll(t *testing.T) {
	r := newDeviceRig(t)
	d := r.addDevice(t, 1, []string{"MAX_RETRIES"})
	d.SetPollInterval(30 * time.Minute)
	r.net.RunFor(time.Minute)
	// Push notifications to this device are all lost.
	r.net.SetLoss("mcfg-1", "phone-1", 1.0)
	m := testMapping()
	m.Fields["MAX_RETRIES"] = FieldBinding{Backend: BackendConstant, Value: 9.0}
	if err := r.tr.LoadMapping(m.Encode()); err != nil {
		t.Fatal(err)
	}
	r.net.After(0, func() {
		ctx := simnet.MakeContext(r.net, "mcfg-1")
		r.server.Push(&ctx, "MY_CONFIG", []simnet.NodeID{"phone-1"})
	})
	r.net.RunFor(2 * time.Minute)
	if d.GetFloat("MAX_RETRIES", 0) == 9.0 {
		t.Fatal("push should have been lost")
	}
	// The periodic poll eventually repairs it: push alone is unreliable,
	// pull is the backstop (§5).
	r.net.SetLoss("mcfg-1", "phone-1", 0) // only the push path was lossy anyway
	r.net.RunFor(40 * time.Minute)
	if d.GetFloat("MAX_RETRIES", 0) != 9.0 {
		t.Error("poll did not recover the lost push")
	}
}

func TestManyDevicesBandwidthSavings(t *testing.T) {
	r := newDeviceRig(t)
	var devices []*Device
	for i := int64(0); i < 50; i++ {
		devices = append(devices, r.addDevice(t, i, []string{"FEATURE_X", "MAX_RETRIES", "VOIP_ECHO"}))
	}
	r.net.RunFor(3 * time.Hour)
	var pulls, hits uint64
	for _, d := range devices {
		pulls += d.Pulls
		hits += d.CacheHits
	}
	if pulls == 0 || hits == 0 {
		t.Fatalf("pulls=%d hits=%d", pulls, hits)
	}
	// Values never change after the first pull, so nearly every poll is a
	// cache hit.
	if float64(hits)/float64(pulls) < 0.8 {
		t.Errorf("cache hit rate = %.2f, want > 0.8", float64(hits)/float64(pulls))
	}
}

func TestParseMappingErrors(t *testing.T) {
	if _, err := ParseMapping([]byte(`{`)); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := ParseMapping([]byte(`{"fields":{}}`)); err == nil {
		t.Error("missing config name accepted")
	}
}
