package mobileconfig

import (
	"testing"
	"testing/quick"
)

func TestQuickSchemaHashPermutationInvariant(t *testing.T) {
	err := quick.Check(func(fields []string, swap uint8) bool {
		if len(fields) < 2 {
			return true
		}
		shuffled := make([]string, len(fields))
		copy(shuffled, fields)
		i := int(swap) % len(shuffled)
		j := (int(swap) + 1) % len(shuffled)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		return SchemaHash(fields) == SchemaHash(shuffled)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestQuickSchemaHashSensitive(t *testing.T) {
	err := quick.Check(func(a, b string) bool {
		if a == b {
			return true
		}
		return SchemaHash([]string{a}) != SchemaHash([]string{b})
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestQuickValueHashDeterministic(t *testing.T) {
	err := quick.Check(func(keys []string, nums []float64) bool {
		v := map[string]interface{}{}
		n := len(keys)
		if len(nums) < n {
			n = len(nums)
		}
		for i := 0; i < n; i++ {
			v[keys[i]] = nums[i]
		}
		return ValueHash(v) == ValueHash(v)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestQuickValueHashDetectsChange(t *testing.T) {
	err := quick.Check(func(key string, a, b float64) bool {
		if a == b || a != a || b != b { // equal or NaN
			return true
		}
		h1 := ValueHash(map[string]interface{}{key: a})
		h2 := ValueHash(map[string]interface{}{key: b})
		return h1 != h2
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
