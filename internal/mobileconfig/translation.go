// Package mobileconfig implements MobileConfig (§5): configuration
// management for mobile apps, where the network is a severe limiting
// factor, platforms are diverse, and legacy app versions linger for years.
//
// Separating abstraction from implementation is a first-class citizen: a
// mobile config field is an abstract name (FEATURE_X, VOIP_ECHO) that a
// translation layer maps to a backend — a Gatekeeper project, an A/B
// experiment, a Configerator constant, or an inline constant. The mapping
// itself is a config stored in Configerator and distributed to every
// translation server, so remapping a field (e.g. freezing a finished
// experiment to a constant) is just another config change.
//
// Clients poll with the hash of their config schema (for schema
// versioning) and the hash of their cached values; the server answers
// "not modified" or sends only the values relevant to that schema version.
// Push notification being unreliable, emergency changes are pushed as a
// hint that triggers an immediate pull — the hybrid of push and pull that
// makes the solution simple and reliable (§5).
package mobileconfig

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"configerator/internal/confclient"
	"configerator/internal/gatekeeper"
	"configerator/internal/stats"
)

// Backend kinds a field can map to.
const (
	BackendConstant     = "constant"
	BackendGatekeeper   = "gatekeeper"
	BackendExperiment   = "experiment"
	BackendConfigerator = "configerator"
)

// FieldBinding maps one abstract field to a backend.
type FieldBinding struct {
	Backend string `json:"backend"`
	// Gatekeeper/experiment: the project name.
	Project string `json:"project,omitempty"`
	// Experiment: variant values keyed by variant name, plus weights.
	Variants []Variant `json:"variants,omitempty"`
	// Configerator: the config path and field to read.
	Path  string `json:"path,omitempty"`
	Field string `json:"field,omitempty"`
	// Constant: the literal value.
	Value interface{} `json:"value,omitempty"`
}

// Variant is one experiment arm.
type Variant struct {
	Name   string      `json:"name"`
	Weight float64     `json:"weight"`
	Value  interface{} `json:"value"`
}

// Mapping is the translation table for one mobile config class.
type Mapping struct {
	Config string                  `json:"config"`
	Fields map[string]FieldBinding `json:"fields"`
}

// ParseMapping decodes a translation-table artifact.
func ParseMapping(data []byte) (*Mapping, error) {
	var m Mapping
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("mobileconfig: parsing mapping: %w", err)
	}
	if m.Config == "" {
		return nil, fmt.Errorf("mobileconfig: mapping missing \"config\"")
	}
	return &m, nil
}

// Encode renders the mapping artifact.
func (m *Mapping) Encode() []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic("mobileconfig: encoding mapping: " + err.Error())
	}
	return b
}

// SchemaHash identifies the set of fields an app build knows about. Legacy
// versions keep polling with their old hash and keep working.
func SchemaHash(fields []string) uint64 {
	sorted := make([]string, len(fields))
	copy(sorted, fields)
	sort.Strings(sorted)
	h := uint64(0xcbf29ce484222325)
	for _, f := range sorted {
		h ^= stats.Hash64(f)
		h *= 0x100000001b3
	}
	return h
}

// ValueHash fingerprints a computed value set for the not-modified check.
func ValueHash(values map[string]interface{}) uint64 {
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := uint64(0x100001b3)
	for _, k := range keys {
		b, _ := json.Marshal(values[k])
		h ^= stats.Hash64(k + "=" + string(b))
		h *= 0x100000001b3
	}
	return h
}

// Translator computes field values for a user by consulting the mapped
// backends. It lives on every translation server.
type Translator struct {
	mapping *Mapping
	gk      *gatekeeper.Runtime
	conf    *confclient.Client
	// schemas registers known app schema versions: hash -> field names.
	schemas map[uint64][]string

	// Translations counts value computations.
	Translations uint64
}

// NewTranslator builds a translator over the given backends (either may be
// nil if the mapping never references it).
func NewTranslator(gk *gatekeeper.Runtime, conf *confclient.Client) *Translator {
	return &Translator{gk: gk, conf: conf, schemas: make(map[uint64][]string)}
}

// LoadMapping installs (or live-replaces) the translation table.
func (t *Translator) LoadMapping(data []byte) error {
	m, err := ParseMapping(data)
	if err != nil {
		return err
	}
	t.mapping = m
	return nil
}

// Mapping returns the current table (nil before LoadMapping).
func (t *Translator) Mapping() *Mapping { return t.mapping }

// RegisterSchema registers an app build's field set; returns its hash.
// (Builds register at release time; the server must know every live
// schema version to serve legacy apps.)
func (t *Translator) RegisterSchema(fields []string) uint64 {
	h := SchemaHash(fields)
	cp := make([]string, len(fields))
	copy(cp, fields)
	sort.Strings(cp)
	t.schemas[h] = cp
	return h
}

// SchemaFields returns the fields of a registered schema.
func (t *Translator) SchemaFields(hash uint64) ([]string, bool) {
	f, ok := t.schemas[hash]
	return f, ok
}

// Translate computes the values for every field in the given schema
// version, consulting each field's backend. Unknown fields (mapped after
// the app shipped, or never mapped) are omitted; unknown schemas error.
func (t *Translator) Translate(schemaHash uint64, user *gatekeeper.User) (map[string]interface{}, error) {
	fields, ok := t.schemas[schemaHash]
	if !ok {
		return nil, fmt.Errorf("mobileconfig: unknown schema %x", schemaHash)
	}
	if t.mapping == nil {
		return nil, fmt.Errorf("mobileconfig: no mapping loaded")
	}
	t.Translations++
	out := make(map[string]interface{}, len(fields))
	for _, f := range fields {
		binding, ok := t.mapping.Fields[f]
		if !ok {
			continue
		}
		v, ok := t.resolve(f, binding, user)
		if ok {
			out[f] = v
		}
	}
	return out, nil
}

func (t *Translator) resolve(field string, b FieldBinding, user *gatekeeper.User) (interface{}, bool) {
	switch b.Backend {
	case BackendConstant:
		return b.Value, true
	case BackendGatekeeper:
		if t.gk == nil {
			return nil, false
		}
		return t.gk.Check(b.Project, user), true
	case BackendExperiment:
		return t.pickVariant(b, user)
	case BackendConfigerator:
		if t.conf == nil {
			return nil, false
		}
		cfg, err := t.conf.Get(context.Background(), b.Path)
		if err != nil {
			return nil, false
		}
		if b.Field == "" {
			return json.RawMessage(cfg.Raw), true
		}
		var all map[string]interface{}
		if err := json.Unmarshal(cfg.Raw, &all); err != nil {
			return nil, false
		}
		v, ok := all[b.Field]
		return v, ok
	}
	return nil, false
}

// pickVariant deterministically buckets the user across experiment arms by
// weight — the "satisfying different if-statements gives VOIP_ECHO a
// different parameter value" mechanism, with stable assignment.
func (t *Translator) pickVariant(b FieldBinding, user *gatekeeper.User) (interface{}, bool) {
	if len(b.Variants) == 0 {
		return nil, false
	}
	total := 0.0
	for _, v := range b.Variants {
		total += v.Weight
	}
	if total <= 0 {
		return nil, false
	}
	x := stats.HashFloat(fmt.Sprintf("exp:%s:%d", b.Project, user.ID)) * total
	acc := 0.0
	for _, v := range b.Variants {
		acc += v.Weight
		if x < acc {
			return v.Value, true
		}
	}
	return b.Variants[len(b.Variants)-1].Value, true
}
