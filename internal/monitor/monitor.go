// Package monitor is the continuous fleet-health plane: the always-on
// operator view the paper's operational story implies (§6.3 propagation
// measurement, §4.1 stale-serve visibility) but that a per-commit trace
// cannot provide at fleet scale.
//
// A Monitor is one simnet node. Zeus exports per-path convergence
// watermarks — the committed (zxid, content-hash) high-water mark — and
// every proxy heartbeats the (version, zxid, hash) it actually serves plus
// its staleness source. On a fixed sweep cadence the monitor folds the two
// together into:
//
//   - per-path fleet-convergence curves (fraction of the fleet serving the
//     committed head, as bounded obs time series),
//   - a continuous time-to-head distribution (the §6.3 propagation
//     latency, measured on every commit rather than one traced change),
//   - a straggler list naming proxies more than K versions or T seconds
//     behind (or silent altogether), and
//   - SLO burn-rate alerts (slo.go) that fire during infrastructure
//     outages and clear after heal.
//
// Everything the monitor learns arrives via messages on the simulation
// loop; its folded state is guarded by a mutex so `configerator status`
// (or any driver goroutine) can snapshot it concurrently via Status.
package monitor

import (
	"sync"
	"time"

	"configerator/internal/obs"
	"configerator/internal/proxy"
	"configerator/internal/simnet"
	"configerator/internal/zeus"
)

// Defaults for Config zero values.
const (
	DefaultSweepEvery        = 2 * time.Second
	DefaultHeartbeatEvery    = 1 * time.Second
	DefaultStragglerVersions = 2
	DefaultStragglerAge      = 10 * time.Second
)

// Config wires a Monitor.
type Config struct {
	// ID is the monitor's node id (default "monitor").
	ID simnet.NodeID
	// Ensemble supplies the commit watermarks (leader tree).
	Ensemble *zeus.Ensemble
	// Obs receives the monitor's counters, histograms, and convergence
	// series (nil-safe: a nil registry disables export, not monitoring).
	Obs *obs.Registry
	// SweepEvery is the watermark-fold cadence (default 2s).
	SweepEvery time.Duration
	// HeartbeatEvery is the proxy heartbeat cadence the fleet wiring
	// passes to Proxy.EnableMonitor (default 1s).
	HeartbeatEvery time.Duration
	// StragglerVersions / StragglerAge name a proxy a straggler when it
	// serves a path more than K versions behind the head, or has been
	// behind for longer than T.
	StragglerVersions int64
	StragglerAge      time.Duration
	// SLOs are evaluated every sweep (see slo.go).
	SLOs []*SLO
	// OnAlert fires on every alert transition: once when an alert fires
	// (ClearedAt zero) and once when it clears. Called outside the
	// monitor's lock, on the simulation thread.
	OnAlert func(Alert)
}

func (c Config) withDefaults() Config {
	if c.ID == "" {
		c.ID = "monitor"
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = DefaultSweepEvery
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if c.StragglerVersions <= 0 {
		c.StragglerVersions = DefaultStragglerVersions
	}
	if c.StragglerAge <= 0 {
		c.StragglerAge = DefaultStragglerAge
	}
	return c
}

// Histogram / series names the monitor feeds (exported so experiments and
// status read the same keys).
const (
	HistTimeToHead   = "monitor.time_to_head" // commit → proxy-at-head
	HistStaleness    = "monitor.staleness"    // served age while degraded
	SeriesConverged  = "monitor.fleet.converged"
	SeriesProxies    = "monitor.proxies"
	SeriesDegraded   = "monitor.degraded"
	SeriesStragglers = "monitor.stragglers"
	// SeriesPathPrefix + <path> is each path's own convergence curve.
	SeriesPathPrefix = "monitor.converged."
)

type msgTickSweep struct{}

// proxyState is the monitor's last-heartbeat view of one proxy.
type proxyState struct {
	lastSeen  time.Time
	planeDown bool
	paths     map[string]proxy.PathState
}

// pathTrack is the monitor's per-path fold state.
type pathTrack struct {
	head zeus.Watermark
	// members are proxies that have ever reported serving this path — the
	// denominator of the convergence fraction. A proxy that crashes keeps
	// its membership (and its stale last report), which is exactly what
	// makes it show up as behind.
	members map[simnet.NodeID]bool
	// headSeen is the highest head zxid each proxy has been credited as
	// reaching, so time-to-head is observed once per (proxy, version).
	headSeen map[simnet.NodeID]int64
	// behindSince marks when each proxy was first observed behind the
	// current head (cleared on catch-up) — the lag the SLO grace windows
	// and straggler ages are measured from.
	behindSince map[simnet.NodeID]time.Time
}

// Monitor is the fleet-health node. All exported methods are nil-safe.
type Monitor struct {
	cfg Config

	mu      sync.Mutex
	proxies map[simnet.NodeID]*proxyState
	paths   map[string]*pathTrack
	slos    []*sloState
	alerts  []*Alert // every alert ever fired, in fire order
	sweeps  int64
	lastAt  time.Time

	// Per-sweep snapshots behind Status.
	lastPaths      []PathStatus
	lastStragglers []Straggler
}

// New builds a monitor (attach it to a network with Attach).
func New(cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{
		cfg:     cfg,
		proxies: make(map[simnet.NodeID]*proxyState),
		paths:   make(map[string]*pathTrack),
	}
	for _, s := range cfg.SLOs {
		m.slos = append(m.slos, newSLOState(s))
	}
	return m
}

// ID returns the monitor's node id.
func (m *Monitor) ID() simnet.NodeID {
	if m == nil {
		return ""
	}
	return m.cfg.ID
}

// Config returns the effective (defaulted) configuration.
func (m *Monitor) Config() Config {
	if m == nil {
		return Config{}
	}
	return m.cfg
}

// Attach adds the monitor to the network at the placement and arms the
// sweep timer.
func (m *Monitor) Attach(net *simnet.Network, p simnet.Placement) {
	if m == nil {
		return
	}
	net.AddNode(m.cfg.ID, p, m)
	net.SetTimer(m.cfg.ID, m.cfg.SweepEvery, msgTickSweep{})
}

// HandleMessage implements simnet.Handler.
func (m *Monitor) HandleMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	switch hb := msg.(type) {
	case proxy.MsgMonitorHeartbeat:
		m.onHeartbeat(hb)
	case msgTickSweep:
		ctx.SetTimer(m.cfg.SweepEvery, msgTickSweep{})
		m.Sweep(ctx.Now())
	}
}

// onHeartbeat folds one proxy report.
func (m *Monitor) onHeartbeat(hb proxy.MsgMonitorHeartbeat) {
	m.mu.Lock()
	ps := m.proxies[hb.Proxy]
	if ps == nil {
		ps = &proxyState{}
		m.proxies[hb.Proxy] = ps
	}
	ps.lastSeen = hb.At
	ps.planeDown = hb.PlaneDown
	ps.paths = make(map[string]proxy.PathState, len(hb.Paths))
	for _, st := range hb.Paths {
		ps.paths[st.Path] = st
		pt := m.trackLocked(st.Path)
		pt.members[hb.Proxy] = true
	}
	m.mu.Unlock()
	m.cfg.Obs.Add("monitor.heartbeats", 1)
}

func (m *Monitor) trackLocked(path string) *pathTrack {
	pt := m.paths[path]
	if pt == nil {
		pt = &pathTrack{
			members:     make(map[simnet.NodeID]bool),
			headSeen:    make(map[simnet.NodeID]int64),
			behindSince: make(map[simnet.NodeID]time.Time),
		}
		m.paths[path] = pt
	}
	return pt
}

// Sweep runs one convergence fold at the given instant: refresh
// watermarks from the leader, compare every (path, proxy) pair, update
// series/histograms/stragglers, and evaluate the SLOs. Normally driven by
// the sweep timer; exported so tests and experiments can force a fold.
func (m *Monitor) Sweep(now time.Time) {
	if m == nil {
		return
	}
	var wms []zeus.Watermark
	if m.cfg.Ensemble != nil {
		wms = m.cfg.Ensemble.Watermarks()
	}

	m.mu.Lock()
	for _, wm := range wms {
		pt := m.trackLocked(wm.Path)
		if wm.Zxid > pt.head.Zxid {
			pt.head = wm
		}
	}

	silentAfter := 2 * m.cfg.SweepEvery
	if hb := 3 * m.cfg.HeartbeatEvery; hb > silentAfter {
		silentAfter = hb
	}

	sweep := Sweep{At: now}
	var (
		stragglers []Straggler
		pathStats  []PathStatus
		degraded   int
	)
	proxyCount := len(m.proxies)
	for _, ps := range m.proxies {
		if ps.planeDown && !ps.lastSeen.Before(now.Add(-silentAfter)) {
			degraded++
		}
	}

	type timeToHead struct{ d time.Duration }
	var credited []timeToHead
	var staleAges []time.Duration

	for path, pt := range m.paths {
		if pt.head.Zxid == 0 || len(pt.members) == 0 {
			continue
		}
		st := PathStatus{
			Path:        path,
			HeadVersion: pt.head.Version,
			HeadZxid:    pt.head.Zxid,
			HeadHash:    pt.head.Hash,
		}
		for id := range pt.members {
			ps := m.proxies[id]
			reported, have := ps.paths[path]
			silent := now.Sub(ps.lastSeen) > silentAfter
			atHead := have && !silent && reported.Zxid >= pt.head.Zxid
			if atHead && reported.Zxid == pt.head.Zxid && reported.Hash != pt.head.Hash {
				// Same zxid, different bytes: a divergent replica is worse
				// than a stale one.
				atHead = false
				m.cfg.Obs.Add("monitor.hash.mismatch", 1)
			}
			pair := PairState{Path: path, Proxy: id}
			st.Total++
			if atHead {
				st.AtHead++
				delete(pt.behindSince, id)
				if pt.headSeen[id] < pt.head.Zxid {
					pt.headSeen[id] = pt.head.Zxid
					if d := reported.Fetched.Sub(pt.head.At); d >= 0 && !pt.head.At.IsZero() {
						credited = append(credited, timeToHead{d})
					}
				}
			} else {
				pair.Behind = true
				bs, ok := pt.behindSince[id]
				if !ok {
					bs = now
					pt.behindSince[id] = bs
				}
				pair.Lag = now.Sub(bs)
				pair.BehindVersions = pt.head.Version
				if have {
					pair.BehindVersions = pt.head.Version - reported.Version
				}
				pair.Silent = silent
			}
			if have && ps.planeDown && !silent {
				pair.Degraded = true
				pair.Age = now.Sub(reported.Fetched)
				staleAges = append(staleAges, pair.Age)
			}
			sweep.Pairs = append(sweep.Pairs, pair)
			if pair.Behind && (pair.BehindVersions > m.cfg.StragglerVersions ||
				pair.Lag > m.cfg.StragglerAge) {
				stragglers = append(stragglers, Straggler{
					Proxy: id, Path: path,
					BehindVersions: pair.BehindVersions,
					Lag:            pair.Lag,
					Silent:         pair.Silent,
				})
			}
		}
		if st.Total > 0 {
			st.Fraction = float64(st.AtHead) / float64(st.Total)
		}
		pathStats = append(pathStats, st)
	}

	sortPathStatus(pathStats)
	sortStragglers(stragglers)
	m.lastPaths = pathStats
	m.lastStragglers = stragglers
	m.sweeps++
	m.lastAt = now

	// Evaluate SLO burn windows and collect transitions.
	var transitions []Alert
	for _, ss := range m.slos {
		transitions = append(transitions, ss.observe(m, sweep)...)
	}
	m.mu.Unlock()

	// Export (outside the lock: series/histograms have their own).
	reg := m.cfg.Obs
	totalPairs, atHeadPairs := 0, 0
	for _, st := range pathStats {
		totalPairs += st.Total
		atHeadPairs += st.AtHead
		reg.Series(SeriesPathPrefix+st.Path).Record(now, st.Fraction)
	}
	if totalPairs > 0 {
		reg.Series(SeriesConverged).Record(now, float64(atHeadPairs)/float64(totalPairs))
	}
	reg.Series(SeriesProxies).Record(now, float64(proxyCount))
	reg.Series(SeriesDegraded).Record(now, float64(degraded))
	reg.Series(SeriesStragglers).Record(now, float64(len(stragglers)))
	for _, c := range credited {
		reg.Observe(HistTimeToHead, c.d)
	}
	for _, a := range staleAges {
		reg.Observe(HistStaleness, a)
	}
	reg.Add("monitor.sweeps", 1)

	for _, a := range transitions {
		if a.ClearedAt.IsZero() {
			reg.Add("monitor.alert.fired", 1)
		} else {
			reg.Add("monitor.alert.cleared", 1)
		}
		if m.cfg.OnAlert != nil {
			m.cfg.OnAlert(a)
		}
	}
}
