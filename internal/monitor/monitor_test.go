package monitor_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"configerator/internal/cluster"
	"configerator/internal/monitor"
	"configerator/internal/obs"
	"configerator/internal/simnet"
	"configerator/internal/zeus"
)

// fleet stands up a small monitored fleet with an elected leader.
func fleet(t *testing.T, cfg monitor.Config) (*cluster.Fleet, *monitor.Monitor) {
	t.Helper()
	c := cluster.SmallConfig(2, 7)
	c.Obs = obs.New()
	f := cluster.New(c)
	f.Net.RunFor(10 * time.Second)
	if f.Ensemble.Leader() == "" {
		t.Fatal("no zeus leader")
	}
	m := f.AttachMonitor(cfg)
	return f, m
}

var seq int

func write(t *testing.T, f *cluster.Fleet, path, data string) {
	t.Helper()
	seq++
	id := simnet.NodeID(fmt.Sprintf("mon-writer-%d", seq))
	cl := zeus.NewClient(id, f.Ensemble.Members)
	f.Net.AddNode(id, simnet.Placement{Region: "us-west", Cluster: "ctrl"}, cl)
	done := false
	f.Net.After(0, func() {
		ctx := simnet.MakeContext(f.Net, id)
		cl.Write(&ctx, path, []byte(data), func(zeus.WriteResult) { done = true })
	})
	for i := 0; i < 100 && !done; i++ {
		f.Net.RunFor(200 * time.Millisecond)
	}
	if !done {
		t.Fatal("zeus write never committed")
	}
}

const testPath = "/configs/mon.json"

func TestConvergenceTracking(t *testing.T) {
	f, m := fleet(t, monitor.Config{})
	f.SubscribeAll(testPath)
	write(t, f, testPath, `{"v":1}`)
	f.Net.RunFor(15 * time.Second)

	st := m.Status()
	if st.Sweeps == 0 {
		t.Fatal("no sweeps ran")
	}
	if st.Proxies != len(f.AllServers()) {
		t.Fatalf("proxies = %d, want %d", st.Proxies, len(f.AllServers()))
	}
	var ps *monitor.PathStatus
	for i := range st.Paths {
		if st.Paths[i].Path == testPath {
			ps = &st.Paths[i]
		}
	}
	if ps == nil {
		t.Fatalf("path %s not tracked: %+v", testPath, st.Paths)
	}
	if ps.Total != len(f.AllServers()) || ps.AtHead != ps.Total || ps.Fraction != 1 {
		t.Fatalf("converged fleet reported %+v", *ps)
	}
	if ps.HeadVersion == 0 || ps.HeadHash == 0 {
		t.Fatalf("watermark not folded: %+v", *ps)
	}
	if len(st.Stragglers) != 0 {
		t.Fatalf("stragglers on healthy fleet: %+v", st.Stragglers)
	}

	// The continuous propagation histogram saw one credit per proxy.
	reg := m.Registry()
	if got := reg.Histogram(monitor.HistTimeToHead).Count(); got != uint64(len(f.AllServers())) {
		t.Fatalf("time_to_head count = %d, want %d", got, len(f.AllServers()))
	}
	if p99 := reg.Histogram(monitor.HistTimeToHead).Quantile(0.99); p99 <= 0 || p99 > 10*time.Second {
		t.Fatalf("time_to_head p99 = %v", p99)
	}

	// Convergence curves were recorded as bounded series.
	s := reg.Series(monitor.SeriesPathPrefix + testPath)
	if s.Len() == 0 {
		t.Fatal("no per-path convergence samples")
	}
	if last, ok := s.Last(); !ok || last.V != 1 {
		t.Fatalf("last convergence sample = %+v", last)
	}
	if fl, ok := reg.Series(monitor.SeriesConverged).Last(); !ok || fl.V != 1 {
		t.Fatalf("fleet convergence sample = %+v", fl)
	}
}

func TestTimeToHeadCreditedOncePerVersion(t *testing.T) {
	f, m := fleet(t, monitor.Config{})
	f.SubscribeAll(testPath)
	write(t, f, testPath, `{"v":1}`)
	f.Net.RunFor(20 * time.Second) // many sweeps over the same version
	n := len(f.AllServers())
	if got := m.Registry().Histogram(monitor.HistTimeToHead).Count(); got != uint64(n) {
		t.Fatalf("count = %d after extra sweeps, want %d", got, n)
	}
	write(t, f, testPath, `{"v":2}`)
	f.Net.RunFor(15 * time.Second)
	if got := m.Registry().Histogram(monitor.HistTimeToHead).Count(); got != uint64(2*n) {
		t.Fatalf("count = %d after second version, want %d", got, 2*n)
	}
}

func TestStragglerDetection(t *testing.T) {
	f, m := fleet(t, monitor.Config{})
	f.SubscribeAll(testPath)
	write(t, f, testPath, `{"v":1}`)
	f.Net.RunFor(10 * time.Second)

	victim := f.AllServers()[0].ID
	f.Net.Fail(victim)
	write(t, f, testPath, `{"v":2}`)
	f.Net.RunFor(15 * time.Second) // beyond StragglerAge

	st := m.Status()
	if len(st.Stragglers) == 0 {
		t.Fatal("crashed proxy not named a straggler")
	}
	sg := st.Stragglers[0]
	if sg.Proxy != victim || sg.Path != testPath {
		t.Fatalf("straggler = %+v, want %s/%s", sg, victim, testPath)
	}
	if !sg.Silent {
		t.Fatalf("downed proxy not flagged silent: %+v", sg)
	}
	if sg.Lag < 10*time.Second {
		t.Fatalf("straggler lag = %v", sg.Lag)
	}

	// Recovery re-converges and empties the list.
	f.Net.Recover(victim)
	f.Net.RunFor(20 * time.Second)
	st = m.Status()
	if len(st.Stragglers) != 0 {
		t.Fatalf("stragglers after recovery: %+v", st.Stragglers)
	}
}

func TestSLOAlertFiresAndClears(t *testing.T) {
	var transitions []monitor.Alert
	f, m := fleet(t, monitor.Config{
		SLOs:    []*monitor.SLO{monitor.ConvergenceSLO(0.99, 2*time.Second)},
		OnAlert: func(a monitor.Alert) { transitions = append(transitions, a) },
	})
	f.SubscribeAll(testPath)
	write(t, f, testPath, `{"v":1}`)
	f.Net.RunFor(10 * time.Second)
	if n := len(m.Status().Alerts); n != 0 {
		t.Fatalf("alerts on healthy fleet: %d", n)
	}

	victim := f.AllServers()[0].ID
	f.Net.Fail(victim)
	write(t, f, testPath, `{"v":2}`)
	f.Net.RunFor(30 * time.Second)

	st := m.Status()
	active := st.ActiveAlerts()
	if len(active) != 1 || active[0].SLO != "fleet-convergence" {
		t.Fatalf("active alerts = %+v", st.Alerts)
	}
	if got := active[0].Paths; len(got) != 1 || got[0] != testPath {
		t.Fatalf("alert paths = %v", got)
	}
	reg := m.Registry()
	if c := reg.Counters().Get("monitor.alert.fired"); c != 1 {
		t.Fatalf("monitor.alert.fired = %d", c)
	}

	f.Net.Recover(victim)
	f.Net.RunFor(30 * time.Second)
	st = m.Status()
	if n := len(st.ActiveAlerts()); n != 0 {
		t.Fatalf("alerts did not clear: %+v", st.ActiveAlerts())
	}
	if len(st.Alerts) != 1 || st.Alerts[0].ClearedAt.IsZero() {
		t.Fatalf("alert history = %+v", st.Alerts)
	}
	if c := reg.Counters().Get("monitor.alert.cleared"); c != 1 {
		t.Fatalf("monitor.alert.cleared = %d", c)
	}
	// OnAlert saw exactly the fire and the clear, in order.
	if len(transitions) != 2 || !transitions[0].Active() || transitions[1].Active() {
		t.Fatalf("transitions = %+v", transitions)
	}
}

func TestStatusRenderings(t *testing.T) {
	f, m := fleet(t, monitor.Config{})
	f.SubscribeAll(testPath)
	write(t, f, testPath, `{"v":1}`)
	f.Net.RunFor(15 * time.Second)

	txt := m.Status().Text()
	for _, want := range []string{"fleet status", "convergence:", testPath, "stragglers:", "alerts:", "(none)"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("Text missing %q:\n%s", want, txt)
		}
	}
	js := m.Status().JSON()
	for _, want := range []string{`"paths":[`, `"stragglers":[`, `"alerts":[`, `"fraction":1.0000`} {
		if !strings.Contains(js, want) {
			t.Fatalf("JSON missing %q:\n%s", want, js)
		}
	}
	// Deterministic: same state renders identically.
	if js2 := m.Status().JSON(); js2 != js {
		t.Fatal("JSON rendering not deterministic")
	}
}

// TestStatusConcurrentWithSweeps drives the fleet on one goroutine while
// hammering Status/Text/JSON from others — the documented concurrency
// contract, pinned under -race.
func TestStatusConcurrentWithSweeps(t *testing.T) {
	f, m := fleet(t, monitor.Config{
		SLOs: []*monitor.SLO{monitor.ConvergenceSLO(0.99, 2*time.Second)},
	})
	f.SubscribeAll(testPath)
	write(t, f, testPath, `{"v":1}`)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := m.Status()
				_ = st.Text()
				_ = st.JSON()
				_ = st.ActiveAlerts()
			}
		}()
	}
	for i := 0; i < 20; i++ {
		f.Net.RunFor(time.Second)
	}
	close(stop)
	wg.Wait()
}

func TestNilSafety(t *testing.T) {
	var m *monitor.Monitor
	m.Sweep(time.Unix(0, 0))
	m.Attach(nil, simnet.Placement{})
	if m.ID() != "" {
		t.Fatal("nil monitor has an id")
	}
	if m.Registry() != nil {
		t.Fatal("nil monitor has a registry")
	}
	_ = m.Config()
	st := m.Status()
	if st.Sweeps != 0 || len(st.Paths) != 0 {
		t.Fatalf("nil status = %+v", st)
	}
	_ = st.Text()
	_ = st.JSON()
	_ = st.ActiveAlerts()
}
