// SLO burn-rate alerting over the monitor's sweep stream.
//
// An SLO is a declarative statement over one sweep's (path, proxy) pairs —
// "99% of the fleet converges within 10s", "served staleness stays under
// 30s while degraded" — evaluated as an error fraction per sweep. Alerting
// follows the multi-window burn-rate recipe: the error budget is 1−Target,
// and an alert fires only when BOTH a short (fast) window and a long
// (slow) window burn budget faster than their thresholds. The fast window
// makes the alert prompt during a real outage; the slow window keeps a
// single bad sweep from paging. The alert clears after ClearSweeps
// consecutive sweeps back inside budget.
package monitor

import (
	"time"

	"configerator/internal/simnet"
)

// Sweep is one monitor fold handed to SLO evaluators.
type Sweep struct {
	At    time.Time
	Pairs []PairState
}

// PairState is one (path, proxy) observation within a sweep.
type PairState struct {
	Path  string
	Proxy simnet.NodeID

	// Behind means the proxy is not serving the committed head (silent
	// proxies count as behind). Lag is how long it has been behind;
	// BehindVersions how many committed versions it is missing.
	Behind         bool
	Lag            time.Duration
	BehindVersions int64
	Silent         bool

	// Degraded means the proxy serves this path with its update plane
	// down (the paper's stale-serve mode); Age is the served data's age.
	Degraded bool
	Age      time.Duration
}

// SLO declares a fleet objective checked every sweep.
type SLO struct {
	// Name labels alerts ("fleet-convergence").
	Name string
	// Target is the good fraction objective in (0,1), e.g. 0.99. The
	// error budget is 1 − Target.
	Target float64
	// Eval classifies one sweep: bad and total event counts. A sweep with
	// total == 0 is skipped (no data is not an outage).
	Eval func(Sweep) (bad, total int)

	// FastSweeps/SlowSweeps are the two burn windows in sweeps (defaults
	// 3 and 10). FastBurn/SlowBurn are the burn-rate thresholds each
	// window must exceed simultaneously (defaults 2× and 1× budget).
	// ClearSweeps is how many consecutive in-budget sweeps clear an
	// active alert (default 2).
	FastSweeps, SlowSweeps int
	FastBurn, SlowBurn     float64
	ClearSweeps            int
}

func (s *SLO) withDefaults() *SLO {
	c := *s
	if c.FastSweeps <= 0 {
		c.FastSweeps = 3
	}
	if c.SlowSweeps <= 0 {
		c.SlowSweeps = 10
	}
	if c.SlowSweeps < c.FastSweeps {
		c.SlowSweeps = c.FastSweeps
	}
	if c.FastBurn <= 0 {
		c.FastBurn = 2
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = 1
	}
	if c.ClearSweeps <= 0 {
		c.ClearSweeps = 2
	}
	return &c
}

// Alert is one SLO violation episode. ClearedAt is zero while active.
type Alert struct {
	SLO       string
	FiredAt   time.Time
	ClearedAt time.Time
	// FastBurn/SlowBurn are the window burn rates at fire time (multiples
	// of budget; 1.0 = burning exactly the budget).
	FastBurn, SlowBurn float64
	// Paths are the distinct paths contributing bad events at fire time.
	Paths []string
}

// Active reports whether the alert has not yet cleared.
func (a Alert) Active() bool { return a.ClearedAt.IsZero() }

// sloState is the rolling evaluation state for one SLO.
type sloState struct {
	slo *SLO
	// ring of recent error fractions (one per evaluated sweep).
	errs []float64
	// goodRun counts consecutive in-budget sweeps while an alert is
	// active.
	goodRun int
	active  *Alert
}

func newSLOState(s *SLO) *sloState {
	return &sloState{slo: s.withDefaults()}
}

// observe folds one sweep and returns alert transitions (fire and clear
// events). Called with the monitor lock held; transitions are delivered
// to callbacks after unlock. Fired alerts are appended to m.alerts.
func (ss *sloState) observe(m *Monitor, sw Sweep) []Alert {
	bad, total := ss.slo.Eval(sw)
	if total == 0 {
		return nil
	}
	errFrac := float64(bad) / float64(total)
	ss.errs = append(ss.errs, errFrac)
	if len(ss.errs) > ss.slo.SlowSweeps {
		ss.errs = ss.errs[len(ss.errs)-ss.slo.SlowSweeps:]
	}

	budget := 1 - ss.slo.Target
	if budget <= 0 {
		budget = 1e-9
	}
	fast := avgTail(ss.errs, ss.slo.FastSweeps) / budget
	slow := avgTail(ss.errs, len(ss.errs)) / budget

	var out []Alert
	if ss.active == nil {
		if fast > ss.slo.FastBurn && slow > ss.slo.SlowBurn {
			a := &Alert{
				SLO: ss.slo.Name, FiredAt: sw.At,
				FastBurn: fast, SlowBurn: slow,
				Paths: badPaths(ss.slo, sw),
			}
			ss.active = a
			ss.goodRun = 0
			m.alerts = append(m.alerts, a)
			out = append(out, *a)
		}
		return out
	}
	// Active: clear only after ClearSweeps consecutive in-budget sweeps.
	if errFrac <= budget {
		ss.goodRun++
	} else {
		ss.goodRun = 0
	}
	if ss.goodRun >= ss.slo.ClearSweeps {
		ss.active.ClearedAt = sw.At
		out = append(out, *ss.active)
		ss.active = nil
		ss.goodRun = 0
		ss.errs = ss.errs[:0]
	}
	return out
}

// avgTail averages the last n entries (n clamped to len).
func avgTail(xs []float64, n int) float64 {
	if len(xs) == 0 {
		return 0
	}
	if n > len(xs) {
		n = len(xs)
	}
	if n <= 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs[len(xs)-n:] {
		s += x
	}
	return s / float64(n)
}

// badPaths lists the distinct paths with at least one bad event in the
// sweep, per the SLO's own classifier run path-by-path.
func badPaths(s *SLO, sw Sweep) []string {
	byPath := make(map[string][]PairState)
	for _, p := range sw.Pairs {
		byPath[p.Path] = append(byPath[p.Path], p)
	}
	var out []string
	for path, pairs := range byPath {
		if bad, _ := s.Eval(Sweep{At: sw.At, Pairs: pairs}); bad > 0 {
			out = append(out, path)
		}
	}
	sortStrings(out)
	return out
}

// ConvergenceSLO declares "target fraction of (path, proxy) pairs serve
// the committed head, or have been behind for no more than `within`". The
// grace is measured from when the pair fell behind (behindSince), not
// from the head's age — under continuous writes the head keeps advancing,
// so head age would never accumulate and mask real lag.
func ConvergenceSLO(target float64, within time.Duration) *SLO {
	return &SLO{
		Name:   "fleet-convergence",
		Target: target,
		Eval: func(sw Sweep) (bad, total int) {
			for _, p := range sw.Pairs {
				total++
				if p.Behind && p.Lag >= within {
					bad++
				}
			}
			return bad, total
		},
	}
}

// StalenessSLO declares "target fraction of degraded (stale-served)
// pairs serve data younger than maxAge". Pairs not in degraded mode are
// good by definition — the objective bounds how stale degraded serving
// may get, it does not forbid degraded serving.
func StalenessSLO(target float64, maxAge time.Duration) *SLO {
	return &SLO{
		Name:   "staleness-under-degraded",
		Target: target,
		Eval: func(sw Sweep) (bad, total int) {
			for _, p := range sw.Pairs {
				total++
				if p.Degraded && p.Age > maxAge {
					bad++
				}
			}
			return bad, total
		},
	}
}
