package monitor

import (
	"testing"
	"time"
)

func at(sec int) time.Time { return time.Unix(0, 0).Add(time.Duration(sec) * time.Second) }

// sweepWithErr fabricates a sweep whose error fraction under a count-Behind
// SLO is bad/total.
func sweepWithErr(sec, bad, total int) Sweep {
	sw := Sweep{At: at(sec)}
	for i := 0; i < total; i++ {
		p := PairState{Path: "/p", Proxy: "px"}
		if i < bad {
			p.Behind = true
			p.Lag = time.Hour
		}
		sw.Pairs = append(sw.Pairs, p)
	}
	return sw
}

func testSLO() *SLO {
	return &SLO{
		Name:   "test",
		Target: 0.9, // budget 0.1
		Eval: func(sw Sweep) (bad, total int) {
			for _, p := range sw.Pairs {
				total++
				if p.Behind {
					bad++
				}
			}
			return bad, total
		},
		FastSweeps: 2, SlowSweeps: 4, ClearSweeps: 2,
	}
}

func TestSLOFiresOnSustainedBurn(t *testing.T) {
	m := New(Config{})
	ss := newSLOState(testSLO())

	// One bad sweep: fast window is hot but a single sweep shouldn't page
	// when the preceding sweeps were clean.
	if tr := ss.observe(m, sweepWithErr(0, 0, 10)); len(tr) != 0 {
		t.Fatalf("clean sweep fired: %v", tr)
	}
	if tr := ss.observe(m, sweepWithErr(1, 0, 10)); len(tr) != 0 {
		t.Fatalf("clean sweep fired: %v", tr)
	}
	if tr := ss.observe(m, sweepWithErr(2, 0, 10)); len(tr) != 0 {
		t.Fatalf("clean sweep fired: %v", tr)
	}
	// err=0.5 ≫ budget once: fast avg = 0.25/0.1 = 2.5 > 2, but slow avg =
	// 0.5/4/0.1 = 1.25 > 1 — both windows hot, so with this small config
	// it fires on the first truly bad sweep after a clean history only if
	// both thresholds trip. Verify the arithmetic explicitly:
	tr := ss.observe(m, sweepWithErr(3, 5, 10))
	if len(tr) != 1 {
		t.Fatalf("transitions = %v, want fire", tr)
	}
	a := tr[0]
	if !a.Active() || a.SLO != "test" || !a.FiredAt.Equal(at(3)) {
		t.Fatalf("bad alert: %+v", a)
	}
	if len(m.alerts) != 1 {
		t.Fatalf("monitor alerts = %d", len(m.alerts))
	}
	// Still burning: no duplicate fire.
	if tr := ss.observe(m, sweepWithErr(4, 5, 10)); len(tr) != 0 {
		t.Fatalf("duplicate fire: %v", tr)
	}
}

func TestSLOSingleSweepDoesNotPageAfterLongCleanHistory(t *testing.T) {
	m := New(Config{})
	s := testSLO()
	s.SlowSweeps = 10
	ss := newSLOState(s)
	for i := 0; i < 10; i++ {
		ss.observe(m, sweepWithErr(i, 0, 10))
	}
	// err=0.3: fast avg 0.15/0.1=1.5 < 2 → no fire.
	if tr := ss.observe(m, sweepWithErr(10, 3, 10)); len(tr) != 0 {
		t.Fatalf("one mildly bad sweep paged: %v", tr)
	}
}

func TestSLOClearsAfterConsecutiveGoodSweeps(t *testing.T) {
	m := New(Config{})
	ss := newSLOState(testSLO())
	for i := 0; i < 4; i++ {
		ss.observe(m, sweepWithErr(i, 8, 10))
	}
	if ss.active == nil {
		t.Fatal("never fired")
	}
	// One good sweep is not enough (ClearSweeps=2)...
	if tr := ss.observe(m, sweepWithErr(4, 0, 10)); len(tr) != 0 {
		t.Fatalf("cleared too early: %v", tr)
	}
	// ...and a relapse resets the run.
	if tr := ss.observe(m, sweepWithErr(5, 8, 10)); len(tr) != 0 {
		t.Fatalf("unexpected transition: %v", tr)
	}
	ss.observe(m, sweepWithErr(6, 0, 10))
	tr := ss.observe(m, sweepWithErr(7, 0, 10))
	if len(tr) != 1 || tr[0].Active() || !tr[0].ClearedAt.Equal(at(7)) {
		t.Fatalf("clear transition = %v", tr)
	}
	if ss.active != nil {
		t.Fatal("still active after clear")
	}
	// The stored alert (pointer-shared) reflects the clear.
	if m.alerts[0].Active() {
		t.Fatal("stored alert not cleared")
	}
}

func TestSLOSkipsEmptySweeps(t *testing.T) {
	m := New(Config{})
	ss := newSLOState(testSLO())
	for i := 0; i < 20; i++ {
		if tr := ss.observe(m, Sweep{At: at(i)}); len(tr) != 0 {
			t.Fatalf("empty sweep produced transition: %v", tr)
		}
	}
	if len(ss.errs) != 0 {
		t.Fatalf("empty sweeps entered the window: %v", ss.errs)
	}
}

func TestAlertBadPaths(t *testing.T) {
	m := New(Config{})
	ss := newSLOState(testSLO())
	sw := Sweep{At: at(0), Pairs: []PairState{
		{Path: "/b", Proxy: "p1", Behind: true, Lag: time.Hour},
		{Path: "/a", Proxy: "p1", Behind: true, Lag: time.Hour},
		{Path: "/c", Proxy: "p1"},
	}}
	tr := ss.observe(m, sw)
	if len(tr) != 1 {
		t.Fatalf("want fire, got %v", tr)
	}
	got := tr[0].Paths
	if len(got) != 2 || got[0] != "/a" || got[1] != "/b" {
		t.Fatalf("paths = %v, want [/a /b]", got)
	}
}

func TestConvergenceSLOGracePeriod(t *testing.T) {
	s := ConvergenceSLO(0.99, 10*time.Second)
	sw := Sweep{Pairs: []PairState{
		{Behind: true, Lag: 2 * time.Second},  // within grace: good
		{Behind: true, Lag: 30 * time.Second}, // over grace: bad
		{},                                    // at head: good
	}}
	bad, total := s.Eval(sw)
	if bad != 1 || total != 3 {
		t.Fatalf("bad=%d total=%d, want 1/3", bad, total)
	}
}

func TestStalenessSLOOnlyJudgesDegradedPairs(t *testing.T) {
	s := StalenessSLO(0.99, 30*time.Second)
	sw := Sweep{Pairs: []PairState{
		{Degraded: true, Age: time.Minute},     // bad
		{Degraded: true, Age: 5 * time.Second}, // degraded but fresh: good
		{Behind: true, Lag: time.Hour},         // not degraded: good here
	}}
	bad, total := s.Eval(sw)
	if bad != 1 || total != 3 {
		t.Fatalf("bad=%d total=%d, want 1/3", bad, total)
	}
}

func TestSLODefaults(t *testing.T) {
	s := (&SLO{Name: "d", Target: 0.99}).withDefaults()
	if s.FastSweeps != 3 || s.SlowSweeps != 10 || s.FastBurn != 2 ||
		s.SlowBurn != 1 || s.ClearSweeps != 2 {
		t.Fatalf("defaults = %+v", s)
	}
}
