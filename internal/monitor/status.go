// Status: the operator-facing snapshot behind `configerator status`.
//
// Status() is safe from any goroutine (it copies under the monitor lock)
// and both renderings are deterministic: paths, stragglers, and alerts
// come out in a fixed order so goldens and -json diffs are stable.
package monitor

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"configerator/internal/obs"
	"configerator/internal/simnet"
)

// PathStatus is one path's convergence state as of the last sweep.
type PathStatus struct {
	Path        string
	HeadVersion int64
	HeadZxid    int64
	HeadHash    uint64
	AtHead      int // proxies serving the committed head
	Total       int // proxies that serve this path at all
	Fraction    float64
}

// Straggler names one (proxy, path) pair lagging the fleet.
type Straggler struct {
	Proxy          simnet.NodeID
	Path           string
	BehindVersions int64
	Lag            time.Duration
	Silent         bool
}

// Status is a point-in-time snapshot of the monitor's folded state.
type Status struct {
	At         time.Time
	Sweeps     int64
	Proxies    int
	Paths      []PathStatus
	Stragglers []Straggler
	Alerts     []Alert // fire order; cleared alerts keep their ClearedAt

	// Propagation quantiles from the continuous time-to-head histogram
	// (zero when no registry or no samples yet).
	TimeToHeadP50 time.Duration
	TimeToHeadP99 time.Duration
}

// ActiveAlerts returns the subset of Alerts still firing.
func (s Status) ActiveAlerts() []Alert {
	var out []Alert
	for _, a := range s.Alerts {
		if a.Active() {
			out = append(out, a)
		}
	}
	return out
}

// Status snapshots the monitor. Nil-safe: a nil monitor yields a zero
// Status.
func (m *Monitor) Status() Status {
	if m == nil {
		return Status{}
	}
	m.mu.Lock()
	st := Status{
		At:         m.lastAt,
		Sweeps:     m.sweeps,
		Proxies:    len(m.proxies),
		Paths:      append([]PathStatus(nil), m.lastPaths...),
		Stragglers: append([]Straggler(nil), m.lastStragglers...),
	}
	for _, a := range m.alerts {
		st.Alerts = append(st.Alerts, *a)
	}
	m.mu.Unlock()
	st.TimeToHeadP50 = m.cfg.Obs.Histogram(HistTimeToHead).Quantile(0.50)
	st.TimeToHeadP99 = m.cfg.Obs.Histogram(HistTimeToHead).Quantile(0.99)
	return st
}

// Registry returns the monitor's obs registry (may be nil).
func (m *Monitor) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.cfg.Obs
}

// Text renders the status as an operator console view.
func (s Status) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet status @ %s (sweep %d, %d proxies)\n",
		fmtInstant(s.At), s.Sweeps, s.Proxies)
	if s.TimeToHeadP50 > 0 || s.TimeToHeadP99 > 0 {
		fmt.Fprintf(&b, "propagation time-to-head: p50=%s p99=%s\n",
			s.TimeToHeadP50, s.TimeToHeadP99)
	}

	b.WriteString("\nconvergence:\n")
	if len(s.Paths) == 0 {
		b.WriteString("  (no tracked paths)\n")
	}
	for _, p := range s.Paths {
		fmt.Fprintf(&b, "  %-40s v%-4d %3d/%-3d at head (%.0f%%)\n",
			p.Path, p.HeadVersion, p.AtHead, p.Total, p.Fraction*100)
	}

	b.WriteString("\nstragglers:\n")
	if len(s.Stragglers) == 0 {
		b.WriteString("  (none)\n")
	}
	for _, st := range s.Stragglers {
		why := fmt.Sprintf("%d versions, %s behind", st.BehindVersions, st.Lag)
		if st.Silent {
			why += ", silent"
		}
		fmt.Fprintf(&b, "  %-12s %-40s %s\n", st.Proxy, st.Path, why)
	}

	b.WriteString("\nalerts:\n")
	if len(s.Alerts) == 0 {
		b.WriteString("  (none)\n")
	}
	for _, a := range s.Alerts {
		state := "ACTIVE"
		if !a.Active() {
			state = "cleared " + fmtInstant(a.ClearedAt)
		}
		fmt.Fprintf(&b, "  [%s] %s fired %s (fast %.1fx, slow %.1fx) paths=%s\n",
			state, a.SLO, fmtInstant(a.FiredAt), a.FastBurn, a.SlowBurn,
			strings.Join(a.Paths, ","))
	}
	return b.String()
}

// JSON renders the status as deterministic JSON (keys fixed, collections
// pre-sorted).
func (s Status) JSON() string {
	var b strings.Builder
	b.WriteString("{")
	fmt.Fprintf(&b, "%q:%d,", "at_ms", unixMS(s.At))
	fmt.Fprintf(&b, "%q:%d,", "sweeps", s.Sweeps)
	fmt.Fprintf(&b, "%q:%d,", "proxies", s.Proxies)
	fmt.Fprintf(&b, "%q:%d,", "time_to_head_p50_ms", s.TimeToHeadP50.Milliseconds())
	fmt.Fprintf(&b, "%q:%d,", "time_to_head_p99_ms", s.TimeToHeadP99.Milliseconds())

	b.WriteString(`"paths":[`)
	for i, p := range s.Paths {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b,
			`{"path":%q,"head_version":%d,"head_zxid":%d,"at_head":%d,"total":%d,"fraction":%.4f}`,
			p.Path, p.HeadVersion, p.HeadZxid, p.AtHead, p.Total, p.Fraction)
	}
	b.WriteString("],")

	b.WriteString(`"stragglers":[`)
	for i, st := range s.Stragglers {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b,
			`{"proxy":%q,"path":%q,"behind_versions":%d,"lag_ms":%d,"silent":%t}`,
			st.Proxy, st.Path, st.BehindVersions, st.Lag.Milliseconds(), st.Silent)
	}
	b.WriteString("],")

	b.WriteString(`"alerts":[`)
	for i, a := range s.Alerts {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b,
			`{"slo":%q,"fired_ms":%d,"cleared_ms":%d,"active":%t,"fast_burn":%.2f,"slow_burn":%.2f,"paths":[`,
			a.SLO, unixMS(a.FiredAt), unixMS(a.ClearedAt), a.Active(),
			a.FastBurn, a.SlowBurn)
		for j, p := range a.Paths {
			if j > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "%q", p)
		}
		b.WriteString("]}")
	}
	b.WriteString("]}")
	return b.String()
}

func fmtInstant(t time.Time) string {
	if t.IsZero() {
		return "-"
	}
	return t.UTC().Format("15:04:05.000")
}

func unixMS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixMilli()
}

func sortPathStatus(ps []PathStatus) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Path < ps[j].Path })
}

func sortStragglers(ss []Straggler) {
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].Path != ss[j].Path {
			return ss[i].Path < ss[j].Path
		}
		return ss[i].Proxy < ss[j].Proxy
	})
}

func sortStrings(xs []string) { sort.Strings(xs) }
