package obs

import (
	"fmt"
	"sync"
	"time"
)

// Histogram bucket layout. Every histogram shares one fixed log-spaced
// layout so any two histograms are mergeable without rebucketing: bucket i
// covers (bound(i-1), bound(i)], where bound(i) = histBase << i. The range
// spans 50µs (an in-cluster hop) to years of virtual time (canary soaks,
// multi-day workload replays); observations beyond the last bound land in
// an overflow bucket and are reported via the exact max.
const (
	histBuckets = 44
	histBase    = 50 * time.Microsecond
)

// bucketBound returns the inclusive upper bound of bucket i.
func bucketBound(i int) time.Duration {
	return histBase << uint(i)
}

// bucketFor returns the bucket index for d (histBuckets = overflow).
func bucketFor(d time.Duration) int {
	if d <= histBase {
		return 0
	}
	// The bucket index is the position of d's highest bit relative to
	// histBase; a short loop is clearer than bit tricks and the bucket
	// count is small.
	for i := 1; i < histBuckets; i++ {
		if d <= bucketBound(i) {
			return i
		}
	}
	return histBuckets
}

// Histogram is a concurrency-safe fixed-bucket latency histogram. The zero
// value is NOT ready; obtain instances from a Registry (or NewHistogram) so
// nil handles stay cheap: every method no-ops on a nil receiver, matching
// the stats.Counters idiom, so instrumented code needs no nil checks.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets + 1]uint64
	count  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration (negative observations clamp to zero).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.counts[bucketFor(d)]++
	h.sum += d
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.mu.Unlock()
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean reports the arithmetic mean (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min and Max report the exact extremes (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max reports the largest observation (0 when empty).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation inside the bucket holding the target rank. Buckets are
// log-spaced, so the estimate's relative error is bounded by the bucket
// ratio (2x); the exact min/max tighten the first and last buckets.
// Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo, hi := time.Duration(0), bucketBound(i)
			if i > 0 {
				lo = bucketBound(i - 1)
			}
			if lo < h.min {
				lo = h.min
			}
			if i == histBuckets || hi > h.max {
				hi = h.max
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum = next
	}
	return h.max
}

// Merge folds other's observations into h. Both sides share the fixed
// bucket layout, so the merge is exact at bucket granularity.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	// Snapshot other first to keep lock ordering trivial.
	other.mu.Lock()
	counts := other.counts
	count := other.count
	sum := other.sum
	min, max := other.min, other.max
	other.mu.Unlock()
	if count == 0 {
		return
	}
	h.mu.Lock()
	for i, c := range counts {
		h.counts[i] += c
	}
	if h.count == 0 || min < h.min {
		h.min = min
	}
	if max > h.max {
		h.max = max
	}
	h.count += count
	h.sum += sum
	h.mu.Unlock()
}

// Summary renders the one-line p50/p90/p99 digest used by the text export.
func (h *Histogram) Summary() string {
	if h == nil {
		return "(nil histogram)"
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d p50=%s p90=%s p99=%s max=%s",
		h.count,
		fmtDur(h.quantileLocked(0.50)), fmtDur(h.quantileLocked(0.90)),
		fmtDur(h.quantileLocked(0.99)), fmtDur(h.max))
}

// fmtDur rounds a duration for display: microsecond precision below a
// millisecond, millisecond precision below ten seconds, else 10ms.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < 10*time.Second:
		return d.Round(time.Millisecond).String()
	default:
		return d.Round(10 * time.Millisecond).String()
	}
}
