// Package obs is the observability layer for the whole reproduction: it
// follows one config commit end-to-end the way the paper's evaluation
// (§6) does — commit-scoped traces through the pipeline stages, down the
// Zeus leader→observer→proxy push tree, and into the per-server proxy and
// client reads — and aggregates fixed-bucket latency histograms so the
// propagation CDFs can be regenerated from instrumented runs.
//
// Everything is pure stdlib and nil-safe: a nil *Registry (and the nil
// *Histogram / *Trace / *Span handles it returns) turns every call into a
// no-op, matching the stats.Counters idiom, so instrumented components pay
// nothing when observability is off.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"configerator/internal/stats"
)

// Propagation event stages, in hop order down the push tree.
const (
	EvZeusCommit       = "zeus.commit"       // leader applied + fanned out a write
	EvObserverApply    = "observer.apply"    // observer applied the pushed op
	EvProxyMaterialize = "proxy.materialize" // proxy cached the new value
	EvClientRead       = "client.read"       // application read the value
)

// Histogram names fed by PathEvent (per-hop) — exported so experiments and
// tests read the same keys the instrumentation writes.
const (
	HistHopLeaderObserver = "hop.leader_to_observer"
	HistHopObserverProxy  = "hop.observer_to_proxy"
	HistCommitToProxy     = "prop.commit_to_proxy"
	HistCommitToRead      = "prop.commit_to_read"
)

// PropEvent is one observation of a commit moving down the distribution
// tree, reported by the component that saw it with the virtual-clock time.
type PropEvent struct {
	Stage string // one of the Ev* constants
	Node  string // reporting node id
	Via   string // upstream node, when known (proxy → its observer)
	Zxid  int64
	At    time.Time
	Path  string // filled by PathEvent
}

// DefaultTraceCap bounds the commit-scoped traces a registry retains.
// Traces are the one per-commit-unbounded structure in the registry; a
// fleet that lands 10k commits must not hold 10k span trees, so the
// least-recently-used trace is evicted (and counted in obs.trace.evicted)
// once the cap is exceeded.
const DefaultTraceCap = 512

// Registry aggregates counters, latency histograms, bounded time series,
// and commit-scoped traces, and renders deterministic text and JSON
// exports.
type Registry struct {
	mu       sync.Mutex
	counters *stats.Counters
	hists    map[string]*Histogram
	series   map[string]*Series
	traces   []*Trace // creation order
	byKey    map[string]*Trace
	byPath   map[string]*Trace // zeus path -> trace of the change in flight
	lastUse  map[*Trace]int64  // LRU recency stamps (creation + lookups)
	lruSeq   int64
	nextID   int

	traceCap  int
	seriesCap int
	// tailSampler, when set, decides at trace end whether a finished trace
	// is retained; rejected traces are dropped and counted in
	// obs.trace.sampled_out.
	tailSampler func(*Trace) bool
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:  stats.NewCounters(),
		hists:     make(map[string]*Histogram),
		series:    make(map[string]*Series),
		byKey:     make(map[string]*Trace),
		byPath:    make(map[string]*Trace),
		lastUse:   make(map[*Trace]int64),
		traceCap:  DefaultTraceCap,
		seriesCap: DefaultSeriesCap,
	}
}

// Counters exposes the registry's counter set (nil when the registry is
// nil — itself a safe no-op handle).
func (r *Registry) Counters() *stats.Counters {
	if r == nil {
		return nil
	}
	return r.counters
}

// Add increments a named counter.
func (r *Registry) Add(name string, delta int64) { r.Counters().Add(name, delta) }

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Observe records one duration into the named histogram.
func (r *Registry) Observe(name string, d time.Duration) { r.Histogram(name).Observe(d) }

// HistogramNames lists the registered histograms, sorted.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.hists))
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetTraceCap bounds the retained traces (values < 1 restore the
// default). Lowering the cap evicts immediately.
func (r *Registry) SetTraceCap(n int) {
	if r == nil {
		return
	}
	if n < 1 {
		n = DefaultTraceCap
	}
	r.mu.Lock()
	r.traceCap = n
	r.evictTracesLocked()
	r.mu.Unlock()
}

// SetTailSampler installs the tail-sampling policy: keep is consulted when
// a trace ends (Trace.EndAt) and a false verdict drops the finished trace
// from the registry, counted in obs.trace.sampled_out. Tail sampling keeps
// the interesting traces (slow, erroring) at fleet scale without paying
// for every commit; nil disables sampling (keep everything, subject to the
// trace cap).
func (r *Registry) SetTailSampler(keep func(*Trace) bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tailSampler = keep
	r.mu.Unlock()
}

// evictTracesLocked drops least-recently-used traces until the cap holds.
// Caller holds r.mu. Key/alias/path indexes are cleaned by scanning the
// maps for the evicted pointer — never by locking the trace, so the
// Alias ordering (tr.mu released before r.mu) cannot deadlock.
func (r *Registry) evictTracesLocked() {
	for len(r.traces) > r.traceCap {
		victim := 0
		for i, t := range r.traces {
			if r.lastUse[t] < r.lastUse[r.traces[victim]] {
				victim = i
			}
		}
		r.removeTraceLocked(r.traces[victim])
		r.counters.Add("obs.trace.evicted", 1)
	}
}

// removeTraceLocked drops tr from the trace list and every index.
func (r *Registry) removeTraceLocked(tr *Trace) {
	for i, t := range r.traces {
		if t == tr {
			copy(r.traces[i:], r.traces[i+1:])
			r.traces[len(r.traces)-1] = nil
			r.traces = r.traces[:len(r.traces)-1]
			break
		}
	}
	for k, t := range r.byKey {
		if t == tr {
			delete(r.byKey, k)
		}
	}
	for p, t := range r.byPath {
		if t == tr {
			delete(r.byPath, p)
		}
	}
	delete(r.lastUse, tr)
}

// finishTrace applies the tail-sampling verdict to a just-ended trace.
func (r *Registry) finishTrace(tr *Trace) {
	if r == nil || tr == nil {
		return
	}
	r.mu.Lock()
	keep := r.tailSampler
	r.mu.Unlock()
	if keep == nil || keep(tr) {
		return
	}
	r.mu.Lock()
	r.removeTraceLocked(tr)
	r.counters.Add("obs.trace.sampled_out", 1)
	r.mu.Unlock()
}

// StartTrace opens a commit-scoped trace. An empty key is assigned
// "change-N" (N increments per registry). Starting a trace past the trace
// cap evicts the least-recently-used one.
func (r *Registry) StartTrace(key string, start time.Time) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if key == "" {
		r.nextID++
		key = fmt.Sprintf("change-%d", r.nextID)
	}
	tr := newTrace(key, start)
	tr.reg = r
	r.traces = append(r.traces, tr)
	r.byKey[key] = tr
	r.touchTraceLocked(tr)
	r.evictTracesLocked()
	return tr
}

// Alias registers an additional lookup key for a trace — the pipeline adds
// the landed commit hashes so `configerator trace <commit>` resolves.
func (r *Registry) Alias(tr *Trace, key string) {
	if r == nil || tr == nil || key == "" {
		return
	}
	tr.mu.Lock()
	tr.Aliases = append(tr.Aliases, key)
	tr.mu.Unlock()
	r.mu.Lock()
	r.byKey[key] = tr
	r.mu.Unlock()
}

// TraceByKey resolves a trace by exact key/alias, or by unique prefix (so
// short commit hashes work). Returns nil when absent or ambiguous. A hit
// refreshes the trace's recency, so actively-inspected traces outlive the
// LRU cap.
func (r *Registry) TraceByKey(key string) *Trace {
	if r == nil || key == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if tr := r.byKey[key]; tr != nil {
		r.touchTraceLocked(tr)
		return tr
	}
	var match *Trace
	for k, tr := range r.byKey {
		if strings.HasPrefix(k, key) {
			if match != nil && match != tr {
				return nil // ambiguous
			}
			match = tr
		}
	}
	if match != nil {
		r.touchTraceLocked(match)
	}
	return match
}

// touchTraceLocked refreshes tr's recency stamp. Caller holds r.mu.
func (r *Registry) touchTraceLocked(tr *Trace) {
	r.lruSeq++
	r.lastUse[tr] = r.lruSeq
}

// Traces returns every trace in creation order.
func (r *Registry) Traces() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Trace(nil), r.traces...)
}

// BindPath routes future propagation events for a Zeus path to tr. The
// pipeline binds each landed artifact's Zeus path just before stage 5 so
// the tailer's write and everything downstream lands in the right trace.
func (r *Registry) BindPath(path string, tr *Trace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.byPath[path] = tr
	if tr != nil {
		r.touchTraceLocked(tr)
	}
	r.mu.Unlock()
}

// PathEvent records one propagation observation: it feeds the per-hop
// histograms and counters, and stitches a hop span into the trace bound to
// the path (if any). Components call this with their own virtual-clock
// time; correlation happens here.
func (r *Registry) PathEvent(path string, ev PropEvent) {
	if r == nil {
		return
	}
	ev.Path = path
	r.mu.Lock()
	tr := r.byPath[path]
	if tr != nil {
		r.touchTraceLocked(tr)
	}
	r.mu.Unlock()
	r.counters.Add("obs."+ev.Stage, 1)
	if tr == nil {
		return
	}
	obsHop, proxyHop, total, ok := tr.addEvent(ev)
	if !ok {
		return
	}
	switch ev.Stage {
	case EvObserverApply:
		r.Observe(HistHopLeaderObserver, obsHop)
	case EvProxyMaterialize:
		r.Observe(HistHopObserverProxy, proxyHop)
		r.Observe(HistCommitToProxy, total)
	case EvClientRead:
		r.Observe(HistCommitToRead, total)
	}
}

// Text renders the deterministic plain-text export: counters, histogram
// summaries, and the trace index.
func (r *Registry) Text() string {
	if r == nil {
		return "(nil obs registry)"
	}
	var b strings.Builder
	b.WriteString(r.counters.Table("counters"))
	names := r.HistogramNames()
	if len(names) > 0 {
		t := stats.NewTable("histograms", "name", "summary")
		for _, n := range names {
			t.AddRawRow(n, r.Histogram(n).Summary())
		}
		b.WriteByte('\n')
		b.WriteString(t.String())
	}
	if sNames := r.SeriesNames(); len(sNames) > 0 {
		t := stats.NewTable("series", "name", "window")
		for _, n := range sNames {
			t.AddRawRow(n, r.Series(n).summary())
		}
		b.WriteByte('\n')
		b.WriteString(t.String())
	}
	traces := r.Traces()
	if len(traces) > 0 {
		fmt.Fprintf(&b, "\ntraces (%d):\n", len(traces))
		for _, tr := range traces {
			tr.mu.Lock()
			key := tr.Key
			aliases := strings.Join(tr.Aliases, ",")
			spans := len(tr.Root.Children)
			tr.mu.Unlock()
			fmt.Fprintf(&b, "  %s", key)
			if aliases != "" {
				fmt.Fprintf(&b, " (%s)", aliases)
			}
			fmt.Fprintf(&b, " — %d top-level spans\n", spans)
		}
	}
	return b.String()
}

// JSON renders the deterministic JSON export: counters (sorted keys via
// stats.Counters.JSON), histogram digests, and full trace trees.
func (r *Registry) JSON() []byte {
	if r == nil {
		return []byte("null")
	}
	var b strings.Builder
	b.WriteString(`{"counters":`)
	b.Write(r.counters.JSON())
	b.WriteString(`,"histograms":{`)
	for i, n := range r.HistogramNames() {
		if i > 0 {
			b.WriteByte(',')
		}
		h := r.Histogram(n)
		fmt.Fprintf(&b, `%q:{"count":%d,"mean_ms":%.3f,"p50_ms":%.3f,"p90_ms":%.3f,"p99_ms":%.3f,"max_ms":%.3f}`,
			n, h.Count(), ms(h.Mean()), ms(h.Quantile(0.50)), ms(h.Quantile(0.90)),
			ms(h.Quantile(0.99)), ms(h.Max()))
	}
	b.WriteString(`},"series":{`)
	for i, n := range r.SeriesNames() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:", n)
		r.Series(n).jsonInto(&b)
	}
	b.WriteString(`},"traces":[`)
	for i, tr := range r.Traces() {
		if i > 0 {
			b.WriteByte(',')
		}
		tr.jsonInto(&b)
	}
	b.WriteString(`]}`)
	return []byte(b.String())
}
