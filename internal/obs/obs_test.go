package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2014, 4, 1, 0, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return epoch.Add(d) }

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Add("x", 1)
	r.Observe("h", time.Second)
	r.PathEvent("/p", PropEvent{Stage: EvZeusCommit, At: at(0)})
	if r.Counters() != nil {
		t.Error("nil registry Counters should be nil")
	}
	if r.Histogram("h") != nil {
		t.Error("nil registry Histogram should be nil")
	}
	if r.HistogramNames() != nil {
		t.Error("nil registry HistogramNames should be nil")
	}
	if string(r.JSON()) != "null" {
		t.Errorf("nil JSON = %s", r.JSON())
	}
	if r.Text() == "" {
		t.Error("nil Text should still render")
	}

	tr := r.StartTrace("k", at(0))
	if tr != nil {
		t.Fatal("nil registry StartTrace should return nil")
	}
	sp := tr.Span("s", at(0))
	if sp != nil {
		t.Fatal("nil trace Span should return nil")
	}
	sp.End(at(time.Second))
	sp.Attr("k", "v")
	if sp.Duration() != 0 {
		t.Error("nil span Duration")
	}
	if sp.Child("c", at(0)) != nil {
		t.Error("nil span Child")
	}
	tr.SetDistParent(sp)
	tr.EndAt(at(time.Second))
	if tr.Render() != "(nil trace)" {
		t.Error("nil trace Render")
	}
	r.Alias(tr, "a")
	r.BindPath("/p", tr)
	if r.TraceByKey("k") != nil {
		t.Error("nil registry TraceByKey")
	}

	var h *Histogram
	h.Observe(time.Second)
	h.Merge(NewHistogram())
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("nil histogram accessors")
	}
	if h.Quantile(0.5) != 0 {
		t.Error("nil histogram Quantile")
	}
	if h.Summary() != "(nil histogram)" {
		t.Error("nil histogram Summary")
	}
	if tr.RootDuration() != 0 {
		t.Error("nil trace RootDuration")
	}

	// Time-series, retention, and merge APIs are equally nil-safe.
	if r.Series("s") != nil {
		t.Error("nil registry Series should be nil")
	}
	r.RecordSeries("s", at(0), 1)
	if r.SeriesNames() != nil {
		t.Error("nil registry SeriesNames should be nil")
	}
	r.SetSeriesCap(4)
	r.SetTraceCap(4)
	r.SetTailSampler(func(*Trace) bool { return false })
	r.Merge(New())
	New().Merge(r) // merging FROM nil is a no-op too

	var s *Series
	s.Record(at(0), 1)
	s.Merge(NewSeries(4))
	if s.Len() != 0 || s.Total() != 0 {
		t.Error("nil series accessors")
	}
	if _, ok := s.Last(); ok {
		t.Error("nil series Last")
	}
	if s.Samples() != nil {
		t.Error("nil series Samples")
	}
}

func TestHistogramBuckets(t *testing.T) {
	if bucketFor(0) != 0 || bucketFor(histBase) != 0 {
		t.Error("smallest bucket")
	}
	if bucketFor(histBase+1) != 1 {
		t.Error("boundary is inclusive upper")
	}
	if bucketFor(200000*time.Hour) != histBuckets {
		t.Error("overflow bucket")
	}
	for i := 0; i < histBuckets-1; i++ {
		if bucketFor(bucketBound(i)) != i {
			t.Errorf("bucketFor(bound(%d)) = %d", i, bucketFor(bucketBound(i)))
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Summary() != "n=0" {
		t.Error("empty histogram")
	}
	// 100 observations of 1ms..100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Errorf("min/max = %s/%s", h.Min(), h.Max())
	}
	if got, want := h.Mean(), 50500*time.Microsecond; got != want {
		t.Errorf("Mean = %s, want %s", got, want)
	}
	// Log buckets bound relative error by 2x; check p50 within its bucket.
	p50 := h.Quantile(0.50)
	if p50 < 25*time.Millisecond || p50 > 100*time.Millisecond {
		t.Errorf("p50 = %s, want ~50ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 51*time.Millisecond || p99 > 100*time.Millisecond {
		t.Errorf("p99 = %s, want ~99ms", p99)
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Error("quantile extremes")
	}
	// Identical observations: every quantile is exact (min==max tightens
	// the bucket to a point).
	e := NewHistogram()
	for i := 0; i < 10; i++ {
		e.Observe(4500 * time.Millisecond)
	}
	if e.Quantile(0.5) != 4500*time.Millisecond || e.Quantile(0.99) != 4500*time.Millisecond {
		t.Errorf("constant histogram p50=%s p99=%s", e.Quantile(0.5), e.Quantile(0.99))
	}
	if !strings.Contains(e.Summary(), "n=10") || !strings.Contains(e.Summary(), "p50=4.5s") {
		t.Errorf("Summary = %q", e.Summary())
	}
	// Negative observations clamp to zero.
	n := NewHistogram()
	n.Observe(-time.Second)
	if n.Min() != 0 || n.Max() != 0 || n.Count() != 1 {
		t.Error("negative observation should clamp to 0")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 50; i++ {
		a.Observe(time.Millisecond)
		b.Observe(time.Second)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Errorf("merged count = %d", a.Count())
	}
	if a.Min() != time.Millisecond || a.Max() != time.Second {
		t.Errorf("merged min/max = %s/%s", a.Min(), a.Max())
	}
	if got, want := a.Sum(), 50*time.Millisecond+50*time.Second; got != want {
		t.Errorf("merged sum = %s, want %s", got, want)
	}
	// Merging an empty histogram must not clobber min.
	a.Merge(NewHistogram())
	if a.Min() != time.Millisecond {
		t.Error("empty merge clobbered min")
	}
}

func TestRegistryHistogramsAndText(t *testing.T) {
	r := New()
	r.Add("lands", 2)
	r.Observe("stage.compile", 3*time.Millisecond)
	r.Observe("stage.compile", 5*time.Millisecond)
	r.Observe("stage.canary", 2*time.Second)
	names := r.HistogramNames()
	if len(names) != 2 || names[0] != "stage.canary" || names[1] != "stage.compile" {
		t.Errorf("HistogramNames = %v", names)
	}
	if r.Histogram("stage.compile").Count() != 2 {
		t.Error("histogram reuse by name")
	}
	text := r.Text()
	for _, want := range []string{"lands", "stage.compile", "n=2", "stage.canary", "total"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text missing %q:\n%s", want, text)
		}
	}
}

func TestTraceSpansAndRender(t *testing.T) {
	r := New()
	tr := r.StartTrace("", at(0))
	if tr.Key != "change-1" {
		t.Errorf("auto key = %q", tr.Key)
	}
	lint := tr.Span("lint", at(0))
	lint.End(at(10 * time.Millisecond))
	lint.Attr("files", 3)
	prop := tr.Span("propagate", at(20*time.Millisecond))
	tr.SetDistParent(prop)

	path := "/configs/materialized/a.json"
	r.BindPath(path, tr)
	r.PathEvent(path, PropEvent{Stage: EvZeusCommit, Node: "zk1", Zxid: 7, At: at(100 * time.Millisecond)})
	r.PathEvent(path, PropEvent{Stage: EvObserverApply, Node: "obs1", Zxid: 7, At: at(4100 * time.Millisecond)})
	r.PathEvent(path, PropEvent{Stage: EvProxyMaterialize, Node: "web1", Via: "obs1", Zxid: 7, At: at(4600 * time.Millisecond)})
	r.PathEvent(path, PropEvent{Stage: EvClientRead, Node: "web1", Zxid: 7, At: at(4700 * time.Millisecond)})
	prop.End(at(4600 * time.Millisecond))
	tr.EndAt(at(4600 * time.Millisecond))

	if got := r.Histogram(HistHopLeaderObserver).Max(); got != 4*time.Second {
		t.Errorf("leader→observer hop = %s, want 4s", got)
	}
	if got := r.Histogram(HistHopObserverProxy).Max(); got != 500*time.Millisecond {
		t.Errorf("observer→proxy hop = %s, want 500ms", got)
	}
	if got := r.Histogram(HistCommitToProxy).Max(); got != 4500*time.Millisecond {
		t.Errorf("commit→proxy = %s, want 4.5s", got)
	}
	if got := r.Histogram(HistCommitToRead).Max(); got != 4600*time.Millisecond {
		t.Errorf("commit→read = %s, want 4.6s", got)
	}

	out := tr.Render()
	for _, want := range []string{
		"trace change-1", "lint", "files=3", "propagate",
		"zeus.commit", "observer obs1", "(4s)", "proxy web1", "(500ms)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	// Hop spans nest: observer under commit, proxy under observer.
	if strings.Index(out, "zeus.commit") > strings.Index(out, "observer obs1") ||
		strings.Index(out, "observer obs1") > strings.Index(out, "proxy web1") {
		t.Errorf("hop spans out of order:\n%s", out)
	}

	// Events for unbound paths and unknown zxids are safe no-ops.
	r.PathEvent("/unbound", PropEvent{Stage: EvObserverApply, Zxid: 1, At: at(0)})
	r.PathEvent(path, PropEvent{Stage: EvObserverApply, Zxid: 99, At: at(0)})
	if r.Histogram(HistHopLeaderObserver).Count() != 1 {
		t.Error("unmatched events must not feed histograms")
	}

	// Proxy event with unknown upstream falls back to the commit span.
	r.PathEvent(path, PropEvent{Stage: EvProxyMaterialize, Node: "web2", Via: "mystery", Zxid: 7, At: at(5100 * time.Millisecond)})
	if got := r.Histogram(HistCommitToProxy).Max(); got != 5*time.Second {
		t.Errorf("fallback commit→proxy = %s, want 5s", got)
	}
}

func TestTraceLookup(t *testing.T) {
	r := New()
	tr := r.StartTrace("change-1", at(0))
	r.Alias(tr, "deadbeef01234567")
	if r.TraceByKey("change-1") != tr || r.TraceByKey("deadbeef01234567") != tr {
		t.Error("exact lookup")
	}
	if r.TraceByKey("deadbe") != tr {
		t.Error("prefix lookup")
	}
	if r.TraceByKey("nope") != nil {
		t.Error("absent lookup")
	}
	r.StartTrace("change-2", at(0))
	if r.TraceByKey("change-") != nil {
		t.Error("ambiguous prefix must return nil")
	}
	if len(r.Traces()) != 2 {
		t.Error("Traces length")
	}
}

func TestJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := New()
		r.Add("b", 2)
		r.Add("a", 1)
		r.Observe("h2", time.Second)
		r.Observe("h1", time.Millisecond)
		tr := r.StartTrace("k", at(0))
		r.Alias(tr, "zz")
		r.Alias(tr, "aa")
		sp := tr.Span("s", at(time.Millisecond))
		sp.Attr("z", 1)
		sp.Attr("a", 2)
		sp.End(at(2 * time.Millisecond))
		tr.EndAt(at(3 * time.Millisecond))
		return r
	}
	j1, j2 := string(build().JSON()), string(build().JSON())
	if j1 != j2 {
		t.Errorf("JSON not deterministic:\n%s\n%s", j1, j2)
	}
	for _, want := range []string{
		`"counters":{"a":1,"b":2}`, `"h1"`, `"h2"`,
		`"aliases":["aa","zz"]`, `"attrs":{"a":"2","z":"1"}`,
		`"start_ms":1.000`, `"end_ms":2.000`,
	} {
		if !strings.Contains(j1, want) {
			t.Errorf("JSON missing %q:\n%s", want, j1)
		}
	}
}

func TestConcurrency(t *testing.T) {
	r := New()
	tr := r.StartTrace("k", at(0))
	path := "/p"
	r.BindPath(path, tr)
	r.PathEvent(path, PropEvent{Stage: EvZeusCommit, Node: "l", Zxid: 1, At: at(0)})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Add("c", 1)
				r.Observe("h", time.Duration(j)*time.Millisecond)
				sp := tr.Span("s", at(time.Duration(j)))
				sp.Attr("i", i)
				sp.End(at(time.Duration(j + 1)))
				r.PathEvent(path, PropEvent{Stage: EvObserverApply, Node: "o", Zxid: 1, At: at(time.Second)})
			}
		}()
	}
	wg.Wait()
	if r.Counters().Get("c") != 1600 {
		t.Error("concurrent counter")
	}
	if r.Histogram("h").Count() != 1600 {
		t.Error("concurrent histogram")
	}
	_ = r.Text()
	_ = r.JSON()
	_ = tr.Render()
}
