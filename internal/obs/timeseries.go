package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultSeriesCap bounds each time series to a fixed ring of samples, so
// an always-on monitoring plane holds O(series × cap) memory no matter how
// long the fleet runs — the retention half of the scale-hygiene story.
const DefaultSeriesCap = 512

// Sample is one time-series observation: a value at a virtual-clock
// instant.
type Sample struct {
	At time.Time
	V  float64
}

// Series is a fixed-size ring buffer of samples — a gauge or rate sampled
// on the virtual clock. Old samples are overwritten once the ring fills;
// Total keeps counting so callers can tell how much history was shed.
// All methods are safe for concurrent use and no-op on a nil receiver
// (the Registry nil-safety idiom).
type Series struct {
	mu    sync.Mutex
	buf   []Sample // ring storage, allocated to cap on first record
	cap   int
	head  int    // next write slot
	n     int    // live samples (<= cap)
	total uint64 // lifetime samples recorded
}

func newSeries(capacity int) *Series {
	if capacity < 1 {
		capacity = DefaultSeriesCap
	}
	return &Series{cap: capacity}
}

// NewSeries returns a standalone series with the given ring capacity
// (DefaultSeriesCap when < 1) — the registry-free constructor, mirroring
// NewHistogram.
func NewSeries(capacity int) *Series { return newSeries(capacity) }

// Record appends one sample, overwriting the oldest once the ring is full.
func (s *Series) Record(at time.Time, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.buf == nil {
		s.buf = make([]Sample, s.cap)
	}
	s.buf[s.head] = Sample{At: at, V: v}
	s.head = (s.head + 1) % s.cap
	if s.n < s.cap {
		s.n++
	}
	s.total++
	s.mu.Unlock()
}

// Len reports the live (retained) sample count.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Total reports the lifetime sample count, including overwritten history.
func (s *Series) Total() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Last returns the newest sample (ok=false when empty).
func (s *Series) Last() (Sample, bool) {
	if s == nil {
		return Sample{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Sample{}, false
	}
	return s.buf[(s.head-1+s.cap)%s.cap], true
}

// Samples returns the retained window in chronological order (a copy).
func (s *Series) Samples() []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samplesLocked()
}

func (s *Series) samplesLocked() []Sample {
	out := make([]Sample, 0, s.n)
	start := (s.head - s.n + s.cap) % s.cap
	for i := 0; i < s.n; i++ {
		out = append(out, s.buf[(start+i)%s.cap])
	}
	return out
}

// Merge folds another series' retained window into this one: the combined
// samples are interleaved chronologically and the newest cap survive.
// Cross-registry Merge uses this so a per-run registry can be folded into
// a long-lived one.
func (s *Series) Merge(o *Series) {
	if s == nil || o == nil || s == o {
		return
	}
	theirs := o.Samples()
	if len(theirs) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	mine := s.samplesLocked()
	merged := make([]Sample, 0, len(mine)+len(theirs))
	i, j := 0, 0
	for i < len(mine) && j < len(theirs) {
		// Stable on ties: the receiver's sample first.
		if !theirs[j].At.Before(mine[i].At) {
			merged = append(merged, mine[i])
			i++
		} else {
			merged = append(merged, theirs[j])
			j++
		}
	}
	merged = append(merged, mine[i:]...)
	merged = append(merged, theirs[j:]...)
	if len(merged) > s.cap {
		merged = merged[len(merged)-s.cap:]
	}
	if s.buf == nil {
		s.buf = make([]Sample, s.cap)
	}
	copy(s.buf, merged)
	s.head = len(merged) % s.cap
	s.n = len(merged)
	s.total += uint64(len(theirs))
}

// summaryLocked is the one-line text rendering used by Registry.Text.
func (s *Series) summary() string {
	if s == nil {
		return "(nil)"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return "empty"
	}
	min, max := s.buf[(s.head-s.n+s.cap)%s.cap].V, s.buf[(s.head-s.n+s.cap)%s.cap].V
	start := (s.head - s.n + s.cap) % s.cap
	for i := 0; i < s.n; i++ {
		v := s.buf[(start+i)%s.cap].V
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	last := s.buf[(s.head-1+s.cap)%s.cap]
	return fmt.Sprintf("n=%d/%d last=%.4g min=%.4g max=%.4g", s.n, s.total, last.V, min, max)
}

// jsonInto appends the series' deterministic JSON encoding: retained
// samples as [unix_ms, value] pairs in chronological order.
func (s *Series) jsonInto(b *strings.Builder) {
	if s == nil {
		b.WriteString("null")
		return
	}
	samples := s.Samples()
	s.mu.Lock()
	total := s.total
	s.mu.Unlock()
	fmt.Fprintf(b, `{"count":%d,"total":%d,"samples":[`, len(samples), total)
	for i, sm := range samples {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, `[%d,%g]`, sm.At.UnixMilli(), sm.V)
	}
	b.WriteString(`]}`)
}

// Series returns the named time series, creating it (at the registry's
// configured ring capacity) on first use. Nil-safe: a nil registry returns
// a nil series whose methods all no-op.
func (r *Registry) Series(name string) *Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.series[name]
	if s == nil {
		s = newSeries(r.seriesCap)
		r.series[name] = s
	}
	return s
}

// RecordSeries appends one sample to the named series.
func (r *Registry) RecordSeries(name string, at time.Time, v float64) {
	r.Series(name).Record(at, v)
}

// SeriesNames lists the registered series, sorted.
func (r *Registry) SeriesNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.series))
	for n := range r.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetSeriesCap sets the ring capacity used by series created after the
// call (existing series keep their rings). Values < 1 restore the default.
func (r *Registry) SetSeriesCap(n int) {
	if r == nil {
		return
	}
	if n < 1 {
		n = DefaultSeriesCap
	}
	r.mu.Lock()
	r.seriesCap = n
	r.mu.Unlock()
}

// Merge folds another registry's counters, histograms, and series into
// this one. Traces are not merged — they are commit-scoped and bounded by
// the trace cap instead. Both receivers nil-safe.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil || r == o {
		return
	}
	for name, v := range o.Counters().Snapshot() {
		r.Add(name, v)
	}
	for _, name := range o.HistogramNames() {
		r.Histogram(name).Merge(o.Histogram(name))
	}
	for _, name := range o.SeriesNames() {
		r.Series(name).Merge(o.Series(name))
	}
}
