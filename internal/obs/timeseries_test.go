package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSeriesRingSemantics(t *testing.T) {
	s := NewSeries(4)
	for i := 0; i < 3; i++ {
		s.Record(at(time.Duration(i)*time.Second), float64(i))
	}
	if s.Len() != 3 || s.Total() != 3 {
		t.Fatalf("len=%d total=%d", s.Len(), s.Total())
	}
	got := s.Samples()
	for i, sm := range got {
		if sm.V != float64(i) {
			t.Fatalf("samples = %+v", got)
		}
	}
	// Overflow: oldest samples shed, Total keeps counting.
	for i := 3; i < 10; i++ {
		s.Record(at(time.Duration(i)*time.Second), float64(i))
	}
	if s.Len() != 4 || s.Total() != 10 {
		t.Fatalf("after overflow len=%d total=%d", s.Len(), s.Total())
	}
	got = s.Samples()
	want := []float64{6, 7, 8, 9}
	for i := range want {
		if got[i].V != want[i] {
			t.Fatalf("retained = %+v, want values %v", got, want)
		}
	}
	if last, ok := s.Last(); !ok || last.V != 9 {
		t.Fatalf("last = %+v", last)
	}
}

func TestSeriesMergeChronological(t *testing.T) {
	a := NewSeries(8)
	b := NewSeries(8)
	a.Record(at(1*time.Second), 1)
	a.Record(at(3*time.Second), 3)
	b.Record(at(2*time.Second), 2)
	b.Record(at(4*time.Second), 4)
	a.Merge(b)
	got := a.Samples()
	if len(got) != 4 {
		t.Fatalf("merged = %+v", got)
	}
	for i, want := range []float64{1, 2, 3, 4} {
		if got[i].V != want {
			t.Fatalf("merged order = %+v", got)
		}
	}
	if a.Total() != 4 {
		t.Fatalf("merged total = %d", a.Total())
	}
	// Merging more than cap keeps only the newest cap samples.
	c := NewSeries(2)
	c.Merge(a)
	cs := c.Samples()
	if len(cs) != 2 || cs[0].V != 3 || cs[1].V != 4 {
		t.Fatalf("capped merge = %+v", cs)
	}
}

func TestRegistrySeries(t *testing.T) {
	r := New()
	r.RecordSeries("b.rate", at(0), 1)
	r.Series("a.gauge").Record(at(time.Second), 2)
	if got := r.SeriesNames(); len(got) != 2 || got[0] != "a.gauge" || got[1] != "b.rate" {
		t.Fatalf("names = %v", got)
	}
	if r.Series("b.rate").Len() != 1 {
		t.Fatal("recorded sample missing")
	}
	// SetSeriesCap applies to series created after the call.
	r.SetSeriesCap(2)
	s := r.Series("small")
	for i := 0; i < 5; i++ {
		s.Record(at(time.Duration(i)*time.Second), float64(i))
	}
	if s.Len() != 2 {
		t.Fatalf("capped series len = %d", s.Len())
	}
	// Text and JSON carry the series section.
	if txt := r.Text(); !strings.Contains(txt, "a.gauge") {
		t.Errorf("Text missing series:\n%s", txt)
	}
	if js := string(r.JSON()); !strings.Contains(js, `"series"`) || !strings.Contains(js, `"a.gauge"`) {
		t.Errorf("JSON missing series: %s", js)
	}
}

func TestRegistryMerge(t *testing.T) {
	a, b := New(), New()
	a.Add("c", 1)
	b.Add("c", 2)
	b.Add("only-b", 5)
	a.Observe("h", time.Second)
	b.Observe("h", 3*time.Second)
	a.RecordSeries("s", at(0), 1)
	b.RecordSeries("s", at(time.Second), 2)

	a.Merge(b)
	if got := a.Counters().Get("c"); got != 3 {
		t.Errorf("merged counter = %d", got)
	}
	if got := a.Counters().Get("only-b"); got != 5 {
		t.Errorf("b-only counter = %d", got)
	}
	if got := a.Histogram("h").Count(); got != 2 {
		t.Errorf("merged histogram count = %d", got)
	}
	if got := a.Series("s").Len(); got != 2 {
		t.Errorf("merged series len = %d", got)
	}
	// Self-merge is a no-op, not a doubling.
	a.Merge(a)
	if got := a.Counters().Get("c"); got != 3 {
		t.Errorf("self-merge changed counter: %d", got)
	}
}

// TestTraceRetentionBounded is the regression gate for unbounded trace
// growth: a 10k-commit run must stay within the trace cap, evict the
// least-recently-used traces first, and keep alias/path lookups correct.
func TestTraceRetentionBounded(t *testing.T) {
	r := New()
	r.SetTraceCap(64)
	for i := 0; i < 10_000; i++ {
		key := fmt.Sprintf("commit-%d", i)
		tr := r.StartTrace(key, at(time.Duration(i)*time.Second))
		tr.EndAt(at(time.Duration(i)*time.Second + time.Millisecond))
		// Keep commit-0 hot (every lookup refreshes recency — well inside
		// the 64-trace cap): recency, not insertion order, decides victims.
		if i%10 == 0 && i > 0 {
			if r.TraceByKey("commit-0") == nil {
				t.Fatalf("hot trace evicted at i=%d", i)
			}
		}
	}
	if got := len(r.Traces()); got > 64 {
		t.Fatalf("retained traces = %d, want <= 64", got)
	}
	if r.TraceByKey("commit-0") == nil {
		t.Fatal("most-recently-used trace evicted")
	}
	if r.TraceByKey("commit-9999") == nil {
		t.Fatal("newest trace evicted")
	}
	if r.TraceByKey("commit-5000") != nil {
		t.Fatal("cold mid-run trace survived 10k inserts")
	}
	evicted := r.Counters().Get("obs.trace.evicted")
	if evicted != 10_000-64 {
		t.Fatalf("obs.trace.evicted = %d, want %d", evicted, 10_000-64)
	}
	// Evicted traces must be fully unindexed: prefix lookup never returns
	// a trace the ring no longer holds.
	if tr := r.TraceByKey("commit-500"); tr != nil {
		t.Fatalf("evicted trace still indexed: %v", tr)
	}
}

func TestTraceEvictionDropsAliasesAndPaths(t *testing.T) {
	r := New()
	r.SetTraceCap(1)
	t1 := r.StartTrace("first", at(0))
	r.Alias(t1, "alias-1")
	r.BindPath("/cfg/a", t1)
	t2 := r.StartTrace("second", at(time.Second)) // evicts t1
	if r.TraceByKey("first") != nil || r.TraceByKey("alias-1") != nil {
		t.Fatal("evicted trace reachable by key/alias")
	}
	if r.TraceByKey("second") != t2 {
		t.Fatal("survivor lost")
	}
	// A path event for the evicted binding must not resurrect it.
	r.PathEvent("/cfg/a", PropEvent{Stage: EvZeusCommit, At: at(2 * time.Second)})
}

func TestSetTraceCapEvictsImmediately(t *testing.T) {
	r := New()
	for i := 0; i < 10; i++ {
		r.StartTrace(fmt.Sprintf("t-%d", i), at(time.Duration(i)))
	}
	r.SetTraceCap(3)
	if got := len(r.Traces()); got != 3 {
		t.Fatalf("traces after cap = %d", got)
	}
}

func TestTailSampler(t *testing.T) {
	r := New()
	// Keep only traces slower than 1s.
	r.SetTailSampler(func(tr *Trace) bool { return tr.RootDuration() > time.Second })
	fast := r.StartTrace("fast", at(0))
	fast.EndAt(at(10 * time.Millisecond))
	slow := r.StartTrace("slow", at(0))
	slow.EndAt(at(5 * time.Second))
	if r.TraceByKey("fast") != nil {
		t.Fatal("fast trace survived tail sampling")
	}
	if r.TraceByKey("slow") == nil {
		t.Fatal("slow trace sampled out")
	}
	if got := r.Counters().Get("obs.trace.sampled_out"); got != 1 {
		t.Fatalf("obs.trace.sampled_out = %d", got)
	}
}

// TestSeriesConcurrent pins the concurrency contract under -race: series
// writes race snapshots, merges, and renders.
func TestSeriesConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("s-%d", g%2)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.RecordSeries(name, at(time.Duration(i)), float64(i))
			}
		}(g)
	}
	other := New()
	other.RecordSeries("s-0", at(0), 1)
	for i := 0; i < 200; i++ {
		_ = r.Series("s-0").Samples()
		_, _ = r.Series("s-1").Last()
		_ = r.Text()
		_ = r.JSON()
		other.Merge(r)
	}
	close(stop)
	wg.Wait()
}
