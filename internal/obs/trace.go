package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one structured span attribute.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed operation inside a trace. Start/End are virtual-clock
// instants (the simnet clock for fleet runs, the standalone pipeline clock
// otherwise). Spans are created through their Trace so a nil trace yields
// nil spans, and every Span method no-ops on a nil receiver — instrumented
// code never nil-checks.
type Span struct {
	tr       *Trace // owning trace; guards all mutation
	Name     string
	Start    time.Time
	EndTime  time.Time
	Attrs    []Attr
	Children []*Span
}

// Trace is the commit-scoped record of one config change: a tree of spans
// covering the pipeline stages plus the distribution hops (leader commit →
// observer catch-up/push → proxy materialize) stitched in as they happen.
type Trace struct {
	mu      sync.Mutex
	Key     string   // primary key: "change-N" until land, then aliased
	Aliases []string // commit hashes added when the change lands
	Root    *Span

	// reg is the owning registry (nil for free-standing traces): EndAt
	// reports back so the tail sampler can decide whether the finished
	// trace is retained.
	reg *Registry

	// distParent is where distribution hop spans attach ("propagate"
	// stage when the pipeline marks one, else the root).
	distParent *Span
	// dist tracks per-(path,zxid) hop state so observer and proxy events
	// can find their upstream span and timestamp.
	dist map[distKey]*distState
}

type distKey struct {
	path string
	zxid int64
}

type distState struct {
	span      *Span // the zeus.commit span
	commitAt  time.Time
	observers map[string]*Span     // observer node -> hop span
	obsAt     map[string]time.Time // observer node -> apply time
}

func newTrace(key string, start time.Time) *Trace {
	tr := &Trace{Key: key, dist: make(map[distKey]*distState)}
	tr.Root = &Span{tr: tr, Name: "change", Start: start}
	tr.distParent = tr.Root
	return tr
}

// Span opens a child span under the trace root.
func (t *Trace) Span(name string, start time.Time) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.Root.childLocked(name, start)
}

// Child opens a sub-span.
func (s *Span) Child(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.childLocked(name, start)
}

func (s *Span) childLocked(name string, start time.Time) *Span {
	c := &Span{tr: s.tr, Name: name, Start: start}
	s.Children = append(s.Children, c)
	return c
}

// End closes the span at the given instant.
func (s *Span) End(at time.Time) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.EndTime = at
	s.tr.mu.Unlock()
}

// Attr attaches one structured attribute.
func (s *Span) Attr(key string, value interface{}) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: fmt.Sprintf("%v", value)})
	s.tr.mu.Unlock()
}

// Duration reports End-Start (0 while the span is open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.EndTime.IsZero() {
		return 0
	}
	return s.EndTime.Sub(s.Start)
}

// Annotate attaches an attribute to the trace's root span.
func (t *Trace) Annotate(key string, value interface{}) {
	if t == nil {
		return
	}
	t.Root.Attr(key, value)
}

// SetDistParent marks the span under which distribution hop spans attach
// (the pipeline points this at its propagate stage).
func (t *Trace) SetDistParent(s *Span) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	t.distParent = s
	t.mu.Unlock()
}

// EndAt closes the root span and submits the finished trace to the
// registry's tail sampler (if any), which may drop it. The registry lock
// is taken only after t.mu is released, so samplers may inspect the trace
// freely.
func (t *Trace) EndAt(at time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Root.EndTime = at
	reg := t.reg
	t.mu.Unlock()
	reg.finishTrace(t)
}

// RootDuration reports the ended trace's total duration (0 while open) —
// the usual tail-sampling signal.
func (t *Trace) RootDuration() time.Duration {
	if t == nil {
		return 0
	}
	return t.Root.Duration()
}

// addEvent stitches one propagation event into the hop-span tree. It
// returns the durations the registry feeds into the hop histograms:
// obsHop (leader commit → observer apply), proxyHop (observer apply →
// proxy materialize), and total (commit → proxy), with ok reporting
// whether the event matched known upstream state.
func (t *Trace) addEvent(ev PropEvent) (obsHop, proxyHop, total time.Duration, ok bool) {
	if t == nil {
		return 0, 0, 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := distKey{path: ev.Path, zxid: ev.Zxid}
	switch ev.Stage {
	case EvZeusCommit:
		sp := t.distParent.childLocked("zeus.commit", ev.At)
		sp.EndTime = ev.At
		sp.Attrs = append(sp.Attrs,
			Attr{Key: "path", Value: ev.Path},
			Attr{Key: "zxid", Value: fmt.Sprintf("%d", ev.Zxid)},
			Attr{Key: "leader", Value: ev.Node})
		t.dist[key] = &distState{
			span: sp, commitAt: ev.At,
			observers: make(map[string]*Span),
			obsAt:     make(map[string]time.Time),
		}
		return 0, 0, 0, true
	case EvObserverApply:
		ds := t.dist[key]
		if ds == nil {
			return 0, 0, 0, false
		}
		sp := ds.span.childLocked("observer "+ev.Node, ds.commitAt)
		sp.EndTime = ev.At
		ds.observers[ev.Node] = sp
		ds.obsAt[ev.Node] = ev.At
		return ev.At.Sub(ds.commitAt), 0, 0, true
	case EvProxyMaterialize:
		ds := t.dist[key]
		if ds == nil {
			return 0, 0, 0, false
		}
		parent := ds.observers[ev.Via]
		from := ds.obsAt[ev.Via]
		if parent == nil {
			// Unknown upstream (e.g. direct fetch before any observer
			// event was seen): attach to the commit span and measure the
			// hop from commit time.
			parent = ds.span
			from = ds.commitAt
		}
		sp := parent.childLocked("proxy "+ev.Node, from)
		sp.EndTime = ev.At
		return 0, ev.At.Sub(from), ev.At.Sub(ds.commitAt), true
	default:
		ds := t.dist[key]
		if ds == nil {
			return 0, 0, 0, false
		}
		return 0, 0, ev.At.Sub(ds.commitAt), true
	}
}

// Render prints the span tree with durations and attributes, in creation
// order, offsets relative to the trace start.
func (t *Trace) Render() string {
	if t == nil {
		return "(nil trace)"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	keys := t.Key
	if len(t.Aliases) > 0 {
		keys += " (" + strings.Join(t.Aliases, ", ") + ")"
	}
	end := "open"
	if !t.Root.EndTime.IsZero() {
		end = fmtDur(t.Root.EndTime.Sub(t.Root.Start))
	}
	fmt.Fprintf(&b, "trace %s — %s\n", keys, end)
	base := t.Root.Start
	var walk func(s *Span, prefix string, last bool)
	walk = func(s *Span, prefix string, last bool) {
		branch, cont := "├─ ", "│  "
		if last {
			branch, cont = "└─ ", "   "
		}
		fmt.Fprintf(&b, "%s%s%s", prefix, branch, s.Name)
		if s.EndTime.IsZero() {
			fmt.Fprintf(&b, "  +%s..open", fmtDur(s.Start.Sub(base)))
		} else if s.EndTime.Equal(s.Start) {
			fmt.Fprintf(&b, "  @%s", fmtDur(s.Start.Sub(base)))
		} else {
			fmt.Fprintf(&b, "  +%s  (%s)", fmtDur(s.Start.Sub(base)), fmtDur(s.EndTime.Sub(s.Start)))
		}
		for _, a := range s.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
		for i, c := range s.Children {
			walk(c, prefix+cont, i == len(s.Children)-1)
		}
	}
	for i, c := range t.Root.Children {
		walk(c, "", i == len(t.Root.Children)-1)
	}
	return b.String()
}

// JSON renders the trace's deterministic JSON encoding (sorted aliases
// and attrs, millisecond offsets from the root start) — "null" for a nil
// trace.
func (t *Trace) JSON() string {
	var b strings.Builder
	t.jsonInto(&b)
	return b.String()
}

// jsonInto appends the trace's deterministic JSON encoding.
func (t *Trace) jsonInto(b *strings.Builder) {
	if t == nil {
		b.WriteString("null")
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(b, `{"key":%q,"aliases":[`, t.Key)
	aliases := append([]string(nil), t.Aliases...)
	sort.Strings(aliases)
	for i, a := range aliases {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%q", a)
	}
	b.WriteString(`],"root":`)
	t.Root.jsonInto(b, t.Root.Start)
	b.WriteByte('}')
}

func (s *Span) jsonInto(b *strings.Builder, base time.Time) {
	fmt.Fprintf(b, `{"name":%q,"start_ms":%.3f`, s.Name, ms(s.Start.Sub(base)))
	if !s.EndTime.IsZero() {
		fmt.Fprintf(b, `,"end_ms":%.3f`, ms(s.EndTime.Sub(base)))
	}
	if len(s.Attrs) > 0 {
		b.WriteString(`,"attrs":{`)
		attrs := append([]Attr(nil), s.Attrs...)
		sort.SliceStable(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
		for i, a := range attrs {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%q:%q", a.Key, a.Value)
		}
		b.WriteByte('}')
	}
	if len(s.Children) > 0 {
		b.WriteString(`,"children":[`)
		for i, c := range s.Children {
			if i > 0 {
				b.WriteByte(',')
			}
			c.jsonInto(b, base)
		}
		b.WriteByte(']')
	}
	b.WriteByte('}')
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
