package obs

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// buildGoldenTrace assembles one fully-featured trace by hand: nested
// spans, an open span, attributes inserted out of key order, aliases
// added out of lexical order, and a commit→observer→proxy distribution
// hop — every encoder branch the CLI's `trace -json` output exercises.
func buildGoldenTrace() *Trace {
	r := New()
	tr := r.StartTrace("change-1", at(0))
	r.Alias(tr, "deadbeef")
	r.Alias(tr, "cafe1234")
	tr.Annotate("author", "demo")
	tr.Annotate("adopted", true)

	lint := tr.Span("lint", at(10*time.Millisecond))
	lint.End(at(25 * time.Millisecond))

	prop := tr.Span("propagate", at(30*time.Millisecond))
	tr.SetDistParent(prop)
	r.BindPath("/cfg/demo", tr)
	r.PathEvent("/cfg/demo", PropEvent{
		Stage: EvZeusCommit, Node: "leader", Zxid: 7, At: at(40 * time.Millisecond),
	})
	r.PathEvent("/cfg/demo", PropEvent{
		Stage: EvObserverApply, Node: "obs-1", Zxid: 7, At: at(55 * time.Millisecond),
	})
	r.PathEvent("/cfg/demo", PropEvent{
		Stage: EvProxyMaterialize, Node: "proxy-1", Via: "obs-1", Zxid: 7, At: at(62 * time.Millisecond),
	})
	prop.End(at(70 * time.Millisecond))

	open := tr.Span("watchers", at(70*time.Millisecond))
	_ = open // deliberately left open: encodes without end_ms
	tr.EndAt(at(80 * time.Millisecond))
	return tr
}

// TestTraceJSONGolden pins the exact byte-for-byte encoding that
// `configerator trace -json` emits: stable key order, sorted aliases and
// attrs, millisecond offsets. Run with -update to rewrite the golden.
func TestTraceJSONGolden(t *testing.T) {
	got := buildGoldenTrace().JSON()

	goldenPath := filepath.Join("testdata", "trace_json.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got+"\n" != string(want) {
		t.Errorf("trace JSON drifted from golden:\n got: %s\nwant: %s", got, want)
	}

	// The encoding must be valid JSON, not just stable bytes.
	var decoded map[string]interface{}
	if err := json.Unmarshal([]byte(got), &decoded); err != nil {
		t.Fatalf("golden output is not valid JSON: %v", err)
	}
	if decoded["key"] != "change-1" {
		t.Errorf("decoded key = %v", decoded["key"])
	}
}

// TestTraceJSONDeterministic pins that the encoding is a pure function of
// the trace contents: re-rendering and rebuilding both yield identical
// bytes, and aliases/attrs come out sorted regardless of insert order.
func TestTraceJSONDeterministic(t *testing.T) {
	tr := buildGoldenTrace()
	first := tr.JSON()
	for i := 0; i < 3; i++ {
		if again := tr.JSON(); again != first {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, again, first)
		}
	}
	if rebuilt := buildGoldenTrace().JSON(); rebuilt != first {
		t.Fatalf("rebuilt trace differs:\n%s\nvs\n%s", rebuilt, first)
	}
	var nilTr *Trace
	if got := nilTr.JSON(); got != "null" {
		t.Fatalf("nil trace JSON = %q", got)
	}
}
