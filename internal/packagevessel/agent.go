package packagevessel

import (
	"sort"
	"time"

	"configerator/internal/obs"
	"configerator/internal/packagevessel/blob"
	"configerator/internal/simnet"
)

const (
	// chunkTimeout bounds one chunk fetch before the slot is reclaimed
	// (the assigned peer may have crashed mid-transfer).
	chunkTimeout = 30 * time.Second
	// directChunkTimeout is the patient variant for central-only mode,
	// where every request queues behind the whole fleet on the origin's
	// uplink and a short timer would only add duplicate load.
	directChunkTimeout = 5 * time.Minute
	// manifestRetry re-requests an unanswered manifest fetch.
	manifestRetry = 10 * time.Second
	// maxNeedList caps the digests listed per msgWant.
	maxNeedList = 512
	// announceEvery pushes a standalone holder announcement once this
	// many verified chunks have accumulated — mid-transfer agents become
	// visible seeds for their cluster without waiting for completion.
	announceEvery = 4
)

// Options configures an Agent. Zero values take the defaults.
type Options struct {
	// Window is the agent-wide concurrent chunk fetch limit (default 8).
	Window int
	// PerPeerInflight caps concurrent fetches aimed at one peer (default
	// 2) so a popular holder's uplink is shared, not monopolized.
	PerPeerInflight int
	// GrantBatch is how many grants one tracker round trip asks for
	// (default 16). GrantBatch 1 reproduces the old one-round-trip-per-
	// chunk swarm (the experiment's baseline).
	GrantBatch int
	// Store is the agent's durable chunk store — its "disk". Passing the
	// same store across NewAgent calls models a restart with the disk
	// intact. Nil allocates a fresh one.
	Store *blob.Store
	// Obs receives the vessel.* counters (nil-safe).
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 8
	}
	if o.PerPeerInflight <= 0 {
		o.PerPeerInflight = 2
	}
	if o.GrantBatch <= 0 {
		o.GrantBatch = 16
	}
	if o.Store == nil {
		o.Store = blob.NewStore()
	}
	return o
}

// TransferStats accounts one completed transfer.
type TransferStats struct {
	ChunksFetched  int   // chunks actually pulled over the wire
	ChunksDeduped  int   // manifest chunks already on disk (prior versions)
	BytesFetched   int64 // logical bytes on the wire
	BytesDeduped   int64 // logical bytes dedup saved
	Resumed        bool  // transfer recovered from the journal after a crash
	ResumeVerified int   // chunks re-verified on disk during recovery
}

// flight is one in-flight chunk fetch.
type flight struct {
	t    *transfer
	peer simnet.NodeID
}

// transfer tracks one in-progress package fetch.
type transfer struct {
	manifest blob.Manifest
	origin   simnet.NodeID // registry (authoritative fallback)
	tracker  simnet.NodeID // swarm coordinator ("" in direct mode)
	need     map[blob.Digest]bool
	// order holds the still-needed digests in manifest order (compacted
	// lazily as chunks verify), so building a msgWant need list scans
	// remaining work, not the whole manifest.
	order    []blob.Digest
	inflight map[blob.Digest]simnet.NodeID
	pending  []grant
	started  time.Time
	wantOut  bool // a msgWant is outstanding
	retryOut bool // a backoff retry timer is armed
	direct   bool // central-only mode: all chunks from origin, no swarm
	stats    TransferStats
}

// Agent runs on every subscribed server: it receives metadata updates
// (via the Configerator proxy subscription), fetches the named manifest,
// and swarms the missing digests — several in parallel, capped per peer,
// every chunk verified against its content address before it is stored.
type Agent struct {
	id   simnet.NodeID
	net  *simnet.Network
	opts Options
	obs  *obs.Registry

	store            *blob.Store
	transfers        map[string]*transfer // by package name (newest version only)
	inflight         map[blob.Digest]flight
	perPeer          map[simnet.NodeID]int
	inflightTotal    int
	haveBuf          []blob.Digest // verified digests awaiting announcement
	pendingManifests map[string]Metadata
	quarantined      map[simnet.NodeID]bool
	avoid            []simnet.NodeID // quarantine order (deterministic Avoid lists)

	onComplete func(m blob.Manifest, took time.Duration, st TransferStats)

	// Stats.
	ChunksFetched     uint64
	ChunksFromOrigin  uint64
	ChunksFromPeers   uint64
	ChunksSameCluster uint64
	ChunksSameRegion  uint64
	ChunksCrossRegion uint64
	ChunksServed      uint64
	CorruptChunks     uint64
	ResumeVerified    uint64
}

// NewAgent creates an agent node.
func NewAgent(net *simnet.Network, id simnet.NodeID, p simnet.Placement, opts Options) *Agent {
	opts = opts.withDefaults()
	a := &Agent{
		id: id, net: net, opts: opts, obs: opts.Obs,
		store:            opts.Store,
		transfers:        make(map[string]*transfer),
		inflight:         make(map[blob.Digest]flight),
		perPeer:          make(map[simnet.NodeID]int),
		pendingManifests: make(map[string]Metadata),
		quarantined:      make(map[simnet.NodeID]bool),
	}
	net.AddNode(id, p, a)
	return a
}

// OnComplete registers the completion callback.
func (a *Agent) OnComplete(fn func(m blob.Manifest, took time.Duration, st TransferStats)) {
	a.onComplete = fn
}

// Store is the agent's durable chunk store.
func (a *Agent) Store() *blob.Store { return a.store }

// Complete reports whether the agent holds the full package version.
func (a *Agent) Complete(name string, version int64) bool {
	return a.store.Complete(name, version)
}

// Quarantined lists peers banned for serving corrupt chunks, in
// quarantine order.
func (a *Agent) Quarantined() []simnet.NodeID {
	return append([]simnet.NodeID(nil), a.avoid...)
}

// OnAnnounce reacts to a metadata update from the subscription path: it
// fetches the manifest the record names (verifying it against the
// metadata's digest) and starts or resumes the transfer. Stale metadata —
// a version at or below what we hold or are fetching — is ignored:
// consistency of the metadata drives consistency of the bulk content.
func (a *Agent) OnAnnounce(md Metadata) {
	if a.store.Complete(md.Name, md.Version) {
		return
	}
	if t, ok := a.transfers[md.Name]; ok && t.manifest.Version >= md.Version {
		return
	}
	if cur, ok := a.pendingManifests[md.Name]; ok && cur.Version >= md.Version {
		return
	}
	a.pendingManifests[md.Name] = md
	ctx := simnet.MakeContext(a.net, a.id)
	ctx.Send(md.Registry, msgGetManifest{Name: md.Name, Version: md.Version})
	ctx.SetTimer(manifestRetry, msgManifestRetry{Name: md.Name, Version: md.Version})
}

// OnMetadata starts a download from an encoded metadata artifact.
//
// Deprecated: use OnAnnounce with a parsed Metadata; OnMetadata remains
// for one release so external callers can migrate. Undecodable metadata
// is ignored, as before.
func (a *Agent) OnMetadata(data []byte) {
	md, err := ParseMetadata(data)
	if err != nil {
		return
	}
	a.OnAnnounce(md)
}

// OnManifest starts (or dedups into) a transfer from an already-verified
// manifest — the direct entry used when the caller holds the manifest
// itself rather than the small metadata record.
func (a *Agent) OnManifest(m blob.Manifest, origin, tracker simnet.NodeID) {
	ctx := simnet.MakeContext(a.net, a.id)
	a.startTransfer(&ctx, m, origin, tracker, false)
}

// FetchDirect is the ablation baseline: fetch every missing chunk
// straight from origin, no swarm coordination.
func (a *Agent) FetchDirect(m blob.Manifest, origin simnet.NodeID) {
	ctx := simnet.MakeContext(a.net, a.id)
	a.startTransfer(&ctx, m, origin, "", true)
}

// startTransfer begins fetching a manifest. Chunks already in the store —
// from prior versions of this package or any other — are dedup hits and
// are not fetched again.
func (a *Agent) startTransfer(ctx *simnet.Context, m blob.Manifest, origin, tracker simnet.NodeID, direct bool) {
	if a.store.Complete(m.Name, m.Version) {
		return
	}
	if cur, ok := a.transfers[m.Name]; ok {
		if cur.manifest.Version >= m.Version {
			return
		}
		a.abandon(cur)
	}
	delete(a.pendingManifests, m.Name)

	distinct := m.Distinct()
	missing := a.store.Missing(m)
	t := &transfer{
		manifest: m, origin: origin, tracker: tracker, direct: direct,
		need:     make(map[blob.Digest]bool, len(missing)),
		order:    missing,
		inflight: make(map[blob.Digest]simnet.NodeID),
		started:  ctx.Now(),
	}
	for _, d := range missing {
		t.need[d] = true
	}
	t.stats.ChunksDeduped = len(distinct) - len(missing)
	for d, size := range distinct {
		if !t.need[d] {
			t.stats.BytesDeduped += int64(size)
		}
	}
	a.obs.Add("vessel.chunks.dedup", int64(t.stats.ChunksDeduped))
	a.obs.Add("vessel.bytes.saved", t.stats.BytesDeduped)

	a.store.Begin(m, string(origin), string(tracker))
	a.transfers[m.Name] = t
	if len(t.need) == 0 {
		a.finish(ctx, t)
		return
	}
	if direct {
		a.dispatchDirect(ctx, t)
	} else {
		a.requestGrants(ctx, t)
	}
}

// abandon drops a transfer superseded by a newer version. Fetched chunks
// stay on disk — content-addressed, they may dedup the successor.
func (a *Agent) abandon(t *transfer) {
	for d, peer := range t.inflight {
		delete(a.inflight, d)
		if a.perPeer[peer] > 0 {
			a.perPeer[peer]--
		}
		a.inflightTotal--
	}
	a.store.Abandon(t.manifest)
	delete(a.transfers, t.manifest.Name)
}

// flushHave drains the announce buffer.
func (a *Agent) flushHave() []blob.Digest {
	h := a.haveBuf
	a.haveBuf = nil
	return h
}

// needList returns the transfer's missing digests in manifest order,
// excluding those already granted, capped at maxNeedList. The order
// slice compacts down to the still-needed digests as a side effect, so
// repeated calls late in a transfer scan only the remaining work.
func (t *transfer) needList() []blob.Digest {
	live := t.order[:0]
	out := make([]blob.Digest, 0, min(len(t.order), maxNeedList))
	for _, d := range t.order {
		if !t.need[d] && t.inflight[d] == "" && !t.granted(d) {
			continue // satisfied: drop from order
		}
		live = append(live, d)
		if len(out) < maxNeedList && t.need[d] && !t.granted(d) {
			out = append(out, d)
		}
	}
	t.order = live
	return out
}

// granted reports whether a digest already has an undispatched grant
// (pending is bounded by the grant batch size, so a linear scan wins
// over a map).
func (t *transfer) granted(d blob.Digest) bool {
	for _, g := range t.pending {
		if g.Digest == d {
			return true
		}
	}
	return false
}

// requestGrants asks the tracker for the next batch, piggybacking newly
// verified digests as announcements.
func (a *Agent) requestGrants(ctx *simnet.Context, t *transfer) {
	if t.direct {
		a.dispatchDirect(ctx, t)
		return
	}
	if t.wantOut || t.retryOut || t.tracker == "" {
		// One want in flight at a time — and none at all while a backoff
		// timer is armed: an empty grant means the swarm has no capacity
		// for us this tick, and immediate re-asking is just a want storm.
		return
	}
	need := t.needList()
	if len(need) == 0 {
		return
	}
	max := a.opts.GrantBatch - len(t.pending)
	if max <= 0 {
		return
	}
	t.wantOut = true
	ctx.Send(t.tracker, msgWant{Have: a.flushHave(), Need: need, Max: max, Avoid: a.Quarantined()})
}

// dispatch issues granted fetches while the window and per-peer caps
// allow.
func (a *Agent) dispatch(ctx *simnet.Context, t *transfer) {
	var deferred []grant
	for len(t.pending) > 0 && a.inflightTotal < a.opts.Window {
		g := t.pending[0]
		t.pending = t.pending[1:]
		if !t.need[g.Digest] || a.quarantined[g.Peer] {
			continue
		}
		if a.perPeer[g.Peer] >= a.opts.PerPeerInflight {
			deferred = append(deferred, g)
			continue
		}
		delete(t.need, g.Digest)
		t.inflight[g.Digest] = g.Peer
		a.inflight[g.Digest] = flight{t: t, peer: g.Peer}
		a.perPeer[g.Peer]++
		a.inflightTotal++
		ctx.Send(g.Peer, msgGetChunk{Digest: g.Digest})
		ctx.SetTimer(chunkTimeout, msgChunkTimeout{Digest: g.Digest})
	}
	t.pending = append(t.pending, deferred...)
	if len(t.need) > 0 && len(t.pending) <= a.opts.GrantBatch/2 {
		a.requestGrants(ctx, t)
	}
}

// dispatchDirect requests every missing chunk straight from the origin at
// once — the naive central fetch the swarm exists to avoid.
func (a *Agent) dispatchDirect(ctx *simnet.Context, t *transfer) {
	for _, r := range t.manifest.Chunks {
		if !t.need[r.Digest] {
			continue
		}
		delete(t.need, r.Digest)
		t.inflight[r.Digest] = t.origin
		a.inflight[r.Digest] = flight{t: t, peer: t.origin}
		ctx.Send(t.origin, msgGetChunk{Digest: r.Digest})
		ctx.SetTimer(directChunkTimeout, msgChunkTimeout{Digest: r.Digest})
	}
}

// HandleMessage implements simnet.Handler.
func (a *Agent) HandleMessage(ctx *simnet.Context, from simnet.NodeID, msg simnet.Message) {
	switch m := msg.(type) {
	case msgAssign:
		a.onAssign(ctx, from, m)
	case msgChunk:
		a.onChunk(ctx, from, m)
	case msgChunkTimeout:
		a.onChunkTimeout(ctx, m)
	case msgWantRetry:
		if t, ok := a.transfers[m.Name]; ok {
			t.retryOut = false
			a.requestGrants(ctx, t)
		}
	case msgGetChunk:
		a.serveChunk(ctx, from, m)
	case msgGetManifest:
		reply := msgManifest{Name: m.Name, Version: m.Version}
		if man, ok := a.store.Manifest(m.Name, m.Version); ok {
			if data, err := man.Encode(); err == nil {
				reply.OK = true
				reply.Data = data
			}
		}
		ctx.SendSized(from, reply, len(reply.Data))
	case msgManifest:
		a.onManifestReply(ctx, from, m)
	case msgManifestRetry:
		if md, ok := a.pendingManifests[m.Name]; ok && md.Version == m.Version {
			ctx.Send(md.Registry, msgGetManifest{Name: m.Name, Version: m.Version})
			ctx.SetTimer(manifestRetry, msgManifestRetry{Name: m.Name, Version: m.Version})
		}
	}
}

func (a *Agent) onManifestReply(ctx *simnet.Context, from simnet.NodeID, m msgManifest) {
	md, ok := a.pendingManifests[m.Name]
	if !ok || md.Version != m.Version || !m.OK {
		return // stale or negative; the retry timer re-requests
	}
	want, err := md.ManifestDigest()
	if err != nil || blob.DigestOf(m.Data) != want {
		return // does not match the metadata's digest: ignore, retry later
	}
	man, err := blob.ParseManifest(m.Data)
	if err != nil || man.Name != md.Name || man.Version != md.Version {
		return
	}
	a.startTransfer(ctx, man, md.Registry, md.Tracker, false)
}

func (a *Agent) onAssign(ctx *simnet.Context, from simnet.NodeID, m msgAssign) {
	// Clear the outstanding-want flag on every transfer coordinated by
	// this tracker (grants are digest-keyed, not transfer-keyed).
	for _, t := range a.transfers {
		if t.tracker == from {
			t.wantOut = false
		}
	}
	for _, g := range m.Grants {
		if t := a.transferNeeding(g.Digest); t != nil {
			t.pending = append(t.pending, g)
		}
	}
	names := a.sortedTransferNames()
	for _, name := range names {
		t := a.transfers[name]
		if t.tracker != from {
			continue
		}
		// Arm the backoff before dispatching: dispatch re-wants when the
		// pending queue runs low, and after an empty grant that would
		// re-ask immediately — the backoff gate must already be up.
		if m.Retry && len(t.need) > 0 && !t.retryOut && !t.wantOut {
			t.retryOut = true
			backoff := 500*time.Millisecond + time.Duration(a.net.RNG().Float64()*float64(time.Second))
			ctx.SetTimer(backoff, msgWantRetry{Name: name})
		}
		a.dispatch(ctx, t)
	}
}

func (a *Agent) sortedTransferNames() []string {
	names := make([]string, 0, len(a.transfers))
	for name := range a.transfers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (a *Agent) transferNeeding(d blob.Digest) *transfer {
	for _, name := range a.sortedTransferNames() {
		if t := a.transfers[name]; t.need[d] {
			return t
		}
	}
	return nil
}

func (a *Agent) onChunkTimeout(ctx *simnet.Context, m msgChunkTimeout) {
	fl, ok := a.inflight[m.Digest]
	if !ok {
		return
	}
	delete(a.inflight, m.Digest)
	delete(fl.t.inflight, m.Digest)
	if a.perPeer[fl.peer] > 0 {
		a.perPeer[fl.peer]--
	}
	a.inflightTotal--
	fl.t.need[m.Digest] = true
	if fl.t.direct {
		a.dispatchDirect(ctx, fl.t)
	} else {
		a.dispatch(ctx, fl.t)
		a.requestGrants(ctx, fl.t)
	}
}

// serveChunk uploads a chunk to a peer. Content addressing makes this
// version-free: any verified chunk in the store is safe to serve, because
// the requester verifies the digest itself.
func (a *Agent) serveChunk(ctx *simnet.Context, from simnet.NodeID, m msgGetChunk) {
	reply := msgChunk{Digest: m.Digest}
	size := 0
	if c, ok := a.store.Get(m.Digest); ok {
		reply.OK = true
		reply.Data = c.Data()
		reply.Size = c.Size()
		size = c.Size()
		a.ChunksServed++
	}
	ctx.SendSized(from, reply, size)
}

func (a *Agent) onChunk(ctx *simnet.Context, from simnet.NodeID, m msgChunk) {
	var t *transfer
	if fl, ok := a.inflight[m.Digest]; ok && fl.peer == from {
		delete(a.inflight, m.Digest)
		delete(fl.t.inflight, m.Digest)
		if a.perPeer[from] > 0 {
			a.perPeer[from]--
		}
		a.inflightTotal--
		t = fl.t
	} else {
		// Late reply (slot already reclaimed) — still useful if the
		// digest is wanted.
		t = a.transferNeeding(m.Digest)
		if t == nil {
			return
		}
	}
	if !m.OK {
		t.need[m.Digest] = true
		a.continueTransfer(ctx, t)
		return
	}
	if _, err := a.store.PutVerified(m.Data, m.Size, m.Digest); err != nil {
		// The bytes do not hash to the manifest entry: quarantine the
		// peer and re-fetch from another holder.
		a.quarantine(from)
		a.CorruptChunks++
		a.obs.Add("vessel.chunks.corrupt", 1)
		t.need[m.Digest] = true
		a.continueTransfer(ctx, t)
		return
	}
	delete(t.need, m.Digest) // covers the late-reply path
	a.ChunksFetched++
	t.stats.ChunksFetched++
	t.stats.BytesFetched += int64(m.Size)
	if from == t.origin {
		a.ChunksFromOrigin++
	} else {
		a.ChunksFromPeers++
	}
	ap := a.net.Placement(a.id)
	fp := a.net.Placement(from)
	switch {
	case ap.Region == fp.Region && ap.Cluster == fp.Cluster:
		a.ChunksSameCluster++
	case ap.Region == fp.Region:
		a.ChunksSameRegion++
	default:
		a.ChunksCrossRegion++
	}
	a.haveBuf = append(a.haveBuf, m.Digest)
	if len(a.haveBuf) >= announceEvery && t.tracker != "" {
		ctx.Send(t.tracker, msgAnnounce{Digests: a.flushHave()})
	}

	if len(t.need) == 0 && len(t.inflight) == 0 {
		a.finish(ctx, t)
		return
	}
	a.continueTransfer(ctx, t)
}

func (a *Agent) continueTransfer(ctx *simnet.Context, t *transfer) {
	if t.direct {
		a.dispatchDirect(ctx, t)
		return
	}
	a.dispatch(ctx, t)
	a.requestGrants(ctx, t)
}

func (a *Agent) quarantine(peer simnet.NodeID) {
	if !a.quarantined[peer] {
		a.quarantined[peer] = true
		a.avoid = append(a.avoid, peer)
	}
}

// finish commits the assembled manifest, announces the final digests, and
// fires the completion callback.
func (a *Agent) finish(ctx *simnet.Context, t *transfer) {
	if err := a.store.Commit(t.manifest); err != nil {
		// A hole the bookkeeping missed (should not happen): re-derive
		// the need set from the store and keep fetching.
		for _, d := range a.store.Missing(t.manifest) {
			t.need[d] = true
		}
		a.continueTransfer(ctx, t)
		return
	}
	delete(a.transfers, t.manifest.Name)
	if t.tracker != "" {
		if have := a.flushHave(); len(have) > 0 {
			ctx.Send(t.tracker, msgAnnounce{Digests: have, Complete: true})
		}
	}
	if a.onComplete != nil {
		a.onComplete(t.manifest, ctx.Now().Sub(t.started), t.stats)
	}
}

// OnRestart implements simnet.Restarter: the crash lost all in-memory
// swarm state, but the store — the disk — survived. Every journaled
// transfer is re-verified chunk by chunk (counted in
// vessel.resume.verified) and resumed fetching only the digests that are
// missing or failed verification.
func (a *Agent) OnRestart(ctx *simnet.Context) {
	a.transfers = make(map[string]*transfer)
	a.inflight = make(map[blob.Digest]flight)
	a.perPeer = make(map[simnet.NodeID]int)
	a.inflightTotal = 0
	a.haveBuf = nil
	a.pendingManifests = make(map[string]Metadata)
	a.quarantined = make(map[simnet.NodeID]bool)
	a.avoid = nil

	for _, j := range a.store.Journals() {
		m := j.Manifest
		present, missing := a.store.Verify(m)
		a.ResumeVerified += uint64(len(present))
		a.obs.Add("vessel.resume.verified", int64(len(present)))
		t := &transfer{
			manifest: m,
			origin:   simnet.NodeID(j.Origin),
			tracker:  simnet.NodeID(j.Coordinator),
			need:     make(map[blob.Digest]bool, len(missing)),
			order:    missing,
			inflight: make(map[blob.Digest]simnet.NodeID),
			started:  ctx.Now(),
		}
		t.stats.Resumed = true
		t.stats.ResumeVerified = len(present)
		for _, d := range missing {
			t.need[d] = true
		}
		a.transfers[m.Name] = t
		// Re-announce what survived on disk: the tracker may have lost
		// (or never had) this holder.
		a.haveBuf = append(a.haveBuf, present...)
		if len(t.need) == 0 {
			a.finish(ctx, t)
			continue
		}
		a.requestGrants(ctx, t)
	}
}
